#include "analysis/soundness.h"

#include <sstream>

namespace ultraverse::analysis {

namespace {

bool ColumnsContained(const core::ColumnSet& dyn, const core::ColumnSet& stat,
                      const char* label, std::string* breach) {
  for (const auto& c : dyn.items) {
    if (!stat.items.count(c)) {
      *breach = std::string(label) + " column \"" + c +
                "\" accessed dynamically but absent from the static summary";
      return false;
    }
  }
  return true;
}

bool RowsContained(const core::RowSet& dyn, const core::RowSet& stat,
                   const char* label, std::string* breach) {
  for (const auto& [col, vals] : dyn.cols) {
    auto it = stat.cols.find(col);
    if (it == stat.cols.end()) {
      *breach = std::string(label) + " row key \"" + col +
                "\" accessed dynamically but absent from the static summary";
      return false;
    }
    const auto& svals = it->second;
    if (vals.wildcard && !svals.wildcard) {
      *breach = std::string(label) + " row key \"" + col +
                "\" is a dynamic wildcard but statically value-bounded";
      return false;
    }
    if (!svals.wildcard) {
      for (const auto& v : vals.values) {
        if (!svals.values.count(v)) {
          *breach = std::string(label) + " row \"" + col + "\"=" + v +
                    " accessed dynamically but not statically predicted";
          return false;
        }
      }
    }
    // Predicate-region containment (DESIGN.md §15): the effective row view
    // of an entry is (wildcard ? ⊤ : points) ∩ region on both sides, and the
    // dynamic view must be contained in the static one. This is the row-
    // granularity half of the soundness invariant the predicate pre-filter
    // relies on.
    core::ValueRegion dview = core::RowSet::TypedRegionOf(vals);
    core::ValueRegion sview = core::RowSet::TypedRegionOf(svals);
    if (!dview.ContainedIn(sview)) {
      *breach = std::string(label) + " row key \"" + col +
                "\" dynamic region " + dview.ToString() +
                " not contained in static region " + sview.ToString();
      return false;
    }
  }
  return true;
}

bool TablesContained(const std::set<std::string>& dyn,
                     const std::set<std::string>& stat, const char* label,
                     std::string* breach) {
  for (const auto& t : dyn) {
    if (!stat.count(t)) {
      *breach = std::string(label) + " table \"" + t +
                "\" accessed dynamically but absent from the static summary";
      return false;
    }
  }
  return true;
}

}  // namespace

std::string ContainmentBreach(const core::QueryRW& dyn,
                              const core::QueryRW& stat) {
  std::string breach;
  if (!ColumnsContained(dyn.rc, stat.rc, "read", &breach)) return breach;
  if (!ColumnsContained(dyn.wc, stat.wc, "write", &breach)) return breach;
  if (!RowsContained(dyn.rr, stat.rr, "read", &breach)) return breach;
  if (!RowsContained(dyn.wr, stat.wr, "write", &breach)) return breach;
  if (!TablesContained(dyn.read_tables, stat.read_tables, "read", &breach)) {
    return breach;
  }
  if (!TablesContained(dyn.write_tables, stat.write_tables, "write",
                       &breach)) {
    return breach;
  }
  // Flags are one-directional: static may widen (nested DDL marks is_ddl)
  // but must never miss a dynamic flag.
  if (dyn.is_ddl && !stat.is_ddl) {
    return "dynamic is_ddl not predicted statically";
  }
  if (dyn.overwrites && !stat.overwrites) {
    return "dynamic overwrites not predicted statically";
  }
  return "";
}

SoundnessChecker::SoundnessChecker(core::QueryAnalyzer* analyzer)
    : analyzer_(analyzer),
      static_(analyzer->registry()),
      pending_(Status::Internal("no statement observed")) {
  analyzer_->set_observer(this);
}

SoundnessChecker::~SoundnessChecker() {
  if (analyzer_->observer() == this) analyzer_->set_observer(nullptr);
}

void SoundnessChecker::BeforeStatement(const sql::Statement& stmt) {
  // RI overrides can be configured between statements (ConfigureRi after
  // attach); mirroring them each time keeps RowSet keys aligned.
  static_.SyncRiOverrides(analyzer_->ri_configs());
  pending_ = static_.Summarize(stmt);
}

void SoundnessChecker::AfterStatement(const sql::Statement& stmt,
                                      const core::QueryRW& raw) {
  ++checked_;
  std::string detail;
  if (!pending_.ok()) {
    // The dynamic walk succeeded (we are here) while the static walk
    // errored: the summary missed an analyzable statement — a violation.
    detail = "static summarization failed: " + pending_.status().ToString();
  } else {
    detail = ContainmentBreach(raw, pending_->rw);
  }
  if (detail.empty()) return;
  Violation v;
  v.statement_ordinal = checked_ - 1;
  v.sql = sql::ToSql(stmt);
  v.detail = std::move(detail);
  violations_.push_back(std::move(v));
}

}  // namespace ultraverse::analysis
