#ifndef ULTRAVERSE_ANALYSIS_STATIC_RW_H_
#define ULTRAVERSE_ANALYSIS_STATIC_RW_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/rw_sets.h"
#include "sqldb/query_log.h"
#include "util/status.h"

namespace ultraverse::analysis {

/// All-paths static over-approximation of one statement's (or procedure
/// body's) read/write behaviour: the same ColumnSet/RowSet shapes the
/// dynamic analyzer emits (§4.2–4.3), computed without any runtime
/// information. The soundness invariant is containment — for every
/// execution of the statement, the dynamic QueryRW is a subset of `rw`
/// (see soundness.h and DESIGN.md §10 for the argument).
struct StaticSummary {
  core::QueryRW rw;

  /// Table-level projection of `rw`, for the planner pre-filter.
  core::TableFootprint footprint;

  /// True when the statement contains DDL anywhere, including nested in a
  /// procedure body reached through CALL — a Hash-jumper hazard the lint
  /// pass reports (dynamic is_ddl only marks top-level DDL).
  bool has_ddl = false;

  /// Nondeterministic SQL builtins referenced anywhere in the statement
  /// (upper-cased names from util/nondet_builtins.h).
  std::set<std::string> nondet_builtins;

  /// "Table.column" writes naming columns absent from the table's current
  /// schema — dead branches writing dropped columns, or typos.
  std::vector<std::string> dead_column_writes;
};

/// Static RW-summary inference over sqldb ASTs. The walk deliberately
/// mirrors the dynamic analyzer (core/rw_sets.cc AnalyzerImpl) statement
/// case by statement case, with every runtime-resolution site replaced by
/// its sound static abstraction:
///
///   - procedure variables and parameters carry no values — only their
///     *names* are tracked, with the exact scoping the dynamic walk uses,
///     so bare-column-vs-variable disambiguation is identical;
///   - constant folding covers literals only (same fold semantics as the
///     dynamic ConstEval on variable-free expressions), so wherever the
///     static pass resolves a concrete RI value the dynamic pass resolves
///     the *same* value;
///   - captured variables, nondet records, auto-increment ids and learned
///     alias→RI maps all degrade to wildcards.
///
/// Two modes:
///   - owned (default ctor): the analyzer evolves its own SchemaRegistry
///     as AnalyzeNext walks DDL, exactly like the dynamic analyzer's
///     registry evolves with the log;
///   - follower (registry ctor): Summarize copies the followed registry
///     into a scratch per call, so intra-statement DDL is visible to the
///     rest of the walk without mutating shared state. Used by the
///     soundness checker, whose followed registry is the dynamic
///     analyzer's own.
class StaticAnalyzer {
 public:
  StaticAnalyzer();
  explicit StaticAnalyzer(const core::SchemaRegistry* follow);

  /// Mirrors QueryAnalyzer::ConfigureRi for tables (re)created during a
  /// walk: the override is applied right after the scratch registry
  /// processes the CREATE TABLE, keeping RowSet keys aligned with the
  /// dynamic side.
  void SetRiOverride(const std::string& table, const std::string& ri_column,
                     std::vector<std::string> aliases = {});
  /// Replaces all overrides with the dynamic analyzer's current set.
  void SyncRiOverrides(
      const std::map<std::string, core::QueryAnalyzer::RiConfig>& configs);

  /// Static summary of one statement against the current registry state.
  /// Does not mutate the analyzer (the walk runs on a scratch copy).
  Result<StaticSummary> Summarize(const sql::Statement& stmt) const;

  /// Owned mode only: summarizes `stmt` while evolving the owned registry
  /// through any DDL it contains, mirroring how the dynamic analyzer's
  /// registry evolves entry by entry.
  Result<StaticSummary> AnalyzeNext(const sql::Statement& stmt);

  /// Cached all-paths summary of a stored procedure's body, parameters
  /// abstracted to wildcards. Covers the body only (the `_S.<proc>` read
  /// a CALL statement records is a call-site artifact). Errors when the
  /// procedure is unknown. The cache is invalidated whenever AnalyzeNext
  /// walks DDL.
  Result<const StaticSummary*> ProcedureSummary(const std::string& name);
  void InvalidateProcedureCache() { procedure_cache_.clear(); }

  const core::SchemaRegistry& registry() const {
    return follow_ ? *follow_ : owned_;
  }

 private:
  core::SchemaRegistry owned_;
  const core::SchemaRegistry* follow_ = nullptr;
  std::map<std::string, core::QueryAnalyzer::RiConfig> ri_overrides_;
  std::map<std::string, StaticSummary> procedure_cache_;
};

/// Per-entry static footprints of a whole log, aligned with the dynamic
/// analysis vector (element i ↔ log index i+1): feed the result to
/// DependencyOptions::static_footprints. Entries that fail static
/// summarization get a universal footprint (never skipped — sound).
std::vector<core::TableFootprint> StaticLogFootprints(
    const sql::QueryLog& log);

}  // namespace ultraverse::analysis

#endif  // ULTRAVERSE_ANALYSIS_STATIC_RW_H_
