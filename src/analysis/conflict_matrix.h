#ifndef ULTRAVERSE_ANALYSIS_CONFLICT_MATRIX_H_
#define ULTRAVERSE_ANALYSIS_CONFLICT_MATRIX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/static_rw.h"
#include "util/status.h"

namespace ultraverse::analysis {

/// Column-wise static conflict test between two summaries: a WW, WR or RW
/// overlap anywhere in the over-approximated column sets. When this is
/// false the two procedures can never produce a dependency edge in any
/// execution (static ⊇ dynamic on both sides), so row-wise analysis and
/// conflict-DAG participation can be skipped for the pair.
bool StaticallyConflict(const StaticSummary& a, const StaticSummary& b);

/// Predicate-region refutation (DESIGN.md §15) for a column-conflicting
/// pair: true when every conflicting direction (write/read, read/write,
/// write/write) is row-region disjoint, i.e. the two procedures touch
/// provably distinct rows in every execution. Both summaries come from the
/// same registry, so their row keys align and the raw comparison is sound.
bool PredicateRefuted(const StaticSummary& a, const StaticSummary& b);

/// One pairwise verdict, ordered by how decisively the pair is separated.
enum class ConflictCell : uint8_t {
  kDisjoint,          // column sets never overlap ('.')
  kPredicateRefuted,  // columns overlap, row regions provably disjoint ('~')
  kMayConflict,       // no static argument separates the pair ('#')
};

/// Pairwise static conflict relation over a catalog's stored procedures —
/// the what-if planner's cheat sheet: statically separated pairs (kDisjoint
/// or kPredicateRefuted cells) need no row-wise comparison at planning
/// time. Symmetric by construction; reflexive for any procedure that
/// writes.
struct ConflictMatrix {
  std::vector<std::string> procedures;            // sorted
  std::vector<std::vector<ConflictCell>> conflicts;  // conflicts[i][j], square

  /// True when the pair may conflict (kMayConflict); both refuted tiers
  /// count as disjoint. Unknown procedures conservatively conflict.
  bool At(const std::string& a, const std::string& b) const;
  ConflictCell CellAt(const std::string& a, const std::string& b) const;
  /// Human-readable grid (uvlint's trailing report section):
  /// '#' may conflict, '~' refuted by predicate regions, '.' disjoint.
  std::string ToString() const;
};

/// Builds the matrix from the analyzer's current catalog, summarizing each
/// procedure body (cached in the analyzer) with parameters wildcarded.
/// Column- and predicate-aware: cells record whether the pair is separated
/// by column sets alone or only by the predicate-region tier.
Result<ConflictMatrix> BuildConflictMatrix(StaticAnalyzer* analyzer);

}  // namespace ultraverse::analysis

#endif  // ULTRAVERSE_ANALYSIS_CONFLICT_MATRIX_H_
