#ifndef ULTRAVERSE_ANALYSIS_CONFLICT_MATRIX_H_
#define ULTRAVERSE_ANALYSIS_CONFLICT_MATRIX_H_

#include <string>
#include <vector>

#include "analysis/static_rw.h"
#include "util/status.h"

namespace ultraverse::analysis {

/// Column-wise static conflict test between two summaries: a WW, WR or RW
/// overlap anywhere in the over-approximated column sets. When this is
/// false the two procedures can never produce a dependency edge in any
/// execution (static ⊇ dynamic on both sides), so row-wise analysis and
/// conflict-DAG participation can be skipped for the pair.
bool StaticallyConflict(const StaticSummary& a, const StaticSummary& b);

/// Pairwise static conflict relation over a catalog's stored procedures —
/// the what-if planner's cheat sheet: statically disjoint pairs (false
/// cells) need no row-wise comparison at planning time. Symmetric by
/// construction; reflexive for any procedure that writes.
struct ConflictMatrix {
  std::vector<std::string> procedures;       // sorted
  std::vector<std::vector<bool>> conflicts;  // conflicts[i][j], square

  bool At(const std::string& a, const std::string& b) const;
  /// Human-readable grid (uvlint's trailing report section).
  std::string ToString() const;
};

/// Builds the matrix from the analyzer's current catalog, summarizing each
/// procedure body (cached in the analyzer) with parameters wildcarded.
Result<ConflictMatrix> BuildConflictMatrix(StaticAnalyzer* analyzer);

}  // namespace ultraverse::analysis

#endif  // ULTRAVERSE_ANALYSIS_CONFLICT_MATRIX_H_
