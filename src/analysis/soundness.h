#ifndef ULTRAVERSE_ANALYSIS_SOUNDNESS_H_
#define ULTRAVERSE_ANALYSIS_SOUNDNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/static_rw.h"
#include "core/rw_sets.h"

namespace ultraverse::analysis {

/// Checks the static-analysis soundness invariant for one statement:
/// every dynamic access must be predicted by the static summary.
/// Returns an empty string when `dyn` ⊆ `stat`, otherwise a description
/// of the first breach found (which set, which element). The check runs
/// on the *raw* (uncanonicalized) dynamic sets — canonicalization rewrites
/// RI values under a union-find the static side cannot know.
std::string ContainmentBreach(const core::QueryRW& dyn,
                              const core::QueryRW& stat);

/// Debug/oracle-mode observer asserting dynamic ⊆ static for every
/// statement a QueryAnalyzer analyzes. Attach to an analyzer before
/// feeding it a log; violations accumulate instead of aborting, so a
/// fuzzer can shrink the offending history into a repro. The checker
/// follows the analyzer's own registry (so its static walks see exactly
/// the schema state the dynamic walk is about to see) and re-syncs RI
/// overrides before each statement.
class SoundnessChecker : public core::AnalysisObserver {
 public:
  struct Violation {
    /// 0-based count of statements observed before this one.
    size_t statement_ordinal = 0;
    std::string sql;     // offending statement, printed back to SQL
    std::string detail;  // first breach, or the static-walk error
  };

  /// Attaches to `analyzer` (replacing any previous observer). The
  /// analyzer must outlive the checker; the checker detaches in its
  /// destructor.
  explicit SoundnessChecker(core::QueryAnalyzer* analyzer);
  ~SoundnessChecker() override;

  SoundnessChecker(const SoundnessChecker&) = delete;
  SoundnessChecker& operator=(const SoundnessChecker&) = delete;

  void BeforeStatement(const sql::Statement& stmt) override;
  void AfterStatement(const sql::Statement& stmt,
                      const core::QueryRW& raw) override;

  const std::vector<Violation>& violations() const { return violations_; }
  size_t statements_checked() const { return checked_; }
  void ClearViolations() { violations_.clear(); }

 private:
  core::QueryAnalyzer* analyzer_;
  StaticAnalyzer static_;
  /// Summary computed by BeforeStatement against the pre-statement
  /// registry, consumed by AfterStatement. Holds the static-walk error
  /// when summarization failed (itself a violation if the dynamic walk
  /// then succeeds).
  Result<StaticSummary> pending_;
  size_t checked_ = 0;
  std::vector<Violation> violations_;
};

}  // namespace ultraverse::analysis

#endif  // ULTRAVERSE_ANALYSIS_SOUNDNESS_H_
