#include "analysis/shard_advisor.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

#include "analysis/conflict_matrix.h"
#include "analysis/static_rw.h"
#include "core/predicate.h"
#include "core/rw_sets.h"
#include "sqldb/value.h"

namespace ultraverse::analysis {

namespace {

/// Column conflict restricted to one table: a WW/WR/RW overlap among
/// "T.column" items. A column conflict always names a shared table, so
/// classifying per shared table covers the global relation exactly.
bool ConflictsOnTable(const core::QueryRW& a, const core::QueryRW& b,
                      const std::string& table) {
  std::string prefix = table + ".";
  auto hit = [&](const core::ColumnSet& x, const core::ColumnSet& y) {
    for (auto it = x.items.lower_bound(prefix);
         it != x.items.end() &&
         it->compare(0, prefix.size(), prefix) == 0;
         ++it) {
      if (y.items.count(*it)) return true;
    }
    return false;
  };
  return hit(a.wc, b.wc) || hit(a.wc, b.rc) || hit(a.rc, b.wc);
}

/// The statement's effective row view on one RI key: the join of its read
/// and write entries' typed regions. A statement that touches the table
/// without any entry for the key (CALL/DDL artifacts) degrades to ⊤.
core::ValueRegion StatementRegion(const core::QueryRW& rw,
                                  const std::string& key) {
  core::ValueRegion out = core::ValueRegion::EmptySet();
  bool any = false;
  for (const core::RowSet* rs : {&rw.rr, &rw.wr}) {
    auto it = rs->cols.find(key);
    if (it == rs->cols.end()) continue;
    core::ValueRegion r = core::RowSet::TypedRegionOf(it->second);
    if (!any) {
      out = std::move(r);
      any = true;
    } else {
      out.MergeWith(r);
    }
  }
  return any ? out : core::ValueRegion::Top();
}

bool PointOnly(const core::ValueRegion& r) {
  return !r.top && r.intervals.empty();
}

/// Union-find over table names for the colocation components.
class TableUnion {
 public:
  std::string Find(const std::string& t) {
    auto it = parent_.find(t);
    if (it == parent_.end()) {
      parent_[t] = t;
      return t;
    }
    if (it->second == t) return t;
    std::string root = Find(it->second);
    parent_[t] = root;
    return root;
  }
  void Union(const std::string& a, const std::string& b) {
    parent_[Find(a)] = Find(b);
  }
  std::map<std::string, std::vector<std::string>> Components() {
    std::map<std::string, std::vector<std::string>> out;
    for (const auto& [t, _] : std::map<std::string, std::string>(parent_)) {
      out[Find(t)].push_back(t);
    }
    return out;
  }

 private:
  std::map<std::string, std::string> parent_;
};

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string ShardAdvice::ToString() const {
  std::ostringstream os;
  os << "shard advisor: " << statements_analyzed << " statements";
  if (statements_beyond_pair_cap) {
    os << " (" << statements_beyond_pair_cap
       << " beyond the pairwise cap: grouped but not pair-checked)";
  }
  os << "\npairs sharing a table: " << pairs_checked << " ("
     << pairs_disjoint << " column-disjoint, " << pairs_refuted
     << " predicate-refuted, " << pairs_conflicting << " conflicting)\n";
  os << "table groups (colocation components):\n";
  if (groups.empty()) os << "  (none)\n";
  for (size_t i = 0; i < groups.size(); ++i) {
    os << "  group " << (i + 1) << ":";
    for (const auto& t : groups[i].tables) os << " " << t;
    os << "\n";
  }
  os << "key-range splits:\n";
  if (splits.empty()) os << "  (no tables with a row-identifier column)\n";
  for (const auto& s : splits) {
    os << "  " << s.table << " on " << s.ri_column << ": "
       << (s.partitionable ? "partitionable" : "NOT partitionable") << " ("
       << s.statements << " stmts, " << s.refuted_pairs << "/"
       << s.conflicting_pairs << " conflicting pairs predicate-refuted)";
    if (!s.boundaries.empty()) {
      os << "; range boundaries:";
      for (const auto& b : s.boundaries) os << " " << b;
    }
    os << "\n";
  }
  return os.str();
}

std::string ShardAdvice::ToJson() const {
  std::ostringstream os;
  os << "{\"statements_analyzed\":" << statements_analyzed
     << ",\"statements_beyond_pair_cap\":" << statements_beyond_pair_cap
     << ",\"pairs_checked\":" << pairs_checked
     << ",\"pairs_disjoint\":" << pairs_disjoint
     << ",\"pairs_refuted\":" << pairs_refuted
     << ",\"pairs_conflicting\":" << pairs_conflicting << ",\"groups\":[";
  for (size_t i = 0; i < groups.size(); ++i) {
    if (i) os << ",";
    os << "[";
    for (size_t j = 0; j < groups[i].tables.size(); ++j) {
      if (j) os << ",";
      os << "\"" << JsonEscape(groups[i].tables[j]) << "\"";
    }
    os << "]";
  }
  os << "],\"splits\":[";
  for (size_t i = 0; i < splits.size(); ++i) {
    const TableSplit& s = splits[i];
    if (i) os << ",";
    os << "{\"table\":\"" << JsonEscape(s.table) << "\",\"ri_column\":\""
       << JsonEscape(s.ri_column) << "\",\"partitionable\":"
       << (s.partitionable ? "true" : "false")
       << ",\"statements\":" << s.statements
       << ",\"conflicting_pairs\":" << s.conflicting_pairs
       << ",\"refuted_pairs\":" << s.refuted_pairs << ",\"boundaries\":[";
    for (size_t j = 0; j < s.boundaries.size(); ++j) {
      if (j) os << ",";
      os << "\"" << JsonEscape(s.boundaries[j]) << "\"";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

Result<ShardAdvice> AdviseSharding(
    const std::vector<sql::StatementPtr>& statements, size_t shards) {
  if (shards < 2) shards = 2;
  ShardAdvice advice;
  StaticAnalyzer analyzer;
  TableUnion tables;

  struct StmtInfo {
    core::QueryRW rw;
    std::set<std::string> tables;  // read ∪ write
    bool has_ddl = false;
  };
  std::vector<StmtInfo> infos;  // first kShardPairwiseCap statements only
  std::set<std::string> ddl_touched;  // tables a DDL statement names
  bool any_failure = false;

  for (const auto& stmt : statements) {
    ++advice.statements_analyzed;
    auto sum = analyzer.AnalyzeNext(*stmt);
    if (!sum.ok()) {
      // Sound fallback: an unanalyzable statement could touch anything, so
      // every colocation/partition claim below is withdrawn.
      any_failure = true;
      continue;
    }
    StmtInfo info;
    info.rw = sum->rw;
    info.has_ddl = sum->has_ddl;
    info.tables.insert(sum->rw.read_tables.begin(),
                       sum->rw.read_tables.end());
    info.tables.insert(sum->rw.write_tables.begin(),
                       sum->rw.write_tables.end());
    // Tables one statement co-accesses must colocate.
    const std::string* first = nullptr;
    for (const auto& t : info.tables) {
      tables.Find(t);
      if (first) tables.Union(*first, t);
      else first = &t;
    }
    // Schema-*defining* DDL (CREATE TABLE/INDEX/VIEW in the setup prefix)
    // doesn't complicate sharding — every input starts with it. Mutating
    // DDL (ALTER/DROP/TRUNCATE/RENAME, or DDL reached through a procedure
    // body) withdraws partition claims for the tables it touches.
    bool defining_ddl = stmt->kind == sql::StatementKind::kCreateTable ||
                        stmt->kind == sql::StatementKind::kCreateIndex ||
                        stmt->kind == sql::StatementKind::kCreateView ||
                        stmt->kind == sql::StatementKind::kCreateProcedure ||
                        stmt->kind == sql::StatementKind::kCreateTrigger;
    if (info.has_ddl && !defining_ddl) {
      ddl_touched.insert(info.tables.begin(), info.tables.end());
    }
    if (infos.size() < kShardPairwiseCap) {
      infos.push_back(std::move(info));
    } else {
      ++advice.statements_beyond_pair_cap;
    }
  }

  // Per-table statement lists (pairwise-capped set only).
  std::map<std::string, std::vector<size_t>> touching;
  for (size_t i = 0; i < infos.size(); ++i) {
    for (const auto& t : infos[i].tables) touching[t].push_back(i);
  }

  // Pairwise classification per shared table, aggregated into global pair
  // stats. A pair can share several tables; it counts once, at its worst
  // verdict across them.
  struct PairState {
    bool conflicts = false;   // column conflict on some shared table
    bool unrefuted = false;   // ... that predicate regions cannot refute
  };
  std::map<uint64_t, PairState> pair_states;
  // Statements on a non-refuted conflicting pair whose region on the
  // table's RI key is not point-only block that table's partitioning.
  std::set<std::string> blocked;

  for (const auto& [table, stmts] : touching) {
    const core::SchemaRegistry::TableInfo* ti =
        analyzer.registry().FindTable(table);
    std::string key = table + "." + (ti && !ti->ri_column.empty()
                                         ? ti->ri_column
                                         : std::string("__row"));
    ShardAdvice::TableSplit split;
    split.table = table;
    split.ri_column = key;
    split.statements = stmts.size();

    std::vector<core::ValueRegion> regions;
    regions.reserve(stmts.size());
    for (size_t i : stmts) {
      regions.push_back(StatementRegion(infos[i].rw, key));
    }
    for (size_t a = 0; a < stmts.size(); ++a) {
      for (size_t b = a + 1; b < stmts.size(); ++b) {
        uint64_t pair_key = uint64_t(stmts[a]) * infos.size() + stmts[b];
        PairState& state = pair_states[pair_key];
        if (!ConflictsOnTable(infos[stmts[a]].rw, infos[stmts[b]].rw,
                              table)) {
          continue;
        }
        state.conflicts = true;
        ++split.conflicting_pairs;
        if (!regions[a].Intersects(regions[b])) {
          ++split.refuted_pairs;
        } else {
          state.unrefuted = true;
          // An intersecting pair still colocates on one shard when both
          // sides are point sets (the boundary pass keeps each statement's
          // span whole); a scan/range side forces cross-shard traffic.
          if (!PointOnly(regions[a]) || !PointOnly(regions[b])) {
            blocked.insert(table);
          }
        }
      }
    }

    split.partitionable = !any_failure && ti && !ti->ri_column.empty() &&
                          !ddl_touched.count(table) &&
                          !blocked.count(table);

    // Range boundaries: merge each point-only statement's [min,max] key
    // span (whole spans never straddle a boundary), then cut the merged
    // ranges into ≤`shards` weight-balanced groups.
    if (split.partitionable) {
      struct Span {
        sql::Value lo, hi;
        size_t weight = 1;
      };
      std::vector<Span> spans;
      bool decodable = true;
      for (const core::ValueRegion& r : regions) {
        if (!PointOnly(r) || r.points.empty()) continue;
        Span s;
        bool first = true;
        for (const std::string& enc : r.points) {
          sql::Value v;
          if (!sql::Value::Decode(enc, &v)) {
            decodable = false;
            break;
          }
          if (first || v.Compare(s.lo) < 0) s.lo = v;
          if (first || v.Compare(s.hi) > 0) s.hi = v;
          first = false;
        }
        if (!decodable) break;
        if (!first) spans.push_back(std::move(s));
      }
      if (decodable && spans.size() > 1) {
        std::sort(spans.begin(), spans.end(),
                  [](const Span& a, const Span& b) {
                    return a.lo.Compare(b.lo) < 0;
                  });
        std::vector<Span> merged;
        for (Span& s : spans) {
          if (!merged.empty() && s.lo.Compare(merged.back().hi) <= 0) {
            if (s.hi.Compare(merged.back().hi) > 0) merged.back().hi = s.hi;
            merged.back().weight += s.weight;
          } else {
            merged.push_back(std::move(s));
          }
        }
        size_t total = 0;
        for (const Span& s : merged) total += s.weight;
        size_t cuts = std::min(shards, merged.size()) - 1;
        size_t acc = 0, made = 0;
        for (size_t i = 0; i + 1 < merged.size() && made < cuts; ++i) {
          acc += merged[i].weight;
          if (acc * (cuts + 1) >= total * (made + 1)) {
            split.boundaries.push_back(
                merged[i + 1].lo.ToDisplayString());
            ++made;
          }
        }
      }
    }
    advice.splits.push_back(std::move(split));
  }

  for (const auto& [pair_key, state] : pair_states) {
    (void)pair_key;
    ++advice.pairs_checked;
    if (!state.conflicts) ++advice.pairs_disjoint;
    else if (!state.unrefuted) ++advice.pairs_refuted;
    else ++advice.pairs_conflicting;
  }

  if (any_failure) {
    // Everything colocates; claims above were already withdrawn.
    std::string first;
    for (const auto& t : analyzer.registry().TableNames()) {
      if (first.empty()) first = t;
      else tables.Union(first, t);
      tables.Find(t);
    }
  }
  for (auto& [root, members] : tables.Components()) {
    (void)root;
    std::sort(members.begin(), members.end());
    advice.groups.push_back(ShardAdvice::TableGroup{std::move(members)});
  }
  return advice;
}

}  // namespace ultraverse::analysis
