#ifndef ULTRAVERSE_ANALYSIS_SHARD_ADVISOR_H_
#define ULTRAVERSE_ANALYSIS_SHARD_ADVISOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sqldb/ast.h"
#include "util/status.h"

namespace ultraverse::analysis {

/// Whole-history static partition advisor (the planning half of the
/// database-sharding application, ROADMAP item 4): given a statement
/// sequence — a schema script plus workload history — it builds the
/// predicate-aware static conflict graph over the statements, groups
/// tables into colocation components, and proposes key-range splits for
/// tables whose remaining column-level conflicts are all refuted by the
/// predicate-region tier (DESIGN.md §15).
///
/// The advice is *static*: it over-approximates every execution, so a
/// "partitionable" verdict means no history over these templates can ever
/// create a cross-shard row conflict on that table.
struct ShardAdvice {
  /// Connected component of tables co-accessed by at least one statement:
  /// tables in one group must colocate on a shard for single-statement
  /// atomicity to stay local.
  struct TableGroup {
    std::vector<std::string> tables;  // sorted
  };

  /// Per-table split analysis for tables with a row-identifier column.
  struct TableSplit {
    std::string table;
    std::string ri_column;
    /// True when every column-conflicting statement pair touching this
    /// table is predicate-refuted: all accesses are provably single-key or
    /// disjoint-region, so hash/range partitioning on ri_column never
    /// crosses shards.
    bool partitionable = false;
    size_t statements = 0;         // statements touching the table
    size_t conflicting_pairs = 0;  // column-conflicting pairs on the table
    size_t refuted_pairs = 0;      // of those, predicate-refuted
    /// Proposed range boundaries (shards-1 decoded key values at the
    /// quantiles of the statically observed equality points), empty when
    /// the table is not partitionable or the points are not comparable.
    std::vector<std::string> boundaries;
  };

  std::vector<TableGroup> groups;
  std::vector<TableSplit> splits;

  size_t statements_analyzed = 0;
  /// Statements past the pairwise cap: still grouped, not pair-checked
  /// (the advisor says so rather than silently truncating).
  size_t statements_beyond_pair_cap = 0;
  size_t pairs_checked = 0;
  size_t pairs_disjoint = 0;    // column sets never overlap
  size_t pairs_refuted = 0;     // overlap refuted by predicate regions
  size_t pairs_conflicting = 0; // no static separation

  std::string ToString() const;
  std::string ToJson() const;
};

/// Cap on the statements entering the O(n²) pairwise conflict scan;
/// statements beyond it still contribute to table grouping.
inline constexpr size_t kShardPairwiseCap = 2000;

/// Runs the advisor over `statements`, evolving an owned StaticAnalyzer
/// through any DDL (so summaries see the schema each statement saw).
/// `shards` sizes the key-range proposals (boundaries = shards-1).
/// Statements that fail static summarization pessimize their tables into
/// one conflicting group (sound) rather than erroring the whole run.
Result<ShardAdvice> AdviseSharding(
    const std::vector<sql::StatementPtr>& statements, size_t shards);

}  // namespace ultraverse::analysis

#endif  // ULTRAVERSE_ANALYSIS_SHARD_ADVISOR_H_
