#include "analysis/conflict_matrix.h"

#include <algorithm>
#include <sstream>

namespace ultraverse::analysis {

bool StaticallyConflict(const StaticSummary& a, const StaticSummary& b) {
  return a.rw.wc.Intersects(b.rw.wc) || a.rw.wc.Intersects(b.rw.rc) ||
         a.rw.rc.Intersects(b.rw.wc);
}

bool ConflictMatrix::At(const std::string& a, const std::string& b) const {
  auto ia = std::find(procedures.begin(), procedures.end(), a);
  auto ib = std::find(procedures.begin(), procedures.end(), b);
  if (ia == procedures.end() || ib == procedures.end()) {
    return true;  // unknown procedure: assume conflict (sound)
  }
  return conflicts[size_t(ia - procedures.begin())]
                  [size_t(ib - procedures.begin())];
}

std::string ConflictMatrix::ToString() const {
  std::ostringstream os;
  size_t width = 0;
  for (const auto& p : procedures) width = std::max(width, p.size());
  os << "static conflict matrix (" << procedures.size()
     << " procedures; '#' = may conflict, '.' = provably disjoint)\n";
  for (size_t i = 0; i < procedures.size(); ++i) {
    os << "  " << procedures[i]
       << std::string(width - procedures[i].size() + 1, ' ');
    for (size_t j = 0; j < procedures.size(); ++j) {
      os << (conflicts[i][j] ? '#' : '.');
    }
    os << "\n";
  }
  return os.str();
}

Result<ConflictMatrix> BuildConflictMatrix(StaticAnalyzer* analyzer) {
  ConflictMatrix m;
  m.procedures = analyzer->registry().ProcedureNames();  // map order: sorted
  std::vector<const StaticSummary*> sums;
  sums.reserve(m.procedures.size());
  for (const auto& name : m.procedures) {
    UV_ASSIGN_OR_RETURN(const StaticSummary* sum,
                        analyzer->ProcedureSummary(name));
    sums.push_back(sum);
  }
  m.conflicts.assign(m.procedures.size(),
                     std::vector<bool>(m.procedures.size(), false));
  for (size_t i = 0; i < sums.size(); ++i) {
    for (size_t j = i; j < sums.size(); ++j) {
      bool c = StaticallyConflict(*sums[i], *sums[j]);
      m.conflicts[i][j] = c;
      m.conflicts[j][i] = c;
    }
  }
  return m;
}

}  // namespace ultraverse::analysis
