#include "analysis/conflict_matrix.h"

#include <algorithm>
#include <sstream>

namespace ultraverse::analysis {

bool StaticallyConflict(const StaticSummary& a, const StaticSummary& b) {
  return a.rw.wc.Intersects(b.rw.wc) || a.rw.wc.Intersects(b.rw.rc) ||
         a.rw.rc.Intersects(b.rw.wc);
}

bool PredicateRefuted(const StaticSummary& a, const StaticSummary& b) {
  return !a.rw.wr.RegionIntersects(b.rw.rr) &&
         !a.rw.rr.RegionIntersects(b.rw.wr) &&
         !a.rw.wr.RegionIntersects(b.rw.wr);
}

namespace {

ConflictCell Classify(const StaticSummary& a, const StaticSummary& b) {
  if (!StaticallyConflict(a, b)) return ConflictCell::kDisjoint;
  if (PredicateRefuted(a, b)) return ConflictCell::kPredicateRefuted;
  return ConflictCell::kMayConflict;
}

char Glyph(ConflictCell c) {
  switch (c) {
    case ConflictCell::kDisjoint:
      return '.';
    case ConflictCell::kPredicateRefuted:
      return '~';
    case ConflictCell::kMayConflict:
      return '#';
  }
  return '#';
}

}  // namespace

ConflictCell ConflictMatrix::CellAt(const std::string& a,
                                    const std::string& b) const {
  auto ia = std::find(procedures.begin(), procedures.end(), a);
  auto ib = std::find(procedures.begin(), procedures.end(), b);
  if (ia == procedures.end() || ib == procedures.end()) {
    return ConflictCell::kMayConflict;  // unknown: assume conflict (sound)
  }
  return conflicts[size_t(ia - procedures.begin())]
                  [size_t(ib - procedures.begin())];
}

bool ConflictMatrix::At(const std::string& a, const std::string& b) const {
  return CellAt(a, b) == ConflictCell::kMayConflict;
}

std::string ConflictMatrix::ToString() const {
  std::ostringstream os;
  size_t width = 0;
  for (const auto& p : procedures) width = std::max(width, p.size());
  os << "static conflict matrix (" << procedures.size()
     << " procedures; '#' = may conflict, '~' = predicate-refuted, "
        "'.' = provably disjoint)\n";
  for (size_t i = 0; i < procedures.size(); ++i) {
    os << "  " << procedures[i]
       << std::string(width - procedures[i].size() + 1, ' ');
    for (size_t j = 0; j < procedures.size(); ++j) {
      os << Glyph(conflicts[i][j]);
    }
    os << "\n";
  }
  return os.str();
}

Result<ConflictMatrix> BuildConflictMatrix(StaticAnalyzer* analyzer) {
  ConflictMatrix m;
  m.procedures = analyzer->registry().ProcedureNames();  // map order: sorted
  std::vector<const StaticSummary*> sums;
  sums.reserve(m.procedures.size());
  for (const auto& name : m.procedures) {
    UV_ASSIGN_OR_RETURN(const StaticSummary* sum,
                        analyzer->ProcedureSummary(name));
    sums.push_back(sum);
  }
  m.conflicts.assign(
      m.procedures.size(),
      std::vector<ConflictCell>(m.procedures.size(), ConflictCell::kDisjoint));
  for (size_t i = 0; i < sums.size(); ++i) {
    for (size_t j = i; j < sums.size(); ++j) {
      ConflictCell c = Classify(*sums[i], *sums[j]);
      m.conflicts[i][j] = c;
      m.conflicts[j][i] = c;
    }
  }
  return m;
}

}  // namespace ultraverse::analysis
