#include "analysis/static_rw.h"

#include <algorithm>
#include <optional>

#include "core/predicate.h"
#include "util/nondet_builtins.h"
#include "util/string_util.h"

namespace ultraverse::analysis {

namespace {
using core::SchemaRegistry;
using sql::Expr;
using sql::ExprKind;
using sql::SelectStatement;
using sql::Statement;
using sql::StatementKind;
using sql::Value;

// ---------------------------------------------------------------------------
// StaticWalk
// ---------------------------------------------------------------------------
//
// A deliberate case-by-case mirror of the dynamic AnalyzerImpl
// (core/rw_sets.cc). Keeping the two walks structurally parallel is what
// makes the containment argument (DESIGN.md §10) checkable: every
// divergence between the implementations is a runtime-resolution site,
// and at each such site this walk widens (variable values dropped,
// captured values dropped, alias maps dropped, auto-increment ids
// dropped — all become wildcards). The walk also collects the lint facts
// the dynamic side has no use for: nested DDL, nondet builtins, writes to
// columns missing from the schema.
class StaticWalk {
 public:
  StaticWalk(SchemaRegistry* reg,
             const std::map<std::string, core::QueryAnalyzer::RiConfig>*
                 ri_overrides,
             StaticSummary* out)
      : reg_(reg), ri_overrides_(ri_overrides), out_(&out->rw), sum_(out) {}

  Status Analyze(const Statement& stmt) {
    switch (stmt.kind) {
      case StatementKind::kCreateTable:
      case StatementKind::kAlterTable:
      case StatementKind::kDropTable:
      case StatementKind::kTruncateTable:
      case StatementKind::kCreateView:
      case StatementKind::kDropView:
      case StatementKind::kCreateIndex:
      case StatementKind::kCreateProcedure:
      case StatementKind::kDropProcedure:
      case StatementKind::kCreateTrigger:
      case StatementKind::kDropTrigger:
        out_->is_ddl = true;
        out_->overwrites = true;
        break;
      default:
        break;
    }
    return AnalyzeStmt(stmt, /*depth=*/0);
  }

  /// Entry point for procedure summaries: the body with parameters bound
  /// as (value-less) variables.
  Status AnalyzeProcedureBody(const sql::CreateProcedureStatement& proc) {
    for (const auto& p : proc.params) vars_.insert(p.name);
    return AnalyzeBody(proc.body, /*depth=*/1);
  }

 private:
  /// Variable *names* in scope. Values are never tracked: a variable is
  /// statically unknown even when declared with a literal initializer,
  /// because a WHILE-less reassignment path could still be cheap to get
  /// wrong — wildcarding costs only precision. What must match the
  /// dynamic walk exactly is the name set and its save/restore scoping,
  /// since CollectColumns drops bare columns shadowed by variables.
  using Vars = std::set<std::string>;

  static constexpr int kMaxDepth = 16;

  void ReadSchema(const std::string& name) {
    out_->rc.Add("_S." + name);
    out_->rr.AddWildcard("_S." + name);
    if (reg_->FindTable(name)) out_->read_tables.insert(name);
  }
  void WriteSchema(const std::string& name) {
    out_->wc.Add("_S." + name);
    out_->wr.AddWildcard("_S." + name);
    out_->write_tables.insert(name);
  }

  void MarkDdl() {
    sum_->has_ddl = true;
    out_->is_ddl = true;  // nested DDL widens: dynamic marks top-level only
    out_->overwrites = true;
  }

  void ApplyRiOverride(const std::string& table) {
    if (!ri_overrides_) return;
    auto it = ri_overrides_->find(table);
    if (it == ri_overrides_->end()) return;
    reg_->SetRiColumn(table, it->second.ri_column);
    auto* info = reg_->FindTableMutable(table);
    if (info) info->ri_aliases = it->second.aliases;
  }

  /// Literal-only constant folding: the subset of the dynamic ConstEval
  /// that needs no variable bindings, with identical fold semantics —
  /// wherever both sides resolve, they resolve to the same Value.
  std::optional<Value> ConstEval(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kLiteral:
        return e.literal;
      case ExprKind::kBinary: {
        auto l = ConstEval(*e.children[0]);
        auto r = ConstEval(*e.children[1]);
        if (!l || !r) return std::nullopt;
        const Value& a = *l;
        const Value& b = *r;
        if (a.is_null() || b.is_null()) return Value::Null();
        switch (e.binary_op) {
          case sql::BinaryOp::kAdd:
            if (a.type() == sql::DataType::kInt &&
                b.type() == sql::DataType::kInt) {
              return Value::Int(a.AsInt() + b.AsInt());
            }
            return Value::Double(a.AsDouble() + b.AsDouble());
          case sql::BinaryOp::kSub:
            if (a.type() == sql::DataType::kInt &&
                b.type() == sql::DataType::kInt) {
              return Value::Int(a.AsInt() - b.AsInt());
            }
            return Value::Double(a.AsDouble() - b.AsDouble());
          case sql::BinaryOp::kMul:
            if (a.type() == sql::DataType::kInt &&
                b.type() == sql::DataType::kInt) {
              return Value::Int(a.AsInt() * b.AsInt());
            }
            return Value::Double(a.AsDouble() * b.AsDouble());
          default:
            return std::nullopt;
        }
      }
      case ExprKind::kFuncCall:
        if (e.func_name == "CONCAT") {
          std::string s;
          for (const auto& child : e.children) {
            auto v = ConstEval(*child);
            if (!v) return std::nullopt;
            s += v->ToDisplayString();
          }
          return Value::String(std::move(s));
        }
        return std::nullopt;
      default:
        // kVarRef / kColumnRef: runtime-resolution sites — unknown here.
        return std::nullopt;
    }
  }

  /// Recursive nondet-builtin scan for expressions the RW walk never
  /// visits (variable initializers, CALL arguments). Touches only the
  /// lint facts, never the RW sets.
  void NoteNondet(const Expr& e) {
    if (e.kind == ExprKind::kFuncCall &&
        nondet::IsSqlNondetBuiltin(e.func_name)) {
      sum_->nondet_builtins.insert(e.func_name);
    }
    if (e.kind == ExprKind::kSubquery && e.subquery) {
      NoteNondetSelect(*e.subquery);
    }
    for (const auto& child : e.children) NoteNondet(*child);
  }
  void NoteNondetSelect(const SelectStatement& sel) {
    for (const auto& item : sel.items) NoteNondet(*item.expr);
    for (const auto& join : sel.joins) {
      if (join.on) NoteNondet(*join.on);
    }
    if (sel.where) NoteNondet(*sel.where);
    for (const auto& g : sel.group_by) NoteNondet(*g);
    if (sel.having) NoteNondet(*sel.having);
    for (const auto& o : sel.order_by) NoteNondet(*o.expr);
  }

  std::string ResolveColumnTable(
      const Expr& col, const std::vector<std::pair<std::string, std::string>>&
                           sources) {
    if (!col.table.empty()) {
      for (const auto& [alias, table] : sources) {
        if (EqualsIgnoreCase(alias, col.table)) return table;
      }
      return col.table;
    }
    for (const auto& [alias, table] : sources) {
      (void)alias;
      const auto* info = reg_->FindTable(table);
      if (!info) continue;
      for (const auto& c : info->columns) {
        if (EqualsIgnoreCase(c.name, col.column)) return table;
      }
    }
    return "";
  }

  void CollectColumns(
      const Expr& e,
      const std::vector<std::pair<std::string, std::string>>& sources) {
    if (e.kind == ExprKind::kFuncCall &&
        nondet::IsSqlNondetBuiltin(e.func_name)) {
      sum_->nondet_builtins.insert(e.func_name);
    }
    if (e.kind == ExprKind::kColumnRef) {
      if (e.table.empty() && vars_.count(e.column)) return;  // variable
      std::string table = ResolveColumnTable(e, sources);
      if (!table.empty()) {
        out_->rc.Add(table + "." + e.column);
      } else {
        for (const auto& [alias, t] : sources) {
          (void)alias;
          out_->rc.Add(t + "." + e.column);
        }
      }
      return;
    }
    if (e.kind == ExprKind::kSubquery && e.subquery) {
      AnalyzeSelectRead(*e.subquery);
      return;
    }
    for (const auto& child : e.children) CollectColumns(*child, sources);
  }

  /// Literal-only RI extraction: resolves the same AND/OR/Eq/IN shapes as
  /// the dynamic version, but alias columns and variable-valued
  /// comparisons always widen to nullopt (wildcard). Whenever this
  /// returns a concrete set, the dynamic extraction over the same
  /// predicate returns a subset of it (same fold on the literal sides;
  /// every side this pass fails to resolve only narrows the dynamic
  /// result under AND or is widened to wildcard here under OR).
  std::optional<std::set<std::string>> ExtractRiValues(
      const Expr* where, const std::string& table,
      const SchemaRegistry::TableInfo& info) {
    if (!where) return std::nullopt;
    switch (where->kind) {
      case ExprKind::kBinary: {
        if (where->binary_op == sql::BinaryOp::kAnd) {
          auto l = ExtractRiValues(where->children[0].get(), table, info);
          auto r = ExtractRiValues(where->children[1].get(), table, info);
          if (l && r) {
            std::set<std::string> isect;
            for (const auto& v : *l) {
              if (r->count(v)) isect.insert(v);
            }
            return isect;
          }
          if (l) return l;
          return r;
        }
        if (where->binary_op == sql::BinaryOp::kOr) {
          auto l = ExtractRiValues(where->children[0].get(), table, info);
          auto r = ExtractRiValues(where->children[1].get(), table, info);
          if (l && r) {
            l->insert(r->begin(), r->end());
            return l;
          }
          return std::nullopt;
        }
        if (where->binary_op == sql::BinaryOp::kEq) {
          const Expr* col = where->children[0].get();
          const Expr* val = where->children[1].get();
          if (col->kind != ExprKind::kColumnRef) std::swap(col, val);
          if (col->kind != ExprKind::kColumnRef) return std::nullopt;
          if (!col->table.empty() && !EqualsIgnoreCase(col->table, table)) {
            return std::nullopt;
          }
          if (!EqualsIgnoreCase(col->column, info.ri_column)) {
            // Alias RI columns need the learned alias→RI map: wildcard.
            return std::nullopt;
          }
          auto v = ConstEval(*val);
          if (!v) return std::nullopt;
          return std::set<std::string>{v->Encode()};
        }
        return std::nullopt;
      }
      case ExprKind::kInList: {
        const Expr* col = where->children[0].get();
        if (col->kind != ExprKind::kColumnRef ||
            !EqualsIgnoreCase(col->column, info.ri_column)) {
          return std::nullopt;
        }
        std::set<std::string> vals;
        for (size_t i = 1; i < where->children.size(); ++i) {
          auto v = ConstEval(*where->children[i]);
          if (!v) return std::nullopt;
          vals.insert(v->Encode());
        }
        return vals;
      }
      default:
        return std::nullopt;
    }
  }

  /// Static predicate region (DESIGN.md §15): the shared extraction
  /// skeleton with literal-only folds and no alias translation. Every
  /// hook here widens at least as much as its dynamic twin, so the
  /// dynamic region is contained in this one node-by-node.
  core::ValueRegion ExtractRegion(const Expr* where, const std::string& table,
                                  const SchemaRegistry::TableInfo& info) {
    core::PredicateEvalFn eval =
        [this](const Expr& e) -> std::optional<std::vector<Value>> {
      auto v = ConstEval(e);
      if (!v) return std::nullopt;
      return std::vector<Value>{*v};
    };
    core::PredicateAliasFn alias_lookup =
        [](const std::string&,
           const Value&) -> std::optional<std::set<std::string>> {
      return std::nullopt;  // no learned alias maps statically: widen
    };
    return core::ExtractPredicateRegion(where, table, info.ri_column,
                                        info.ri_aliases, eval, alias_lookup);
  }

  void AddRiReads(const std::string& table, const Expr* where) {
    const auto* info = reg_->FindTable(table);
    ReadSchema(table);
    out_->read_tables.insert(table);
    if (!info || info->ri_column.empty()) {
      out_->rr.AddWildcard(table + ".__row");
      return;
    }
    std::string key = table + "." + info->ri_column;
    out_->rr.AddConstrained(key, ExtractRiValues(where, table, *info),
                            ExtractRegion(where, table, *info));
  }

  void AddRiWrites(const std::string& table, const Expr* where) {
    const auto* info = reg_->FindTable(table);
    out_->write_tables.insert(table);
    if (!info || info->ri_column.empty()) {
      out_->wr.AddWildcard(table + ".__row");
      return;
    }
    std::string key = table + "." + info->ri_column;
    out_->wr.AddConstrained(key, ExtractRiValues(where, table, *info),
                            ExtractRegion(where, table, *info));
  }

  void AnalyzeSelectRead(const SelectStatement& sel) {
    std::vector<std::pair<std::string, std::string>> sources;
    auto add_source = [&](const std::string& name, const std::string& alias) {
      if (const auto* view = reg_->FindView(name)) {
        out_->rc.Add("_S." + name);
        out_->rr.AddWildcard("_S." + name);
        AnalyzeSelectRead(**view);
        return;
      }
      sources.emplace_back(alias.empty() ? name : alias, name);
    };
    if (!sel.from_table.empty()) add_source(sel.from_table, sel.from_alias);
    for (const auto& join : sel.joins) add_source(join.table, join.alias);

    for (const auto& [alias, table] : sources) {
      (void)alias;
      AddRiReads(table, sel.where.get());
      const auto* info = reg_->FindTable(table);
      if (info) {
        for (const auto& fk : info->foreign_keys) {
          out_->rc.Add(fk.ref_table + "." + fk.ref_column);
          out_->read_tables.insert(fk.ref_table);
          out_->rr.AddWildcard("_S." + fk.ref_table);
        }
      }
    }
    for (const auto& item : sel.items) {
      if (item.expr->kind == ExprKind::kStar) {
        for (const auto& [alias, table] : sources) {
          (void)alias;
          const auto* info = reg_->FindTable(table);
          if (!info) continue;
          for (const auto& c : info->columns) {
            out_->rc.Add(table + "." + c.name);
          }
        }
        continue;
      }
      CollectColumns(*item.expr, sources);
    }
    for (const auto& join : sel.joins) {
      if (join.on) CollectColumns(*join.on, sources);
    }
    if (sel.where) CollectColumns(*sel.where, sources);
    for (const auto& g : sel.group_by) CollectColumns(*g, sources);
    if (sel.having) CollectColumns(*sel.having, sources);
    for (const auto& o : sel.order_by) CollectColumns(*o.expr, sources);
  }

  std::string ResolveWriteTarget(const std::string& name) {
    if (const auto* view = reg_->FindView(name)) {
      ReadSchema(name);
      out_->wc.Add("_S." + name);
      if (!(*view)->from_table.empty()) return (*view)->from_table;
    }
    return name;
  }

  void MergeTriggerBodies(const std::string& table, sql::TriggerEvent event,
                          int depth) {
    for (const auto* trig : reg_->TriggersOn(table, event)) {
      ReadSchema(trig->name);
      Vars saved = vars_;
      const auto* info = reg_->FindTable(table);
      if (info) {
        for (const auto& c : info->columns) {
          vars_.insert("NEW." + c.name);
          vars_.insert("OLD." + c.name);
        }
      }
      for (const auto& stmt : trig->body) {
        (void)AnalyzeStmt(*stmt, depth + 1);
      }
      vars_ = std::move(saved);
    }
  }

  void NoteDeadColumnWrite(const SchemaRegistry::TableInfo& info,
                           const std::string& table,
                           const std::string& column) {
    for (const auto& c : info.columns) {
      if (EqualsIgnoreCase(c.name, column)) return;
    }
    sum_->dead_column_writes.push_back(table + "." + column);
  }

  Status AnalyzeStmt(const Statement& stmt, int depth) {
    if (depth > kMaxDepth) return Status::Internal("analysis depth limit");
    switch (stmt.kind) {
      case StatementKind::kCreateTable: {
        const auto& schema = stmt.create_table.schema;
        ReadSchema(schema.name);
        WriteSchema(schema.name);
        for (const auto& fk : schema.foreign_keys) {
          ReadSchema(fk.ref_table);
        }
        MarkDdl();
        reg_->ApplyDdl(stmt);
        ApplyRiOverride(schema.name);
        return Status::OK();
      }
      case StatementKind::kAlterTable:
        ReadSchema(stmt.alter_table.table);
        WriteSchema(stmt.alter_table.table);
        MarkDdl();
        reg_->ApplyDdl(stmt);
        return Status::OK();
      case StatementKind::kDropTable:
      case StatementKind::kTruncateTable: {
        const std::string& name = stmt.kind == StatementKind::kDropTable
                                      ? stmt.drop_name
                                      : stmt.truncate_table;
        ReadSchema(name);
        WriteSchema(name);
        MarkDdl();
        reg_->ApplyDdl(stmt);
        return Status::OK();
      }
      case StatementKind::kCreateView: {
        ReadSchema(stmt.create_view.name);
        WriteSchema(stmt.create_view.name);
        if (!stmt.create_view.select->from_table.empty()) {
          ReadSchema(stmt.create_view.select->from_table);
        }
        for (const auto& join : stmt.create_view.select->joins) {
          ReadSchema(join.table);
        }
        MarkDdl();
        reg_->ApplyDdl(stmt);
        return Status::OK();
      }
      case StatementKind::kDropView:
      case StatementKind::kDropProcedure:
        ReadSchema(stmt.drop_name);
        WriteSchema(stmt.drop_name);
        MarkDdl();
        reg_->ApplyDdl(stmt);
        return Status::OK();
      case StatementKind::kDropTrigger:
        ReadSchema(stmt.drop_name);
        WriteSchema(stmt.drop_name);
        if (const auto* trg = reg_->FindTrigger(stmt.drop_name)) {
          WriteSchema(trg->table);
        }
        MarkDdl();
        reg_->ApplyDdl(stmt);
        return Status::OK();
      case StatementKind::kCreateIndex:
        ReadSchema(stmt.create_index.table);
        WriteSchema(stmt.create_index.table);
        MarkDdl();
        return Status::OK();
      case StatementKind::kCreateProcedure:
        ReadSchema(stmt.create_procedure.name);
        WriteSchema(stmt.create_procedure.name);
        MarkDdl();
        reg_->ApplyDdl(stmt);
        return Status::OK();
      case StatementKind::kCreateTrigger:
        ReadSchema(stmt.create_trigger.name);
        WriteSchema(stmt.create_trigger.name);
        WriteSchema(stmt.create_trigger.table);
        MarkDdl();
        reg_->ApplyDdl(stmt);
        return Status::OK();

      case StatementKind::kSelect:
        AnalyzeSelectRead(*stmt.select);
        return Status::OK();

      case StatementKind::kInsert: {
        std::string table = ResolveWriteTarget(stmt.insert.table);
        const auto* info = reg_->FindTable(table);
        ReadSchema(table);
        out_->read_tables.insert(table);
        out_->write_tables.insert(table);
        if (stmt.insert.select) AnalyzeSelectRead(*stmt.insert.select);
        if (!info) return Status::OK();

        for (const auto& c : info->columns) {
          out_->wc.Add(table + "." + c.name);
          if (c.auto_increment) out_->rc.Add(table + "." + c.name);
        }
        for (const auto& col : stmt.insert.columns) {
          NoteDeadColumnWrite(*info, table, col);
        }
        for (const auto& fk : info->foreign_keys) {
          out_->rc.Add(fk.ref_table + "." + fk.ref_column);
          out_->read_tables.insert(fk.ref_table);
        }

        if (info->ri_column.empty()) {
          out_->wr.AddWildcard(table + ".__row");
          for (const auto& row : stmt.insert.rows) {
            for (const auto& e : row) CollectColumns(*e, {});
          }
        } else {
          std::string key = table + "." + info->ri_column;
          int ri_idx = -1;
          std::vector<std::string> cols = stmt.insert.columns;
          if (cols.empty()) {
            for (const auto& c : info->columns) cols.push_back(c.name);
          }
          for (size_t i = 0; i < cols.size(); ++i) {
            if (EqualsIgnoreCase(cols[i], info->ri_column)) ri_idx = int(i);
          }
          for (const auto& row : stmt.insert.rows) {
            std::optional<Value> ri_val;
            if (ri_idx >= 0 && ri_idx < int(row.size())) {
              ri_val = ConstEval(*row[ri_idx]);
              // NULL means "assign an auto-increment id": the dynamic
              // walk concretizes from the nondet record; here any row.
              if (ri_val && ri_val->is_null()) ri_val = std::nullopt;
            }
            if (ri_val) {
              out_->wr.AddValue(key, ri_val->Encode());
            } else {
              out_->wr.AddWildcard(key);
            }
            for (const auto& e : row) CollectColumns(*e, {});
          }
          if (stmt.insert.select) out_->wr.AddWildcard(key);
        }
        MergeTriggerBodies(table, sql::TriggerEvent::kInsert, depth);
        return Status::OK();
      }

      case StatementKind::kUpdate: {
        std::string table = ResolveWriteTarget(stmt.update.table);
        const auto* info = reg_->FindTable(table);
        ReadSchema(table);
        out_->overwrites = true;
        std::vector<std::pair<std::string, std::string>> sources = {
            {table, table}};
        for (const auto& [col, e] : stmt.update.assignments) {
          out_->wc.Add(table + "." + col);
          if (info) NoteDeadColumnWrite(*info, table, col);
          CollectColumns(*e, sources);
          if (info) {
            for (const auto& ref : reg_->TablesReferencing(table)) {
              const auto* ref_info = reg_->FindTable(ref);
              if (!ref_info) continue;
              for (const auto& fk : ref_info->foreign_keys) {
                if (fk.ref_table == table &&
                    EqualsIgnoreCase(fk.ref_column, col)) {
                  out_->wc.Add(ref + "." + fk.column);
                  out_->write_tables.insert(ref);
                  const auto* ri = reg_->FindTable(ref);
                  if (ri && !ri->ri_column.empty()) {
                    out_->wr.AddWildcard(ref + "." + ri->ri_column);
                  }
                }
              }
            }
          }
        }
        if (stmt.update.where) CollectColumns(*stmt.update.where, sources);
        AddRiReads(table, stmt.update.where.get());
        AddRiWrites(table, stmt.update.where.get());
        out_->read_tables.insert(table);

        if (info && !info->ri_column.empty()) {
          std::string key = table + "." + info->ri_column;
          for (const auto& [col, e] : stmt.update.assignments) {
            if (!EqualsIgnoreCase(col, info->ri_column)) continue;
            auto new_v = ConstEval(*e);
            if (new_v) {
              // Same concrete value the dynamic fold produces; no merged-
              // RI Union here (the union-find is dynamic state).
              out_->wr.AddValue(key, new_v->Encode());
            } else {
              out_->wr.AddWildcard(key);
            }
          }
        }
        MergeTriggerBodies(table, sql::TriggerEvent::kUpdate, depth);
        return Status::OK();
      }

      case StatementKind::kDelete: {
        std::string table = ResolveWriteTarget(stmt.del.table);
        const auto* info = reg_->FindTable(table);
        ReadSchema(table);
        out_->overwrites = true;
        if (info) {
          for (const auto& c : info->columns) {
            out_->wc.Add(table + "." + c.name);
          }
        }
        std::vector<std::pair<std::string, std::string>> sources = {
            {table, table}};
        if (stmt.del.where) CollectColumns(*stmt.del.where, sources);
        AddRiReads(table, stmt.del.where.get());
        AddRiWrites(table, stmt.del.where.get());
        for (const auto& ref : reg_->TablesReferencing(table)) {
          const auto* ref_info = reg_->FindTable(ref);
          if (!ref_info) continue;
          for (const auto& fk : ref_info->foreign_keys) {
            if (fk.ref_table == table) out_->wc.Add(ref + "." + fk.column);
          }
          out_->wr.AddWildcard(ref_info->ri_column.empty()
                                   ? ref + ".__row"
                                   : ref + "." + ref_info->ri_column);
          out_->write_tables.insert(ref);
        }
        MergeTriggerBodies(table, sql::TriggerEvent::kDelete, depth);
        return Status::OK();
      }

      case StatementKind::kCall: {
        const auto* proc = reg_->FindProcedure(stmt.call.procedure);
        ReadSchema(stmt.call.procedure);
        for (const auto& a : stmt.call.args) NoteNondet(*a);
        if (!proc) return Status::OK();
        // Parameters abstracted to wildcards: only the bound *names*
        // matter, and only as many as the call supplies (mirroring the
        // dynamic walk's min(params, args) binding).
        Vars saved = vars_;
        for (size_t i = 0;
             i < proc->params.size() && i < stmt.call.args.size(); ++i) {
          vars_.insert(proc->params[i].name);
        }
        Status st = AnalyzeBody(proc->body, depth + 1);
        vars_ = std::move(saved);
        return st;
      }

      case StatementKind::kTransaction:
        return AnalyzeBody(stmt.transaction.statements, depth + 1);

      case StatementKind::kDeclareVar:
        if (stmt.declare_var.init) NoteNondet(*stmt.declare_var.init);
        vars_.insert(stmt.declare_var.name);
        return Status::OK();
      case StatementKind::kSetVar:
        NoteNondet(*stmt.set_var.value);
        vars_.insert(stmt.set_var.name);
        return Status::OK();

      case StatementKind::kIf: {
        // All-paths merge: every branch contributes to one summary.
        for (const auto& branch : stmt.if_stmt.branches) {
          if (branch.condition) CollectColumns(*branch.condition, {});
          Vars saved = vars_;
          UV_RETURN_NOT_OK(AnalyzeBody(branch.body, depth + 1));
          vars_ = std::move(saved);
        }
        return Status::OK();
      }
      case StatementKind::kWhile: {
        CollectColumns(*stmt.while_stmt.condition, {});
        MarkAssignedUnknown(stmt.while_stmt.body);
        return AnalyzeBody(stmt.while_stmt.body, depth + 1);
      }
      case StatementKind::kLeave:
      case StatementKind::kSignal:
        return Status::OK();
    }
    return Status::OK();
  }

  Status AnalyzeBody(const std::vector<sql::StatementPtr>& body, int depth) {
    for (const auto& stmt : body) {
      UV_RETURN_NOT_OK(AnalyzeStmt(*stmt, depth));
      if (stmt->kind == StatementKind::kSelect) {
        for (const auto& var : stmt->select->into_vars) {
          vars_.insert(var);
        }
      }
    }
    return Status::OK();
  }

  void MarkAssignedUnknown(const std::vector<sql::StatementPtr>& body) {
    for (const auto& stmt : body) {
      switch (stmt->kind) {
        case StatementKind::kSetVar:
          vars_.insert(stmt->set_var.name);
          break;
        case StatementKind::kDeclareVar:
          vars_.insert(stmt->declare_var.name);
          break;
        case StatementKind::kSelect:
          for (const auto& var : stmt->select->into_vars) {
            vars_.insert(var);
          }
          break;
        case StatementKind::kIf:
          for (const auto& branch : stmt->if_stmt.branches) {
            MarkAssignedUnknown(branch.body);
          }
          break;
        case StatementKind::kWhile:
          MarkAssignedUnknown(stmt->while_stmt.body);
          break;
        default:
          break;
      }
    }
  }

  SchemaRegistry* reg_;
  const std::map<std::string, core::QueryAnalyzer::RiConfig>* ri_overrides_;
  core::QueryRW* out_;
  StaticSummary* sum_;
  Vars vars_;
};

}  // namespace

// ---------------------------------------------------------------------------
// StaticAnalyzer
// ---------------------------------------------------------------------------

StaticAnalyzer::StaticAnalyzer() = default;

StaticAnalyzer::StaticAnalyzer(const core::SchemaRegistry* follow)
    : follow_(follow) {}

void StaticAnalyzer::SetRiOverride(const std::string& table,
                                   const std::string& ri_column,
                                   std::vector<std::string> aliases) {
  ri_overrides_[table] =
      core::QueryAnalyzer::RiConfig{ri_column, std::move(aliases)};
  procedure_cache_.clear();
}

void StaticAnalyzer::SyncRiOverrides(
    const std::map<std::string, core::QueryAnalyzer::RiConfig>& configs) {
  if (ri_overrides_ == configs) return;
  ri_overrides_ = configs;
  procedure_cache_.clear();
}

Result<StaticSummary> StaticAnalyzer::Summarize(
    const sql::Statement& stmt) const {
  StaticSummary sum;
  core::SchemaRegistry scratch = registry();  // intra-statement DDL visible
  StaticWalk walk(&scratch, &ri_overrides_, &sum);
  UV_RETURN_NOT_OK(walk.Analyze(stmt));
  sum.footprint = core::FootprintOf(sum.rw);
  return sum;
}

Result<StaticSummary> StaticAnalyzer::AnalyzeNext(const sql::Statement& stmt) {
  if (follow_) {
    return Status::InvalidArgument(
        "AnalyzeNext requires an owned registry (follower mode is "
        "read-only)");
  }
  StaticSummary sum;
  StaticWalk walk(&owned_, &ri_overrides_, &sum);
  UV_RETURN_NOT_OK(walk.Analyze(stmt));
  sum.footprint = core::FootprintOf(sum.rw);
  if (sum.has_ddl) procedure_cache_.clear();
  return sum;
}

Result<const StaticSummary*> StaticAnalyzer::ProcedureSummary(
    const std::string& name) {
  auto it = procedure_cache_.find(name);
  if (it != procedure_cache_.end()) return &it->second;
  const auto* proc = registry().FindProcedure(name);
  if (!proc) return Status::NotFound("unknown procedure " + name);
  StaticSummary sum;
  core::SchemaRegistry scratch = registry();
  StaticWalk walk(&scratch, &ri_overrides_, &sum);
  UV_RETURN_NOT_OK(walk.AnalyzeProcedureBody(*proc));
  sum.footprint = core::FootprintOf(sum.rw);
  auto [pos, inserted] = procedure_cache_.emplace(name, std::move(sum));
  (void)inserted;
  return &pos->second;
}

std::vector<core::TableFootprint> StaticLogFootprints(
    const sql::QueryLog& log) {
  std::vector<core::TableFootprint> out;
  out.reserve(log.size());
  StaticAnalyzer analyzer;
  for (const auto& entry : log.entries()) {
    auto sum = analyzer.AnalyzeNext(*entry.stmt);
    if (sum.ok()) {
      out.push_back(std::move(sum->footprint));
    } else {
      core::TableFootprint universal;
      universal.universal = true;  // never skipped: sound fallback
      out.push_back(std::move(universal));
    }
  }
  return out;
}

}  // namespace ultraverse::analysis
