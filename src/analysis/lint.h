#ifndef ULTRAVERSE_ANALYSIS_LINT_H_
#define ULTRAVERSE_ANALYSIS_LINT_H_

#include <string>
#include <vector>

#include "analysis/conflict_matrix.h"
#include "analysis/static_rw.h"
#include "sqldb/ast.h"

namespace ultraverse::analysis {

/// One lint diagnostic. Categories:
///   "nondet-builtin"     — a nondeterministic SQL builtin (NOW, RAND, ...)
///                          appears outside the record/replay capture path,
///                          so a retroactive replay would re-draw it;
///   "ddl-in-procedure"   — a procedure body contains DDL, which defeats
///                          Hash-jumper checkpointing and forces schema
///                          rebuilds on every replay through the CALL;
///   "unowned-write"      — a raw DML statement writes a table no stored
///                          procedure ever writes, i.e. traffic bypassing
///                          the transpiled application templates §3 expects;
///   "dead-column-write"  — a write names a column absent from the table's
///                          schema at that point (a dropped column or typo):
///                          a dead branch the planner still charges for.
struct LintFinding {
  std::string category;
  size_t statement_index = 0;  // 0-based position in the linted sequence
  std::string subject;         // builtin / procedure / "table.column"
  std::string message;
};

struct LintReport {
  std::vector<LintFinding> findings;
  /// Procedure-pair conflict matrix of the final catalog state (empty
  /// procedures list when the input declares none).
  ConflictMatrix matrix;

  std::string ToString() const;
};

/// Lints a statement sequence (a schema script, a query history, or both
/// concatenated): walks it through an owned StaticAnalyzer — so DDL
/// evolves the catalog exactly as the dynamic analyzer would see it — and
/// reports the findings above plus the final conflict matrix.
Result<LintReport> LintStatements(
    const std::vector<sql::StatementPtr>& statements);

}  // namespace ultraverse::analysis

#endif  // ULTRAVERSE_ANALYSIS_LINT_H_
