#include "analysis/lint.h"

#include <set>
#include <sstream>

namespace ultraverse::analysis {

namespace {

bool IsRawDml(const sql::Statement& stmt) {
  switch (stmt.kind) {
    case sql::StatementKind::kInsert:
    case sql::StatementKind::kUpdate:
    case sql::StatementKind::kDelete:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::string LintReport::ToString() const {
  std::ostringstream os;
  if (findings.empty()) {
    os << "no findings\n";
  } else {
    for (const auto& f : findings) {
      os << "#" << f.statement_index << " [" << f.category << "] "
         << f.subject << ": " << f.message << "\n";
    }
  }
  if (!matrix.procedures.empty()) os << matrix.ToString();
  return os.str();
}

Result<LintReport> LintStatements(
    const std::vector<sql::StatementPtr>& statements) {
  LintReport report;
  StaticAnalyzer analyzer;

  struct DmlWrite {
    size_t index;
    std::string table;
  };
  std::vector<DmlWrite> raw_writes;
  std::set<std::string> nondet_reported;  // (index, builtin) dedup is
                                          // per-statement; set of "i|name"

  for (size_t i = 0; i < statements.size(); ++i) {
    const sql::Statement& stmt = *statements[i];
    auto sum = analyzer.AnalyzeNext(stmt);
    if (!sum.ok()) {
      LintFinding f;
      f.category = "analysis-error";
      f.statement_index = i;
      f.subject = sql::ToSql(stmt);
      f.message = sum.status().ToString();
      report.findings.push_back(std::move(f));
      continue;
    }

    for (const auto& b : sum->nondet_builtins) {
      std::string key = std::to_string(i) + "|" + b;
      if (!nondet_reported.insert(key).second) continue;
      LintFinding f;
      f.category = "nondet-builtin";
      f.statement_index = i;
      f.subject = b;
      f.message =
          "nondeterministic builtin outside record/replay capture: a "
          "retroactive replay re-draws its value";
      report.findings.push_back(std::move(f));
    }

    if (stmt.kind == sql::StatementKind::kCreateProcedure) {
      auto proc = analyzer.ProcedureSummary(stmt.create_procedure.name);
      if (proc.ok() && (*proc)->has_ddl) {
        LintFinding f;
        f.category = "ddl-in-procedure";
        f.statement_index = i;
        f.subject = stmt.create_procedure.name;
        f.message =
            "procedure body contains DDL: every replay through a CALL "
            "forces a schema rebuild and defeats Hash-jumper checkpoints";
        report.findings.push_back(std::move(f));
      }
      // Body-level facts surface at the declaration site: the statement
      // walk above never enters an uncalled body.
      if (proc.ok()) {
        for (const auto& b : (*proc)->nondet_builtins) {
          LintFinding f;
          f.category = "nondet-builtin";
          f.statement_index = i;
          f.subject = b;
          f.message = "procedure " + stmt.create_procedure.name +
                      " calls a nondeterministic builtin outside "
                      "record/replay capture: a retroactive replay "
                      "re-draws its value";
          report.findings.push_back(std::move(f));
        }
        for (const auto& dead : (*proc)->dead_column_writes) {
          LintFinding f;
          f.category = "dead-column-write";
          f.statement_index = i;
          f.subject = dead;
          f.message = "procedure " + stmt.create_procedure.name +
                      " writes a column absent from the table's schema "
                      "(dropped column or typo)";
          report.findings.push_back(std::move(f));
        }
      }
    }

    for (const auto& dead : sum->dead_column_writes) {
      LintFinding f;
      f.category = "dead-column-write";
      f.statement_index = i;
      f.subject = dead;
      f.message =
          "write names a column absent from the table's schema at this "
          "point (dropped column or typo)";
      report.findings.push_back(std::move(f));
    }

    if (IsRawDml(stmt)) {
      for (const auto& t : sum->rw.write_tables) {
        raw_writes.push_back({i, t});
      }
    }
  }

  // Unowned writes: tables written by raw DML but by no procedure summary.
  // Only meaningful when the input declares procedures at all — a plain
  // SQL script with no application layer is not "bypassing" anything.
  std::vector<std::string> procs = analyzer.registry().ProcedureNames();
  if (!procs.empty()) {
    std::set<std::string> proc_written;
    for (const auto& name : procs) {
      auto sum = analyzer.ProcedureSummary(name);
      if (!sum.ok()) continue;
      proc_written.insert((*sum)->rw.write_tables.begin(),
                          (*sum)->rw.write_tables.end());
    }
    std::set<std::string> reported;
    for (const auto& w : raw_writes) {
      if (proc_written.count(w.table)) continue;
      if (!analyzer.registry().FindTable(w.table)) continue;  // dropped
      if (!reported.insert(w.table).second) continue;
      LintFinding f;
      f.category = "unowned-write";
      f.statement_index = w.index;
      f.subject = w.table;
      f.message =
          "raw DML writes a table no stored procedure writes: traffic "
          "bypassing the transpiled application templates";
      report.findings.push_back(std::move(f));
    }
  }

  UV_ASSIGN_OR_RETURN(report.matrix, BuildConflictMatrix(&analyzer));
  return report;
}

}  // namespace ultraverse::analysis
