#include "obs/explain.h"

#include <time.h>

#include <cctype>
#include <cstdio>
#include <map>
#include <memory>
#include <sstream>

namespace ultraverse::obs {

namespace {

constexpr const char* kVerdictNames[kNumTxnVerdicts] = {
    "replayed",
    "retro-target",
    "pruned-read-only",
    "pruned-static-footprint",
    "pruned-predicate-disjoint",
    "pruned-column-disjoint",
    "cluster-excluded",
    "hash-jump-skip",
    "result-cache-hit",
};

void AppendQuoted(std::ostringstream* out, const std::string& s) {
  *out << '"';
  for (char c : s) {
    switch (c) {
      case '"': *out << "\\\""; break;
      case '\\': *out << "\\\\"; break;
      case '\n': *out << "\\n"; break;
      case '\t': *out << "\\t"; break;
      case '\r': *out << "\\r"; break;
      default:
        if (uint8_t(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out << buf;
        } else {
          *out << c;
        }
    }
  }
  *out << '"';
}

void AppendStringArray(std::ostringstream* out,
                       const std::vector<std::string>& v) {
  *out << '[';
  for (size_t i = 0; i < v.size(); ++i) {
    if (i) *out << ',';
    AppendQuoted(out, v[i]);
  }
  *out << ']';
}

// ---------------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser, sufficient for round-
// tripping ToJson() output (objects, arrays, strings, integers, booleans).
// Shared by WhatIfReport::FromJson and the flight-recorder dump reader.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JsonValue> arr;
  std::map<std::string, JsonValue> obj;

  const JsonValue* Get(const std::string& key) const {
    auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
  }
  uint64_t U64(const std::string& key, uint64_t fallback = 0) const {
    const JsonValue* v = Get(key);
    return v && v->kind == kNumber ? uint64_t(v->num) : fallback;
  }
  int64_t I64(const std::string& key, int64_t fallback = 0) const {
    const JsonValue* v = Get(key);
    return v && v->kind == kNumber ? int64_t(v->num) : fallback;
  }
  std::string Str(const std::string& key) const {
    const JsonValue* v = Get(key);
    return v && v->kind == kString ? v->str : std::string();
  }
  bool Bool(const std::string& key) const {
    const JsonValue* v = Get(key);
    return v && v->kind == kBool && v->b;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  std::optional<JsonValue> Parse() {
    auto v = ParseValue();
    if (!v) return std::nullopt;
    SkipWs();
    if (pos_ != s_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(uint8_t(s_[pos_]))) ++pos_;
  }
  bool Eat(char c) {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::optional<JsonValue> ParseValue() {
    SkipWs();
    if (pos_ >= s_.size()) return std::nullopt;
    char c = s_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == '-' || std::isdigit(uint8_t(c))) return ParseNumber();
    if (s_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      JsonValue v;
      v.kind = JsonValue::kBool;
      v.b = true;
      return v;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      JsonValue v;
      v.kind = JsonValue::kBool;
      return v;
    }
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return JsonValue{};
    }
    return std::nullopt;
  }

  std::optional<JsonValue> ParseObject() {
    if (!Eat('{')) return std::nullopt;
    JsonValue v;
    v.kind = JsonValue::kObject;
    if (Eat('}')) return v;
    while (true) {
      auto key = ParseString();
      if (!key || !Eat(':')) return std::nullopt;
      auto val = ParseValue();
      if (!val) return std::nullopt;
      v.obj.emplace(std::move(key->str), std::move(*val));
      if (Eat('}')) return v;
      if (!Eat(',')) return std::nullopt;
    }
  }

  std::optional<JsonValue> ParseArray() {
    if (!Eat('[')) return std::nullopt;
    JsonValue v;
    v.kind = JsonValue::kArray;
    if (Eat(']')) return v;
    while (true) {
      auto val = ParseValue();
      if (!val) return std::nullopt;
      v.arr.push_back(std::move(*val));
      if (Eat(']')) return v;
      if (!Eat(',')) return std::nullopt;
    }
  }

  std::optional<JsonValue> ParseString() {
    SkipWs();
    if (pos_ >= s_.size() || s_[pos_] != '"') return std::nullopt;
    ++pos_;
    JsonValue v;
    v.kind = JsonValue::kString;
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return v;
      if (c == '\\') {
        if (pos_ >= s_.size()) return std::nullopt;
        char e = s_[pos_++];
        switch (e) {
          case '"': v.str += '"'; break;
          case '\\': v.str += '\\'; break;
          case '/': v.str += '/'; break;
          case 'n': v.str += '\n'; break;
          case 't': v.str += '\t'; break;
          case 'r': v.str += '\r'; break;
          case 'b': v.str += '\b'; break;
          case 'f': v.str += '\f'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return std::nullopt;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = s_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= unsigned(h - '0');
              else if (h >= 'a' && h <= 'f') code |= unsigned(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= unsigned(h - 'A' + 10);
              else return std::nullopt;
            }
            // ToJson only emits \u for control bytes; pass others through
            // as a single byte when they fit, else drop to '?'.
            v.str += code < 0x100 ? char(code) : '?';
            break;
          }
          default: return std::nullopt;
        }
      } else {
        v.str += c;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<JsonValue> ParseNumber() {
    SkipWs();
    size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(uint8_t(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' ||
            s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return std::nullopt;
    JsonValue v;
    v.kind = JsonValue::kNumber;
    v.num = std::strtod(s_.c_str() + start, nullptr);
    return v;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

std::vector<std::string> ReadStringArray(const JsonValue* v) {
  std::vector<std::string> out;
  if (!v || v->kind != JsonValue::kArray) return out;
  for (const auto& e : v->arr) {
    if (e.kind == JsonValue::kString) out.push_back(e.str);
  }
  return out;
}

}  // namespace

const char* TxnVerdictName(TxnVerdict v) {
  return kVerdictNames[size_t(v)];
}

std::optional<TxnVerdict> TxnVerdictFromName(const std::string& name) {
  for (int i = 0; i < kNumTxnVerdicts; ++i) {
    if (name == kVerdictNames[i]) return TxnVerdict(i);
  }
  return std::nullopt;
}

const TxnExplain* WhatIfReport::FindTxn(uint64_t index) const {
  for (const auto& t : txns) {
    if (t.index == index && !t.is_new) return &t;
  }
  return nullptr;
}

std::string WhatIfReport::ToJson() const {
  std::ostringstream out;
  out << "{\"op\":";
  AppendQuoted(&out, op);
  out << ",\"target_index\":" << target_index << ",\"mode\":";
  AppendQuoted(&out, mode);
  out << ",\"level\":"
      << (level == ExplainLevel::kOff
              ? "\"off\""
              : level == ExplainLevel::kSummary ? "\"summary\"" : "\"full\"");
  out << ",\"suffix_size\":" << suffix_size << ",\"replayed\":" << replayed
      << ",\"skipped\":" << skipped;
  out << ",\"verdict_counts\":{";
  bool first = true;
  for (int i = 0; i < kNumTxnVerdicts; ++i) {
    if (!verdict_counts[size_t(i)]) continue;
    if (!first) out << ',';
    first = false;
    AppendQuoted(&out, kVerdictNames[i]);
    out << ':' << verdict_counts[size_t(i)];
  }
  out << '}';
  out << ",\"hash_jump\":" << (hash_jump ? "true" : "false")
      << ",\"hash_jump_index\":" << hash_jump_index;
  out << ",\"phases\":[";
  for (size_t i = 0; i < phases.size(); ++i) {
    if (i) out << ',';
    out << "{\"name\":";
    AppendQuoted(&out, phases[i].name);
    out << ",\"wall_us\":" << phases[i].wall_us
        << ",\"cpu_us\":" << phases[i].cpu_us << '}';
  }
  out << ']';
  out << ",\"staging\":{\"tables_staged\":" << tables_staged
      << ",\"pages_faulted\":" << pages_faulted
      << ",\"staged_bytes\":" << staged_bytes << '}';
  out << ",\"vm\":{\"plan_cache_hits\":" << plan_cache_hits
      << ",\"plan_cache_misses\":" << plan_cache_misses
      << ",\"index_path\":" << vm_index_path
      << ",\"scan_path\":" << vm_scan_path
      << ",\"advisory_built\":" << vm_advisory_built << '}';
  out << ",\"lifecycle\":{\"retries\":" << retries
      << ",\"faults_injected\":" << faults_injected << ",\"events\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    if (i) out << ',';
    out << "{\"kind\":";
    AppendQuoted(&out, events[i].kind);
    out << ",\"detail\":";
    AppendQuoted(&out, events[i].detail);
    out << ",\"at_us\":" << events[i].at_us << '}';
  }
  out << "]}";
  out << ",\"txns\":[";
  for (size_t i = 0; i < txns.size(); ++i) {
    const TxnExplain& t = txns[i];
    if (i) out << ',';
    out << "{\"index\":" << t.index
        << ",\"is_new\":" << (t.is_new ? "true" : "false") << ",\"verdict\":";
    AppendQuoted(&out, TxnVerdictName(t.verdict));
    out << ",\"evidence\":";
    AppendQuoted(&out, t.evidence);
    out << ",\"reads\":";
    AppendStringArray(&out, t.read_tables);
    out << ",\"writes\":";
    AppendStringArray(&out, t.write_tables);
    if (t.rebuild_widened) out << ",\"rebuild_widened\":true";
    if (t.cluster_id >= 0) out << ",\"cluster_id\":" << t.cluster_id;
    if (!t.digest.empty()) {
      out << ",\"digest\":";
      AppendQuoted(&out, t.digest);
    }
    out << '}';
  }
  out << "]}";
  return out.str();
}

std::optional<WhatIfReport> WhatIfReport::FromJson(const std::string& json) {
  auto parsed = JsonParser(json).Parse();
  if (!parsed || parsed->kind != JsonValue::kObject) return std::nullopt;
  const JsonValue& root = *parsed;
  WhatIfReport r;
  r.op = root.Str("op");
  r.target_index = root.U64("target_index");
  r.mode = root.Str("mode");
  std::string level = root.Str("level");
  r.level = level == "off" ? ExplainLevel::kOff
            : level == "full" ? ExplainLevel::kFull
                              : ExplainLevel::kSummary;
  r.suffix_size = root.U64("suffix_size");
  r.replayed = root.U64("replayed");
  r.skipped = root.U64("skipped");
  if (const JsonValue* vc = root.Get("verdict_counts")) {
    for (const auto& [name, count] : vc->obj) {
      auto v = TxnVerdictFromName(name);
      if (!v || count.kind != JsonValue::kNumber) return std::nullopt;
      r.verdict_counts[size_t(*v)] = uint64_t(count.num);
    }
  }
  r.hash_jump = root.Bool("hash_jump");
  r.hash_jump_index = root.U64("hash_jump_index");
  if (const JsonValue* phases = root.Get("phases")) {
    for (const auto& p : phases->arr) {
      PhaseBreakdown pb;
      pb.name = p.Str("name");
      pb.wall_us = p.U64("wall_us");
      pb.cpu_us = p.U64("cpu_us");
      r.phases.push_back(std::move(pb));
    }
  }
  if (const JsonValue* st = root.Get("staging")) {
    r.tables_staged = st->U64("tables_staged");
    r.pages_faulted = st->U64("pages_faulted");
    r.staged_bytes = st->U64("staged_bytes");
  }
  if (const JsonValue* vm = root.Get("vm")) {
    r.plan_cache_hits = vm->U64("plan_cache_hits");
    r.plan_cache_misses = vm->U64("plan_cache_misses");
    r.vm_index_path = vm->U64("index_path");
    r.vm_scan_path = vm->U64("scan_path");
    r.vm_advisory_built = vm->U64("advisory_built");
  }
  if (const JsonValue* lc = root.Get("lifecycle")) {
    r.retries = lc->U64("retries");
    r.faults_injected = lc->U64("faults_injected");
    if (const JsonValue* ev = lc->Get("events")) {
      for (const auto& e : ev->arr) {
        LifecycleEvent le;
        le.kind = e.Str("kind");
        le.detail = e.Str("detail");
        le.at_us = e.U64("at_us");
        r.events.push_back(std::move(le));
      }
    }
  }
  if (const JsonValue* txns = root.Get("txns")) {
    for (const auto& t : txns->arr) {
      TxnExplain te;
      te.index = t.U64("index");
      te.is_new = t.Bool("is_new");
      auto v = TxnVerdictFromName(t.Str("verdict"));
      if (!v) return std::nullopt;
      te.verdict = *v;
      te.evidence = t.Str("evidence");
      te.read_tables = ReadStringArray(t.Get("reads"));
      te.write_tables = ReadStringArray(t.Get("writes"));
      te.rebuild_widened = t.Bool("rebuild_widened");
      te.cluster_id = t.I64("cluster_id", -1);
      te.digest = t.Str("digest");
      r.txns.push_back(std::move(te));
    }
  }
  return r;
}

std::string WhatIfReport::ToText(std::optional<uint64_t> txn_filter) const {
  std::ostringstream out;
  char buf[160];
  out << "what-if " << op << " @" << target_index << "  mode=" << mode
      << "  suffix=" << suffix_size << "  replayed=" << replayed
      << "  skipped=" << skipped;
  if (hash_jump) out << "  hash-jump@" << hash_jump_index;
  out << '\n';
  out << "verdicts:";
  for (int i = 0; i < kNumTxnVerdicts; ++i) {
    if (!verdict_counts[size_t(i)]) continue;
    out << ' ' << kVerdictNames[i] << '=' << verdict_counts[size_t(i)];
  }
  out << '\n';
  if (!phases.empty()) {
    out << "phases:\n";
    uint64_t wall_total = 0;
    for (const auto& p : phases) wall_total += p.wall_us;
    for (const auto& p : phases) {
      double pct = wall_total ? 100.0 * double(p.wall_us) / double(wall_total)
                              : 0.0;
      std::snprintf(buf, sizeof(buf),
                    "  %-8s wall %8.3f ms  cpu %8.3f ms  %5.1f%%\n",
                    p.name.c_str(), double(p.wall_us) / 1e3,
                    double(p.cpu_us) / 1e3, pct);
      out << buf;
    }
  }
  std::snprintf(buf, sizeof(buf),
                "staging: tables=%llu faults=%llu bytes=%llu\n",
                (unsigned long long)tables_staged,
                (unsigned long long)pages_faulted,
                (unsigned long long)staged_bytes);
  out << buf;
  std::snprintf(
      buf, sizeof(buf),
      "vm: cache hit=%llu miss=%llu  index=%llu scan=%llu advisory=%llu\n",
      (unsigned long long)plan_cache_hits,
      (unsigned long long)plan_cache_misses, (unsigned long long)vm_index_path,
      (unsigned long long)vm_scan_path, (unsigned long long)vm_advisory_built);
  out << buf;
  if (retries || faults_injected || !events.empty()) {
    std::snprintf(buf, sizeof(buf),
                  "lifecycle: retries=%llu faults=%llu events=%zu\n",
                  (unsigned long long)retries,
                  (unsigned long long)faults_injected, events.size());
    out << buf;
    for (const auto& e : events) {
      out << "  [" << e.kind << "] " << e.detail << '\n';
    }
  }
  if (!txns.empty()) {
    out << "transactions:\n";
    for (const auto& t : txns) {
      if (txn_filter && (t.index != *txn_filter || t.is_new)) continue;
      std::snprintf(buf, sizeof(buf), "  #%-6llu %-24s",
                    (unsigned long long)t.index,
                    t.is_new ? "new-statement" : TxnVerdictName(t.verdict));
      out << buf;
      if (!t.evidence.empty()) out << ' ' << t.evidence;
      if (t.rebuild_widened) out << " [rebuild-widened]";
      if (t.cluster_id >= 0) out << " cluster=" << t.cluster_id;
      if (!t.digest.empty()) out << " digest=" << t.digest;
      if (txn_filter && t.index == *txn_filter && !t.is_new) {
        out << "\n    reads:";
        for (const auto& rt : t.read_tables) out << ' ' << rt;
        out << "\n    writes:";
        for (const auto& wt : t.write_tables) out << ' ' << wt;
      }
      out << '\n';
    }
  }
  return out.str();
}

uint64_t NowCpuMicros() {
  struct timespec ts;
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) return 0;
  return uint64_t(ts.tv_sec) * 1000000u + uint64_t(ts.tv_nsec) / 1000u;
}

}  // namespace ultraverse::obs
