#ifndef ULTRAVERSE_OBS_FLIGHT_RECORDER_H_
#define ULTRAVERSE_OBS_FLIGHT_RECORDER_H_

/// Bounded in-memory ring of the last N WhatIfReports, dumped to disk when
/// the process is about to die (failpoint crash, fatal replay error, or an
/// explicit caller request). The engine Begin()s a report the moment an
/// analysis starts and Update()s it as phases complete, so a crash mid-
/// analysis still leaves the in-flight snapshot as the newest ring entry —
/// the post-mortem artifact `fuzz_whatif --crash-points` asserts on.

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/explain.h"

namespace ultraverse::obs {

class FlightRecorder {
 public:
  /// Process-wide instance. Reads ULTRA_FLIGHT_DUMP (dump path) once on
  /// first use.
  static FlightRecorder& Global();

  /// Record the start of an analysis; the returned token addresses this
  /// report for later Update()s. The in-flight copy is immediately in the
  /// ring, marked in_flight until the matching Update().
  uint64_t Begin(const WhatIfReport& report);

  /// Replace the report for `token` (phases complete, verdicts known).
  /// `completed` clears the in-flight mark; pass false for intermediate
  /// progress snapshots. Unknown tokens (already evicted) are a no-op.
  void Update(uint64_t token, const WhatIfReport& report,
              bool completed = true);

  /// Crash-path hook (called by the failpoint kCrash action and the fatal
  /// replay-error path): stamps `reason` on the newest in-flight report and
  /// dumps the ring to the configured path, if any. Safe to call with no
  /// in-flight report — the ring still dumps.
  void NoteCrash(const std::string& reason);

  /// Dump the ring as JSON to `path` regardless of crash state. Returns
  /// false on I/O failure.
  bool DumpTo(const std::string& path, const std::string& reason);

  /// Where NoteCrash() dumps; empty disables dumping (the ring still
  /// records). Overrides ULTRA_FLIGHT_DUMP.
  void SetDumpPath(std::string path);
  std::string dump_path() const;

  void SetCapacity(size_t n);
  size_t size() const;
  void Clear();

  /// Newest-last copies of the ring (tests and uvexplain introspection).
  std::vector<WhatIfReport> Reports() const;

  /// Parse a dump file produced by DumpTo/NoteCrash: returns the reports
  /// (oldest first) and fills `reason` if requested. nullopt on parse or
  /// read failure.
  static std::optional<std::vector<WhatIfReport>> ReadDump(
      const std::string& path, std::string* reason = nullptr);

 private:
  struct Entry {
    uint64_t token;
    bool in_flight;
    WhatIfReport report;
  };

  mutable std::mutex mu_;
  std::deque<Entry> ring_;
  size_t capacity_ = 16;
  uint64_t next_token_ = 1;
  std::string dump_path_;
};

}  // namespace ultraverse::obs

#endif  // ULTRAVERSE_OBS_FLIGHT_RECORDER_H_
