#include "obs/metrics.h"

#include <sstream>

namespace ultraverse::obs {

namespace internal {

unsigned ThisThreadShard() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned shard =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

}  // namespace internal

void SetTiming(bool enabled) {
  internal::g_timing.store(enabled, std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const auto& c : cells_) total += c.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::Reset() {
  for (auto& c : cells_) c.v.store(0, std::memory_order_relaxed);
}

int64_t Gauge::Value() const {
  int64_t total = 0;
  for (const auto& c : cells_) total += c.v.load(std::memory_order_relaxed);
  return total;
}

void Gauge::Set(int64_t value) {
  for (auto& c : cells_) c.v.store(0, std::memory_order_relaxed);
  cells_[0].v.store(value, std::memory_order_relaxed);
}

void Gauge::Reset() {
  for (auto& c : cells_) c.v.store(0, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot(std::string name) const {
  HistogramSnapshot snap;
  snap.name = std::move(name);
  for (const auto& s : shards_) {
    snap.count += s.count.load(std::memory_order_relaxed);
    snap.sum_us += s.sum.load(std::memory_order_relaxed);
    for (unsigned b = 0; b < kHistogramBuckets; ++b) {
      snap.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return snap;
}

void Histogram::Reset() {
  for (auto& s : shards_) {
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
  }
}

uint64_t HistogramSnapshot::QuantileUpperBoundUs(double q) const {
  if (count == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  uint64_t rank = uint64_t(q * double(count));
  if (rank >= count) rank = count - 1;
  uint64_t seen = 0;
  for (unsigned b = 0; b < kHistogramBuckets; ++b) {
    seen += buckets[b];
    if (seen > rank) return Histogram::BucketUpperBound(b);
  }
  return Histogram::BucketUpperBound(kHistogramBuckets - 1);
}

const CounterSnapshot* Snapshot::FindCounter(std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const GaugeSnapshot* Snapshot::FindGauge(std::string_view name) const {
  for (const auto& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const HistogramSnapshot* Snapshot::FindHistogram(std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

Registry& Registry::Global() {
  // Deliberately leaked: instrumentation in static destructors and atexit
  // trace flushes may still touch metrics after main() returns.
  static Registry* const global = new Registry();
  return *global;
}

Counter* Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

Snapshot Registry::Collect() const {
  std::lock_guard<std::mutex> g(mu_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back(CounterSnapshot{name, c->Value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back(GaugeSnapshot{name, gauge->Value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.push_back(h->Snapshot(name));
  }
  return snap;
}

void Registry::ResetForTest() {
  std::lock_guard<std::mutex> g(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

namespace {

std::string SanitizeNamePart(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    if (!ok) c = '_';
  }
  return out;
}

/// Per the exposition format, label values must escape backslash, double
/// quote, and newline; everything else passes through verbatim.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// A registered metric name, optionally carrying a Prometheus-style label
/// block: `uv.explain.verdict{reason="hash-jump-skip"}`. The base is
/// sanitized to [a-zA-Z0-9_]; label values are escaped on output so
/// embedded `"`, `\` and newlines survive a promtool-style parse.
struct PromName {
  std::string base;
  std::vector<std::pair<std::string, std::string>> labels;  // key, raw value

  /// Render `{...}` merging in an optional extra label (histogram `le`).
  std::string LabelBlock(const std::string& extra_key = {},
                         const std::string& extra_value = {}) const {
    if (labels.empty() && extra_key.empty()) return {};
    std::string out = "{";
    bool first = true;
    for (const auto& [k, v] : labels) {
      if (!first) out += ',';
      first = false;
      out += k + "=\"" + EscapeLabelValue(v) + '"';
    }
    if (!extra_key.empty()) {
      if (!first) out += ',';
      out += extra_key + "=\"" + extra_value + '"';
    }
    out += '}';
    return out;
  }
};

PromName ParsePromName(const std::string& name) {
  PromName out;
  size_t brace = name.find('{');
  out.base = SanitizeNamePart(name.substr(0, brace));
  if (brace == std::string::npos) return out;
  size_t pos = brace + 1;
  while (pos < name.size() && name[pos] != '}') {
    if (name[pos] == ',') {
      ++pos;
      continue;
    }
    size_t eq = name.find("=\"", pos);
    if (eq == std::string::npos) break;
    std::string key = SanitizeNamePart(name.substr(pos, eq - pos));
    // The value runs to the next quote that closes the pair (followed by
    // ',' or the final '}').
    size_t vstart = eq + 2;
    size_t vend = vstart;
    while (vend < name.size()) {
      if (name[vend] == '"' &&
          (vend + 1 >= name.size() || name[vend + 1] == ',' ||
           name[vend + 1] == '}')) {
        break;
      }
      ++vend;
    }
    out.labels.emplace_back(std::move(key),
                            name.substr(vstart, vend - vstart));
    pos = vend + 1;
  }
  return out;
}

void AppendJsonString(std::ostringstream* out, const std::string& s) {
  *out << '"';
  for (char c : s) {
    switch (c) {
      case '"': *out << "\\\""; break;
      case '\\': *out << "\\\\"; break;
      case '\n': *out << "\\n"; break;
      case '\t': *out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out << buf;
        } else {
          *out << c;
        }
    }
  }
  *out << '"';
}

}  // namespace

std::string Registry::ExportPrometheus() const {
  Snapshot snap = Collect();
  std::ostringstream out;
  for (const auto& c : snap.counters) {
    PromName n = ParsePromName(c.name);
    out << "# TYPE " << n.base << " counter\n"
        << n.base << n.LabelBlock() << ' ' << c.value << '\n';
  }
  for (const auto& g : snap.gauges) {
    PromName n = ParsePromName(g.name);
    out << "# TYPE " << n.base << " gauge\n"
        << n.base << n.LabelBlock() << ' ' << g.value << '\n';
  }
  for (const auto& h : snap.histograms) {
    PromName n = ParsePromName(h.name);
    out << "# TYPE " << n.base << " histogram\n";
    uint64_t cumulative = 0;
    for (unsigned b = 0; b < kHistogramBuckets; ++b) {
      cumulative += h.buckets[b];
      // The last bucket is the catch-all: +Inf per Prometheus convention.
      std::string le = b + 1 == kHistogramBuckets
                           ? "+Inf"
                           : std::to_string(Histogram::BucketUpperBound(b));
      out << n.base << "_bucket" << n.LabelBlock("le", le) << ' ' << cumulative
          << '\n';
    }
    out << n.base << "_sum" << n.LabelBlock() << ' ' << h.sum_us << '\n';
    out << n.base << "_count" << n.LabelBlock() << ' ' << h.count << '\n';
  }
  return out.str();
}

std::string Registry::ExportJson() const {
  Snapshot snap = Collect();
  std::ostringstream out;
  out << "{\"counters\":{";
  for (size_t i = 0; i < snap.counters.size(); ++i) {
    if (i) out << ',';
    AppendJsonString(&out, snap.counters[i].name);
    out << ':' << snap.counters[i].value;
  }
  out << "},\"gauges\":{";
  for (size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i) out << ',';
    AppendJsonString(&out, snap.gauges[i].name);
    out << ':' << snap.gauges[i].value;
  }
  out << "},\"histograms\":{";
  for (size_t i = 0; i < snap.histograms.size(); ++i) {
    const HistogramSnapshot& h = snap.histograms[i];
    if (i) out << ',';
    AppendJsonString(&out, h.name);
    out << ":{\"count\":" << h.count << ",\"sum_us\":" << h.sum_us
        << ",\"buckets\":[";
    for (unsigned b = 0; b < kHistogramBuckets; ++b) {
      if (b) out << ',';
      out << h.buckets[b];
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

}  // namespace ultraverse::obs
