#include "obs/flight_recorder.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/stopwatch.h"

namespace ultraverse::obs {

namespace {

void AppendQuoted(std::ostringstream* out, const std::string& s) {
  *out << '"';
  for (char c : s) {
    switch (c) {
      case '"': *out << "\\\""; break;
      case '\\': *out << "\\\\"; break;
      case '\n': *out << "\\n"; break;
      default: *out << c;
    }
  }
  *out << '"';
}

/// Scan a quoted JSON string starting at s[pos] == '"'; returns the
/// unescaped value and leaves pos one past the closing quote.
bool ScanQuoted(const std::string& s, size_t* pos, std::string* out) {
  if (*pos >= s.size() || s[*pos] != '"') return false;
  ++*pos;
  out->clear();
  while (*pos < s.size()) {
    char c = s[(*pos)++];
    if (c == '"') return true;
    if (c == '\\' && *pos < s.size()) {
      char e = s[(*pos)++];
      switch (e) {
        case 'n': *out += '\n'; break;
        case 't': *out += '\t'; break;
        default: *out += e;
      }
    } else {
      *out += c;
    }
  }
  return false;
}

}  // namespace

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* instance = [] {
    auto* fr = new FlightRecorder();
    if (const char* env = std::getenv("ULTRA_FLIGHT_DUMP")) {
      if (*env) fr->SetDumpPath(env);
    }
    return fr;
  }();
  return *instance;
}

uint64_t FlightRecorder::Begin(const WhatIfReport& report) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t token = next_token_++;
  ring_.push_back(Entry{token, /*in_flight=*/true, report});
  while (ring_.size() > capacity_) ring_.pop_front();
  return token;
}

void FlightRecorder::Update(uint64_t token, const WhatIfReport& report,
                            bool completed) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
    if (it->token == token) {
      it->report = report;
      if (completed) it->in_flight = false;
      return;
    }
  }
}

void FlightRecorder::NoteCrash(const std::string& reason) {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
      if (it->in_flight) {
        it->report.events.push_back(
            LifecycleEvent{"fatal", reason, NowMicros()});
        break;
      }
    }
    path = dump_path_;
  }
  if (!path.empty()) DumpTo(path, reason);
}

bool FlightRecorder::DumpTo(const std::string& path,
                            const std::string& reason) {
  std::ostringstream out;
  out << "{\"reason\":";
  AppendQuoted(&out, reason);
  out << ",\"dumped_at_us\":" << NowMicros() << ",\"reports\":[";
  {
    std::lock_guard<std::mutex> lock(mu_);
    bool first = true;
    for (const auto& e : ring_) {
      if (!first) out << ',';
      first = false;
      out << e.report.ToJson();
    }
  }
  out << "]}\n";
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << out.str();
  f.flush();
  return f.good();
}

void FlightRecorder::SetDumpPath(std::string path) {
  std::lock_guard<std::mutex> lock(mu_);
  dump_path_ = std::move(path);
}

std::string FlightRecorder::dump_path() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dump_path_;
}

void FlightRecorder::SetCapacity(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = n ? n : 1;
  while (ring_.size() > capacity_) ring_.pop_front();
}

size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

void FlightRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
}

std::vector<WhatIfReport> FlightRecorder::Reports() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<WhatIfReport> out;
  out.reserve(ring_.size());
  for (const auto& e : ring_) out.push_back(e.report);
  return out;
}

std::optional<std::vector<WhatIfReport>> FlightRecorder::ReadDump(
    const std::string& path, std::string* reason) {
  std::ifstream f(path);
  if (!f) return std::nullopt;
  std::ostringstream buf;
  buf << f.rdbuf();
  std::string text = buf.str();

  size_t rpos = text.find("\"reason\":");
  if (rpos == std::string::npos) return std::nullopt;
  rpos += 9;
  std::string rsn;
  if (!ScanQuoted(text, &rpos, &rsn)) return std::nullopt;
  if (reason) *reason = rsn;

  size_t apos = text.find("\"reports\":[", rpos);
  if (apos == std::string::npos) return std::nullopt;
  size_t pos = apos + 11;
  std::vector<WhatIfReport> reports;
  // Split the array into balanced-brace report chunks (string-aware), then
  // hand each chunk to WhatIfReport::FromJson.
  while (pos < text.size() && text[pos] != ']') {
    if (text[pos] == ',') {
      ++pos;
      continue;
    }
    if (text[pos] != '{') return std::nullopt;
    size_t start = pos;
    int depth = 0;
    while (pos < text.size()) {
      char c = text[pos];
      if (c == '"') {
        std::string skip;
        if (!ScanQuoted(text, &pos, &skip)) return std::nullopt;
        continue;
      }
      if (c == '{') ++depth;
      if (c == '}') {
        if (--depth == 0) {
          ++pos;
          break;
        }
      }
      ++pos;
    }
    if (depth != 0) return std::nullopt;
    auto report = WhatIfReport::FromJson(text.substr(start, pos - start));
    if (!report) return std::nullopt;
    reports.push_back(std::move(*report));
  }
  if (pos >= text.size()) return std::nullopt;
  return reports;
}

}  // namespace ultraverse::obs
