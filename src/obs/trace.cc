#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string_view>

#include "obs/metrics.h"

namespace ultraverse::obs {

namespace {

void AppendEscaped(std::ostringstream* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': *out << "\\\""; break;
      case '\\': *out << "\\\\"; break;
      case '\n': *out << "\\n"; break;
      case '\t': *out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out << buf;
        } else {
          *out << c;
        }
    }
  }
}

}  // namespace

thread_local Tracer::ThreadLog* Tracer::t_log_ = nullptr;

Tracer& Tracer::Global() {
  // Deliberately leaked so the atexit flush (ULTRA_TRACE) and spans in
  // static destructors stay valid after main() returns.
  static Tracer* const global = new Tracer();
  return *global;
}

Tracer::Tracer() = default;

void Tracer::Enable() {
  internal::g_tracing.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() {
  internal::g_tracing.store(false, std::memory_order_relaxed);
}

Tracer::ThreadLog* Tracer::ThisThreadLog() {
  if (t_log_) return t_log_;
  auto log = std::make_shared<ThreadLog>();
  {
    std::lock_guard<std::mutex> g(mu_);
    log->tid = next_tid_++;
    logs_.push_back(log);
  }
  // The registry's shared_ptr keeps the log alive after thread exit, so
  // flushing never races a destroyed ring.
  t_log_ = log.get();
  return t_log_;
}

void Tracer::RecordSpan(const char* name, uint64_t start_us, uint64_t dur_us,
                        std::string args_json) {
  ThreadLog* log = ThisThreadLog();
  std::lock_guard<std::mutex> g(log->mu);
  SpanRecord rec{name, start_us, dur_us, log->written, std::move(args_json)};
  if (log->ring.size() < kRingCapacity) {
    log->ring.push_back(std::move(rec));
  } else {
    // Ring semantics: overwrite the oldest *completed* span. Long-lived
    // parent spans complete (and are written) last, so dropping the oldest
    // records sheds leaf spans first and keeps begin/end nesting valid.
    log->ring[log->written % kRingCapacity] = std::move(rec);
  }
  ++log->written;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> g(mu_);
  for (auto& log : logs_) {
    std::lock_guard<std::mutex> lg(log->mu);
    log->ring.clear();
    log->written = 0;
  }
}

size_t Tracer::recorded_spans() const {
  std::lock_guard<std::mutex> g(mu_);
  size_t total = 0;
  for (const auto& log : logs_) {
    std::lock_guard<std::mutex> lg(log->mu);
    total += log->ring.size();
  }
  return total;
}

size_t Tracer::dropped_spans() const {
  std::lock_guard<std::mutex> g(mu_);
  size_t total = 0;
  for (const auto& log : logs_) {
    std::lock_guard<std::mutex> lg(log->mu);
    total += log->written - log->ring.size();
  }
  return total;
}

void Tracer::SetFlushPath(std::string path) {
  std::lock_guard<std::mutex> g(mu_);
  flush_path_ = std::move(path);
}

std::string Tracer::flush_path() const {
  std::lock_guard<std::mutex> g(mu_);
  return flush_path_;
}

std::string Tracer::DumpJson() const {
  // Snapshot every thread's ring under its lock, then serialize lock-free.
  struct TidSpans {
    int tid;
    std::vector<SpanRecord> spans;
  };
  std::vector<TidSpans> threads;
  {
    std::lock_guard<std::mutex> g(mu_);
    threads.reserve(logs_.size());
    for (const auto& log : logs_) {
      std::lock_guard<std::mutex> lg(log->mu);
      threads.push_back(TidSpans{log->tid, log->ring});
    }
  }

  uint64_t min_ts = UINT64_MAX;
  for (const auto& t : threads) {
    for (const auto& s : t.spans) min_ts = std::min(min_ts, s.start_us);
  }
  if (min_ts == UINT64_MAX) min_ts = 0;

  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](char phase, const char* name, uint64_t ts, int tid,
                  const std::string& args_json) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"";
    AppendEscaped(&out, name);
    out << "\",\"cat\":\"uv\",\"ph\":\"" << phase << "\",\"ts\":" << ts
        << ",\"pid\":1,\"tid\":" << tid;
    if (phase == 'B' && !args_json.empty()) {
      out << ",\"args\":" << args_json;
    }
    out << '}';
  };

  for (auto& t : threads) {
    // RAII spans of one thread are strictly nested; records land in the
    // ring in completion order. Re-sort to start order (ties: enclosing
    // span first = longer duration first, then completion order reversed —
    // a parent always completes after its children) and emit B/E events
    // with an explicit stack so output order is properly nested even when
    // timestamps collide.
    std::sort(t.spans.begin(), t.spans.end(),
              [](const SpanRecord& a, const SpanRecord& b) {
                if (a.start_us != b.start_us) return a.start_us < b.start_us;
                uint64_t a_end = a.start_us + a.dur_us;
                uint64_t b_end = b.start_us + b.dur_us;
                if (a_end != b_end) return a_end > b_end;
                return a.seq > b.seq;
              });
    std::vector<const SpanRecord*> stack;
    for (const auto& span : t.spans) {
      while (!stack.empty() &&
             stack.back()->start_us + stack.back()->dur_us <= span.start_us &&
             !(stack.back()->start_us == span.start_us)) {
        const SpanRecord* done = stack.back();
        stack.pop_back();
        emit('E', done->name, done->start_us + done->dur_us - min_ts, t.tid,
             done->args_json);
      }
      emit('B', span.name, span.start_us - min_ts, t.tid, span.args_json);
      stack.push_back(&span);
    }
    while (!stack.empty()) {
      const SpanRecord* done = stack.back();
      stack.pop_back();
      emit('E', done->name, done->start_us + done->dur_us - min_ts, t.tid,
           done->args_json);
    }
  }
  out << "],\"displayTimeUnit\":\"ms\"}";
  return out.str();
}

Status Tracer::WriteFile(const std::string& path) const {
  std::ofstream file(path, std::ios::out | std::ios::trunc);
  if (!file) return Status::Internal("cannot open trace file " + path);
  file << DumpJson();
  file.close();
  if (!file) return Status::Internal("failed writing trace file " + path);
  return Status::OK();
}

TraceSpan::TraceSpan(const char* name, std::initializer_list<TraceArg> args) {
  if (!TracingEnabled()) return;
  name_ = name;
  if (args.size() > 0) {
    std::ostringstream json;
    json << '{';
    bool first = true;
    for (const TraceArg& a : args) {
      if (!first) json << ',';
      first = false;
      json << '"';
      AppendEscaped(&json, a.key);
      json << "\":";
      switch (a.kind) {
        case TraceArg::Kind::kInt: json << a.i; break;
        case TraceArg::Kind::kDouble: json << a.d; break;
        case TraceArg::Kind::kStr:
          json << '"';
          AppendEscaped(&json, a.s ? a.s : "");
          json << '"';
          break;
      }
    }
    json << '}';
    args_json_ = json.str();
  }
  start_us_ = NowMicros();
}

TraceSpan::~TraceSpan() {
  if (!name_) return;
  uint64_t end_us = NowMicros();
  Tracer::Global().RecordSpan(name_, start_us_,
                              end_us > start_us_ ? end_us - start_us_ : 0,
                              std::move(args_json_));
}

namespace {

/// ULTRA_TRACE=1 (or a path) enables tracing + timing at process start and
/// flushes the trace at exit — to the given path, or ultraverse_trace.json.
struct UltraTraceEnvInit {
  UltraTraceEnvInit() {
    const char* env = std::getenv("ULTRA_TRACE");
    if (!env || !*env || std::string_view(env) == "0") return;
    Tracer& tracer = Tracer::Global();
    tracer.Enable();
    SetTiming(true);
    std::string_view v(env);
    tracer.SetFlushPath(v == "1" || v == "true" ? "ultraverse_trace.json"
                                                : std::string(env));
    std::atexit(+[] {
      Tracer& t = Tracer::Global();
      std::string path = t.flush_path();
      if (path.empty()) return;
      Status st = t.WriteFile(path);
      if (st.ok()) {
        std::fprintf(stderr, "[obs] trace written to %s (%zu spans)\n",
                     path.c_str(), t.recorded_spans());
      } else {
        std::fprintf(stderr, "[obs] trace flush failed: %s\n",
                     st.ToString().c_str());
      }
    });
  }
};
UltraTraceEnvInit g_ultra_trace_env_init;

}  // namespace

}  // namespace ultraverse::obs
