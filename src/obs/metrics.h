#ifndef ULTRAVERSE_OBS_METRICS_H_
#define ULTRAVERSE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/stopwatch.h"

namespace ultraverse::obs {

/// Number of per-metric shards. Hot-path increments hash the calling thread
/// onto one cache-line-padded shard, so concurrent writers from up to
/// kMetricShards threads never contend; readers merge all shards.
inline constexpr unsigned kMetricShards = 16;

/// Latency histograms use fixed exponential buckets in microseconds:
/// bucket b counts values in [2^(b-1), 2^b) (bucket 0 holds zeros), the
/// last bucket is a catch-all. 2^26 us ≈ 67s comfortably covers every
/// phase this system times.
inline constexpr unsigned kHistogramBuckets = 28;

namespace internal {

/// Process-wide relaxed flag gating clock-reading instrumentation
/// (ScopedLatency and the replay workers' busy/idle accounting). Constant-
/// initialized at namespace scope so the disabled check is one relaxed
/// load with no static-init guard.
inline std::atomic<bool> g_timing{false};

unsigned ThisThreadShard();

struct alignas(64) CounterCell {
  std::atomic<uint64_t> v{0};
};

struct alignas(64) GaugeCell {
  std::atomic<int64_t> v{0};
};

}  // namespace internal

/// True when latency timing (clock reads around instrumented sections) is
/// on. Counters and gauges are always live; they cost one relaxed add.
inline bool TimingEnabled() {
  return internal::g_timing.load(std::memory_order_relaxed);
}
void SetTiming(bool enabled);

/// Monotonically increasing event count. Uncontended under kMetricShards
/// concurrent writers; Value() merges shards.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    cells_[internal::ThisThreadShard()].v.fetch_add(n,
                                                    std::memory_order_relaxed);
  }
  void Inc() { Add(1); }
  uint64_t Value() const;

 private:
  friend class Registry;
  void Reset();
  std::array<internal::CounterCell, kMetricShards> cells_;
};

/// Signed instantaneous value maintained by deltas (e.g. queue depth:
/// Add(+1) on push, Add(-1) on pop). Value() merges shards.
class Gauge {
 public:
  void Add(int64_t delta) {
    cells_[internal::ThisThreadShard()].v.fetch_add(delta,
                                                    std::memory_order_relaxed);
  }
  /// Overwrites the merged value. Not shard-local (rare-path only).
  void Set(int64_t value);
  int64_t Value() const;

 private:
  friend class Registry;
  void Reset();
  std::array<internal::GaugeCell, kMetricShards> cells_;
};

struct HistogramSnapshot;

/// Fixed-bucket latency histogram (microseconds). Record() touches only the
/// calling thread's shard: one relaxed add to a bucket plus count/sum.
class Histogram {
 public:
  void Record(uint64_t value_us) {
    Shard& s = shards_[internal::ThisThreadShard()];
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(value_us, std::memory_order_relaxed);
    s.buckets[BucketIndex(value_us)].fetch_add(1, std::memory_order_relaxed);
  }

  static unsigned BucketIndex(uint64_t value_us) {
    unsigned b = 0;
    while (value_us > 0 && b + 1 < kHistogramBuckets) {
      value_us >>= 1;
      ++b;
    }
    return b;
  }
  /// Exclusive upper bound of bucket `b` in microseconds.
  static uint64_t BucketUpperBound(unsigned b) { return uint64_t(1) << b; }

  HistogramSnapshot Snapshot(std::string name) const;

 private:
  friend class Registry;
  void Reset();
  struct alignas(64) Shard {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets{};
  };
  std::array<Shard, kMetricShards> shards_;
};

/// RAII latency timer: records elapsed micros into `hist` at scope exit.
/// When timing is disabled the constructor is one relaxed load and the
/// destructor a null check — no clock reads.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram* hist)
      : hist_(TimingEnabled() ? hist : nullptr),
        start_us_(hist_ ? NowMicros() : 0) {}
  ~ScopedLatency() {
    if (hist_) hist_->Record(NowMicros() - start_us_);
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Histogram* hist_;
  uint64_t start_us_;
};

// --- Snapshots (merged shard state at one point in time) --------------------

struct CounterSnapshot {
  std::string name;
  uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  int64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t sum_us = 0;
  std::array<uint64_t, kHistogramBuckets> buckets{};

  double MeanUs() const { return count ? double(sum_us) / double(count) : 0; }
  /// Upper bound (us) of the bucket containing quantile `q` in [0,1].
  uint64_t QuantileUpperBoundUs(double q) const;
};

struct Snapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  const CounterSnapshot* FindCounter(std::string_view name) const;
  const GaugeSnapshot* FindGauge(std::string_view name) const;
  const HistogramSnapshot* FindHistogram(std::string_view name) const;
};

/// Process-wide metric registry. Metric objects are created on first
/// lookup and never destroyed, so call sites cache the returned pointer in
/// a function-local static and pay the name lookup once:
///
///   static obs::Counter* const hits =
///       obs::Registry::Global().counter("uv.hashjumper.hits");
///   hits->Inc();
class Registry {
 public:
  static Registry& Global();

  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  /// Merged point-in-time view of every registered metric.
  Snapshot Collect() const;

  /// Prometheus text exposition format ('.' in names becomes '_').
  std::string ExportPrometheus() const;
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum_us,
  /// buckets:[...]}}}
  std::string ExportJson() const;

  /// Zeroes every metric's value. Registered objects stay valid (cached
  /// pointers keep working) — for tests and benchmark isolation.
  void ResetForTest();

 private:
  Registry() = default;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace ultraverse::obs

#endif  // ULTRAVERSE_OBS_METRICS_H_
