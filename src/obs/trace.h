#ifndef ULTRAVERSE_OBS_TRACE_H_
#define ULTRAVERSE_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/stopwatch.h"

namespace ultraverse::obs {

namespace internal {
/// Constant-initialized process-wide gate: a disabled tracer costs span
/// construction exactly one relaxed load (no static-init guard, no clock).
inline std::atomic<bool> g_tracing{false};
}  // namespace internal

inline bool TracingEnabled() {
  return internal::g_tracing.load(std::memory_order_relaxed);
}

/// One span argument. Holds only a key pointer and a scalar/pointer value —
/// building a TraceArg never allocates, so passing args to a span on a
/// disabled tracer stays free. Keys and string values must outlive the
/// span constructor call (string literals and c_str() of live strings do).
struct TraceArg {
  enum class Kind { kInt, kDouble, kStr };
  const char* key;
  Kind kind;
  int64_t i = 0;
  double d = 0;
  const char* s = nullptr;

  TraceArg(const char* k, int64_t v) : key(k), kind(Kind::kInt), i(v) {}
  TraceArg(const char* k, int v) : key(k), kind(Kind::kInt), i(v) {}
  TraceArg(const char* k, unsigned v) : key(k), kind(Kind::kInt), i(v) {}
  TraceArg(const char* k, uint64_t v)
      : key(k), kind(Kind::kInt), i(int64_t(v)) {}
  TraceArg(const char* k, double v) : key(k), kind(Kind::kDouble), d(v) {}
  TraceArg(const char* k, const char* v) : key(k), kind(Kind::kStr), s(v) {}
};

/// Records completed spans into per-thread ring buffers and flushes them as
/// Chrome trace-event JSON (load the file in Perfetto / chrome://tracing).
/// Each ring keeps the most recent kRingCapacity spans of its thread;
/// overflow overwrites the oldest completed spans (dropped count reported).
class Tracer {
 public:
  static constexpr size_t kRingCapacity = 16384;

  static Tracer& Global();

  bool enabled() const { return TracingEnabled(); }
  void Enable();
  void Disable();

  /// Discards all recorded spans (thread rings stay registered).
  void Clear();

  size_t recorded_spans() const;
  size_t dropped_spans() const;

  /// Serializes every recorded span as Chrome trace-event JSON:
  /// {"traceEvents":[{"ph":"B"...},{"ph":"E"...},...],"displayTimeUnit":"ms"}.
  /// Spans are emitted as properly nested begin/end pairs per thread.
  std::string DumpJson() const;
  Status WriteFile(const std::string& path) const;

  /// The path the atexit flush will write (set by ULTRA_TRACE or
  /// SetFlushPath); empty = no flush at exit.
  void SetFlushPath(std::string path);
  std::string flush_path() const;

  /// Internal: called by TraceSpan's destructor.
  void RecordSpan(const char* name, uint64_t start_us, uint64_t dur_us,
                  std::string args_json);

 private:
  struct SpanRecord {
    const char* name;
    uint64_t start_us;
    uint64_t dur_us;
    uint64_t seq;  // completion order within the thread
    std::string args_json;
  };
  struct ThreadLog {
    int tid = 0;
    uint64_t written = 0;
    std::vector<SpanRecord> ring;
    mutable std::mutex mu;  // writer (owning thread) vs flush
  };

  Tracer();
  ThreadLog* ThisThreadLog();

  static thread_local ThreadLog* t_log_;

  mutable std::mutex mu_;  // guards logs_ registration and flush_path_
  std::vector<std::shared_ptr<ThreadLog>> logs_;
  std::string flush_path_;
  int next_tid_ = 1;
};

/// RAII scoped trace span:
///
///   obs::TraceSpan span("replay.worker", {{"slot", i}});
///
/// Disabled tracer: one relaxed load in the constructor, a null check in
/// the destructor. Enabled: two clock reads plus one ring-buffer store.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) : TraceSpan(name, {}) {}
  TraceSpan(const char* name, std::initializer_list<TraceArg> args);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;  // nullptr = not recording
  uint64_t start_us_ = 0;
  std::string args_json_;
};

}  // namespace ultraverse::obs

#endif  // ULTRAVERSE_OBS_TRACE_H_
