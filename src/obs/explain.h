#ifndef ULTRAVERSE_OBS_EXPLAIN_H_
#define ULTRAVERSE_OBS_EXPLAIN_H_

/// Decision-provenance reports for what-if analyses (DESIGN.md §13).
///
/// Every retroactive analysis assembles a WhatIfReport: where the wall/CPU
/// time went phase by phase, what the staging/VM/lifecycle layers did, and —
/// at ExplainLevel::kFull — a per-transaction verdict with machine-checkable
/// evidence for *why* each suffix transaction was replayed or pruned. The
/// fuzzer gate (`fuzz_whatif --check-explain`) re-validates pruned verdicts
/// against ground truth, so these reasons are sound, not decorative.

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ultraverse::obs {

/// How much provenance a what-if analysis records.
///  - kOff: nothing, not even the summary (bench ablation only).
///  - kSummary: phase breakdown + layer counters; no per-txn vector. This is
///    the always-on default; BM_ExplainOverhead pins its cost <2%.
///  - kFull: everything, including one TxnExplain per suffix transaction.
enum class ExplainLevel { kOff, kSummary, kFull };

/// Why a suffix transaction was (not) replayed. Exactly one verdict per
/// suffix position; new statements injected by the what-if op are reported
/// separately with is_new=true.
enum class TxnVerdict {
  kReplayed,              // closure member, re-executed
  kRetroTarget,           // the removed/changed statement itself
  kPrunedReadOnly,        // empty write set, cannot affect any state
  kPrunedStaticFootprint, // static table footprints provably disjoint
  kPrunedPredicateDisjoint,  // predicate regions provably disjoint (§15)
  kPrunedColumnDisjoint,  // no column-granularity dependency rule fired
  kClusterExcluded,       // in the column cluster, excluded by row closure
  kHashJumpSkip,          // plan member never executed: digests converged
  kResultCacheHit,        // whole analysis served from the epoch result cache
};

inline constexpr int kNumTxnVerdicts = 9;

const char* TxnVerdictName(TxnVerdict v);
std::optional<TxnVerdict> TxnVerdictFromName(const std::string& name);

/// True for every verdict that claims the transaction did NOT run in the
/// what-if universe (the set --check-explain validates). kResultCacheHit is
/// a whole-report provenance mark (the analysis was memoized), not a claim
/// about any individual transaction, so it is excluded.
inline bool VerdictIsPrune(TxnVerdict v) {
  return v != TxnVerdict::kReplayed && v != TxnVerdict::kRetroTarget &&
         v != TxnVerdict::kResultCacheHit;
}

/// Per-transaction provenance (ExplainLevel::kFull only).
struct TxnExplain {
  uint64_t index = 0;      // query-log index
  bool is_new = false;     // statement injected by the what-if op
  TxnVerdict verdict = TxnVerdict::kReplayed;
  /// Human-readable one-liner; the machine-checkable facts live in the
  /// typed fields below.
  std::string evidence;
  std::vector<std::string> read_tables;
  std::vector<std::string> write_tables;
  /// Replayed only because the plan needed a schema rebuild, not because a
  /// dependency rule fired.
  bool rebuild_widened = false;
  /// Ordinal of this txn's column cluster in the plan, -1 if none.
  int64_t cluster_id = -1;
  /// Hex digest that justified a hash-jump, empty otherwise.
  std::string digest;
};

/// One analysis phase: wall time and process-CPU time, both microseconds.
struct PhaseBreakdown {
  std::string name;  // analyze | plan | stage | replay | publish
  uint64_t wall_us = 0;
  uint64_t cpu_us = 0;
};

/// Retry / cancel / failpoint / fatal lifecycle events (PR 5 machinery).
struct LifecycleEvent {
  std::string kind;    // retry | cancel | failpoint | fatal
  std::string detail;
  uint64_t at_us = 0;  // NowMicros() timestamp
};

/// The structured result of one what-if analysis.
struct WhatIfReport {
  // --- identity ------------------------------------------------------------
  std::string op;            // add | remove | change
  uint64_t target_index = 0; // retro op commit index
  std::string mode;          // B | T | D | T+D
  ExplainLevel level = ExplainLevel::kSummary;

  // --- verdict totals (kSummary and up) ------------------------------------
  uint64_t suffix_size = 0;  // transactions after the target
  uint64_t replayed = 0;     // mirrors ReplayStats::replayed
  uint64_t skipped = 0;      // mirrors ReplayStats::skipped
  std::array<uint64_t, kNumTxnVerdicts> verdict_counts{};
  bool hash_jump = false;        // replay terminated early on a digest match
  uint64_t hash_jump_index = 0;  // log index where digests converged

  // --- phase breakdown -----------------------------------------------------
  std::vector<PhaseBreakdown> phases;

  // --- staging footprint ---------------------------------------------------
  uint64_t tables_staged = 0;
  uint64_t pages_faulted = 0;
  uint64_t staged_bytes = 0;

  // --- VM decisions (deltas over this analysis) ----------------------------
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  uint64_t vm_index_path = 0;
  uint64_t vm_scan_path = 0;
  uint64_t vm_advisory_built = 0;

  // --- lifecycle -----------------------------------------------------------
  uint64_t retries = 0;
  uint64_t faults_injected = 0;
  std::vector<LifecycleEvent> events;

  // --- per-transaction detail (kFull only) ---------------------------------
  std::vector<TxnExplain> txns;

  uint64_t CountFor(TxnVerdict v) const {
    return verdict_counts[size_t(v)];
  }
  void Tally(TxnVerdict v) { ++verdict_counts[size_t(v)]; }
  const TxnExplain* FindTxn(uint64_t index) const;

  /// Serialization. ToJson() emits a single self-contained object;
  /// FromJson() parses exactly what ToJson() wrote (round-trip tested) and
  /// returns nullopt on malformed input — it is what uvexplain --json
  /// consumers and the flight-recorder dump reader rely on.
  std::string ToJson() const;
  static std::optional<WhatIfReport> FromJson(const std::string& json);

  /// Human rendering for uvexplain: summary block, phase table, and (at
  /// kFull) the verdict table. txn_filter, when set, narrows the per-txn
  /// section to one log index (--txn drill-down).
  std::string ToText(std::optional<uint64_t> txn_filter = {}) const;
};

/// Process-CPU microseconds (CLOCK_PROCESS_CPUTIME_ID); pairs with
/// NowMicros() for the wall component of PhaseBreakdown.
uint64_t NowCpuMicros();

}  // namespace ultraverse::obs

#endif  // ULTRAVERSE_OBS_EXPLAIN_H_
