#ifndef ULTRAVERSE_CORE_PREDICATE_H_
#define ULTRAVERSE_CORE_PREDICATE_H_

#include <functional>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "sqldb/ast.h"
#include "sqldb/value.h"

namespace ultraverse::core {

/// One typed, possibly half-open interval over sql::Value's total order
/// (NULL < bool < numeric < string; numerics compare by value). A nullopt
/// bound is unbounded. The emptiness test treats the domain as dense —
/// (3, 4) over INT keys counts as non-empty — which only ever
/// over-approximates, never prunes a real overlap.
struct ValueInterval {
  std::optional<sql::Value> lo, hi;
  bool lo_incl = false;
  bool hi_incl = false;

  bool Contains(const sql::Value& v) const;
  bool Intersects(const ValueInterval& other) const;
  /// Exact intersection (bound clipping); nullopt when provably empty.
  std::optional<ValueInterval> Meet(const ValueInterval& other) const;
  /// True when `other` ⊆ this (bound-wise cover).
  bool Covers(const ValueInterval& other) const;
  std::string ToString() const;
};

/// Sound abstract domain for "which RI keys can this predicate select"
/// (DESIGN.md §15): either ⊤ (any row) or a finite union of equality
/// points (canonical sql::Value encodings) and typed intervals. Join
/// (MergeWith) and exact meet (MeetWith) are monotone; Intersects and
/// ContainedIn are decidable and err on the conservative side (a point
/// whose encoding fails to decode is treated as a member of every
/// non-empty interval set).
struct ValueRegion {
  /// Defaults to ⊤ so a default-constructed region — the state every
  /// legacy wildcard carries — over-approximates everything.
  bool top = true;
  std::set<std::string> points;        // encoded sql::Value (Value::Encode)
  std::vector<ValueInterval> intervals;

  static ValueRegion Top() { return ValueRegion{}; }
  static ValueRegion EmptySet() {
    ValueRegion r;
    r.top = false;
    return r;
  }
  static ValueRegion OfPoints(std::set<std::string> encs) {
    ValueRegion r;
    r.top = false;
    r.points = std::move(encs);
    return r;
  }
  static ValueRegion OfInterval(ValueInterval iv) {
    ValueRegion r;
    r.top = false;
    r.intervals.push_back(std::move(iv));
    return r;
  }

  bool IsTop() const { return top; }
  /// Syntactically empty: provably matches no row.
  bool IsEmptySet() const {
    return !top && points.empty() && intervals.empty();
  }

  /// Adds one encoded point; no-op on ⊤ (which already contains it).
  void AddPoint(const std::string& enc) {
    if (!top) points.insert(enc);
  }
  void WidenToTop() {
    top = true;
    points.clear();
    intervals.clear();
  }
  /// Join: this ← this ∪ other (⊤-absorbing).
  void MergeWith(const ValueRegion& other);
  /// Exact meet: {x : x ∈ this ∧ x ∈ other} up to decode-conservatism.
  ValueRegion MeetWith(const ValueRegion& other) const;
  bool Intersects(const ValueRegion& other) const;
  bool Contains(const sql::Value& v) const;
  bool ContainsEncoded(const std::string& enc) const;
  /// Conservative containment: true ⇒ this ⊆ other. Interval cover is
  /// tested against single intervals of `other` (no multi-interval
  /// stitching); both analyzers extract intervals from the same literal
  /// folds, so a dynamic interval either meets its identical static twin
  /// or a static ⊤ — the conservatism never fires in aligned pairs.
  bool ContainedIn(const ValueRegion& other) const;
  std::string ToString() const;
};

/// Hook resolving an expression to its candidate constant values: the
/// dynamic analyzer plugs MultiEval (literal folds + procedure variable
/// bindings + captured parameter values), the static analyzer its
/// literal-only ConstEval. nullopt = unresolvable (widen to ⊤). Whenever
/// the static hook resolves, the dynamic hook resolves the same single
/// value — the fold semantics are shared — which makes the extracted
/// dynamic region a subset of the static one at every AST node.
using PredicateEvalFn =
    std::function<std::optional<std::vector<sql::Value>>(const sql::Expr&)>;

/// Hook translating one alias-RI column value to the set of RI-key
/// encodings it denotes. nullopt = unknown (widen to ⊤). The static
/// analyzer always returns nullopt (it has no learned alias maps).
using PredicateAliasFn = std::function<std::optional<std::set<std::string>>(
    const std::string& alias_column, const sql::Value& value)>;

/// Extracts the symbolic predicate region of `where` restricted to
/// `table`'s RI column: equality points and IN lists (via `eval`),
/// typed half-open ranges from </<=/>/>= (BETWEEN parses to AND of
/// those), AND as meet, OR as join. Everything else — joins, aliases
/// under ranges, nondeterministic builtins, subqueries — widens to ⊤.
/// Shared by the dynamic and static analyzers so their regions stay
/// pointwise comparable (dynamic ⊆ static).
ValueRegion ExtractPredicateRegion(const sql::Expr* where,
                                   const std::string& table,
                                   const std::string& ri_column,
                                   const std::vector<std::string>& ri_aliases,
                                   const PredicateEvalFn& eval,
                                   const PredicateAliasFn& alias_lookup);

}  // namespace ultraverse::core

#endif  // ULTRAVERSE_CORE_PREDICATE_H_
