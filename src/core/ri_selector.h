#ifndef ULTRAVERSE_CORE_RI_SELECTOR_H_
#define ULTRAVERSE_CORE_RI_SELECTOR_H_

#include <map>
#include <string>
#include <vector>

#include "core/rw_sets.h"
#include "sqldb/query_log.h"

namespace ultraverse::core {

/// Automatic row-identifier column selection (§4.3 "Selection of an RI
/// Column"): Ultraverse scans the query log and picks, per table, the
/// column whose WHERE-equality usage maximizes row-wise separation during
/// retroactive replay. Appendix D's hand-picked configurations exist for
/// the benchmarks; this class derives equivalent choices from the log.
class RiSelector {
 public:
  struct Choice {
    std::string ri_column;
    std::vector<std::string> aliases;
    // Diagnostics: how often each column appeared in a WHERE equality.
    std::map<std::string, size_t> equality_counts;
  };

  /// Scans the committed log (replaying its DDL into a scratch registry)
  /// and returns the per-table choice. Selection rule:
  ///  1. candidate columns are those referenced by WHERE equalities with
  ///     resolvable values (wildcard-producing predicates don't help);
  ///  2. the primary key wins ties (it is unique by construction);
  ///  3. other frequently-equated columns (>= 25% of the winner's count)
  ///     become alias RI columns, translated via insert-time mappings.
  static std::map<std::string, Choice> SelectFromLog(const sql::QueryLog& log);

  /// Convenience: runs SelectFromLog and applies every choice to the
  /// analyzer via ConfigureRi.
  static void Apply(const sql::QueryLog& log, QueryAnalyzer* analyzer);
};

}  // namespace ultraverse::core

#endif  // ULTRAVERSE_CORE_RI_SELECTOR_H_
