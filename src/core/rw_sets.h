#ifndef ULTRAVERSE_CORE_RW_SETS_H_
#define ULTRAVERSE_CORE_RW_SETS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/predicate.h"
#include "sqldb/ast.h"
#include "sqldb/query_log.h"
#include "util/status.h"

namespace ultraverse::core {

/// Column-wise read/write sets (§4.2). Elements are "Table.column" names,
/// or "_S.<name>" entries of the virtual schema-monitoring table (Appendix
/// A): DDL writes _S.<name>, every query reading an object reads it.
struct ColumnSet {
  std::set<std::string> items;

  bool Contains(const std::string& s) const { return items.count(s) > 0; }
  void Add(std::string s) { items.insert(std::move(s)); }
  void Merge(const ColumnSet& other) {
    items.insert(other.items.begin(), other.items.end());
  }
  bool Intersects(const ColumnSet& other) const;
  bool empty() const { return items.empty(); }
};

/// Row-wise read/write sets (§4.3): per RI column, either a wildcard
/// (any row) or a set of encoded RI values. The column is qualified
/// ("Users.uid") or a schema pseudo-row ("_S.Users").
struct RowSet {
  struct Vals {
    bool wildcard = false;
    std::set<std::string> values;  // canonical encoded sql::Value
    /// Symbolic predicate region (DESIGN.md §15). The entry's effective
    /// row view is (wildcard ? ⊤ : values) ∩ region; the default ⊤
    /// region keeps every legacy producer sound. Contributions from
    /// successive statements join via AddConstrained / Merge.
    ValueRegion region;
  };
  std::map<std::string, Vals> cols;

  void AddWildcard(const std::string& column) {
    Vals& v = cols[column];
    v.wildcard = true;
    v.region.WidenToTop();
  }
  void AddValue(const std::string& column, std::string value_enc) {
    Vals& v = cols[column];
    v.region.AddPoint(value_enc);  // no-op on a ⊤ region
    v.values.insert(std::move(value_enc));
  }
  /// One statement's full row contribution for `column`: the classic RI
  /// value set (nullopt = any row) plus the predicate region extracted
  /// from the same WHERE clause. A fresh entry adopts the region;
  /// repeated contributions join (the entry's view is the union of the
  /// per-statement views, over-approximated component-wise).
  void AddConstrained(const std::string& column,
                      const std::optional<std::set<std::string>>& values,
                      const ValueRegion& region);
  /// Effective typed row view of one entry.
  static ValueRegion TypedRegionOf(const Vals& v);
  void Merge(const RowSet& other);
  /// True when some column has a wildcard-vs-anything or value-vs-value
  /// overlap with `other`.
  bool Intersects(const RowSet& other) const;
  /// Predicate-region refinement of Intersects: compares the typed row
  /// views of shared keys, so two wildcards with provably disjoint
  /// regions (e.g. id<10 vs id>=10) do NOT intersect. Sound on
  /// canonicalized sets (CanonicalizeRowSets closes regions under RI
  /// merges) and on raw same-analyzer pairs.
  bool RegionIntersects(const RowSet& other) const;
  bool empty() const { return cols.empty(); }
};

/// Per-query analysis record: both granularities plus bookkeeping used by
/// the benchmarks (Ultraverse log size, Table 7(b)).
struct QueryRW {
  ColumnSet rc, wc;
  RowSet rr, wr;

  /// Tables named in the write set (mutated candidates) / read set.
  std::set<std::string> write_tables;
  std::set<std::string> read_tables;

  /// True for schema-changing statements: retroactive replay of these
  /// requires rebuilding the temporary database from a checkpoint.
  bool is_ddl = false;

  /// True when the query can modify or destroy *pre-existing* rows or
  /// catalog state (UPDATE, DELETE, DDL — directly or via a trigger /
  /// procedure body). Pure INSERTs only create rows, so their writes can
  /// never clobber a cell an earlier replayed write produced; the
  /// write-write closure rule in ComputeReplayPlan joins a non-overwriting
  /// query only when an accumulated *overwriting* write could touch its
  /// staged rows.
  bool overwrites = false;

  /// Serialized size of Ultraverse's per-query dependency log record.
  size_t ApproxLogBytes() const;
};

/// Table-level projection of a QueryRW: every table named by its column
/// sets, row sets or table sets ("_S.T" entries project to T). Used as a
/// cheap sound pre-filter during dependency planning: two QueryRWs whose
/// footprints are disjoint cannot intersect in any granularity, so the
/// expensive ColumnSet/RowSet intersections can be skipped outright.
struct TableFootprint {
  std::set<std::string> tables;
  /// Conservative escape hatch: a universal footprint intersects
  /// everything (used when a statement could not be summarized).
  bool universal = false;

  void Merge(const TableFootprint& other);
  bool Intersects(const TableFootprint& other) const;
};

/// Computes the footprint of `rw` (table prefixes of rc/wc items and
/// rr/wr keys, plus read_tables/write_tables).
TableFootprint FootprintOf(const QueryRW& rw);

/// Catalog snapshot the analyzer evolves as it walks DDL in the log. It
/// mirrors the database catalog but is independent so analysis can run on a
/// copied log on another machine (§5.3).
class SchemaRegistry {
 public:
  struct TableInfo {
    std::vector<sql::ColumnDef> columns;
    std::vector<sql::ForeignKey> foreign_keys;
    std::string ri_column;                 // row-identifier column (§4.3)
    std::vector<std::string> ri_aliases;   // alias RI columns
  };

  /// Applies DDL effects (CREATE/DROP/ALTER of tables/views/procs/triggers).
  void ApplyDdl(const sql::Statement& stmt);

  const TableInfo* FindTable(const std::string& name) const;
  TableInfo* FindTableMutable(const std::string& name);
  const sql::CreateProcedureStatement* FindProcedure(
      const std::string& name) const;
  const std::shared_ptr<sql::SelectStatement>* FindView(
      const std::string& name) const;
  /// Triggers firing on (table, event).
  std::vector<const sql::CreateTriggerStatement*> TriggersOn(
      const std::string& table, sql::TriggerEvent event) const;
  const sql::CreateTriggerStatement* FindTrigger(
      const std::string& name) const;
  /// Tables whose foreign keys reference `table`.
  std::vector<std::string> TablesReferencing(const std::string& table) const;

  /// Declares the RI column for a table (defaults to its primary key when
  /// the table is created). See RiSelector for automatic selection.
  void SetRiColumn(const std::string& table, const std::string& column);
  void AddRiAlias(const std::string& table, const std::string& alias_column);

  std::vector<std::string> TableNames() const;
  std::vector<std::string> ProcedureNames() const;

 private:
  std::map<std::string, TableInfo> tables_;
  std::map<std::string, std::shared_ptr<sql::SelectStatement>> views_;
  std::map<std::string, sql::CreateProcedureStatement> procedures_;
  std::map<std::string, sql::CreateTriggerStatement> triggers_;
};

/// Hook invoked around each statement's dynamic analysis. The static
/// soundness checker (src/analysis) implements this to compute a static
/// summary against the pre-statement registry state (BeforeStatement) and
/// assert containment of the raw dynamic sets (AfterStatement). Core only
/// defines the interface; it never depends on the analysis layer.
class AnalysisObserver {
 public:
  virtual ~AnalysisObserver() = default;
  /// Called before the statement's analysis mutates any analyzer state.
  virtual void BeforeStatement(const sql::Statement& stmt) = 0;
  /// Called with the raw (uncanonicalized) per-statement sets.
  virtual void AfterStatement(const sql::Statement& stmt,
                              const QueryRW& raw) = 0;
};

/// Derives per-query R/W sets from a committed-query log. The analyzer is
/// the asynchronous background "query analyzer" of Figure 2: it replays
/// DDL into its SchemaRegistry, learns alias-RI mappings and merged RI
/// values, and emits a QueryRW per log entry.
class QueryAnalyzer {
 public:
  QueryAnalyzer() = default;

  struct RiConfig {
    std::string ri_column;
    std::vector<std::string> aliases;
    bool operator==(const RiConfig&) const = default;
  };

  SchemaRegistry* registry() { return &registry_; }
  const SchemaRegistry* registry() const { return &registry_; }

  /// RI configuration overrides installed via ConfigureRi, exposed so the
  /// static analyzer can mirror them when it replays intra-statement DDL
  /// against its own scratch registry.
  const std::map<std::string, RiConfig>& ri_configs() const {
    return ri_overrides_;
  }

  /// Installs (or clears, with nullptr) the analysis observer. At most one
  /// observer is active; the caller owns its lifetime and must detach
  /// before destroying it.
  void set_observer(AnalysisObserver* observer) { observer_ = observer; }
  AnalysisObserver* observer() const { return observer_; }

  /// Configures the RI column (and optional alias columns) used for table
  /// `table` in row-wise analysis. Overrides survive re-analysis: they are
  /// re-applied whenever the table's CREATE TABLE is (re)processed.
  /// Without a configuration the primary key is selected (see RiSelector).
  void ConfigureRi(const std::string& table, const std::string& ri_column,
                   std::vector<std::string> aliases = {});

  /// Analyzes the complete log (two passes: extraction + canonicalization
  /// under the final merged-RI union-find). Entry i of the result aligns
  /// with log entry index i+1.
  Result<std::vector<QueryRW>> AnalyzeLog(const sql::QueryLog& log);

  /// Analyzes a single statement against the current registry state
  /// (used for retroactive target queries that are not in the log).
  Result<QueryRW> AnalyzeStatement(const sql::Statement& stmt,
                                   const sql::NondetRecord* nondet);

  /// Incremental pass-1 analysis of one newly committed entry: evolves the
  /// registry / alias / merge state and returns the raw (uncanonicalized)
  /// sets. Callers canonicalize with CanonicalizeRowSets before matching.
  Result<QueryRW> AnalyzeEntry(const sql::LogEntry& entry);

  /// Rewrites RI values in `rw` to their merged-RI representatives under
  /// the current union-find (§4.3 "Merging RI values").
  void CanonicalizeRowSets(QueryRW* rw);

  /// Number of effective RI merges so far. CanonicalizeRowSets is a pure
  /// function of the union-find, so a canonicalized QueryRW stays valid
  /// exactly as long as this generation does not advance — the incremental
  /// analysis maintenance in the facade re-canonicalizes already-emitted
  /// entries only when it does (DESIGN.md §14).
  uint64_t merge_generation() const { return merge_generation_; }

 private:
  friend class AnalyzerImpl;
  SchemaRegistry registry_;
  AnalysisObserver* observer_ = nullptr;
  std::map<std::string, RiConfig> ri_overrides_;
  // Union-find over canonical RI value keys ("Table.col|value_enc").
  std::map<std::string, std::string> merge_parent_;
  uint64_t merge_generation_ = 0;  // bumped per effective Union
  // Alias translation: "Table.alias|value_enc" -> set of RI value encs.
  std::map<std::string, std::set<std::string>> alias_to_ri_;

  std::string Find(const std::string& key);
  void Union(const std::string& a, const std::string& b);
  void ReapplyRiConfig(const std::string& table);
};

}  // namespace ultraverse::core

#endif  // ULTRAVERSE_CORE_RW_SETS_H_
