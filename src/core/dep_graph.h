#ifndef ULTRAVERSE_CORE_DEP_GRAPH_H_
#define ULTRAVERSE_CORE_DEP_GRAPH_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "core/rw_sets.h"

namespace ultraverse::core {

/// Which granularities participate in dependency pruning. T+D uses both
/// (Theorem 20: replay 𝕀_c ∩ 𝕀_r); the column-only configuration is the
/// ablation of §4.2 without §4.3.
struct DependencyOptions {
  bool column_wise = true;
  bool row_wise = true;

  /// Optional static pre-filter (produced by src/analysis): entry i is a
  /// table-level footprint that over-approximates analysis[i]'s footprint
  /// (static summary ⊇ dynamic sets, so static footprint ⊇ dynamic
  /// footprint). During closure computation a candidate whose *static*
  /// footprint is disjoint from the accumulated member footprint cannot
  /// satisfy any closure rule, so its ColumnSet/RowSet intersections are
  /// skipped outright. nullptr disables the pre-filter.
  const std::vector<TableFootprint>* static_footprints = nullptr;

  /// Third pre-filter tier (DESIGN.md §15), after the table-footprint
  /// filter above: a candidate whose symbolic predicate regions are
  /// provably disjoint from the accumulated members' regions — reads vs
  /// accumulated writes, writes vs accumulated reads, writes vs
  /// accumulated (overwriting) writes — touches no member row in any
  /// replay universe, so it is skipped before the closure rules run.
  /// Works in both granularity passes (it is what gives the column pass
  /// row-level pruning power) and on its own carries the
  /// `pruned-predicate-disjoint` explain verdict.
  bool predicate_filter = true;

  /// Record per-suffix-position exclusion provenance into
  /// ReplayPlan::exclusions (ExplainLevel::kFull). Off by default: the
  /// vector costs one byte per suffix transaction.
  bool record_exclusions = false;

  /// Suffix log indices seeded into the closure as unconditional members
  /// (the `--check-explain` counterfactual knob). Seeding — rather than a
  /// post-hoc merge into the plan — keeps the closure invariant intact:
  /// later writers of a forced member's cells join through the ordinary
  /// rules, so the query-selective rollback stays sound. nullptr = none.
  const std::set<uint64_t>* forced_members = nullptr;
};

/// Why a suffix position did or did not join the replay plan. Sound by
/// construction: causes are recorded at the exact skip/join sites of the
/// single monotone ascending closure pass, then merged across granularities
/// (column verdicts dominate; a column member rejected by the row closure is
/// the Theorem-20 intersection at work → kClusterExcluded).
enum class PlanExclusion : uint8_t {
  kMember,             // in the replay set
  kTargetSlot,         // the occupied retro-target slot itself
  kReadOnly,           // empty write set: can never join any closure
  kStaticDisjoint,     // static table footprint disjoint from accumulators
  kPredicateDisjoint,  // predicate regions disjoint from accumulators
  kColumnDisjoint,     // no column-granularity dependency rule fired
  kClusterExcluded,    // column member, excluded by the row-closure intersect
};

/// The pruned rollback & replay plan for one retroactive operation.
struct ReplayPlan {
  /// Log indices (1-based) to roll back and replay, ascending. For a
  /// retroactive *remove*, the target itself is excluded from replay (but
  /// still rolled back). For add/change the new query executes at τ.
  std::vector<uint64_t> replay_indices;

  /// §4.4 table classification.
  std::set<std::string> mutated_tables;
  std::set<std::string> consulted_tables;

  /// True when the plan involves schema (DDL) replay: the engine must then
  /// rebuild the temporary database from a checkpoint instead of undoing
  /// table journals.
  bool needs_schema_rebuild = false;

  /// When DependencyOptions::record_exclusions is set: exclusions[j]
  /// explains log index exclusions_base + j, for the whole suffix
  /// [target_index, history]. Empty otherwise.
  std::vector<PlanExclusion> exclusions;
  uint64_t exclusions_base = 0;

  /// Parallel to exclusions when recorded: the ordinal of the position in
  /// the *column* closure (its cluster id), or -1 when it never joined the
  /// column-granularity replay set.
  std::vector<int32_t> cluster_ids;

  /// Parallel to exclusions when recorded: human-readable evidence for
  /// kPredicateDisjoint positions (the disjoint region pair that refuted
  /// the dependency), empty string elsewhere.
  std::vector<std::string> exclusion_detail;
};

/// Computes the replay set 𝕀 of Appendix E: the closure of queries
/// (write-sets non-empty) that depend on the target or on another member
/// (Prop. 7, transitive via ascending order), plus every later writer to a
/// cell read by a member (Props. 9/10, which keep consulted tables
/// replayable), plus every later writer to a cell the target or a member
/// wrote (write-write: its value must land after the replayed writes, the
/// same ordering the conflict DAG enforces between scheduled slots).
/// Column-wise and row-wise sets are computed independently and
/// intersected (Theorem 20).
///
/// `analysis[i]` corresponds to log index i+1. `target_rw` is the R/W set
/// of the retroactive target: for remove it is the old query's sets; for
/// add it is the new query's; for change the union of both.
///
/// `target_occupies_slot` is true when the target *is* log[target_index]
/// (remove/change — that commit is excluded from the suffix scan, its sets
/// being seeded into the accumulators instead) and false for add, where the
/// new query is inserted *before* log[target_index] and that commit remains
/// an ordinary suffix candidate.
ReplayPlan ComputeReplayPlan(const std::vector<QueryRW>& analysis,
                             uint64_t target_index, const QueryRW& target_rw,
                             bool target_occupies_slot,
                             const DependencyOptions& options);

/// Conflict edges for parallel replay scheduling (§4.4): a replay arrow
/// Qn -> Qm exists when n < m and the two queries conflict (read-write,
/// write-read, or write-write) on the same column and RI value ("cell").
/// `ordered` is the replay sequence in commit order; the result holds, for
/// each position i, the predecessor positions that must complete first.
std::vector<std::vector<uint32_t>> BuildConflictDag(
    const std::vector<const QueryRW*>& ordered);

}  // namespace ultraverse::core

#endif  // ULTRAVERSE_CORE_DEP_GRAPH_H_
