#ifndef ULTRAVERSE_CORE_ULTRAVERSE_H_
#define ULTRAVERSE_CORE_ULTRAVERSE_H_

#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "applang/interpreter.h"
#include "core/replay.h"
#include "core/rw_sets.h"
#include "sqldb/database.h"
#include "sqldb/query_log.h"
#include "symexec/dse.h"
#include "transpiler/transpiler.h"
#include "util/rng.h"
#include "util/virtual_clock.h"

namespace ultraverse::core {

/// The four evaluated system configurations (§5):
///   kB  — baseline: original application replay, serial, no pruning.
///   kT  — transpiled procedures replayed serially, no pruning.
///   kD  — original application replay + dependency analysis + parallel.
///   kTD — transpiled procedures + dependency analysis + parallel.
enum class SystemMode { kB, kT, kD, kTD };

const char* SystemModeName(SystemMode mode);

/// Immutable MVCC snapshot of one history epoch (DESIGN.md §14): the full
/// CoW-cloned database state at the snapshot horizon, pinned pointers to
/// every committed entry up to it, the canonicalized per-entry analysis,
/// the static table footprints, and a frozen copy of the analyzer. Built
/// under the commit lock, then shared read-only by any number of
/// concurrent what-if analyses while regular traffic keeps committing.
struct HistorySnapshot {
  uint64_t epoch = 0;    // history epoch this snapshot pins
  uint64_t horizon = 0;  // committed entries covered (log prefix length)
  std::shared_ptr<const sql::Database> db;
  /// Owned copies of the pinned prefix. A what-if publish rewrites live
  /// log entries *in place* (and an add/remove publish inserts or erases
  /// mid-deque, which invalidates every reference into it), so pointers
  /// into the live deque would race with lock-free in-flight analyses.
  /// The snapshot owns its history instead; `entries` points into this.
  std::shared_ptr<const std::deque<sql::LogEntry>> entry_storage;
  std::shared_ptr<const std::vector<const sql::LogEntry*>> entries;
  std::shared_ptr<const std::vector<QueryRW>> analysis;
  std::shared_ptr<const std::vector<TableFootprint>> footprints;
  std::shared_ptr<const QueryAnalyzer> analyzer;
};

/// Per-request execution context (session-scoped robustness knobs). Every
/// what-if entry point takes one: a server session owns a CancelToken +
/// RetryPolicy per request and passes them here, so deadlines and retry
/// behavior are request-scoped rather than process-global. The no-context
/// overloads fall back to the facade-wide Options::whatif_* defaults
/// (embedded single-session use).
struct RequestContext {
  /// Cancellation/deadline token observed at every replay phase boundary
  /// and slot. Nullable = not cancellable.
  const CancelToken* cancel = nullptr;
  /// Bounded retry for transient replay faults. kAborted publish conflicts
  /// are retried only when retry.retry_aborted is set AND the retry loops
  /// around the whole WhatIf call (re-snapshotting) — never inside it.
  RetryPolicy retry;
};

/// Result of an analyze-only what-if (no publish): the replay statistics
/// plus a fingerprint of the alternate-universe state, tagged with the
/// snapshot it was computed against.
struct WhatIfAnalysis {
  ReplayStats stats;
  /// sha256 over the alternate universe's sorted table contents — same
  /// format as Ultraverse::StateFingerprint(), so an analyze-only run is
  /// directly comparable with a published one or with a full-naive oracle.
  std::string fingerprint;
  uint64_t epoch = 0;
  uint64_t horizon = 0;
  bool cache_hit = false;  // served from the (epoch, op) result cache
};

/// Top-level framework facade: owns the database, the committed-query log,
/// the transpiled application, the analyzer, and the retroactive engine.
///
/// Regular operation: RunTransaction()/ExecuteSql() serve traffic against
/// the live database while logging one entry per application-level
/// transaction (the augmented-code protocol of Figure 3).
/// What-if analysis: WhatIf() executes a retroactive operation under any of
/// the four system configurations.
class Ultraverse {
 public:
  struct Options {
    /// Virtual client<->server round-trip cost (see VirtualClock).
    uint64_t rtt_micros = 1000;
    int replay_threads = 8;
    bool hash_jumper = false;
    /// Literal table comparison on hash-hits (§4.5).
    bool verify_hash_hits = false;
    /// Maintain R/W dependency logs at commit time (the asynchronous
    /// logger whose overhead Table 7(c) measures). Off = compute lazily at
    /// what-if time.
    bool eager_analysis = false;
    /// Log per-table hashes at commit (needed by Hash-jumper).
    bool eager_hash_log = false;
    uint64_t rng_seed = 42;

    /// Durable write-ahead query log (DESIGN.md §11): every committed
    /// entry appends to this file, and WhatIf() publishes its commit
    /// marker through it (the atomic two-phase what-if publish). Empty =
    /// in-memory only. Restarting over an existing file APPENDS; recover
    /// first (fault::RecoverInto on a fresh facade's db()/log(), then
    /// AttachWal() — the order matters: recovery truncates a torn tail,
    /// and the append offset must be computed after that truncation).
    /// UvServer does exactly this when ServerOptions::recover_wal is set.
    std::string wal_path;
    /// Group commit: fsync every Nth entry (1 = each, 0 = markers only).
    uint64_t wal_fsync_every_n = 1;

    /// Bounded retry for transient (kUnavailable) replay faults during
    /// WhatIf(). Default: no retries.
    RetryPolicy whatif_retry;
    /// Cancellation/deadline token observed by WhatIf() replays; workers
    /// drain gracefully and the live database stays untouched. Nullable.
    const CancelToken* whatif_cancel = nullptr;

    /// Execution engine for the live database (clones used by replay
    /// inherit it). Unset = the process default (sql::DefaultExecEngine).
    std::optional<sql::ExecEngine> exec_engine;

    /// Decision-provenance level for WhatIf() (DESIGN.md §13): kSummary
    /// records phase timings + verdict totals into ReplayStats::report;
    /// kFull adds one TxnExplain per suffix transaction; kOff disables
    /// report assembly entirely (bench ablation).
    obs::ExplainLevel explain = obs::ExplainLevel::kSummary;
    /// Log indices forced into every replay plan (ground-truth knob for
    /// `fuzz_whatif --check-explain`; see RetroactiveEngine::Options).
    std::vector<uint64_t> forced_replay;
  };

  Ultraverse() : Ultraverse(Options()) {}
  explicit Ultraverse(Options options);
  ~Ultraverse();

  sql::Database* db() { return &db_; }
  sql::QueryLog* log() { return &log_; }
  /// Durable WAL when Options::wal_path is set; nullptr otherwise. Null
  /// after a failed open — check wal_status().
  sql::Wal* wal() { return wal_.get(); }
  const Status& wal_status() const { return wal_status_; }
  /// Opens a WAL for append on a facade constructed without one — the
  /// second half of the recover-then-attach restart sequence (see the
  /// Options::wal_path comment). Fails if a WAL is already attached.
  Status AttachWal(const std::string& path);
  QueryAnalyzer* analyzer() { return &analyzer_; }
  VirtualClock* clock() { return &clock_; }
  const app::AppProgram* program() const { return &program_; }

  // --- Setup ---------------------------------------------------------------

  /// Parses the UvScript application, runs DSE + transpilation on every
  /// function (§3), installs the transpiled procedures into the database as
  /// committed DDL, and keeps the augmented program for B/D execution.
  Status LoadApplication(const std::string& source);
  Status LoadApplication(const std::string& source,
                         sym::DseEngine::Options dse_options);

  /// Seconds spent in DSE + transpilation by the last LoadApplication.
  double transpile_seconds() const { return transpile_seconds_; }

  const transpiler::TranspiledTransaction* FindTranspiled(
      const std::string& fn) const;

  /// Declares row-identifier columns (§4.3 / Appendix D).
  void ConfigureRi(const std::string& table, const std::string& ri_column,
                   std::vector<std::string> aliases = {});

  // --- Regular operation ----------------------------------------------------

  /// Raw SQL client traffic: executes + logs one entry.
  Result<sql::ExecResult> ExecuteSql(const std::string& sql_text);

  /// Runs one application-level transaction. kB/kD execute the (augmented)
  /// application through the interpreter, issuing its SQL statement by
  /// statement (N round trips); kT/kTD execute the transpiled procedure
  /// (1 round trip). Both log the equivalent CALL entry.
  Result<app::AppValue> RunTransaction(const std::string& fn,
                                       std::vector<app::AppValue> args,
                                       SystemMode mode);

  // --- Analysis --------------------------------------------------------------

  /// Ensures per-entry R/W analysis covers the whole log; returns the
  /// canonicalized analysis (entry i+1 -> element i).
  Result<const std::vector<QueryRW>*> EnsureAnalysis();

  /// Ultraverse's additional dependency-log footprint (Table 7(b)).
  size_t UltraverseLogBytes();

  // --- What-if ---------------------------------------------------------------

  /// Executes a retroactive operation under the given system configuration
  /// and updates the live database to the alternate-universe state.
  /// `rules` optionally simulate interactive human decisions during the
  /// replay (§6): matching application transactions are suppressed while
  /// their condition holds in the alternate universe. Concurrency-safe:
  /// the replay runs against a pinned snapshot of the history while
  /// regular traffic keeps committing; if any commit lands before the
  /// publish point the call returns kAborted (first committer wins) and
  /// the live database stays untouched — re-invoke to retry against the
  /// extended history.
  Result<ReplayStats> WhatIf(const RetroOp& op, SystemMode mode,
                             std::vector<ReplayRule> rules = {});
  /// Session-scoped variant: the request's own cancel token and retry
  /// policy override the facade-wide Options::whatif_* defaults.
  Result<ReplayStats> WhatIf(const RetroOp& op, SystemMode mode,
                             std::vector<ReplayRule> rules,
                             const RequestContext& ctx);

  // --- Concurrent analyze-only what-ifs (MVCC, DESIGN.md §14) ---------------

  /// Monotone history epoch: advances on every commit and every published
  /// what-if. Two equal epochs imply identical history AND live state, so
  /// snapshots, hash timelines and what-if results are keyed on it.
  uint64_t history_epoch() const { return log_.epoch(); }

  /// Returns the shared immutable snapshot of the current history epoch,
  /// building it (full CoW clone + analysis catch-up) only when the epoch
  /// advanced since the last call. Any number of threads may analyze
  /// against the returned snapshot concurrently; writers are blocked only
  /// while the snapshot itself is built.
  Result<std::shared_ptr<const HistorySnapshot>> SnapshotHistory();

  /// Analyze-only what-if against an explicit snapshot: computes the
  /// alternate universe and its fingerprint WITHOUT publishing — the live
  /// database, log and WAL are not touched. Safe to call from many threads
  /// with the same snapshot simultaneously. `full_naive` selects the
  /// ground-truth reference path (differential oracle, DESIGN.md §9).
  Result<WhatIfAnalysis> WhatIfAnalyzeAt(const HistorySnapshot& snap,
                                         const RetroOp& op, SystemMode mode,
                                         bool full_naive = false);
  /// Session-scoped variant (see RequestContext).
  Result<WhatIfAnalysis> WhatIfAnalyzeAt(const HistorySnapshot& snap,
                                         const RetroOp& op, SystemMode mode,
                                         bool full_naive,
                                         const RequestContext& ctx);

  /// Convenience: snapshot the current epoch and analyze, memoizing the
  /// result keyed by (history epoch, canonicalized op, mode). A repeated
  /// question against an unchanged history is answered from the cache
  /// (verdict kResultCacheHit, metric uv.whatif.cache.hit); any commit
  /// invalidates by advancing the epoch.
  Result<WhatIfAnalysis> WhatIfAnalyze(const RetroOp& op, SystemMode mode);
  /// Session-scoped variant (see RequestContext). Cache hits still honor
  /// the context's deadline check before returning.
  Result<WhatIfAnalysis> WhatIfAnalyze(const RetroOp& op, SystemMode mode,
                                       const RequestContext& ctx);

  /// Convenience: builds a RetroOp from SQL text ("" = remove).
  Result<RetroOp> MakeOp(RetroOp::Kind kind, uint64_t index,
                         const std::string& new_sql);

  /// Sets a client-side environment value (§3.3): the next transactions'
  /// dom_input("name") / user_agent() calls observe it, and it is recorded
  /// for faithful replay. Keys use the client-symbol names ("dom_<name>",
  /// "client_user_agent").
  void SetClientEnv(const std::string& key, sql::Value value) {
    client_env_[key] = std::move(value);
  }

  /// Tags the current history position as a named what-if scenario branch
  /// (§6 "Managing Many what-if Scenarios").
  void TagScenario(const std::string& name);
  const std::map<std::string, uint64_t>& scenario_tags() const {
    return scenario_tags_;
  }

  /// Checkpoint (§5 rollback option (iii)): trims undo journals before the
  /// current history position. Bounds journal memory; what-ifs targeting
  /// older commits transparently rebuild the prefix from the log.
  void Checkpoint();

  /// Serializes the full database state (all tables, sorted rows) — used
  /// by tests and benches to compare universes across configurations.
  std::string StateFingerprint() const;

 private:
  class RegularBridge;
  class ReplayBridge;

  /// Appends the entry to the in-memory log and the WAL. Returns the WAL
  /// append seq the caller must WaitDurable() on once it has released
  /// commit_mu_ (0 = durability not owed yet: deferred group commit, or
  /// no WAL). Moving the fsync wait off the commit critical section is
  /// what lets concurrent committers share one group fsync.
  Result<uint64_t> CommitEntry(sql::LogEntry entry);
  Status InterpreterReplayExecutor(sql::Database* target,
                                   const sql::LogEntry& entry,
                                   uint64_t commit_index,
                                   std::atomic<uint64_t>* rtt_counter);
  /// Catch-up of raw + canonicalized analysis and footprints to the log
  /// tail. Caller holds commit_mu_ exclusively. Incremental: entries
  /// already canonicalized are reused verbatim unless the analyzer's
  /// merged-RI generation advanced (then canonical representatives may
  /// have changed and everything re-canonicalizes).
  Status EnsureAnalysisLocked();

  /// Publish-time cache maintenance, invoked by the engine inside the
  /// publish critical section (commit_mu_ held exclusively) right after it
  /// rewrote log_ to the alternate history: drops per-entry analysis from
  /// the rewrite point on (the old statements' R/W sets would poison
  /// future dependency planning) and re-baselines the eager hash log
  /// against the just-adopted live tables.
  void OnPublishedLocked(const RetroOp& op);

  Options options_;
  sql::Database db_;
  sql::QueryLog log_;
  std::unique_ptr<sql::Wal> wal_;
  Status wal_status_;
  QueryAnalyzer analyzer_;
  VirtualClock clock_;
  Rng rng_;
  int64_t bb_clock_ = 0;

  app::AppProgram program_;
  std::map<std::string, transpiler::TranspiledTransaction> transpiled_;
  double transpile_seconds_ = 0;

  // Raw (uncanonicalized) per-entry analysis, maintained incrementally,
  // plus the aligned static table footprints fed to the dependency
  // planner's pre-filter (exact dynamic table sets satisfy the ⊇
  // contract of DependencyOptions::static_footprints).
  std::vector<QueryRW> raw_analysis_;
  std::vector<TableFootprint> footprints_;
  // Canonicalized analysis: extended append-only while the analyzer's
  // merged-RI generation holds, rebuilt wholesale when a merge lands.
  std::vector<QueryRW> canonical_analysis_;
  uint64_t canonical_merge_gen_ = 0;

  // Last logged hash per table (eager hash logging).
  std::map<std::string, Digest256> last_hash_;

  // Client-side environment for dom_input()/user_agent() (§3.3).
  std::map<std::string, sql::Value> client_env_;

  std::map<std::string, uint64_t> scenario_tags_;

  /// Exclusive: commits, snapshot builds, the what-if adoption swap.
  /// Shared: staging clones, fault-ins, fingerprints — so concurrent
  /// analyses never serialize on each other. Mutable so const readers
  /// (StateFingerprint) can take the shared side.
  mutable std::shared_mutex commit_mu_;

  // --- MVCC what-if state (DESIGN.md §14) ---------------------------------
  /// Latest epoch's snapshot; replaced when the epoch advances. In-flight
  /// analyses keep older snapshots alive through their shared_ptrs.
  std::shared_ptr<const HistorySnapshot> snapshot_cache_;
  /// Hash-jumper timeline shared across publishing what-ifs, epoch-keyed.
  TimelineCache timeline_cache_;
  /// (epoch, canonicalized op, mode) -> analyze-only result. Guarded by
  /// result_mu_ (a leaf lock: never held while acquiring commit_mu_).
  std::mutex result_mu_;
  uint64_t result_cache_epoch_ = 0;
  std::map<std::string, WhatIfAnalysis> result_cache_;
};

/// Serializes a database's full state (all tables, sorted rows) in exactly
/// the Ultraverse::StateFingerprint() format — for recovery-side oracles
/// (the network differential gate) that re-derive state from a WAL without
/// constructing a facade.
std::string FingerprintDatabase(const sql::Database& db);

}  // namespace ultraverse::core

#endif  // ULTRAVERSE_CORE_ULTRAVERSE_H_
