#include "core/predicate.h"

#include <sstream>

#include "util/string_util.h"

namespace ultraverse::core {

namespace {
using sql::BinaryOp;
using sql::Expr;
using sql::ExprKind;
using sql::Value;
}  // namespace

// ---------------------------------------------------------------------------
// ValueInterval
// ---------------------------------------------------------------------------

bool ValueInterval::Contains(const Value& v) const {
  if (lo) {
    int c = v.Compare(*lo);
    if (c < 0 || (c == 0 && !lo_incl)) return false;
  }
  if (hi) {
    int c = v.Compare(*hi);
    if (c > 0 || (c == 0 && !hi_incl)) return false;
  }
  return true;
}

std::optional<ValueInterval> ValueInterval::Meet(
    const ValueInterval& other) const {
  ValueInterval r;
  // Lower bound: the greater of the two (ties intersect inclusivity).
  if (!lo) {
    r.lo = other.lo;
    r.lo_incl = other.lo_incl;
  } else if (!other.lo) {
    r.lo = lo;
    r.lo_incl = lo_incl;
  } else {
    int c = lo->Compare(*other.lo);
    if (c > 0) {
      r.lo = lo;
      r.lo_incl = lo_incl;
    } else if (c < 0) {
      r.lo = other.lo;
      r.lo_incl = other.lo_incl;
    } else {
      r.lo = lo;
      r.lo_incl = lo_incl && other.lo_incl;
    }
  }
  // Upper bound: the lesser of the two.
  if (!hi) {
    r.hi = other.hi;
    r.hi_incl = other.hi_incl;
  } else if (!other.hi) {
    r.hi = hi;
    r.hi_incl = hi_incl;
  } else {
    int c = hi->Compare(*other.hi);
    if (c < 0) {
      r.hi = hi;
      r.hi_incl = hi_incl;
    } else if (c > 0) {
      r.hi = other.hi;
      r.hi_incl = other.hi_incl;
    } else {
      r.hi = hi;
      r.hi_incl = hi_incl && other.hi_incl;
    }
  }
  if (r.lo && r.hi) {
    int c = r.lo->Compare(*r.hi);
    if (c > 0) return std::nullopt;
    if (c == 0 && !(r.lo_incl && r.hi_incl)) return std::nullopt;
  }
  return r;
}

bool ValueInterval::Intersects(const ValueInterval& other) const {
  return Meet(other).has_value();
}

bool ValueInterval::Covers(const ValueInterval& other) const {
  if (lo) {
    if (!other.lo) return false;
    int c = lo->Compare(*other.lo);
    if (c > 0) return false;
    if (c == 0 && !lo_incl && other.lo_incl) return false;
  }
  if (hi) {
    if (!other.hi) return false;
    int c = hi->Compare(*other.hi);
    if (c < 0) return false;
    if (c == 0 && !hi_incl && other.hi_incl) return false;
  }
  return true;
}

std::string ValueInterval::ToString() const {
  std::ostringstream os;
  os << (lo_incl ? '[' : '(');
  os << (lo ? lo->ToDisplayString() : std::string("-inf"));
  os << ", ";
  os << (hi ? hi->ToDisplayString() : std::string("+inf"));
  os << (hi_incl ? ']' : ')');
  return os.str();
}

// ---------------------------------------------------------------------------
// ValueRegion
// ---------------------------------------------------------------------------

void ValueRegion::MergeWith(const ValueRegion& other) {
  if (top) return;
  if (other.top) {
    WidenToTop();
    return;
  }
  points.insert(other.points.begin(), other.points.end());
  intervals.insert(intervals.end(), other.intervals.begin(),
                   other.intervals.end());
}

ValueRegion ValueRegion::MeetWith(const ValueRegion& other) const {
  if (top) return other;
  if (other.top) return *this;
  ValueRegion r = EmptySet();
  for (const auto& p : points) {
    if (other.ContainsEncoded(p)) r.points.insert(p);
  }
  for (const auto& p : other.points) {
    if (ContainsEncoded(p)) r.points.insert(p);
  }
  for (const auto& a : intervals) {
    for (const auto& b : other.intervals) {
      if (auto m = a.Meet(b)) r.intervals.push_back(*m);
    }
  }
  return r;
}

bool ValueRegion::Intersects(const ValueRegion& other) const {
  // ⊤ ∩ ∅ is empty: an empty region matches no row, whatever faces it.
  if (IsEmptySet() || other.IsEmptySet()) return false;
  if (top || other.top) return true;
  return !MeetWith(other).IsEmptySet();
}

bool ValueRegion::Contains(const Value& v) const {
  if (top) return true;
  if (points.count(v.Encode())) return true;
  for (const auto& iv : intervals) {
    if (iv.Contains(v)) return true;
  }
  return false;
}

bool ValueRegion::ContainsEncoded(const std::string& enc) const {
  if (top) return true;
  if (points.count(enc)) return true;
  if (intervals.empty()) return false;
  Value v;
  if (!Value::Decode(enc, &v)) return true;  // conservative: assume member
  for (const auto& iv : intervals) {
    if (iv.Contains(v)) return true;
  }
  return false;
}

bool ValueRegion::ContainedIn(const ValueRegion& other) const {
  if (other.top) return true;
  if (top) return false;
  for (const auto& p : points) {
    if (!other.ContainsEncoded(p)) return false;
  }
  for (const auto& iv : intervals) {
    bool covered = false;
    for (const auto& ov : other.intervals) {
      if (ov.Covers(iv)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

std::string ValueRegion::ToString() const {
  if (top) return "*";
  if (IsEmptySet()) return "{}";
  std::ostringstream os;
  bool first = true;
  if (!points.empty()) {
    os << '{';
    for (const auto& p : points) {
      if (!first) os << ", ";
      first = false;
      Value v;
      os << (Value::Decode(p, &v) ? v.ToDisplayString() : std::string("?"));
    }
    os << '}';
  }
  for (const auto& iv : intervals) {
    if (!first || !points.empty()) os << " u ";
    first = false;
    os << iv.ToString();
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Extraction
// ---------------------------------------------------------------------------

namespace {

/// `v <op> col` reads as `col <flipped-op> v`.
BinaryOp FlipComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt: return BinaryOp::kGt;
    case BinaryOp::kLe: return BinaryOp::kGe;
    case BinaryOp::kGt: return BinaryOp::kLt;
    case BinaryOp::kGe: return BinaryOp::kLe;
    default: return op;
  }
}

ValueRegion IntervalsFor(BinaryOp op, const std::vector<Value>& candidates) {
  ValueRegion r = ValueRegion::EmptySet();
  for (const auto& v : candidates) {
    ValueInterval iv;
    switch (op) {
      case BinaryOp::kLt:
        iv.hi = v;
        break;
      case BinaryOp::kLe:
        iv.hi = v;
        iv.hi_incl = true;
        break;
      case BinaryOp::kGt:
        iv.lo = v;
        break;
      case BinaryOp::kGe:
        iv.lo = v;
        iv.lo_incl = true;
        break;
      default:
        return ValueRegion::Top();
    }
    r.intervals.push_back(std::move(iv));
  }
  return r;
}

}  // namespace

ValueRegion ExtractPredicateRegion(const Expr* where, const std::string& table,
                                   const std::string& ri_column,
                                   const std::vector<std::string>& ri_aliases,
                                   const PredicateEvalFn& eval,
                                   const PredicateAliasFn& alias_lookup) {
  if (!where) return ValueRegion::Top();
  switch (where->kind) {
    case ExprKind::kBinary: {
      const BinaryOp op = where->binary_op;
      if (op == BinaryOp::kAnd) {
        ValueRegion l =
            ExtractPredicateRegion(where->children[0].get(), table, ri_column,
                                   ri_aliases, eval, alias_lookup);
        ValueRegion r =
            ExtractPredicateRegion(where->children[1].get(), table, ri_column,
                                   ri_aliases, eval, alias_lookup);
        return l.MeetWith(r);
      }
      if (op == BinaryOp::kOr) {
        ValueRegion l =
            ExtractPredicateRegion(where->children[0].get(), table, ri_column,
                                   ri_aliases, eval, alias_lookup);
        ValueRegion r =
            ExtractPredicateRegion(where->children[1].get(), table, ri_column,
                                   ri_aliases, eval, alias_lookup);
        l.MergeWith(r);
        return l;
      }
      if (op == BinaryOp::kEq || op == BinaryOp::kLt || op == BinaryOp::kLe ||
          op == BinaryOp::kGt || op == BinaryOp::kGe) {
        const Expr* col = where->children[0].get();
        const Expr* val = where->children[1].get();
        BinaryOp eff = op;
        if (col->kind != ExprKind::kColumnRef) {
          std::swap(col, val);
          eff = FlipComparison(op);
        }
        if (col->kind != ExprKind::kColumnRef) return ValueRegion::Top();
        if (!col->table.empty() && !EqualsIgnoreCase(col->table, table)) {
          return ValueRegion::Top();
        }
        auto candidates = eval(*val);
        if (!candidates) return ValueRegion::Top();
        if (EqualsIgnoreCase(col->column, ri_column)) {
          if (eff != BinaryOp::kEq) return IntervalsFor(eff, *candidates);
          ValueRegion r = ValueRegion::EmptySet();
          for (const auto& v : *candidates) r.points.insert(v.Encode());
          return r;
        }
        for (const auto& alias : ri_aliases) {
          if (!EqualsIgnoreCase(col->column, alias)) continue;
          // Ranges over alias values don't translate through the
          // point-wise alias→RI map: widen.
          if (eff != BinaryOp::kEq) return ValueRegion::Top();
          ValueRegion r = ValueRegion::EmptySet();
          for (const auto& v : *candidates) {
            auto ri = alias_lookup(alias, v);
            if (!ri) return ValueRegion::Top();
            r.points.insert(ri->begin(), ri->end());
          }
          return r;
        }
        // A non-RI column constrains nothing at row granularity.
        return ValueRegion::Top();
      }
      return ValueRegion::Top();
    }
    case ExprKind::kInList: {
      const Expr* col = where->children[0].get();
      if (col->kind != ExprKind::kColumnRef ||
          !EqualsIgnoreCase(col->column, ri_column)) {
        return ValueRegion::Top();
      }
      ValueRegion r = ValueRegion::EmptySet();
      for (size_t i = 1; i < where->children.size(); ++i) {
        auto candidates = eval(*where->children[i]);
        if (!candidates) return ValueRegion::Top();
        for (const auto& v : *candidates) r.points.insert(v.Encode());
      }
      return r;
    }
    default:
      return ValueRegion::Top();
  }
}

}  // namespace ultraverse::core
