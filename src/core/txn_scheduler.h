#ifndef ULTRAVERSE_CORE_TXN_SCHEDULER_H_
#define ULTRAVERSE_CORE_TXN_SCHEDULER_H_

#include <functional>
#include <optional>
#include <vector>

#include "core/rw_sets.h"
#include "sqldb/database.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace ultraverse::core {

/// §6 "Using Ultraverse for Concurrency Control": a deterministic batch
/// transaction scheduler in the Calvin/Bohm mold. Those systems must
/// discover read/write sets by (speculatively) executing transactions and
/// restart the schedule on dirty reads; Ultraverse's fine-grained query
/// dependency analysis provides the sets *before* execution, so the batch
/// runs in parallel along its conflict DAG with no aborts and a final state
/// identical to serial commit order (strong serializability).
class TxnScheduler {
 public:
  struct Options {
    int num_threads = 8;

    /// Optional static pre-filter (wired from src/analysis): returns the
    /// all-paths static RW summary of a statement — an over-approximation
    /// of every dynamic execution, parameters abstracted to wildcards —
    /// or nullopt when unknown. A batch statement whose static summary is
    /// column-wise disjoint from every other member's — or column-
    /// conflicting but refuted by the predicate-region tier (§15) —
    /// provably conflicts with nothing: its dynamic analysis and conflict-DAG
    /// participation are skipped, and its table locks come from the static
    /// summary's (superset) table sets.
    std::function<std::optional<QueryRW>(const sql::Statement&)>
        static_summary;

    /// Cooperative cancellation/deadline. Workers poll between statements
    /// and drain gracefully: in-flight statements finish, queued ones stay
    /// unexecuted, and ExecuteBatch returns kCancelled/kDeadlineExceeded.
    const CancelToken* cancel = nullptr;
  };

  struct Stats {
    size_t executed = 0;
    /// Longest conflicting chain: the batch's inherent serial fraction.
    size_t critical_path = 0;
    /// Statements the static pre-filter proved disjoint (dynamic analysis
    /// skipped).
    size_t prefiltered = 0;
    /// Pair tests where the column sets collided but the predicate-region
    /// tier (§15) refuted the conflict. Counts directed pair probes, not
    /// unique pairs (the disjointness scan short-circuits).
    size_t predicate_refuted = 0;
    double analysis_seconds = 0;
    double execute_seconds = 0;
  };

  TxnScheduler(sql::Database* db, QueryAnalyzer* analyzer, Options options)
      : db_(db), analyzer_(analyzer), options_(options) {}

  /// Executes the batch with the effects of serial order `batch[0..n)`.
  /// `base_commit` tags undo-journal entries (use the next free index).
  Result<Stats> ExecuteBatch(const std::vector<sql::StatementPtr>& batch,
                             uint64_t base_commit);

 private:
  sql::Database* db_;
  QueryAnalyzer* analyzer_;
  Options options_;
};

}  // namespace ultraverse::core

#endif  // ULTRAVERSE_CORE_TXN_SCHEDULER_H_
