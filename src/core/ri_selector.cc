#include "core/ri_selector.h"

#include "util/string_util.h"

namespace ultraverse::core {

namespace {

using sql::Expr;
using sql::ExprKind;
using sql::Statement;
using sql::StatementKind;

/// Collects `col = <resolvable>` conjuncts of a WHERE clause attributed to
/// `table` into `counts`. OR disjuncts still count: they enumerate rows.
void CountEqualities(const Expr* where, const std::string& table,
                     const SchemaRegistry& reg,
                     std::map<std::string, size_t>* counts) {
  if (!where) return;
  switch (where->kind) {
    case ExprKind::kBinary:
      if (where->binary_op == sql::BinaryOp::kAnd ||
          where->binary_op == sql::BinaryOp::kOr) {
        CountEqualities(where->children[0].get(), table, reg, counts);
        CountEqualities(where->children[1].get(), table, reg, counts);
        return;
      }
      if (where->binary_op == sql::BinaryOp::kEq) {
        const Expr* col = where->children[0].get();
        const Expr* val = where->children[1].get();
        if (col->kind != ExprKind::kColumnRef) std::swap(col, val);
        if (col->kind != ExprKind::kColumnRef) return;
        if (!col->table.empty() && !EqualsIgnoreCase(col->table, table)) {
          return;
        }
        const auto* info = reg.FindTable(table);
        if (!info) return;
        for (const auto& c : info->columns) {
          if (EqualsIgnoreCase(c.name, col->column)) {
            ++(*counts)[c.name];
            return;
          }
        }
      }
      return;
    case ExprKind::kInList: {
      const Expr* col = where->children[0].get();
      if (col->kind == ExprKind::kColumnRef) {
        ++(*counts)[col->column];
      }
      return;
    }
    default:
      return;
  }
}

/// Walks one statement (through procedure bodies) accumulating per-table
/// equality counts.
void CountStatement(const Statement& stmt, const SchemaRegistry& reg,
                    std::map<std::string, std::map<std::string, size_t>>* by_table,
                    int depth) {
  if (depth > 8) return;
  switch (stmt.kind) {
    case StatementKind::kSelect:
      if (!stmt.select->from_table.empty()) {
        CountEqualities(stmt.select->where.get(), stmt.select->from_table, reg,
                        &(*by_table)[stmt.select->from_table]);
      }
      break;
    case StatementKind::kUpdate:
      CountEqualities(stmt.update.where.get(), stmt.update.table, reg,
                      &(*by_table)[stmt.update.table]);
      break;
    case StatementKind::kDelete:
      CountEqualities(stmt.del.where.get(), stmt.del.table, reg,
                      &(*by_table)[stmt.del.table]);
      break;
    case StatementKind::kCall: {
      const auto* proc = reg.FindProcedure(stmt.call.procedure);
      if (proc) {
        for (const auto& inner : proc->body) {
          CountStatement(*inner, reg, by_table, depth + 1);
        }
      }
      break;
    }
    case StatementKind::kTransaction:
      for (const auto& inner : stmt.transaction.statements) {
        CountStatement(*inner, reg, by_table, depth + 1);
      }
      break;
    case StatementKind::kIf:
      for (const auto& branch : stmt.if_stmt.branches) {
        for (const auto& inner : branch.body) {
          CountStatement(*inner, reg, by_table, depth + 1);
        }
      }
      break;
    case StatementKind::kWhile:
      for (const auto& inner : stmt.while_stmt.body) {
        CountStatement(*inner, reg, by_table, depth + 1);
      }
      break;
    default:
      break;
  }
}

}  // namespace

std::map<std::string, RiSelector::Choice> RiSelector::SelectFromLog(
    const sql::QueryLog& log) {
  SchemaRegistry reg;
  std::map<std::string, std::map<std::string, size_t>> by_table;
  for (const auto& entry : log.entries()) {
    reg.ApplyDdl(*entry.stmt);
    CountStatement(*entry.stmt, reg, &by_table, 0);
  }

  std::map<std::string, Choice> out;
  for (const auto& table : reg.TableNames()) {
    const auto* info = reg.FindTable(table);
    Choice choice;
    auto counts_it = by_table.find(table);
    if (counts_it != by_table.end()) choice.equality_counts = counts_it->second;

    // Primary key name (if any).
    std::string pk;
    for (const auto& c : info->columns) {
      if (c.primary_key) pk = c.name;
    }

    // Winner: most-equated column; the PK wins ties and the no-data case.
    std::string best = pk;
    size_t best_count = pk.empty() ? 0 : choice.equality_counts[pk];
    for (const auto& [col, count] : choice.equality_counts) {
      if (count > best_count) {
        best = col;
        best_count = count;
      }
    }
    if (best.empty() && !info->columns.empty()) {
      best = info->columns[0].name;  // degenerate: no predicates, no PK
    }
    choice.ri_column = best;

    // Aliases: other heavily-equated columns (they address the same rows
    // through insert-time mappings, §4.3 "Alias RI Column").
    for (const auto& [col, count] : choice.equality_counts) {
      if (col != best && best_count > 0 && count * 4 >= best_count) {
        choice.aliases.push_back(col);
      }
    }
    out[table] = std::move(choice);
  }
  return out;
}

void RiSelector::Apply(const sql::QueryLog& log, QueryAnalyzer* analyzer) {
  for (auto& [table, choice] : SelectFromLog(log)) {
    if (!choice.ri_column.empty()) {
      analyzer->ConfigureRi(table, choice.ri_column, choice.aliases);
    }
  }
}

}  // namespace ultraverse::core
