#include "core/txn_scheduler.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <optional>
#include <thread>

#include "core/dep_graph.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/backoff.h"
#include "util/mpmc_queue.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"
#include "util/virtual_clock.h"

namespace ultraverse::core {

Result<TxnScheduler::Stats> TxnScheduler::ExecuteBatch(
    const std::vector<sql::StatementPtr>& batch, uint64_t base_commit) {
  Stats stats;
  if (batch.empty()) return stats;
  UV_RETURN_NOT_OK(CheckCancel(options_.cancel, "scheduler.batch"));
  static obs::Counter* const batches =
      obs::Registry::Global().counter("uv.scheduler.batches");
  static obs::Counter* const txns =
      obs::Registry::Global().counter("uv.scheduler.txns");
  batches->Inc();
  txns->Add(batch.size());
  obs::TraceSpan batch_span("scheduler.batch", {{"txns", batch.size()}});

  // 1. Pre-execution R/W analysis — the "prior knowledge of transaction
  //    dependency" §6 proposes handing to Calvin/Bohm-style schedulers.
  Stopwatch analysis_watch;
  std::optional<obs::TraceSpan> stage_span;
  stage_span.emplace("scheduler.analysis");
  // Static pre-filter: a statement whose static summary is column-wise
  // disjoint from every other member's can neither create nor receive a
  // conflict edge (static ⊇ dynamic), so its dynamic analysis is skipped
  // and it schedules immediately. Its locks come from the static summary's
  // table sets, a superset of the dynamic ones.
  std::vector<bool> skip(batch.size(), false);
  std::vector<std::optional<QueryRW>> stat;
  if (options_.static_summary) {
    stat.resize(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      stat[i] = options_.static_summary(*batch[i]);
    }
    // A pair conflicts when the column sets collide AND the predicate-region
    // tier (DESIGN.md §15) cannot refute the collision: column-conflicting
    // statements whose row regions are provably disjoint in every direction
    // (write/read, read/write, write/write) touch no common row, so neither
    // can create nor receive an edge from the other. Static-vs-static raw
    // summaries share one registry, so their row keys align and
    // RowSet::RegionIntersects is sound without canonicalization.
    size_t refuted_pairs = 0;
    auto conflict = [&refuted_pairs](const QueryRW& a, const QueryRW& b) {
      bool cols = a.wc.Intersects(b.wc) || a.wc.Intersects(b.rc) ||
                  a.rc.Intersects(b.wc);
      if (!cols) return false;
      bool rows = a.wr.RegionIntersects(b.rr) ||
                  a.rr.RegionIntersects(b.wr) ||
                  a.wr.RegionIntersects(b.wr);
      if (!rows) {
        ++refuted_pairs;
        return false;
      }
      return true;
    };
    for (size_t i = 0; i < batch.size(); ++i) {
      if (!stat[i]) continue;
      bool disjoint = true;
      for (size_t j = 0; j < batch.size() && disjoint; ++j) {
        if (j == i) continue;
        disjoint = stat[j] && !conflict(*stat[i], *stat[j]);
      }
      skip[i] = disjoint;
    }
    stats.predicate_refuted = refuted_pairs;
  }
  std::vector<QueryRW> rw(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    if (skip[i]) {
      rw[i].read_tables = stat[i]->read_tables;
      rw[i].write_tables = stat[i]->write_tables;
      ++stats.prefiltered;
      continue;  // empty rc/wc/rr/wr: contributes no DAG cells
    }
    UV_ASSIGN_OR_RETURN(rw[i],
                        analyzer_->AnalyzeStatement(*batch[i], nullptr));
  }
  std::vector<const QueryRW*> ordered;
  ordered.reserve(batch.size());
  for (const auto& r : rw) ordered.push_back(&r);
  std::vector<std::vector<uint32_t>> preds = BuildConflictDag(ordered);
  stats.analysis_seconds = analysis_watch.ElapsedSeconds();

  // Critical path (inherent serial fraction of the batch).
  {
    std::vector<uint32_t> depth(batch.size(), 1);
    uint32_t longest = 1;
    for (size_t i = 0; i < batch.size(); ++i) {
      for (uint32_t p : preds[i]) depth[i] = std::max(depth[i], depth[p] + 1);
      longest = std::max(longest, depth[i]);
    }
    stats.critical_path = longest;
  }

  // 2. Parallel execution along the DAG (same machinery as the retroactive
  //    replay scheduler, §4.4).
  stage_span.emplace("scheduler.execute");
  Stopwatch exec_watch;
  std::vector<std::vector<uint32_t>> succs(batch.size());
  std::vector<std::atomic<int>> pending(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    pending[i].store(int(preds[i].size()), std::memory_order_relaxed);
    for (uint32_t p : preds[i]) succs[p].push_back(uint32_t(i));
  }

  std::map<std::string, std::unique_ptr<std::mutex>> table_locks;
  for (const auto& r : rw) {
    for (const auto& t : r.read_tables) {
      table_locks.emplace(t, std::make_unique<std::mutex>());
    }
    for (const auto& t : r.write_tables) {
      table_locks.emplace(t, std::make_unique<std::mutex>());
    }
  }

  // Per-slot lock lists, precomputed once (sorted by table name — the
  // consistent global acquisition order) instead of re-scanning the whole
  // lock map inside every worker iteration.
  std::vector<std::vector<std::mutex*>> slot_locks(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    std::vector<std::string> names;
    std::set_union(rw[i].read_tables.begin(), rw[i].read_tables.end(),
                   rw[i].write_tables.begin(), rw[i].write_tables.end(),
                   std::back_inserter(names));
    slot_locks[i].reserve(names.size());
    for (const auto& name : names) {
      slot_locks[i].push_back(table_locks.find(name)->second.get());
    }
  }

  MpmcQueue<uint32_t> ready(batch.size() + 16);
  for (size_t i = 0; i < batch.size(); ++i) {
    if (pending[i].load(std::memory_order_relaxed) == 0) {
      ready.TryPush(uint32_t(i));
    }
  }
  std::atomic<size_t> completed{0};
  std::atomic<bool> failed{false};
  std::mutex status_mu;
  Status batch_status = Status::OK();

  ThreadPool pool(size_t(options_.num_threads));
  auto worker = [&] {
    uint32_t pos;
    ExpBackoff backoff;
    while (!failed.load(std::memory_order_relaxed) &&
           completed.load(std::memory_order_relaxed) < batch.size()) {
      if (!ready.TryPop(&pos)) {
        backoff.Pause();
        continue;
      }
      backoff.Reset();
      // Graceful drain: a fired token stops workers from starting new
      // statements; whatever already executed keeps its effects (the batch
      // caller sees the error and decides whether to roll back).
      if (Status cancel_st = CheckCancel(options_.cancel, "scheduler.slot");
          !cancel_st.ok()) {
        std::lock_guard<std::mutex> g(status_mu);
        if (batch_status.ok()) batch_status = cancel_st;
        failed.store(true, std::memory_order_relaxed);
        break;
      }
      const std::vector<std::mutex*>& held = slot_locks[pos];
      for (std::mutex* mu : held) mu->lock();
      sql::ExecContext ctx;
      Result<sql::ExecResult> r =
          db_->Execute(*batch[pos], base_commit + pos, &ctx);
      for (auto it = held.rbegin(); it != held.rend(); ++it) (*it)->unlock();
      if (!r.ok()) {
        std::lock_guard<std::mutex> g(status_mu);
        if (batch_status.ok()) batch_status = r.status();
        failed.store(true, std::memory_order_relaxed);
      }
      completed.fetch_add(1, std::memory_order_acq_rel);
      for (uint32_t next : succs[pos]) {
        if (pending[next].fetch_sub(1, std::memory_order_acq_rel) == 1) {
          ExpBackoff push_backoff;
          while (!ready.TryPush(next)) push_backoff.Pause();
        }
      }
    }
  };
  for (int i = 0; i < options_.num_threads; ++i) pool.Submit(worker);
  pool.WaitIdle();
  UV_RETURN_NOT_OK(batch_status);

  stats.executed = batch.size();
  stats.execute_seconds = exec_watch.ElapsedSeconds();
  {
    static obs::Histogram* const h_analysis =
        obs::Registry::Global().histogram("uv.scheduler.phase.analysis_us");
    static obs::Histogram* const h_execute =
        obs::Registry::Global().histogram("uv.scheduler.phase.execute_us");
    h_analysis->Record(analysis_watch.ElapsedMicros());
    h_execute->Record(exec_watch.ElapsedMicros());
  }
  return stats;
}

}  // namespace ultraverse::core
