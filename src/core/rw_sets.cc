#include "core/rw_sets.h"

#include <algorithm>
#include <optional>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/string_util.h"

namespace ultraverse::core {

namespace {
using sql::Expr;
using sql::ExprKind;
using sql::ExprPtr;
using sql::SelectStatement;
using sql::Statement;
using sql::StatementKind;
using sql::Value;
}  // namespace

// ---------------------------------------------------------------------------
// Set operations
// ---------------------------------------------------------------------------

bool ColumnSet::Intersects(const ColumnSet& other) const {
  const auto& small = items.size() <= other.items.size() ? items : other.items;
  const auto& big = items.size() <= other.items.size() ? other.items : items;
  for (const auto& s : small) {
    if (big.count(s)) return true;
  }
  return false;
}

void RowSet::Merge(const RowSet& other) {
  for (const auto& [col, vals] : other.cols) {
    auto [it, fresh] = cols.emplace(col, vals);
    if (fresh) continue;
    Vals& mine = it->second;
    mine.region.MergeWith(vals.region);
    mine.wildcard = mine.wildcard || vals.wildcard;
    mine.values.insert(vals.values.begin(), vals.values.end());
  }
}

void RowSet::AddConstrained(const std::string& column,
                            const std::optional<std::set<std::string>>& values,
                            const ValueRegion& region) {
  auto [it, fresh] = cols.emplace(column, Vals{});
  Vals& v = it->second;
  if (fresh) {
    v.region = region;
  } else {
    v.region.MergeWith(region);
  }
  if (values) {
    v.values.insert(values->begin(), values->end());
  } else {
    v.wildcard = true;
  }
}

ValueRegion RowSet::TypedRegionOf(const Vals& v) {
  if (v.wildcard) return v.region;
  ValueRegion classic = ValueRegion::OfPoints(v.values);
  return classic.MeetWith(v.region);
}

bool RowSet::RegionIntersects(const RowSet& other) const {
  for (const auto& [col, vals] : cols) {
    auto it = other.cols.find(col);
    if (it == other.cols.end()) continue;
    if (TypedRegionOf(vals).Intersects(TypedRegionOf(it->second))) return true;
  }
  return false;
}

bool RowSet::Intersects(const RowSet& other) const {
  for (const auto& [col, vals] : cols) {
    auto it = other.cols.find(col);
    if (it == other.cols.end()) continue;
    const Vals& theirs = it->second;
    if ((vals.wildcard && (theirs.wildcard || !theirs.values.empty())) ||
        (theirs.wildcard && !vals.values.empty())) {
      return true;
    }
    const auto& small =
        vals.values.size() <= theirs.values.size() ? vals.values
                                                   : theirs.values;
    const auto& big =
        vals.values.size() <= theirs.values.size() ? theirs.values
                                                   : vals.values;
    for (const auto& v : small) {
      if (big.count(v)) return true;
    }
  }
  return false;
}

size_t QueryRW::ApproxLogBytes() const {
  // Ultraverse's compact dependency log: column ids (2 bytes each against a
  // catalog dictionary) + RI values.
  size_t bytes = 4;  // entry header
  bytes += 2 * (rc.items.size() + wc.items.size());
  for (const auto& [col, vals] : rr.cols) {
    (void)col;
    bytes += vals.wildcard ? 1 : 0;
    for (const auto& v : vals.values) bytes += std::min<size_t>(v.size(), 9);
  }
  for (const auto& [col, vals] : wr.cols) {
    (void)col;
    bytes += vals.wildcard ? 1 : 0;
    for (const auto& v : vals.values) bytes += std::min<size_t>(v.size(), 9);
  }
  return bytes;
}

// ---------------------------------------------------------------------------
// TableFootprint
// ---------------------------------------------------------------------------

void TableFootprint::Merge(const TableFootprint& other) {
  universal = universal || other.universal;
  tables.insert(other.tables.begin(), other.tables.end());
}

bool TableFootprint::Intersects(const TableFootprint& other) const {
  if (universal || other.universal) return true;
  const auto& small = tables.size() <= other.tables.size() ? tables
                                                           : other.tables;
  const auto& big = tables.size() <= other.tables.size() ? other.tables
                                                         : tables;
  for (const auto& t : small) {
    if (big.count(t)) return true;
  }
  return false;
}

namespace {
/// "T.col" -> T, "_S.T" -> T (schema pseudo-columns project onto their
/// object so a DDL's footprint collides with DML on the same table).
std::string FootprintTable(const std::string& item) {
  if (item.rfind("_S.", 0) == 0) return item.substr(3);
  size_t dot = item.find('.');
  return dot == std::string::npos ? item : item.substr(0, dot);
}
}  // namespace

TableFootprint FootprintOf(const QueryRW& rw) {
  TableFootprint fp;
  for (const auto& c : rw.rc.items) fp.tables.insert(FootprintTable(c));
  for (const auto& c : rw.wc.items) fp.tables.insert(FootprintTable(c));
  for (const auto& [col, vals] : rw.rr.cols) {
    (void)vals;
    fp.tables.insert(FootprintTable(col));
  }
  for (const auto& [col, vals] : rw.wr.cols) {
    (void)vals;
    fp.tables.insert(FootprintTable(col));
  }
  fp.tables.insert(rw.read_tables.begin(), rw.read_tables.end());
  fp.tables.insert(rw.write_tables.begin(), rw.write_tables.end());
  return fp;
}

// ---------------------------------------------------------------------------
// SchemaRegistry
// ---------------------------------------------------------------------------

void SchemaRegistry::ApplyDdl(const Statement& stmt) {
  switch (stmt.kind) {
    case StatementKind::kCreateTable: {
      TableInfo info;
      info.columns = stmt.create_table.schema.columns;
      info.foreign_keys = stmt.create_table.schema.foreign_keys;
      int pk = stmt.create_table.schema.PrimaryKeyIndex();
      if (pk >= 0) info.ri_column = info.columns[pk].name;
      tables_[stmt.create_table.schema.name] = std::move(info);
      break;
    }
    case StatementKind::kAlterTable: {
      auto it = tables_.find(stmt.alter_table.table);
      if (it == tables_.end()) break;
      if (stmt.alter_table.action == sql::AlterAction::kAddColumn) {
        it->second.columns.push_back(stmt.alter_table.add_column);
      } else {
        auto& cols = it->second.columns;
        cols.erase(std::remove_if(cols.begin(), cols.end(),
                                  [&](const sql::ColumnDef& c) {
                                    return c.name ==
                                           stmt.alter_table.drop_column;
                                  }),
                   cols.end());
      }
      break;
    }
    case StatementKind::kDropTable:
      tables_.erase(stmt.drop_name);
      break;
    case StatementKind::kCreateView:
      views_[stmt.create_view.name] = stmt.create_view.select;
      break;
    case StatementKind::kDropView:
      views_.erase(stmt.drop_name);
      break;
    case StatementKind::kCreateProcedure:
      procedures_[stmt.create_procedure.name] = stmt.create_procedure;
      break;
    case StatementKind::kDropProcedure:
      procedures_.erase(stmt.drop_name);
      break;
    case StatementKind::kCreateTrigger:
      triggers_[stmt.create_trigger.name] = stmt.create_trigger;
      break;
    case StatementKind::kDropTrigger:
      triggers_.erase(stmt.drop_name);
      break;
    default:
      break;
  }
}

const SchemaRegistry::TableInfo* SchemaRegistry::FindTable(
    const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

SchemaRegistry::TableInfo* SchemaRegistry::FindTableMutable(
    const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

const sql::CreateProcedureStatement* SchemaRegistry::FindProcedure(
    const std::string& name) const {
  auto it = procedures_.find(name);
  return it == procedures_.end() ? nullptr : &it->second;
}

const std::shared_ptr<SelectStatement>* SchemaRegistry::FindView(
    const std::string& name) const {
  auto it = views_.find(name);
  return it == views_.end() ? nullptr : &it->second;
}

std::vector<const sql::CreateTriggerStatement*> SchemaRegistry::TriggersOn(
    const std::string& table, sql::TriggerEvent event) const {
  std::vector<const sql::CreateTriggerStatement*> out;
  for (const auto& [name, trig] : triggers_) {
    (void)name;
    if (trig.table == table && trig.event == event) out.push_back(&trig);
  }
  return out;
}

const sql::CreateTriggerStatement* SchemaRegistry::FindTrigger(
    const std::string& name) const {
  auto it = triggers_.find(name);
  return it == triggers_.end() ? nullptr : &it->second;
}

std::vector<std::string> SchemaRegistry::TablesReferencing(
    const std::string& table) const {
  std::vector<std::string> out;
  for (const auto& [name, info] : tables_) {
    for (const auto& fk : info.foreign_keys) {
      if (fk.ref_table == table) {
        out.push_back(name);
        break;
      }
    }
  }
  return out;
}

void SchemaRegistry::SetRiColumn(const std::string& table,
                                 const std::string& column) {
  auto it = tables_.find(table);
  if (it != tables_.end()) it->second.ri_column = column;
}

void SchemaRegistry::AddRiAlias(const std::string& table,
                                const std::string& alias_column) {
  auto it = tables_.find(table);
  if (it != tables_.end()) it->second.ri_aliases.push_back(alias_column);
}

std::vector<std::string> SchemaRegistry::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, info] : tables_) {
    (void)info;
    out.push_back(name);
  }
  return out;
}

std::vector<std::string> SchemaRegistry::ProcedureNames() const {
  std::vector<std::string> out;
  out.reserve(procedures_.size());
  for (const auto& [name, proc] : procedures_) {
    (void)proc;
    out.push_back(name);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Union-find over merged RI values (§4.3 "Merging RI values")
// ---------------------------------------------------------------------------

std::string QueryAnalyzer::Find(const std::string& key) {
  auto it = merge_parent_.find(key);
  if (it == merge_parent_.end() || it->second == key) return key;
  std::string root = Find(it->second);
  it->second = root;
  return root;
}

void QueryAnalyzer::Union(const std::string& a, const std::string& b) {
  std::string ra = Find(a), rb = Find(b);
  if (ra != rb) {
    merge_parent_[ra] = rb;
    ++merge_generation_;
  }
}

// ---------------------------------------------------------------------------
// Per-statement analysis
// ---------------------------------------------------------------------------

/// Walks one statement (recursively through procedures, transactions and
/// triggers) and fills a QueryRW following the Appendix A policy tables.
class AnalyzerImpl {
 public:
  AnalyzerImpl(QueryAnalyzer* owner, const sql::NondetRecord* nondet,
               const std::map<std::string, std::vector<Value>>* captured =
                   nullptr)
      : owner_(owner),
        reg_(&owner->registry_),
        nondet_(nondet),
        captured_(captured) {}

  Status Analyze(const Statement& stmt, QueryRW* out) {
    out_ = out;
    switch (stmt.kind) {
      case StatementKind::kCreateTable:
      case StatementKind::kAlterTable:
      case StatementKind::kDropTable:
      case StatementKind::kTruncateTable:
      case StatementKind::kCreateView:
      case StatementKind::kDropView:
      case StatementKind::kCreateIndex:
      case StatementKind::kCreateProcedure:
      case StatementKind::kDropProcedure:
      case StatementKind::kCreateTrigger:
      case StatementKind::kDropTrigger:
        out->is_ddl = true;
        out->overwrites = true;  // catalog state is replaced, not created
        break;
      default:
        break;
    }
    return AnalyzeStmt(stmt, /*depth=*/0);
  }

 private:
  using VarMap = std::map<std::string, std::optional<Value>>;

  static constexpr int kMaxDepth = 16;

  // --- helpers -----------------------------------------------------------

  void ReadSchema(const std::string& name) {
    out_->rc.Add("_S." + name);
    out_->rr.AddWildcard("_S." + name);
    if (reg_->FindTable(name)) out_->read_tables.insert(name);
  }
  void WriteSchema(const std::string& name) {
    out_->wc.Add("_S." + name);
    out_->wr.AddWildcard("_S." + name);
    out_->write_tables.insert(name);
  }

  /// Constant-folds `e` given bound procedure variables. nullopt = unknown.
  std::optional<Value> ConstEval(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kLiteral:
        return e.literal;
      case ExprKind::kVarRef: {
        auto it = vars_.find(e.var_name);
        if (it != vars_.end()) return it->second;
        return std::nullopt;
      }
      case ExprKind::kColumnRef: {
        // Inside procedures a bare name may be a variable.
        if (e.table.empty()) {
          auto it = vars_.find(e.column);
          if (it != vars_.end()) return it->second;
        }
        return std::nullopt;
      }
      case ExprKind::kBinary: {
        auto l = ConstEval(*e.children[0]);
        auto r = ConstEval(*e.children[1]);
        if (!l || !r) return std::nullopt;
        const Value& a = *l;
        const Value& b = *r;
        if (a.is_null() || b.is_null()) return Value::Null();
        switch (e.binary_op) {
          case sql::BinaryOp::kAdd:
            if (a.type() == sql::DataType::kInt &&
                b.type() == sql::DataType::kInt) {
              return Value::Int(a.AsInt() + b.AsInt());
            }
            return Value::Double(a.AsDouble() + b.AsDouble());
          case sql::BinaryOp::kSub:
            if (a.type() == sql::DataType::kInt &&
                b.type() == sql::DataType::kInt) {
              return Value::Int(a.AsInt() - b.AsInt());
            }
            return Value::Double(a.AsDouble() - b.AsDouble());
          case sql::BinaryOp::kMul:
            if (a.type() == sql::DataType::kInt &&
                b.type() == sql::DataType::kInt) {
              return Value::Int(a.AsInt() * b.AsInt());
            }
            return Value::Double(a.AsDouble() * b.AsDouble());
          default:
            return std::nullopt;
        }
      }
      case ExprKind::kFuncCall:
        if (e.func_name == "CONCAT") {
          std::string s;
          for (const auto& child : e.children) {
            auto v = ConstEval(*child);
            if (!v) return std::nullopt;
            s += v->ToDisplayString();
          }
          return Value::String(std::move(s));
        }
        return std::nullopt;
      default:
        return std::nullopt;
    }
  }

  /// Like ConstEval but returns *all* values an expression can take: a
  /// procedure variable whose value came from SELECT ... INTO is symbolic
  /// statically, but the values it actually held were captured when the
  /// transaction ran — the §4.3 "concretized at the moment of retroactive
  /// operation" mechanism. Loops may bind several values; all are returned
  /// (a sound over-approximation). nullopt = genuinely unknown.
  std::optional<std::vector<Value>> MultiEval(const Expr& e) {
    if (auto single = ConstEval(e)) return std::vector<Value>{*single};
    std::string var;
    if (e.kind == ExprKind::kVarRef) {
      var = e.var_name;
    } else if (e.kind == ExprKind::kColumnRef && e.table.empty()) {
      var = e.column;
    }
    if (!var.empty() && captured_) {
      auto it = captured_->find(var);
      if (it != captured_->end() && !it->second.empty()) return it->second;
    }
    return std::nullopt;
  }

  /// Resolves the owning table of a column reference among `sources`
  /// (alias -> table name); empty = unresolved.
  std::string ResolveColumnTable(
      const Expr& col, const std::vector<std::pair<std::string, std::string>>&
                           sources) {
    if (!col.table.empty()) {
      for (const auto& [alias, table] : sources) {
        if (EqualsIgnoreCase(alias, col.table)) return table;
      }
      return col.table;  // qualified by real table name
    }
    for (const auto& [alias, table] : sources) {
      (void)alias;
      const auto* info = reg_->FindTable(table);
      if (!info) continue;
      for (const auto& c : info->columns) {
        if (EqualsIgnoreCase(c.name, col.column)) return table;
      }
    }
    return "";
  }

  /// Adds the columns referenced by `e` to `rc` (qualified through
  /// `sources`); unresolvable names inside procedures are variables, so
  /// they contribute nothing.
  void CollectColumns(
      const Expr& e,
      const std::vector<std::pair<std::string, std::string>>& sources) {
    if (e.kind == ExprKind::kColumnRef) {
      if (e.table.empty() && vars_.count(e.column)) return;  // variable
      std::string table = ResolveColumnTable(e, sources);
      if (!table.empty()) {
        out_->rc.Add(table + "." + e.column);
      } else {
        // Overestimate: attribute to every source (correctness over
        // precision, §4.2 "Branch Conditions").
        for (const auto& [alias, t] : sources) {
          (void)alias;
          out_->rc.Add(t + "." + e.column);
        }
      }
      return;
    }
    if (e.kind == ExprKind::kSubquery && e.subquery) {
      AnalyzeSelectRead(*e.subquery);
      return;
    }
    for (const auto& child : e.children) CollectColumns(*child, sources);
  }

  /// RI-key extraction from a WHERE clause for table `table` (§4.3).
  /// Returns nullopt for "any rows" (wildcard).
  std::optional<std::set<std::string>> ExtractRiValues(
      const Expr* where, const std::string& table,
      const SchemaRegistry::TableInfo& info) {
    if (!where) return std::nullopt;
    switch (where->kind) {
      case ExprKind::kBinary: {
        if (where->binary_op == sql::BinaryOp::kAnd) {
          auto l = ExtractRiValues(where->children[0].get(), table, info);
          auto r = ExtractRiValues(where->children[1].get(), table, info);
          // AND narrows: prefer the resolved side; both resolved ->
          // intersection.
          if (l && r) {
            std::set<std::string> isect;
            for (const auto& v : *l) {
              if (r->count(v)) isect.insert(v);
            }
            return isect;
          }
          if (l) return l;
          return r;
        }
        if (where->binary_op == sql::BinaryOp::kOr) {
          auto l = ExtractRiValues(where->children[0].get(), table, info);
          auto r = ExtractRiValues(where->children[1].get(), table, info);
          if (l && r) {
            l->insert(r->begin(), r->end());
            return l;
          }
          return std::nullopt;  // an unresolved disjunct can match any row
        }
        if (where->binary_op == sql::BinaryOp::kEq) {
          const Expr* col = where->children[0].get();
          const Expr* val = where->children[1].get();
          if (col->kind != ExprKind::kColumnRef) std::swap(col, val);
          if (col->kind != ExprKind::kColumnRef) return std::nullopt;
          if (!col->table.empty() && !EqualsIgnoreCase(col->table, table)) {
            return std::nullopt;
          }
          auto vs = MultiEval(*val);
          if (!vs) return std::nullopt;
          if (EqualsIgnoreCase(col->column, info.ri_column)) {
            std::set<std::string> out;
            for (const auto& v : *vs) out.insert(v.Encode());
            return out;
          }
          for (const auto& alias : info.ri_aliases) {
            if (!EqualsIgnoreCase(col->column, alias)) continue;
            std::set<std::string> out;
            for (const auto& v : *vs) {
              auto it = owner_->alias_to_ri_.find(table + "." + alias + "|" +
                                                  v.Encode());
              if (it == owner_->alias_to_ri_.end()) {
                return std::nullopt;  // unseen alias value: any row (sound)
              }
              out.insert(it->second.begin(), it->second.end());
            }
            return out;
          }
        }
        return std::nullopt;
      }
      case ExprKind::kInList: {
        const Expr* col = where->children[0].get();
        if (col->kind != ExprKind::kColumnRef ||
            !EqualsIgnoreCase(col->column, info.ri_column)) {
          return std::nullopt;
        }
        std::set<std::string> vals;
        for (size_t i = 1; i < where->children.size(); ++i) {
          auto v = ConstEval(*where->children[i]);
          if (!v) return std::nullopt;
          vals.insert(v->Encode());
        }
        return vals;
      }
      default:
        return std::nullopt;
    }
  }

  /// Symbolic predicate region of `where` over `table`'s RI column
  /// (DESIGN.md §15), using the dynamic fold hooks: MultiEval resolves
  /// literals, procedure variables and captured parameters; alias values
  /// translate through the learned alias→RI map (unseen values widen).
  ValueRegion ExtractRegion(const Expr* where, const std::string& table,
                            const SchemaRegistry::TableInfo& info) {
    PredicateEvalFn eval = [this](const Expr& e) { return MultiEval(e); };
    PredicateAliasFn alias_lookup =
        [this, &table](const std::string& alias_col,
                       const Value& v) -> std::optional<std::set<std::string>> {
      auto it = owner_->alias_to_ri_.find(table + "." + alias_col + "|" +
                                          v.Encode());
      if (it == owner_->alias_to_ri_.end()) return std::nullopt;
      return it->second;
    };
    return ExtractPredicateRegion(where, table, info.ri_column,
                                  info.ri_aliases, eval, alias_lookup);
  }

  void AddRiReads(const std::string& table, const Expr* where) {
    const auto* info = reg_->FindTable(table);
    ReadSchema(table);
    out_->read_tables.insert(table);
    if (!info || info->ri_column.empty()) {
      // No RI column: row-wise analysis degrades to "any row".
      out_->rr.AddWildcard(table + ".__row");
      return;
    }
    std::string key = table + "." + info->ri_column;
    out_->rr.AddConstrained(key, ExtractRiValues(where, table, *info),
                            ExtractRegion(where, table, *info));
  }

  void AddRiWrites(const std::string& table, const Expr* where) {
    const auto* info = reg_->FindTable(table);
    out_->write_tables.insert(table);
    if (!info || info->ri_column.empty()) {
      out_->wr.AddWildcard(table + ".__row");
      return;
    }
    std::string key = table + "." + info->ri_column;
    out_->wr.AddConstrained(key, ExtractRiValues(where, table, *info),
                            ExtractRegion(where, table, *info));
  }

  /// Read-side analysis of a SELECT: columns, schema entries, RI keys, FK
  /// externals, nested subqueries.
  void AnalyzeSelectRead(const SelectStatement& sel) {
    std::vector<std::pair<std::string, std::string>> sources;
    auto add_source = [&](const std::string& name, const std::string& alias) {
      if (const auto* view = reg_->FindView(name)) {
        out_->rc.Add("_S." + name);
        out_->rr.AddWildcard("_S." + name);
        AnalyzeSelectRead(**view);
        return;
      }
      sources.emplace_back(alias.empty() ? name : alias, name);
    };
    if (!sel.from_table.empty()) add_source(sel.from_table, sel.from_alias);
    for (const auto& join : sel.joins) add_source(join.table, join.alias);

    for (const auto& [alias, table] : sources) {
      (void)alias;
      AddRiReads(table, sel.where.get());
      const auto* info = reg_->FindTable(table);
      if (info) {
        // FOREIGN KEY external columns (Appendix A SELECT policy).
        for (const auto& fk : info->foreign_keys) {
          out_->rc.Add(fk.ref_table + "." + fk.ref_column);
          out_->read_tables.insert(fk.ref_table);
          out_->rr.AddWildcard("_S." + fk.ref_table);
        }
      }
    }
    for (const auto& item : sel.items) {
      if (item.expr->kind == ExprKind::kStar) {
        for (const auto& [alias, table] : sources) {
          (void)alias;
          const auto* info = reg_->FindTable(table);
          if (!info) continue;
          for (const auto& c : info->columns) out_->rc.Add(table + "." + c.name);
        }
        continue;
      }
      CollectColumns(*item.expr, sources);
    }
    for (const auto& join : sel.joins) {
      if (join.on) CollectColumns(*join.on, sources);
    }
    if (sel.where) CollectColumns(*sel.where, sources);
    for (const auto& g : sel.group_by) CollectColumns(*g, sources);
    if (sel.having) CollectColumns(*sel.having, sources);
    for (const auto& o : sel.order_by) CollectColumns(*o.expr, sources);
  }

  /// The write target may be an updatable view: resolve to the base table,
  /// reading the view schema (§4.2 "Updatable VIEWs").
  std::string ResolveWriteTarget(const std::string& name) {
    if (const auto* view = reg_->FindView(name)) {
      ReadSchema(name);
      out_->wc.Add("_S." + name);
      if (!(*view)->from_table.empty()) return (*view)->from_table;
    }
    return name;
  }

  void MergeTriggerBodies(const std::string& table, sql::TriggerEvent event,
                          int depth) {
    for (const auto* trig : reg_->TriggersOn(table, event)) {
      ReadSchema(trig->name);
      VarMap saved = vars_;
      const auto* info = reg_->FindTable(table);
      if (info) {
        for (const auto& c : info->columns) {
          vars_["NEW." + c.name] = std::nullopt;
          vars_["OLD." + c.name] = std::nullopt;
        }
      }
      for (const auto& stmt : trig->body) {
        (void)AnalyzeStmt(*stmt, depth + 1);
      }
      vars_ = std::move(saved);
    }
  }

  // --- statement dispatch --------------------------------------------------

  Status AnalyzeStmt(const Statement& stmt, int depth) {
    if (depth > kMaxDepth) return Status::Internal("analysis depth limit");
    switch (stmt.kind) {
      case StatementKind::kCreateTable: {
        const auto& schema = stmt.create_table.schema;
        ReadSchema(schema.name);
        WriteSchema(schema.name);
        for (const auto& fk : schema.foreign_keys) {
          ReadSchema(fk.ref_table);
        }
        reg_->ApplyDdl(stmt);  // registry evolves with the log
        owner_->ReapplyRiConfig(schema.name);
        return Status::OK();
      }
      case StatementKind::kAlterTable:
        ReadSchema(stmt.alter_table.table);
        WriteSchema(stmt.alter_table.table);
        reg_->ApplyDdl(stmt);
        return Status::OK();
      case StatementKind::kDropTable:
      case StatementKind::kTruncateTable: {
        const std::string& name = stmt.kind == StatementKind::kDropTable
                                      ? stmt.drop_name
                                      : stmt.truncate_table;
        ReadSchema(name);
        WriteSchema(name);
        reg_->ApplyDdl(stmt);
        return Status::OK();
      }
      case StatementKind::kCreateView: {
        ReadSchema(stmt.create_view.name);
        WriteSchema(stmt.create_view.name);
        // _S of every source table/view.
        if (!stmt.create_view.select->from_table.empty()) {
          ReadSchema(stmt.create_view.select->from_table);
        }
        for (const auto& join : stmt.create_view.select->joins) {
          ReadSchema(join.table);
        }
        reg_->ApplyDdl(stmt);
        return Status::OK();
      }
      case StatementKind::kDropView:
      case StatementKind::kDropProcedure:
        ReadSchema(stmt.drop_name);
        WriteSchema(stmt.drop_name);
        reg_->ApplyDdl(stmt);
        return Status::OK();
      case StatementKind::kDropTrigger:
        ReadSchema(stmt.drop_name);
        WriteSchema(stmt.drop_name);
        // Dropping a trigger changes how later DML on its base table
        // behaves — write the table's schema cell so that DML orders
        // after the drop (mirror of the kCreateTrigger case below).
        if (const auto* trg = reg_->FindTrigger(stmt.drop_name)) {
          WriteSchema(trg->table);
        }
        reg_->ApplyDdl(stmt);
        return Status::OK();
      case StatementKind::kCreateIndex:
        ReadSchema(stmt.create_index.table);
        WriteSchema(stmt.create_index.table);
        return Status::OK();
      case StatementKind::kCreateProcedure:
        ReadSchema(stmt.create_procedure.name);
        WriteSchema(stmt.create_procedure.name);
        reg_->ApplyDdl(stmt);
        return Status::OK();
      case StatementKind::kCreateTrigger:
        ReadSchema(stmt.create_trigger.name);
        WriteSchema(stmt.create_trigger.name);
        // WRITE — not just read — the base table's schema cell: every DML
        // on the table fires (or no longer fires) this trigger, so later
        // DML must depend on the CREATE TRIGGER. A read here let the
        // planner prune the trigger when only its base table's DML was
        // dependent, and retroactively removing the CREATE TRIGGER left
        // the trigger's side effects in place (oracle divergence;
        // DESIGN.md §9).
        WriteSchema(stmt.create_trigger.table);
        reg_->ApplyDdl(stmt);
        return Status::OK();

      case StatementKind::kSelect:
        AnalyzeSelectRead(*stmt.select);
        return Status::OK();

      case StatementKind::kInsert: {
        std::string table = ResolveWriteTarget(stmt.insert.table);
        const auto* info = reg_->FindTable(table);
        ReadSchema(table);
        out_->read_tables.insert(table);
        out_->write_tables.insert(table);
        if (stmt.insert.select) AnalyzeSelectRead(*stmt.insert.select);
        if (!info) return Status::OK();

        // Wc: all columns of the target (Appendix A INSERT policy).
        for (const auto& c : info->columns) {
          out_->wc.Add(table + "." + c.name);
          // AUTO_INCREMENT primary key: implicit read of the key column.
          if (c.auto_increment) out_->rc.Add(table + "." + c.name);
        }
        for (const auto& fk : info->foreign_keys) {
          out_->rc.Add(fk.ref_table + "." + fk.ref_column);
          out_->read_tables.insert(fk.ref_table);
        }

        // Row-wise: the RI value of each inserted row; learn alias maps.
        size_t auto_cursor = 0;
        if (info->ri_column.empty()) {
          out_->wr.AddWildcard(table + ".__row");
          for (const auto& row : stmt.insert.rows) {
            for (const auto& e : row) CollectColumns(*e, {});
          }
        } else {
          std::string key = table + "." + info->ri_column;
          int ri_idx = -1;
          std::vector<std::string> cols = stmt.insert.columns;
          if (cols.empty()) {
            for (const auto& c : info->columns) cols.push_back(c.name);
          }
          for (size_t i = 0; i < cols.size(); ++i) {
            if (EqualsIgnoreCase(cols[i], info->ri_column)) ri_idx = int(i);
          }
          bool ri_auto_inc = false;
          for (const auto& c : info->columns) {
            if (EqualsIgnoreCase(c.name, info->ri_column)) {
              ri_auto_inc = c.auto_increment;
            }
          }
          for (const auto& row : stmt.insert.rows) {
            std::optional<std::vector<Value>> ri_vals;
            if (ri_idx >= 0 && ri_idx < int(row.size())) {
              ri_vals = MultiEval(*row[ri_idx]);
              if (ri_vals && ri_vals->size() == 1 &&
                  (*ri_vals)[0].is_null()) {
                ri_vals = std::nullopt;
              }
            }
            if (!ri_vals && ri_auto_inc && nondet_ &&
                auto_cursor < nondet_->auto_inc_ids.size()) {
              ri_vals = std::vector<Value>{
                  Value::Int(nondet_->auto_inc_ids[auto_cursor++])};
            }
            if (ri_vals && ri_vals->size() == 1) {
              const Value& ri_val = (*ri_vals)[0];
              std::string enc = ri_val.Encode();
              out_->wr.AddValue(key, enc);
              // Alias learning: alias value -> RI value (§4.3).
              for (const auto& alias : info->ri_aliases) {
                int a_idx = -1;
                for (size_t i = 0; i < cols.size(); ++i) {
                  if (EqualsIgnoreCase(cols[i], alias)) a_idx = int(i);
                }
                if (a_idx < 0 || a_idx >= int(row.size())) continue;
                auto av = ConstEval(*row[a_idx]);
                if (av) {
                  owner_->alias_to_ri_[table + "." + alias + "|" +
                                       av->Encode()]
                      .insert(enc);
                }
              }
            } else if (ri_vals) {
              // Several captured values (loop): all are possible rows.
              for (const auto& v : *ri_vals) {
                out_->wr.AddValue(key, v.Encode());
              }
            } else {
              out_->wr.AddWildcard(key);
            }
            for (const auto& e : row) CollectColumns(*e, {});
          }
          if (stmt.insert.select) out_->wr.AddWildcard(key);
        }
        MergeTriggerBodies(table, sql::TriggerEvent::kInsert, depth);
        return Status::OK();
      }

      case StatementKind::kUpdate: {
        std::string table = ResolveWriteTarget(stmt.update.table);
        const auto* info = reg_->FindTable(table);
        ReadSchema(table);
        out_->overwrites = true;  // mutates pre-existing rows
        std::vector<std::pair<std::string, std::string>> sources = {
            {table, table}};
        for (const auto& [col, e] : stmt.update.assignments) {
          out_->wc.Add(table + "." + col);
          CollectColumns(*e, sources);
          // External FK columns referencing the updated column (Appendix A).
          if (info) {
            for (const auto& ref : reg_->TablesReferencing(table)) {
              const auto* ref_info = reg_->FindTable(ref);
              if (!ref_info) continue;
              for (const auto& fk : ref_info->foreign_keys) {
                if (fk.ref_table == table &&
                    EqualsIgnoreCase(fk.ref_column, col)) {
                  out_->wc.Add(ref + "." + fk.column);
                  out_->write_tables.insert(ref);
                  const auto* ri = reg_->FindTable(ref);
                  if (ri && !ri->ri_column.empty()) {
                    out_->wr.AddWildcard(ref + "." + ri->ri_column);
                  }
                }
              }
            }
          }
        }
        if (stmt.update.where) CollectColumns(*stmt.update.where, sources);
        AddRiReads(table, stmt.update.where.get());
        AddRiWrites(table, stmt.update.where.get());
        out_->read_tables.insert(table);

        // Merged RI values: UPDATE SET ri = v2 WHERE ri = v1 (§4.3).
        if (info && !info->ri_column.empty()) {
          std::string key = table + "." + info->ri_column;
          for (const auto& [col, e] : stmt.update.assignments) {
            if (!EqualsIgnoreCase(col, info->ri_column)) continue;
            auto new_v = ConstEval(*e);
            auto old_vals =
                ExtractRiValues(stmt.update.where.get(), table, *info);
            if (new_v) {
              out_->wr.AddValue(key, new_v->Encode());
              if (old_vals) {
                for (const auto& old_enc : *old_vals) {
                  owner_->Union(key + "|" + old_enc,
                                key + "|" + new_v->Encode());
                }
              }
            } else {
              out_->wr.AddWildcard(key);
            }
          }
        }
        MergeTriggerBodies(table, sql::TriggerEvent::kUpdate, depth);
        return Status::OK();
      }

      case StatementKind::kDelete: {
        std::string table = ResolveWriteTarget(stmt.del.table);
        const auto* info = reg_->FindTable(table);
        ReadSchema(table);
        out_->overwrites = true;  // destroys pre-existing rows
        if (info) {
          for (const auto& c : info->columns) {
            out_->wc.Add(table + "." + c.name);
          }
        }
        std::vector<std::pair<std::string, std::string>> sources = {
            {table, table}};
        if (stmt.del.where) CollectColumns(*stmt.del.where, sources);
        AddRiReads(table, stmt.del.where.get());
        AddRiWrites(table, stmt.del.where.get());
        // Rows of tables referencing this table via FK may be affected.
        for (const auto& ref : reg_->TablesReferencing(table)) {
          const auto* ref_info = reg_->FindTable(ref);
          if (!ref_info) continue;
          for (const auto& fk : ref_info->foreign_keys) {
            if (fk.ref_table == table) out_->wc.Add(ref + "." + fk.column);
          }
          out_->wr.AddWildcard(ref_info->ri_column.empty()
                                   ? ref + ".__row"
                                   : ref + "." + ref_info->ri_column);
          out_->write_tables.insert(ref);
        }
        MergeTriggerBodies(table, sql::TriggerEvent::kDelete, depth);
        return Status::OK();
      }

      case StatementKind::kCall: {
        const auto* proc = reg_->FindProcedure(stmt.call.procedure);
        ReadSchema(stmt.call.procedure);
        if (!proc) return Status::OK();
        // Bind argument values for row-wise concretization (§4.3: "the RI
        // value of each executed query is either a constant or a symbolic
        // expression found during DSE", concretized from the logged args).
        VarMap saved = vars_;
        for (size_t i = 0;
             i < proc->params.size() && i < stmt.call.args.size(); ++i) {
          vars_[proc->params[i].name] = ConstEval(*stmt.call.args[i]);
        }
        Status st = AnalyzeBody(proc->body, depth + 1);
        vars_ = std::move(saved);
        return st;
      }

      case StatementKind::kTransaction:
        return AnalyzeBody(stmt.transaction.statements, depth + 1);

      case StatementKind::kDeclareVar: {
        std::optional<Value> v;
        if (stmt.declare_var.init) v = ConstEval(*stmt.declare_var.init);
        vars_[stmt.declare_var.name] = v;
        return Status::OK();
      }
      case StatementKind::kSetVar:
        vars_[stmt.set_var.name] = ConstEval(*stmt.set_var.value);
        return Status::OK();

      case StatementKind::kIf: {
        // Merge both directions of every branch (§4.2 Branch Conditions):
        // overestimation preserves correctness.
        for (const auto& branch : stmt.if_stmt.branches) {
          if (branch.condition) CollectColumns(*branch.condition, {});
          VarMap saved = vars_;
          UV_RETURN_NOT_OK(AnalyzeBody(branch.body, depth + 1));
          vars_ = std::move(saved);
        }
        return Status::OK();
      }
      case StatementKind::kWhile: {
        CollectColumns(*stmt.while_stmt.condition, {});
        // Variables mutated in the loop are unknown across iterations.
        MarkAssignedUnknown(stmt.while_stmt.body);
        return AnalyzeBody(stmt.while_stmt.body, depth + 1);
      }
      case StatementKind::kLeave:
      case StatementKind::kSignal:
        return Status::OK();
    }
    return Status::OK();
  }

  Status AnalyzeBody(const std::vector<sql::StatementPtr>& body, int depth) {
    for (const auto& stmt : body) {
      UV_RETURN_NOT_OK(AnalyzeStmt(*stmt, depth));
      // SELECT ... INTO binds variables whose values are unknown statically.
      if (stmt->kind == StatementKind::kSelect) {
        for (const auto& var : stmt->select->into_vars) {
          vars_[var] = std::nullopt;
        }
      }
    }
    return Status::OK();
  }

  void MarkAssignedUnknown(const std::vector<sql::StatementPtr>& body) {
    for (const auto& stmt : body) {
      switch (stmt->kind) {
        case StatementKind::kSetVar:
          vars_[stmt->set_var.name] = std::nullopt;
          break;
        case StatementKind::kDeclareVar:
          vars_[stmt->declare_var.name] = std::nullopt;
          break;
        case StatementKind::kSelect:
          for (const auto& var : stmt->select->into_vars) {
            vars_[var] = std::nullopt;
          }
          break;
        case StatementKind::kIf:
          for (const auto& branch : stmt->if_stmt.branches) {
            MarkAssignedUnknown(branch.body);
          }
          break;
        case StatementKind::kWhile:
          MarkAssignedUnknown(stmt->while_stmt.body);
          break;
        default:
          break;
      }
    }
  }

  QueryAnalyzer* owner_;
  SchemaRegistry* reg_;
  const sql::NondetRecord* nondet_;
  const std::map<std::string, std::vector<Value>>* captured_;
  QueryRW* out_ = nullptr;
  VarMap vars_;
};

// ---------------------------------------------------------------------------
// QueryAnalyzer
// ---------------------------------------------------------------------------

void QueryAnalyzer::ConfigureRi(const std::string& table,
                                const std::string& ri_column,
                                std::vector<std::string> aliases) {
  ri_overrides_[table] = RiConfig{ri_column, std::move(aliases)};
  ReapplyRiConfig(table);
}

void QueryAnalyzer::ReapplyRiConfig(const std::string& table) {
  auto it = ri_overrides_.find(table);
  if (it == ri_overrides_.end()) return;
  registry_.SetRiColumn(table, it->second.ri_column);
  auto* info = registry_.FindTableMutable(table);
  if (info) info->ri_aliases = it->second.aliases;
}

void QueryAnalyzer::CanonicalizeRowSets(QueryRW* rw) {
  if (merge_parent_.empty()) return;
  // A union-find key is "<Table.col>|<value_enc>"; the first '|' splits
  // them (the enc itself ends with the Encode terminator '|').
  auto enc_of = [](const std::string& key) {
    size_t bar = key.find('|');
    return bar == std::string::npos ? key : key.substr(bar + 1);
  };
  auto canon = [&](RowSet* rs) {
    for (auto& [col, vals] : rs->cols) {
      std::set<std::string> fixed;
      for (const auto& v : vals.values) {
        fixed.insert(enc_of(Find(col + "|" + v)));
      }
      vals.values = std::move(fixed);
      if (vals.region.top) continue;
      // Close the typed region under RI merge classes: a merged value
      // refers to the same physical row under every one of its names, so
      // whenever any member of a class falls inside the region, every
      // member (and the class representative the values above were
      // rewritten to) must be in it too. Closed regions make canonical
      // overlap equivalent to raw overlap, keeping RegionIntersects
      // pruning sound across UPDATE-of-RI renames.
      const std::string prefix = col + "|";
      std::map<std::string, std::vector<std::string>> classes;
      for (const auto& [key, parent] : merge_parent_) {
        (void)parent;
        if (key.compare(0, prefix.size(), prefix) != 0) continue;
        classes[Find(key)].push_back(enc_of(key));
      }
      for (auto& [root, members] : classes) {
        members.push_back(enc_of(root));
        bool touches = false;
        for (const auto& m : members) {
          if (vals.region.ContainsEncoded(m)) {
            touches = true;
            break;
          }
        }
        if (!touches) continue;
        for (const auto& m : members) vals.region.points.insert(m);
      }
    }
  };
  canon(&rw->rr);
  canon(&rw->wr);
}

Result<std::vector<QueryRW>> QueryAnalyzer::AnalyzeLog(
    const sql::QueryLog& log) {
  obs::TraceSpan span("analysis.log", {{"entries", log.size()}});
  std::vector<QueryRW> out;
  out.reserve(log.size());
  // Pass 1: extract sets in commit order, evolving the registry and
  // learning alias maps / merged RI values along the way.
  for (const auto& entry : log.entries()) {
    UV_ASSIGN_OR_RETURN(QueryRW rw, AnalyzeEntry(entry));
    out.push_back(std::move(rw));
  }
  // Pass 2: canonicalize RI values under the final union-find so merged
  // values compare equal everywhere (§4.3 "Merging RI values").
  for (auto& rw : out) CanonicalizeRowSets(&rw);
  return out;
}

Result<QueryRW> QueryAnalyzer::AnalyzeEntry(const sql::LogEntry& entry) {
  static obs::Counter* const entries =
      obs::Registry::Global().counter("uv.analysis.entries");
  static obs::Histogram* const latency =
      obs::Registry::Global().histogram("uv.analysis.entry_latency_us");
  entries->Inc();
  obs::ScopedLatency timer(latency);
  QueryRW rw;
  // The observer's Before hook sees the registry exactly as this entry's
  // analysis will (pre-mutation); the After hook gets the raw sets before
  // any canonicalization rewrites RI values under the union-find.
  if (observer_) observer_->BeforeStatement(*entry.stmt);
  AnalyzerImpl impl(this, &entry.nondet, &entry.captured_vars);
  UV_RETURN_NOT_OK(impl.Analyze(*entry.stmt, &rw));
  if (observer_) observer_->AfterStatement(*entry.stmt, rw);
  return rw;
}

Result<QueryRW> QueryAnalyzer::AnalyzeStatement(
    const sql::Statement& stmt, const sql::NondetRecord* nondet) {
  QueryRW rw;
  if (observer_) observer_->BeforeStatement(stmt);
  AnalyzerImpl impl(this, nondet);
  UV_RETURN_NOT_OK(impl.Analyze(stmt, &rw));
  if (observer_) observer_->AfterStatement(stmt, rw);
  CanonicalizeRowSets(&rw);
  return rw;
}

}  // namespace ultraverse::core
