#include "core/replay.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <optional>
#include <set>

#include "sqldb/parser.h"
#include <thread>

#include "fault/failpoint.h"
#include "obs/explain.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sqldb/wal/wal.h"
#include "util/backoff.h"
#include "util/mpmc_queue.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"
#include "util/virtual_clock.h"

namespace ultraverse::core {

ReplayErrorClass ClassifyReplayError(const Status& st) {
  switch (st.code()) {
    // Transient infrastructure faults: the statement's effects rolled back
    // atomically, so re-running it is safe and may well succeed.
    case StatusCode::kUnavailable:
      return ReplayErrorClass::kRetryable;
    // Invariant breakage, durable-log corruption, cooperative stop, or an
    // optimistic-concurrency conflict at publish time: abort the replay.
    case StatusCode::kInternal:
    case StatusCode::kDataLoss:
    case StatusCode::kCancelled:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kAborted:
      return ReplayErrorClass::kFatal;
    // Everything else is a SQL-semantic failure the alternate universe can
    // legitimately produce (constraint trip, retroactively dropped table,
    // SIGNAL, interpreter budget): skip the statement, keep replaying.
    default:
      return ReplayErrorClass::kBenignSkip;
  }
}

/// Original-timeline table hashes: for each table, the (commit index,
/// digest) sequence logged by the Hash-jumper logger (§4.5).
class HashTimeline {
 public:
  explicit HashTimeline(const sql::QueryLog& log) {
    for (const auto& entry : log.entries()) {
      Add(entry);
    }
  }

  /// Snapshot-mode build: iterating the live deque would race concurrent
  /// appends, so the pinned entry pointers captured under the commit lock
  /// are the only safe history view.
  explicit HashTimeline(const std::vector<const sql::LogEntry*>& pinned) {
    for (const sql::LogEntry* entry : pinned) Add(*entry);
  }

  /// The logged digest of `table` at the last write at-or-before `index`;
  /// nullptr when no logged write precedes it.
  const Digest256* HashAt(const std::string& table, uint64_t index) const {
    auto it = per_table_.find(table);
    if (it == per_table_.end()) return nullptr;
    const auto& seq = it->second;
    auto pos = std::upper_bound(
        seq.begin(), seq.end(), index,
        [](uint64_t idx, const auto& p) { return idx < p.first; });
    if (pos == seq.begin()) return nullptr;
    return &std::prev(pos)->second;
  }

 private:
  void Add(const sql::LogEntry& entry) {
    for (const auto& [table, digest] : entry.table_hashes) {
      per_table_[table].emplace_back(entry.index, digest);
    }
  }

  std::map<std::string, std::vector<std::pair<uint64_t, Digest256>>>
      per_table_;
};

const HashTimeline* RetroactiveEngine::EnsureTimeline() {
  // Keyed by the history *epoch*, never by log size: a what-if publish or
  // WAL recovery rewrites entries in place without changing the length,
  // and a size-keyed cache would keep serving the dead timeline's digests
  // (the Hash-jumper would then "converge" against a universe that no
  // longer exists). Snapshot executions key on the epoch their history
  // was pinned at.
  const uint64_t epoch = options_.snapshot_epoch ? *options_.snapshot_epoch
                                                 : log_->epoch();
  if (timeline_ && timeline_epoch_ == epoch) return timeline_.get();
  if (options_.timeline_cache) {
    std::lock_guard<std::mutex> g(options_.timeline_cache->mu);
    if (options_.timeline_cache->timeline &&
        options_.timeline_cache->epoch == epoch) {
      timeline_ = options_.timeline_cache->timeline;
      timeline_epoch_ = epoch;
      return timeline_.get();
    }
  }
  timeline_ = options_.pinned_entries
                  ? std::make_shared<const HashTimeline>(
                        *options_.pinned_entries)
                  : std::make_shared<const HashTimeline>(*log_);
  timeline_epoch_ = epoch;
  if (options_.timeline_cache) {
    std::lock_guard<std::mutex> g(options_.timeline_cache->mu);
    options_.timeline_cache->epoch = epoch;
    options_.timeline_cache->timeline = timeline_;
  }
  return timeline_.get();
}

const sql::LogEntry& RetroactiveEngine::EntryAt(uint64_t index) const {
  if (options_.pinned_entries) return *(*options_.pinned_entries)[index - 1];
  return log_->at(index);
}

uint64_t RetroactiveEngine::HistoryEnd() const {
  return options_.horizon_override ? options_.horizon_override
                                   : log_->last_index();
}

RetroactiveEngine::~RetroactiveEngine() = default;

RetroactiveEngine::RetroactiveEngine(sql::Database* db,
                                     const sql::QueryLog* log, Options options)
    : db_(db), log_(log), options_(options) {
  entry_executor_ = [](sql::Database* target, const sql::LogEntry& entry,
                       uint64_t commit_index) -> Status {
    sql::ExecContext ctx;
    ctx.StartReplaying(&entry.nondet);
    Result<sql::ExecResult> r = target->Execute(*entry.stmt, commit_index, &ctx);
    // SIGNAL traps from transpiled procedures surface to the caller;
    // other errors abort the replay.
    return r.ok() ? Status::OK() : r.status();
  };
}

Status RetroactiveEngine::ExecuteSlot(sql::Database* db, const Slot& slot,
                                      const RetroOp& op,
                                      uint64_t commit_index, bool apply_rules) {
  Status st;
  if (apply_rules && !slot.is_new && !parsed_rules_.empty()) {
    const sql::LogEntry& entry = EntryAt(slot.log_index);
    if (!entry.app_txn.empty()) {
      for (const auto& [fn, cond] : parsed_rules_) {
        if (!fn.empty() && fn != entry.app_txn) continue;
        sql::ExecContext ctx;
        Result<sql::ExecResult> when = db->Execute(*cond, commit_index, &ctx);
        if (when.ok() && !when->rows.empty() && !when->rows[0].empty() &&
            !when->rows[0][0].is_null() && when->rows[0][0].AsBool()) {
          suppressed_.fetch_add(1, std::memory_order_relaxed);
          return Status::OK();  // the simulated human decided not to act
        }
      }
    }
  }
  auto attempt = [&]() -> Status {
    UV_FAILPOINT("replay.slot.pre_exec");
    if (slot.is_new) {
      sql::ExecContext ctx;
      sql::NondetRecord fresh;
      if (options_.new_stmt_nondet) {
        // Recovery path: reproduce the recorded nondeterminism of the
        // original what-if so the re-derived universe is bit-identical.
        ctx.StartReplaying(options_.new_stmt_nondet);
      } else {
        ctx.StartRecording(&fresh);  // a new query generates fresh values
      }
      Result<sql::ExecResult> r = db->Execute(*op.new_stmt, commit_index, &ctx);
      if (r.ok() && !options_.new_stmt_nondet) {
        captured_new_nondet_ = std::move(fresh);
      }
      return r.ok() ? Status::OK() : r.status();
    }
    return entry_executor_(db, EntryAt(slot.log_index), commit_index);
  };

  UV_RETURN_NOT_OK(CheckCancel(options_.cancel, "replay.slot"));
  if (options_.retry.enabled()) {
    static obs::Counter* const retries =
        obs::Registry::Global().counter("uv.retry.attempts");
    st = RetryWithBackoff(
        options_.retry, options_.cancel,
        [&]() -> Status {
          Status s = attempt();
          return s;
        },
        [&](int, const Status&) { retries->Inc(); });
  } else {
    st = attempt();
  }

  switch (st.ok() ? ReplayErrorClass::kBenignSkip : ClassifyReplayError(st)) {
    case ReplayErrorClass::kBenignSkip:
      // A replayed query may legitimately fail in the alternate universe
      // (e.g. it inserts into a table whose CREATE was retroactively
      // removed, or a NOT NULL constraint now trips). The statement's own
      // effects rolled back atomically; the replay continues without it.
      return Status::OK();
    case ReplayErrorClass::kRetryable:
      // Retry budget exhausted (or retries disabled): a transient fault
      // that never cleared is a real failure, not a skippable statement.
      return st;
    case ReplayErrorClass::kFatal:
      return st;
  }
  return st;
}

namespace {

/// Cumulative layer counters sampled at Execute() start and end: the deltas
/// are what ran between the two samples. With one what-if at a time they
/// attribute exactly to this analysis; under concurrent analyze-only
/// executions (DESIGN.md §14) the process-wide counters interleave, so the
/// per-report deltas are an aggregate approximation — totals across all
/// concurrent reports remain exact.
struct LayerCounters {
  static constexpr size_t kN = 9;
  obs::Counter* c[kN];

  static const LayerCounters& Get() {
    static LayerCounters lc = [] {
      auto& reg = obs::Registry::Global();
      return LayerCounters{{reg.counter("uv.staging.tables_staged"),
                            reg.counter("uv.staging.fault_in"),
                            reg.counter("uv.vm.plan_cache.hit"),
                            reg.counter("uv.vm.plan_cache.miss"),
                            reg.counter("uv.vm.access.index_path"),
                            reg.counter("uv.vm.access.scan_path"),
                            reg.counter("uv.vm.access.advisory_built"),
                            reg.counter("uv.retry.attempts"),
                            reg.counter("uv.fault.injected")}};
    }();
    return lc;
  }

  std::array<uint64_t, kN> Sample() const {
    std::array<uint64_t, kN> out;
    for (size_t i = 0; i < kN; ++i) out[i] = c[i]->Value();
    return out;
  }
};

void ApplyLayerDeltas(const std::array<uint64_t, LayerCounters::kN>& base,
                      obs::WhatIfReport* report) {
  auto now = LayerCounters::Get().Sample();
  report->tables_staged = now[0] - base[0];
  report->pages_faulted = now[1] - base[1];
  report->plan_cache_hits = now[2] - base[2];
  report->plan_cache_misses = now[3] - base[3];
  report->vm_index_path = now[4] - base[4];
  report->vm_scan_path = now[5] - base[5];
  report->vm_advisory_built = now[6] - base[6];
  report->retries = now[7] - base[7];
  report->faults_injected = now[8] - base[8];
}

obs::TxnVerdict VerdictFor(PlanExclusion e) {
  switch (e) {
    case PlanExclusion::kMember:
      return obs::TxnVerdict::kReplayed;
    case PlanExclusion::kTargetSlot:
      return obs::TxnVerdict::kRetroTarget;
    case PlanExclusion::kReadOnly:
      return obs::TxnVerdict::kPrunedReadOnly;
    case PlanExclusion::kStaticDisjoint:
      return obs::TxnVerdict::kPrunedStaticFootprint;
    case PlanExclusion::kPredicateDisjoint:
      return obs::TxnVerdict::kPrunedPredicateDisjoint;
    case PlanExclusion::kColumnDisjoint:
      return obs::TxnVerdict::kPrunedColumnDisjoint;
    case PlanExclusion::kClusterExcluded:
      return obs::TxnVerdict::kClusterExcluded;
  }
  return obs::TxnVerdict::kReplayed;
}

const char* EvidenceFor(PlanExclusion e) {
  switch (e) {
    case PlanExclusion::kMember:
      return "dependency closure member";
    case PlanExclusion::kTargetSlot:
      return "retroactive target slot";
    case PlanExclusion::kReadOnly:
      return "empty write set";
    case PlanExclusion::kStaticDisjoint:
      return "static table footprint disjoint from accumulated members";
    case PlanExclusion::kPredicateDisjoint:
      return "row predicate regions provably disjoint from accumulated "
             "members";
    case PlanExclusion::kColumnDisjoint:
      return "no column-granularity dependency rule fired";
    case PlanExclusion::kClusterExcluded:
      return "column cluster member excluded by row-closure intersection";
  }
  return "";
}

/// Per-verdict counters, labeled Prometheus-style; the exporter escapes the
/// label values (metrics.cc).
void TallyVerdictMetrics(const obs::WhatIfReport& report) {
  static const std::array<obs::Counter*, obs::kNumTxnVerdicts> counters = [] {
    std::array<obs::Counter*, obs::kNumTxnVerdicts> c{};
    for (int i = 0; i < obs::kNumTxnVerdicts; ++i) {
      c[size_t(i)] = obs::Registry::Global().counter(
          std::string("uv.explain.verdict{reason=\"") +
          obs::TxnVerdictName(obs::TxnVerdict(i)) + "\"}");
    }
    return c;
  }();
  for (int i = 0; i < obs::kNumTxnVerdicts; ++i) {
    if (report.verdict_counts[size_t(i)]) {
      counters[size_t(i)]->Add(report.verdict_counts[size_t(i)]);
    }
  }
}

const char* RetroOpName(RetroOp::Kind kind) {
  switch (kind) {
    case RetroOp::Kind::kAdd:
      return "add";
    case RetroOp::Kind::kRemove:
      return "remove";
    case RetroOp::Kind::kChange:
      return "change";
  }
  return "?";
}

}  // namespace

Result<ReplayStats> RetroactiveEngine::ExecuteFullNaive(const RetroOp& op,
                                                        uint64_t horizon) {
  ReplayStats stats;
  stats.history_size = horizon;
  stats.suffix_size = horizon >= op.index ? horizon - op.index + 1 : 0;
  stats.workers = 1;
  stats.schema_rebuild = true;  // the whole universe is rebuilt from the log
  Stopwatch total_watch;
  obs::TraceSpan op_span("replay.full_naive",
                         {{"index", op.index}, {"history", horizon}});
  static obs::Counter* const naive_runs =
      obs::Registry::Global().counter("uv.oracle.naive.runs");
  static obs::Counter* const naive_prefix_entries =
      obs::Registry::Global().counter("uv.oracle.naive.prefix_entries");
  static obs::Counter* const naive_suffix_entries =
      obs::Registry::Global().counter("uv.oracle.naive.suffix_entries");
  static obs::Histogram* const naive_total_us =
      obs::Registry::Global().histogram("uv.oracle.naive.total_us");
  naive_runs->Inc();

  const bool explain_on = options_.explain != obs::ExplainLevel::kOff;
  obs::WhatIfReport& report = stats.report;
  uint64_t flight_token = 0;
  std::array<uint64_t, LayerCounters::kN> layer_base{};
  uint64_t phase_cpu = 0;
  if (explain_on) {
    report.op = RetroOpName(op.kind);
    report.target_index = op.index;
    report.mode = "full-naive";
    report.level = obs::ExplainLevel::kSummary;  // no per-txn vector here
    report.suffix_size = stats.suffix_size;
    layer_base = LayerCounters::Get().Sample();
    phase_cpu = obs::NowCpuMicros();
    flight_token = obs::FlightRecorder::Global().Begin(report);
  }
  auto end_phase = [&](const char* name, uint64_t wall_us) {
    if (!explain_on) return;
    uint64_t cpu = obs::NowCpuMicros();
    report.phases.push_back(obs::PhaseBreakdown{name, wall_us,
                                                cpu - phase_cpu});
    phase_cpu = cpu;
    obs::FlightRecorder::Global().Update(flight_token, report,
                                         /*completed=*/false);
  };

  temp_db_ = std::make_unique<sql::Database>();
  temp_db_->set_exec_engine(db_->exec_engine());
  size_t executed = 0;

  // Settled prefix: recorded nondeterminism, no §6 rules.
  Stopwatch rollback_watch;
  {
    obs::TraceSpan prefix_span("naive.prefix", {{"entries", op.index - 1}});
    for (uint64_t idx = 1; idx < op.index; ++idx) {
      UV_RETURN_NOT_OK(ExecuteSlot(temp_db_.get(), Slot{false, idx}, op, idx,
                                   /*apply_rules=*/false));
    }
  }
  naive_prefix_entries->Add(op.index - 1);
  stats.rollback_seconds = rollback_watch.ElapsedSeconds();
  end_phase("stage", rollback_watch.ElapsedMicros());

  // High-watermark AUTO_INCREMENT policy + logical-clock alignment: the
  // selective path stages a CoW clone of the *live* database, so its
  // counters and clock sit at the end of the original history. Seed the
  // rebuilt universe identically, so a retroactively added INSERT draws
  // the same fresh ids and NOW() values in every replay mode (DESIGN.md §9).
  {
    // Shared lock: live inserts mutate the auto-increment map concurrently.
    std::shared_lock<std::shared_mutex> seed_lock;
    if (options_.db_mutex) {
      seed_lock = std::shared_lock<std::shared_mutex>(*options_.db_mutex);
    }
    temp_db_->SeedAutoIncrementFloor(db_->auto_increment_state());
    temp_db_->SetLogicalTime(db_->logical_time());
  }

  // Rewritten suffix: the retroactive op slots in at τ, the removed/changed
  // original drops out, everything else replays in order.
  Stopwatch replay_watch;
  const bool replay_target = op.kind != RetroOp::Kind::kRemove;
  uint64_t commit = op.index;
  {
    obs::TraceSpan suffix_span("naive.suffix",
                               {{"entries", stats.suffix_size}});
    if (replay_target) {
      UV_RETURN_NOT_OK(
          ExecuteSlot(temp_db_.get(), Slot{true, op.index}, op, commit++));
      ++executed;
    }
    for (uint64_t idx = op.index; idx <= horizon; ++idx) {
      if (idx == op.index && op.kind != RetroOp::Kind::kAdd) continue;
      UV_RETURN_NOT_OK(
          ExecuteSlot(temp_db_.get(), Slot{false, idx}, op, commit++));
      ++executed;
    }
  }
  naive_suffix_entries->Add(executed);
  stats.replay_seconds = replay_watch.ElapsedSeconds();
  end_phase("replay", replay_watch.ElapsedMicros());
  stats.replayed = executed;
  stats.planned_replay = executed;
  stats.suppressed = suppressed_.load(std::memory_order_relaxed);
  stats.virtual_rtt_micros = options_.rtt_micros_per_query * executed;
  stats.temp_db_bytes = temp_db_->ApproxOwnedBytes();

  // Two-phase publish applies to the reference path too: recovery replays
  // committed markers through exactly this full-naive path. Analyze-only
  // executions stop here: the rebuilt universe in last_temp_db() IS the
  // result, and the live database stays untouched.
  UV_RETURN_NOT_OK(CheckCancel(options_.cancel, "replay.publish"));
  Stopwatch publish_watch;
  if (options_.publish) {
    // Adopt everything: tables present on either side (a table the
    // rewritten history never creates must disappear from the live
    // database) plus the object catalog. Exclusive from the epoch conflict
    // check through the swap, so no commit slips in between.
    obs::TraceSpan adopt_span("naive.adopt");
    std::unique_lock<std::shared_mutex> publish_lock;
    if (options_.db_mutex) {
      publish_lock = std::unique_lock<std::shared_mutex>(*options_.db_mutex);
    }
    if (options_.snapshot_epoch && log_->epoch() != *options_.snapshot_epoch) {
      static obs::Counter* const conflicts =
          obs::Registry::Global().counter("uv.whatif.publish.conflict");
      conflicts->Inc();
      return Status::Aborted(
          "history advanced during what-if replay; re-run against a fresh "
          "snapshot");
    }
    UV_RETURN_NOT_OK(PublishCommitMarker(op));
    std::set<std::string> names;
    for (auto& n : db_->TableNames()) names.insert(n);
    for (auto& n : temp_db_->TableNames()) names.insert(n);
    std::vector<std::string> all(names.begin(), names.end());
    stats.mutated_tables = all.size();
    UV_RETURN_NOT_OK(db_->AdoptTables(*temp_db_, all));
    db_->AdoptCatalog(*temp_db_);
    // Same contract as the selective path: the log must describe the
    // history that is now live before the lock drops. Recovery's marker
    // replay rides this too — it rewrites the partially rebuilt log so
    // later WAL entries and markers land on the same history they did
    // originally.
    RewritePublishedLog(op);
    if (options_.on_published) options_.on_published(op);
  } else {
    stats.mutated_tables = temp_db_->TableNames().size();
  }
  stats.total_seconds = total_watch.ElapsedSeconds();
  naive_total_us->Record(total_watch.ElapsedMicros());
  stats.obs = obs::Registry::Global().Collect();
  if (explain_on) {
    report.replayed = stats.replayed;
    report.skipped = 0;
    // Full-naive replays everything: every suffix slot is a kReplayed
    // verdict except the vacated target slot of a remove/change.
    report.verdict_counts[size_t(obs::TxnVerdict::kReplayed)] =
        executed > (replay_target ? 1u : 0u)
            ? executed - (replay_target ? 1u : 0u)
            : 0;
    if (op.kind != RetroOp::Kind::kAdd && stats.suffix_size > 0) {
      report.Tally(obs::TxnVerdict::kRetroTarget);
    }
    end_phase("publish", publish_watch.ElapsedMicros());
    report.staged_bytes = stats.temp_db_bytes;
    ApplyLayerDeltas(layer_base, &report);
    TallyVerdictMetrics(report);
    obs::FlightRecorder::Global().Update(flight_token, report,
                                         /*completed=*/true);
  }
  return stats;
}

Result<ReplayStats> RetroactiveEngine::Execute(
    const RetroOp& op, const std::vector<QueryRW>& analysis,
    QueryAnalyzer* analyzer) {
  // History extent this execution sees: the pinned snapshot horizon when
  // the facade froze one, the live log otherwise. Everything below reads
  // history through EntryAt()/history_end only — never through the live
  // deque, which concurrent writers keep appending to.
  const uint64_t history_end = HistoryEnd();
  if (op.index == 0 || op.index > history_end + 1) {
    return Status::InvalidArgument("retroactive index out of range");
  }
  if (op.kind != RetroOp::Kind::kAdd && op.index > history_end) {
    return Status::InvalidArgument("no such query to remove/change");
  }
  // The replay horizon is the analyzed prefix: queries committed after the
  // analysis snapshot belong to the next catch-up phase (§4.4).
  const uint64_t horizon = std::min<uint64_t>(analysis.size(), history_end);
  if (op.index > horizon + 1) {
    return Status::InvalidArgument("analysis does not cover the target");
  }

  UV_RETURN_NOT_OK(CheckCancel(options_.cancel, "replay.start"));
  parsed_rules_.clear();
  suppressed_.store(0, std::memory_order_relaxed);
  captured_new_nondet_ = sql::NondetRecord{};
  for (const auto& rule : options_.rules) {
    UV_ASSIGN_OR_RETURN(sql::StatementPtr cond,
                        sql::Parser::ParseStatement(rule.when_sql));
    parsed_rules_.emplace_back(rule.function, std::move(cond));
  }

  if (options_.mode == ReplayMode::kFullNaive) {
    // Ground-truth reference path: no dependency analysis, no staging
    // tricks, no Hash-jumper — just the rewritten history, start to end.
    return ExecuteFullNaive(op, horizon);
  }

  ReplayStats stats;
  stats.history_size = horizon;
  stats.suffix_size = horizon >= op.index ? horizon - op.index + 1 : 0;
  stats.workers = options_.parallel ? options_.num_threads : 1;
  Stopwatch total_watch;

  // --- Decision-provenance report (DESIGN.md §13) --------------------------
  // Assembled alongside the analysis; the flight recorder holds an
  // in-flight copy from the first phase on, so a crash anywhere below
  // leaves this very report as the newest ring entry.
  const bool explain_on = options_.explain != obs::ExplainLevel::kOff;
  const bool explain_full = options_.explain == obs::ExplainLevel::kFull;
  obs::WhatIfReport& report = stats.report;
  uint64_t flight_token = 0;
  std::array<uint64_t, LayerCounters::kN> layer_base{};
  uint64_t phase_cpu = 0;
  if (explain_on) {
    report.op = RetroOpName(op.kind);
    report.target_index = op.index;
    report.level = options_.explain;
    report.suffix_size = stats.suffix_size;
    layer_base = LayerCounters::Get().Sample();
    phase_cpu = obs::NowCpuMicros();
    flight_token = obs::FlightRecorder::Global().Begin(report);
  }
  auto end_phase = [&](const char* name, uint64_t wall_us) {
    if (!explain_on) return;
    uint64_t cpu = obs::NowCpuMicros();
    report.phases.push_back(obs::PhaseBreakdown{name, wall_us,
                                                cpu - phase_cpu});
    phase_cpu = cpu;
    obs::FlightRecorder::Global().Update(flight_token, report,
                                         /*completed=*/false);
  };
  obs::TraceSpan op_span(
      "replay.execute",
      {{"op", op.kind == RetroOp::Kind::kAdd      ? "add"
              : op.kind == RetroOp::Kind::kRemove ? "remove"
                                                  : "change"},
       {"index", op.index},
       {"history", horizon}});
  // One span per pipeline phase; emplace() closes the previous phase and
  // opens the next, so the trace shows analysis → rollback → replay → adopt
  // nested under replay.execute.
  std::optional<obs::TraceSpan> phase_span;
  phase_span.emplace("replay.analysis");

  // --- 1. Dependency analysis / replay plan ------------------------------
  Stopwatch analysis_watch;
  QueryRW target_rw;
  bool replay_target = op.kind != RetroOp::Kind::kRemove;
  if (op.kind == RetroOp::Kind::kRemove) {
    target_rw = analysis[op.index - 1];
  } else {
    UV_ASSIGN_OR_RETURN(target_rw,
                        analyzer->AnalyzeStatement(*op.new_stmt, nullptr));
    if (op.kind == RetroOp::Kind::kChange) {
      // Union old + new effects: dependents of either must replay.
      target_rw.rc.Merge(analysis[op.index - 1].rc);
      target_rw.wc.Merge(analysis[op.index - 1].wc);
      target_rw.rr.Merge(analysis[op.index - 1].rr);
      target_rw.wr.Merge(analysis[op.index - 1].wr);
      const auto& old_rw = analysis[op.index - 1];
      target_rw.read_tables.insert(old_rw.read_tables.begin(),
                                   old_rw.read_tables.end());
      target_rw.write_tables.insert(old_rw.write_tables.begin(),
                                    old_rw.write_tables.end());
      target_rw.is_ddl = target_rw.is_ddl || old_rw.is_ddl;
      target_rw.overwrites = target_rw.overwrites || old_rw.overwrites;
    }
  }
  DependencyOptions deps = options_.deps;
  deps.record_exclusions = explain_on;
  // Ground-truth gate (--check-explain): seed selected suffix indices into
  // the closure as unconditional members. Seeding — not merging into the
  // finished plan — keeps the closure invariant: later writers of a forced
  // member's cells join through the ordinary rules, so query-selective
  // rollback of the forced commit cannot orphan a later write it feeds. A
  // soundly pruned transaction re-run this way reproduces the same final
  // state.
  std::set<uint64_t> forced_members;
  for (uint64_t idx : options_.forced_replay) {
    if (idx < op.index || idx > horizon) continue;
    if (idx == op.index && op.kind != RetroOp::Kind::kAdd) continue;
    forced_members.insert(idx);
  }
  if (!forced_members.empty()) deps.forced_members = &forced_members;
  ReplayPlan plan = ComputeReplayPlan(
      analysis, op.index, target_rw,
      /*target_occupies_slot=*/op.kind != RetroOp::Kind::kAdd, deps);
  // kChange replaces the old query: it must not replay verbatim.
  if (op.kind == RetroOp::Kind::kChange || op.kind == RetroOp::Kind::kRemove) {
    plan.replay_indices.erase(std::remove(plan.replay_indices.begin(),
                                          plan.replay_indices.end(), op.index),
                              plan.replay_indices.end());
  }
  // With dependency analysis off (B/T modes) every suffix query replays,
  // including ones that only read: the baseline cannot know better. Keep
  // plan as computed (write-only queries) — the paper's baselines also
  // skip pure reads during replay since they cannot change state.
  stats.planned_replay = plan.replay_indices.size() + (replay_target ? 1 : 0);
  stats.replayed = stats.planned_replay;
  stats.skipped = stats.suffix_size > plan.replay_indices.size()
                      ? stats.suffix_size - plan.replay_indices.size()
                      : 0;
  stats.mutated_tables = plan.mutated_tables.size();
  stats.consulted_tables = plan.consulted_tables.size();
  stats.schema_rebuild = plan.needs_schema_rebuild;
  stats.analysis_seconds = analysis_watch.ElapsedSeconds();
  // Catalog mutations in the plan (a DDL target or member) are invisible
  // to per-table row digests: removing a CREATE INDEX leaves every row
  // multiset identical, so the first probe "hits" and adoption — which is
  // what would drop the index from the live catalog — gets skipped. A
  // hash hit proves row convergence only; disable jumping whenever the
  // replay changes catalog state. (Differential-oracle find, DESIGN.md
  // §9.) Checked before force_rebuild / journal-horizon widening below,
  // which set needs_schema_rebuild without any catalog change. Analyze-only
  // executions also force it off: a jump proves the replayed state
  // reconverged with the live timeline and leaves the temporary database
  // frozen mid-history — correct when adoption is then skipped, but an
  // analyze-only caller reads the temporary database AS the result, so it
  // must always be driven to the horizon.
  const bool hash_jumper_on =
      options_.hash_jumper && !plan.needs_schema_rebuild && options_.publish;
  {
    static obs::Histogram* const h_analysis =
        obs::Registry::Global().histogram("uv.replay.phase.analysis_us");
    static obs::Counter* const planned =
        obs::Registry::Global().counter("uv.replay.slots.planned");
    static obs::Counter* const skipped =
        obs::Registry::Global().counter("uv.replay.slots.skipped");
    h_analysis->Record(analysis_watch.ElapsedMicros());
    planned->Add(stats.planned_replay);
    skipped->Add(stats.skipped);
  }
  if (explain_on) {
    for (PlanExclusion e : plan.exclusions) report.Tally(VerdictFor(e));
    if (explain_full) {
      report.txns.reserve(plan.exclusions.size() + 1);
      if (replay_target) {
        obs::TxnExplain te;
        te.index = op.index;
        te.is_new = true;
        te.evidence = "retroactive statement executes at its insertion slot";
        te.read_tables.assign(target_rw.read_tables.begin(),
                              target_rw.read_tables.end());
        te.write_tables.assign(target_rw.write_tables.begin(),
                               target_rw.write_tables.end());
        report.txns.push_back(std::move(te));
      }
      for (size_t j = 0; j < plan.exclusions.size(); ++j) {
        uint64_t idx = plan.exclusions_base + j;
        const QueryRW& rw = analysis[idx - 1];
        obs::TxnExplain te;
        te.index = idx;
        te.verdict = VerdictFor(plan.exclusions[j]);
        te.evidence = forced_members.count(idx)
                          ? "forced replay (ground-truth gate)"
                          : EvidenceFor(plan.exclusions[j]);
        if (!forced_members.count(idx) &&
            j < plan.exclusion_detail.size() &&
            !plan.exclusion_detail[j].empty()) {
          // Predicate-tier verdicts carry the disjoint region pair.
          te.evidence += ": " + plan.exclusion_detail[j];
        }
        te.read_tables.assign(rw.read_tables.begin(), rw.read_tables.end());
        te.write_tables.assign(rw.write_tables.begin(),
                               rw.write_tables.end());
        te.cluster_id = plan.cluster_ids[j];
        report.txns.push_back(std::move(te));
      }
    }
  }
  end_phase("plan", analysis_watch.ElapsedMicros());

  // --- 2. Stage the temporary database ------------------------------------
  phase_span.emplace("replay.rollback");
  UV_RETURN_NOT_OK(CheckCancel(options_.cancel, "replay.stage"));
  UV_FAILPOINT("replay.stage.pre");
  Stopwatch rollback_watch;
  std::vector<std::string> affected(plan.mutated_tables.begin(),
                                    plan.mutated_tables.end());
  affected.insert(affected.end(), plan.consulted_tables.begin(),
                  plan.consulted_tables.end());
  if (options_.force_rebuild && !plan.needs_schema_rebuild) {
    plan.needs_schema_rebuild = true;
    stats.schema_rebuild = true;
  }
  // Journal horizon: if a checkpoint trimmed the undo entries of a commit
  // we must roll back (§5 rollback option (iii)), the journal cannot stage
  // the rollback; rebuild from the log instead.
  if (!plan.needs_schema_rebuild) {
    uint64_t trimmed = 0;
    {
      // Shared lock: checkpoints advance trimmed_before() under the
      // exclusive side of the same mutex.
      std::shared_lock<std::shared_mutex> rl;
      if (options_.db_mutex) {
        rl = std::shared_lock<std::shared_mutex>(*options_.db_mutex);
      }
      for (const auto& t : plan.mutated_tables) {
        const sql::Table* table = db_->FindTable(t);
        if (table) trimmed = std::max(trimmed, table->trimmed_before());
      }
    }
    bool undo_before_horizon =
        op.kind != RetroOp::Kind::kAdd && op.index < trimmed;
    for (uint64_t idx : plan.replay_indices) {
      if (idx < trimmed) undo_before_horizon = true;
    }
    if (undo_before_horizon) {
      plan.needs_schema_rebuild = true;
      stats.schema_rebuild = true;
    }
  }
  if (plan.needs_schema_rebuild) {
    // The rebuilt temporary database starts empty, so *every* suffix write
    // must replay — a pruned plan would lose the cell-independent writes
    // that journal rollback preserves. The rebuild path therefore widens
    // the plan to the full write-suffix (it is the slow path regardless).
    std::set<uint64_t> widened(plan.replay_indices.begin(),
                               plan.replay_indices.end());
    for (uint64_t idx = op.index; idx <= horizon; ++idx) {
      if (idx == op.index && op.kind != RetroOp::Kind::kAdd) continue;
      const QueryRW& rw = analysis[idx - 1];
      if (rw.wc.empty()) continue;
      widened.insert(idx);
      plan.mutated_tables.insert(rw.write_tables.begin(),
                                 rw.write_tables.end());
    }
    plan.replay_indices.assign(widened.begin(), widened.end());
    stats.replayed = plan.replay_indices.size() + (replay_target ? 1 : 0);
    stats.planned_replay = stats.replayed;
    stats.mutated_tables = plan.mutated_tables.size();
    // Rebuild-widened members replay for staging reasons, not because a
    // dependency rule fired — the report says so explicitly.
    if (explain_on && !plan.exclusions.empty()) {
      for (uint64_t idx : plan.replay_indices) {
        size_t j = size_t(idx - plan.exclusions_base);
        if (idx < plan.exclusions_base || j >= plan.exclusions.size()) {
          continue;
        }
        if (plan.exclusions[j] == PlanExclusion::kMember) continue;
        --report.verdict_counts[size_t(VerdictFor(plan.exclusions[j]))];
        report.Tally(obs::TxnVerdict::kReplayed);
        plan.exclusions[j] = PlanExclusion::kMember;
        if (explain_full) {
          obs::TxnExplain& te = report.txns[(replay_target ? 1 : 0) + j];
          te.verdict = obs::TxnVerdict::kReplayed;
          te.rebuild_widened = true;
          te.evidence =
              "schema rebuild widens the plan to the full write-suffix";
        }
      }
    }
  }
  if (plan.needs_schema_rebuild) {
    // Schema changes cannot be undone from table journals: rebuild the
    // prefix universe from scratch (checkpoint-less slow path).
    temp_db_ = std::make_unique<sql::Database>();
    temp_db_->set_exec_engine(db_->exec_engine());
    for (uint64_t idx = 1; idx < op.index; ++idx) {
      Slot slot{false, idx};
      UV_RETURN_NOT_OK(ExecuteSlot(temp_db_.get(), slot, op, idx,
                                   /*apply_rules=*/false));
    }
    // Match the CoW staging path, whose clone carries the live database's
    // end-of-history AUTO_INCREMENT watermarks and logical clock: fresh ids
    // for retroactively added statements allocate above everything the
    // original history handed out, in every replay mode (DESIGN.md §9).
    {
      std::shared_lock<std::shared_mutex> seed_lock;
      if (options_.db_mutex) {
        seed_lock = std::shared_lock<std::shared_mutex>(*options_.db_mutex);
      }
      temp_db_->SeedAutoIncrementFloor(db_->auto_increment_state());
      temp_db_->SetLogicalTime(db_->logical_time());
    }
  } else {
    // Selective CoW staging (§4.4): stage only the tables the replay will
    // write or consult (plus tables the human-decision rules read), as
    // O(1) copy-on-write clones. Anything a replayed query unexpectedly
    // touches beyond that faults in lazily through the read fallback.
    std::set<std::string> staged(affected.begin(), affected.end());
    for (const auto& [fn, cond] : parsed_rules_) {
      (void)fn;
      if (auto rw = analyzer->AnalyzeStatement(*cond, nullptr); rw.ok()) {
        staged.insert(rw->read_tables.begin(), rw->read_tables.end());
      }
    }
    std::vector<std::string> staged_list(staged.begin(), staged.end());
    if (options_.db_mutex) {
      // Shared: concurrent analyses stage simultaneously; only committing
      // writers (and the adoption swap) hold the exclusive side.
      std::shared_lock<std::shared_mutex> g(*options_.db_mutex);
      temp_db_ = db_->CloneTables(staged_list);
    } else {
      temp_db_ = db_->CloneTables(staged_list);
    }
    temp_db_->SetReadFallback(db_, options_.db_mutex);
    // Query-selective rollback (Appendix E): undo exactly the replayed
    // commits (plus the removed/changed target). Cell-independent commits
    // of the same tables keep their effects. On CoW clones this pays only
    // for the journal suffix and the row pages it actually restores.
    std::set<uint64_t> undo_commits(plan.replay_indices.begin(),
                                    plan.replay_indices.end());
    if (op.kind != RetroOp::Kind::kAdd) undo_commits.insert(op.index);
    std::vector<std::string> rollback_tables(plan.mutated_tables.begin(),
                                             plan.mutated_tables.end());
    temp_db_->RollbackCommitsInTables(undo_commits, rollback_tables);
  }
  stats.rollback_seconds = rollback_watch.ElapsedSeconds();
  UV_FAILPOINT("replay.stage.post");
  {
    static obs::Histogram* const h_rollback =
        obs::Registry::Global().histogram("uv.replay.phase.rollback_us");
    h_rollback->Record(rollback_watch.ElapsedMicros());
  }
  end_phase("stage", rollback_watch.ElapsedMicros());

  // Hash-jumper timeline: only consulted (and only built) when the
  // Hash-jumper is on; cached across Execute() calls keyed by the log size.
  const HashTimeline* timeline =
      hash_jumper_on ? EnsureTimeline() : nullptr;

  // --- 3. Replay ----------------------------------------------------------
  phase_span.emplace("replay.replay");
  Stopwatch replay_watch;
  std::vector<Slot> slots;
  if (replay_target) slots.push_back(Slot{true, op.index});
  for (uint64_t idx : plan.replay_indices) slots.push_back(Slot{false, idx});

  stats.critical_path = slots.size();

  // Hash-hit test at original commit index `idx` (§4.5): every mutated
  // table's replayed hash equals its original-timeline hash.
  auto hashes_match_at = [&](uint64_t idx) {
    static obs::Counter* const probes =
        obs::Registry::Global().counter("uv.hashjumper.probes");
    static obs::Counter* const hits =
        obs::Registry::Global().counter("uv.hashjumper.hits");
    static obs::Counter* const misses =
        obs::Registry::Global().counter("uv.hashjumper.misses");
    probes->Inc();
    obs::TraceSpan span("hashjumper.probe", {{"index", idx}});
    bool match = [&] {
      for (const auto& t : plan.mutated_tables) {
        const sql::Table* table = temp_db_->FindTable(t);
        if (!table) return false;
        const Digest256* original = timeline->HashAt(t, idx);
        // No logged digest for this table at-or-before idx means the
        // original timeline's state here is simply unknown — force a miss.
        // (An earlier revision fell back to comparing against the staged,
        // selectively rolled-back τ-1 state; that state already excludes
        // the retroactive target's writes, so the fallback could declare
        // convergence the original timeline never reached — a false hit
        // that silently skipped adoption. The differential oracle caught
        // it; see DESIGN.md §9.)
        if (!original) return false;
        const Digest256& replayed = table->table_hash().value();
        if (!(replayed == *original)) return false;
      }
      return true;
    }();
    (match ? hits : misses)->Inc();
    return match;
  };

  Status replay_status = Status::OK();
  // A kCrash failpoint inside a parallel worker cannot unwind through the
  // thread pool (an uncaught exception on a pool thread would terminate the
  // real process, not the simulated one): the worker stashes it here and
  // Execute() rethrows on the caller's thread, preserving throw-to-top
  // semantics for the crash harness.
  std::optional<fault::CrashException> crashed;
  bool hash_jumped = false;
  bool hash_verified = false;
  uint64_t jump_index = 0;
  std::atomic<size_t> executed_slots{0};

  // §4.5 literal-comparison option: materialize the original timeline's
  // table at `idx` from a cloned journal and compare row multisets.
  auto literal_hit_check = [&](uint64_t idx) {
    static obs::Counter* const verifies =
        obs::Registry::Global().counter("uv.hashjumper.literal_verifies");
    verifies->Inc();
    obs::TraceSpan span("hashjumper.literal_verify", {{"index", idx}});
    for (const auto& t : plan.mutated_tables) {
      const sql::Table* replayed = temp_db_->FindTable(t);
      if (!replayed) return false;
      // CoW clone of the live table (O(1) instead of a per-probe deep
      // copy); the rollback below materializes only the pages it touches.
      // Shared lock across lookup + clone: committing writers hold the
      // exclusive side while mutating.
      std::unique_ptr<sql::Table> original;
      if (options_.db_mutex) {
        std::shared_lock<std::shared_mutex> g(*options_.db_mutex);
        const sql::Table* live = db_->FindTable(t);
        if (!live) return false;
        original = live->Clone();
      } else {
        const sql::Table* live = db_->FindTable(t);
        if (!live) return false;
        original = live->Clone();
      }
      original->RollbackToIndex(idx);
      std::multiset<std::string> a, b;
      replayed->Scan([&](sql::RowId, const sql::Row& row) {
        a.insert(sql::EncodeRow(row));
        return true;
      });
      original->Scan([&](sql::RowId, const sql::Row& row) {
        b.insert(sql::EncodeRow(row));
        return true;
      });
      if (a != b) return false;
    }
    return true;
  };

  if (!options_.parallel || slots.size() < 2) {
    uint64_t next_commit = history_end + 1;
    for (size_t i = 0; i < slots.size(); ++i) {
      {
        obs::TraceSpan slot_span(
            "replay.slot",
            {{"log_index", slots[i].is_new ? op.index : slots[i].log_index},
             {"new", slots[i].is_new ? 1 : 0}});
        replay_status =
            ExecuteSlot(temp_db_.get(), slots[i], op, next_commit++);
      }
      executed_slots.fetch_add(1, std::memory_order_relaxed);
      if (!replay_status.ok()) break;
      if (hash_jumper_on && !slots[i].is_new &&
          hashes_match_at(slots[i].log_index)) {
        if (options_.verify_hash_hits) {
          if (!literal_hit_check(slots[i].log_index)) continue;
          hash_verified = true;
        }
        hash_jumped = true;
        jump_index = slots[i].log_index;
        break;
      }
    }
  } else {
    // Parallel replay over the conflict DAG (§4.4).
    std::vector<const QueryRW*> ordered;
    ordered.reserve(slots.size());
    for (const auto& slot : slots) {
      ordered.push_back(slot.is_new ? &target_rw
                                    : &analysis[slot.log_index - 1]);
    }
    std::vector<std::vector<uint32_t>> preds = BuildConflictDag(ordered);
    // Critical path of the conflict DAG: chains of conflicting queries
    // serialize their round trips; independent chains overlap (§4.4).
    {
      std::vector<uint32_t> depth(slots.size(), 1);
      uint32_t longest = slots.empty() ? 0 : 1;
      for (size_t i = 0; i < slots.size(); ++i) {
        for (uint32_t p : preds[i]) {
          depth[i] = std::max(depth[i], depth[p] + 1);
        }
        longest = std::max(longest, depth[i]);
      }
      stats.critical_path = longest;
    }
    std::vector<std::vector<uint32_t>> succs(slots.size());
    std::vector<std::atomic<int>> pending(slots.size());
    for (size_t i = 0; i < slots.size(); ++i) {
      pending[i].store(int(preds[i].size()), std::memory_order_relaxed);
      for (uint32_t p : preds[i]) succs[p].push_back(uint32_t(i));
    }

    // Ready queue: lock-free MPMC ring dequeued by the worker pool.
    static obs::Gauge* const queue_depth =
        obs::Registry::Global().gauge("uv.replay.ready_queue.depth");
    static obs::Counter* const backoff_count =
        obs::Registry::Global().counter("uv.replay.worker.backoffs");
    static obs::Histogram* const busy_us =
        obs::Registry::Global().histogram("uv.replay.worker.busy_us");
    static obs::Histogram* const idle_hist_us =
        obs::Registry::Global().histogram("uv.replay.worker.idle_us");
    MpmcQueue<uint32_t> ready(slots.size() + 16);
    std::atomic<size_t> completed{0};
    std::atomic<bool> stop{false};
    std::mutex status_mu;
    // Per-table locks guard physical row storage; the DAG already orders
    // all logically conflicting queries.
    std::map<std::string, std::unique_ptr<std::mutex>> table_locks;
    {
      std::set<std::string> tables = plan.mutated_tables;
      tables.insert(plan.consulted_tables.begin(),
                    plan.consulted_tables.end());
      for (const auto& t : tables) {
        table_locks.emplace(t, std::make_unique<std::mutex>());
      }
    }
    // Per-slot lock lists, precomputed once: each slot looks up only its
    // own tables (O(k log T)) instead of scanning the whole lock map per
    // executed query. Name order (== map order) keeps acquisition globally
    // consistent, so the all-locks hash probe below cannot deadlock.
    std::vector<std::vector<std::mutex*>> slot_locks(slots.size());
    for (size_t i = 0; i < slots.size(); ++i) {
      const QueryRW& rw = *ordered[i];
      std::vector<std::string> names;
      names.reserve(rw.read_tables.size() + rw.write_tables.size());
      std::set_union(rw.read_tables.begin(), rw.read_tables.end(),
                     rw.write_tables.begin(), rw.write_tables.end(),
                     std::back_inserter(names));
      for (const auto& name : names) {
        auto it = table_locks.find(name);
        if (it != table_locks.end()) slot_locks[i].push_back(it->second.get());
      }
    }
    std::vector<std::atomic<uint8_t>> done_flags(slots.size());
    for (auto& f : done_flags) f.store(0, std::memory_order_relaxed);
    std::atomic<size_t> watermark{0};  // completed prefix length

    uint64_t base_commit = history_end + 1;
    for (size_t i = 0; i < slots.size(); ++i) {
      if (pending[i].load(std::memory_order_relaxed) == 0) {
        if (ready.TryPush(uint32_t(i))) queue_depth->Add(1);
      }
    }

    ThreadPool pool(size_t(options_.num_threads));
    std::atomic<size_t> active_workers{0};
    auto worker = [&]() {
      obs::TraceSpan worker_span("replay.worker");
      // Busy/idle accounting reads the clock twice per executed slot, so it
      // rides the same gate as ScopedLatency; backoff counting is a relaxed
      // add and stays always-on.
      const bool timing = obs::TimingEnabled();
      uint64_t idle_since = timing ? NowMicros() : 0;
      uint32_t pos;
      ExpBackoff backoff;
      try {
      while (!stop.load(std::memory_order_relaxed) &&
             completed.load(std::memory_order_relaxed) < slots.size()) {
        if (!ready.TryPop(&pos)) {
          backoff_count->Inc();
          backoff.Pause();
          continue;
        }
        queue_depth->Add(-1);
        uint64_t busy_start = 0;
        if (timing) {
          busy_start = NowMicros();
          idle_hist_us->Record(busy_start - idle_since);
        }
        backoff.Reset();
        const Slot& slot = slots[pos];

        // Lock the tables this query touches (precomputed, name order).
        Status st;
        {
          obs::TraceSpan slot_span(
              "replay.slot",
              {{"log_index", slot.is_new ? op.index : slot.log_index},
               {"new", slot.is_new ? 1 : 0}});
          const std::vector<std::mutex*>& held = slot_locks[pos];
          for (std::mutex* mu : held) mu->lock();
          try {
            st = ExecuteSlot(temp_db_.get(), slot, op, base_commit + pos);
          } catch (...) {
            // Simulated crash mid-slot: release the table locks so the
            // other workers can observe `stop` and drain instead of
            // blocking forever on a mutex the "dead process" still holds.
            for (auto it = held.rbegin(); it != held.rend(); ++it) {
              (*it)->unlock();
            }
            throw;
          }
          executed_slots.fetch_add(1, std::memory_order_relaxed);
          for (auto it = held.rbegin(); it != held.rend(); ++it) {
            (*it)->unlock();
          }
        }
        if (timing) {
          idle_since = NowMicros();
          busy_us->Record(idle_since - busy_start);
        }

        if (!st.ok()) {
          std::lock_guard<std::mutex> g(status_mu);
          if (replay_status.ok()) replay_status = st;
          stop.store(true, std::memory_order_relaxed);
        }
        done_flags[pos].store(1, std::memory_order_release);
        completed.fetch_add(1, std::memory_order_acq_rel);

        // Advance the completed-prefix watermark and run the Hash-jumper
        // check at each newly completed prefix position.
        if (hash_jumper_on) {
          size_t w = watermark.load(std::memory_order_acquire);
          while (w < slots.size() &&
                 done_flags[w].load(std::memory_order_acquire)) {
            if (watermark.compare_exchange_strong(w, w + 1)) {
              // Only meaningful when the completed prefix is the entire
              // completed set (nothing ran ahead of the watermark).
              if (!slots[w].is_new &&
                  completed.load(std::memory_order_acquire) == w + 1) {
                std::lock_guard<std::mutex> g(status_mu);
                // Block writers while reading table hashes.
                std::vector<std::mutex*> all;
                for (auto& [name, mu] : table_locks) {
                  (void)name;
                  mu->lock();
                  all.push_back(mu.get());
                }
                bool hit = !stop.load(std::memory_order_relaxed) &&
                           hashes_match_at(slots[w].log_index) &&
                           completed.load(std::memory_order_acquire) == w + 1;
                for (auto it = all.rbegin(); it != all.rend(); ++it) {
                  (*it)->unlock();
                }
                if (hit && options_.verify_hash_hits) {
                  hit = literal_hit_check(slots[w].log_index);
                  hash_verified = hit;
                }
                if (hit) {
                  hash_jumped = true;
                  jump_index = slots[w].log_index;
                  stop.store(true, std::memory_order_relaxed);
                }
              }
              w = watermark.load(std::memory_order_acquire);
            }
          }
        }

        for (uint32_t next : succs[pos]) {
          if (pending[next].fetch_sub(1, std::memory_order_acq_rel) == 1) {
            ExpBackoff push_backoff;
            while (!ready.TryPush(next)) push_backoff.Pause();
            queue_depth->Add(1);
          }
        }
      }
      } catch (const fault::CrashException& e) {
        {
          std::lock_guard<std::mutex> g(status_mu);
          if (!crashed) crashed = e;
        }
        stop.store(true, std::memory_order_relaxed);
      }
    };
    for (int i = 0; i < options_.num_threads; ++i) pool.Submit(worker);
    pool.WaitIdle();
    // An early stop (error or hash-jump) leaves entries queued; the gauge
    // reports live depth, so zero it rather than leak the residue.
    queue_depth->Set(0);
    if (crashed) throw *crashed;
  }
  stats.replay_seconds = replay_watch.ElapsedSeconds();
  {
    static obs::Histogram* const h_replay =
        obs::Registry::Global().histogram("uv.replay.phase.replay_us");
    h_replay->Record(replay_watch.ElapsedMicros());
  }
  end_phase("replay", replay_watch.ElapsedMicros());
  if (!replay_status.ok() && explain_on &&
      ClassifyReplayError(replay_status) == ReplayErrorClass::kFatal) {
    // Fatal replay error: leave a post-mortem artifact before unwinding.
    ApplyLayerDeltas(layer_base, &report);
    obs::FlightRecorder::Global().Update(flight_token, report,
                                         /*completed=*/false);
    obs::FlightRecorder::Global().NoteCrash("fatal replay error: " +
                                            replay_status.ToString());
  }
  UV_RETURN_NOT_OK(replay_status);
  // Charge round trips for what actually ran: the Hash-jumper cuts the
  // tail off (§4.5). In parallel mode only the conflict-DAG critical path
  // serializes round trips.
  size_t executed = executed_slots.load(std::memory_order_relaxed);
  stats.replayed = executed + (stats.replayed - slots.size());
  stats.virtual_rtt_micros =
      options_.rtt_micros_per_query *
      (options_.parallel ? std::min(stats.critical_path, executed)
                         : executed);

  stats.suppressed = suppressed_.load(std::memory_order_relaxed);
  {
    static obs::Counter* const c_executed =
        obs::Registry::Global().counter("uv.replay.slots.executed");
    static obs::Counter* const c_suppressed =
        obs::Registry::Global().counter("uv.replay.suppressed");
    c_executed->Add(executed);
    c_suppressed->Add(stats.suppressed);
  }
  stats.hash_jump = hash_jumped;
  stats.hash_jump_index = jump_index;
  stats.hash_hit_verified = hash_verified;
  // Owned bytes: what staging actually allocated. CoW state still shared
  // with the live database counts as pointers, so workloads touching a
  // minority of tables report a correspondingly small footprint.
  stats.temp_db_bytes = temp_db_->ApproxOwnedBytes();

  // --- 4. Two-phase atomic publish (DESIGN.md §11) -------------------------
  // Phase one: durable, fsynced commit marker — the commit point. Phase
  // two: the one-step swap of staged tables into the live database. A
  // crash before the marker recovers to the original timeline; a crash
  // anywhere after it recovers to the fully rewritten one; no crash point
  // lands between.
  phase_span.emplace("replay.adopt");
  Stopwatch publish_watch;
  UV_RETURN_NOT_OK(CheckCancel(options_.cancel, "replay.publish"));
  if (options_.publish) {
    // Exclusive from the epoch-conflict check through the swap: no commit
    // can slip in between the validation and the adoption it validates.
    std::unique_lock<std::shared_mutex> publish_lock;
    if (options_.db_mutex) {
      publish_lock = std::unique_lock<std::shared_mutex>(*options_.db_mutex);
    }
    if (options_.snapshot_epoch && log_->epoch() != *options_.snapshot_epoch) {
      // A writer committed while we replayed against the pinned history:
      // the alternate universe no longer extends the live one, and
      // adopting it would silently erase those commits. First committer
      // wins; the caller re-snapshots and retries.
      static obs::Counter* const conflicts =
          obs::Registry::Global().counter("uv.whatif.publish.conflict");
      conflicts->Inc();
      return Status::Aborted(
          "history advanced during what-if replay; re-run against a fresh "
          "snapshot");
    }
    UV_RETURN_NOT_OK(PublishCommitMarker(op));
    if (hash_jumped) {
      // A hash-hit proves the *rows* reconverged with the original
      // timeline; the AUTO_INCREMENT counters are not part of the table
      // hash. Ids the alternate universe allocated and then freed (insert
      // later deleted) still advanced its counter, so raise the live
      // watermarks to the temporary database's — max() is exact: from the
      // jump point on, both universes replay identical recorded ids.
      // (Found by the differential oracle; see DESIGN.md §9.)
      db_->SeedAutoIncrementFloor(temp_db_->auto_increment_state());
    } else {
      std::vector<std::string> mutated(plan.mutated_tables.begin(),
                                       plan.mutated_tables.end());
      UV_RETURN_NOT_OK(db_->AdoptTables(*temp_db_, mutated));
      // Retroactive DDL (dropped CREATE VIEW/TRIGGER, say) replays into
      // the temporary catalog; AdoptTables moves row data only.
      db_->AdoptCatalog(*temp_db_);
    }
    // The live database now holds the alternate universe; make the log
    // agree before anything can replay from it (still exclusive here).
    RewritePublishedLog(op);
    if (options_.rewrite_log != nullptr) {
      // Selective replay journals its slots at post-horizon commit
      // indexes (per-statement abort needs a clean journal top), so the
      // adopted tables' journals neither match the rewritten log's
      // indexing nor stay clear of the indexes the next commits will
      // take. Reset them: retroactive targets at or below the publish
      // horizon fall back to the rebuild-from-log path — now correct,
      // since the log describes the published history — and post-publish
      // traffic journals normally. A change leaves every other table's
      // journal valid; an add/remove renumbers the whole suffix, so every
      // journal's commit indexing goes stale.
      const uint64_t mark = options_.rewrite_log->last_index() + 1;
      if (op.kind == RetroOp::Kind::kChange) {
        std::vector<std::string> adopted(plan.mutated_tables.begin(),
                                         plan.mutated_tables.end());
        db_->ResetJournals(adopted, mark);
      } else {
        db_->ResetJournals({}, mark);
      }
    }
    if (options_.on_published) options_.on_published(op);
  }
  // Past the commit point AND the swap: an error injected here surfaces to
  // the caller, but the what-if is already durably committed.
  UV_FAILPOINT("whatif.publish.post_swap");
  phase_span.reset();
  stats.total_seconds = total_watch.ElapsedSeconds();
  {
    static obs::Histogram* const h_total =
        obs::Registry::Global().histogram("uv.replay.phase.total_us");
    h_total->Record(total_watch.ElapsedMicros());
  }
  stats.obs = obs::Registry::Global().Collect();
  if (explain_on) {
    report.replayed = stats.replayed;
    report.skipped = stats.skipped;
    report.hash_jump = hash_jumped;
    report.hash_jump_index = jump_index;
    if (hash_jumped) {
      // Plan members past the convergence point never executed; the digest
      // that justified the jump is the evidence.
      std::string digest_hex;
      if (timeline != nullptr) {
        for (const auto& t : plan.mutated_tables) {
          if (const Digest256* d = timeline->HashAt(t, jump_index)) {
            digest_hex = d->ToHex().substr(0, 16);
            break;
          }
        }
      }
      size_t jump_skipped = 0;
      for (size_t j = 0; j < plan.exclusions.size(); ++j) {
        uint64_t idx = plan.exclusions_base + j;
        if (plan.exclusions[j] != PlanExclusion::kMember ||
            idx <= jump_index) {
          continue;
        }
        ++jump_skipped;
        if (explain_full) {
          obs::TxnExplain& te = report.txns[(replay_target ? 1 : 0) + j];
          te.verdict = obs::TxnVerdict::kHashJumpSkip;
          te.evidence =
              "unexecuted after hash-jump: mutated-table digests matched "
              "the original timeline";
          te.digest = digest_hex;
        }
      }
      report.verdict_counts[size_t(obs::TxnVerdict::kReplayed)] -=
          jump_skipped;
      report.verdict_counts[size_t(obs::TxnVerdict::kHashJumpSkip)] +=
          jump_skipped;
    }
    end_phase("publish", publish_watch.ElapsedMicros());
    report.staged_bytes = stats.temp_db_bytes;
    ApplyLayerDeltas(layer_base, &report);
    TallyVerdictMetrics(report);
    obs::FlightRecorder::Global().Update(flight_token, report,
                                         /*completed=*/true);
  }
  return stats;
}

void RetroactiveEngine::RewritePublishedLog(const RetroOp& op) {
  sql::QueryLog* log = options_.rewrite_log;
  if (log == nullptr) return;
  // mutable_entries() bumps the history epoch, so every epoch-keyed
  // derivative (snapshots, analyze-result cache, hash timelines)
  // invalidates on its next key check.
  std::deque<sql::LogEntry>& entries = log->mutable_entries();
  const size_t pos = size_t(op.index) - 1;  // deque position of τ
  switch (op.kind) {
    case RetroOp::Kind::kChange: {
      sql::LogEntry& target = entries[pos];
      target.sql = op.new_sql;
      target.stmt = op.new_stmt;
      // The nondeterminism the publish replay actually used: recorded
      // fresh for a live what-if, replayed from the marker in recovery.
      target.nondet = options_.new_stmt_nondet ? *options_.new_stmt_nondet
                                               : captured_new_nondet_;
      // The retroactive statement is raw SQL; the application-level
      // provenance of the statement it replaced died with it.
      target.app_txn.clear();
      target.app_args.clear();
      target.app_blackbox.clear();
      break;
    }
    case RetroOp::Kind::kAdd: {
      sql::LogEntry added;
      added.sql = op.new_sql;
      added.stmt = op.new_stmt;
      added.nondet = options_.new_stmt_nondet ? *options_.new_stmt_nondet
                                              : captured_new_nondet_;
      // Slots between τ-1 and the old τ: reuse the preceding commit's
      // logical time so timestamps stay monotone.
      added.timestamp = pos > 0 ? entries[pos - 1].timestamp : 0;
      entries.insert(entries.begin() + pos, std::move(added));
      break;
    }
    case RetroOp::Kind::kRemove:
      entries.erase(entries.begin() + pos);
      break;
  }
  // Renumber the suffix (add/remove shift it) and drop per-entry records
  // that described the dead universe: logged table hashes (the Hash-jumper
  // must never "converge" against pre-publish digests) and captured
  // procedure variables (row-wise analysis falls back to its conservative
  // widening). Statement text and nondeterminism records stay — the
  // publish replay itself re-injected exactly those, so they reproduce the
  // now-live history.
  for (size_t i = pos; i < entries.size(); ++i) {
    entries[i].index = i + 1;
    entries[i].table_hashes.clear();
    entries[i].captured_vars.clear();
  }
}

Status RetroactiveEngine::PublishCommitMarker(const RetroOp& op) {
  UV_FAILPOINT("whatif.publish.pre_marker");
  if (options_.wal != nullptr) {
    if (op.kind != RetroOp::Kind::kRemove && op.new_sql.empty()) {
      // The marker must carry a replayable statement: an op built without
      // its SQL text cannot be re-derived after a crash. Fail loudly
      // before any live mutation.
      return Status::InvalidArgument(
          "durable what-if commit requires RetroOp::new_sql");
    }
    sql::WhatIfMarker marker;
    marker.kind = static_cast<uint8_t>(op.kind);
    marker.index = op.index;
    marker.new_sql = op.new_sql;
    marker.new_stmt_nondet = options_.new_stmt_nondet
                                 ? *options_.new_stmt_nondet
                                 : captured_new_nondet_;
    UV_RETURN_NOT_OK(options_.wal->AppendWhatIfCommit(marker));
  }
  // Marker durable (or durability off): the commit point has passed.
  UV_FAILPOINT("whatif.publish.post_marker");
  return Status::OK();
}

}  // namespace ultraverse::core
