#ifndef ULTRAVERSE_CORE_REPLAY_H_
#define ULTRAVERSE_CORE_REPLAY_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/dep_graph.h"
#include "core/rw_sets.h"
#include "obs/explain.h"
#include "obs/metrics.h"
#include "sqldb/database.h"
#include "sqldb/query_log.h"
#include "util/cancellation.h"
#include "util/retry.h"
#include "util/status.h"

namespace ultraverse::sql {
class Wal;  // durable write-ahead query log (sqldb/wal/wal.h)
}  // namespace ultraverse::sql

namespace ultraverse::core {

class HashTimeline;  // original-timeline table hashes (replay.cc)

/// Shared, epoch-keyed cache of the Hash-jumper timeline (DESIGN.md §14).
/// The facade owns one and passes it to every engine it builds: rebuilt
/// only when the history *epoch* advances — never keyed by log size, which
/// an equal-length in-place history rewrite leaves unchanged.
struct TimelineCache {
  std::mutex mu;
  uint64_t epoch = 0;
  std::shared_ptr<const HashTimeline> timeline;
};

/// How the replay engine reacts to a failed slot (DESIGN.md §11). The old
/// policy — swallow anything but kInternal — silently ate transient
/// infrastructure faults and cancellations alike; the classification makes
/// the three distinct fates explicit and testable.
enum class ReplayErrorClass {
  /// SQL-semantic failure that can legitimately happen in the alternate
  /// universe (constraint trip, table dropped retroactively, SIGNAL,
  /// interpreter budget): the statement's own effects rolled back
  /// atomically, the replay continues without it.
  kBenignSkip,
  /// Transient infrastructure fault (kUnavailable — e.g. an injected
  /// failpoint standing in for a flaky DBMS connection): retried with
  /// bounded backoff; escalates to fatal when the budget is exhausted.
  kRetryable,
  /// Engine invariant breakage (kInternal), durable-log corruption
  /// (kDataLoss) or cooperative cancellation/deadline: abort the replay;
  /// nothing is adopted, the live database stays untouched.
  kFatal,
};

ReplayErrorClass ClassifyReplayError(const Status& st);

/// A retroactive operation (§4): add a new query right before commit index
/// `index`, remove the query at `index`, or change it to `new_stmt`.
struct RetroOp {
  enum class Kind { kAdd, kRemove, kChange };
  Kind kind = Kind::kRemove;
  uint64_t index = 0;            // τ (1-based commit index)
  sql::StatementPtr new_stmt;    // for kAdd / kChange
  std::string new_sql;           // textual form of new_stmt (logging)
};

/// How the retroactive engine reconstructs the alternate universe.
enum class ReplayMode {
  /// The paper's protocol (§4.4): roll back only mutated/consulted tables
  /// and replay only dependent queries, with optional Hash-jumper cutoff.
  kSelective,
  /// Ground-truth reference for the differential oracle (DESIGN.md §9):
  /// rebuild a fresh database by naively re-executing the entire rewritten
  /// history — no pruning, no Hash-jumper, no CoW staging. Slow but
  /// trivially correct; selective replay must match it bit-for-bit.
  kFullNaive,
};

/// A configurable human-decision rule (§6 "Replaying Interactive Human
/// Decisions"): during what-if replay, an application transaction is
/// suppressed when the rule's condition holds in the evolving alternate
/// universe — e.g. "suppress Alice's StockPurchase while the symbol trades
/// above her threshold".
struct ReplayRule {
  /// Application transaction the rule applies to (empty = any app txn).
  std::string function;
  /// SQL SELECT evaluated against the temporary database right before the
  /// entry would replay; a truthy first cell fires the rule.
  std::string when_sql;
  /// What happens when the rule fires (suppression is the paper's example;
  /// the enum leaves room for arg-rewriting policies).
  enum class Action { kSuppress } action = Action::kSuppress;
};

/// Outcome metrics of one retroactive operation.
struct ReplayStats {
  size_t history_size = 0;       // |Q|
  size_t suffix_size = 0;        // queries at or after τ
  size_t replayed = 0;           // dependent queries actually replayed
  size_t planned_replay = 0;     // plan size before any Hash-jumper cutoff
  size_t suppressed = 0;         // entries skipped by ReplayRules (§6)
  size_t skipped = 0;            // pruned by dependency analysis
  size_t mutated_tables = 0;
  size_t consulted_tables = 0;
  bool schema_rebuild = false;

  bool hash_jump = false;        // Hash-jumper early termination fired
  uint64_t hash_jump_index = 0;  // commit index of the hash-hit
  bool hash_hit_verified = false;  // literal comparison ran and passed

  /// Longest chain of conflicting queries in the replay DAG: the number
  /// of round trips a parallel replay cannot overlap.
  size_t critical_path = 0;

  double analysis_seconds = 0;   // dependency-plan computation
  double rollback_seconds = 0;
  double replay_seconds = 0;
  double total_seconds = 0;
  uint64_t virtual_rtt_micros = 0;  // simulated client<->server RTT charged
  size_t temp_db_bytes = 0;         // temporary database footprint
  int workers = 1;

  /// Merged point-in-time view of every process metric, captured at the end
  /// of Execute(). Includes the per-phase latency histograms
  /// (replay.phase.*_us), staging/fault-in counters, worker busy/idle times
  /// and Hash-jumper probe outcomes — see DESIGN.md "Observability".
  obs::Snapshot obs;

  /// Decision-provenance report (DESIGN.md §13): phase wall/CPU breakdown,
  /// staging/VM/lifecycle activity, verdict totals — and, at
  /// Options::explain == kFull, one TxnExplain per suffix transaction.
  obs::WhatIfReport report;
};

/// Executes the rollback & replay protocol of §4.4 against a Database +
/// QueryLog pair:
///  1) build the pruned replay plan from the dependency analysis,
///  2) stage a temporary database and roll back mutated+consulted tables
///     to τ-1 (or rebuild from scratch when the plan replays DDL),
///  3) replay dependent queries — serially, or in parallel over the
///     conflict DAG with a lock-free ready queue,
///  4) Hash-jumper (§4.5): early-stop when the replayed state provably
///     reconverges with the original timeline,
///  5) adopt mutated tables back into the live database.
class RetroactiveEngine {
 public:
  struct Options {
    DependencyOptions deps;      // which pruning granularities are on
    ReplayMode mode = ReplayMode::kSelective;
    /// Forces the rebuild-from-log staging path even when journal rollback
    /// could stage the replay (oracle mode pairs exercise both paths).
    bool force_rebuild = false;
    bool parallel = true;
    int num_threads = 8;
    bool hash_jumper = false;
    /// §4.5: on a hash-hit, additionally compare the replayed tables'
    /// literal contents against the original timeline before jumping
    /// (guards against the 2^-256 collision case).
    bool verify_hash_hits = false;
    /// Per-query virtual round-trip cost charged during replay (the
    /// DBMS-client RTT the T-version saves; see DESIGN.md).
    uint64_t rtt_micros_per_query = 0;
    /// Human-decision rules applied to replayed application transactions
    /// (§6); parsed once at Execute() start.
    std::vector<ReplayRule> rules;
    /// When set, held *shared* while snapshotting the live database (stage
    /// clone, fault-ins through the read fallback, literal hash-hit
    /// verification) and *exclusive* while adopting mutated tables back
    /// (§4.4 step 3 lock), so regular traffic and concurrent analyses
    /// proceed during the replay itself and only the one-step swap
    /// excludes them.
    std::shared_mutex* db_mutex = nullptr;
    /// false = analyze-only (MVCC what-if, DESIGN.md §14): the engine
    /// computes the alternate universe into last_temp_db() but never writes
    /// the commit marker, never adopts tables or catalog back, and never
    /// touches the live database's counters. Many analyze-only executions
    /// may run concurrently over one shared immutable snapshot.
    bool publish = true;
    /// When nonzero, the replay horizon is pinned to this history length
    /// instead of the live log's current size — the what-if runs against
    /// the prefix frozen at snapshot time while writers keep appending.
    uint64_t horizon_override = 0;
    /// Entry pointers for log indices [1, horizon_override], captured under
    /// the commit lock at snapshot time. When set, the engine reads history
    /// exclusively through them: concurrent appends mutate the deque's
    /// internals, so even bounded-index reads of the live log would race.
    const std::vector<const sql::LogEntry*>* pinned_entries = nullptr;
    /// History epoch the snapshot (pinned_entries / the staged base) was
    /// taken at. Two uses: the Hash-jumper timeline cache key, and — in
    /// publish mode — optimistic conflict detection: if the live epoch has
    /// advanced past this by publish time, a writer committed mid-replay
    /// and the replayed universe no longer extends the live history, so
    /// Execute() returns kAborted without adopting anything.
    std::optional<uint64_t> snapshot_epoch;
    /// Shared Hash-jumper timeline cache (facade-owned); nullptr = the
    /// engine keeps a private one for its own lifetime.
    TimelineCache* timeline_cache = nullptr;
    /// Durable write-ahead log participating in the atomic what-if commit
    /// protocol (DESIGN.md §11): after a clean replay and before the first
    /// live-database mutation, Execute() appends a fsynced commit marker,
    /// so crash recovery lands in the pre- or post-what-if state and
    /// never between. Null = no durability (in-memory only, the default).
    sql::Wal* wal = nullptr;
    /// Cooperative cancellation/deadline for the whole operation. Workers
    /// poll it between slots and at phase boundaries and drain gracefully;
    /// Execute() returns kCancelled / kDeadlineExceeded and the live
    /// database is left untouched (adoption never starts).
    const CancelToken* cancel = nullptr;
    /// Bounded retry for kRetryable slot failures (transient injected
    /// faults). Default: no retries.
    RetryPolicy retry;
    /// How much decision provenance Execute() assembles into
    /// ReplayStats::report. kSummary (default) records phase timings,
    /// verdict totals and layer counters; kFull adds one TxnExplain per
    /// suffix transaction; kOff records nothing (bench ablation).
    obs::ExplainLevel explain = obs::ExplainLevel::kSummary;
    /// Log indices forced into the replay plan regardless of the
    /// dependency analysis (their tables are staged and rolled back like
    /// ordinary members). Ground-truth knob for `fuzz_whatif
    /// --check-explain`: re-running a soundly pruned transaction must
    /// reproduce the very same final state.
    std::vector<uint64_t> forced_replay;
    /// Recovery path: the retroactive statement replays this recorded
    /// nondeterminism instead of generating fresh values, reproducing the
    /// exact universe the original what-if committed (sqldb/wal marker).
    const sql::NondetRecord* new_stmt_nondet = nullptr;
    /// The live query log to rewrite to the alternate history inside the
    /// publish critical section (DESIGN.md §14): a change swaps the target
    /// entry's statement and nondeterminism record in place, an add/remove
    /// inserts or erases it and renumbers the suffix, and every suffix
    /// entry's logged table hashes and captured variables are dropped
    /// (they describe the dead universe). Without the rewrite every later
    /// log-derived replay — a full-naive analyze, the suffix of a second
    /// publish, recovery's marker replay — reconstructs the pre-publish
    /// history while selective staging starts from the published live
    /// database, and the two universes silently diverge (found by the
    /// multi-client wire gate; see DESIGN.md §16). nullptr = publish
    /// without rewriting, for self-contained oracle universes that are
    /// compared once and discarded.
    sql::QueryLog* rewrite_log = nullptr;
    /// Invoked inside the publish critical section, after the adoption
    /// swap and the history rewrite, with the exclusive db_mutex still
    /// held. The facade hangs its cache maintenance here (analysis
    /// truncation, hash-log re-baselining): doing it after Execute()
    /// returns would open a window where a concurrent snapshot or second
    /// publish reads stale per-entry analysis against the rewritten log.
    std::function<void(const RetroOp&)> on_published;
  };

  /// Replays one log entry against `db` at `commit_index`. The default
  /// executor runs entry.stmt directly (transpiled/T modes); the facade
  /// installs an interpreter-backed executor for B/D modes.
  using EntryExecutor = std::function<Status(
      sql::Database* db, const sql::LogEntry& entry, uint64_t commit_index)>;

  RetroactiveEngine(sql::Database* db, const sql::QueryLog* log,
                    Options options);
  ~RetroactiveEngine();

  void set_entry_executor(EntryExecutor executor) {
    entry_executor_ = std::move(executor);
  }

  /// Runs the retroactive operation. `analysis[i]` must describe log entry
  /// i+1; `analyzer` supplies R/W analysis for the op's new statement.
  Result<ReplayStats> Execute(const RetroOp& op,
                              const std::vector<QueryRW>& analysis,
                              QueryAnalyzer* analyzer);

  /// The temporary database of the last Execute() call (tests inspect the
  /// alternate universe even after a hash-jump).
  const sql::Database* last_temp_db() const { return temp_db_.get(); }

  /// Nondeterminism the retroactive statement generated during the last
  /// Execute() (empty for kRemove). Persisted in the WAL commit marker so
  /// recovery re-derives a bit-identical universe.
  const sql::NondetRecord& new_stmt_nondet() const {
    return captured_new_nondet_;
  }

 private:
  struct Slot {
    bool is_new = false;
    uint64_t log_index = 0;  // original entry (when !is_new)
  };

  /// `apply_rules` is false while reconstructing the known prefix (rebuild
  /// and full-naive paths): §6 human-decision rules act on the what-if
  /// suffix only — the prefix is settled history, not an alternate universe.
  Status ExecuteSlot(sql::Database* db, const Slot& slot, const RetroOp& op,
                     uint64_t commit_index, bool apply_rules = true);

  /// ReplayMode::kFullNaive: re-execute the whole rewritten history on a
  /// fresh database and adopt everything back.
  Result<ReplayStats> ExecuteFullNaive(const RetroOp& op, uint64_t horizon);

  /// Hash-jumper timeline over the query log, keyed by the history *epoch*
  /// (an equal-length in-place rewrite must invalidate it); consults and
  /// populates Options::timeline_cache when the facade shares one.
  const HashTimeline* EnsureTimeline();

  /// Committed entry at 1-based `index` — through the pinned snapshot
  /// pointers when Options::pinned_entries is set, else the live log.
  const sql::LogEntry& EntryAt(uint64_t index) const;

  /// End of the history this execution replays over: the pinned horizon in
  /// snapshot mode, the live log's last index otherwise.
  uint64_t HistoryEnd() const;

  sql::Database* db_;
  const sql::QueryLog* log_;
  Options options_;
  EntryExecutor entry_executor_;
  std::unique_ptr<sql::Database> temp_db_;
  std::shared_ptr<const HashTimeline> timeline_;
  uint64_t timeline_epoch_ = 0;
  /// Two-phase publish (§11): durable commit marker first, then the
  /// one-step swap of staged tables into the live database.
  Status PublishCommitMarker(const RetroOp& op);

  /// In-place rewrite of Options::rewrite_log to the alternate history a
  /// successful publish just made live. No-op when rewrite_log is null.
  /// Caller holds the publish critical section.
  void RewritePublishedLog(const RetroOp& op);

  /// (function, parsed when-condition) pairs from Options::rules.
  std::vector<std::pair<std::string, sql::StatementPtr>> parsed_rules_;
  std::atomic<size_t> suppressed_{0};
  sql::NondetRecord captured_new_nondet_;
};

}  // namespace ultraverse::core

#endif  // ULTRAVERSE_CORE_REPLAY_H_
