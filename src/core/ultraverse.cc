#include "core/ultraverse.h"

#include <algorithm>
#include <atomic>

#include "applang/app_parser.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sqldb/parser.h"
#include "sqldb/wal/wal.h"
#include "util/sha256.h"
#include "util/stopwatch.h"

namespace ultraverse::core {

namespace {

using app::AppValue;

/// Converts an engine ExecResult to the application-level shape: SELECTs
/// become arrays of row objects, DML becomes the affected-row count.
AppValue ExecResultToApp(const sql::ExecResult& res, bool is_select) {
  if (!is_select) return AppValue::Number(double(res.affected));
  AppValue arr = AppValue::Array();
  for (const auto& row : res.rows) {
    AppValue obj = AppValue::Object();
    for (size_t i = 0; i < row.size() && i < res.column_names.size(); ++i) {
      (*obj.obj)[res.column_names[i]] = AppValue::FromSqlValue(row[i]);
    }
    arr.arr->push_back(std::move(obj));
  }
  return arr;
}

/// Blackbox-recording instrumentation used while serving a transaction with
/// the original application code (B/D regular operation): generates
/// nondeterministic API results and records them under the same symbol
/// names the DSE mints, so all four configurations replay identically.
class RecordingHooks : public app::InterpreterHooks {
 public:
  RecordingHooks(Rng* rng, int64_t* clock,
                 const std::map<std::string, sql::Value>* client_env)
      : rng_(rng), clock_(clock), client_env_(client_env) {}

  bool OnBuiltin(const std::string& name, const std::vector<AppValue>& args,
                 AppValue* result) override {
    (void)args;
    std::string sym = "bb_" + name + "_" + std::to_string(++counter_);
    if (name == "rand" || name == "random") {
      double v = rng_->UniformDouble();
      recorded_[sym] = sql::Value::Double(v);
      *result = AppValue::Number(v);
      return true;
    }
    if (name == "now" || name == "gettime") {
      double v = double(++(*clock_));
      recorded_[sym] = sql::Value::Double(v);
      *result = AppValue::Number(v);
      return true;
    }
    if (name == "http_send") {
      AppValue resp = AppValue::Object();
      (*resp.obj)["code"] = AppValue::Number(1);
      (*resp.obj)["error"] = AppValue::String("");
      for (const auto& [key, value] : *resp.obj) {
        recorded_[sym + "." + key] = value.ToSqlValue();
      }
      *result = std::move(resp);
      return true;
    }
    if (name == "dom_input" || name == "user_agent") {
      // Record under the stable client-symbol name the DSE also uses.
      std::string stable = name == "user_agent"
                               ? "client_user_agent"
                               : "dom_" + (args.empty() ? "" : args[0].ToStr());
      sql::Value v = sql::Value::String("");
      if (client_env_) {
        auto it = client_env_->find(stable);
        if (it != client_env_->end()) v = it->second;
      }
      recorded_[stable] = v;
      *result = AppValue::FromSqlValue(v);
      return true;
    }
    return false;
  }

  const std::map<std::string, sql::Value>& recorded() const {
    return recorded_;
  }

 private:
  Rng* rng_;
  int64_t* clock_;
  const std::map<std::string, sql::Value>* client_env_;
  int counter_ = 0;
  std::map<std::string, sql::Value> recorded_;
};

/// Replay counterpart: re-injects the recorded blackbox values (§4.4
/// "Replaying Non-determinism").
class ReplayHooks : public app::InterpreterHooks {
 public:
  explicit ReplayHooks(const std::map<std::string, sql::Value>* recorded)
      : recorded_(recorded) {}

  bool OnBuiltin(const std::string& name, const std::vector<AppValue>& args,
                 AppValue* result) override {
    (void)args;
    std::string sym = "bb_" + name + "_" + std::to_string(++counter_);
    if (name == "http_send") {
      AppValue resp = AppValue::Object();
      std::string prefix = sym + ".";
      for (const auto& [key, value] : *recorded_) {
        if (key.rfind(prefix, 0) == 0) {
          (*resp.obj)[key.substr(prefix.size())] =
              AppValue::FromSqlValue(value);
        }
      }
      if (resp.obj->empty()) {
        (*resp.obj)["code"] = AppValue::Number(1);
        (*resp.obj)["error"] = AppValue::String("");
      }
      *result = std::move(resp);
      return true;
    }
    if (name == "rand" || name == "random" || name == "now" ||
        name == "gettime") {
      auto it = recorded_->find(sym);
      *result = it != recorded_->end() ? AppValue::FromSqlValue(it->second)
                                       : AppValue::Number(0);
      return true;
    }
    if (name == "dom_input" || name == "user_agent") {
      std::string stable = name == "user_agent"
                               ? "client_user_agent"
                               : "dom_" + (args.empty() ? "" : args[0].ToStr());
      auto it = recorded_->find(stable);
      *result = it != recorded_->end() ? AppValue::FromSqlValue(it->second)
                                       : AppValue::String("");
      return true;
    }
    return false;
  }

 private:
  const std::map<std::string, sql::Value>* recorded_;
  int counter_ = 0;
};

}  // namespace

const char* SystemModeName(SystemMode mode) {
  switch (mode) {
    case SystemMode::kB: return "B";
    case SystemMode::kT: return "T";
    case SystemMode::kD: return "D";
    case SystemMode::kTD: return "T+D";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Bridges
// ---------------------------------------------------------------------------

/// Live-traffic SQL bridge: each SQL_exec from application code is one
/// client->server round trip against the live database.
class Ultraverse::RegularBridge : public app::SqlBridge {
 public:
  RegularBridge(sql::Database* db, sql::ExecContext* ctx,
                uint64_t commit_index, VirtualClock* clock)
      : db_(db), ctx_(ctx), commit_index_(commit_index), clock_(clock) {}

  Result<AppValue> ExecuteAppSql(const std::string& sql_text) override {
    clock_->ChargeRoundTrip();
    ++statements_;
    UV_ASSIGN_OR_RETURN(sql::StatementPtr stmt,
                        sql::Parser::ParseStatement(sql_text));
    UV_ASSIGN_OR_RETURN(sql::ExecResult res,
                        db_->Execute(*stmt, commit_index_, ctx_));
    return ExecResultToApp(res, stmt->kind == sql::StatementKind::kSelect);
  }

  int statements() const { return statements_; }

 private:
  sql::Database* db_;
  sql::ExecContext* ctx_;
  uint64_t commit_index_;
  VirtualClock* clock_;
  int statements_ = 0;
};

/// Replay-time bridge: executes against the temporary database, consuming
/// the entry's recorded SQL-level nondeterminism, and counts round trips
/// into the replay RTT accumulator.
class Ultraverse::ReplayBridge : public app::SqlBridge {
 public:
  ReplayBridge(sql::Database* db, sql::ExecContext* ctx, uint64_t commit_index,
               std::atomic<uint64_t>* rtt_counter, uint64_t rtt_micros)
      : db_(db),
        ctx_(ctx),
        commit_index_(commit_index),
        rtt_counter_(rtt_counter),
        rtt_micros_(rtt_micros) {}

  Result<AppValue> ExecuteAppSql(const std::string& sql_text) override {
    if (rtt_counter_) {
      rtt_counter_->fetch_add(rtt_micros_, std::memory_order_relaxed);
    }
    UV_ASSIGN_OR_RETURN(sql::StatementPtr stmt,
                        sql::Parser::ParseStatement(sql_text));
    UV_ASSIGN_OR_RETURN(sql::ExecResult res,
                        db_->Execute(*stmt, commit_index_, ctx_));
    return ExecResultToApp(res, stmt->kind == sql::StatementKind::kSelect);
  }

 private:
  sql::Database* db_;
  sql::ExecContext* ctx_;
  uint64_t commit_index_;
  std::atomic<uint64_t>* rtt_counter_;
  uint64_t rtt_micros_;
};

// ---------------------------------------------------------------------------
// Facade
// ---------------------------------------------------------------------------

Ultraverse::Ultraverse(Options options)
    : options_(options), clock_(options.rtt_micros), rng_(options.rng_seed) {
  if (options_.exec_engine) db_.set_exec_engine(*options_.exec_engine);
  if (!options_.wal_path.empty()) {
    sql::WalOptions wal_options;
    wal_options.fsync_every_n = options_.wal_fsync_every_n;
    Result<std::unique_ptr<sql::Wal>> wal =
        sql::Wal::Open(options_.wal_path, wal_options);
    if (wal.ok()) {
      wal_ = std::move(wal).value();
    } else {
      // Surfaced through wal_status(): a constructor cannot return one,
      // and silently running without durability would be worse.
      wal_status_ = wal.status();
    }
  }
}

Ultraverse::~Ultraverse() = default;

Status Ultraverse::AttachWal(const std::string& path) {
  if (wal_ != nullptr) {
    return Status::InvalidArgument("a WAL is already attached");
  }
  sql::WalOptions wal_options;
  wal_options.fsync_every_n = options_.wal_fsync_every_n;
  UV_ASSIGN_OR_RETURN(wal_, sql::Wal::Open(path, wal_options));
  options_.wal_path = path;
  wal_status_ = Status::OK();
  return Status::OK();
}

Status Ultraverse::LoadApplication(const std::string& source) {
  return LoadApplication(source, sym::DseEngine::Options());
}

Status Ultraverse::LoadApplication(const std::string& source,
                                   sym::DseEngine::Options dse_options) {
  obs::TraceSpan span("app.load");
  static obs::Histogram* const load_us =
      obs::Registry::Global().histogram("uv.app.load_us");
  obs::ScopedLatency latency(load_us);
  Stopwatch watch;
  UV_ASSIGN_OR_RETURN(app::AppProgram program, app::AppParser::Parse(source));
  // The instrumented application is executed by DSE function by function
  // (§3.2 Step 2), then each path tree is transpiled to a PROCEDURE.
  sym::DseEngine engine(&program, dse_options);
  std::vector<transpiler::TranspiledTransaction> transpiled;
  for (const auto& [name, fn] : program.functions) {
    (void)fn;
    UV_ASSIGN_OR_RETURN(sym::DseResult dse, engine.Explore(name));
    UV_ASSIGN_OR_RETURN(transpiler::TranspiledTransaction tt,
                        transpiler::Transpiler::Transpile(dse));
    transpiled.push_back(std::move(tt));
  }
  program_ = std::move(program);
  transpile_seconds_ = watch.ElapsedSeconds();

  // Install the procedures as committed DDL so DDL<->DML dependency rules
  // apply to them (_S.<procedure> read/write entries, §4.2).
  for (auto& tt : transpiled) {
    sql::LogEntry entry;
    entry.stmt = tt.create_procedure;
    entry.sql = tt.ToSqlText();
    entry.timestamp = db_.NextTimestamp();
    sql::ExecContext ctx;
    Result<sql::ExecResult> r =
        db_.Execute(*entry.stmt, log_.size() + 1, &ctx);
    if (!r.ok()) return r.status();
    UV_ASSIGN_OR_RETURN(uint64_t seq, CommitEntry(std::move(entry)));
    if (seq != 0) UV_RETURN_NOT_OK(wal_->WaitDurable(seq));
    transpiled_[tt.function] = std::move(tt);
  }
  return Status::OK();
}

const transpiler::TranspiledTransaction* Ultraverse::FindTranspiled(
    const std::string& fn) const {
  auto it = transpiled_.find(fn);
  return it == transpiled_.end() ? nullptr : &it->second;
}

void Ultraverse::ConfigureRi(const std::string& table,
                             const std::string& ri_column,
                             std::vector<std::string> aliases) {
  analyzer_.ConfigureRi(table, ri_column, std::move(aliases));
}

Result<uint64_t> Ultraverse::CommitEntry(sql::LogEntry entry) {
  // Hash-jumper logging: per-table digests of everything this commit
  // changed (§4.5). Incremental hashes make this O(tables).
  if (options_.eager_hash_log) {
    for (const auto& name : db_.TableNames()) {
      const sql::Table* t = db_.FindTable(name);
      const Digest256& h = t->table_hash().value();
      auto it = last_hash_.find(name);
      if (it == last_hash_.end() || !(it->second == h)) {
        entry.table_hashes[name] = h;
        last_hash_[name] = h;
      }
    }
  }
  log_.Append(std::move(entry));
  uint64_t durability_seq = 0;
  if (wal_) {
    // Durability before visibility-to-replay: the WAL gets the committed
    // entry (with its hash log) the moment it enters the in-memory log.
    // The fsync wait happens in the caller AFTER commit_mu_ drops, so
    // concurrent committers form one fsync group instead of serializing
    // their disk waits behind the lock.
    bool sync_due = false;
    UV_ASSIGN_OR_RETURN(uint64_t seq, wal_->AppendEntryAsync(
                                          log_.entries().back(), &sync_due));
    if (sync_due) durability_seq = seq;
  }
  if (options_.eager_analysis) {
    UV_ASSIGN_OR_RETURN(QueryRW rw,
                        analyzer_.AnalyzeEntry(log_.entries().back()));
    footprints_.push_back(FootprintOf(rw));
    raw_analysis_.push_back(std::move(rw));
  }
  // No dirty flag: EnsureAnalysisLocked compares coverage and the merged-RI
  // generation, extending the canonical analysis incrementally.
  return durability_seq;
}

Result<sql::ExecResult> Ultraverse::ExecuteSql(const std::string& sql_text) {
  UV_ASSIGN_OR_RETURN(sql::StatementPtr stmt,
                      sql::Parser::ParseStatement(sql_text));
  sql::LogEntry entry;
  entry.sql = sql_text;
  entry.stmt = stmt;
  sql::ExecContext ctx;
  ctx.StartRecording(&entry.nondet);
  clock_.ChargeRoundTrip();
  uint64_t durability_seq = 0;
  sql::ExecResult out;
  {
    std::lock_guard<std::shared_mutex> g(commit_mu_);
    // The logical clock is plain state guarded by commit_mu_ — stamp under
    // the lock so concurrent committers serialize (timestamps then follow
    // commit order, which replay assumes anyway).
    entry.timestamp = db_.NextTimestamp();
    const uint64_t commit_index = log_.size() + 1;
    Result<sql::ExecResult> res = db_.Execute(*stmt, commit_index, &ctx);
    if (!res.ok()) {
      db_.RollbackToIndex(commit_index - 1);
      return res.status();
    }
    out = std::move(*res);
    UV_ASSIGN_OR_RETURN(durability_seq, CommitEntry(std::move(entry)));
  }
  // Group-commit durability wait outside the commit lock: a failed group
  // fsync reports here — to every committer in the group (see
  // Wal::WaitDurable), not just whichever one triggered the sync.
  if (durability_seq != 0) UV_RETURN_NOT_OK(wal_->WaitDurable(durability_seq));
  return out;
}

Result<AppValue> Ultraverse::RunTransaction(const std::string& fn,
                                            std::vector<AppValue> args,
                                            SystemMode mode) {
  const transpiler::TranspiledTransaction* tt = FindTranspiled(fn);
  if (!tt) return Status::NotFound("no transpiled transaction " + fn);

  sql::LogEntry entry;
  entry.app_txn = fn;
  for (const auto& a : args) entry.app_args.push_back(a.ToSqlValue());

  std::unique_lock<std::shared_mutex> g(commit_mu_);
  // Committed index and timestamp resolved under the lock: concurrent
  // committers would otherwise race to the same slot / logical tick.
  entry.timestamp = db_.NextTimestamp();
  uint64_t commit_index = log_.size() + 1;

  AppValue ret;
  bool use_app_code = mode == SystemMode::kB || mode == SystemMode::kD;
retry_with_app_code:
  if (use_app_code) {
    // Original (augmented) application code: N statements, N round trips.
    sql::ExecContext ctx;
    ctx.StartRecording(&entry.nondet);
    RegularBridge bridge(&db_, &ctx, commit_index, &clock_);
    RecordingHooks hooks(&rng_, &bb_clock_, &client_env_);
    app::Interpreter interp(&program_, &bridge, &hooks);
    for (const auto& [k, v] : client_env_) {
      interp.client_env[k] = AppValue::FromSqlValue(v);
    }
    Result<AppValue> r = interp.CallFunction(fn, std::move(args));
    if (!r.ok()) {
      db_.RollbackToIndex(commit_index - 1);
      return r.status();
    }
    ret = std::move(*r);
    entry.app_blackbox = hooks.recorded();
  } else {
    // Transpiled fast path: one CALL, one round trip. Blackbox parameters
    // are materialized up front (§3.3 option 2, simplified: the client
    // evaluates the native API and passes its value into the procedure).
    for (const auto& bb : tt->blackbox_params) {
      sql::Value v;
      if (bb.rfind("dom_", 0) == 0 || bb.rfind("client_", 0) == 0) {
        // Client-side symbols (§3.3): supplied per request through the
        // client environment; empty when the caller provided none.
        auto it = client_env_.find(bb);
        v = it != client_env_.end() ? it->second : sql::Value::String("");
      } else if (bb.find("rand") != std::string::npos) {
        v = sql::Value::Double(rng_.UniformDouble());
      } else if (bb.find("now") != std::string::npos ||
                 bb.find("gettime") != std::string::npos) {
        v = sql::Value::Int(++bb_clock_);
      } else if (bb.find("http_send") != std::string::npos) {
        size_t dot = bb.find('.');
        std::string field = dot == std::string::npos ? "" : bb.substr(dot + 1);
        if (field == "code") {
          v = sql::Value::Int(1);
        } else {
          v = sql::Value::String("");
        }
      }
      entry.app_blackbox[bb] = v;
    }
  }

  // Build the equivalent CALL entry (this is what the retroactive plugin
  // analyzes and what T/T+D replay executes).
  auto call = sql::Statement::Make(sql::StatementKind::kCall);
  call->call.procedure = tt->procedure_name;
  for (const auto& a : entry.app_args) {
    call->call.args.push_back(sql::Expr::MakeLiteral(a));
  }
  for (const auto& bb : tt->blackbox_params) {
    auto it = entry.app_blackbox.find(bb);
    call->call.args.push_back(sql::Expr::MakeLiteral(
        it != entry.app_blackbox.end() ? it->second : sql::Value::Null()));
  }
  entry.stmt = call;
  entry.sql = sql::ToSql(*call);

  if (!use_app_code) {
    clock_.ChargeRoundTrip();
    sql::ExecContext ctx;
    ctx.StartRecording(&entry.nondet);
    ctx.set_var_capture(&entry.captured_vars);
    Result<sql::ExecResult> r = db_.Execute(*call, commit_index, &ctx);
    if (!r.ok()) {
      db_.RollbackToIndex(commit_index - 1);
      if (r.status().code() == StatusCode::kSignal) {
        // Unexplored-path trap (§3.3): fall back to the original
        // application code for this invocation; a production deployment
        // would run delta-DSE here and patch the procedure.
        use_app_code = true;
        entry.app_blackbox.clear();
        entry.nondet = sql::NondetRecord{};
        args.clear();
        for (const auto& a : entry.app_args) {
          args.push_back(AppValue::FromSqlValue(a));
        }
        goto retry_with_app_code;
      }
      return r.status();
    }
  }

  UV_ASSIGN_OR_RETURN(uint64_t durability_seq, CommitEntry(std::move(entry)));
  g.unlock();
  // As in ExecuteSql: the group fsync wait runs off the commit lock.
  if (durability_seq != 0) UV_RETURN_NOT_OK(wal_->WaitDurable(durability_seq));
  return ret;
}

Status Ultraverse::EnsureAnalysisLocked() {
  while (raw_analysis_.size() < log_.size()) {
    UV_ASSIGN_OR_RETURN(
        QueryRW rw, analyzer_.AnalyzeEntry(log_.at(raw_analysis_.size() + 1)));
    footprints_.push_back(FootprintOf(rw));
    raw_analysis_.push_back(std::move(rw));
  }
  const uint64_t gen = analyzer_.merge_generation();
  if (canonical_merge_gen_ != gen) {
    // A merged-RI union landed since the last canonicalization: the
    // representative of any already-canonicalized value may have changed,
    // so the whole analysis re-canonicalizes under the final union-find
    // (CanonicalizeRowSets is a pure function of it).
    canonical_analysis_ = raw_analysis_;
    for (auto& rw : canonical_analysis_) analyzer_.CanonicalizeRowSets(&rw);
    canonical_merge_gen_ = gen;
  } else if (canonical_analysis_.size() < raw_analysis_.size()) {
    // Union-find unchanged: every existing canonical entry is still
    // canonical; only the new tail needs work (incremental maintenance,
    // DESIGN.md §14).
    for (size_t i = canonical_analysis_.size(); i < raw_analysis_.size();
         ++i) {
      canonical_analysis_.push_back(raw_analysis_[i]);
      analyzer_.CanonicalizeRowSets(&canonical_analysis_.back());
    }
  }
  return Status::OK();
}

void Ultraverse::OnPublishedLocked(const RetroOp& op) {
  // Everything analyzed from the rewrite point on described statements
  // that no longer exist at those indices (a change swapped the target, an
  // add/remove shifted the suffix). Truncate; EnsureAnalysisLocked
  // re-derives the tail lazily from the rewritten entries. The analyzer's
  // union-find keeps merges learned from the dead suffix — that can only
  // widen row sets, which over-replays but never skips a dependency.
  const size_t keep = std::min<size_t>(raw_analysis_.size(), op.index - 1);
  raw_analysis_.resize(keep);
  footprints_.resize(std::min(footprints_.size(), keep));
  canonical_analysis_.resize(std::min(canonical_analysis_.size(), keep));
  // Eager hash log: the suffix digests were dropped by the rewrite.
  // Re-baseline on the final entry with the just-adopted live tables, so
  // timeline lookups at-or-past the horizon (and dedup of future commits)
  // compare against the published universe, not the dead one. Indices
  // between the rewrite point and the horizon have no logged digests —
  // probes there fall back to the settled prefix and read as misses.
  if (options_.eager_hash_log && log_.size() > 0) {
    sql::LogEntry& back = log_.mutable_entries().back();
    last_hash_.clear();
    for (const auto& name : db_.TableNames()) {
      const Digest256& h = db_.FindTable(name)->table_hash().value();
      back.table_hashes[name] = h;
      last_hash_[name] = h;
    }
  }
}

Result<const std::vector<QueryRW>*> Ultraverse::EnsureAnalysis() {
  // Serialize against commits: the analyzer state and the analysis vector
  // evolve with the log, and WhatIf snapshots a consistent prefix.
  std::unique_lock<std::shared_mutex> g(commit_mu_);
  UV_RETURN_NOT_OK(EnsureAnalysisLocked());
  return &canonical_analysis_;
}

Result<std::shared_ptr<const HistorySnapshot>> Ultraverse::SnapshotHistory() {
  {
    std::shared_lock<std::shared_mutex> rl(commit_mu_);
    if (snapshot_cache_ && snapshot_cache_->epoch == log_.epoch()) {
      return snapshot_cache_;
    }
  }
  std::unique_lock<std::shared_mutex> wl(commit_mu_);
  // Another thread may have built it between the two locks.
  if (snapshot_cache_ && snapshot_cache_->epoch == log_.epoch()) {
    return snapshot_cache_;
  }
  static obs::Counter* const builds =
      obs::Registry::Global().counter("uv.whatif.snapshot.builds");
  static obs::Histogram* const build_us =
      obs::Registry::Global().histogram("uv.whatif.snapshot.build_us");
  builds->Inc();
  obs::TraceSpan span("whatif.snapshot", {{"horizon", log_.size()}});
  obs::ScopedLatency latency(build_us);
  UV_RETURN_NOT_OK(EnsureAnalysisLocked());
  auto snap = std::make_shared<HistorySnapshot>();
  snap->epoch = log_.epoch();
  snap->horizon = log_.size();
  // Full CoW clone: O(tables) page-pointer shares, no row copies. The
  // clone is immutable from here on — concurrent analyses stage their own
  // temporaries FROM it and fault in lock-free.
  snap->db = std::shared_ptr<const sql::Database>(db_.Clone());
  auto pinned = std::make_shared<std::vector<const sql::LogEntry*>>();
  // The snapshot owns a *copy* of the pinned prefix, not pointers into the
  // live deque: a publish rewrites entries in place (an add/remove even
  // inserts or erases mid-deque, invalidating every live reference), and
  // in-flight analyses read their pinned history lock-free. Copies are
  // O(prefix) once per epoch and shared by every analysis at that epoch.
  auto storage = std::make_shared<std::deque<sql::LogEntry>>(log_.entries());
  pinned->reserve(storage->size());
  for (const sql::LogEntry& entry : *storage) pinned->push_back(&entry);
  snap->entry_storage = std::move(storage);
  snap->entries = std::move(pinned);
  snap->analysis =
      std::make_shared<const std::vector<QueryRW>>(canonical_analysis_);
  snap->footprints =
      std::make_shared<const std::vector<TableFootprint>>(footprints_);
  auto analyzer_copy = std::make_shared<QueryAnalyzer>(analyzer_);
  // The frozen copy must not feed the live static-soundness observer.
  analyzer_copy->set_observer(nullptr);
  snap->analyzer = std::move(analyzer_copy);
  snapshot_cache_ = snap;
  return snapshot_cache_;
}

size_t Ultraverse::UltraverseLogBytes() {
  auto analysis = EnsureAnalysis();
  if (!analysis.ok()) return 0;
  size_t bytes = 0;
  for (const auto& rw : **analysis) bytes += rw.ApproxLogBytes();
  return bytes;
}

Status Ultraverse::InterpreterReplayExecutor(
    sql::Database* target, const sql::LogEntry& entry, uint64_t commit_index,
    std::atomic<uint64_t>* rtt_counter) {
  if (entry.app_txn.empty()) {
    // Raw SQL entry: execute directly with recorded nondeterminism.
    if (rtt_counter) {
      rtt_counter->fetch_add(options_.rtt_micros, std::memory_order_relaxed);
    }
    sql::ExecContext ctx;
    ctx.StartReplaying(&entry.nondet);
    Result<sql::ExecResult> r = target->Execute(*entry.stmt, commit_index, &ctx);
    return r.ok() ? Status::OK() : r.status();
  }
  sql::ExecContext ctx;
  ctx.StartReplaying(&entry.nondet);
  ReplayBridge bridge(target, &ctx, commit_index, rtt_counter,
                      options_.rtt_micros);
  ReplayHooks hooks(&entry.app_blackbox);
  app::Interpreter interp(&program_, &bridge, &hooks);
  std::vector<AppValue> args;
  args.reserve(entry.app_args.size());
  for (const auto& a : entry.app_args) {
    args.push_back(AppValue::FromSqlValue(a));
  }
  Result<AppValue> r = interp.CallFunction(entry.app_txn, std::move(args));
  if (!r.ok()) {
    target->RollbackToIndex(commit_index - 1);
    return r.status();
  }
  return Status::OK();
}

Result<RetroOp> Ultraverse::MakeOp(RetroOp::Kind kind, uint64_t index,
                                   const std::string& new_sql) {
  RetroOp op;
  op.kind = kind;
  op.index = index;
  if (kind != RetroOp::Kind::kRemove) {
    UV_ASSIGN_OR_RETURN(op.new_stmt, sql::Parser::ParseStatement(new_sql));
    op.new_sql = new_sql;
  }
  return op;
}

Result<ReplayStats> Ultraverse::WhatIf(const RetroOp& op, SystemMode mode,
                                       std::vector<ReplayRule> rules) {
  // Embedded single-session use: the facade-wide Options::whatif_* knobs
  // are the request context.
  return WhatIf(op, mode, std::move(rules),
                RequestContext{options_.whatif_cancel, options_.whatif_retry});
}

Result<ReplayStats> Ultraverse::WhatIf(const RetroOp& op, SystemMode mode,
                                       std::vector<ReplayRule> rules,
                                       const RequestContext& ctx) {
  static obs::Counter* const whatifs =
      obs::Registry::Global().counter("uv.whatif.ops");
  whatifs->Inc();
  obs::TraceSpan span("whatif", {{"index", op.index}});
  Stopwatch analysis_watch;
  // Pin the history (entries, analysis, footprints, analyzer) at the
  // current epoch. The engine replays against the pinned prefix while
  // regular traffic keeps committing; any commit that lands before the
  // publish point surfaces as kAborted there.
  std::shared_ptr<const HistorySnapshot> snap;
  {
    obs::TraceSpan analysis_span("whatif.ensure_analysis");
    UV_ASSIGN_OR_RETURN(snap, SnapshotHistory());
  }
  double ensure_seconds = analysis_watch.ElapsedSeconds();

  RetroactiveEngine::Options eopts;
  bool dep = mode == SystemMode::kD || mode == SystemMode::kTD;
  eopts.deps.column_wise = dep;
  eopts.deps.row_wise = dep;
  eopts.deps.static_footprints = snap->footprints.get();
  eopts.parallel = dep;
  eopts.num_threads = options_.replay_threads;
  eopts.hash_jumper = options_.hash_jumper && dep;
  eopts.verify_hash_hits = options_.verify_hash_hits;
  eopts.rules = std::move(rules);
  eopts.db_mutex = &commit_mu_;
  eopts.wal = wal_.get();  // two-phase publish when durability is on
  eopts.cancel = ctx.cancel;
  eopts.retry = ctx.retry;
  eopts.explain = options_.explain;
  eopts.forced_replay = options_.forced_replay;
  eopts.pinned_entries = snap->entries.get();
  eopts.horizon_override = snap->horizon;
  eopts.snapshot_epoch = snap->epoch;
  eopts.timeline_cache = &timeline_cache_;
  // On publish the engine rewrites the live log to the alternate history
  // inside its critical section, then hands control back here for cache
  // maintenance — all before the exclusive lock drops, so no concurrent
  // snapshot or second publish can observe the published database next to
  // the dead history.
  eopts.rewrite_log = &log_;
  eopts.on_published = [this](const RetroOp& o) { OnPublishedLocked(o); };

  bool use_app_code = mode == SystemMode::kB || mode == SystemMode::kD;
  std::atomic<uint64_t> rtt_counter{0};
  if (!use_app_code) {
    eopts.rtt_micros_per_query = options_.rtt_micros;  // 1 RTT per CALL
  }

  // The engine analyzes the retroactive statement against a copy of the
  // snapshot's analyzer, not the live one: the live analyzer evolves with
  // concurrent commits, and alias/merge state learned from an uncommitted
  // what-if must never leak into committed-history analysis.
  QueryAnalyzer scratch_analyzer = *snap->analyzer;
  RetroactiveEngine engine(&db_, &log_, eopts);
  if (use_app_code) {
    engine.set_entry_executor(
        [this, &rtt_counter](sql::Database* target, const sql::LogEntry& entry,
                             uint64_t commit_index) {
          return InterpreterReplayExecutor(target, entry, commit_index,
                                           &rtt_counter);
        });
  }
  UV_ASSIGN_OR_RETURN(ReplayStats stats, engine.Execute(op, *snap->analysis,
                                                        &scratch_analyzer));
  // Published: the live state diverged from everything derived at the old
  // epoch (snapshots, analyze-result cache, hash timelines). Advance the
  // epoch so every one of them invalidates on its next key check.
  log_.BumpEpoch();
  stats.analysis_seconds += ensure_seconds;
  stats.total_seconds += ensure_seconds;
  if (options_.explain != obs::ExplainLevel::kOff) {
    // The engine reported its own phases; prepend the facade's analysis
    // step (R/W analysis of any not-yet-analyzed log suffix) and stamp the
    // system mode.
    stats.report.mode = SystemModeName(mode);
    stats.report.phases.insert(
        stats.report.phases.begin(),
        obs::PhaseBreakdown{"analyze", uint64_t(ensure_seconds * 1e6), 0});
  }
  uint64_t counted = rtt_counter.load(std::memory_order_relaxed);
  if (eopts.parallel && stats.replayed > 0) {
    // Statement round trips counted across all replayed transactions
    // overlap along independent DAG chains: only the critical path's
    // share is wall time.
    counted = counted * stats.critical_path / stats.replayed;
  }
  stats.virtual_rtt_micros += counted;
  return stats;
}

namespace {

/// Fingerprint of the alternate universe an analyze-only run computed:
/// the temporary database overlaid on the snapshot it staged from (staged
/// and rebuilt tables win, retroactive drops tombstone, everything else
/// reads through the CoW fallback). Same format as StateFingerprint(), so
/// selective, full-naive and published universes compare directly.
std::string UniverseFingerprint(const sql::Database& snapshot,
                                const sql::Database& temp) {
  std::set<std::string> names;
  for (const auto& n : snapshot.TableNames()) names.insert(n);
  for (const auto& n : temp.TableNames()) names.insert(n);
  Sha256 hasher;
  for (const auto& name : names) {
    // Const lookup resolves exactly the overlay semantics: local table,
    // then drop tombstone, then the snapshot through the read fallback.
    const sql::Table* t = temp.FindTable(name);
    if (!t) continue;
    hasher.Update(name);
    std::vector<std::string> rows;
    t->Scan([&](sql::RowId, const sql::Row& row) {
      rows.push_back(sql::EncodeRow(row));
      return true;
    });
    std::sort(rows.begin(), rows.end());
    for (const auto& r : rows) hasher.Update(r);
  }
  return hasher.Finish().ToHex();
}

/// Canonical result-cache key: epoch is checked separately, so the key is
/// (mode, op kind, index, canonicalized statement text).
std::string AnalysisCacheKey(const RetroOp& op, SystemMode mode) {
  std::string key = SystemModeName(mode);
  key += '|';
  key += op.kind == RetroOp::Kind::kAdd      ? "add"
         : op.kind == RetroOp::Kind::kRemove ? "remove"
                                             : "change";
  key += '|';
  key += std::to_string(op.index);
  key += '|';
  // ToSql of the parsed form canonicalizes whitespace/case differences in
  // the user's SQL text, so equivalent questions share a cache line.
  if (op.new_stmt) {
    key += sql::ToSql(*op.new_stmt);
  } else {
    key += op.new_sql;
  }
  return key;
}

}  // namespace

Result<WhatIfAnalysis> Ultraverse::WhatIfAnalyzeAt(const HistorySnapshot& snap,
                                                   const RetroOp& op,
                                                   SystemMode mode,
                                                   bool full_naive) {
  return WhatIfAnalyzeAt(
      snap, op, mode, full_naive,
      RequestContext{options_.whatif_cancel, options_.whatif_retry});
}

Result<WhatIfAnalysis> Ultraverse::WhatIfAnalyzeAt(const HistorySnapshot& snap,
                                                   const RetroOp& op,
                                                   SystemMode mode,
                                                   bool full_naive,
                                                   const RequestContext& ctx) {
  static obs::Counter* const analyses =
      obs::Registry::Global().counter("uv.whatif.analyze.ops");
  analyses->Inc();
  obs::TraceSpan span("whatif.analyze",
                      {{"index", op.index}, {"epoch", snap.epoch}});

  RetroactiveEngine::Options eopts;
  bool dep = mode == SystemMode::kD || mode == SystemMode::kTD;
  eopts.deps.column_wise = dep;
  eopts.deps.row_wise = dep;
  eopts.deps.static_footprints = snap.footprints.get();
  eopts.mode =
      full_naive ? ReplayMode::kFullNaive : ReplayMode::kSelective;
  eopts.parallel = dep;
  eopts.num_threads = options_.replay_threads;
  // Analyze-only: no publish, no WAL marker, no live-database locks — the
  // snapshot is immutable, so staging and fault-ins run lock-free. The
  // engine additionally forces the Hash-jumper off (the temporary database
  // must reach the horizon to BE the result).
  eopts.publish = false;
  eopts.db_mutex = nullptr;
  eopts.wal = nullptr;
  eopts.cancel = ctx.cancel;
  eopts.retry = ctx.retry;
  eopts.explain = options_.explain;
  eopts.forced_replay = options_.forced_replay;
  eopts.pinned_entries = snap.entries.get();
  eopts.horizon_override = snap.horizon;
  eopts.snapshot_epoch = snap.epoch;

  bool use_app_code = mode == SystemMode::kB || mode == SystemMode::kD;
  std::atomic<uint64_t> rtt_counter{0};
  if (!use_app_code) {
    eopts.rtt_micros_per_query = options_.rtt_micros;  // 1 RTT per CALL
  }

  // The snapshot database is const by contract; publish=false guarantees
  // the engine only ever reads it (clone-from, fault-in-from, fingerprint),
  // so the cast does not break the sharing contract with other analyses.
  sql::Database* snap_db = const_cast<sql::Database*>(snap.db.get());
  // Per-analysis analyzer copy: AnalyzeStatement on the retroactive target
  // may evolve alias/merge state, and N analyses sharing one analyzer
  // would race.
  QueryAnalyzer scratch_analyzer = *snap.analyzer;
  RetroactiveEngine engine(snap_db, &log_, eopts);
  if (use_app_code) {
    engine.set_entry_executor(
        [this, &rtt_counter](sql::Database* target, const sql::LogEntry& entry,
                             uint64_t commit_index) {
          return InterpreterReplayExecutor(target, entry, commit_index,
                                           &rtt_counter);
        });
  }
  WhatIfAnalysis out;
  UV_ASSIGN_OR_RETURN(out.stats, engine.Execute(op, *snap.analysis,
                                                &scratch_analyzer));
  out.epoch = snap.epoch;
  out.horizon = snap.horizon;
  out.fingerprint = UniverseFingerprint(*snap.db, *engine.last_temp_db());
  if (options_.explain != obs::ExplainLevel::kOff) {
    out.stats.report.mode = SystemModeName(mode);
  }
  uint64_t counted = rtt_counter.load(std::memory_order_relaxed);
  if (eopts.parallel && out.stats.replayed > 0) {
    counted = counted * out.stats.critical_path / out.stats.replayed;
  }
  out.stats.virtual_rtt_micros += counted;
  return out;
}

Result<WhatIfAnalysis> Ultraverse::WhatIfAnalyze(const RetroOp& op,
                                                 SystemMode mode) {
  return WhatIfAnalyze(
      op, mode, RequestContext{options_.whatif_cancel, options_.whatif_retry});
}

Result<WhatIfAnalysis> Ultraverse::WhatIfAnalyze(const RetroOp& op,
                                                 SystemMode mode,
                                                 const RequestContext& ctx) {
  static obs::Counter* const hits =
      obs::Registry::Global().counter("uv.whatif.cache.hit");
  static obs::Counter* const misses =
      obs::Registry::Global().counter("uv.whatif.cache.miss");
  static obs::Counter* const hit_verdicts =
      obs::Registry::Global().counter(
          std::string("uv.explain.verdict{reason=\"") +
          obs::TxnVerdictName(obs::TxnVerdict::kResultCacheHit) + "\"}");

  UV_ASSIGN_OR_RETURN(std::shared_ptr<const HistorySnapshot> snap,
                      SnapshotHistory());
  const std::string key = AnalysisCacheKey(op, mode);
  {
    std::lock_guard<std::mutex> g(result_mu_);
    if (result_cache_epoch_ == snap->epoch) {
      auto it = result_cache_.find(key);
      if (it != result_cache_.end()) {
        // Even a cached answer respects the request's deadline: an already
        // expired request gets its typed error, not a stale-looking hit.
        UV_RETURN_NOT_OK(CheckCancel(ctx.cancel, "whatif.analyze.cache"));
        hits->Inc();
        hit_verdicts->Inc();
        WhatIfAnalysis out = it->second;
        out.cache_hit = true;
        // The answer was reused wholesale: say so in its provenance.
        out.stats.report.Tally(obs::TxnVerdict::kResultCacheHit);
        return out;
      }
    }
  }
  misses->Inc();
  UV_ASSIGN_OR_RETURN(WhatIfAnalysis out,
                      WhatIfAnalyzeAt(*snap, op, mode, false, ctx));
  {
    std::lock_guard<std::mutex> g(result_mu_);
    if (result_cache_epoch_ != snap->epoch) {
      // Results memoized at an older epoch answer questions about a
      // history that no longer exists; drop them rather than let an
      // equal-length rewrite serve them again (the stale-epoch bug class
      // this PR fixes).
      result_cache_.clear();
      result_cache_epoch_ = snap->epoch;
    }
    result_cache_.emplace(key, out);
  }
  return out;
}

void Ultraverse::Checkpoint() {
  std::lock_guard<std::shared_mutex> g(commit_mu_);
  db_.TrimJournalsBefore(log_.last_index() + 1);
}

void Ultraverse::TagScenario(const std::string& name) {
  // Exclusive: the tag map itself is written, not just the log read.
  std::lock_guard<std::shared_mutex> g(commit_mu_);
  scenario_tags_[name] = log_.last_index();
}

std::string FingerprintDatabase(const sql::Database& db) {
  Sha256 hasher;
  for (const auto& name : db.TableNames()) {
    const sql::Table* t = db.FindTable(name);
    hasher.Update(name);
    std::vector<std::string> rows;
    t->Scan([&](sql::RowId, const sql::Row& row) {
      rows.push_back(sql::EncodeRow(row));
      return true;
    });
    std::sort(rows.begin(), rows.end());
    for (const auto& r : rows) hasher.Update(r);
  }
  return hasher.Finish().ToHex();
}

std::string Ultraverse::StateFingerprint() const {
  std::shared_lock<std::shared_mutex> g(commit_mu_);
  return FingerprintDatabase(db_);
}

}  // namespace ultraverse::core
