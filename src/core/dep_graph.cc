#include "core/dep_graph.h"

#include <map>
#include <optional>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ultraverse::core {

namespace {

/// Generic single-granularity replay-set computation (Theorems 11 & 19):
/// one ascending pass maintaining the accumulated writes (rule-1
/// dependencies, transitive because members join the accumulator) and
/// accumulated reads (Props. 9/10: later writers to a read cell replay so
/// consulted tables evolve correctly).
/// Per-granularity exclusion cause, recorded (when requested) at the exact
/// position of each skip/join decision in the ascending pass below.
enum class Cause : uint8_t {
  kMember,
  kTargetSlot,
  kReadOnly,
  kStatic,
  kPredicate,
  kNoRule,
};

/// Predicate-veto state (DESIGN.md §15): row sets of the target + joined
/// members, compared through their typed predicate regions when a classic
/// dependency rule fires. Kept separately from the granularity
/// accumulators so the *column* pass gets the same row-level refutation
/// power as the row pass.
struct RegionAccumulators {
  RowSet w, r, ow;

  explicit RegionAccumulators(const QueryRW& target_rw) {
    w = target_rw.wr;
    r = target_rw.rr;
    if (target_rw.overwrites) ow = target_rw.wr;
  }
  void Join(const QueryRW& rw) {
    w.Merge(rw.wr);
    r.Merge(rw.rr);
    if (rw.overwrites) ow.Merge(rw.wr);
  }
  /// Mirrors the three closure rules below at region granularity. False
  /// means every rule is provably refuted: the candidate shares no row —
  /// in any replay universe — with the accumulated members.
  bool CouldDepend(const QueryRW& rw) const {
    return rw.rr.RegionIntersects(w) || rw.wr.RegionIntersects(r) ||
           rw.wr.RegionIntersects(rw.overwrites ? w : ow);
  }
  /// Evidence string for a refuted candidate: the candidate's typed row
  /// views against the accumulated views on the keys it touches.
  std::string Describe(const QueryRW& rw) const {
    std::string out;
    auto add = [&](const char* tag, const RowSet& mine, const RowSet& acc) {
      for (const auto& [col, vals] : mine.cols) {
        auto it = acc.cols.find(col);
        if (it == acc.cols.end()) continue;
        if (out.size() > 160) return;
        if (!out.empty()) out += "; ";
        out += std::string(tag) + " " + col + " " +
               RowSet::TypedRegionOf(vals).ToString() + " vs members " +
               RowSet::TypedRegionOf(it->second).ToString();
      }
    };
    add("reads", rw.rr, w);
    add("writes", rw.wr, r);
    add("writes", rw.wr, rw.overwrites ? w : ow);
    if (out.empty()) out = "no shared row keys with members";
    return out;
  }
};

template <typename Sets>
std::set<uint64_t> ClosureOneGranularity(
    const std::vector<QueryRW>& analysis, uint64_t target_index,
    const QueryRW& target_rw, bool target_occupies_slot, Sets sets,
    const std::vector<TableFootprint>* static_footprints,
    bool predicate_filter = false, const std::set<uint64_t>* forced = nullptr,
    std::vector<Cause>* causes = nullptr,
    std::vector<std::string>* details = nullptr) {
  auto acc_w = sets.Writes(target_rw);  // by value: accumulators
  auto acc_r = sets.Reads(target_rw);
  // Accumulated *dynamic* table footprint of target + joined members. A
  // candidate whose static footprint (⊇ its dynamic footprint) is disjoint
  // from it shares no table — hence no "T.col"/"_S.T" cell — with any
  // accumulator, so every closure rule below is trivially false.
  TableFootprint acc_fp = FootprintOf(target_rw);
  // Overwriting-write accumulator: the subset of acc_w written by queries
  // that can clobber *pre-existing* cells (UPDATE/DELETE/DDL — see
  // QueryRW::overwrites). Used by the write-write rule below.
  std::decay_t<decltype(sets.Writes(target_rw))> acc_ow;
  if (target_rw.overwrites) acc_ow = sets.Writes(target_rw);
  std::optional<RegionAccumulators> regions;
  if (predicate_filter) regions.emplace(target_rw);

  std::set<uint64_t> members;
  if (causes) {
    causes->assign(analysis.size() + 1 - target_index, Cause::kNoRule);
  }
  if (details) {
    details->assign(analysis.size() + 1 - target_index, std::string());
  }
  auto record = [&](uint64_t idx, Cause c) {
    if (causes) (*causes)[idx - target_index] = c;
  };
  for (uint64_t idx = target_index; idx <= analysis.size(); ++idx) {
    // For remove/change the target *is* log[target_index]; it is seeded
    // into the accumulators above and must not re-join as a member. For
    // add, the new query slots in *before* log[target_index]: that commit
    // is an ordinary suffix statement and must be dependency-checked like
    // any other. (An earlier revision skipped it unconditionally, so a
    // retroactively added statement never saw the original commit at its
    // own insertion index replay — the differential oracle caught the
    // resulting divergences; see DESIGN.md §9.)
    if (target_occupies_slot && idx == target_index) {
      record(idx, Cause::kTargetSlot);
      continue;
    }
    const QueryRW& rw = analysis[idx - 1];
    if (forced && forced->count(idx)) {
      // Seeded member (counterfactual forced replay): joins without a
      // rule firing, and its sets feed the accumulators so every later
      // writer of its cells joins through the ordinary rules below.
      record(idx, Cause::kMember);
      members.insert(idx);
      sets.MergeInto(&acc_w, sets.Writes(rw));
      sets.MergeInto(&acc_r, sets.Reads(rw));
      if (rw.overwrites) sets.MergeInto(&acc_ow, sets.Writes(rw));
      if (static_footprints) acc_fp.Merge(FootprintOf(rw));
      if (regions) regions->Join(rw);
      continue;
    }
    if (sets.WriteEmpty(rw)) {
      record(idx, Cause::kReadOnly);
      continue;  // read-only queries never replay
    }
    if (static_footprints && idx - 1 < static_footprints->size() &&
        !(*static_footprints)[idx - 1].Intersects(acc_fp)) {
      record(idx, Cause::kStatic);
      continue;  // statically disjoint: no rule can fire
    }
    bool rule1 = sets.Intersect(sets.Reads(rw), acc_w);
    bool read_then_write = sets.Intersect(sets.Writes(rw), acc_r);
    // Write-write: values must land in rewritten-history order, exactly as
    // the conflict DAG orders WW edges. Two directions (both
    // differential-oracle finds, DESIGN.md §9):
    //  - An *overwriting* writer (UPDATE/DELETE/DDL, directly or through a
    //    trigger/procedure body) whose writes touch anything the
    //    target/members wrote must replay, or a retroactively added
    //    INSERT keeps its values on cells the later blind overwrite
    //    should clobber.
    //  - A pure row-creating writer (INSERT) must replay only when its
    //    cells intersect the accumulated *overwriting* writes: its staged
    //    rows do not exist yet at the point the earlier overwrite replays,
    //    so leaving it in place lets that overwrite corrupt them.
    // INSERT-vs-INSERT intersections are exempt: fresh rows cannot clobber
    // each other, and joining them would drag unrelated row-creating
    // history into every replay of a table without an RI column (where
    // all row info is wildcard).
    bool write_write =
        sets.Intersect(sets.Writes(rw), rw.overwrites ? acc_w : acc_ow);
    if (rule1 || read_then_write || write_write) {
      // Predicate-region veto (DESIGN.md §15): a rule fired on this
      // granularity's sets, but if the typed row regions are provably
      // disjoint from every rule shape the collision is spurious — no
      // replay universe makes these statements touch a shared row. Running
      // the veto *after* the classic rules keeps provenance honest:
      // kPredicate means "columns/rows collided and only the regions
      // refuted it", never "trivially disjoint anyway".
      if (regions && !regions->CouldDepend(rw)) {
        record(idx, Cause::kPredicate);
        if (details) (*details)[idx - target_index] = regions->Describe(rw);
        continue;
      }
      record(idx, Cause::kMember);
      members.insert(idx);
      sets.MergeInto(&acc_w, sets.Writes(rw));
      sets.MergeInto(&acc_r, sets.Reads(rw));
      if (rw.overwrites) sets.MergeInto(&acc_ow, sets.Writes(rw));
      if (static_footprints) acc_fp.Merge(FootprintOf(rw));
      if (regions) regions->Join(rw);
    }
  }
  return members;
}

struct ColumnGranularity {
  const ColumnSet& Reads(const QueryRW& rw) const { return rw.rc; }
  const ColumnSet& Writes(const QueryRW& rw) const { return rw.wc; }
  bool WriteEmpty(const QueryRW& rw) const { return rw.wc.empty(); }
  bool Intersect(const ColumnSet& a, const ColumnSet& b) const {
    return a.Intersects(b);
  }
  void MergeInto(ColumnSet* acc, const ColumnSet& s) const { acc->Merge(s); }
};

struct RowGranularity {
  const RowSet& Reads(const QueryRW& rw) const { return rw.rr; }
  const RowSet& Writes(const QueryRW& rw) const { return rw.wr; }
  bool WriteEmpty(const QueryRW& rw) const { return rw.wr.empty(); }
  bool Intersect(const RowSet& a, const RowSet& b) const {
    return a.Intersects(b);
  }
  void MergeInto(RowSet* acc, const RowSet& s) const { acc->Merge(s); }
};

}  // namespace

ReplayPlan ComputeReplayPlan(const std::vector<QueryRW>& analysis,
                             uint64_t target_index, const QueryRW& target_rw,
                             bool target_occupies_slot,
                             const DependencyOptions& options) {
  static obs::Histogram* const plan_us =
      obs::Registry::Global().histogram("uv.depgraph.plan_us");
  obs::ScopedLatency latency(plan_us);
  obs::TraceSpan span("depgraph.plan",
                      {{"history", analysis.size()}, {"target", target_index}});
  ReplayPlan plan;

  std::set<uint64_t> members;
  const size_t suffix = analysis.size() + 1 >= target_index
                            ? analysis.size() + 1 - target_index
                            : 0;
  std::vector<Cause> col_causes, row_causes;
  std::vector<std::string> col_details, row_details;
  std::vector<Cause>* col_rec =
      options.record_exclusions ? &col_causes : nullptr;
  std::vector<Cause>* row_rec =
      options.record_exclusions ? &row_causes : nullptr;
  std::vector<std::string>* col_det =
      options.record_exclusions ? &col_details : nullptr;
  std::vector<std::string>* row_det =
      options.record_exclusions ? &row_details : nullptr;
  if (options.column_wise && options.row_wise) {
    // Theorem 20: 𝕀 = 𝕀_c ∩ 𝕀_r.
    std::set<uint64_t> col = ClosureOneGranularity(
        analysis, target_index, target_rw, target_occupies_slot,
        ColumnGranularity{}, options.static_footprints,
        options.predicate_filter, options.forced_members, col_rec, col_det);
    std::set<uint64_t> row = ClosureOneGranularity(
        analysis, target_index, target_rw, target_occupies_slot,
        RowGranularity{}, options.static_footprints, options.predicate_filter,
        options.forced_members, row_rec, row_det);
    for (uint64_t idx : col) {
      if (row.count(idx)) members.insert(idx);
    }
  } else if (options.column_wise) {
    members = ClosureOneGranularity(
        analysis, target_index, target_rw, target_occupies_slot,
        ColumnGranularity{}, options.static_footprints,
        options.predicate_filter, options.forced_members, col_rec, col_det);
  } else {
    // No dependency analysis: replay the whole suffix (baseline behaviour).
    // Same slot-occupancy rule as above: for add, log[target_index] is part
    // of the suffix and replays after the inserted query.
    for (uint64_t idx = target_index; idx <= analysis.size(); ++idx) {
      if (target_occupies_slot && idx == target_index) continue;
      members.insert(idx);
    }
  }

  plan.replay_indices.assign(members.begin(), members.end());

  if (options.record_exclusions) {
    // Merge the per-granularity causes into one verdict per suffix
    // position. Column causes dominate; a column member the row closure
    // rejected is the Theorem-20 intersection pruning it.
    plan.exclusions_base = target_index;
    plan.exclusions.assign(suffix, PlanExclusion::kMember);
    plan.cluster_ids.assign(suffix, -1);
    plan.exclusion_detail.assign(suffix, std::string());
    int32_t next_cluster = 0;
    for (size_t j = 0; j < suffix; ++j) {
      uint64_t idx = target_index + j;
      if (col_causes.empty()) {
        // Baseline full-suffix plan: everything but the target slot replays.
        plan.exclusions[j] = members.count(idx) ? PlanExclusion::kMember
                                                : PlanExclusion::kTargetSlot;
        if (members.count(idx)) plan.cluster_ids[j] = next_cluster++;
        continue;
      }
      switch (col_causes[j]) {
        case Cause::kTargetSlot:
          plan.exclusions[j] = PlanExclusion::kTargetSlot;
          break;
        case Cause::kReadOnly:
          plan.exclusions[j] = PlanExclusion::kReadOnly;
          break;
        case Cause::kStatic:
          plan.exclusions[j] = PlanExclusion::kStaticDisjoint;
          break;
        case Cause::kPredicate:
          plan.exclusions[j] = PlanExclusion::kPredicateDisjoint;
          if (j < col_details.size()) {
            plan.exclusion_detail[j] = col_details[j];
          }
          break;
        case Cause::kNoRule:
          plan.exclusions[j] = PlanExclusion::kColumnDisjoint;
          break;
        case Cause::kMember:
          plan.cluster_ids[j] = next_cluster++;
          if (members.count(idx)) {
            plan.exclusions[j] = PlanExclusion::kMember;
          } else if (j < row_causes.size() &&
                     row_causes[j] == Cause::kPredicate) {
            // Column member pruned by the *row* pass's predicate tier:
            // surface the stronger, evidence-carrying verdict.
            plan.exclusions[j] = PlanExclusion::kPredicateDisjoint;
            if (j < row_details.size()) {
              plan.exclusion_detail[j] = row_details[j];
            }
          } else {
            plan.exclusions[j] = PlanExclusion::kClusterExcluded;
          }
          break;
      }
    }
  }

  // §4.4 table classification over the replayed queries + the target.
  auto classify = [&](const QueryRW& rw) {
    plan.mutated_tables.insert(rw.write_tables.begin(), rw.write_tables.end());
    for (const auto& t : rw.read_tables) plan.consulted_tables.insert(t);
    if (rw.is_ddl) plan.needs_schema_rebuild = true;
  };
  classify(target_rw);
  for (uint64_t idx : plan.replay_indices) classify(analysis[idx - 1]);
  for (const auto& t : plan.mutated_tables) plan.consulted_tables.erase(t);
  static obs::Counter* const plan_members =
      obs::Registry::Global().counter("uv.depgraph.plan.members");
  plan_members->Add(plan.replay_indices.size());
  return plan;
}

std::vector<std::vector<uint32_t>> BuildConflictDag(
    const std::vector<const QueryRW*>& ordered) {
  obs::TraceSpan span("depgraph.conflict_dag", {{"queries", ordered.size()}});
  // Per (table-column) cell tracking. Wildcard accesses touch every RI
  // value of the column; a wildcard write acts as a barrier.
  struct ColState {
    int last_wild_writer = -1;
    std::vector<int> wild_readers;                  // since last wild write
    std::map<std::string, int> last_writer;         // RI value -> position
    std::map<std::string, std::vector<int>> readers_since_write;
  };
  std::map<std::string, ColState> cols;

  // Row values of query q for table t (from its rr/wr maps, whose keys are
  // "t.<ri_col>" or "_S.t").
  struct RowVals {
    bool wildcard = true;
    const std::set<std::string>* values = nullptr;
  };
  auto row_vals_for = [](const RowSet& rs, const std::string& table,
                         bool is_schema) -> RowVals {
    RowVals rv;
    for (const auto& [col, vals] : rs.cols) {
      bool schema_key = col.rfind("_S.", 0) == 0;
      if (schema_key != is_schema) continue;
      std::string t = is_schema ? col.substr(3) : col.substr(0, col.find('.'));
      if (t != table) continue;
      rv.wildcard = vals.wildcard;
      rv.values = &vals.values;
      return rv;
    }
    return rv;  // no row info recorded: wildcard (conservative)
  };

  std::vector<std::vector<uint32_t>> deps(ordered.size());
  for (size_t i = 0; i < ordered.size(); ++i) {
    const QueryRW& rw = *ordered[i];
    std::set<uint32_t> my_deps;
    auto add_dep = [&](int pos) {
      if (pos >= 0 && pos != int(i)) my_deps.insert(uint32_t(pos));
    };

    auto table_of = [](const std::string& col) {
      if (col.rfind("_S.", 0) == 0) return col.substr(3);
      return col.substr(0, col.find('.'));
    };

    // Reads first (RW dependencies onto earlier writers).
    for (const auto& c : rw.rc.items) {
      ColState& st = cols[c];
      bool is_schema = c.rfind("_S.", 0) == 0;
      RowVals rv = row_vals_for(rw.rr, table_of(c), is_schema);
      add_dep(st.last_wild_writer);
      if (rv.wildcard || !rv.values) {
        for (const auto& [v, w] : st.last_writer) {
          (void)v;
          add_dep(w);
        }
        st.wild_readers.push_back(int(i));
      } else {
        for (const auto& v : *rv.values) {
          auto it = st.last_writer.find(v);
          if (it != st.last_writer.end()) add_dep(it->second);
          st.readers_since_write[v].push_back(int(i));
        }
      }
    }
    // Writes (WR onto earlier readers, WW onto earlier writers).
    for (const auto& c : rw.wc.items) {
      ColState& st = cols[c];
      bool is_schema = c.rfind("_S.", 0) == 0;
      RowVals rv = row_vals_for(rw.wr, table_of(c), is_schema);
      add_dep(st.last_wild_writer);
      if (rv.wildcard || !rv.values) {
        for (const auto& [v, w] : st.last_writer) {
          (void)v;
          add_dep(w);
        }
        for (int r : st.wild_readers) add_dep(r);
        for (const auto& [v, readers] : st.readers_since_write) {
          (void)v;
          for (int r : readers) add_dep(r);
        }
        st.last_writer.clear();
        st.readers_since_write.clear();
        st.wild_readers.clear();
        st.last_wild_writer = int(i);
      } else {
        for (int r : st.wild_readers) add_dep(r);
        for (const auto& v : *rv.values) {
          auto it = st.last_writer.find(v);
          if (it != st.last_writer.end()) add_dep(it->second);
          auto rit = st.readers_since_write.find(v);
          if (rit != st.readers_since_write.end()) {
            for (int r : rit->second) add_dep(r);
            rit->second.clear();
          }
          st.last_writer[v] = int(i);
        }
      }
    }
    deps[i].assign(my_deps.begin(), my_deps.end());
  }
  static obs::Counter* const conflict_edges =
      obs::Registry::Global().counter("uv.depgraph.conflict.edges");
  size_t edges = 0;
  for (const auto& d : deps) edges += d.size();
  conflict_edges->Add(edges);
  return deps;
}

}  // namespace ultraverse::core
