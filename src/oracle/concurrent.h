#ifndef ULTRAVERSE_ORACLE_CONCURRENT_H_
#define ULTRAVERSE_ORACLE_CONCURRENT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ultraverse::oracle {

/// Concurrent MVCC fuzzing (DESIGN.md §14): writer threads commit random
/// DML through the live facade while analyst threads pin shared history
/// snapshots and run analyze-only what-ifs against them. The oracle
/// invariant is schedule independence — for every snapshot an analyst
/// pinned, the selective analysis and the full-naive reference computed at
/// that SAME snapshot must fingerprint identically, no matter how many
/// commits raced past in the meantime. A divergence means a snapshot
/// leaked live state (the stale-cache/epoch bug class this suite guards).
struct ConcurrentFuzzOptions {
  uint64_t seed = 1;
  int writer_threads = 2;
  int analyst_threads = 4;
  /// Commits issued by each writer thread (all validated DML).
  size_t commits_per_writer = 32;
  /// Analyses run by each analyst thread (each = selective + full-naive
  /// pair at one shared snapshot).
  size_t analyses_per_analyst = 8;
  /// Statements seeded into the history before the race starts.
  size_t history_statements = 24;
  /// Also exercise the publish path: analysts occasionally attempt a real
  /// WhatIf() publish, which must either succeed or return kAborted
  /// (first committer wins) — any other outcome is a failure.
  bool try_publish = true;
  /// Optional progress sink (one line per event; CLI wires this to stderr).
  std::function<void(const std::string&)> progress;
};

struct ConcurrentFuzzReport {
  size_t commits = 0;            // writer commits that succeeded
  size_t analyses = 0;           // selective/full-naive pairs compared
  size_t snapshots_pinned = 0;   // distinct epochs analysts pinned
  size_t cache_hits = 0;         // WhatIfAnalyze served from the result cache
  size_t publishes = 0;          // WhatIf() publishes that landed
  size_t publish_aborts = 0;     // kAborted (lost the epoch race) — expected
  size_t divergences = 0;        // fingerprint mismatches (failures)
  std::vector<std::string> failures;  // one description per failure
};

/// Runs the concurrent oracle with a fixed seed. Thread interleaving is
/// nondeterministic by design; the checked invariant is not. Returns the
/// activity report; report.divergences == 0 and report.failures.empty()
/// means the run was clean.
ConcurrentFuzzReport ConcurrentFuzz(const ConcurrentFuzzOptions& options);

}  // namespace ultraverse::oracle

#endif  // ULTRAVERSE_ORACLE_CONCURRENT_H_
