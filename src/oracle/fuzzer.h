#ifndef ULTRAVERSE_ORACLE_FUZZER_H_
#define ULTRAVERSE_ORACLE_FUZZER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "oracle/oracle.h"

namespace ultraverse::oracle {

/// Randomized what-if fuzzing (SQLancer-style differential testing): random
/// schemas + interleaved DML/DDL histories + random retroactive ops, every
/// case checked against the full-naive reference in every mode pair.
struct FuzzOptions {
  uint64_t seed = 1;
  /// Number of random cases; generation is deterministic per (seed, case#).
  size_t histories = 200;
  /// Wall-clock budget in seconds; 0 = unbounded (run all `histories`).
  double seconds = 0;
  std::vector<ModeConfig> modes = StandardModeConfigs();
  /// Shrink failures to a minimal reproducing case before reporting.
  bool shrink = true;
  size_t min_statements = 6;
  size_t max_statements = 22;
  /// Also run the static-soundness oracle on every generated history:
  /// replay it through a SoundnessChecker and treat any dynamic⊄static
  /// containment breach as a failure (reported with mode
  /// "static-containment" and shrunk like a divergence).
  bool check_static = false;
  /// Predicate-region soundness (`--check-predicates`): run the same
  /// static-soundness oracle (the SoundnessChecker's ContainmentBreach
  /// always includes the §15 row-region check), but report region breaches
  /// distinctly with mode "predicate-containment" and tally them in
  /// FuzzReport::predicate_*. Either flag runs the oracle once per case.
  bool check_predicates = false;
  /// Cross-engine differential: run every generated case through
  /// CheckCaseExecDiff (tree walker vs bytecode VM, build + what-if
  /// replay). Divergences are shrunk and reported with mode "exec-diff".
  bool exec_diff = false;
  /// Explain-soundness oracle: run every generated case through
  /// CheckCaseExplain (full-detail report, counterfactual forced-replay of
  /// pruned transactions, hash-jump digest evidence). Unsound prune
  /// reasons are shrunk and reported with mode "explain".
  bool check_explain = false;
  /// Optional progress sink (one line per event; CLI wires this to stderr).
  std::function<void(const std::string&)> progress;
};

struct FuzzFailure {
  uint64_t case_number = 0;  // which generated case (with FuzzOptions::seed)
  WhatIfCase shrunk;         // minimal reproducing case (shrink=true)
  OracleResult result;       // divergence details of the shrunk case
};

struct FuzzReport {
  size_t cases_run = 0;
  size_t checks_run = 0;     // case × mode pairs executed
  size_t divergences = 0;
  /// Static-soundness oracle activity (check_static=true): histories
  /// checked and containment breaches found (also counted as failures).
  size_t containment_checked = 0;
  size_t containment_violations = 0;
  /// Predicate-region oracle activity (check_predicates=true): histories
  /// checked and row-region containment breaches found. Region breaches
  /// also count into containment_violations (they are containment
  /// breaches), so the CLI exit condition needs no extra term.
  size_t predicate_checked = 0;
  size_t predicate_violations = 0;
  /// Explain oracle activity (check_explain=true): cases checked and
  /// unsound prune reasons found (also counted as failures).
  size_t explain_checked = 0;
  size_t explain_violations = 0;
  std::vector<FuzzFailure> failures;
};

/// Deterministically generates the `case_number`-th random case for `seed`.
/// Every history statement is validated against a shadow database while
/// generating, so Universe::Build on the result always succeeds.
WhatIfCase GenerateCase(uint64_t seed, uint64_t case_number);

FuzzReport Fuzz(const FuzzOptions& options);

}  // namespace ultraverse::oracle

#endif  // ULTRAVERSE_ORACLE_FUZZER_H_
