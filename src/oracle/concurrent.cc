#include "oracle/concurrent.h"

#include <atomic>
#include <mutex>
#include <random>
#include <set>
#include <sstream>
#include <thread>

#include "core/ultraverse.h"
#include "util/status.h"

namespace ultraverse::oracle {
namespace {

using core::HistorySnapshot;
using core::RetroOp;
using core::SystemMode;
using core::Ultraverse;
using core::WhatIfAnalysis;

/// Shared race state: the facade under test plus thread-safe report
/// accumulation. Writers and analysts only ever touch the facade through
/// its public API — the whole point is that the facade's own locking and
/// epoch discipline make that safe.
struct RaceState {
  explicit RaceState(Ultraverse::Options opts) : uv(std::move(opts)) {}

  Ultraverse uv;
  uint64_t seeded_len = 0;  // history length before the race starts

  /// Lowest epoch at which a published what-if may have landed. A publish
  /// swaps the live state to the alternate universe while the raw log
  /// keeps the original history (the WAL marker carries the rewrite), so
  /// from that epoch on the log no longer re-derives the live state and
  /// the selective-vs-full-naive fingerprint comparison is undefined.
  /// Snapshots pinned at epochs strictly below the fence are publish-free
  /// and must compare equal.
  std::atomic<uint64_t> publish_fence{UINT64_MAX};

  std::mutex mu;  // guards everything below
  ConcurrentFuzzReport report;
  std::set<uint64_t> epochs_pinned;

  void Fail(const std::string& what) {
    std::lock_guard<std::mutex> g(mu);
    ++report.divergences;
    report.failures.push_back(what);
  }
};

/// Writer thread: commits DML that is valid regardless of interleaving.
/// Updates touch the seeded id range; inserts use a per-writer id stripe so
/// primary keys never collide across threads.
void WriterLoop(RaceState* st, const ConcurrentFuzzOptions& opts, int wid) {
  std::mt19937_64 rng(opts.seed * 7919 + uint64_t(wid));
  uint64_t next_fresh_id = 1000 + uint64_t(wid) * 100000;
  size_t committed = 0;
  while (committed < opts.commits_per_writer) {
    std::string sql;
    switch (rng() % 4) {
      case 0:
        sql = "UPDATE a SET v = v + " + std::to_string(1 + rng() % 9) +
              " WHERE id = " + std::to_string(1 + rng() % 8);
        break;
      case 1:
        sql = "UPDATE b SET w = w * 2 WHERE id = " +
              std::to_string(1 + rng() % 8);
        break;
      case 2:
        sql = "INSERT INTO a (id, v) VALUES (" +
              std::to_string(next_fresh_id++) + ", " +
              std::to_string(rng() % 100) + ")";
        break;
      default:
        // Deleting an id from the writer's own stripe: either gone already
        // (0 rows) or removes a row only this writer ever wrote.
        sql = "DELETE FROM a WHERE id = " +
              std::to_string(1000 + uint64_t(wid) * 100000 + rng() % 50);
        break;
    }
    auto r = st->uv.ExecuteSql(sql);
    if (!r.ok()) {
      st->Fail("writer commit failed: " + r.status().ToString() + " [" +
               sql + "]");
      return;
    }
    ++committed;
  }
  std::lock_guard<std::mutex> g(st->mu);
  st->report.commits += committed;
}

/// Analyst thread: pins a shared snapshot, runs the selective analysis and
/// the full-naive reference against the SAME snapshot, and requires equal
/// fingerprints — the schedule-independence invariant. Occasionally
/// exercises the memoized entry point and the publish path.
void AnalystLoop(RaceState* st, const ConcurrentFuzzOptions& opts, int aid) {
  std::mt19937_64 rng(opts.seed * 104729 + uint64_t(aid));
  for (size_t i = 0; i < opts.analyses_per_analyst; ++i) {
    auto snap_r = st->uv.SnapshotHistory();
    if (!snap_r.ok()) {
      st->Fail("SnapshotHistory: " + snap_r.status().ToString());
      return;
    }
    std::shared_ptr<const HistorySnapshot> snap = *snap_r;
    {
      std::lock_guard<std::mutex> g(st->mu);
      st->epochs_pinned.insert(snap->epoch);
    }
    // Target only the seeded DML prefix (entries 3..seeded_len): always
    // present in every snapshot, never a CREATE TABLE.
    RetroOp op;
    op.kind = RetroOp::Kind::kRemove;
    op.index = 3 + rng() % (st->seeded_len - 2);

    auto sel = st->uv.WhatIfAnalyzeAt(*snap, op, SystemMode::kTD, false);
    auto ref = st->uv.WhatIfAnalyzeAt(*snap, op, SystemMode::kT, true);
    if (!sel.ok() || !ref.ok()) {
      st->Fail("analyze failed: sel=" + sel.status().ToString() +
               " ref=" + ref.status().ToString());
      return;
    }
    {
      std::lock_guard<std::mutex> g(st->mu);
      ++st->report.analyses;
    }
    // The fence can move while we analyze; re-check before judging.
    if (snap->epoch < st->publish_fence.load() &&
        sel->fingerprint != ref->fingerprint) {
      std::ostringstream os;
      os << "divergence at epoch " << snap->epoch << " horizon "
         << snap->horizon << " op remove " << op.index
         << ": selective " << sel->fingerprint << " != full-naive "
         << ref->fingerprint;
      st->Fail(os.str());
      return;
    }

    // Memoized path: same op twice in a row — the second answer must come
    // from the result cache unless a commit advanced the epoch in between.
    if (rng() % 4 == 0) {
      auto first = st->uv.WhatIfAnalyze(op, SystemMode::kTD);
      auto second = st->uv.WhatIfAnalyze(op, SystemMode::kTD);
      if (first.ok() && second.ok()) {
        if (second->cache_hit) {
          std::lock_guard<std::mutex> g(st->mu);
          ++st->report.cache_hits;
        }
        if (second->cache_hit &&
            second->fingerprint != first->fingerprint) {
          st->Fail("result cache returned a different fingerprint for the "
                   "same (epoch, op)");
          return;
        }
      }
    }

    // Publish path: must land or lose the epoch race cleanly. The fence
    // is lowered BEFORE the attempt: the publish lands at whatever epoch
    // its internal snapshot pins, which is at least the epoch read here.
    if (opts.try_publish && rng() % 4 == 0) {
      uint64_t pre = st->uv.history_epoch();
      uint64_t cur = st->publish_fence.load();
      while (pre < cur &&
             !st->publish_fence.compare_exchange_weak(cur, pre)) {
      }
      auto pub = st->uv.WhatIf(op, SystemMode::kTD);
      std::lock_guard<std::mutex> g(st->mu);
      if (pub.ok()) {
        ++st->report.publishes;
      } else if (pub.status().code() == StatusCode::kAborted) {
        ++st->report.publish_aborts;
      } else {
        ++st->report.divergences;
        st->report.failures.push_back("publish failed with non-abort: " +
                                      pub.status().ToString());
        return;
      }
    }

    if (opts.progress && i + 1 == opts.analyses_per_analyst) {
      opts.progress("analyst " + std::to_string(aid) + " done");
    }
  }
}

}  // namespace

ConcurrentFuzzReport ConcurrentFuzz(const ConcurrentFuzzOptions& options) {
  Ultraverse::Options uv_opts;
  uv_opts.rng_seed = options.seed;
  RaceState st(uv_opts);

  // Seed schema + history. Everything here is committed before any thread
  // starts, so every snapshot any analyst pins contains this prefix.
  auto seed_sql = [&](const std::string& sql) {
    auto r = st.uv.ExecuteSql(sql);
    if (!r.ok()) {
      st.Fail("seed failed: " + r.status().ToString() + " [" + sql + "]");
      return false;
    }
    return true;
  };
  if (!seed_sql("CREATE TABLE a (id INT PRIMARY KEY, v INT)")) {
    return st.report;
  }
  if (!seed_sql("CREATE TABLE b (id INT PRIMARY KEY, w INT)")) {
    return st.report;
  }
  std::mt19937_64 rng(options.seed);
  for (size_t i = 0; i < options.history_statements; ++i) {
    std::string sql;
    if (i < 8) {
      sql = "INSERT INTO a (id, v) VALUES (" + std::to_string(i + 1) + ", " +
            std::to_string(rng() % 50) + ")";
    } else if (i < 16) {
      sql = "INSERT INTO b (id, w) VALUES (" + std::to_string(i - 7) + ", " +
            std::to_string(1 + rng() % 9) + ")";
    } else if (rng() % 2 == 0) {
      sql = "UPDATE a SET v = v + " + std::to_string(1 + rng() % 5) +
            " WHERE id = " + std::to_string(1 + rng() % 8);
    } else {
      sql = "UPDATE b SET w = w + " + std::to_string(1 + rng() % 3) +
            " WHERE id = " + std::to_string(1 + rng() % 8);
    }
    if (!seed_sql(sql)) return st.report;
  }
  st.seeded_len = st.uv.log()->last_index();

  std::vector<std::thread> threads;
  for (int w = 0; w < options.writer_threads; ++w) {
    threads.emplace_back(WriterLoop, &st, options, w);
  }
  for (int a = 0; a < options.analyst_threads; ++a) {
    threads.emplace_back(AnalystLoop, &st, options, a);
  }
  for (auto& t : threads) t.join();

  st.report.snapshots_pinned = st.epochs_pinned.size();
  return st.report;
}

}  // namespace ultraverse::oracle
