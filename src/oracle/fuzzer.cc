#include "oracle/fuzzer.h"

#include <chrono>
#include <random>
#include <sstream>

#include "sqldb/parser.h"

namespace ultraverse::oracle {
namespace {

using Rand = std::mt19937_64;

size_t Pick(Rand& rng, size_t n) { return size_t(rng() % n); }
bool Chance(Rand& rng, double p) {
  return std::uniform_real_distribution<double>(0, 1)(rng) < p;
}

// --- schema model ----------------------------------------------------------

struct ColModel {
  std::string name;
  sql::DataType type;
  bool not_null = false;
};

struct TableModel {
  std::string name;
  bool auto_inc_pk = false;   // leading `id INT PRIMARY KEY AUTO_INCREMENT`
  std::vector<ColModel> cols; // value columns (excluding the pk)
};

const char* TypeSql(sql::DataType t) {
  switch (t) {
    case sql::DataType::kInt: return "INT";
    case sql::DataType::kDouble: return "DOUBLE";
    case sql::DataType::kString: return "VARCHAR";
    case sql::DataType::kBool: return "BOOL";
    default: return "INT";
  }
}

/// Random literal of `type`. Integers deliberately include the 2^53
/// neighborhood where doubles go sparse — the precision regime the
/// Value::Compare / EncodeTo wide-integer fixes cover.
std::string Literal(Rand& rng, sql::DataType type, bool allow_null) {
  if (allow_null && Chance(rng, 0.08)) return "NULL";
  switch (type) {
    case sql::DataType::kInt: {
      if (Chance(rng, 0.15)) {
        const int64_t base = int64_t(1) << 53;
        int64_t v = base + int64_t(Pick(rng, 5)) - 2;
        if (Chance(rng, 0.5)) v = -v;
        return std::to_string(v);
      }
      return std::to_string(int64_t(Pick(rng, 200)) - 100);
    }
    case sql::DataType::kDouble: {
      double v = (int64_t(Pick(rng, 400)) - 200) / 4.0;
      std::ostringstream os;
      os << v;
      if (os.str().find('.') == std::string::npos) return os.str() + ".0";
      return os.str();
    }
    case sql::DataType::kString:
      return "'s" + std::to_string(Pick(rng, 40)) + "'";
    case sql::DataType::kBool:
      return Chance(rng, 0.5) ? "TRUE" : "FALSE";
    default:
      return "NULL";
  }
}

std::string Comparison(Rand& rng, const TableModel& t) {
  const ColModel& c = t.cols[Pick(rng, t.cols.size())];
  static const char* ops[] = {"=", "<", ">", "<=", ">=", "<>"};
  const char* op = (c.type == sql::DataType::kString ||
                    c.type == sql::DataType::kBool)
                       ? "="
                       : ops[Pick(rng, 6)];
  return c.name + " " + op + " " + Literal(rng, c.type, false);
}

/// Right-hand side of SET col = ...: literal, another column, or col+lit.
std::string SetExpr(Rand& rng, const TableModel& t, const ColModel& target) {
  if (target.type == sql::DataType::kInt ||
      target.type == sql::DataType::kDouble) {
    double roll = std::uniform_real_distribution<double>(0, 1)(rng);
    if (roll < 0.4) return Literal(rng, target.type, !target.not_null);
    if (roll < 0.7) return target.name + " + " + Literal(rng, target.type, false);
    // Another numeric column, when one exists.
    for (const auto& c : t.cols) {
      if (&c != &target && c.type == target.type) return c.name;
    }
    return Literal(rng, target.type, !target.not_null);
  }
  return Literal(rng, target.type, !target.not_null);
}

// --- statement generators --------------------------------------------------

std::string GenCreateTable(Rand& rng, TableModel* out, int table_number) {
  out->name = "t" + std::to_string(table_number);
  out->auto_inc_pk = Chance(rng, 0.7);
  size_t ncols = 2 + Pick(rng, 3);
  static const sql::DataType kTypes[] = {
      sql::DataType::kInt, sql::DataType::kInt, sql::DataType::kDouble,
      sql::DataType::kString, sql::DataType::kBool};
  std::ostringstream os;
  os << "CREATE TABLE " << out->name << " (";
  bool first = true;
  if (out->auto_inc_pk) {
    os << "id INT PRIMARY KEY AUTO_INCREMENT";
    first = false;
  }
  for (size_t i = 0; i < ncols; ++i) {
    ColModel c;
    c.name = "c" + std::to_string(i);
    c.type = kTypes[Pick(rng, 5)];
    c.not_null = Chance(rng, 0.2);
    if (!first) os << ", ";
    first = false;
    os << c.name << " " << TypeSql(c.type);
    if (c.not_null) os << " NOT NULL";
    out->cols.push_back(std::move(c));
  }
  os << ")";
  return os.str();
}

std::string GenInsert(Rand& rng, const TableModel& t) {
  std::ostringstream os;
  os << "INSERT INTO " << t.name << " (";
  for (size_t i = 0; i < t.cols.size(); ++i) {
    if (i) os << ", ";
    os << t.cols[i].name;
  }
  os << ") VALUES ";
  size_t nrows = 1 + (Chance(rng, 0.3) ? Pick(rng, 3) : 0);
  for (size_t r = 0; r < nrows; ++r) {
    if (r) os << ", ";
    os << "(";
    for (size_t i = 0; i < t.cols.size(); ++i) {
      if (i) os << ", ";
      os << Literal(rng, t.cols[i].type, !t.cols[i].not_null);
    }
    os << ")";
  }
  return os.str();
}

std::string GenUpdate(Rand& rng, const TableModel& t) {
  const ColModel& target = t.cols[Pick(rng, t.cols.size())];
  std::ostringstream os;
  os << "UPDATE " << t.name << " SET " << target.name << " = "
     << SetExpr(rng, t, target);
  if (Chance(rng, 0.85)) os << " WHERE " << Comparison(rng, t);
  return os.str();
}

std::string GenDelete(Rand& rng, const TableModel& t) {
  std::ostringstream os;
  os << "DELETE FROM " << t.name;
  if (Chance(rng, 0.9)) os << " WHERE " << Comparison(rng, t);
  return os.str();
}

/// INSERT .. SELECT between same-typed single columns (a read feeding a
/// later write: the dependency shape row-wise pruning must respect).
std::string GenInsertSelect(Rand& rng, const TableModel& dst,
                            const TableModel& src) {
  // An AUTO_INCREMENT destination makes the statement order-sensitive: the
  // unordered SELECT's scan order decides which fresh id each inserted row
  // receives, and selective staging (new rows appended, original rowids
  // preserved) legitimately scans in a different physical order than a
  // naive from-scratch rebuild. That is nondeterminism in the *query*, not
  // a replay bug — generate only order-insensitive destinations, the same
  // way the generator already avoids unrecorded NOW()/RAND() (DESIGN.md
  // §9).
  if (dst.auto_inc_pk) return "";
  for (const auto& dc : dst.cols) {
    if (dc.not_null) continue;  // other dst columns become NULL
    for (const auto& sc : src.cols) {
      if (sc.type != dc.type) continue;
      bool dst_ok = true;
      for (const auto& other : dst.cols) {
        if (other.not_null) dst_ok = false;
      }
      if (!dst_ok) break;
      std::ostringstream os;
      os << "INSERT INTO " << dst.name << " (" << dc.name << ") SELECT "
         << sc.name << " FROM " << src.name << " WHERE "
         << Comparison(rng, src);
      return os.str();
    }
  }
  return "";
}

std::string GenCreateIndex(Rand& rng, const TableModel& t, int n) {
  const ColModel& c = t.cols[Pick(rng, t.cols.size())];
  return "CREATE INDEX idx" + std::to_string(n) + " ON " + t.name + " (" +
         c.name + ")";
}

/// AFTER-DML trigger whose body writes a *different* table (self-targeting
/// triggers would recurse). Body stays NEW/OLD-free: the divergence surface
/// under test is replay scheduling, not trigger row binding.
std::string GenCreateTrigger(Rand& rng, const TableModel& on,
                             const TableModel& body_target, int n) {
  static const char* events[] = {"INSERT", "UPDATE", "DELETE"};
  const char* event = events[Pick(rng, 3)];
  for (const auto& c : body_target.cols) {
    if (c.type == sql::DataType::kInt || c.type == sql::DataType::kDouble) {
      return std::string("CREATE TRIGGER trg") + std::to_string(n) +
             " AFTER " + event + " ON " + on.name + " FOR EACH ROW UPDATE " +
             body_target.name + " SET " + c.name + " = " + c.name + " + 1";
    }
  }
  return "";
}

// --- case generator --------------------------------------------------------

/// Executes `sql` against the shadow database; true when it parses and
/// executes cleanly (the generated history must be a *valid* history — the
/// engine tolerates alternate-universe failures, but the original timeline
/// committed every statement).
bool ShadowOk(sql::Database* shadow, const std::string& sql,
              uint64_t commit_index) {
  if (sql.empty()) return false;
  return shadow->ExecuteSql(sql, commit_index).ok();
}

}  // namespace

WhatIfCase GenerateCase(uint64_t seed, uint64_t case_number) {
  // splitmix-style mix so (seed, case#) streams are independent.
  uint64_t mixed = seed + case_number * 0x9E3779B97F4A7C15ull;
  mixed ^= mixed >> 30;
  mixed *= 0xBF58476D1CE4E5B9ull;
  mixed ^= mixed >> 27;
  Rand rng(mixed);

  WhatIfCase c;
  sql::Database shadow;
  uint64_t commit = 0;
  std::vector<TableModel> tables;
  std::vector<uint64_t> dml_indices;  // 1-based history positions of DML
  int index_count = 0, trigger_count = 0;

  auto commit_stmt = [&](const std::string& sql) {
    if (!ShadowOk(&shadow, sql, ++commit)) {
      --commit;
      return false;
    }
    c.history.push_back(sql);
    return true;
  };

  size_t ntables = 1 + Pick(rng, 3);
  for (size_t i = 0; i < ntables; ++i) {
    TableModel t;
    std::string sql = GenCreateTable(rng, &t, int(i));
    if (commit_stmt(sql)) tables.push_back(std::move(t));
  }
  // Seed rows so early UPDATE/DELETE statements have something to chew on.
  for (const auto& t : tables) {
    if (commit_stmt(GenInsert(rng, t))) {
      dml_indices.push_back(c.history.size());
    }
  }
  if (Chance(rng, 0.3) && !tables.empty()) {
    commit_stmt(GenCreateIndex(rng, tables[Pick(rng, tables.size())],
                               index_count++));
  }
  if (Chance(rng, 0.25) && tables.size() >= 2) {
    size_t on = Pick(rng, tables.size());
    size_t tgt = (on + 1 + Pick(rng, tables.size() - 1)) % tables.size();
    commit_stmt(GenCreateTrigger(rng, tables[on], tables[tgt],
                                 trigger_count++));
  }

  size_t body = c.history.size() + 4 + Pick(rng, 17);
  size_t attempts = 0;
  while (c.history.size() < body && attempts++ < body * 8) {
    const TableModel& t = tables[Pick(rng, tables.size())];
    double roll = std::uniform_real_distribution<double>(0, 1)(rng);
    std::string sql;
    if (roll < 0.40) {
      sql = GenInsert(rng, t);
    } else if (roll < 0.72) {
      sql = GenUpdate(rng, t);
    } else if (roll < 0.84) {
      sql = GenDelete(rng, t);
    } else if (roll < 0.94 && tables.size() >= 2) {
      const TableModel& src =
          tables[(Pick(rng, tables.size() - 1) + 1) % tables.size()];
      sql = GenInsertSelect(rng, t, src);
      if (sql.empty()) sql = GenUpdate(rng, t);
    } else if (tables.size() >= 2) {
      size_t on = Pick(rng, tables.size());
      size_t tgt = (on + 1 + Pick(rng, tables.size() - 1)) % tables.size();
      sql = GenCreateTrigger(rng, tables[on], tables[tgt], trigger_count++);
      if (sql.empty()) sql = GenInsert(rng, t);
    } else {
      sql = GenInsert(rng, t);
    }
    if (commit_stmt(sql)) dml_indices.push_back(c.history.size());
  }

  // --- retroactive op ------------------------------------------------------
  double roll = std::uniform_real_distribution<double>(0, 1)(rng);
  if (roll < 0.45 || dml_indices.empty()) {
    c.kind = core::RetroOp::Kind::kRemove;
    // Mostly remove DML; occasionally a DDL statement (index/trigger
    // removal exercises catalog adoption + the schema-rebuild path).
    if (!dml_indices.empty() && !Chance(rng, 0.15)) {
      c.index = dml_indices[Pick(rng, dml_indices.size())];
    } else {
      c.index = 1 + Pick(rng, c.history.size());
    }
  } else if (roll < 0.80 || dml_indices.empty()) {
    c.kind = core::RetroOp::Kind::kAdd;
    c.index = 1 + Pick(rng, c.history.size() + 1);
    const TableModel& t = tables[Pick(rng, tables.size())];
    c.new_sql = Chance(rng, 0.6) ? GenInsert(rng, t) : GenUpdate(rng, t);
  } else {
    c.kind = core::RetroOp::Kind::kChange;
    c.index = dml_indices[Pick(rng, dml_indices.size())];
    const TableModel& t = tables[Pick(rng, tables.size())];
    double r2 = std::uniform_real_distribution<double>(0, 1)(rng);
    c.new_sql = r2 < 0.4   ? GenInsert(rng, t)
                : r2 < 0.8 ? GenUpdate(rng, t)
                           : GenDelete(rng, t);
  }
  return c;
}

FuzzReport Fuzz(const FuzzOptions& options) {
  FuzzReport report;
  auto start = std::chrono::steady_clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  auto say = [&](const std::string& msg) {
    if (options.progress) options.progress(msg);
  };

  for (uint64_t n = 0;; ++n) {
    if (options.histories && report.cases_run >= options.histories) break;
    if (options.seconds > 0 && elapsed() >= options.seconds) break;
    if (!options.histories && options.seconds <= 0) break;  // nothing to do

    WhatIfCase c = GenerateCase(options.seed, n);
    ++report.cases_run;
    if (options.check_static || options.check_predicates) {
      Result<std::vector<std::string>> contained =
          CheckStaticContainment(c.history);
      ++report.containment_checked;
      if (options.check_predicates) ++report.predicate_checked;
      if (!contained.ok()) {
        // The history built once (generator invariant) but the containment
        // universe failed: a fuzzer/oracle bug, not a soundness breach.
        say("case " + std::to_string(n) +
            " [static-containment] error: " + contained.status().ToString());
      } else if (!contained->empty()) {
        ++report.containment_violations;
        // Row-region breaches (ContainmentBreach's §15 check) get their own
        // mode tag so `--check-predicates` failures are distinguishable
        // from classic set-containment breaches.
        bool region_breach = (*contained)[0].find(
                                 "not contained in static region") !=
                             std::string::npos;
        if (region_breach) ++report.predicate_violations;
        const char* mode =
            region_breach ? "predicate-containment" : "static-containment";
        say("case " + std::to_string(n) + " [" + mode + "] BREACH: " +
            (*contained)[0]);
        auto still_breaches = [](const WhatIfCase& cand) {
          Result<std::vector<std::string>> v =
              CheckStaticContainment(cand.history);
          return v.ok() && !v->empty();
        };
        FuzzFailure failure;
        failure.case_number = n;
        failure.shrunk =
            options.shrink ? ShrinkCaseIf(c, still_breaches) : c;
        failure.result.ok = false;
        failure.result.mode = mode;
        Result<std::vector<std::string>> shrunk_v =
            CheckStaticContainment(failure.shrunk.history);
        failure.result.error =
            shrunk_v.ok() && !shrunk_v->empty()
                ? (*shrunk_v)[0]
                : (*contained)[0];
        report.failures.push_back(std::move(failure));
        continue;  // a breached case's divergences add no information
      }
    }
    if (options.check_explain) {
      Result<std::vector<std::string>> sound = CheckCaseExplain(c);
      ++report.explain_checked;
      if (!sound.ok()) {
        // The history built once (generator invariant) but the explain
        // universe failed: a fuzzer/oracle bug, not an unsound reason.
        say("case " + std::to_string(n) +
            " [explain] error: " + sound.status().ToString());
      } else if (!sound->empty()) {
        ++report.explain_violations;
        say("case " + std::to_string(n) + " [explain] BREACH: " +
            (*sound)[0]);
        auto still_unsound = [](const WhatIfCase& cand) {
          Result<std::vector<std::string>> v = CheckCaseExplain(cand);
          return v.ok() && !v->empty();
        };
        FuzzFailure failure;
        failure.case_number = n;
        failure.shrunk = options.shrink ? ShrinkCaseIf(c, still_unsound) : c;
        failure.result.ok = false;
        failure.result.mode = "explain";
        Result<std::vector<std::string>> shrunk_v =
            CheckCaseExplain(failure.shrunk);
        failure.result.error = shrunk_v.ok() && !shrunk_v->empty()
                                   ? (*shrunk_v)[0]
                                   : (*sound)[0];
        report.failures.push_back(std::move(failure));
        continue;  // an unsound report's divergences add no information
      }
    }
    if (options.exec_diff) {
      OracleResult r = CheckCaseExecDiff(c);
      ++report.checks_run;
      if (!r.ok && !r.error.empty()) {
        say("case " + std::to_string(n) + " [exec-diff] error: " + r.error);
      } else if (!r.ok) {
        ++report.divergences;
        say("case " + std::to_string(n) + " [exec-diff] DIVERGED: " +
            (r.diff.divergences.empty() ? std::string("?")
                                        : r.diff.divergences[0].detail));
        auto still_diverges = [](const WhatIfCase& cand) {
          OracleResult rr = CheckCaseExecDiff(cand);
          return !rr.ok && rr.error.empty();
        };
        FuzzFailure failure;
        failure.case_number = n;
        failure.shrunk = options.shrink ? ShrinkCaseIf(c, still_diverges) : c;
        failure.result = CheckCaseExecDiff(failure.shrunk);
        report.failures.push_back(std::move(failure));
        continue;  // mode-pair checks of a diverged case add no information
      } else if (!r.note.empty()) {
        say("case " + std::to_string(n) + " [exec-diff] " + r.note);
      }
    }
    for (const auto& mode : options.modes) {
      OracleResult r = CheckCase(c, mode);
      ++report.checks_run;
      if (r.ok) {
        // Agreed rejection (both engines refused the rewritten history,
        // e.g. a dormant trigger cycle the what-if op woke up) still
        // counts as agreement; surface it once for the record.
        if (!r.note.empty()) {
          say("case " + std::to_string(n) + " [" + mode.name + "] " + r.note);
        }
        continue;
      }
      if (!r.error.empty()) {
        // Generator invariant violation (history must build) — surface it
        // loudly: it is a fuzzer bug, not an engine divergence.
        say("case " + std::to_string(n) + " [" + mode.name +
            "] error: " + r.error);
        continue;
      }
      ++report.divergences;
      say("case " + std::to_string(n) + " [" + mode.name + "] DIVERGED: " +
          (r.diff.divergences.empty() ? std::string("?")
                                      : r.diff.divergences[0].detail));
      FuzzFailure failure;
      failure.case_number = n;
      failure.shrunk = options.shrink ? ShrinkCase(c, {mode}) : c;
      failure.result = CheckCase(failure.shrunk, mode);
      report.failures.push_back(std::move(failure));
      break;  // one failure per case is enough; move on
    }
    if ((n + 1) % 25 == 0) {
      say(std::to_string(n + 1) + " cases, " +
          std::to_string(report.divergences) + " divergences, " +
          std::to_string(int(elapsed())) + "s");
    }
  }
  return report;
}

}  // namespace ultraverse::oracle
