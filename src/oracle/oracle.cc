#include "oracle/oracle.h"

#include <sstream>

#include "analysis/soundness.h"
#include "sqldb/parser.h"
#include "sqldb/vm/vm.h"

namespace ultraverse::oracle {

namespace {

const char* KindName(core::RetroOp::Kind kind) {
  switch (kind) {
    case core::RetroOp::Kind::kAdd: return "add";
    case core::RetroOp::Kind::kRemove: return "remove";
    case core::RetroOp::Kind::kChange: return "change";
  }
  return "remove";
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

Result<core::RetroOp> MakeOp(const WhatIfCase& c) {
  core::RetroOp op;
  op.kind = c.kind;
  op.index = c.index;
  if (c.kind != core::RetroOp::Kind::kRemove) {
    UV_ASSIGN_OR_RETURN(op.new_stmt, sql::Parser::ParseStatement(c.new_sql));
    op.new_sql = c.new_sql;
  }
  return op;
}

}  // namespace

std::string WhatIfCase::ToReproSql() const {
  std::ostringstream os;
  os << "-- ultraverse what-if repro (" << history.size() << " statements)\n";
  for (const auto& sql : history) os << sql << "\n";
  os << "-- whatif: " << KindName(kind) << " " << index;
  if (kind != core::RetroOp::Kind::kRemove) os << " " << new_sql;
  os << "\n";
  return os.str();
}

Result<WhatIfCase> WhatIfCase::ParseReproSql(const std::string& text) {
  WhatIfCase c;
  bool have_directive = false;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    line = Trim(line);
    if (line.empty()) continue;
    if (line.rfind("-- whatif:", 0) == 0) {
      std::istringstream dir(line.substr(10));
      std::string kind;
      uint64_t index = 0;
      if (!(dir >> kind >> index)) {
        return Status::InvalidArgument("malformed whatif directive: " + line);
      }
      if (kind == "remove") {
        c.kind = core::RetroOp::Kind::kRemove;
      } else if (kind == "add") {
        c.kind = core::RetroOp::Kind::kAdd;
      } else if (kind == "change") {
        c.kind = core::RetroOp::Kind::kChange;
      } else {
        return Status::InvalidArgument("unknown whatif kind: " + kind);
      }
      c.index = index;
      if (c.kind != core::RetroOp::Kind::kRemove) {
        std::string rest;
        std::getline(dir, rest);
        c.new_sql = Trim(rest);
        if (c.new_sql.empty()) {
          return Status::InvalidArgument("whatif " + kind + " needs SQL");
        }
      }
      have_directive = true;
      continue;
    }
    if (line.rfind("--", 0) == 0) continue;  // plain comment
    c.history.push_back(line);
  }
  if (!have_directive) {
    return Status::InvalidArgument("repro file has no '-- whatif:' directive");
  }
  uint64_t max_index =
      c.history.size() + (c.kind == core::RetroOp::Kind::kAdd ? 1 : 0);
  if (c.index == 0 || c.index > max_index) {
    return Status::InvalidArgument("whatif index out of range");
  }
  return c;
}

std::vector<ModeConfig> StandardModeConfigs() {
  std::vector<ModeConfig> configs;
  ModeConfig c;
  c.name = "deps";
  c.deps = true;
  configs.push_back(c);
  c.name = "deps+hashjump";
  c.hash_jumper = true;
  configs.push_back(c);
  c.name = "nodeps";
  c.deps = false;
  c.hash_jumper = false;
  configs.push_back(c);
  c.name = "nodeps+hashjump";
  c.hash_jumper = true;
  configs.push_back(c);
  c.name = "deps+rebuild";
  c.deps = true;
  c.hash_jumper = false;
  c.force_rebuild = true;
  configs.push_back(c);
  c.name = "deps+tree";
  c.force_rebuild = false;
  c.engine = sql::ExecEngine::kTree;
  configs.push_back(c);
  return configs;
}

Result<std::unique_ptr<Universe>> Universe::Build(
    const std::vector<std::string>& history) {
  return Build(history, std::nullopt);
}

Result<std::unique_ptr<Universe>> Universe::Build(
    const std::vector<std::string>& history,
    std::optional<sql::ExecEngine> engine) {
  std::unique_ptr<Universe> u(new Universe);
  u->db_ = std::make_unique<sql::Database>();
  if (engine) u->db_->set_exec_engine(*engine);
  for (const auto& text : history) {
    UV_ASSIGN_OR_RETURN(sql::StatementPtr stmt,
                        sql::Parser::ParseStatement(text));
    uint64_t commit_index = u->log_.size() + 1;
    sql::LogEntry entry;
    entry.sql = text;
    entry.stmt = stmt;
    entry.timestamp = u->db_->NextTimestamp();
    sql::ExecContext ctx;
    ctx.StartRecording(&entry.nondet);
    Result<sql::ExecResult> res = u->db_->Execute(*stmt, commit_index, &ctx);
    if (!res.ok()) {
      return Status::InvalidArgument("history statement " +
                                     std::to_string(commit_index) +
                                     " failed: " + res.status().message() +
                                     " [" + text + "]");
    }
    // Eager hash logging (§4.5), same protocol as the facade: log a
    // table's digest whenever it changed since its last logged value.
    for (const auto& name : u->db_->TableNames()) {
      const sql::Table* t = u->db_->FindTable(name);
      if (!t) continue;
      const Digest256& h = t->table_hash().value();
      auto it = u->last_hash_.find(name);
      if (it == u->last_hash_.end() || !(it->second == h)) {
        entry.table_hashes[name] = h;
        u->last_hash_[name] = h;
      }
    }
    u->log_.Append(std::move(entry));
  }
  return u;
}

Result<const std::vector<core::QueryRW>*> Universe::Analysis() {
  if (!analysis_ready_) {
    UV_ASSIGN_OR_RETURN(analysis_, analyzer_.AnalyzeLog(log_));
    analysis_ready_ = true;
  }
  return &analysis_;
}

Status Universe::RunSelective(const core::RetroOp& op,
                              const ModeConfig& config,
                              core::ReplayStats* stats) {
  UV_ASSIGN_OR_RETURN(const std::vector<core::QueryRW>* analysis, Analysis());
  core::RetroactiveEngine::Options opts;
  opts.mode = core::ReplayMode::kSelective;
  opts.deps.column_wise = config.deps;
  opts.deps.row_wise = config.deps;
  opts.force_rebuild = config.force_rebuild;
  opts.parallel = config.parallel;
  opts.num_threads = config.num_threads;
  opts.hash_jumper = config.hash_jumper;
  opts.verify_hash_hits = config.verify_hash_hits;
  if (config.engine) db_->set_exec_engine(*config.engine);
  core::RetroactiveEngine engine(db_.get(), &log_, opts);
  UV_ASSIGN_OR_RETURN(core::ReplayStats s,
                      engine.Execute(op, *analysis, &analyzer_));
  if (stats) *stats = s;
  return Status::OK();
}

Status Universe::RunFullNaive(const core::RetroOp& op,
                              core::ReplayStats* stats) {
  UV_ASSIGN_OR_RETURN(const std::vector<core::QueryRW>* analysis, Analysis());
  core::RetroactiveEngine::Options opts;
  opts.mode = core::ReplayMode::kFullNaive;
  opts.parallel = false;
  core::RetroactiveEngine engine(db_.get(), &log_, opts);
  UV_ASSIGN_OR_RETURN(core::ReplayStats s,
                      engine.Execute(op, *analysis, &analyzer_));
  if (stats) *stats = s;
  return Status::OK();
}

OracleResult CheckCase(const WhatIfCase& c, const ModeConfig& config,
                       const CorruptHook& corrupt) {
  OracleResult result;
  result.mode = config.name;
  Result<core::RetroOp> op = MakeOp(c);
  if (!op.ok()) {
    result.error = "bad retro op: " + op.status().message();
    return result;
  }
  // Two independent builds of the same history are bit-identical (fresh
  // databases, deterministic nondeterminism recording), so the selective
  // configuration and the naive reference start from equal universes.
  Result<std::unique_ptr<Universe>> selective = Universe::Build(c.history);
  if (!selective.ok()) {
    result.error = "build failed: " + selective.status().message();
    return result;
  }
  Result<std::unique_ptr<Universe>> reference = Universe::Build(c.history);
  if (!reference.ok()) {
    result.error = "build failed: " + reference.status().message();
    return result;
  }
  Status sel_st =
      (*selective)->RunSelective(*op, config, &result.selective_stats);
  Status ref_st = (*reference)->RunFullNaive(*op);
  if (!sel_st.ok() || !ref_st.ok()) {
    if (!sel_st.ok() && !ref_st.ok()) {
      // Both engines rejected the rewritten history — a what-if op can
      // legitimately produce one that trips a runtime limit (e.g. a
      // dormant trigger cycle the removed DELETE kept starved). Agreeing
      // on the rejection is agreement; record it for the report.
      result.ok = true;
      result.error = "";
      result.note = "both replays rejected: " + sel_st.message();
      return result;
    }
    // Exactly one side failed: one engine executes the rewritten history,
    // the other aborts. That asymmetry is a divergence (shrinkable and
    // reported like any state mismatch), not an infrastructure error.
    sql::StateDivergence d;
    d.kind = "status";
    d.detail = !sel_st.ok()
                   ? "selective[" + config.name + "] failed (" +
                         sel_st.message() + ") but full-naive succeeded"
                   : "full-naive failed (" + ref_st.message() +
                         ") but selective[" + config.name + "] succeeded";
    result.diff.divergences.push_back(std::move(d));
    result.ok = false;
    return result;
  }
  if (corrupt) corrupt((*selective)->db());
  result.diff = sql::DiffDatabases(*(*selective)->db(), *(*reference)->db(),
                                   "selective[" + config.name + "]",
                                   "full-naive");
  result.ok = result.diff.equal();
  return result;
}

OracleResult CheckCaseExecDiff(const WhatIfCase& c) {
  OracleResult result;
  result.mode = "exec-diff";
  // Fuzzed tables hold tens of rows, far below the production floor for
  // adaptive advisory indexing; lower it for the duration of this check so
  // the differential gate also exercises the advisory-probe paths.
  struct AdvisoryFloorGuard {
    size_t saved = sql::vm::AdvisoryIndexMinRows();
    AdvisoryFloorGuard() { sql::vm::SetAdvisoryIndexMinRows(4); }
    ~AdvisoryFloorGuard() { sql::vm::SetAdvisoryIndexMinRows(saved); }
  } advisory_floor;
  Result<core::RetroOp> op = MakeOp(c);
  if (!op.ok()) {
    result.error = "bad retro op: " + op.status().message();
    return result;
  }
  Result<std::unique_ptr<Universe>> tree =
      Universe::Build(c.history, sql::ExecEngine::kTree);
  Result<std::unique_ptr<Universe>> vm =
      Universe::Build(c.history, sql::ExecEngine::kVm);
  if (tree.ok() != vm.ok()) {
    sql::StateDivergence d;
    d.kind = "status";
    d.detail = tree.ok() ? "vm build failed (" + vm.status().message() +
                               ") but tree build succeeded"
                         : "tree build failed (" + tree.status().message() +
                               ") but vm build succeeded";
    result.diff.divergences.push_back(std::move(d));
    return result;
  }
  if (!tree.ok()) {
    if (tree.status().message() == vm.status().message()) {
      // The generator validates histories on a shadow (default-engine)
      // universe, so agreeing build failures should not happen — but if
      // they do, agreeing is still agreement.
      result.ok = true;
      result.note = "both engines rejected the history: " +
                    tree.status().message();
    } else {
      sql::StateDivergence d;
      d.kind = "status";
      d.detail = "build failed differently: tree(" + tree.status().message() +
                 ") vs vm(" + vm.status().message() + ")";
      result.diff.divergences.push_back(std::move(d));
    }
    return result;
  }
  result.diff = sql::DiffDatabases(*(*tree)->db(), *(*vm)->db(),
                                   "tree-built", "vm-built");
  if (!result.diff.equal()) return result;

  ModeConfig config;
  config.name = "exec-diff";
  Status tree_st = (*tree)->RunSelective(*op, config, &result.selective_stats);
  Status vm_st = (*vm)->RunSelective(*op, config);
  if (!tree_st.ok() || !vm_st.ok()) {
    if (!tree_st.ok() && !vm_st.ok()) {
      result.ok = true;
      result.note = "both engines rejected the rewritten history: " +
                    tree_st.message();
      return result;
    }
    sql::StateDivergence d;
    d.kind = "status";
    d.detail = !tree_st.ok() ? "tree replay failed (" + tree_st.message() +
                                   ") but vm replay succeeded"
                             : "vm replay failed (" + vm_st.message() +
                                   ") but tree replay succeeded";
    result.diff.divergences.push_back(std::move(d));
    return result;
  }
  result.diff = sql::DiffDatabases(*(*tree)->db(), *(*vm)->db(),
                                   "tree-replayed", "vm-replayed");
  result.ok = result.diff.equal();
  return result;
}

OracleResult CheckCaseAllModes(const WhatIfCase& c,
                               const std::vector<ModeConfig>& configs) {
  OracleResult last;
  last.ok = true;
  for (const auto& config : configs) {
    OracleResult r = CheckCase(c, config);
    if (!r.ok) return r;
    last = std::move(r);
  }
  return last;
}

namespace {

/// True when the candidate still shows a *divergence* (not a mere
/// build/replay error) under some config.
bool Reproduces(const WhatIfCase& c, const std::vector<ModeConfig>& configs) {
  for (const auto& config : configs) {
    OracleResult r = CheckCase(c, config);
    if (!r.ok && r.error.empty()) return true;
  }
  return false;
}

/// Removes 1-based history statement `j`, re-anchoring the retro index.
WhatIfCase RemoveStatement(const WhatIfCase& c, uint64_t j) {
  WhatIfCase out = c;
  out.history.erase(out.history.begin() + (j - 1));
  if (j < c.index) out.index = c.index - 1;
  return out;
}

}  // namespace

WhatIfCase ShrinkCaseIf(
    const WhatIfCase& c,
    const std::function<bool(const WhatIfCase&)>& still_fails) {
  WhatIfCase current = c;
  bool progress = true;
  while (progress) {
    progress = false;
    // End-first: later statements are the likeliest dead weight (nothing
    // depends on them), so dropping from the tail converges fastest.
    for (uint64_t j = current.history.size(); j >= 1; --j) {
      // The retroactive target statement itself must stay.
      if (current.kind != core::RetroOp::Kind::kAdd && j == current.index) {
        continue;
      }
      WhatIfCase cand = RemoveStatement(current, j);
      if (still_fails(cand)) {
        current = std::move(cand);
        progress = true;
        break;
      }
    }
  }
  return current;
}

WhatIfCase ShrinkCase(const WhatIfCase& c,
                      const std::vector<ModeConfig>& configs) {
  return ShrinkCaseIf(
      c, [&](const WhatIfCase& cand) { return Reproduces(cand, configs); });
}

Result<std::vector<std::string>> CheckStaticContainment(
    const std::vector<std::string>& history) {
  UV_ASSIGN_OR_RETURN(std::unique_ptr<Universe> u, Universe::Build(history));
  // A fresh analyzer (not the universe's own, which may already have
  // walked the log): the checker must observe every entry from the empty
  // registry state forward.
  core::QueryAnalyzer analyzer;
  analysis::SoundnessChecker checker(&analyzer);
  UV_RETURN_NOT_OK(analyzer.AnalyzeLog(u->log()).status());
  std::vector<std::string> out;
  out.reserve(checker.violations().size());
  for (const auto& v : checker.violations()) {
    out.push_back("statement #" + std::to_string(v.statement_ordinal + 1) +
                  " `" + v.sql + "`: " + v.detail);
  }
  return out;
}

}  // namespace ultraverse::oracle
