#include "oracle/oracle.h"

#include <sstream>

#include "analysis/soundness.h"
#include "sqldb/parser.h"
#include "sqldb/vm/vm.h"

namespace ultraverse::oracle {

namespace {

const char* KindName(core::RetroOp::Kind kind) {
  switch (kind) {
    case core::RetroOp::Kind::kAdd: return "add";
    case core::RetroOp::Kind::kRemove: return "remove";
    case core::RetroOp::Kind::kChange: return "change";
  }
  return "remove";
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

Result<core::RetroOp> MakeOp(const WhatIfCase& c) {
  core::RetroOp op;
  op.kind = c.kind;
  op.index = c.index;
  if (c.kind != core::RetroOp::Kind::kRemove) {
    UV_ASSIGN_OR_RETURN(op.new_stmt, sql::Parser::ParseStatement(c.new_sql));
    op.new_sql = c.new_sql;
  }
  return op;
}

}  // namespace

std::string WhatIfCase::ToReproSql() const {
  std::ostringstream os;
  os << "-- ultraverse what-if repro (" << history.size() << " statements)\n";
  for (const auto& sql : history) os << sql << "\n";
  os << "-- whatif: " << KindName(kind) << " " << index;
  if (kind != core::RetroOp::Kind::kRemove) os << " " << new_sql;
  os << "\n";
  return os.str();
}

Result<WhatIfCase> WhatIfCase::ParseReproSql(const std::string& text) {
  WhatIfCase c;
  bool have_directive = false;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    line = Trim(line);
    if (line.empty()) continue;
    if (line.rfind("-- whatif:", 0) == 0) {
      std::istringstream dir(line.substr(10));
      std::string kind;
      uint64_t index = 0;
      if (!(dir >> kind >> index)) {
        return Status::InvalidArgument("malformed whatif directive: " + line);
      }
      if (kind == "remove") {
        c.kind = core::RetroOp::Kind::kRemove;
      } else if (kind == "add") {
        c.kind = core::RetroOp::Kind::kAdd;
      } else if (kind == "change") {
        c.kind = core::RetroOp::Kind::kChange;
      } else {
        return Status::InvalidArgument("unknown whatif kind: " + kind);
      }
      c.index = index;
      if (c.kind != core::RetroOp::Kind::kRemove) {
        std::string rest;
        std::getline(dir, rest);
        c.new_sql = Trim(rest);
        if (c.new_sql.empty()) {
          return Status::InvalidArgument("whatif " + kind + " needs SQL");
        }
      }
      have_directive = true;
      continue;
    }
    if (line.rfind("--", 0) == 0) continue;  // plain comment
    c.history.push_back(line);
  }
  if (!have_directive) {
    return Status::InvalidArgument("repro file has no '-- whatif:' directive");
  }
  uint64_t max_index =
      c.history.size() + (c.kind == core::RetroOp::Kind::kAdd ? 1 : 0);
  if (c.index == 0 || c.index > max_index) {
    return Status::InvalidArgument("whatif index out of range");
  }
  return c;
}

std::vector<ModeConfig> StandardModeConfigs() {
  std::vector<ModeConfig> configs;
  ModeConfig c;
  c.name = "deps";
  c.deps = true;
  configs.push_back(c);
  c.name = "deps+hashjump";
  c.hash_jumper = true;
  configs.push_back(c);
  c.name = "nodeps";
  c.deps = false;
  c.hash_jumper = false;
  configs.push_back(c);
  c.name = "nodeps+hashjump";
  c.hash_jumper = true;
  configs.push_back(c);
  c.name = "deps+rebuild";
  c.deps = true;
  c.hash_jumper = false;
  c.force_rebuild = true;
  configs.push_back(c);
  c.name = "deps+tree";
  c.force_rebuild = false;
  c.engine = sql::ExecEngine::kTree;
  configs.push_back(c);
  return configs;
}

Result<std::unique_ptr<Universe>> Universe::Build(
    const std::vector<std::string>& history) {
  return Build(history, std::nullopt);
}

Result<std::unique_ptr<Universe>> Universe::Build(
    const std::vector<std::string>& history,
    std::optional<sql::ExecEngine> engine) {
  std::unique_ptr<Universe> u(new Universe);
  u->db_ = std::make_unique<sql::Database>();
  if (engine) u->db_->set_exec_engine(*engine);
  for (const auto& text : history) {
    UV_ASSIGN_OR_RETURN(sql::StatementPtr stmt,
                        sql::Parser::ParseStatement(text));
    uint64_t commit_index = u->log_.size() + 1;
    sql::LogEntry entry;
    entry.sql = text;
    entry.stmt = stmt;
    entry.timestamp = u->db_->NextTimestamp();
    sql::ExecContext ctx;
    ctx.StartRecording(&entry.nondet);
    Result<sql::ExecResult> res = u->db_->Execute(*stmt, commit_index, &ctx);
    if (!res.ok()) {
      return Status::InvalidArgument("history statement " +
                                     std::to_string(commit_index) +
                                     " failed: " + res.status().message() +
                                     " [" + text + "]");
    }
    // Eager hash logging (§4.5), same protocol as the facade: log a
    // table's digest whenever it changed since its last logged value.
    for (const auto& name : u->db_->TableNames()) {
      const sql::Table* t = u->db_->FindTable(name);
      if (!t) continue;
      const Digest256& h = t->table_hash().value();
      auto it = u->last_hash_.find(name);
      if (it == u->last_hash_.end() || !(it->second == h)) {
        entry.table_hashes[name] = h;
        u->last_hash_[name] = h;
      }
    }
    u->log_.Append(std::move(entry));
  }
  return u;
}

Result<const std::vector<core::QueryRW>*> Universe::Analysis() {
  if (!analysis_ready_) {
    UV_ASSIGN_OR_RETURN(analysis_, analyzer_.AnalyzeLog(log_));
    analysis_ready_ = true;
  }
  return &analysis_;
}

Status Universe::RunSelective(const core::RetroOp& op,
                              const ModeConfig& config,
                              core::ReplayStats* stats) {
  UV_ASSIGN_OR_RETURN(const std::vector<core::QueryRW>* analysis, Analysis());
  core::RetroactiveEngine::Options opts;
  opts.mode = core::ReplayMode::kSelective;
  opts.deps.column_wise = config.deps;
  opts.deps.row_wise = config.deps;
  opts.force_rebuild = config.force_rebuild;
  opts.parallel = config.parallel;
  opts.num_threads = config.num_threads;
  opts.hash_jumper = config.hash_jumper;
  opts.verify_hash_hits = config.verify_hash_hits;
  opts.explain = config.explain;
  opts.forced_replay = config.forced_replay;
  if (config.engine) db_->set_exec_engine(*config.engine);
  core::RetroactiveEngine engine(db_.get(), &log_, opts);
  UV_ASSIGN_OR_RETURN(core::ReplayStats s,
                      engine.Execute(op, *analysis, &analyzer_));
  if (stats) *stats = s;
  return Status::OK();
}

Status Universe::RunFullNaive(const core::RetroOp& op,
                              core::ReplayStats* stats) {
  UV_ASSIGN_OR_RETURN(const std::vector<core::QueryRW>* analysis, Analysis());
  core::RetroactiveEngine::Options opts;
  opts.mode = core::ReplayMode::kFullNaive;
  opts.parallel = false;
  core::RetroactiveEngine engine(db_.get(), &log_, opts);
  UV_ASSIGN_OR_RETURN(core::ReplayStats s,
                      engine.Execute(op, *analysis, &analyzer_));
  if (stats) *stats = s;
  return Status::OK();
}

OracleResult CheckCase(const WhatIfCase& c, const ModeConfig& config,
                       const CorruptHook& corrupt) {
  OracleResult result;
  result.mode = config.name;
  Result<core::RetroOp> op = MakeOp(c);
  if (!op.ok()) {
    result.error = "bad retro op: " + op.status().message();
    return result;
  }
  // Two independent builds of the same history are bit-identical (fresh
  // databases, deterministic nondeterminism recording), so the selective
  // configuration and the naive reference start from equal universes.
  Result<std::unique_ptr<Universe>> selective = Universe::Build(c.history);
  if (!selective.ok()) {
    result.error = "build failed: " + selective.status().message();
    return result;
  }
  Result<std::unique_ptr<Universe>> reference = Universe::Build(c.history);
  if (!reference.ok()) {
    result.error = "build failed: " + reference.status().message();
    return result;
  }
  Status sel_st =
      (*selective)->RunSelective(*op, config, &result.selective_stats);
  Status ref_st = (*reference)->RunFullNaive(*op);
  if (!sel_st.ok() || !ref_st.ok()) {
    if (!sel_st.ok() && !ref_st.ok()) {
      // Both engines rejected the rewritten history — a what-if op can
      // legitimately produce one that trips a runtime limit (e.g. a
      // dormant trigger cycle the removed DELETE kept starved). Agreeing
      // on the rejection is agreement; record it for the report.
      result.ok = true;
      result.error = "";
      result.note = "both replays rejected: " + sel_st.message();
      return result;
    }
    // Exactly one side failed: one engine executes the rewritten history,
    // the other aborts. That asymmetry is a divergence (shrinkable and
    // reported like any state mismatch), not an infrastructure error.
    sql::StateDivergence d;
    d.kind = "status";
    d.detail = !sel_st.ok()
                   ? "selective[" + config.name + "] failed (" +
                         sel_st.message() + ") but full-naive succeeded"
                   : "full-naive failed (" + ref_st.message() +
                         ") but selective[" + config.name + "] succeeded";
    result.diff.divergences.push_back(std::move(d));
    result.ok = false;
    return result;
  }
  if (corrupt) corrupt((*selective)->db());
  result.diff = sql::DiffDatabases(*(*selective)->db(), *(*reference)->db(),
                                   "selective[" + config.name + "]",
                                   "full-naive");
  result.ok = result.diff.equal();
  return result;
}

OracleResult CheckCaseExecDiff(const WhatIfCase& c) {
  OracleResult result;
  result.mode = "exec-diff";
  // Fuzzed tables hold tens of rows, far below the production floor for
  // adaptive advisory indexing; lower it for the duration of this check so
  // the differential gate also exercises the advisory-probe paths.
  struct AdvisoryFloorGuard {
    size_t saved = sql::vm::AdvisoryIndexMinRows();
    AdvisoryFloorGuard() { sql::vm::SetAdvisoryIndexMinRows(4); }
    ~AdvisoryFloorGuard() { sql::vm::SetAdvisoryIndexMinRows(saved); }
  } advisory_floor;
  Result<core::RetroOp> op = MakeOp(c);
  if (!op.ok()) {
    result.error = "bad retro op: " + op.status().message();
    return result;
  }
  Result<std::unique_ptr<Universe>> tree =
      Universe::Build(c.history, sql::ExecEngine::kTree);
  Result<std::unique_ptr<Universe>> vm =
      Universe::Build(c.history, sql::ExecEngine::kVm);
  if (tree.ok() != vm.ok()) {
    sql::StateDivergence d;
    d.kind = "status";
    d.detail = tree.ok() ? "vm build failed (" + vm.status().message() +
                               ") but tree build succeeded"
                         : "tree build failed (" + tree.status().message() +
                               ") but vm build succeeded";
    result.diff.divergences.push_back(std::move(d));
    return result;
  }
  if (!tree.ok()) {
    if (tree.status().message() == vm.status().message()) {
      // The generator validates histories on a shadow (default-engine)
      // universe, so agreeing build failures should not happen — but if
      // they do, agreeing is still agreement.
      result.ok = true;
      result.note = "both engines rejected the history: " +
                    tree.status().message();
    } else {
      sql::StateDivergence d;
      d.kind = "status";
      d.detail = "build failed differently: tree(" + tree.status().message() +
                 ") vs vm(" + vm.status().message() + ")";
      result.diff.divergences.push_back(std::move(d));
    }
    return result;
  }
  result.diff = sql::DiffDatabases(*(*tree)->db(), *(*vm)->db(),
                                   "tree-built", "vm-built");
  if (!result.diff.equal()) return result;

  ModeConfig config;
  config.name = "exec-diff";
  Status tree_st = (*tree)->RunSelective(*op, config, &result.selective_stats);
  Status vm_st = (*vm)->RunSelective(*op, config);
  if (!tree_st.ok() || !vm_st.ok()) {
    if (!tree_st.ok() && !vm_st.ok()) {
      result.ok = true;
      result.note = "both engines rejected the rewritten history: " +
                    tree_st.message();
      return result;
    }
    sql::StateDivergence d;
    d.kind = "status";
    d.detail = !tree_st.ok() ? "tree replay failed (" + tree_st.message() +
                                   ") but vm replay succeeded"
                             : "vm replay failed (" + vm_st.message() +
                                   ") but tree replay succeeded";
    result.diff.divergences.push_back(std::move(d));
    return result;
  }
  result.diff = sql::DiffDatabases(*(*tree)->db(), *(*vm)->db(),
                                   "tree-replayed", "vm-replayed");
  result.ok = result.diff.equal();
  return result;
}

OracleResult CheckCaseAllModes(const WhatIfCase& c,
                               const std::vector<ModeConfig>& configs) {
  OracleResult last;
  last.ok = true;
  for (const auto& config : configs) {
    OracleResult r = CheckCase(c, config);
    if (!r.ok) return r;
    last = std::move(r);
  }
  return last;
}

namespace {

/// True when the candidate still shows a *divergence* (not a mere
/// build/replay error) under some config.
bool Reproduces(const WhatIfCase& c, const std::vector<ModeConfig>& configs) {
  for (const auto& config : configs) {
    OracleResult r = CheckCase(c, config);
    if (!r.ok && r.error.empty()) return true;
  }
  return false;
}

/// Removes 1-based history statement `j`, re-anchoring the retro index.
WhatIfCase RemoveStatement(const WhatIfCase& c, uint64_t j) {
  WhatIfCase out = c;
  out.history.erase(out.history.begin() + (j - 1));
  if (j < c.index) out.index = c.index - 1;
  return out;
}

}  // namespace

WhatIfCase ShrinkCaseIf(
    const WhatIfCase& c,
    const std::function<bool(const WhatIfCase&)>& still_fails) {
  WhatIfCase current = c;
  bool progress = true;
  while (progress) {
    progress = false;
    // End-first: later statements are the likeliest dead weight (nothing
    // depends on them), so dropping from the tail converges fastest.
    for (uint64_t j = current.history.size(); j >= 1; --j) {
      // The retroactive target statement itself must stay.
      if (current.kind != core::RetroOp::Kind::kAdd && j == current.index) {
        continue;
      }
      WhatIfCase cand = RemoveStatement(current, j);
      if (still_fails(cand)) {
        current = std::move(cand);
        progress = true;
        break;
      }
    }
  }
  return current;
}

WhatIfCase ShrinkCase(const WhatIfCase& c,
                      const std::vector<ModeConfig>& configs) {
  return ShrinkCaseIf(
      c, [&](const WhatIfCase& cand) { return Reproduces(cand, configs); });
}

Result<std::vector<std::string>> CheckStaticContainment(
    const std::vector<std::string>& history) {
  UV_ASSIGN_OR_RETURN(std::unique_ptr<Universe> u, Universe::Build(history));
  // A fresh analyzer (not the universe's own, which may already have
  // walked the log): the checker must observe every entry from the empty
  // registry state forward.
  core::QueryAnalyzer analyzer;
  analysis::SoundnessChecker checker(&analyzer);
  UV_RETURN_NOT_OK(analyzer.AnalyzeLog(u->log()).status());
  std::vector<std::string> out;
  out.reserve(checker.violations().size());
  for (const auto& v : checker.violations()) {
    out.push_back("statement #" + std::to_string(v.statement_ordinal + 1) +
                  " `" + v.sql + "`: " + v.detail);
  }
  return out;
}

namespace {

/// Last logged digest (hex prefix, 16 chars — the report's evidence width)
/// of any table at-or-before `index`, per the eager hash log carried in
/// LogEntry::table_hashes.
std::set<std::string> CarryForwardDigests(const sql::QueryLog& log,
                                          uint64_t index) {
  std::map<std::string, std::string> latest;
  for (uint64_t i = 1; i <= index && i <= log.size(); ++i) {
    for (const auto& [table, digest] : log.at(i).table_hashes) {
      latest[table] = digest.ToHex().substr(0, 16);
    }
  }
  std::set<std::string> out;
  for (const auto& [table, hex] : latest) out.insert(hex);
  return out;
}

}  // namespace

Result<std::vector<std::string>> CheckCaseExplain(const WhatIfCase& c) {
  std::vector<std::string> out;
  UV_ASSIGN_OR_RETURN(core::RetroOp op, MakeOp(c));

  ModeConfig base;
  base.name = "explain";
  base.deps = true;
  base.hash_jumper = false;
  base.explain = obs::ExplainLevel::kFull;

  UV_ASSIGN_OR_RETURN(std::unique_ptr<Universe> sel,
                      Universe::Build(c.history));
  core::ReplayStats stats;
  Status sel_st = sel->RunSelective(op, base, &stats);
  UV_ASSIGN_OR_RETURN(std::unique_ptr<Universe> ref,
                      Universe::Build(c.history));
  Status ref_st = ref->RunFullNaive(op);
  if (!sel_st.ok() || !ref_st.ok()) {
    // Agreed rejection carries no report to validate; an asymmetric
    // failure is the divergence oracle's finding, not an explain breach.
    return out;
  }

  const obs::WhatIfReport& report = stats.report;

  // --- 1. Bookkeeping: totals, coverage, per-verdict invariants. ---------
  uint64_t total = 0;
  for (uint64_t n : report.verdict_counts) total += n;
  if (total != report.suffix_size) {
    out.push_back("verdict counts sum to " + std::to_string(total) +
                  " but the suffix holds " +
                  std::to_string(report.suffix_size) + " transactions");
  }
  if (report.replayed != stats.replayed) {
    out.push_back("report.replayed=" + std::to_string(report.replayed) +
                  " disagrees with ReplayStats.replayed=" +
                  std::to_string(stats.replayed));
  }
  UV_ASSIGN_OR_RETURN(const std::vector<core::QueryRW>* analysis,
                      sel->Analysis());
  std::set<uint64_t> seen;
  for (const obs::TxnExplain& te : report.txns) {
    if (te.is_new) continue;
    if (!seen.insert(te.index).second) {
      out.push_back("txn #" + std::to_string(te.index) +
                    " explained more than once");
    }
    if (te.index < c.index || te.index > c.history.size()) {
      out.push_back("txn #" + std::to_string(te.index) +
                    " explained but outside the suffix [" +
                    std::to_string(c.index) + ", " +
                    std::to_string(c.history.size()) + "]");
      continue;
    }
    if (te.verdict == obs::TxnVerdict::kPrunedReadOnly &&
        te.index <= analysis->size() &&
        !(*analysis)[te.index - 1].write_tables.empty()) {
      out.push_back("txn #" + std::to_string(te.index) +
                    " explained as pruned-read-only but its write set "
                    "names " +
                    *(*analysis)[te.index - 1].write_tables.begin());
    }
    if (te.verdict == obs::TxnVerdict::kHashJumpSkip && !report.hash_jump) {
      out.push_back("txn #" + std::to_string(te.index) +
                    " explained as hash-jump-skip but no jump happened");
    }
  }
  size_t expected = c.history.size() >= c.index
                        ? c.history.size() - c.index + 1
                        : 0;
  if (seen.size() != expected) {
    out.push_back("report explains " + std::to_string(seen.size()) +
                  " suffix transactions, expected " +
                  std::to_string(expected));
  }

  // --- 2. The selective state must match the full-naive reference. -------
  sql::StateDiff diff = sql::DiffDatabases(*sel->db(), *ref->db(),
                                           "selective[explain]",
                                           "full-naive");
  if (!diff.equal()) {
    out.push_back("selective final state diverges from full-naive: " +
                  diff.divergences.front().detail);
    // The per-txn counterfactuals below compare against a wrong baseline;
    // report the primary divergence and stop.
    return out;
  }

  // --- 3. Counterfactual soundness of pruned verdicts. -------------------
  // A sound prune reason means the transaction's replay is a no-op in the
  // alternate universe: forcing it back into the plan must reproduce the
  // identical final state. Spread-sample up to 16 pruned txns.
  std::vector<uint64_t> pruned;
  for (const obs::TxnExplain& te : report.txns) {
    if (te.is_new) continue;
    switch (te.verdict) {
      case obs::TxnVerdict::kPrunedStaticFootprint:
      case obs::TxnVerdict::kPrunedPredicateDisjoint:
      case obs::TxnVerdict::kPrunedColumnDisjoint:
      case obs::TxnVerdict::kClusterExcluded:
      case obs::TxnVerdict::kPrunedReadOnly:
        pruned.push_back(te.index);
        break;
      default:
        break;
    }
  }
  const size_t kMaxForced = 16;
  size_t step = pruned.size() > kMaxForced ? pruned.size() / kMaxForced : 1;
  for (size_t i = 0; i < pruned.size(); i += step) {
    uint64_t q = pruned[i];
    ModeConfig forced = base;
    forced.explain = obs::ExplainLevel::kSummary;
    forced.forced_replay = {q};
    Result<std::unique_ptr<Universe>> fu = Universe::Build(c.history);
    if (!fu.ok()) return fu.status();
    Status fst = (*fu)->RunSelective(op, forced);
    if (!fst.ok()) {
      out.push_back("txn #" + std::to_string(q) +
                    " explained as pruned, but forcing it back into the "
                    "plan fails to replay: " +
                    fst.message());
      continue;
    }
    sql::StateDiff fdiff = sql::DiffDatabases(*(*fu)->db(), *sel->db(),
                                              "forced-replay", "pruned");
    if (!fdiff.equal()) {
      out.push_back("txn #" + std::to_string(q) +
                    " explained as pruned, but force-replaying it changes "
                    "the final state: " +
                    fdiff.divergences.front().detail);
    }
  }

  // --- 4. Hash-jump evidence. -------------------------------------------
  ModeConfig hj = base;
  hj.name = "explain+hashjump";
  hj.hash_jumper = true;
  UV_ASSIGN_OR_RETURN(std::unique_ptr<Universe> hju,
                      Universe::Build(c.history));
  core::ReplayStats hjstats;
  Status hj_st = hju->RunSelective(op, hj, &hjstats);
  if (hj_st.ok()) {
    const obs::WhatIfReport& hjr = hjstats.report;
    std::set<std::string> logged =
        hjr.hash_jump ? CarryForwardDigests(hju->log(), hjr.hash_jump_index)
                      : std::set<std::string>{};
    for (const obs::TxnExplain& te : hjr.txns) {
      if (te.verdict != obs::TxnVerdict::kHashJumpSkip) continue;
      if (!hjr.hash_jump) {
        out.push_back("hash-jump run: txn #" + std::to_string(te.index) +
                      " explained as hash-jump-skip without a jump");
        continue;
      }
      if (te.index <= hjr.hash_jump_index) {
        out.push_back("hash-jump run: txn #" + std::to_string(te.index) +
                      " explained as skipped but precedes the convergence "
                      "point #" +
                      std::to_string(hjr.hash_jump_index));
      }
      if (!te.digest.empty() && !logged.count(te.digest)) {
        out.push_back("hash-jump run: txn #" + std::to_string(te.index) +
                      " cites digest " + te.digest +
                      " which no logged table hash at-or-before #" +
                      std::to_string(hjr.hash_jump_index) + " matches");
      }
    }
    sql::StateDiff hjdiff = sql::DiffDatabases(*hju->db(), *sel->db(),
                                               "selective[explain+hashjump]",
                                               "selective[explain]");
    if (!hjdiff.equal()) {
      out.push_back("hash-jump run diverges from the plain selective run: " +
                    hjdiff.divergences.front().detail);
    }
  }
  return out;
}

}  // namespace ultraverse::oracle
