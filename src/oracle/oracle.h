#ifndef ULTRAVERSE_ORACLE_ORACLE_H_
#define ULTRAVERSE_ORACLE_ORACLE_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/replay.h"
#include "core/rw_sets.h"
#include "sqldb/database.h"
#include "sqldb/query_log.h"
#include "sqldb/state_diff.h"
#include "util/status.h"

namespace ultraverse::oracle {

/// A self-contained what-if scenario: a SQL history plus one retroactive
/// operation over it. Serializes to (and parses back from) a plain .sql
/// file — the fuzzer's repro format.
struct WhatIfCase {
  std::vector<std::string> history;  // one statement per element
  core::RetroOp::Kind kind = core::RetroOp::Kind::kRemove;
  uint64_t index = 0;       // τ (1-based index into history)
  std::string new_sql;      // for kAdd / kChange

  /// Repro format: the history statements one per line, then a trailing
  ///   -- whatif: remove <index>
  ///   -- whatif: add <index> <sql>
  ///   -- whatif: change <index> <sql>
  /// directive comment. Re-runnable with tools/fuzz_whatif --repro.
  std::string ToReproSql() const;
  static Result<WhatIfCase> ParseReproSql(const std::string& text);
};

/// One replay configuration put under differential test. Every config runs
/// through RetroactiveEngine with ReplayMode::kSelective; the oracle's
/// reference side always runs ReplayMode::kFullNaive.
struct ModeConfig {
  std::string name;           // for reports ("selective+hj" etc.)
  bool deps = true;           // column-wise + row-wise pruning
  bool hash_jumper = false;
  bool verify_hash_hits = false;
  bool force_rebuild = false; // exercise the rebuild-from-log staging path
  bool parallel = false;      // serial by default: deterministic schedules
  int num_threads = 4;
  /// Execution engine for the selective side's database (replay clones
  /// inherit it). Unset = whatever the universe was built with.
  std::optional<sql::ExecEngine> engine;
  /// Decision-provenance level for the selective run (DESIGN.md §13).
  obs::ExplainLevel explain = obs::ExplainLevel::kSummary;
  /// Log indices forced into the replay plan (the explain oracle's
  /// counterfactual knob; see RetroactiveEngine::Options::forced_replay).
  std::vector<uint64_t> forced_replay;
};

/// The standard mode pairs of the oracle smoke suite: selective/full ×
/// Hash-jumper on/off, a rebuild-path config, and a cross-engine config
/// that replays the selective side on the tree walker while the reference
/// runs the process default.
std::vector<ModeConfig> StandardModeConfigs();

/// An executable universe: a fresh in-memory database plus the committed
/// query log built by replaying a SQL history through the same
/// record-nondeterminism + eager-hash-log protocol the facade uses.
/// Building the same history twice yields bit-identical universes (fresh
/// databases seed identical RNGs and logical clocks), which is what lets
/// the oracle run two engine configurations from equal starting points.
class Universe {
 public:
  /// Executes `history` statement by statement. Statements that fail to
  /// parse or execute return an error (the fuzzer only emits statements it
  /// has validated on a shadow universe).
  static Result<std::unique_ptr<Universe>> Build(
      const std::vector<std::string>& history);

  /// Same, but pins the database's execution engine before the history
  /// runs (the exec-diff oracle builds one universe per engine).
  static Result<std::unique_ptr<Universe>> Build(
      const std::vector<std::string>& history,
      std::optional<sql::ExecEngine> engine);

  sql::Database* db() { return db_.get(); }
  const sql::QueryLog& log() const { return log_; }
  /// Mutable log access for tests that patch history in place (the
  /// equal-length rewrite regressions) or advance the epoch by hand.
  sql::QueryLog* mutable_log() { return &log_; }

  /// Per-entry R/W analysis of the full log (computed once, cached).
  Result<const std::vector<core::QueryRW>*> Analysis();
  core::QueryAnalyzer* analyzer() { return &analyzer_; }

  /// Runs the retroactive op under `config` (ReplayMode::kSelective).
  Status RunSelective(const core::RetroOp& op, const ModeConfig& config,
                      core::ReplayStats* stats = nullptr);
  /// Runs the retroactive op under ReplayMode::kFullNaive (ground truth).
  Status RunFullNaive(const core::RetroOp& op,
                      core::ReplayStats* stats = nullptr);

 private:
  Universe() = default;

  std::unique_ptr<sql::Database> db_;
  sql::QueryLog log_;
  core::QueryAnalyzer analyzer_;
  std::vector<core::QueryRW> analysis_;
  bool analysis_ready_ = false;
  std::map<std::string, Digest256> last_hash_;  // eager hash logging
};

/// Differential check outcome for one (case, mode) pair.
struct OracleResult {
  bool ok = false;               // built, engines agree (states or rejection)
  std::string mode;              // ModeConfig::name
  std::string error;             // non-divergence failure (bad op / build)
  std::string note;              // agreed rejection of the rewritten history
  sql::StateDiff diff;           // populated when states diverge; a "status"
                                 // entry marks an asymmetric replay failure
  core::ReplayStats selective_stats;
};

/// Hook applied to the selective-side database after replay and before
/// diffing — tests plant corruption here to prove the diff detects it.
using CorruptHook = std::function<void(sql::Database*)>;

/// Builds the case's universe twice, runs the selective configuration on
/// one and the full-naive reference on the other, and deep-diffs the
/// resulting live databases (rows, indexes, auto-increment counters,
/// catalog). Divergence details land in OracleResult::diff.
OracleResult CheckCase(const WhatIfCase& c, const ModeConfig& config,
                       const CorruptHook& corrupt = nullptr);

/// Runs `c` against every config; returns the first failing result, or an
/// ok result when every mode pair agrees with the reference.
OracleResult CheckCaseAllModes(const WhatIfCase& c,
                               const std::vector<ModeConfig>& configs);

/// Cross-engine differential (mode "exec-diff"): builds the case's history
/// once on the tree walker and once on the bytecode VM, requires identical
/// post-build states, then runs the same selective what-if replay on both
/// and requires identical final states. An asymmetric failure on either
/// phase is a "status" divergence, like any oracle state mismatch.
OracleResult CheckCaseExecDiff(const WhatIfCase& c);

/// Greedy end-first shrinker: drops history statements (re-anchoring the
/// retroactive index) while `still_fails(candidate)` holds, until no single
/// removal reproduces. Returns the minimal reproducing case.
WhatIfCase ShrinkCaseIf(
    const WhatIfCase& c,
    const std::function<bool(const WhatIfCase&)>& still_fails);

/// ShrinkCaseIf with the real predicate: some config in `configs` still
/// reports a divergence (build/replay errors do not count as reproducing).
WhatIfCase ShrinkCase(const WhatIfCase& c,
                      const std::vector<ModeConfig>& configs);

/// Static-soundness oracle: builds a fresh universe for `history`, replays
/// its log through a fresh QueryAnalyzer with a SoundnessChecker attached,
/// and returns one description per containment violation (empty = the
/// static summaries cover every dynamic access). Build failures are
/// errors; containment violations are data.
Result<std::vector<std::string>> CheckStaticContainment(
    const std::vector<std::string>& history);

/// Explain-soundness oracle (`fuzz_whatif --check-explain`): runs the case
/// at ExplainLevel::kFull and re-validates every stated prune reason
/// against ground truth. Returns one description per violation (empty =
/// every reason is sound). Checks, in order:
///   1. Report bookkeeping: verdict totals sum to the suffix size, every
///      suffix transaction is explained exactly once, replayed count
///      matches ReplayStats, read-only verdicts have empty write sets.
///   2. The selective final state equals the full-naive reference.
///   3. For a spread sample of pruned transactions q: re-running the same
///      what-if with forced_replay={q} must reproduce the identical final
///      state — a pruned txn whose forced re-execution changes the outcome
///      was unsoundly pruned.
///   4. With the Hash-jumper enabled: kHashJumpSkip verdicts only past the
///      convergence point, carrying a digest that matches the logged
///      timeline's carry-forward at the jump index.
/// Build/replay failures are errors; unsound reasons are data.
Result<std::vector<std::string>> CheckCaseExplain(const WhatIfCase& c);

}  // namespace ultraverse::oracle

#endif  // ULTRAVERSE_ORACLE_ORACLE_H_
