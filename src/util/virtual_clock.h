#ifndef ULTRAVERSE_UTIL_VIRTUAL_CLOCK_H_
#define ULTRAVERSE_UTIL_VIRTUAL_CLOCK_H_

#include <atomic>
#include <cstdint>

#include "util/stopwatch.h"

namespace ultraverse {

/// Accounts simulated client<->server round-trip time.
///
/// The paper's T-version speedup comes from collapsing N per-statement round
/// trips into 1 procedure-call round trip. Re-running that over a real
/// network would only add noise, so the client channel charges each round
/// trip to this clock instead (the substitution is documented in DESIGN.md).
class VirtualClock {
 public:
  explicit VirtualClock(uint64_t rtt_micros = 1000) : rtt_micros_(rtt_micros) {}

  void ChargeRoundTrip(uint64_t count = 1) {
    virtual_micros_.fetch_add(count * rtt_micros_, std::memory_order_relaxed);
  }

  uint64_t virtual_micros() const {
    return virtual_micros_.load(std::memory_order_relaxed);
  }
  uint64_t rtt_micros() const { return rtt_micros_; }
  void Reset() { virtual_micros_.store(0, std::memory_order_relaxed); }

 private:
  const uint64_t rtt_micros_;
  std::atomic<uint64_t> virtual_micros_{0};
};

}  // namespace ultraverse

#endif  // ULTRAVERSE_UTIL_VIRTUAL_CLOCK_H_
