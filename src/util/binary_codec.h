#ifndef ULTRAVERSE_UTIL_BINARY_CODEC_H_
#define ULTRAVERSE_UTIL_BINARY_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "util/status.h"

namespace ultraverse {

/// Little-endian primitive encoding shared by every durable / wire format
/// in the system (the WAL record payloads and the server wire protocol use
/// the same byte discipline, so a frame hexdump reads the same either way).
/// Writers append to a std::string; BinaryReader walks one back with
/// bounds-checked reads that surface kDataLoss instead of overrunning.

inline void PutU8(std::string* out, uint8_t v) { out->push_back(char(v)); }

inline void PutU16(std::string* out, uint16_t v) {
  for (int i = 0; i < 2; ++i) out->push_back(char((v >> (8 * i)) & 0xFF));
}

inline void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(char((v >> (8 * i)) & 0xFF));
}

inline void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(char((v >> (8 * i)) & 0xFF));
}

inline void PutI64(std::string* out, int64_t v) { PutU64(out, uint64_t(v)); }

inline void PutString(std::string* out, const std::string& s) {
  PutU32(out, uint32_t(s.size()));
  out->append(s);
}

inline void PutDouble(std::string* out, double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  PutU64(out, bits);
}

/// Bounds-checked sequential reader over an encoded payload. Every read
/// returns kDataLoss when the payload is truncated mid-field; decoders
/// propagate that and the framing layer treats it as a corrupt record.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& data) : data_(data) {}

  Status U8(uint8_t* v) {
    UV_RETURN_NOT_OK(Need(1));
    *v = uint8_t(data_[pos_++]);
    return Status::OK();
  }
  Status U16(uint16_t* v) {
    UV_RETURN_NOT_OK(Need(2));
    *v = 0;
    for (int i = 0; i < 2; ++i) {
      *v = uint16_t(*v | uint16_t(uint8_t(data_[pos_ + i])) << (8 * i));
    }
    pos_ += 2;
    return Status::OK();
  }
  Status U32(uint32_t* v) {
    UV_RETURN_NOT_OK(Need(4));
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= uint32_t(uint8_t(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 4;
    return Status::OK();
  }
  Status U64(uint64_t* v) {
    UV_RETURN_NOT_OK(Need(8));
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= uint64_t(uint8_t(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 8;
    return Status::OK();
  }
  Status I64(int64_t* v) {
    uint64_t u;
    UV_RETURN_NOT_OK(U64(&u));
    *v = int64_t(u);
    return Status::OK();
  }
  Status Str(std::string* s) {
    uint32_t len;
    UV_RETURN_NOT_OK(U32(&len));
    UV_RETURN_NOT_OK(Need(len));
    s->assign(data_, pos_, len);
    pos_ += len;
    return Status::OK();
  }
  Status Dbl(double* d) {
    uint64_t bits;
    UV_RETURN_NOT_OK(U64(&bits));
    std::memcpy(d, &bits, sizeof(*d));
    return Status::OK();
  }

  bool exhausted() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  Status Need(size_t n) {
    if (pos_ + n > data_.size()) {
      return Status::DataLoss("payload truncated mid-field");
    }
    return Status::OK();
  }
  const std::string& data_;
  size_t pos_ = 0;
};

}  // namespace ultraverse

#endif  // ULTRAVERSE_UTIL_BINARY_CODEC_H_
