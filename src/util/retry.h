#ifndef ULTRAVERSE_UTIL_RETRY_H_
#define ULTRAVERSE_UTIL_RETRY_H_

#include <cstdint>

#include "util/backoff.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace ultraverse {

/// Bounded retry policy for transient faults (kUnavailable — e.g. injected
/// failpoint errors standing in for a flaky DBMS connection). kTimeout is
/// deliberately NOT transient: the interpreter's step-budget timeout is
/// deterministic, so retrying it can never help.
/// Waits ride the shared ExpBackoff ladder: pause instructions, then
/// yields, then 50us sleeps — bounded work, no unbounded spinning.
struct RetryPolicy {
  /// Total attempts including the first (1 = no retries).
  int max_attempts = 1;
  /// Backoff pauses taken between consecutive attempts; attempt k waits
  /// k*backoff_rounds pauses, so later retries back off longer.
  int backoff_rounds = 8;
  /// Also retry kAborted (optimistic publish conflicts). Off by default:
  /// replay slots must NOT re-run statements whose conflict semantics are
  /// first-committer-wins — only whole-operation retries (which re-snapshot
  /// before the next attempt) are safe to loop on aborts.
  bool retry_aborted = false;
  /// Seed for jittering the backoff between attempts; callers with many
  /// concurrent retriers (server sessions) set distinct seeds so conflicting
  /// publishers desynchronize instead of re-colliding in lockstep.
  uint64_t jitter_seed = 0;

  bool enabled() const { return max_attempts > 1; }
};

/// True for error codes a retry can plausibly clear.
inline bool IsTransient(const Status& st) {
  return st.code() == StatusCode::kUnavailable;
}

/// Policy-aware retryability: kUnavailable always, kAborted only when the
/// policy opted in (see RetryPolicy::retry_aborted).
inline bool IsRetryable(const RetryPolicy& policy, const Status& st) {
  if (IsTransient(st)) return true;
  return policy.retry_aborted && st.code() == StatusCode::kAborted;
}

/// Runs `fn` (returning Status) up to `policy.max_attempts` times, backing
/// off between attempts, until it returns OK or a non-retryable error.
/// A cancelled/expired `token` (nullable) stops the loop with the token's
/// status — cancellation outranks retries. Each extra attempt bumps the
/// process-wide `uv.retry.attempts` counter via `on_retry` (the caller
/// supplies the counter bump so util stays obs-free).
/// Backoff between attempts is jittered: attempt k waits roughly
/// k*backoff_rounds pauses, scaled by a splitmix-derived factor in
/// [0.5, 1.5) so competing retriers spread out instead of thundering back
/// in phase (the classic jittered-exponential-backoff shape).
template <typename Fn, typename OnRetry>
Status RetryWithBackoff(const RetryPolicy& policy, const CancelToken* token,
                        Fn&& fn, OnRetry&& on_retry) {
  ExpBackoff backoff;
  Status st;
  for (int attempt = 1;; ++attempt) {
    UV_RETURN_NOT_OK(CheckCancel(token, "retry"));
    st = fn();
    if (st.ok() || !IsRetryable(policy, st) ||
        attempt >= policy.max_attempts) {
      return st;
    }
    on_retry(attempt, st);
    // splitmix64 finalizer over (seed, attempt) — cheap, stateless jitter.
    uint64_t z = policy.jitter_seed + uint64_t(attempt) * 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z ^= z >> 31;
    // Scale rounds to [50%, 150%) of the deterministic ladder value.
    int base = policy.backoff_rounds * attempt;
    int rounds = base / 2 + int(z % uint64_t(base > 0 ? base : 1));
    for (int i = 0; i < rounds; ++i) {
      backoff.Pause();
    }
  }
}

}  // namespace ultraverse

#endif  // ULTRAVERSE_UTIL_RETRY_H_
