#ifndef ULTRAVERSE_UTIL_RETRY_H_
#define ULTRAVERSE_UTIL_RETRY_H_

#include <cstdint>

#include "util/backoff.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace ultraverse {

/// Bounded retry policy for transient faults (kUnavailable — e.g. injected
/// failpoint errors standing in for a flaky DBMS connection). kTimeout is
/// deliberately NOT transient: the interpreter's step-budget timeout is
/// deterministic, so retrying it can never help.
/// Waits ride the shared ExpBackoff ladder: pause instructions, then
/// yields, then 50us sleeps — bounded work, no unbounded spinning.
struct RetryPolicy {
  /// Total attempts including the first (1 = no retries).
  int max_attempts = 1;
  /// Backoff pauses taken between consecutive attempts; attempt k waits
  /// k*backoff_rounds pauses, so later retries back off longer.
  int backoff_rounds = 8;

  bool enabled() const { return max_attempts > 1; }
};

/// True for error codes a retry can plausibly clear.
inline bool IsTransient(const Status& st) {
  return st.code() == StatusCode::kUnavailable;
}

/// Runs `fn` (returning Status) up to `policy.max_attempts` times, backing
/// off between attempts, until it returns OK or a non-transient error.
/// A cancelled/expired `token` (nullable) stops the loop with the token's
/// status — cancellation outranks retries. Each extra attempt bumps the
/// process-wide `uv.retry.attempts` counter via `on_retry` (the caller
/// supplies the counter bump so util stays obs-free).
template <typename Fn, typename OnRetry>
Status RetryWithBackoff(const RetryPolicy& policy, const CancelToken* token,
                        Fn&& fn, OnRetry&& on_retry) {
  ExpBackoff backoff;
  Status st;
  for (int attempt = 1;; ++attempt) {
    UV_RETURN_NOT_OK(CheckCancel(token, "retry"));
    st = fn();
    if (st.ok() || !IsTransient(st) || attempt >= policy.max_attempts) {
      return st;
    }
    on_retry(attempt, st);
    for (int i = 0; i < policy.backoff_rounds * attempt; ++i) {
      backoff.Pause();
    }
  }
}

}  // namespace ultraverse

#endif  // ULTRAVERSE_UTIL_RETRY_H_
