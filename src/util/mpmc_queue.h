#ifndef ULTRAVERSE_UTIL_MPMC_QUEUE_H_
#define ULTRAVERSE_UTIL_MPMC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ultraverse {

/// Bounded lock-free multi-producer/multi-consumer ring queue.
///
/// This is the classic sequence-stamped ring (as popularized by the DPDK
/// ring library and Vyukov's MPMC queue) that the paper's replay scheduler
/// uses to let worker threads dequeue ready-to-replay queries without lock
/// contention: producers/consumers claim slots with compare-and-swap on the
/// head/tail tickets and then synchronize on a per-cell sequence number.
///
/// Capacity is rounded up to a power of two. TryPush/TryPop never block;
/// they return false when the ring is full/empty.
template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(size_t capacity) {
    size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::vector<Cell>(cap);
    for (size_t i = 0; i < cap; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
    head_.store(0, std::memory_order_relaxed);
    tail_.store(0, std::memory_order_relaxed);
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  bool TryPush(T value) {
    Cell* cell;
    size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      size_t seq = cell->sequence.load(std::memory_order_acquire);
      intptr_t diff = intptr_t(seq) - intptr_t(pos);
      if (diff == 0) {
        // Slot is free at this ticket; try to claim it with CAS.
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // Ring is full.
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  bool TryPop(T* out) {
    Cell* cell;
    size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      size_t seq = cell->sequence.load(std::memory_order_acquire);
      intptr_t diff = intptr_t(seq) - intptr_t(pos + 1);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // Ring is empty.
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    *out = std::move(cell->value);
    cell->sequence.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  size_t ApproxSize() const {
    size_t head = head_.load(std::memory_order_relaxed);
    size_t tail = tail_.load(std::memory_order_relaxed);
    return head >= tail ? head - tail : 0;
  }

  size_t capacity() const { return mask_ + 1; }

 private:
  struct Cell {
    std::atomic<size_t> sequence{0};
    T value{};
  };

  // Head/tail on separate cache lines to avoid false sharing between
  // producer and consumer tickets.
  alignas(64) std::atomic<size_t> head_{0};
  alignas(64) std::atomic<size_t> tail_{0};
  std::vector<Cell> cells_;
  size_t mask_ = 0;
};

}  // namespace ultraverse

#endif  // ULTRAVERSE_UTIL_MPMC_QUEUE_H_
