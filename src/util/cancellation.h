#ifndef ULTRAVERSE_UTIL_CANCELLATION_H_
#define ULTRAVERSE_UTIL_CANCELLATION_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "util/status.h"
#include "util/stopwatch.h"

namespace ultraverse {

/// Cooperative cancellation + deadline token threaded through long-running
/// operations (retroactive replay, batch scheduling, recovery). Workers
/// poll Check() at phase boundaries and between slots; a fired token makes
/// them drain gracefully — finish or abandon the current statement, stop
/// pulling new work, and surface kCancelled / kDeadlineExceeded. The
/// caller abandons the staged temporary state, so the live database is
/// untouched (what-if adoption only happens after a clean replay).
///
/// Thread-safe: any thread may Cancel(); all workers may poll concurrently
/// (one relaxed load on the fast path, a clock read only when a deadline
/// is set).
class CancelToken {
 public:
  CancelToken() = default;

  /// Arms a wall-clock deadline `micros` from now (0 disarms).
  void SetDeadlineAfterMicros(uint64_t micros) {
    deadline_us_.store(micros == 0 ? 0 : NowMicros() + micros,
                       std::memory_order_relaxed);
  }

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Re-arms a used token (tests and pooled engines).
  void Reset() {
    cancelled_.store(false, std::memory_order_relaxed);
    deadline_us_.store(0, std::memory_order_relaxed);
  }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  bool deadline_expired() const {
    uint64_t d = deadline_us_.load(std::memory_order_relaxed);
    return d != 0 && NowMicros() >= d;
  }

  /// OK while the operation may continue; kCancelled / kDeadlineExceeded
  /// once it should drain. `where` names the phase for the error message.
  Status Check(const char* where) const {
    if (cancelled()) {
      return Status::Cancelled(std::string("cancelled during ") + where);
    }
    if (deadline_expired()) {
      return Status::DeadlineExceeded(std::string("deadline exceeded during ") +
                                      where);
    }
    return Status::OK();
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<uint64_t> deadline_us_{0};  // absolute, NowMicros domain; 0=off
};

/// Polls a possibly-null token: null means "never cancelled".
inline Status CheckCancel(const CancelToken* token, const char* where) {
  return token ? token->Check(where) : Status::OK();
}

}  // namespace ultraverse

#endif  // ULTRAVERSE_UTIL_CANCELLATION_H_
