#include "util/thread_pool.h"

namespace ultraverse {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (tasks_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace ultraverse
