#include "util/table_hash.h"

namespace ultraverse {

void TableHash::Add(const Digest256& d) {
  unsigned __int128 carry = 0;
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 sum =
        (unsigned __int128)value_.limbs[i] + d.limbs[i] + carry;
    value_.limbs[i] = (uint64_t)sum;
    carry = sum >> 64;
  }
  // Overflow past limb 3 is dropped: arithmetic is mod 2^256.
}

void TableHash::Subtract(const Digest256& d) {
  unsigned __int128 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 lhs = value_.limbs[i];
    unsigned __int128 rhs = (unsigned __int128)d.limbs[i] + borrow;
    if (lhs >= rhs) {
      value_.limbs[i] = (uint64_t)(lhs - rhs);
      borrow = 0;
    } else {
      value_.limbs[i] = (uint64_t)((((unsigned __int128)1) << 64) + lhs - rhs);
      borrow = 1;
    }
  }
}

}  // namespace ultraverse
