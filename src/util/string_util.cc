#include "util/string_util.h"

#include <cctype>

namespace ultraverse {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = char(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = char(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string SqlQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('\'');
  for (char c : s) {
    if (c == '\'') out.push_back('\'');
    out.push_back(c);
  }
  out.push_back('\'');
  return out;
}

}  // namespace ultraverse
