#ifndef ULTRAVERSE_UTIL_STOPWATCH_H_
#define ULTRAVERSE_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace ultraverse {

/// Monotonic-clock microsecond timestamp. The single time source for every
/// phase timing, metric latency, and trace-span timestamp in the system, so
/// numbers from different layers are directly comparable.
inline uint64_t NowMicros() {
  return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

/// Wall-clock stopwatch over the monotonic clock.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  void Restart() { start_ = std::chrono::steady_clock::now(); }
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  uint64_t ElapsedMicros() const {
    return uint64_t(ElapsedSeconds() * 1e6);
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ultraverse

#endif  // ULTRAVERSE_UTIL_STOPWATCH_H_
