#ifndef ULTRAVERSE_UTIL_TABLE_HASH_H_
#define ULTRAVERSE_UTIL_TABLE_HASH_H_

#include <string_view>

#include "util/sha256.h"

namespace ultraverse {

/// Incremental multiset hash over table rows (Hash-jumper, §4.5).
///
/// The hash of a table is the sum of the SHA-256 digests of its rows,
/// treated as 256-bit integers, modulo 2^256. Inserting a row adds its
/// digest, deleting subtracts it, and an update is delete+insert. The cost
/// per query is therefore linear in the rows it touches and constant in the
/// table size, and the hash is independent of physical row order.
class TableHash {
 public:
  TableHash() = default;

  /// Adds the digest of an encoded row to the running hash (mod 2^256).
  void AddRow(std::string_view encoded_row) { Add(Sha256::Hash(encoded_row)); }

  /// Subtracts the digest of an encoded row (mod 2^256).
  void RemoveRow(std::string_view encoded_row) {
    Subtract(Sha256::Hash(encoded_row));
  }

  void Add(const Digest256& d);
  void Subtract(const Digest256& d);

  const Digest256& value() const { return value_; }
  void Reset() { value_ = Digest256{}; }

  friend bool operator==(const TableHash&, const TableHash&) = default;

 private:
  Digest256 value_;  // Empty table hashes to 0 by definition.
};

}  // namespace ultraverse

#endif  // ULTRAVERSE_UTIL_TABLE_HASH_H_
