#ifndef ULTRAVERSE_UTIL_BACKOFF_H_
#define ULTRAVERSE_UTIL_BACKOFF_H_

#include <chrono>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace ultraverse {

/// Exponential-backoff spin for polling loops (e.g. draining an MpmcQueue):
/// a short pause-instruction ladder first (cheap, keeps the core's
/// hyperthread sibling productive), then scheduler yields, then brief
/// sleeps so a drained ready queue stops burning whole cores. Reset() after
/// every successful poll restores the fast path.
class ExpBackoff {
 public:
  void Pause() {
    if (round_ < kSpinRounds) {
      int spins = 1 << round_;
      for (int i = 0; i < spins; ++i) CpuRelax();
    } else if (round_ < kSpinRounds + kYieldRounds) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    if (round_ < kSpinRounds + kYieldRounds) ++round_;
  }

  void Reset() { round_ = 0; }

 private:
  static constexpr int kSpinRounds = 6;   // 1..32 pause instructions
  static constexpr int kYieldRounds = 8;  // then sched yields, then sleep

  static void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
    _mm_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#else
    std::this_thread::yield();
#endif
  }

  int round_ = 0;
};

}  // namespace ultraverse

#endif  // ULTRAVERSE_UTIL_BACKOFF_H_
