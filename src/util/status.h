#ifndef ULTRAVERSE_UTIL_STATUS_H_
#define ULTRAVERSE_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace ultraverse {

/// Error categories used across the library. The set mirrors the failure
/// modes of a SQL engine plus the analysis layers built on top of it.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kTypeError,
  kConstraintViolation,
  kUnsupported,
  kInternal,
  kTimeout,
  kSignal,  // SQL SIGNAL SQLSTATE raised (used for unreached-path traps).
  kUnavailable,        // transient resource failure; safe to retry
  kCancelled,          // operation cancelled via a CancelToken
  kDeadlineExceeded,   // a CancelToken deadline expired mid-operation
  kDataLoss,           // durable-log corruption beyond torn-tail repair
  kAborted,            // optimistic-concurrency conflict; caller may retry
  kResourceExhausted,  // admission control shed the request; retry later
};

/// Arrow/RocksDB-style status object. Functions that can fail return a
/// Status (or Result<T>); exceptions are not used across library boundaries.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status ParseError(std::string m) {
    return Status(StatusCode::kParseError, std::move(m));
  }
  static Status TypeError(std::string m) {
    return Status(StatusCode::kTypeError, std::move(m));
  }
  static Status ConstraintViolation(std::string m) {
    return Status(StatusCode::kConstraintViolation, std::move(m));
  }
  static Status Unsupported(std::string m) {
    return Status(StatusCode::kUnsupported, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status Timeout(std::string m) {
    return Status(StatusCode::kTimeout, std::move(m));
  }
  static Status Signal(std::string sqlstate) {
    return Status(StatusCode::kSignal, std::move(sqlstate));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status Cancelled(std::string m) {
    return Status(StatusCode::kCancelled, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status DataLoss(std::string m) {
    return Status(StatusCode::kDataLoss, std::move(m));
  }
  static Status Aborted(std::string m) {
    return Status(StatusCode::kAborted, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + message_;
  }

  static std::string CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kAlreadyExists: return "AlreadyExists";
      case StatusCode::kParseError: return "ParseError";
      case StatusCode::kTypeError: return "TypeError";
      case StatusCode::kConstraintViolation: return "ConstraintViolation";
      case StatusCode::kUnsupported: return "Unsupported";
      case StatusCode::kInternal: return "Internal";
      case StatusCode::kTimeout: return "Timeout";
      case StatusCode::kSignal: return "Signal";
      case StatusCode::kUnavailable: return "Unavailable";
      case StatusCode::kCancelled: return "Cancelled";
      case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
      case StatusCode::kDataLoss: return "DataLoss";
      case StatusCode::kAborted: return "Aborted";
      case StatusCode::kResourceExhausted: return "ResourceExhausted";
    }
    return "Unknown";
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> carries either a value or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Returns the value or `fallback` when this result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates errors to the caller, Arrow-style.
#define UV_RETURN_NOT_OK(expr)                    \
  do {                                            \
    ::ultraverse::Status _st = (expr);            \
    if (!_st.ok()) return _st;                    \
  } while (0)

#define UV_ASSIGN_OR_RETURN_IMPL(var, tmp, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) return tmp.status();            \
  var = std::move(tmp).value();

#define UV_CONCAT_(a, b) a##b
#define UV_CONCAT(a, b) UV_CONCAT_(a, b)

#define UV_ASSIGN_OR_RETURN(var, expr) \
  UV_ASSIGN_OR_RETURN_IMPL(var, UV_CONCAT(_uv_result_, __LINE__), expr)

}  // namespace ultraverse

#endif  // ULTRAVERSE_UTIL_STATUS_H_
