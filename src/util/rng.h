#ifndef ULTRAVERSE_UTIL_RNG_H_
#define ULTRAVERSE_UTIL_RNG_H_

#include <cstdint>
#include <string>

namespace ultraverse {

/// Deterministic splitmix64-based RNG. Workload generators and the DSE
/// seed-input generator must be reproducible across runs, so all randomness
/// in the library flows through explicitly seeded Rng instances.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ^ 0x9e3779b97f4a7c15ull) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [lo, hi] inclusive; requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    uint64_t span = uint64_t(hi - lo) + 1;
    return lo + int64_t(Next() % span);
  }

  double UniformDouble() { return double(Next() >> 11) / double(1ull << 53); }

  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Random lowercase ASCII string of exactly `len` characters.
  std::string RandomString(size_t len) {
    std::string s(len, 'a');
    for (auto& c : s) c = char('a' + Next() % 26);
    return s;
  }

 private:
  uint64_t state_;
};

}  // namespace ultraverse

#endif  // ULTRAVERSE_UTIL_RNG_H_
