#ifndef ULTRAVERSE_UTIL_STRING_UTIL_H_
#define ULTRAVERSE_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace ultraverse {

/// Case-insensitive ASCII equality (SQL keywords and identifiers).
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Uppercases ASCII in place-free fashion.
std::string ToUpper(std::string_view s);
std::string ToLower(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits on a single character, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Escapes a string for embedding in a single-quoted SQL literal.
std::string SqlQuote(std::string_view s);

}  // namespace ultraverse

#endif  // ULTRAVERSE_UTIL_STRING_UTIL_H_
