#ifndef ULTRAVERSE_UTIL_SHA256_H_
#define ULTRAVERSE_UTIL_SHA256_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace ultraverse {

/// 256-bit digest, stored as 4 little-endian 64-bit limbs so digests can be
/// treated as integers mod 2^256 by TableHash (Hash-jumper, §4.5).
struct Digest256 {
  std::array<uint64_t, 4> limbs{};

  friend bool operator==(const Digest256&, const Digest256&) = default;

  /// Lowercase hex rendering (limb 3 first, i.e. most significant first).
  std::string ToHex() const;
};

/// Streaming SHA-256 (FIPS 180-4). Self-contained: the repo has no crypto
/// dependency, and Hash-jumper only needs collision resistance + uniformity.
class Sha256 {
 public:
  Sha256() { Reset(); }

  void Reset();
  void Update(const void* data, size_t len);
  void Update(std::string_view s) { Update(s.data(), s.size()); }

  /// Finishes the hash; the object must be Reset() before reuse.
  Digest256 Finish();

  /// One-shot convenience.
  static Digest256 Hash(std::string_view s);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t bit_count_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

}  // namespace ultraverse

#endif  // ULTRAVERSE_UTIL_SHA256_H_
