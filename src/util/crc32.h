#ifndef ULTRAVERSE_UTIL_CRC32_H_
#define ULTRAVERSE_UTIL_CRC32_H_

#include <array>
#include <cstdint>
#include <cstddef>
#include <string_view>

namespace ultraverse {

namespace internal {
inline constexpr std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}
inline constexpr std::array<uint32_t, 256> kCrc32Table = MakeCrc32Table();
}  // namespace internal

/// CRC-32 (IEEE 802.3, the zlib polynomial) over `data`, continuing from
/// `seed` (pass the previous return value to checksum in chunks). Guards
/// WAL records against torn writes and bit rot.
inline uint32_t Crc32(std::string_view data, uint32_t seed = 0) {
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    c = internal::kCrc32Table[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace ultraverse

#endif  // ULTRAVERSE_UTIL_CRC32_H_
