#ifndef ULTRAVERSE_UTIL_THREAD_POOL_H_
#define ULTRAVERSE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ultraverse {

/// Minimal fixed-size thread pool used by the replay scheduler and by
/// benchmarks that run regular traffic concurrently with a what-if replay.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks may enqueue further tasks.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task (including tasks submitted by other
  /// tasks during the wait) has finished.
  void WaitIdle();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> tasks_;
  size_t active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace ultraverse

#endif  // ULTRAVERSE_UTIL_THREAD_POOL_H_
