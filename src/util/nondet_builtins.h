#ifndef ULTRAVERSE_UTIL_NONDET_BUILTINS_H_
#define ULTRAVERSE_UTIL_NONDET_BUILTINS_H_

#include <string>

namespace ultraverse::nondet {

// The single source of truth for which builtins are nondeterministic.
//
// Three subsystems must agree on these lists or record/replay breaks
// silently: the sqldb evaluator (records each call's value in the
// NondetRecord so retroactive replay substitutes the logged result, §4.4),
// the application-language interpreter backing the DSE layer (each call
// spawns a blackbox symbol during concolic execution, §3.3), and the
// static analysis / lint pass (flags uses so reviewers know which
// statements depend on capture). Membership checks below are the only
// place the names are spelled.

// --- SQL level (sqldb). Function names are upper-cased by the parser. ----

inline bool IsSqlTimeBuiltin(const std::string& upper_name) {
  return upper_name == "NOW" || upper_name == "CURTIME" ||
         upper_name == "CURRENT_TIMESTAMP" || upper_name == "UNIX_TIMESTAMP";
}

inline bool IsSqlRandomBuiltin(const std::string& upper_name) {
  return upper_name == "RAND" || upper_name == "RANDOM";
}

inline bool IsSqlNondetBuiltin(const std::string& upper_name) {
  return IsSqlTimeBuiltin(upper_name) || IsSqlRandomBuiltin(upper_name);
}

// --- Application level (UvScript). Names are case-sensitive. -------------

inline bool IsAppRandomBuiltin(const std::string& name) {
  return name == "rand" || name == "random";
}

inline bool IsAppTimeBuiltin(const std::string& name) {
  return name == "now" || name == "gettime";
}

/// Client-side environment reads (§3.3): DOM inputs and the client
/// fingerprint resolve from the configured client environment concretely
/// and become per-input symbols under DSE.
inline bool IsAppClientBuiltin(const std::string& name) {
  return name == "dom_input" || name == "user_agent";
}

/// Opaque external services whose responses are blackbox objects.
inline bool IsAppBlackboxBuiltin(const std::string& name) {
  return name == "http_send";
}

inline bool IsAppNondetBuiltin(const std::string& name) {
  return IsAppRandomBuiltin(name) || IsAppTimeBuiltin(name) ||
         IsAppClientBuiltin(name) || IsAppBlackboxBuiltin(name);
}

}  // namespace ultraverse::nondet

#endif  // ULTRAVERSE_UTIL_NONDET_BUILTINS_H_
