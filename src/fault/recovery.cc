#include "fault/recovery.h"

#include <utility>
#include <vector>

#include "core/replay.h"
#include "obs/metrics.h"
#include "sqldb/parser.h"
#include "sqldb/wal/wal.h"
#include "util/stopwatch.h"

namespace ultraverse::fault {

namespace {

/// Re-applies one durable what-if commit against the recovered universe.
/// The marker's retroactive statement replays with the nondeterminism the
/// original run recorded, and the replay itself runs full-naive — correct
/// by the differential-oracle invariant (selective ≡ full-naive, DESIGN.md
/// §9) and free of any dependency on analyzer configuration.
Status ApplyMarker(const sql::WhatIfMarker& marker, sql::Database* db,
                   sql::QueryLog* log) {
  core::RetroOp op;
  op.kind = static_cast<core::RetroOp::Kind>(marker.kind);
  op.index = marker.index;
  if (op.kind != core::RetroOp::Kind::kRemove) {
    UV_ASSIGN_OR_RETURN(op.new_stmt,
                        sql::Parser::ParseStatement(marker.new_sql));
    op.new_sql = marker.new_sql;
  }
  core::RetroactiveEngine::Options opts;
  opts.mode = core::ReplayMode::kFullNaive;
  opts.parallel = false;
  opts.new_stmt_nondet = &marker.new_stmt_nondet;
  // Mirror the live facade: publish rewrites the log to the alternate
  // history, so the WAL entries and markers that follow this one replay
  // against exactly the history they originally saw (indices included —
  // an add/remove publish shifts every later commit index).
  opts.rewrite_log = log;
  // Full-naive replay never consults the per-entry analysis (only its
  // size, which bounds the replay horizon) or the analyzer.
  std::vector<core::QueryRW> analysis(log->size());
  core::RetroactiveEngine engine(db, log, opts);
  UV_ASSIGN_OR_RETURN(core::ReplayStats stats,
                      engine.Execute(op, analysis, /*analyzer=*/nullptr));
  (void)stats;
  return Status::OK();
}

}  // namespace

Result<RecoveryReport> RecoverInto(const std::string& path,
                                   sql::Database* db, sql::QueryLog* log) {
  RecoveryReport report;
  Stopwatch watch;
  // Scan + truncate only; the stream below decides what executes when.
  UV_ASSIGN_OR_RETURN(sql::WalRecovery scan,
                      sql::RecoverWal(path, /*truncate_file=*/true));
  report.truncated_bytes = scan.truncated_bytes;
  report.tail_torn = scan.tail_torn;

  log->mutable_entries().clear();
  // Replay the interleaved stream in commit order: a marker with
  // entries_before == k committed after entry k and before entry k+1, and
  // every later entry originally executed against the already-rewritten
  // universe — ordering is correctness, not cosmetics.
  size_t next_marker = 0;
  for (size_t k = 0; k <= scan.entries.size(); ++k) {
    while (next_marker < scan.markers.size() &&
           scan.markers[next_marker].entries_before == k) {
      UV_RETURN_NOT_OK(ApplyMarker(scan.markers[next_marker], db, log));
      ++report.markers_applied;
      ++next_marker;
    }
    if (k == scan.entries.size()) break;
    sql::LogEntry& entry = scan.entries[k];
    sql::ExecContext ctx;
    ctx.StartReplaying(&entry.nondet);
    uint64_t commit_index = log->size() + 1;
    Result<sql::ExecResult> r = db->Execute(*entry.stmt, commit_index, &ctx);
    if (!r.ok() &&
        core::ClassifyReplayError(r.status()) != core::ReplayErrorClass::kBenignSkip) {
      return r.status();
    }
    log->Append(std::move(entry));
    ++report.entries_replayed;
  }

  report.seconds = watch.ElapsedSeconds();
  static obs::Histogram* const recovery_us =
      obs::Registry::Global().histogram("uv.fault.recovery_us");
  recovery_us->Record(watch.ElapsedMicros());
  return report;
}

Result<RecoveredState> RecoverState(const std::string& path) {
  RecoveredState state;
  state.db = std::make_unique<sql::Database>();
  state.log = std::make_unique<sql::QueryLog>();
  UV_ASSIGN_OR_RETURN(state.report,
                      RecoverInto(path, state.db.get(), state.log.get()));
  return state;
}

}  // namespace ultraverse::fault
