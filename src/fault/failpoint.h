#ifndef ULTRAVERSE_FAULT_FAILPOINT_H_
#define ULTRAVERSE_FAULT_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace ultraverse::fault {

namespace internal {
/// Constant-initialized process-wide gate, same discipline as the obs
/// tracing gate: while no failpoint is armed (and site tracking is off),
/// an UV_FAILPOINT site costs exactly one relaxed load — no registry
/// lookup, no lock, no static-init guard.
inline std::atomic<bool> g_failpoints_active{false};
}  // namespace internal

inline bool FailpointsActive() {
  return internal::g_failpoints_active.load(std::memory_order_relaxed);
}

/// What an armed failpoint does when its trigger policy fires.
enum class FailAction {
  kError,  // Evaluate() returns an error Status
  kCrash,  // Evaluate() throws CrashException (simulated process death)
  kDelay,  // Evaluate() sleeps delay_micros, then succeeds
};

/// Simulated crash thrown from an armed kCrash failpoint. The library
/// itself never catches it: it unwinds to whoever staged the run (the
/// crash harness / sweep driver), which then abandons all in-memory state
/// and recovers from the durable WAL — exactly what a real process death
/// forces. Deliberately not derived from std::exception so no generic
/// catch(...) -> translate-to-Status layer can swallow it by accident.
struct CrashException {
  std::string site;  // failpoint that "killed" the process
};

/// Trigger policy + action of one armed failpoint.
struct FailpointConfig {
  FailAction action = FailAction::kError;
  StatusCode error_code = StatusCode::kUnavailable;  // kError: injected code
  uint64_t delay_micros = 0;                     // kDelay: sleep length

  /// Evaluations to let pass before the policy applies (0 = immediately).
  uint64_t skip_first = 0;
  /// Fire on every Nth eligible evaluation (1 = every time).
  uint64_t every_n = 1;
  /// Fire at most this many times, then the site goes quiet (0 = no cap).
  uint64_t max_fires = 0;
  /// Independent fire probability in [0,1] applied after every_n matches.
  double probability = 1.0;
};

/// One registered injection site. Sites self-register on first evaluation
/// (UV_FAILPOINT keeps a function-local static Site), so a discovery run
/// of a code path enumerates every failpoint it can reach.
class Site {
 public:
  explicit Site(const char* name);
  const char* name() const { return name_; }

  /// Hot-path check: returns OK when unarmed or the policy does not fire.
  Status Evaluate();

  uint64_t evaluations() const {
    return evaluations_.load(std::memory_order_relaxed);
  }
  uint64_t fires() const { return fires_.load(std::memory_order_relaxed); }

 private:
  friend class FailpointRegistry;
  /// Placeholder construction inside the registry (which already holds its
  /// mutex): skips the self-registration the public constructor performs.
  struct NoRegisterTag {};
  Site(const char* name, NoRegisterTag) : name_(name) {}

  const char* name_;
  std::atomic<uint64_t> evaluations_{0};
  std::atomic<uint64_t> fires_{0};
};

/// Process-wide failpoint registry: arm/disarm by name, enumerate sites,
/// parse env/CLI specs. Sites are registered lazily (first evaluation or
/// first Arm), live forever, and are looked up on the hot path only while
/// something is armed.
class FailpointRegistry {
 public:
  static FailpointRegistry& Global();

  /// Arms `site` with `config` (replacing any previous arming). The site
  /// need not have been evaluated yet.
  void Arm(const std::string& site, FailpointConfig config);
  void Disarm(const std::string& site);
  /// Disarms everything and turns site tracking off.
  void DisarmAll();

  /// Arms failpoints from a comma-separated spec (also the ULTRA_FAILPOINTS
  /// env format; the CLI --failpoints flag passes the same syntax):
  ///
  ///   site=error                    inject kUnavailable every eval
  ///   site=error(code)              code: timeout|internal|unavailable...
  ///   site=crash                    throw CrashException
  ///   site=delay(micros)            sleep
  ///   modifiers, appended:          site=error:once
  ///     :once        max_fires=1
  ///     :everyN      every_n=N      (e.g. :every3)
  ///     :skipN       skip_first=N
  ///     :pP          probability=P  (e.g. :p0.5)
  Status ArmFromSpec(const std::string& spec);

  /// Arms from the ULTRA_FAILPOINTS environment variable (no-op when
  /// unset). Called once by tools that opt in.
  Status ArmFromEnv();

  /// With tracking on, every evaluated site registers and counts even when
  /// nothing is armed (the crash-point sweep's discovery run). Costs the
  /// armed-path registry lookup at every site while on.
  void SetTracking(bool on);

  /// Names of every site registered so far (evaluated at least once while
  /// armed/tracked, or explicitly armed), sorted.
  std::vector<std::string> KnownSites() const;
  /// Total times `site` fired (0 for unknown sites).
  uint64_t Fires(const std::string& site) const;
  /// Total times `site` was evaluated while armed/tracked.
  uint64_t Evaluations(const std::string& site) const;

  /// Internal: slow path of Site::Evaluate (site armed or tracking on).
  Status EvaluateSlow(Site* site);
  /// Internal: registers `site` under its name (idempotent).
  void Register(Site* site);

 private:
  FailpointRegistry() = default;
  void RecomputeActive();  // updates the global relaxed gate

  struct Armed {
    FailpointConfig config;
    uint64_t eligible = 0;  // evaluations past skip_first
    uint64_t fired = 0;
    uint64_t rng = 0x9E3779B97F4A7C15ull;  // per-arming deterministic PRNG
  };

  mutable std::mutex mu_;
  std::map<std::string, Site*> sites_;
  /// Sites armed before their code path ever ran: owned placeholders so
  /// Arm() works without a Site object (merged when the real site shows up).
  std::map<std::string, std::unique_ptr<Site>> placeholder_sites_;
  std::map<std::string, Armed> armed_;
  bool tracking_ = false;
};

/// Evaluates the named failpoint. Returns OK when inactive. UV_FAILPOINT
/// wraps this with the enclosing function's Status-return plumbing.
#define UV_FAILPOINT_EVAL(site_name)                                    \
  ([]() -> ::ultraverse::Status {                                       \
    if (!::ultraverse::fault::FailpointsActive()) {                     \
      return ::ultraverse::Status::OK();                                \
    }                                                                   \
    static ::ultraverse::fault::Site uv_fp_site(site_name);             \
    return uv_fp_site.Evaluate();                                       \
  }())

/// Failpoint site in a function returning Status (or inside a block whose
/// `return` propagates a Status): injects an error return, a simulated
/// crash, or a delay when armed; one relaxed load when not.
#define UV_FAILPOINT(site_name)                                  \
  do {                                                           \
    ::ultraverse::Status uv_fp_st = UV_FAILPOINT_EVAL(site_name); \
    if (!uv_fp_st.ok()) return uv_fp_st;                         \
  } while (0)

/// Failpoint site in void/non-Status contexts: crash and delay actions
/// apply; an injected error Status is recorded into `status_out` (which
/// the surrounding code checks) instead of returned.
#define UV_FAILPOINT_STATUS(site_name, status_out)                \
  do {                                                            \
    ::ultraverse::Status uv_fp_st = UV_FAILPOINT_EVAL(site_name); \
    if (!uv_fp_st.ok()) (status_out) = uv_fp_st;                  \
  } while (0)

}  // namespace ultraverse::fault

#endif  // ULTRAVERSE_FAULT_FAILPOINT_H_
