#ifndef ULTRAVERSE_FAULT_RECOVERY_H_
#define ULTRAVERSE_FAULT_RECOVERY_H_

#include <memory>
#include <string>

#include "sqldb/database.h"
#include "sqldb/query_log.h"
#include "util/status.h"

namespace ultraverse::fault {

/// What a WAL replay rebuilt (DESIGN.md §11).
struct RecoveryReport {
  size_t entries_replayed = 0;   // committed entries re-executed
  size_t markers_applied = 0;    // durable what-if commits re-applied
  size_t truncated_bytes = 0;    // torn/corrupt tail dropped from disk
  bool tail_torn = false;
  double seconds = 0;            // end-to-end recovery wall time
};

/// Rebuilds `db` (must be freshly constructed) and `log` (cleared) from the
/// durable WAL at `path`, exactly as a restart after a crash would:
///
///  1. scan the WAL, truncating the torn tail (the prefix is truth),
///  2. walk the record stream in commit order — each entry re-executes with
///     its recorded nondeterminism and appends to `log`; each what-if
///     commit marker re-applies its retroactive operation through
///     full-naive replay, re-injecting the marker's recorded
///     nondeterminism so the re-derived universe is bit-identical to the
///     one the original what-if published.
///
/// Because the marker is fsynced before the live tables ever swap (the
/// two-phase publish in RetroactiveEngine), recovery after a crash at ANY
/// failpoint lands in the pre-what-if state (no marker on disk) or the
/// fully rewritten one (marker durable) — never between. Entries replay
/// through direct statement execution, i.e. the transpiled/T-mode
/// executor; B/D app-level histories recover through their logged CALL
/// form.
Result<RecoveryReport> RecoverInto(const std::string& path,
                                   sql::Database* db, sql::QueryLog* log);

/// Self-contained recovered universe (harnesses and the crash sweep).
struct RecoveredState {
  std::unique_ptr<sql::Database> db;
  std::unique_ptr<sql::QueryLog> log;
  RecoveryReport report;
};

Result<RecoveredState> RecoverState(const std::string& path);

}  // namespace ultraverse::fault

#endif  // ULTRAVERSE_FAULT_RECOVERY_H_
