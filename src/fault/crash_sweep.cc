#include "fault/crash_sweep.h"

#include <cstdio>
#include <map>
#include <memory>
#include <sstream>

#include "fault/failpoint.h"
#include "fault/recovery.h"
#include "sqldb/parser.h"
#include "sqldb/state_diff.h"
#include "sqldb/wal/wal.h"
#include "util/stopwatch.h"

namespace ultraverse::fault {

namespace {

Result<core::RetroOp> MakeOp(const oracle::WhatIfCase& c) {
  core::RetroOp op;
  op.kind = c.kind;
  op.index = c.index;
  if (c.kind != core::RetroOp::Kind::kRemove) {
    UV_ASSIGN_OR_RETURN(op.new_stmt, sql::Parser::ParseStatement(c.new_sql));
    op.new_sql = c.new_sql;
  }
  return op;
}

struct HarnessOutcome {
  bool crashed = false;
  std::string crash_site;
  Status engine_status;  // when not crashed
};

/// One durable what-if run: build the case's universe, mirror its history
/// into a fresh WAL, then execute the selective replay with the WAL
/// attached. `arm` runs after setup and analysis, right before Execute —
/// so armed failpoints (and tracking) see only the replay path, never the
/// harness's own setup traffic. A kCrash firing unwinds to here; the WAL
/// buffer is abandoned un-synced, as process death would leave it.
Result<HarnessOutcome> RunOnce(const oracle::WhatIfCase& c,
                               const std::string& wal_path,
                               const std::function<void()>& arm) {
  UV_ASSIGN_OR_RETURN(std::unique_ptr<oracle::Universe> u,
                      oracle::Universe::Build(c.history));
  std::remove(wal_path.c_str());
  UV_ASSIGN_OR_RETURN(std::unique_ptr<sql::Wal> wal, sql::Wal::Open(wal_path));
  for (const auto& entry : u->log().entries()) {
    UV_RETURN_NOT_OK(wal->AppendEntry(entry));
  }
  UV_RETURN_NOT_OK(wal->Sync());
  UV_ASSIGN_OR_RETURN(const std::vector<core::QueryRW>* analysis,
                      u->Analysis());
  UV_ASSIGN_OR_RETURN(core::RetroOp op, MakeOp(c));

  core::RetroactiveEngine::Options opts;
  opts.mode = core::ReplayMode::kSelective;
  opts.parallel = false;  // deterministic site evaluation order
  opts.wal = wal.get();
  core::RetroactiveEngine engine(u->db(), &u->log(), opts);

  if (arm) arm();
  HarnessOutcome out;
  try {
    Result<core::ReplayStats> r = engine.Execute(op, *analysis, u->analyzer());
    out.engine_status = r.ok() ? Status::OK() : r.status();
  } catch (const CrashException& e) {
    out.crashed = true;
    out.crash_site = e.site;
    wal->Abandon();
  }
  FailpointRegistry::Global().DisarmAll();
  return out;
}

struct CrashPointOutcome {
  bool diverged = false;
  bool committed = false;  // a commit marker survived to disk
  std::string detail;
};

/// Crash at (site, skip) during the case's durable replay, recover from
/// the WAL, and check the recovered universe against the pre/post
/// references. The on-disk marker decides which side MUST match: the
/// two-phase publish promises never-in-between.
Result<CrashPointOutcome> CheckCrashPoint(const oracle::WhatIfCase& c,
                                          const std::string& site,
                                          uint64_t skip,
                                          const std::string& wal_path) {
  CrashPointOutcome outcome;

  // Reference states: the untouched original timeline and the fully
  // rewritten one (full-naive ground truth, same as the oracle's
  // reference side). A rewritten history both engines reject has no post
  // state — recovery must then always land pre.
  UV_ASSIGN_OR_RETURN(std::unique_ptr<oracle::Universe> pre,
                      oracle::Universe::Build(c.history));
  UV_ASSIGN_OR_RETURN(std::unique_ptr<oracle::Universe> post,
                      oracle::Universe::Build(c.history));
  UV_ASSIGN_OR_RETURN(core::RetroOp post_op, MakeOp(c));
  bool have_post = post->RunFullNaive(post_op).ok();

  UV_ASSIGN_OR_RETURN(
      HarnessOutcome run,
      RunOnce(c, wal_path, [&]() {
        FailpointConfig config;
        config.action = FailAction::kCrash;
        config.skip_first = skip;
        config.max_fires = 1;
        FailpointRegistry::Global().Arm(site, config);
      }));

  Result<RecoveredState> recovered = RecoverState(wal_path);
  if (!recovered.ok()) {
    outcome.diverged = true;
    outcome.detail = "recovery failed after crash at " + site + ": " +
                     recovered.status().message();
    return outcome;
  }
  outcome.committed = recovered->report.markers_applied > 0;

  // Protocol invariant: an Execute() that returned success must have made
  // its commit marker durable first.
  if (!run.crashed && run.engine_status.ok() && !outcome.committed) {
    outcome.diverged = true;
    outcome.detail = "replay succeeded but no commit marker reached disk";
    return outcome;
  }
  if (outcome.committed && !have_post) {
    outcome.diverged = true;
    outcome.detail =
        "commit marker on disk but the rewritten history is rejected";
    return outcome;
  }

  const sql::Database& expected =
      outcome.committed ? *post->db() : *pre->db();
  sql::StateDiff diff =
      sql::DiffDatabases(*recovered->db, expected, "recovered",
                         outcome.committed ? "post-whatif" : "pre-whatif");
  if (!diff.equal()) {
    outcome.diverged = true;
    std::ostringstream os;
    os << "crash at " << site << " (skip " << skip << ", "
       << (run.crashed ? "crashed" : "completed") << ", recovered to "
       << (outcome.committed ? "post" : "pre") << " expected):\n"
       << diff.ToString();
    outcome.detail = os.str();
  }
  return outcome;
}

}  // namespace

Result<CrashSweepReport> RunCrashSweep(const CrashSweepOptions& options) {
  CrashSweepReport report;
  const std::string wal_path =
      options.wal_path.empty() ? "crash_sweep.wal" : options.wal_path;
  Stopwatch budget;
  auto out_of_budget = [&]() {
    return options.seconds > 0 && budget.ElapsedSeconds() >= options.seconds;
  };
  auto progress = [&](const std::string& msg) {
    if (options.progress) options.progress(msg);
  };

  FailpointRegistry& registry = FailpointRegistry::Global();
  registry.DisarmAll();

  std::map<std::string, bool> seen_sites;
  for (uint64_t case_number = 0;
       (options.histories == 0 || case_number < options.histories) &&
       !out_of_budget();
       ++case_number) {
    oracle::WhatIfCase c = oracle::GenerateCase(options.seed, case_number);

    // Discovery: run the durable replay once with tracking on and nothing
    // armed, then read back which sites the path evaluated and how often.
    // Sites linger in the registry across cases, so reachability is the
    // per-run evaluation delta, not mere registration.
    std::map<std::string, uint64_t> evals_before;
    for (const std::string& site : registry.KnownSites()) {
      evals_before[site] = registry.Evaluations(site);
    }
    Result<HarnessOutcome> discovery = RunOnce(
        c, wal_path, [&]() { registry.SetTracking(true); });
    if (!discovery.ok()) {
      progress("case " + std::to_string(case_number) +
               ": discovery failed: " + discovery.status().message());
      continue;
    }
    ++report.cases_run;

    std::vector<std::pair<std::string, uint64_t>> crash_points;
    for (const std::string& site : registry.KnownSites()) {
      uint64_t before = 0;
      if (auto it = evals_before.find(site); it != evals_before.end()) {
        before = it->second;
      }
      uint64_t reached = registry.Evaluations(site) - before;
      if (reached == 0) continue;
      if (!seen_sites[site]) {
        seen_sites[site] = true;
        report.sites.push_back(site);
      }
      // Crash at the first evaluation always; for sites evaluated many
      // times (per-slot points) also crash mid-stream — the two ends of
      // the replay bracket the interesting marker/swap interleavings.
      crash_points.emplace_back(site, 0);
      if (reached > 1) crash_points.emplace_back(site, reached / 2);
    }

    for (const auto& [site, skip] : crash_points) {
      if (out_of_budget()) break;
      UV_ASSIGN_OR_RETURN(CrashPointOutcome outcome,
                          CheckCrashPoint(c, site, skip, wal_path));
      ++report.crash_points;
      if (!outcome.diverged) {
        ++(outcome.committed ? report.recoveries_post
                             : report.recoveries_pre);
        continue;
      }
      progress("case " + std::to_string(case_number) + ": DIVERGED at " +
               site + " skip " + std::to_string(skip));
      CrashDivergence divergence;
      divergence.case_number = case_number;
      divergence.site = site;
      divergence.skip = skip;
      divergence.detail = outcome.detail;
      divergence.shrunk = c;
      if (options.shrink) {
        divergence.shrunk = oracle::ShrinkCaseIf(
            c, [&](const oracle::WhatIfCase& candidate) {
              Result<CrashPointOutcome> r =
                  CheckCrashPoint(candidate, site, skip, wal_path);
              return r.ok() && r->diverged;
            });
        Result<CrashPointOutcome> final_run =
            CheckCrashPoint(divergence.shrunk, site, skip, wal_path);
        if (final_run.ok()) divergence.detail = final_run->detail;
      }
      report.divergences.push_back(std::move(divergence));
    }
    progress("case " + std::to_string(case_number) + ": " +
             std::to_string(crash_points.size()) + " crash points, " +
             std::to_string(report.divergences.size()) + " divergences");
  }

  std::remove(wal_path.c_str());
  return report;
}

}  // namespace ultraverse::fault
