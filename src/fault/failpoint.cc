#include "fault/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "util/string_util.h"

namespace ultraverse::fault {

Site::Site(const char* name) : name_(name) {
  FailpointRegistry::Global().Register(this);
}

Status Site::Evaluate() {
  return FailpointRegistry::Global().EvaluateSlow(this);
}

FailpointRegistry& FailpointRegistry::Global() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

void FailpointRegistry::Register(Site* site) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = sites_.find(site->name());
  if (it == sites_.end()) {
    sites_.emplace(site->name(), site);
    return;
  }
  // The name was armed before its code path ever ran, leaving a
  // placeholder in the map: hand its counts to the real site and retire
  // it, so Fires()/Evaluations() track the object Evaluate() touches.
  auto ph = placeholder_sites_.find(site->name());
  if (ph != placeholder_sites_.end() && it->second == ph->second.get()) {
    site->evaluations_.store(ph->second->evaluations(),
                             std::memory_order_relaxed);
    site->fires_.store(ph->second->fires(), std::memory_order_relaxed);
    it->second = site;
    placeholder_sites_.erase(ph);
  }
  // Otherwise: a second real Site with the same name (one per translation
  // unit is possible) — first registration wins.
}

void FailpointRegistry::Arm(const std::string& site, FailpointConfig config) {
  std::lock_guard<std::mutex> g(mu_);
  if (sites_.find(site) == sites_.end()) {
    // Armed before its code path ever ran: keep a placeholder Site so the
    // name enumerates. Built with the no-register tag — the public Site
    // constructor would re-enter the registry mutex held right now. Its
    // name points into the map node's key, which std::map keeps stable
    // for the placeholder's whole lifetime.
    auto [ph, inserted] = placeholder_sites_.emplace(site, nullptr);
    if (inserted) {
      ph->second = std::unique_ptr<Site>(
          new Site(ph->first.c_str(), Site::NoRegisterTag{}));
    }
    sites_.emplace(site, ph->second.get());
  }
  armed_[site] = Armed{config, 0, 0, 0x9E3779B97F4A7C15ull ^ site.size()};
  RecomputeActive();
}

void FailpointRegistry::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> g(mu_);
  armed_.erase(site);
  RecomputeActive();
}

void FailpointRegistry::DisarmAll() {
  std::lock_guard<std::mutex> g(mu_);
  armed_.clear();
  tracking_ = false;
  RecomputeActive();
}

void FailpointRegistry::SetTracking(bool on) {
  std::lock_guard<std::mutex> g(mu_);
  tracking_ = on;
  RecomputeActive();
}

void FailpointRegistry::RecomputeActive() {
  internal::g_failpoints_active.store(!armed_.empty() || tracking_,
                                      std::memory_order_relaxed);
}

std::vector<std::string> FailpointRegistry::KnownSites() const {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<std::string> names;
  names.reserve(sites_.size());
  for (const auto& [name, site] : sites_) {
    (void)site;
    names.push_back(name);
  }
  return names;  // map order == sorted
}

uint64_t FailpointRegistry::Fires(const std::string& site) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second->fires();
}

uint64_t FailpointRegistry::Evaluations(const std::string& site) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second->evaluations();
}

Status FailpointRegistry::EvaluateSlow(Site* site) {
  FailpointConfig config;
  {
    std::lock_guard<std::mutex> g(mu_);
    site->evaluations_.fetch_add(1, std::memory_order_relaxed);
    auto it = armed_.find(site->name());
    if (it == armed_.end()) return Status::OK();
    Armed& armed = it->second;

    // Trigger policy, evaluated under the registry lock so concurrent
    // workers hitting the same site observe one global once/every-N order.
    ++armed.eligible;
    if (armed.eligible <= armed.config.skip_first) return Status::OK();
    if (armed.config.max_fires != 0 &&
        armed.fired >= armed.config.max_fires) {
      return Status::OK();
    }
    uint64_t past_skip = armed.eligible - armed.config.skip_first;
    uint64_t every = armed.config.every_n == 0 ? 1 : armed.config.every_n;
    if ((past_skip - 1) % every != 0) return Status::OK();
    if (armed.config.probability < 1.0) {
      // splitmix64: deterministic per arming, independent of call sites.
      armed.rng += 0x9E3779B97F4A7C15ull;
      uint64_t z = armed.rng;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      z ^= z >> 31;
      double u = double(z >> 11) * (1.0 / 9007199254740992.0);  // [0,1)
      if (u >= armed.config.probability) return Status::OK();
    }
    ++armed.fired;
    site->fires_.fetch_add(1, std::memory_order_relaxed);
    config = armed.config;
  }

  static obs::Counter* const injected =
      obs::Registry::Global().counter("uv.fault.injected");
  injected->Inc();

  switch (config.action) {
    case FailAction::kError:
      return Status(config.error_code,
                    std::string("injected fault at ") + site->name());
    case FailAction::kCrash:
      // Post-mortem artifact: stamp the in-flight what-if report (if any)
      // and dump the flight-recorder ring before the simulated process
      // dies (DESIGN.md §13).
      obs::FlightRecorder::Global().NoteCrash(
          std::string("failpoint crash at ") + site->name());
      throw CrashException{site->name()};
    case FailAction::kDelay:
      std::this_thread::sleep_for(
          std::chrono::microseconds(config.delay_micros));
      return Status::OK();
  }
  return Status::OK();
}

namespace {

Result<StatusCode> ParseErrorCode(const std::string& name) {
  if (name.empty() || name == "unavailable") return StatusCode::kUnavailable;
  if (name == "timeout") return StatusCode::kTimeout;
  if (name == "internal") return StatusCode::kInternal;
  if (name == "constraint") return StatusCode::kConstraintViolation;
  if (name == "notfound") return StatusCode::kNotFound;
  if (name == "invalid") return StatusCode::kInvalidArgument;
  if (name == "cancelled") return StatusCode::kCancelled;
  if (name == "deadline") return StatusCode::kDeadlineExceeded;
  return Status::InvalidArgument("unknown failpoint error code: " + name);
}

/// Parses one "site=action(arg):mod:mod" clause into (site, config).
Status ParseClause(const std::string& clause, std::string* site,
                   FailpointConfig* config) {
  size_t eq = clause.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::InvalidArgument("failpoint spec needs site=action: " +
                                   clause);
  }
  *site = clause.substr(0, eq);
  std::vector<std::string> parts = Split(clause.substr(eq + 1), ':');
  if (parts.empty()) {
    return Status::InvalidArgument("failpoint spec needs an action: " +
                                   clause);
  }
  std::string action = parts[0], arg;
  size_t paren = action.find('(');
  if (paren != std::string::npos) {
    if (action.back() != ')') {
      return Status::InvalidArgument("unbalanced '(' in: " + clause);
    }
    arg = action.substr(paren + 1, action.size() - paren - 2);
    action = action.substr(0, paren);
  }
  if (action == "error") {
    config->action = FailAction::kError;
    UV_ASSIGN_OR_RETURN(config->error_code, ParseErrorCode(arg));
  } else if (action == "crash") {
    config->action = FailAction::kCrash;
  } else if (action == "delay") {
    config->action = FailAction::kDelay;
    config->delay_micros = arg.empty() ? 1000 : std::strtoull(
        arg.c_str(), nullptr, 10);
  } else {
    return Status::InvalidArgument("unknown failpoint action: " + action);
  }
  for (size_t i = 1; i < parts.size(); ++i) {
    const std::string& mod = parts[i];
    if (mod == "once") {
      config->max_fires = 1;
    } else if (mod.rfind("every", 0) == 0) {
      config->every_n = std::strtoull(mod.c_str() + 5, nullptr, 10);
      if (config->every_n == 0) {
        return Status::InvalidArgument("everyN needs N>=1: " + mod);
      }
    } else if (mod.rfind("skip", 0) == 0) {
      config->skip_first = std::strtoull(mod.c_str() + 4, nullptr, 10);
    } else if (mod.rfind("max", 0) == 0) {
      config->max_fires = std::strtoull(mod.c_str() + 3, nullptr, 10);
    } else if (mod.rfind("p", 0) == 0) {
      config->probability = std::strtod(mod.c_str() + 1, nullptr);
      if (config->probability < 0 || config->probability > 1) {
        return Status::InvalidArgument("probability must be in [0,1]: " + mod);
      }
    } else {
      return Status::InvalidArgument("unknown failpoint modifier: " + mod);
    }
  }
  return Status::OK();
}

}  // namespace

Status FailpointRegistry::ArmFromSpec(const std::string& spec) {
  for (const std::string& raw : Split(spec, ',')) {
    std::string clause = raw;
    if (clause.empty()) continue;
    std::string site;
    FailpointConfig config;
    UV_RETURN_NOT_OK(ParseClause(clause, &site, &config));
    Arm(site, config);
  }
  return Status::OK();
}

Status FailpointRegistry::ArmFromEnv() {
  const char* spec = std::getenv("ULTRA_FAILPOINTS");
  if (!spec || !*spec) return Status::OK();
  return ArmFromSpec(spec);
}

}  // namespace ultraverse::fault
