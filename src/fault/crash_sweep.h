#ifndef ULTRAVERSE_FAULT_CRASH_SWEEP_H_
#define ULTRAVERSE_FAULT_CRASH_SWEEP_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "oracle/fuzzer.h"
#include "util/status.h"

namespace ultraverse::fault {

/// Crash-point sweep (DESIGN.md §11): for each generated what-if case,
/// discover every failpoint the durable replay path reaches, then crash
/// the "process" at each one (throw-to-top, WAL buffer abandoned) and
/// recover from the WAL. Recovery must land in the pre-what-if state when
/// no commit marker reached disk, and in the fully-rewritten state when
/// one did — any other recovered state is a divergence, shrunk to a
/// minimal .sql repro like an oracle failure.
struct CrashSweepOptions {
  uint64_t seed = 1;
  /// Generated cases (same generator as the what-if fuzzer; a case number
  /// produces the identical case in both tools).
  size_t histories = 5;
  /// Wall-clock budget in seconds; 0 = unbounded.
  double seconds = 0;
  bool shrink = true;
  /// Scratch WAL file; recreated per run. Empty = "crash_sweep.wal" in the
  /// working directory.
  std::string wal_path;
  std::function<void(const std::string&)> progress;
};

struct CrashDivergence {
  uint64_t case_number = 0;
  std::string site;         // failpoint that "killed" the process
  uint64_t skip = 0;        // evaluations let through before the crash
  oracle::WhatIfCase shrunk;
  std::string detail;       // recovery diff / failure description
};

struct CrashSweepReport {
  size_t cases_run = 0;
  size_t crash_points = 0;     // (case, site, offset) crash+recover runs
  size_t recoveries_pre = 0;   // recovered to the original timeline
  size_t recoveries_post = 0;  // recovered to the rewritten timeline
  std::vector<std::string> sites;  // every failpoint site discovered
  std::vector<CrashDivergence> divergences;
};

Result<CrashSweepReport> RunCrashSweep(const CrashSweepOptions& options);

}  // namespace ultraverse::fault

#endif  // ULTRAVERSE_FAULT_CRASH_SWEEP_H_
