#include "symexec/sym_expr.h"

#include <cctype>

#include "applang/app_ops.h"

namespace ultraverse::sym {

SymExprPtr SymExpr::Symbol(std::string name, SymbolOrigin origin) {
  auto e = std::make_shared<SymExpr>();
  e->kind = SymKind::kSymbol;
  e->symbol_name = std::move(name);
  e->origin = origin;
  return e;
}

SymExprPtr SymExpr::Const(app::AppValue v) {
  auto e = std::make_shared<SymExpr>();
  e->kind = SymKind::kConst;
  e->constant = std::move(v);
  return e;
}

SymExprPtr SymExpr::Binary(app::AppBinOp op, SymExprPtr a, SymExprPtr b,
                           bool string_concat) {
  auto e = std::make_shared<SymExpr>();
  e->kind = SymKind::kBinary;
  e->bin_op = op;
  e->string_concat = string_concat;
  e->children = {std::move(a), std::move(b)};
  return e;
}

SymExprPtr SymExpr::Unary(app::AppUnOp op, SymExprPtr a) {
  auto e = std::make_shared<SymExpr>();
  e->kind = SymKind::kUnary;
  e->un_op = op;
  e->children = {std::move(a)};
  return e;
}

namespace {
const char* Z3Op(app::AppBinOp op, bool string_concat) {
  using B = app::AppBinOp;
  switch (op) {
    case B::kAdd: return string_concat ? "str.++" : "+";
    case B::kSub: return "-";
    case B::kMul: return "*";
    case B::kDiv: return "/";
    case B::kMod: return "mod";
    case B::kEq: return "=";
    case B::kNe: return "distinct";
    case B::kLt: return "<";
    case B::kLe: return "<=";
    case B::kGt: return ">";
    case B::kGe: return ">=";
    case B::kAnd: return "and";
    case B::kOr: return "or";
  }
  return "?";
}
}  // namespace

std::string SymExpr::ToZ3Script() const {
  switch (kind) {
    case SymKind::kSymbol:
      return symbol_name;
    case SymKind::kConst:
      if (constant.kind == app::AppValue::Kind::kString) {
        return "\"" + constant.str + "\"";
      }
      return constant.ToStr();
    case SymKind::kBinary:
      return "(" + std::string(Z3Op(bin_op, string_concat)) + " " +
             children[0]->ToZ3Script() + " " + children[1]->ToZ3Script() + ")";
    case SymKind::kUnary:
      return std::string(un_op == app::AppUnOp::kNot ? "(not " : "(- ") +
             children[0]->ToZ3Script() + ")";
  }
  return "?";
}

app::AppValue EvalSym(const SymExpr& e, const Assignment& assignment) {
  switch (e.kind) {
    case SymKind::kConst:
      return e.constant;
    case SymKind::kSymbol: {
      auto it = assignment.find(e.symbol_name);
      if (it != assignment.end()) return it->second;
      return app::AppValue::Number(0);  // default seed value
    }
    case SymKind::kBinary: {
      app::AppValue l = EvalSym(*e.children[0], assignment);
      app::AppValue r = EvalSym(*e.children[1], assignment);
      return app::ApplyAppBinary(e.bin_op, l, r);
    }
    case SymKind::kUnary:
      return app::ApplyAppUnary(e.un_op, EvalSym(*e.children[0], assignment));
  }
  return app::AppValue::Null();
}

void CollectSymbols(const SymExpr& e, std::set<std::string>* out) {
  if (e.kind == SymKind::kSymbol) out->insert(e.symbol_name);
  for (const auto& child : e.children) CollectSymbols(*child, out);
}

namespace {
bool EqualsImpl(const SymExpr& a, const SymExpr& b, bool shape_only) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case SymKind::kSymbol:
      if (shape_only) {
        // sql_out result symbols get fresh per-iteration numbers; strip
        // trailing digits so successive loop bodies share a shape.
        auto stem = [](const std::string& s) {
          size_t end = s.size();
          while (end > 0 && std::isdigit(static_cast<unsigned char>(s[end - 1])))
            --end;
          return s.substr(0, end);
        };
        return stem(a.symbol_name) == stem(b.symbol_name);
      }
      return a.symbol_name == b.symbol_name;
    case SymKind::kConst:
      if (shape_only) return true;
      return a.constant.kind == b.constant.kind &&
             a.constant.ToStr() == b.constant.ToStr();
    case SymKind::kBinary:
      if (a.bin_op != b.bin_op) return false;
      break;
    case SymKind::kUnary:
      if (a.un_op != b.un_op) return false;
      break;
  }
  if (a.children.size() != b.children.size()) return false;
  for (size_t i = 0; i < a.children.size(); ++i) {
    if (!EqualsImpl(*a.children[i], *b.children[i], shape_only)) return false;
  }
  return true;
}
}  // namespace

bool SymEquals(const SymExpr& a, const SymExpr& b) {
  return EqualsImpl(a, b, /*shape_only=*/false);
}

bool SymShapeEquals(const SymExpr& a, const SymExpr& b) {
  return EqualsImpl(a, b, /*shape_only=*/true);
}

}  // namespace ultraverse::sym
