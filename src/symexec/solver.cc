#include "symexec/solver.h"

#include <algorithm>

#include "util/rng.h"

namespace ultraverse::sym {

namespace {

using app::AppBinOp;
using app::AppValue;

bool AllSatisfied(const std::vector<SymExprPtr>& constraints,
                  const Assignment& a) {
  for (const auto& c : constraints) {
    if (!EvalSym(*c, a).Truthy()) return false;
  }
  return true;
}

/// Mines constant leaves reachable in `e` into the candidate pools.
void MineConstants(const SymExpr& e, std::vector<double>* nums,
                   std::vector<std::string>* strs) {
  if (e.kind == SymKind::kConst) {
    switch (e.constant.kind) {
      case AppValue::Kind::kNumber:
        nums->push_back(e.constant.num);
        break;
      case AppValue::Kind::kString:
        strs->push_back(e.constant.str);
        break;
      case AppValue::Kind::kBool:
        nums->push_back(e.constant.boolean ? 1 : 0);
        break;
      default:
        break;
    }
  }
  for (const auto& child : e.children) MineConstants(*child, nums, strs);
}

/// Unit propagation: sym == <ground expr> pins the symbol.
void PropagateEqualities(const std::vector<SymExprPtr>& constraints,
                         Assignment* a) {
  bool changed = true;
  int rounds = 0;
  while (changed && ++rounds < 8) {
    changed = false;
    for (const auto& c : constraints) {
      const SymExpr* e = c.get();
      // Peel double negation.
      while (e->kind == SymKind::kUnary && e->un_op == app::AppUnOp::kNot &&
             e->children[0]->kind == SymKind::kUnary &&
             e->children[0]->un_op == app::AppUnOp::kNot) {
        e = e->children[0]->children[0].get();
      }
      if (e->kind != SymKind::kBinary || e->bin_op != AppBinOp::kEq) continue;
      const SymExpr* lhs = e->children[0].get();
      const SymExpr* rhs = e->children[1].get();
      if (lhs->kind != SymKind::kSymbol) std::swap(lhs, rhs);
      if (lhs->kind != SymKind::kSymbol) continue;
      if (a->count(lhs->symbol_name)) continue;
      // RHS must be ground given current assignment.
      std::set<std::string> syms;
      CollectSymbols(*rhs, &syms);
      bool ground = true;
      for (const auto& s : syms) {
        if (!a->count(s)) {
          ground = false;
          break;
        }
      }
      if (!ground) continue;
      (*a)[lhs->symbol_name] = EvalSym(*rhs, *a);
      changed = true;
    }
  }
}

}  // namespace

std::optional<Assignment> Solver::Solve(
    const std::vector<SymExprPtr>& constraints) const {
  if (constraints.empty()) return Assignment{};

  std::set<std::string> symbols;
  std::vector<double> num_pool = {0, 1, -1, 2, 100};
  std::vector<std::string> str_pool = {"", "a", "uv"};
  for (const auto& c : constraints) {
    CollectSymbols(*c, &symbols);
    MineConstants(*c, &num_pool, &str_pool);
  }

  // Enrich numeric pool with +-1 neighbors (flips strict inequalities).
  {
    std::vector<double> extra;
    for (double v : num_pool) {
      extra.push_back(v + 1);
      extra.push_back(v - 1);
    }
    num_pool.insert(num_pool.end(), extra.begin(), extra.end());
    std::sort(num_pool.begin(), num_pool.end());
    num_pool.erase(std::unique(num_pool.begin(), num_pool.end()),
                   num_pool.end());
    std::sort(str_pool.begin(), str_pool.end());
    str_pool.erase(std::unique(str_pool.begin(), str_pool.end()),
                   str_pool.end());
    if (int(num_pool.size()) > options_.max_candidates_per_symbol) {
      num_pool.resize(options_.max_candidates_per_symbol);
    }
  }

  Assignment base;
  PropagateEqualities(constraints, &base);
  if (AllSatisfied(constraints, base)) return base;

  std::vector<std::string> free_syms;
  for (const auto& s : symbols) {
    if (!base.count(s)) free_syms.push_back(s);
  }

  // Candidate values per symbol: numbers, strings, bools.
  std::vector<AppValue> candidates;
  for (double v : num_pool) candidates.push_back(AppValue::Number(v));
  for (const auto& s : str_pool) candidates.push_back(AppValue::String(s));
  candidates.push_back(AppValue::Bool(true));
  candidates.push_back(AppValue::Bool(false));
  candidates.push_back(AppValue::Null());

  // Exhaustive search when the combination count is small.
  double combos = 1;
  for (size_t i = 0; i < free_syms.size() && combos < 1e7; ++i) {
    combos *= double(candidates.size());
  }
  if (!free_syms.empty() && combos <= 20000) {
    std::vector<size_t> idx(free_syms.size(), 0);
    for (;;) {
      Assignment a = base;
      for (size_t i = 0; i < free_syms.size(); ++i) {
        a[free_syms[i]] = candidates[idx[i]];
      }
      PropagateEqualities(constraints, &a);
      if (AllSatisfied(constraints, a)) return a;
      // Next combination.
      size_t k = 0;
      while (k < idx.size()) {
        if (++idx[k] < candidates.size()) break;
        idx[k] = 0;
        ++k;
      }
      if (k == idx.size()) break;
    }
    return std::nullopt;
  }

  // Randomized search for larger spaces.
  Rng rng(options_.rng_seed);
  for (int t = 0; t < options_.max_random_tries; ++t) {
    Assignment a = base;
    for (const auto& s : free_syms) {
      a[s] = candidates[size_t(rng.Next() % candidates.size())];
    }
    PropagateEqualities(constraints, &a);
    if (AllSatisfied(constraints, a)) return a;
  }
  return std::nullopt;
}

}  // namespace ultraverse::sym
