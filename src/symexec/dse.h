#ifndef ULTRAVERSE_SYMEXEC_DSE_H_
#define ULTRAVERSE_SYMEXEC_DSE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "applang/app_ast.h"
#include "symexec/solver.h"
#include "symexec/sym_expr.h"
#include "util/status.h"

namespace ultraverse::sym {

/// One SQL_exec() site observed on a path. `template_sql` is the query text
/// with each symbolic fragment replaced by a `__uv_sym_<k>` marker;
/// `markers` maps marker names back to the symbolic expressions so the
/// transpiler can emit SQL expressions over procedure parameters.
struct SqlCall {
  std::string template_sql;
  std::map<std::string, SymExprPtr> markers;
  /// Symbol naming this call's result set, e.g. "sql_out1" (Figure 5).
  std::string result_symbol;
};

/// One event on a concrete execution path.
struct DseEvent {
  enum class Kind { kSql, kBranch, kReturn };
  Kind kind = Kind::kBranch;

  SqlCall sql;          // kSql
  SymExprPtr cond;      // kBranch: symbolic branch condition
  bool taken = false;   // kBranch
  SymExprPtr ret;       // kReturn: may be null for value-less returns
};

/// A fully executed path: the testcase inputs that reached it plus the
/// ordered symbolic events along it.
struct DsePath {
  Assignment inputs;
  std::vector<DseEvent> events;
  /// For each SQL result symbol: the cell paths the code read from it
  /// (e.g. "[0].COUNT(*)", ".length") — these become SELECT ... INTO
  /// variables in the transpiled procedure.
  std::map<std::string, std::set<std::string>> result_cells;
  bool truncated = false;
};

/// Output of exploring one application-level transaction: the execution
/// path tree of §3.2 Step 2, flattened into its root-to-leaf paths.
struct DseResult {
  std::string function;
  std::vector<std::string> params;
  std::vector<DsePath> paths;
  /// Blackbox symbols (rand/now/http_send results) across all paths, in
  /// first-seen order: they become extra procedure parameters (§3.3).
  std::vector<std::string> blackbox_symbols;
  /// Branch flips the solver failed within budget — each one becomes a
  /// SIGNAL SQLSTATE trap in the transpiled procedure (§3.3).
  int unsolved_branches = 0;
  /// Branch flips suppressed by the loop-summarization cap.
  int loop_capped_branches = 0;
  int executions = 0;
};

/// Concolic dynamic-symbolic-execution engine (§3.1-§3.2): executes the
/// instrumented UvScript transaction with concrete seed inputs, collects
/// the path condition, asks the solver for inputs flipping each branch, and
/// repeats until no new paths remain or budgets are exhausted.
class DseEngine {
 public:
  struct Options {
    int max_paths = 64;
    int max_loop_unroll = 3;   // §3.3 path-explosion guard
    double timeout_seconds = 20.0;
    Solver::Options solver;
  };

  explicit DseEngine(const app::AppProgram* program)
      : DseEngine(program, Options()) {}
  DseEngine(const app::AppProgram* program, Options options)
      : program_(program), options_(options), solver_(options.solver) {}

  Result<DseResult> Explore(const std::string& function);

 private:
  const app::AppProgram* program_;
  Options options_;
  Solver solver_;
};

}  // namespace ultraverse::sym

#endif  // ULTRAVERSE_SYMEXEC_DSE_H_
