#ifndef ULTRAVERSE_SYMEXEC_SOLVER_H_
#define ULTRAVERSE_SYMEXEC_SOLVER_H_

#include <optional>
#include <vector>

#include "symexec/sym_expr.h"

namespace ultraverse::sym {

/// SMT-lite constraint solver for DSE path conditions.
///
/// The class of constraints the paper's benchmarks generate is
/// (in)equalities between symbols, constants, and small arithmetic/concat
/// expressions. The solver combines:
///   1. unit propagation for `sym == const` / `sym != const` constraints,
///   2. interval narrowing for numeric bounds on single symbols,
///   3. a bounded search over "interesting" candidate values mined from the
///      constraint set (constants, +-1 neighbors, mined strings),
/// and validates every candidate by concretely evaluating the constraint
/// conjunction with EvalSym. Incompleteness is expected and handled: an
/// unsolved branch becomes a SIGNAL SQLSTATE trap in the transpiled
/// procedure (§3.3 "Handling Unreached Path").
class Solver {
 public:
  struct Options {
    int max_candidates_per_symbol = 24;
    int max_random_tries = 4000;
    uint64_t rng_seed = 7;
  };

  Solver() : Solver(Options()) {}
  explicit Solver(Options options) : options_(options) {}

  /// Finds an assignment making every constraint truthy, or nullopt.
  std::optional<Assignment> Solve(
      const std::vector<SymExprPtr>& constraints) const;

 private:
  Options options_;
};

}  // namespace ultraverse::sym

#endif  // ULTRAVERSE_SYMEXEC_SOLVER_H_
