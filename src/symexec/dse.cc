#include "symexec/dse.h"

#include <deque>

#include "applang/interpreter.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/nondet_builtins.h"
#include "util/stopwatch.h"

namespace ultraverse::sym {

namespace {

using app::AppValue;

SymExprPtr TagOf(const AppValue& v) {
  return std::static_pointer_cast<const SymExpr>(v.tag);
}

void SetTag(AppValue* v, SymExprPtr tag) { v->tag = std::move(tag); }

SymExprPtr ExprOf(const AppValue& v) {
  if (SymExprPtr tag = TagOf(v)) return tag;
  AppValue bare = v;
  bare.tag = nullptr;
  return SymExpr::Const(std::move(bare));
}

/// Instrumentation for one concolic execution (§3.2 Step 1): builds
/// symbolic expressions in value tags, bypasses the DBMS, spawns blackbox
/// symbols, and records the path condition.
class DseHooks : public app::InterpreterHooks {
 public:
  DseHooks(std::string root_function, Assignment assignment)
      : root_function_(std::move(root_function)),
        assignment_(std::move(assignment)) {}

  void OnFunctionEnter(const app::AppFunction& fn,
                       std::vector<AppValue>* args) override {
    if (entered_ || fn.name != root_function_) return;
    entered_ = true;
    for (size_t i = 0; i < fn.params.size(); ++i) {
      std::string name = "arg_" + fn.params[i];
      auto it = assignment_.find(name);
      if (it != assignment_.end()) {
        AppValue v = it->second;
        v.tag = nullptr;
        (*args)[i] = std::move(v);
      }
      SetTag(&(*args)[i], SymExpr::Symbol(name, SymbolOrigin::kTxnArg));
    }
  }

  void OnBinary(app::AppBinOp op, const AppValue& l, const AppValue& r,
                AppValue* result) override {
    if (!TagOf(l) && !TagOf(r)) return;
    bool concat = op == app::AppBinOp::kAdd &&
                  result->kind == AppValue::Kind::kString;
    SetTag(result, SymExpr::Binary(op, ExprOf(l), ExprOf(r), concat));
  }

  void OnUnary(app::AppUnOp op, const AppValue& v, AppValue* result) override {
    if (!TagOf(v)) return;
    SetTag(result, SymExpr::Unary(op, ExprOf(v)));
  }

  void OnBranch(const AppValue& cond, bool taken) override {
    SymExprPtr tag = TagOf(cond);
    if (!tag) return;  // concrete branch: fixed on every replay of this path
    DseEvent e;
    e.kind = DseEvent::Kind::kBranch;
    e.cond = std::move(tag);
    e.taken = taken;
    path_.events.push_back(std::move(e));
  }

  bool OnSqlExec(const AppValue& query, AppValue* result) override {
    // Always intercept: DSE treats the DBMS as a blackbox (§3.2 Step 2).
    DseEvent e;
    e.kind = DseEvent::Kind::kSql;
    e.sql.result_symbol = "sql_out" + std::to_string(++sql_counter_);
    RenderTemplate(*ExprOf(query), &e.sql);
    path_.events.push_back(std::move(e));

    AppValue rs = AppValue::Array();
    SetTag(&rs, SymExpr::Symbol(path_.events.back().sql.result_symbol,
                                SymbolOrigin::kSqlResult));
    *result = std::move(rs);
    return true;
  }

  bool OnBuiltin(const std::string& name, const std::vector<AppValue>& args,
                 AppValue* result) override {
    // Nondeterministic / blackbox native API: spawn a fresh symbol (§3.3).
    // Client-side values (DOM inputs, navigator.userAgent) are named after
    // their source so every path shares one symbol per input field. The
    // shared nondet header classifies the names; only client-side builtins
    // get source-stable symbols.
    std::string sym;
    if (nondet::IsAppClientBuiltin(name) && name == "user_agent") {
      sym = "client_user_agent";
    } else if (nondet::IsAppClientBuiltin(name) && !args.empty()) {
      sym = "dom_" + args[0].ToStr();
    } else {
      sym = "bb_" + name + "_" + std::to_string(++bb_counter_);
    }
    if (std::find(blackbox_symbols_.begin(), blackbox_symbols_.end(), sym) ==
        blackbox_symbols_.end()) {
      blackbox_symbols_.push_back(sym);
    }
    if (nondet::IsAppBlackboxBuiltin(name)) {
      // Opaque response object: field reads mint child symbols via OnAccess.
      AppValue obj = AppValue::Object();
      SetTag(&obj, SymExpr::Symbol(sym, SymbolOrigin::kBlackbox));
      *result = std::move(obj);
      return true;
    }
    AppValue v = Concretize(sym);
    SetTag(&v, SymExpr::Symbol(sym, SymbolOrigin::kBlackbox));
    *result = std::move(v);
    return true;
  }

  void OnAccess(const AppValue& container, const std::string& key,
                AppValue* result) override {
    SymExprPtr tag = TagOf(container);
    if (!tag || tag->kind != SymKind::kSymbol ||
        tag->origin == SymbolOrigin::kTxnArg) {
      return;
    }
    const std::string& parent = tag->symbol_name;
    bool numeric_key = !key.empty() && key.find_first_not_of("0123456789") ==
                                           std::string::npos;
    std::string child =
        numeric_key ? parent + "[" + key + "]" : parent + "." + key;

    bool is_row_object = numeric_key && parent.find('[') == std::string::npos &&
                         parent.find('.') == std::string::npos &&
                         container.kind == AppValue::Kind::kArray;
    if (is_row_object) {
      // rows[i]: an opaque row object whose field reads mint leaf symbols.
      AppValue row = AppValue::Object();
      SetTag(&row, SymExpr::Symbol(child, tag->origin));
      *result = std::move(row);
      return;
    }
    // Leaf cell: concrete value from the current testcase.
    if (tag->origin == SymbolOrigin::kSqlResult) {
      RecordCell(parent, key, numeric_key);
    }
    AppValue v = Concretize(child);
    SetTag(&v, SymExpr::Symbol(child, tag->origin));
    *result = std::move(v);
  }

  DsePath TakePath(Assignment inputs) {
    path_.inputs = std::move(inputs);
    return std::move(path_);
  }
  const std::vector<std::string>& blackbox_symbols() const {
    return blackbox_symbols_;
  }

 private:
  AppValue Concretize(const std::string& symbol) const {
    auto it = assignment_.find(symbol);
    if (it != assignment_.end()) {
      AppValue v = it->second;
      v.tag = nullptr;
      return v;
    }
    return AppValue::Number(0);  // must match EvalSym's default
  }

  void RecordCell(const std::string& parent, const std::string& key,
                  bool numeric_key) {
    // Attribute the cell to its root sql_out symbol.
    std::string root = parent;
    std::string path_suffix;
    size_t cut = root.find_first_of(".[");
    if (cut != std::string::npos) {
      path_suffix = root.substr(cut);
      root = root.substr(0, cut);
    }
    path_suffix += numeric_key ? "[" + key + "]" : "." + key;
    path_.result_cells[root].insert(path_suffix);
  }

  /// Flattens the query's symbolic string tree into literal text plus
  /// `__uv_sym_k` markers for the symbolic fragments.
  void RenderTemplate(const SymExpr& e, SqlCall* call) {
    if (e.kind == SymKind::kConst) {
      call->template_sql += e.constant.ToStr();
      return;
    }
    if (e.kind == SymKind::kBinary && e.bin_op == app::AppBinOp::kAdd &&
        e.string_concat) {
      RenderTemplate(*e.children[0], call);
      RenderTemplate(*e.children[1], call);
      return;
    }
    // Symbolic fragment (a symbol or an arithmetic subtree): marker.
    std::string marker = "__uv_sym_" + std::to_string(call->markers.size());
    call->markers[marker] = SymExprPtr(new SymExpr(e));
    call->template_sql += marker;
  }

  std::string root_function_;
  Assignment assignment_;
  bool entered_ = false;
  int sql_counter_ = 0;
  int bb_counter_ = 0;
  DsePath path_;
  std::vector<std::string> blackbox_symbols_;
};

std::string PathSignature(const DsePath& path) {
  std::string sig;
  for (const auto& e : path.events) {
    switch (e.kind) {
      case DseEvent::Kind::kBranch:
        sig += "B" + std::string(e.taken ? "T" : "F") + e.cond->ToZ3Script();
        break;
      case DseEvent::Kind::kSql:
        sig += "Q" + e.sql.template_sql;
        break;
      case DseEvent::Kind::kReturn:
        sig += "R";
        if (e.ret) sig += e.ret->ToZ3Script();
        break;
    }
    sig += "|";
  }
  return sig;
}

}  // namespace

Result<DseResult> DseEngine::Explore(const std::string& function) {
  auto fn_it = program_->functions.find(function);
  if (fn_it == program_->functions.end()) {
    return Status::NotFound("function " + function);
  }
  const app::AppFunction& fn = fn_it->second;

  static obs::Histogram* const explore_us =
      obs::Registry::Global().histogram("uv.dse.explore_us");
  obs::ScopedLatency latency(explore_us);
  obs::TraceSpan span("dse.explore", {{"function", function.c_str()}});

  DseResult result;
  result.function = function;
  result.params = fn.params;

  Stopwatch watch;
  std::deque<Assignment> pending;
  pending.push_back(Assignment{});  // randomized/default seed testcase
  std::set<std::string> seen_paths;
  std::set<std::string> attempted_flips;

  while (!pending.empty() && int(result.paths.size()) < options_.max_paths) {
    if (watch.ElapsedSeconds() > options_.timeout_seconds) break;
    Assignment assignment = std::move(pending.front());
    pending.pop_front();

    // Execute the instrumented transaction concretely (§3.2 Step 2).
    DseHooks hooks(function, assignment);
    app::Interpreter::Options interp_opts;
    interp_opts.max_steps = 2'000'000;
    app::Interpreter interp(program_, /*bridge=*/nullptr, &hooks, interp_opts);

    std::vector<AppValue> args;
    for (const auto& p : fn.params) {
      auto it = assignment.find("arg_" + p);
      args.push_back(it != assignment.end() ? it->second
                                            : AppValue::Number(0));
    }
    Result<AppValue> ret = interp.CallFunction(function, std::move(args));
    ++result.executions;
    if (!ret.ok()) {
      // A runtime error terminates this path; it is still a valid path for
      // transpilation purposes only if it produced events — skip otherwise.
      continue;
    }
    DsePath path = hooks.TakePath(assignment);
    {
      DseEvent ret_event;
      ret_event.kind = DseEvent::Kind::kReturn;
      if (!ret->IsNull() || ret->tag) ret_event.ret = ExprOf(*ret);
      path.events.push_back(std::move(ret_event));
    }
    for (const auto& bb : hooks.blackbox_symbols()) {
      if (std::find(result.blackbox_symbols.begin(),
                    result.blackbox_symbols.end(),
                    bb) == result.blackbox_symbols.end()) {
        result.blackbox_symbols.push_back(bb);
      }
    }

    std::string sig = PathSignature(path);
    if (!seen_paths.insert(sig).second) continue;

    // Generate flipped testcases for every symbolic branch on the path.
    std::vector<SymExprPtr> prefix;
    for (const auto& e : path.events) {
      if (e.kind != DseEvent::Kind::kBranch) continue;
      SymExprPtr hold = e.taken ? e.cond : SymExpr::Not(e.cond);
      SymExprPtr flip = e.taken ? SymExpr::Not(e.cond) : e.cond;

      // Loop summarization stand-in (§3.3): if this structurally-identical
      // condition already appears max_loop_unroll times in the prefix, stop
      // unrolling further.
      int repeats = 0;
      for (const auto& p : prefix) {
        const SymExpr* bare = p.get();
        if (bare->kind == SymKind::kUnary &&
            bare->un_op == app::AppUnOp::kNot) {
          bare = bare->children[0].get();
        }
        if (SymShapeEquals(*bare, *e.cond)) ++repeats;
      }
      if (repeats >= options_.max_loop_unroll) {
        ++result.loop_capped_branches;
        prefix.push_back(std::move(hold));
        continue;
      }

      std::vector<SymExprPtr> constraints = prefix;
      constraints.push_back(flip);
      std::string flip_sig;
      for (const auto& c : constraints) flip_sig += c->ToZ3Script() + ";";
      if (attempted_flips.insert(flip_sig).second) {
        std::optional<Assignment> solved = solver_.Solve(constraints);
        if (solved) {
          pending.push_back(std::move(*solved));
        } else {
          ++result.unsolved_branches;
        }
      }
      prefix.push_back(std::move(hold));
    }

    result.paths.push_back(std::move(path));
  }
  static obs::Counter* const paths =
      obs::Registry::Global().counter("uv.dse.paths");
  static obs::Counter* const executions =
      obs::Registry::Global().counter("uv.dse.executions");
  paths->Add(result.paths.size());
  executions->Add(result.executions);
  return result;
}

}  // namespace ultraverse::sym
