#ifndef ULTRAVERSE_SYMEXEC_SYM_EXPR_H_
#define ULTRAVERSE_SYMEXEC_SYM_EXPR_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "applang/app_ast.h"
#include "applang/app_value.h"

namespace ultraverse::sym {

/// Where a symbol came from. The three origins match §3.2: transaction
/// input parameters, database API return values, and nondeterministic
/// (blackbox) native API return values.
enum class SymbolOrigin { kTxnArg, kSqlResult, kBlackbox };

enum class SymKind {
  kSymbol,  // free variable
  kConst,   // concrete AppValue
  kBinary,  // UvScript binary op over children[0], children[1]
  kUnary,   // UvScript unary op over children[0]
};

struct SymExpr;
using SymExprPtr = std::shared_ptr<const SymExpr>;

/// Immutable symbolic expression over UvScript semantics. These are the
/// expressions the instrumentation hooks build "in the Z3 script language"
/// (§3.2); ToZ3Script() renders that form for logs and tests.
struct SymExpr {
  SymKind kind = SymKind::kConst;

  // kSymbol
  std::string symbol_name;  // unique, e.g. "arg_orderer_uid", "sql_out1[0].c"
  SymbolOrigin origin = SymbolOrigin::kTxnArg;

  // kConst
  app::AppValue constant;

  // kBinary / kUnary
  app::AppBinOp bin_op = app::AppBinOp::kAdd;
  app::AppUnOp un_op = app::AppUnOp::kNot;
  /// kAdd where either operand was a string at runtime: string concat
  /// (transpiles to SQL CONCAT rather than +).
  bool string_concat = false;

  std::vector<SymExprPtr> children;

  static SymExprPtr Symbol(std::string name, SymbolOrigin origin);
  static SymExprPtr Const(app::AppValue v);
  static SymExprPtr Binary(app::AppBinOp op, SymExprPtr a, SymExprPtr b,
                           bool string_concat = false);
  static SymExprPtr Unary(app::AppUnOp op, SymExprPtr a);
  static SymExprPtr Not(SymExprPtr a) {
    return Unary(app::AppUnOp::kNot, std::move(a));
  }

  /// Z3-script-style rendering, e.g. (str.++ "a" arg_x), (= sql_out1 0).
  std::string ToZ3Script() const;
};

/// Symbol name -> concrete value: one DSE testcase (§3.2 Step 2).
using Assignment = std::map<std::string, app::AppValue>;

/// Evaluates `e` under `assignment`; symbols missing from the assignment
/// take type-appropriate defaults (number 0 / "" / false).
app::AppValue EvalSym(const SymExpr& e, const Assignment& assignment);

/// Collects the names of all symbols in `e` into `out`.
void CollectSymbols(const SymExpr& e, std::set<std::string>* out);

/// Structural equality (used for loop-pattern detection).
bool SymEquals(const SymExpr& a, const SymExpr& b);

/// Shape equality: like SymEquals but any two constants compare equal.
/// Successive unrollings of a loop guard (0 < n, 1 < n, ...) share a shape,
/// which is how the path-explosion guard recognizes them (§3.3).
bool SymShapeEquals(const SymExpr& a, const SymExpr& b);

}  // namespace ultraverse::sym

#endif  // ULTRAVERSE_SYMEXEC_SYM_EXPR_H_
