#include "transpiler/transpiler.h"

#include <algorithm>
#include <map>
#include <set>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sqldb/parser.h"
#include "util/string_util.h"

namespace ultraverse::transpiler {

namespace {

using sym::DseEvent;
using sym::DsePath;
using sym::SymExpr;
using sym::SymExprPtr;
using sym::SymKind;
using sym::SymbolOrigin;

/// Maps a symbol name to a legal SQL identifier, e.g.
/// "sql_out1[0].COUNT(*)" -> "sql_out1_0_COUNT".
std::string SanitizeIdent(const std::string& symbol) {
  std::string out;
  for (char c : symbol) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      out.push_back(c);
    } else if (!out.empty() && out.back() != '_') {
      out.push_back('_');
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out;
}

sql::DataType SqlTypeOfAppKind(app::AppValue::Kind kind) {
  switch (kind) {
    case app::AppValue::Kind::kNumber: return sql::DataType::kDouble;
    case app::AppValue::Kind::kBool: return sql::DataType::kBool;
    default: return sql::DataType::kString;
  }
}

class TranspileBuilder {
 public:
  explicit TranspileBuilder(const sym::DseResult& dse) : dse_(dse) {}

  Result<TranspiledTransaction> Build() {
    TranspiledTransaction out;
    out.function = dse_.function;
    out.procedure_name = dse_.function;

    if (dse_.paths.empty()) {
      return Status::InvalidArgument("DSE produced no paths for " +
                                     dse_.function);
    }

    // Group all paths and emit the decision tree.
    std::vector<const DsePath*> all;
    for (const auto& p : dse_.paths) all.push_back(&p);
    UV_ASSIGN_OR_RETURN(std::vector<sql::StatementPtr> body,
                        EmitGroup(all, /*depth=*/0));

    auto stmt = sql::Statement::Make(sql::StatementKind::kCreateProcedure);
    auto& proc = stmt->create_procedure;
    proc.name = out.procedure_name;
    for (const auto& p : dse_.params) {
      sql::ProcedureParam param;
      param.name = "arg_" + p;
      param.type = sql::DataType::kString;  // dynamic at runtime
      proc.params.push_back(param);
      out.arg_params.push_back(param.name);
    }
    // Blackbox symbol leaves become extra IN parameters (Figure 11c).
    for (const auto& bb : blackbox_leaves_) {
      sql::ProcedureParam param;
      param.name = SanitizeIdent(bb);
      param.type = sql::DataType::kString;
      proc.params.push_back(param);
      out.blackbox_params.push_back(bb);
    }
    // DECLARE every SELECT-INTO variable up front.
    for (const auto& var : declares_) {
      auto decl = sql::Statement::Make(sql::StatementKind::kDeclareVar);
      decl->declare_var.name = var;
      decl->declare_var.type = sql::DataType::kString;
      proc.body.push_back(decl);
    }
    for (auto& s : body) proc.body.push_back(std::move(s));

    out.create_procedure = std::move(stmt);
    out.signal_traps = signal_traps_;
    out.path_count = int(dse_.paths.size());
    return out;
  }

 private:
  /// Emits statements for the group of paths that share the same event
  /// prefix up to `depth`.
  Result<std::vector<sql::StatementPtr>> EmitGroup(
      std::vector<const DsePath*> group, size_t depth) {
    std::vector<sql::StatementPtr> body;
    for (;;) {
      // Paths that already ended contribute nothing further.
      std::vector<const DsePath*> active;
      for (const DsePath* p : group) {
        if (depth < p->events.size()) active.push_back(p);
      }
      if (active.empty()) return body;
      group = std::move(active);

      const DseEvent& head = group[0]->events[depth];
      for (const DsePath* p : group) {
        if (p->events[depth].kind != head.kind) {
          return Status::Unsupported(
              "divergent event structure without a symbolic branch");
        }
      }

      switch (head.kind) {
        case DseEvent::Kind::kSql: {
          UV_ASSIGN_OR_RETURN(std::vector<sql::StatementPtr> stmts,
                              EmitSqlCall(head.sql, group));
          for (auto& s : stmts) body.push_back(std::move(s));
          ++depth;
          continue;
        }
        case DseEvent::Kind::kReturn: {
          if (head.ret) {
            UV_ASSIGN_OR_RETURN(sql::ExprPtr e, ConvertExpr(*head.ret));
            auto sel = sql::Statement::Make(sql::StatementKind::kSelect);
            sel->select = std::make_shared<sql::SelectStatement>();
            sel->select->items.push_back({std::move(e), "result"});
            body.push_back(std::move(sel));
          }
          ++depth;
          continue;
        }
        case DseEvent::Kind::kBranch: {
          std::vector<const DsePath*> taken, not_taken;
          for (const DsePath* p : group) {
            (p->events[depth].taken ? taken : not_taken).push_back(p);
          }
          UV_ASSIGN_OR_RETURN(sql::ExprPtr cond, ConvertExpr(*head.cond));

          auto if_stmt = sql::Statement::Make(sql::StatementKind::kIf);
          sql::IfBranch then_branch;
          then_branch.condition = cond;
          if (!taken.empty()) {
            UV_ASSIGN_OR_RETURN(then_branch.body, EmitGroup(taken, depth + 1));
          } else {
            then_branch.body.push_back(MakeTrap());
          }
          if_stmt->if_stmt.branches.push_back(std::move(then_branch));

          sql::IfBranch else_branch;  // condition null = ELSE
          if (!not_taken.empty()) {
            UV_ASSIGN_OR_RETURN(else_branch.body,
                                EmitGroup(not_taken, depth + 1));
          } else {
            else_branch.body.push_back(MakeTrap());
          }
          if_stmt->if_stmt.branches.push_back(std::move(else_branch));
          body.push_back(std::move(if_stmt));
          return body;  // both subtrees handled the remaining depth
        }
      }
    }
  }

  /// SIGNAL trap for an execution path DSE did not reach (§3.3): hitting it
  /// at replay time reports the inputs and triggers delta-DSE.
  sql::StatementPtr MakeTrap() {
    ++signal_traps_;
    auto trap = sql::Statement::Make(sql::StatementKind::kSignal);
    trap->signal.sqlstate = "45001";
    trap->signal.message =
        "Ultraverse: unexplored path trap #" + std::to_string(signal_traps_);
    return trap;
  }

  Result<std::vector<sql::StatementPtr>> EmitSqlCall(
      const sym::SqlCall& call, const std::vector<const DsePath*>& group) {
    // Parse the marker template into a statement AST.
    UV_ASSIGN_OR_RETURN(sql::StatementPtr stmt,
                        sql::Parser::ParseStatement(call.template_sql));
    UV_RETURN_NOT_OK(SubstituteMarkers(stmt.get(), call));

    std::vector<sql::StatementPtr> out;
    // Union of the result cells read on ANY path through this call site:
    // paths diverge after the call, and each may read different columns.
    std::set<std::string> cells;
    for (const DsePath* p : group) {
      auto it = p->result_cells.find(call.result_symbol);
      if (it != p->result_cells.end()) {
        cells.insert(it->second.begin(), it->second.end());
      }
    }
    bool cells_read = !cells.empty();

    if (stmt->kind != sql::StatementKind::kSelect) {
      // DML executes for its database effect; result values (affected
      // counts) do not flow back in the supported dialect.
      out.push_back(std::move(stmt));
      return out;
    }

    if (!cells_read) {
      // A SELECT whose result the application never reads has no data flow
      // into the database: the transpiler prunes it (§3 "prunes application
      // logic that doesn't affect persistent storage").
      return out;
    }

    const sql::SelectStatement& sel = *stmt->select;
    // ".length" cell: row count via SELECT COUNT(*) INTO.
    for (const std::string& cell : cells) {
      if (cell != ".length") continue;
      auto count_stmt = sql::Statement::Make(sql::StatementKind::kSelect);
      auto count_sel = std::make_shared<sql::SelectStatement>(sel);
      count_sel->items.clear();
      count_sel->items.push_back(
          {sql::Expr::MakeFunc("COUNT", {}, /*star=*/true), ""});
      count_sel->order_by.clear();
      count_sel->limit = -1;
      count_sel->into_vars = {
          SanitizeIdent(call.result_symbol + ".length")};
      declares_.insert(count_sel->into_vars[0]);
      count_stmt->select = std::move(count_sel);
      out.push_back(std::move(count_stmt));
    }

    // "[0].<column>" cells: one SELECT col... INTO var... LIMIT 1.
    std::vector<std::string> wanted_cols;
    std::vector<std::string> into_vars;
    for (const std::string& cell : cells) {
      if (cell == ".length") continue;
      if (cell.rfind("[0].", 0) != 0) {
        // Rows beyond the first cannot feed SELECT ... INTO; trap instead.
        out.push_back(MakeTrap());
        continue;
      }
      wanted_cols.push_back(cell.substr(4));
      into_vars.push_back(SanitizeIdent(call.result_symbol + cell));
    }
    if (!wanted_cols.empty()) {
      auto into_stmt = sql::Statement::Make(sql::StatementKind::kSelect);
      auto into_sel = std::make_shared<sql::SelectStatement>(sel);
      into_sel->items.clear();
      for (size_t i = 0; i < wanted_cols.size(); ++i) {
        UV_ASSIGN_OR_RETURN(sql::SelectItem item,
                            FindSelectItem(sel, wanted_cols[i]));
        into_sel->items.push_back(std::move(item));
        declares_.insert(into_vars[i]);
      }
      into_sel->into_vars = into_vars;
      into_sel->limit = 1;
      into_stmt->select = std::move(into_sel);
      out.push_back(std::move(into_stmt));
    }
    return out;
  }

  /// Locates the select item producing result column `key` (matched by
  /// alias, printed expression, or bare column name).
  Result<sql::SelectItem> FindSelectItem(const sql::SelectStatement& sel,
                                         const std::string& key) {
    for (const auto& item : sel.items) {
      if (!item.alias.empty() && EqualsIgnoreCase(item.alias, key)) {
        return item;
      }
      if (item.expr->kind == sql::ExprKind::kColumnRef &&
          EqualsIgnoreCase(item.expr->column, key)) {
        return item;
      }
      if (EqualsIgnoreCase(sql::ToSql(*item.expr), key)) return item;
      if (item.expr->kind == sql::ExprKind::kStar) {
        // SELECT *: project the named column directly.
        return sql::SelectItem{sql::Expr::MakeColumn("", key), key};
      }
    }
    return Status::Unsupported("result column '" + key +
                               "' not found in SELECT items");
  }

  /// Replaces __uv_sym_k markers (parsed as column refs or embedded in
  /// string literals) with converted symbolic expressions.
  Status SubstituteMarkers(sql::Statement* stmt, const sym::SqlCall& call) {
    Status st = Status::OK();
    auto fix_expr = [&](sql::ExprPtr* e) {
      if (st.ok()) st = FixExpr(e, call);
    };
    VisitStatementExprs(stmt, fix_expr);
    return st;
  }

  template <typename Fn>
  void VisitSelectExprs(sql::SelectStatement* sel, Fn&& fn) {
    for (auto& item : sel->items) fn(&item.expr);
    for (auto& join : sel->joins) fn(&join.on);
    if (sel->where) fn(&sel->where);
    for (auto& g : sel->group_by) fn(&g);
    if (sel->having) fn(&sel->having);
    for (auto& o : sel->order_by) fn(&o.expr);
  }

  template <typename Fn>
  void VisitStatementExprs(sql::Statement* stmt, Fn&& fn) {
    switch (stmt->kind) {
      case sql::StatementKind::kInsert:
        for (auto& row : stmt->insert.rows) {
          for (auto& e : row) fn(&e);
        }
        if (stmt->insert.select) VisitSelectExprs(stmt->insert.select.get(), fn);
        break;
      case sql::StatementKind::kUpdate:
        for (auto& [col, e] : stmt->update.assignments) {
          (void)col;
          fn(&e);
        }
        if (stmt->update.where) fn(&stmt->update.where);
        break;
      case sql::StatementKind::kDelete:
        if (stmt->del.where) fn(&stmt->del.where);
        break;
      case sql::StatementKind::kSelect:
        VisitSelectExprs(stmt->select.get(), fn);
        break;
      case sql::StatementKind::kCall:
        for (auto& e : stmt->call.args) fn(&e);
        break;
      default:
        break;
    }
  }

  Status FixExpr(sql::ExprPtr* e, const sym::SqlCall& call) {
    // Recurse into children first.
    for (auto& child : (*e)->children) {
      UV_RETURN_NOT_OK(FixExpr(&child, call));
    }
    if ((*e)->kind == sql::ExprKind::kSubquery && (*e)->subquery) {
      Status st = Status::OK();
      auto fix = [&](sql::ExprPtr* sub) {
        if (st.ok()) st = FixExpr(sub, call);
      };
      VisitSelectExprs((*e)->subquery.get(), fix);
      UV_RETURN_NOT_OK(st);
    }
    // Bare marker parsed as a column reference.
    if ((*e)->kind == sql::ExprKind::kColumnRef && (*e)->table.empty()) {
      auto it = call.markers.find((*e)->column);
      if (it != call.markers.end()) {
        UV_ASSIGN_OR_RETURN(*e, ConvertExpr(*it->second));
      }
      return Status::OK();
    }
    // Marker(s) inside a string literal: split into CONCAT pieces.
    if ((*e)->kind == sql::ExprKind::kLiteral &&
        (*e)->literal.type() == sql::DataType::kString) {
      const std::string& s = (*e)->literal.AsStringRef();
      if (s.find("__uv_sym_") == std::string::npos) return Status::OK();
      std::vector<sql::ExprPtr> pieces;
      size_t pos = 0;
      while (pos < s.size()) {
        size_t m = s.find("__uv_sym_", pos);
        if (m == std::string::npos) {
          pieces.push_back(
              sql::Expr::MakeLiteral(sql::Value::String(s.substr(pos))));
          break;
        }
        if (m > pos) {
          pieces.push_back(sql::Expr::MakeLiteral(
              sql::Value::String(s.substr(pos, m - pos))));
        }
        size_t end = m + 9;  // len("__uv_sym_")
        while (end < s.size() &&
               std::isdigit(static_cast<unsigned char>(s[end]))) {
          ++end;
        }
        std::string marker = s.substr(m, end - m);
        auto it = call.markers.find(marker);
        if (it == call.markers.end()) {
          return Status::Internal("unknown marker " + marker);
        }
        UV_ASSIGN_OR_RETURN(sql::ExprPtr conv, ConvertExpr(*it->second));
        pieces.push_back(std::move(conv));
        pos = end;
      }
      if (pieces.size() == 1) {
        *e = pieces[0];
      } else {
        *e = sql::Expr::MakeFunc("CONCAT", std::move(pieces));
      }
    }
    return Status::OK();
  }

  /// SymExpr -> SQL expression (the Z3-operator-to-SQL-operator mapping of
  /// §3.2 Step 3, e.g. str.++ -> CONCAT).
  Result<sql::ExprPtr> ConvertExpr(const SymExpr& e) {
    switch (e.kind) {
      case SymKind::kConst: {
        return sql::Expr::MakeLiteral(e.constant.ToSqlValue());
      }
      case SymKind::kSymbol: {
        if (e.origin == SymbolOrigin::kBlackbox) {
          if (std::find(blackbox_leaves_.begin(), blackbox_leaves_.end(),
                        e.symbol_name) == blackbox_leaves_.end()) {
            blackbox_leaves_.push_back(e.symbol_name);
          }
        }
        if (e.origin == SymbolOrigin::kSqlResult) {
          declares_.insert(SanitizeIdent(e.symbol_name));
        }
        return sql::Expr::MakeVar(SanitizeIdent(e.symbol_name));
      }
      case SymKind::kBinary: {
        UV_ASSIGN_OR_RETURN(sql::ExprPtr l, ConvertExpr(*e.children[0]));
        UV_ASSIGN_OR_RETURN(sql::ExprPtr r, ConvertExpr(*e.children[1]));
        if (e.bin_op == app::AppBinOp::kAdd && e.string_concat) {
          return sql::Expr::MakeFunc("CONCAT",
                                     {std::move(l), std::move(r)});
        }
        sql::BinaryOp op;
        switch (e.bin_op) {
          case app::AppBinOp::kAdd: op = sql::BinaryOp::kAdd; break;
          case app::AppBinOp::kSub: op = sql::BinaryOp::kSub; break;
          case app::AppBinOp::kMul: op = sql::BinaryOp::kMul; break;
          case app::AppBinOp::kDiv: op = sql::BinaryOp::kDiv; break;
          case app::AppBinOp::kMod: op = sql::BinaryOp::kMod; break;
          case app::AppBinOp::kEq: op = sql::BinaryOp::kEq; break;
          case app::AppBinOp::kNe: op = sql::BinaryOp::kNe; break;
          case app::AppBinOp::kLt: op = sql::BinaryOp::kLt; break;
          case app::AppBinOp::kLe: op = sql::BinaryOp::kLe; break;
          case app::AppBinOp::kGt: op = sql::BinaryOp::kGt; break;
          case app::AppBinOp::kGe: op = sql::BinaryOp::kGe; break;
          case app::AppBinOp::kAnd: op = sql::BinaryOp::kAnd; break;
          case app::AppBinOp::kOr: op = sql::BinaryOp::kOr; break;
          default:
            return Status::Unsupported("operator not expressible in SQL");
        }
        return sql::Expr::MakeBinary(op, std::move(l), std::move(r));
      }
      case SymKind::kUnary: {
        UV_ASSIGN_OR_RETURN(sql::ExprPtr child, ConvertExpr(*e.children[0]));
        return sql::Expr::MakeUnary(e.un_op == app::AppUnOp::kNot
                                        ? sql::UnaryOp::kNot
                                        : sql::UnaryOp::kNeg,
                                    std::move(child));
      }
    }
    return Status::Internal("unhandled SymExpr kind");
  }

  const sym::DseResult& dse_;
  std::set<std::string> declares_;
  std::vector<std::string> blackbox_leaves_;
  int signal_traps_ = 0;
};

}  // namespace

Result<TranspiledTransaction> Transpiler::Transpile(
    const sym::DseResult& dse) {
  static obs::Counter* const transpiled =
      obs::Registry::Global().counter("uv.transpiler.functions");
  static obs::Histogram* const transpile_us =
      obs::Registry::Global().histogram("uv.transpiler.transpile_us");
  transpiled->Inc();
  obs::ScopedLatency latency(transpile_us);
  obs::TraceSpan span("transpiler.transpile",
                      {{"function", dse.function.c_str()},
                       {"paths", dse.paths.size()}});
  TranspileBuilder builder(dse);
  return builder.Build();
}

Result<TranspiledTransaction> Transpiler::DeltaUpdate(
    const sym::DseResult& base, const sym::DseResult& delta) {
  if (base.function != delta.function) {
    return Status::InvalidArgument("delta update across different functions");
  }
  sym::DseResult merged = base;
  for (const auto& p : delta.paths) merged.paths.push_back(p);
  for (const auto& bb : delta.blackbox_symbols) {
    if (std::find(merged.blackbox_symbols.begin(),
                  merged.blackbox_symbols.end(),
                  bb) == merged.blackbox_symbols.end()) {
      merged.blackbox_symbols.push_back(bb);
    }
  }
  return Transpile(merged);
}

std::string GenerateAugmentedSource(const std::string& original_source) {
  // Textual augmentation mirroring Figure 3: after each
  // `function name(p1, p2) {`, insert `Ultraverse_log(...)`.
  std::string out;
  size_t pos = 0;
  const std::string kFn = "function";
  while (pos < original_source.size()) {
    size_t f = original_source.find(kFn, pos);
    if (f == std::string::npos) {
      out += original_source.substr(pos);
      break;
    }
    size_t open = original_source.find('(', f);
    size_t close = open == std::string::npos
                       ? std::string::npos
                       : original_source.find(')', open);
    size_t brace = close == std::string::npos
                       ? std::string::npos
                       : original_source.find('{', close);
    if (brace == std::string::npos) {
      out += original_source.substr(pos);
      break;
    }
    out += original_source.substr(pos, brace + 1 - pos);
    std::string name = original_source.substr(
        f + kFn.size(), open - f - kFn.size());
    std::string params =
        original_source.substr(open + 1, close - open - 1);
    // Trim whitespace from the name.
    size_t b = name.find_first_not_of(" \t\n");
    size_t e = name.find_last_not_of(" \t\n");
    name = b == std::string::npos ? "" : name.substr(b, e - b + 1);
    out += "\n  Ultraverse_log(`function " + name + "(";
    bool first = true;
    for (const std::string& p : Split(params, ',')) {
      std::string t = p;
      size_t tb = t.find_first_not_of(" \t\n");
      size_t te = t.find_last_not_of(" \t\n");
      if (tb == std::string::npos) continue;
      t = t.substr(tb, te - tb + 1);
      if (!first) out += ", ";
      out += "${" + t + "}";
      first = false;
    }
    out += ")`);";
    pos = brace + 1;
  }
  return out;
}

}  // namespace ultraverse::transpiler
