#ifndef ULTRAVERSE_TRANSPILER_TRANSPILER_H_
#define ULTRAVERSE_TRANSPILER_TRANSPILER_H_

#include <string>
#include <vector>

#include "sqldb/ast.h"
#include "symexec/dse.h"
#include "util/status.h"

namespace ultraverse::transpiler {

/// A transpiled application-level transaction: the SQL PROCEDURE that has
/// the same effect on the persistent database as the original UvScript
/// function (§3.2 Step 3, Figure 4).
struct TranspiledTransaction {
  std::string function;        // application transaction name
  std::string procedure_name;  // == function (CALL NewOrder(...))
  sql::StatementPtr create_procedure;

  /// Procedure parameters, in CALL order: one "arg_<param>" per application
  /// argument followed by one parameter per blackbox symbol leaf.
  std::vector<std::string> arg_params;
  std::vector<std::string> blackbox_params;  // e.g. "bb_rand_1", "bb_now_2"

  /// Branches the DSE could not explore: each is guarded by a SIGNAL
  /// SQLSTATE trap (§3.3) and triggers delta-DSE when hit at runtime.
  int signal_traps = 0;

  /// Execution paths the procedure covers (size of the DSE path tree).
  int path_count = 0;

  std::string ToSqlText() const { return sql::ToSql(*create_procedure); }
};

/// Converts a DSE execution path tree into an equivalent SQL PROCEDURE.
class Transpiler {
 public:
  /// Z3-to-SQL transpilation (§3.2 Step 3). Fails with Unsupported for
  /// constructs outside the engine's dialect; callers treat that as "keep
  /// running the original application transaction" (no transpiled fast
  /// path), which is always sound.
  static Result<TranspiledTransaction> Transpile(const sym::DseResult& dse);

  /// Delta update (§3.3/§3.4): merges newly discovered paths into an
  /// existing analysis and re-transpiles.
  static Result<TranspiledTransaction> DeltaUpdate(
      const sym::DseResult& base, const sym::DseResult& delta);
};

/// Generates the augmented application source of Figure 3: inserts an
/// `Ultraverse_log(...)` call at the top of every function body so regular
/// service operation records which application-level transaction ran.
std::string GenerateAugmentedSource(const std::string& original_source);

}  // namespace ultraverse::transpiler

#endif  // ULTRAVERSE_TRANSPILER_TRANSPILER_H_
