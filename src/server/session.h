#ifndef ULTRAVERSE_SERVER_SESSION_H_
#define ULTRAVERSE_SERVER_SESSION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "server/wire.h"
#include "util/cancellation.h"
#include "util/retry.h"

namespace ultraverse::server {

/// Per-connection state: the incremental frame parser on the read side, a
/// watermarked write buffer on the write side, and one CancelToken +
/// RetryPolicy per in-flight request (the session-scoped robustness
/// contract — nothing request-scoped lives in process globals).
///
/// Threading: the dispatcher thread owns the read side (epoll only ever
/// reports one readable event at a time per fd). The write side is shared
/// between the dispatcher (flush on EPOLLOUT) and workers (responses), so
/// it hides behind write_mu_. Token registry likewise.
class Session {
 public:
  Session(int fd, uint64_t session_id);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  int fd() const { return fd_; }
  uint64_t id() const { return session_id_; }

  /// Drains the socket's readable bytes into the frame parser and decodes
  /// every complete frame. kOk with an empty vector = would-block (keep
  /// waiting); kUnavailable = peer closed; kDataLoss = torn/corrupt frame
  /// (connection must die — the stream cannot resync).
  Result<std::vector<Frame>> ReadFrames();

  /// Queues one framed response. Attempts an opportunistic inline flush;
  /// returns true when bytes remain buffered (caller arms EPOLLOUT).
  /// Drops silently once the connection is marked dead.
  bool SendFrame(MsgType type, const std::string& payload);

  /// Flushes buffered writes (EPOLLOUT). Returns true when fully drained.
  Result<bool> FlushWrites();

  /// Write-side backpressure state, read by the dispatcher to gate EPOLLIN:
  /// above the high watermark the session stops reading new requests until
  /// the peer drains responses below the low watermark.
  size_t write_buffered() const;

  /// --- Per-request context -------------------------------------------------

  /// Registers a request and returns its session-owned CancelToken, armed
  /// with `deadline_micros` (0 = none). `is_commit` tags work that mutates
  /// durable state (ExecSql, publish) — drain lets it finish while
  /// analyze-only work is cancelled. The token stays valid until
  /// FinishRequest (shared_ptr keeps it alive for a worker that races a
  /// cancel).
  std::shared_ptr<CancelToken> StartRequest(uint32_t request_id,
                                            uint64_t deadline_micros,
                                            bool is_commit);
  /// Cancels an in-flight request's token (kCancel frame). False when the
  /// id is unknown (already finished — a benign race).
  bool CancelRequest(uint32_t request_id);
  /// Cancels every in-flight request (connection death).
  void CancelAll();
  /// Drain shedding: cancels analyze-only requests, leaves commits and
  /// publishes to finish cleanly.
  void CancelAnalyzeRequests();
  void FinishRequest(uint32_t request_id);
  int inflight_requests() const;

  /// Last socket activity, for the slow-loris idle sweep.
  uint64_t last_activity_us() const {
    return last_activity_us_.load(std::memory_order_relaxed);
  }

  /// Marks the connection dead: subsequent sends drop, reads fail fast.
  void MarkDead();
  bool dead() const { return dead_.load(std::memory_order_relaxed); }

 private:
  /// Write loop under write_mu_: true = buffer fully drained, false =
  /// socket would block with bytes left (arm EPOLLOUT). Error = peer gone.
  Result<bool> FlushLocked();

  const int fd_;
  const uint64_t session_id_;
  FrameReader reader_;

  mutable std::mutex write_mu_;
  std::string write_buf_;
  size_t write_pos_ = 0;

  struct InflightReq {
    std::shared_ptr<CancelToken> token;
    bool is_commit = false;
  };
  mutable std::mutex req_mu_;
  std::map<uint32_t, InflightReq> inflight_;

  std::atomic<uint64_t> last_activity_us_;
  std::atomic<bool> dead_{false};
};

}  // namespace ultraverse::server

#endif  // ULTRAVERSE_SERVER_SESSION_H_
