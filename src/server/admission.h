#ifndef ULTRAVERSE_SERVER_ADMISSION_H_
#define ULTRAVERSE_SERVER_ADMISSION_H_

#include <atomic>
#include <cstdint>

#include "util/status.h"

namespace ultraverse::server {

/// Admission limits for one server instance. The shape follows Envoy's
/// overload manager: a hard in-flight cap, a bounded wait queue, and a
/// shed watermark that rejects cheap-to-retry load (analyze-only what-ifs)
/// before expensive-to-retry load (commits and publishes) as the queue
/// fills.
struct AdmissionOptions {
  /// What-if analyses and SQL commits executing concurrently in workers.
  int max_inflight = 8;
  /// Admitted requests waiting for a worker beyond the in-flight cap.
  /// Together these bound per-server request memory: past the sum every
  /// request is fast-rejected with kResourceExhausted.
  int max_queue_depth = 32;
  /// Fraction of the queue at which analyze-only load starts shedding
  /// while commits are still admitted (the overload action). Keyed off
  /// live queue state plus the uv.whatif.* gauges the monitor reads.
  double shed_analyze_watermark = 0.5;
  /// Accepted connections; accept() past this closes immediately.
  int max_connections = 128;
};

/// Lock-free admission gate. TryEnter/Exit bracket every admitted request;
/// counters/gauges publish the decisions as uv.server.admission.*.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);

  /// kOk = admitted (caller MUST call Exit() when the request retires).
  /// kResourceExhausted = rejected — either hard-full, or analyze-only
  /// load shed past the overload watermark. Rejection is O(1) with no
  /// allocation: the fast path a storm hits.
  Status TryEnter(bool is_commit);
  void Exit();

  /// Connection-count gate for the accept loop.
  bool TryAddConnection();
  void RemoveConnection();

  int inflight() const { return inflight_.load(std::memory_order_relaxed); }
  int connections() const {
    return connections_.load(std::memory_order_relaxed);
  }
  const AdmissionOptions& options() const { return options_; }

 private:
  AdmissionOptions options_;
  std::atomic<int> inflight_{0};     // admitted: executing or queued
  std::atomic<int> connections_{0};
};

}  // namespace ultraverse::server

#endif  // ULTRAVERSE_SERVER_ADMISSION_H_
