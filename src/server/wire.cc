#include "server/wire.h"

#include "util/binary_codec.h"
#include "util/crc32.h"

namespace ultraverse::server {

void AppendFrame(std::string* out, MsgType type, const std::string& payload) {
  PutU8(out, uint8_t(type));
  PutU32(out, uint32_t(payload.size()));
  std::string crc_domain;
  crc_domain.reserve(payload.size() + 1);
  crc_domain.push_back(char(type));
  crc_domain.append(payload);
  PutU32(out, Crc32(crc_domain));
  out->append(payload);
}

Result<std::optional<Frame>> FrameReader::Next() {
  // Compact once the consumed prefix dominates, so a long-lived session
  // does not grow its read buffer without bound.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  const size_t avail = buf_.size() - pos_;
  if (avail < 9) return std::optional<Frame>{};
  const char* p = buf_.data() + pos_;
  uint8_t type = uint8_t(p[0]);
  uint32_t len = 0, crc = 0;
  for (int i = 0; i < 4; ++i) {
    len |= uint32_t(uint8_t(p[1 + i])) << (8 * i);
    crc |= uint32_t(uint8_t(p[5 + i])) << (8 * i);
  }
  if (len > kMaxFramePayload) {
    return Status::DataLoss("wire frame exceeds max payload (" +
                            std::to_string(len) + " bytes)");
  }
  if (avail < 9 + size_t(len)) return std::optional<Frame>{};
  std::string crc_domain;
  crc_domain.reserve(len + 1);
  crc_domain.push_back(char(type));
  crc_domain.append(buf_, pos_ + 9, len);
  if (Crc32(crc_domain) != crc) {
    return Status::DataLoss("wire frame CRC mismatch");
  }
  Frame frame;
  frame.type = MsgType(type);
  frame.payload = buf_.substr(pos_ + 9, len);
  pos_ += 9 + len;
  return std::optional<Frame>{std::move(frame)};
}

std::string EncodeExecSql(const ExecSqlReq& r) {
  std::string out;
  PutU32(&out, r.id);
  PutString(&out, r.sql);
  PutU64(&out, r.deadline_micros);
  return out;
}

Result<ExecSqlReq> DecodeExecSql(const std::string& payload) {
  ExecSqlReq r;
  BinaryReader br(payload);
  UV_RETURN_NOT_OK(br.U32(&r.id));
  UV_RETURN_NOT_OK(br.Str(&r.sql));
  UV_RETURN_NOT_OK(br.U64(&r.deadline_micros));
  return r;
}

std::string EncodeWhatIf(const WhatIfReq& r) {
  std::string out;
  PutU32(&out, r.id);
  PutU8(&out, r.kind);
  PutU64(&out, r.index);
  PutString(&out, r.new_sql);
  PutU8(&out, r.mode);
  PutU64(&out, r.deadline_micros);
  PutU8(&out, r.full_naive ? 1 : 0);
  PutU8(&out, r.want_report ? 1 : 0);
  PutU32(&out, uint32_t(r.max_attempts));
  return out;
}

Result<WhatIfReq> DecodeWhatIf(const std::string& payload) {
  WhatIfReq r;
  BinaryReader br(payload);
  uint8_t b = 0;
  uint32_t attempts = 1;
  UV_RETURN_NOT_OK(br.U32(&r.id));
  UV_RETURN_NOT_OK(br.U8(&r.kind));
  UV_RETURN_NOT_OK(br.U64(&r.index));
  UV_RETURN_NOT_OK(br.Str(&r.new_sql));
  UV_RETURN_NOT_OK(br.U8(&r.mode));
  UV_RETURN_NOT_OK(br.U64(&r.deadline_micros));
  UV_RETURN_NOT_OK(br.U8(&b));
  r.full_naive = b != 0;
  UV_RETURN_NOT_OK(br.U8(&b));
  r.want_report = b != 0;
  UV_RETURN_NOT_OK(br.U32(&attempts));
  r.max_attempts = int(attempts);
  if (r.kind > 2) return Status::InvalidArgument("bad retro-op kind");
  if (r.mode > 3) return Status::InvalidArgument("bad system mode");
  return r;
}

std::string EncodeSimple(const SimpleReq& r) {
  std::string out;
  PutU32(&out, r.id);
  return out;
}

Result<SimpleReq> DecodeSimple(const std::string& payload) {
  SimpleReq r;
  BinaryReader br(payload);
  UV_RETURN_NOT_OK(br.U32(&r.id));
  return r;
}

std::string EncodeCancel(const CancelReq& r) {
  std::string out;
  PutU32(&out, r.id);
  PutU32(&out, r.target_id);
  return out;
}

Result<CancelReq> DecodeCancel(const std::string& payload) {
  CancelReq r;
  BinaryReader br(payload);
  UV_RETURN_NOT_OK(br.U32(&r.id));
  UV_RETURN_NOT_OK(br.U32(&r.target_id));
  return r;
}

std::string EncodeOk(const OkResp& r) {
  std::string out;
  PutU32(&out, r.id);
  PutString(&out, r.body);
  return out;
}

Result<OkResp> DecodeOk(const std::string& payload) {
  OkResp r;
  BinaryReader br(payload);
  UV_RETURN_NOT_OK(br.U32(&r.id));
  UV_RETURN_NOT_OK(br.Str(&r.body));
  return r;
}

std::string EncodeError(const ErrorResp& r) {
  std::string out;
  PutU32(&out, r.id);
  PutU8(&out, r.code);
  PutString(&out, r.message);
  return out;
}

Result<ErrorResp> DecodeError(const std::string& payload) {
  ErrorResp r;
  BinaryReader br(payload);
  UV_RETURN_NOT_OK(br.U32(&r.id));
  UV_RETURN_NOT_OK(br.U8(&r.code));
  UV_RETURN_NOT_OK(br.Str(&r.message));
  return r;
}

std::string EncodeChunk(const ChunkResp& r) {
  std::string out;
  PutU32(&out, r.id);
  PutString(&out, r.chunk);
  return out;
}

Result<ChunkResp> DecodeChunk(const std::string& payload) {
  ChunkResp r;
  BinaryReader br(payload);
  UV_RETURN_NOT_OK(br.U32(&r.id));
  UV_RETURN_NOT_OK(br.Str(&r.chunk));
  return r;
}

uint32_t PeekRequestId(const std::string& payload) {
  if (payload.size() < 4) return 0;
  uint32_t id = 0;
  for (int i = 0; i < 4; ++i) {
    id |= uint32_t(uint8_t(payload[i])) << (8 * i);
  }
  return id;
}

uint8_t StatusCodeToWire(StatusCode code) { return uint8_t(code); }

StatusCode WireToStatusCode(uint8_t code) {
  if (code > uint8_t(StatusCode::kResourceExhausted)) {
    return StatusCode::kInternal;
  }
  return StatusCode(code);
}

}  // namespace ultraverse::server
