#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/metrics.h"

namespace ultraverse::server {

Result<std::unique_ptr<UvClient>> UvClient::Connect(const std::string& host,
                                                    int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(uint16_t(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad server host " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Status::Unavailable(std::string("connect: ") +
                                    std::strerror(errno));
    ::close(fd);
    return st;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<UvClient>(new UvClient(fd));
}

UvClient::~UvClient() {
  if (fd_ >= 0) ::close(fd_);
}

Status UvClient::SendAll(const std::string& buf) {
  size_t off = 0;
  while (off < buf.size()) {
    ssize_t n =
        ::send(fd_, buf.data() + off, buf.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("send failed: ") +
                                 std::strerror(errno));
    }
    off += size_t(n);
  }
  return Status::OK();
}

Result<Frame> UvClient::ReadFrame() {
  for (;;) {
    Result<std::optional<Frame>> next = reader_.Next();
    if (!next.ok()) return next.status();
    if (next->has_value()) return std::move(**next);
    char chunk[16 * 1024];
    ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      reader_.Feed(chunk, size_t(n));
      continue;
    }
    if (n == 0) {
      return Status::Unavailable("server closed connection");
    }
    if (errno == EINTR) continue;
    return Status::Unavailable(std::string("read failed: ") +
                               std::strerror(errno));
  }
}

Result<std::string> UvClient::RoundTrip(MsgType type, uint32_t id,
                                        const std::string& payload,
                                        std::string* report_json) {
  static obs::Counter* const requests =
      obs::Registry::Global().counter("uv.client.requests");
  requests->Inc();
  std::string out;
  AppendFrame(&out, type, payload);
  UV_RETURN_NOT_OK(SendAll(out));
  for (;;) {
    UV_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
    switch (frame.type) {
      case MsgType::kReportChunk: {
        UV_ASSIGN_OR_RETURN(ChunkResp chunk, DecodeChunk(frame.payload));
        if (chunk.id == id && report_json != nullptr) {
          report_json->append(chunk.chunk);
        }
        continue;
      }
      case MsgType::kOk: {
        UV_ASSIGN_OR_RETURN(OkResp ok, DecodeOk(frame.payload));
        if (ok.id != id) continue;  // stale response from a cancelled req
        return std::move(ok.body);
      }
      case MsgType::kError: {
        UV_ASSIGN_OR_RETURN(ErrorResp err, DecodeError(frame.payload));
        if (err.id != id) continue;
        return Status(WireToStatusCode(err.code), std::move(err.message));
      }
      default:
        return Status::Internal("unexpected frame type " +
                                std::to_string(int(frame.type)));
    }
  }
}

Result<std::string> UvClient::Hello() {
  uint32_t id = ++next_id_;
  return RoundTrip(MsgType::kHello, id, EncodeSimple({id}), nullptr);
}

Result<std::string> UvClient::ExecSql(const std::string& sql,
                                      uint64_t deadline_micros) {
  uint32_t id = ++next_id_;
  return RoundTrip(MsgType::kExecSql, id,
                   EncodeExecSql({id, sql, deadline_micros}), nullptr);
}

namespace {
WhatIfReq ToWire(uint32_t id, const ClientWhatIf& spec) {
  WhatIfReq req;
  req.id = id;
  req.kind = spec.kind;
  req.index = spec.index;
  req.new_sql = spec.new_sql;
  req.mode = spec.mode;
  req.deadline_micros = spec.deadline_micros;
  req.full_naive = spec.full_naive;
  req.want_report = spec.want_report;
  req.max_attempts = spec.server_attempts;
  return req;
}
}  // namespace

Result<std::string> UvClient::Analyze(const ClientWhatIf& spec,
                                      std::string* report_json) {
  uint32_t id = ++next_id_;
  return RoundTrip(MsgType::kWhatIfAnalyze, id,
                   EncodeWhatIf(ToWire(id, spec)), report_json);
}

Result<std::string> UvClient::Publish(const ClientWhatIf& spec,
                                      RetryPolicy retry,
                                      std::string* report_json) {
  static obs::Counter* const retries =
      obs::Registry::Global().counter("uv.client.publish.retries");
  std::string body;
  Status st = RetryWithBackoff(
      retry, /*token=*/nullptr,
      [&]() -> Status {
        if (report_json != nullptr) report_json->clear();
        uint32_t id = ++next_id_;
        Result<std::string> r =
            RoundTrip(MsgType::kWhatIfPublish, id,
                      EncodeWhatIf(ToWire(id, spec)), report_json);
        if (!r.ok()) return r.status();
        body = std::move(*r);
        return Status::OK();
      },
      [&](int, const Status&) { retries->Inc(); });
  if (!st.ok()) return st;
  return body;
}

Result<std::string> UvClient::Health() {
  uint32_t id = ++next_id_;
  return RoundTrip(MsgType::kHealth, id, EncodeSimple({id}), nullptr);
}

Result<std::string> UvClient::Metrics() {
  uint32_t id = ++next_id_;
  return RoundTrip(MsgType::kMetrics, id, EncodeSimple({id}), nullptr);
}

Result<std::string> UvClient::Fingerprint() {
  uint32_t id = ++next_id_;
  return RoundTrip(MsgType::kFingerprint, id, EncodeSimple({id}), nullptr);
}

Result<std::string> UvClient::Drain() {
  uint32_t id = ++next_id_;
  return RoundTrip(MsgType::kDrain, id, EncodeSimple({id}), nullptr);
}

Result<std::string> UvClient::Cancel(uint32_t target_id) {
  uint32_t id = ++next_id_;
  return RoundTrip(MsgType::kCancel, id, EncodeCancel({id, target_id}),
                   nullptr);
}

}  // namespace ultraverse::server
