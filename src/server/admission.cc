#include "server/admission.h"

#include "obs/metrics.h"

namespace ultraverse::server {

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {}

Status AdmissionController::TryEnter(bool is_commit) {
  static obs::Counter* const admitted =
      obs::Registry::Global().counter("uv.server.admission.admitted");
  static obs::Counter* const rejected =
      obs::Registry::Global().counter("uv.server.admission.rejected");
  static obs::Counter* const shed =
      obs::Registry::Global().counter("uv.server.admission.shed_analyze");
  static obs::Gauge* const inflight_gauge =
      obs::Registry::Global().gauge("uv.server.inflight");
  static obs::Histogram* const depth_hist =
      obs::Registry::Global().histogram("uv.server.queue_depth");
  // The overload monitor's signal: how many what-if analyses the engine is
  // actually running right now (bumped by the request handlers around the
  // engine call). When the engine itself is saturated, analyze-only load
  // sheds even if the server queue still has room — the queue would only
  // hide latency, not create capacity.
  static obs::Gauge* const active_analyses =
      obs::Registry::Global().gauge("uv.whatif.active");

  const int hard_cap = options_.max_inflight + options_.max_queue_depth;
  const int shed_cap =
      options_.max_inflight +
      int(options_.shed_analyze_watermark * options_.max_queue_depth);
  for (;;) {
    int cur = inflight_.load(std::memory_order_relaxed);
    if (cur >= hard_cap) {
      rejected->Inc();
      return Status::ResourceExhausted(
          "server at capacity (" + std::to_string(cur) + " in flight)");
    }
    if (!is_commit &&
        (cur >= shed_cap ||
         active_analyses->Value() >= options_.max_inflight)) {
      // Overload action: analyze-only load sheds first. Commits (and
      // publishes) keep their full queue headroom because aborting them
      // client-side is far more expensive than re-asking a question.
      shed->Inc();
      return Status::ResourceExhausted("analyze load shed (overload)");
    }
    if (inflight_.compare_exchange_weak(cur, cur + 1,
                                        std::memory_order_acq_rel)) {
      admitted->Inc();
      inflight_gauge->Add(1);
      depth_hist->Record(uint64_t(cur + 1));
      return Status::OK();
    }
  }
}

void AdmissionController::Exit() {
  static obs::Gauge* const inflight_gauge =
      obs::Registry::Global().gauge("uv.server.inflight");
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
  inflight_gauge->Add(-1);
}

bool AdmissionController::TryAddConnection() {
  static obs::Counter* const refused =
      obs::Registry::Global().counter("uv.server.conn.refused");
  static obs::Gauge* const conns =
      obs::Registry::Global().gauge("uv.server.connections");
  for (;;) {
    int cur = connections_.load(std::memory_order_relaxed);
    if (cur >= options_.max_connections) {
      refused->Inc();
      return false;
    }
    if (connections_.compare_exchange_weak(cur, cur + 1,
                                           std::memory_order_acq_rel)) {
      conns->Add(1);
      return true;
    }
  }
}

void AdmissionController::RemoveConnection() {
  static obs::Gauge* const conns =
      obs::Registry::Global().gauge("uv.server.connections");
  connections_.fetch_sub(1, std::memory_order_acq_rel);
  conns->Add(-1);
}

}  // namespace ultraverse::server
