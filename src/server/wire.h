#ifndef ULTRAVERSE_SERVER_WIRE_H_
#define ULTRAVERSE_SERVER_WIRE_H_

#include <cstdint>
#include <optional>
#include <string>

#include "util/status.h"

namespace ultraverse::server {

/// Wire protocol frames reuse the WAL record framing idiom (DESIGN.md §11):
///
///   [u8 type][u32 payload_len][u32 crc32(type || payload)][payload]
///
/// little-endian, CRC over type||payload so a bit flip anywhere in the
/// frame is caught. A frame that fails its CRC is a protocol error for the
/// whole connection (the stream cannot be resynchronized), mirroring the
/// WAL's "the prefix is truth" rule: everything decoded before it stands.
enum class MsgType : uint8_t {
  // Requests (client -> server).
  kHello = 1,
  kExecSql = 2,
  kWhatIfAnalyze = 3,
  kWhatIfPublish = 4,
  kHealth = 5,
  kDrain = 6,
  kMetrics = 7,
  kFingerprint = 8,
  kCancel = 9,
  // Responses (server -> client).
  kOk = 64,
  kError = 65,
  kReportChunk = 67,  // streamed explain-report fragment, precedes kOk
};

/// Maximum accepted payload size. Bounds per-connection memory against a
/// malicious or corrupt length header (a 4GiB allocation is itself a DoS).
inline constexpr uint32_t kMaxFramePayload = 8u << 20;  // 8 MiB

struct Frame {
  MsgType type = MsgType::kHello;
  std::string payload;
};

/// Appends one framed message to `out`.
void AppendFrame(std::string* out, MsgType type, const std::string& payload);

/// Incremental frame parser over a connection's read stream. Feed() raw
/// bytes as they arrive; Next() yields complete frames until the buffer
/// holds only a partial one. CRC mismatch / oversized length returns
/// kDataLoss — the caller must close the connection.
class FrameReader {
 public:
  void Feed(const char* data, size_t n) { buf_.append(data, n); }

  /// One decoded frame, std::nullopt when more bytes are needed, or
  /// kDataLoss on an unrecoverable framing error.
  Result<std::optional<Frame>> Next();

  size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  size_t pos_ = 0;
};

// --- Request/response payloads ---------------------------------------------
// Every payload leads with the client-chosen u32 request id, echoed in the
// response, so a session can pipeline requests and target kCancel at one.

struct ExecSqlReq {
  uint32_t id = 0;
  std::string sql;
  uint64_t deadline_micros = 0;  // 0 = no deadline
};

/// Shared by kWhatIfAnalyze and kWhatIfPublish (the type byte selects).
struct WhatIfReq {
  uint32_t id = 0;
  uint8_t kind = 1;  // core::RetroOp::Kind: 0=add 1=remove 2=change
  uint64_t index = 0;
  std::string new_sql;
  uint8_t mode = 3;  // core::SystemMode: 0=B 1=T 2=D 3=TD
  uint64_t deadline_micros = 0;
  bool full_naive = false;   // analyze only: differential-oracle reference
  bool want_report = false;  // stream the explain report as kReportChunk
  int max_attempts = 1;      // server-side retry budget (kUnavailable)
};

/// kHealth / kDrain / kMetrics / kFingerprint carry only the id.
struct SimpleReq {
  uint32_t id = 0;
};

struct CancelReq {
  uint32_t id = 0;
  uint32_t target_id = 0;  // in-flight request to cancel on this session
};

struct OkResp {
  uint32_t id = 0;
  std::string body;  // semantics per request type (fingerprint hex, JSON...)
};

struct ErrorResp {
  uint32_t id = 0;
  uint8_t code = 0;  // StatusCode, so clients get typed retryable errors
  std::string message;
};

struct ChunkResp {
  uint32_t id = 0;
  std::string chunk;
};

std::string EncodeExecSql(const ExecSqlReq& r);
Result<ExecSqlReq> DecodeExecSql(const std::string& payload);

std::string EncodeWhatIf(const WhatIfReq& r);
Result<WhatIfReq> DecodeWhatIf(const std::string& payload);

std::string EncodeSimple(const SimpleReq& r);
Result<SimpleReq> DecodeSimple(const std::string& payload);

std::string EncodeCancel(const CancelReq& r);
Result<CancelReq> DecodeCancel(const std::string& payload);

std::string EncodeOk(const OkResp& r);
Result<OkResp> DecodeOk(const std::string& payload);

std::string EncodeError(const ErrorResp& r);
Result<ErrorResp> DecodeError(const std::string& payload);

std::string EncodeChunk(const ChunkResp& r);
Result<ChunkResp> DecodeChunk(const std::string& payload);

/// Peeks the leading request id of any request payload (they all start
/// with it) — used to reply kError to a request whose body failed to parse.
uint32_t PeekRequestId(const std::string& payload);

/// Status <-> wire error code round trip.
uint8_t StatusCodeToWire(StatusCode code);
StatusCode WireToStatusCode(uint8_t code);

}  // namespace ultraverse::server

#endif  // ULTRAVERSE_SERVER_WIRE_H_
