#ifndef ULTRAVERSE_SERVER_SERVER_H_
#define ULTRAVERSE_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/ultraverse.h"
#include "server/admission.h"
#include "server/session.h"
#include "server/wire.h"
#include "util/thread_pool.h"

namespace ultraverse::server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = kernel-assigned ephemeral port (read it back via port()).
  int port = 0;
  int workers = 4;
  AdmissionOptions admission;
  /// Slow-loris defense: connections with no socket activity for this long
  /// are reaped by the dispatcher's idle sweep. 0 disables.
  uint64_t idle_timeout_micros = 30'000'000;
  /// Write-side backpressure: above high, the session stops reading new
  /// requests (EPOLLIN off) until the peer drains below low.
  size_t write_high_watermark = 4u << 20;
  size_t write_low_watermark = 1u << 20;
  /// Graceful-drain budget: in-flight work gets this long to finish before
  /// remaining requests are cancelled outright.
  uint64_t drain_timeout_micros = 30'000'000;
  /// When set, the final StateFingerprint is written here on clean drain —
  /// the multi-client differential gate reads it back and checks it against
  /// the WAL-recovered oracle.
  std::string fingerprint_out;
  /// Restarting over a non-empty engine.wal_path replays the durable
  /// history into the engine before serving (fault::RecoverInto, then
  /// Ultraverse::AttachWal — torn tails truncate before the append offset
  /// is computed). Off = the WAL opens append-only over unrecovered state,
  /// which is only sane for a fresh file.
  bool recover_wal = true;
  /// Engine configuration (WAL path, threads, explain level...).
  core::Ultraverse::Options engine;
};

/// TCP front-end for one Ultraverse engine: epoll dispatcher thread +
/// worker pool, length-prefixed CRC32-framed wire protocol, per-request
/// deadlines/cancellation, admission control with analyze-shedding
/// overload action, and a graceful drain sequence (DESIGN.md §16).
class UvServer {
 public:
  /// Binds, listens, spawns the dispatcher and workers. The returned
  /// server is serving when this returns.
  static Result<std::unique_ptr<UvServer>> Start(ServerOptions options);
  ~UvServer();

  UvServer(const UvServer&) = delete;
  UvServer& operator=(const UvServer&) = delete;

  int port() const { return port_; }
  core::Ultraverse* engine() { return engine_.get(); }

  /// Initiates graceful drain: stop accepting, cancel analyze-only work,
  /// let in-flight commits/publishes finish (bounded by drain_timeout),
  /// flush responses, fsync the WAL, write the fingerprint file, exit.
  /// Async-signal-safe (one eventfd write) so a SIGTERM handler may call
  /// it directly.
  void RequestDrain();

  /// Blocks until the dispatcher exits (after a drain). Returns the drain
  /// status: kOk = every in-flight commit retired and the WAL is synced.
  Status WaitShutdown();

  bool draining() const {
    return state_.load(std::memory_order_relaxed) != State::kServing;
  }

  /// What the restart recovery replayed before serving began (both zero
  /// when the WAL started empty or recover_wal was off).
  size_t recovered_entries() const { return recovered_entries_; }
  size_t recovered_markers() const { return recovered_markers_; }

 private:
  enum class State : int { kServing, kDraining, kStopped };

  UvServer() = default;
  Status Init(const ServerOptions& options);
  void DispatcherLoop();
  void AcceptNew();
  void HandleReadable(const std::shared_ptr<Session>& session);
  void DispatchFrame(const std::shared_ptr<Session>& session, Frame frame);
  void ReapSession(uint64_t session_id);
  void IdleSweep(uint64_t now_us);
  void FinishDrain();
  /// Queues a response and arms EPOLLOUT via the wakeup pipe when the
  /// session kept bytes buffered.
  void Respond(const std::shared_ptr<Session>& session, MsgType type,
               const std::string& payload);
  void RespondError(const std::shared_ptr<Session>& session, uint32_t id,
                    const Status& st);

  // Request handlers (run on workers).
  void HandleExecSql(std::shared_ptr<Session> session, ExecSqlReq req,
                     std::shared_ptr<CancelToken> token);
  void HandleWhatIf(std::shared_ptr<Session> session, WhatIfReq req,
                    bool publish, std::shared_ptr<CancelToken> token);

  void UpdateEpoll(const std::shared_ptr<Session>& session);

  ServerOptions options_;
  int port_ = 0;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: worker wakeups + drain requests
  std::unique_ptr<core::Ultraverse> engine_;
  size_t recovered_entries_ = 0;
  size_t recovered_markers_ = 0;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<ThreadPool> pool_;
  std::thread dispatcher_;

  std::atomic<State> state_{State::kServing};
  std::atomic<bool> drain_requested_{false};
  Status drain_status_;
  std::mutex drain_mu_;  // guards drain_status_ before WaitShutdown joins

  std::mutex sessions_mu_;
  std::map<uint64_t, std::shared_ptr<Session>> sessions_;
  uint64_t next_session_id_ = 1;

  /// Sessions whose write buffers a worker touched; the dispatcher arms
  /// EPOLLOUT for them on the next wakeup.
  std::mutex pending_mu_;
  std::vector<uint64_t> pending_write_;
  /// Per-session epoll interest: sessions currently read-gated by write
  /// backpressure (dispatcher-only state).
  std::map<uint64_t, bool> read_gated_;
};

}  // namespace ultraverse::server

#endif  // ULTRAVERSE_SERVER_SERVER_H_
