#include "server/net_oracle.h"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

#include <sys/wait.h>
#include <unistd.h>

#include "core/ultraverse.h"
#include "fault/failpoint.h"
#include "fault/recovery.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "server/server.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace ultraverse::server {

namespace {

/// The fixed seed schema every run starts from. Client-issued DML uses
/// client-unique keys, so every statement stays valid under any
/// interleaving, and what-if ops target these always-present setup indexes.
const char* kSetupSql[] = {
    "CREATE TABLE accounts (id INT PRIMARY KEY, balance INT)",
    "CREATE TABLE audit (id INT PRIMARY KEY, account INT, delta INT)",
    "INSERT INTO accounts (id, balance) VALUES (1, 100)",
    "INSERT INTO accounts (id, balance) VALUES (2, 100)",
    "INSERT INTO accounts (id, balance) VALUES (3, 100)",
    "INSERT INTO accounts (id, balance) VALUES (4, 100)",
    "INSERT INTO accounts (id, balance) VALUES (5, 100)",
    "INSERT INTO accounts (id, balance) VALUES (6, 100)",
};
constexpr size_t kSetupLen = sizeof(kSetupSql) / sizeof(kSetupSql[0]);
/// Indexes eligible as what-if targets: the setup INSERTs (1-based log
/// positions 3..8). Removing/changing one is always a valid retro op.
constexpr uint64_t kFirstOpIndex = 3;
constexpr uint64_t kLastOpIndex = kSetupLen;

std::string WalPath(const std::string& dir) { return dir + "/net_oracle.wal"; }
std::string FpPath(const std::string& dir) { return dir + "/net_oracle.fp"; }
std::string StatsPath(const std::string& dir, int client) {
  return dir + "/net_oracle.client" + std::to_string(client) + ".stats";
}

/// Pulls "key=value" out of a newline-separated response body.
std::string BodyField(const std::string& body, const std::string& key) {
  size_t pos = 0;
  while (pos < body.size()) {
    size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) eol = body.size();
    std::string line = body.substr(pos, eol - pos);
    if (line.rfind(key + "=", 0) == 0) return line.substr(key.size() + 1);
    pos = eol + 1;
  }
  return "";
}

// --- Server child -----------------------------------------------------------

UvServer* g_drain_target = nullptr;

void SigtermHandler(int) {
  if (g_drain_target != nullptr) g_drain_target->RequestDrain();
}

/// Runs in the forked server child. Never returns.
[[noreturn]] void RunServerChild(const NetFuzzOptions& options,
                                 int port_pipe_wr) {
  if (!options.failpoints.empty()) {
    Status st =
        fault::FailpointRegistry::Global().ArmFromSpec(options.failpoints);
    if (!st.ok()) _exit(12);
  }
  ServerOptions sopts;
  sopts.workers = options.server_workers;
  sopts.admission = options.admission;
  sopts.fingerprint_out = FpPath(options.work_dir);
  sopts.engine.wal_path = WalPath(options.work_dir);
  sopts.engine.wal_fsync_every_n = options.wal_fsync_every_n;
  auto server = UvServer::Start(sopts);
  if (!server.ok()) _exit(10);
  // Seed the schema through the engine (logged + WAL'd) before clients can
  // connect, so every client-visible history index >= kFirstOpIndex exists.
  for (const char* sql : kSetupSql) {
    if (!(*server)->engine()->ExecuteSql(sql).ok()) _exit(11);
  }
  g_drain_target = server->get();
  struct sigaction sa{};
  sa.sa_handler = SigtermHandler;
  ::sigaction(SIGTERM, &sa, nullptr);
  // Ready: publish the ephemeral port; clients fork after the parent reads
  // this, so no one connects to a half-initialized server.
  std::string line = std::to_string((*server)->port()) + "\n";
  [[maybe_unused]] ssize_t n = ::write(port_pipe_wr, line.data(), line.size());
  ::close(port_pipe_wr);
  Status st = (*server)->WaitShutdown();
  server->reset();
  _exit(st.ok() ? 0 : 3);
}

// --- Client child -----------------------------------------------------------

struct ClientStats {
  size_t ok = 0, rejected = 0, aborts = 0, retries = 0, deadline = 0;
  size_t reconnects = 0, pairs = 0, divergences = 0;
  std::vector<std::string> failures;
};

bool IsConnectionDeath(const Status& st) {
  return st.code() == StatusCode::kUnavailable ||
         st.code() == StatusCode::kDataLoss;
}

/// Runs in a forked client child. Never returns. Deterministic per
/// (seed, client index); all outcomes land in the stats file the parent
/// aggregates.
[[noreturn]] void RunClientChild(const NetFuzzOptions& options, int port,
                                 int client_idx) {
  Rng rng(options.seed * 1000003 + uint64_t(client_idx));
  ClientStats stats;
  std::unique_ptr<UvClient> client;
  int consecutive_conn_failures = 0;

  auto connect = [&]() -> bool {
    for (int attempt = 0; attempt < 20; ++attempt) {
      auto c = UvClient::Connect("127.0.0.1", port);
      if (c.ok()) {
        client = std::move(*c);
        consecutive_conn_failures = 0;
        return true;
      }
      // Draining or crashed server: connect() refuses. Back off briefly;
      // the caller decides when to give up for good.
      ::usleep(10'000);
    }
    return false;
  };
  if (!connect()) {
    stats.failures.push_back("initial connect failed");
  }

  auto analyze_fp = [&](bool full_naive, uint64_t index, uint8_t kind,
                        const std::string& new_sql, std::string* fp,
                        std::string* epoch) -> Status {
    ClientWhatIf spec;
    spec.kind = kind;
    spec.index = index;
    spec.new_sql = new_sql;
    spec.mode = 3;  // kTD
    spec.full_naive = full_naive;
    spec.deadline_micros = options.deadline_micros;
    Result<std::string> body = client->Analyze(spec);
    if (!body.ok()) return body.status();
    *fp = BodyField(*body, "fingerprint");
    *epoch = BodyField(*body, "epoch");
    return Status::OK();
  };

  for (int i = 0; client && i < options.requests_per_client; ++i) {
    uint64_t dice = rng.Next() % 100;
    uint64_t op_index = uint64_t(
        rng.UniformInt(int64_t(kFirstOpIndex), int64_t(kLastOpIndex)));
    uint8_t op_kind = rng.Bernoulli(0.5) ? 2 : 1;  // change : remove
    int64_t key = int64_t(client_idx) * 100000 + i;
    // Replacement statements key the inserted id to the index being
    // changed (offset past every id real traffic uses), so any set of
    // published changes stays free of duplicate keys.
    std::string change_sql =
        "INSERT INTO accounts (id, balance) VALUES (" +
        std::to_string(1000 + op_index) + ", " +
        std::to_string(rng.UniformInt(0, 500)) + ")";

    Status st;
    if (dice < 45) {
      // Commit traffic with client-unique keys: valid in any interleaving.
      std::string sql =
          rng.Bernoulli(0.6)
              ? "INSERT INTO audit (id, account, delta) VALUES (" +
                    std::to_string(key) + ", " +
                    std::to_string(rng.UniformInt(1, 6)) + ", " +
                    std::to_string(rng.UniformInt(-50, 50)) + ")"
              : "UPDATE accounts SET balance = balance + " +
                    std::to_string(rng.UniformInt(1, 9)) + " WHERE id = " +
                    std::to_string(rng.UniformInt(1, 6));
      st = client->ExecSql(sql, options.deadline_micros).status();
    } else if (dice < 75) {
      // The over-the-wire MVCC oracle: selective then full-naive. Only
      // same-epoch pairs are comparable (other clients commit freely).
      std::string fp1, ep1, fp2, ep2;
      st = analyze_fp(false, op_index, op_kind,
                      op_kind == 2 ? change_sql : "", &fp1, &ep1);
      if (st.ok()) {
        st = analyze_fp(true, op_index, op_kind,
                        op_kind == 2 ? change_sql : "", &fp2, &ep2);
      }
      if (st.ok() && !ep1.empty() && ep1 == ep2) {
        ++stats.pairs;
        if (fp1 != fp2) {
          ++stats.divergences;
          stats.failures.push_back(
              "epoch " + ep1 + " selective/full-naive fingerprint mismatch " +
              "(op index " + std::to_string(op_index) + ")");
        }
      }
    } else if (dice < 90) {
      // Publish under contention: kAborted is expected and retried with
      // jittered backoff (satellite: typed retryable conflict errors).
      // Change-only: a published REMOVE would shift later indexes and let
      // two surviving statements insert the same key. Changes keep every
      // statement valid under any publish interleaving (ids are keyed to
      // the index being changed).
      ClientWhatIf spec;
      spec.kind = 2;
      spec.index = op_index;
      spec.new_sql = change_sql;
      spec.mode = 3;
      spec.deadline_micros = options.deadline_micros;
      RetryPolicy retry;
      retry.max_attempts = 4;
      retry.retry_aborted = true;
      retry.jitter_seed = options.seed * 31 + uint64_t(client_idx);
      st = client->Publish(spec, retry).status();
      if (st.code() == StatusCode::kAborted) {
        ++stats.aborts;  // lost the race 4 times in a row — acceptable
        st = Status::OK();
      }
    } else {
      st = (rng.Bernoulli(0.5) ? client->Health() : client->Fingerprint())
               .status();
    }

    if (st.ok()) {
      ++stats.ok;
      continue;
    }
    switch (st.code()) {
      case StatusCode::kResourceExhausted:
        ++stats.rejected;  // admission shed — the typed fast rejection
        ::usleep(2'000);
        break;
      case StatusCode::kDeadlineExceeded:
      case StatusCode::kCancelled:
        ++stats.deadline;
        break;
      default:
        if (IsConnectionDeath(st)) {
          // Torn frame / drain / crash killed the connection. Reconnect
          // and press on; repeated failures mean the server is gone
          // (drain or crash sweep) — exit cleanly, the parent-side
          // recovery oracle takes over from here.
          client.reset();
          ++consecutive_conn_failures;
          if (consecutive_conn_failures > 2 || !connect()) {
            i = options.requests_per_client;  // wind down
          } else {
            ++stats.reconnects;
          }
        } else {
          stats.failures.push_back("request " + std::to_string(i) +
                                   " unexpected error: " + st.ToString());
        }
        break;
    }
  }
  client.reset();
  // The retry loop's attempts live in the child's process-global counter.
  stats.retries = obs::Registry::Global()
                      .counter("uv.client.publish.retries")
                      ->Value();

  {
    std::ofstream out(StatsPath(options.work_dir, client_idx),
                      std::ios::trunc);
    out << "ok=" << stats.ok << "\nrejected=" << stats.rejected
        << "\naborts=" << stats.aborts << "\nretries=" << stats.retries
        << "\ndeadline=" << stats.deadline
        << "\nreconnects=" << stats.reconnects << "\npairs=" << stats.pairs
        << "\ndivergences=" << stats.divergences << "\n";
    for (const auto& f : stats.failures) out << "failure=" << f << "\n";
    out.flush();
  }
  _exit(stats.failures.empty() && stats.divergences == 0 ? 0 : 1);
}

/// waitpid with a deadline; SIGKILLs on timeout. Returns the exit status
/// via *status and false only if the child had to be killed.
bool WaitWithDeadline(pid_t pid, uint64_t deadline_us, int* status) {
  for (;;) {
    pid_t r = ::waitpid(pid, status, WNOHANG);
    if (r == pid) return true;
    if (r < 0) return false;
    if (NowMicros() > deadline_us) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, status, 0);
      return false;
    }
    ::usleep(5'000);
  }
}

Result<std::string> RecoverFingerprint(const std::string& wal_path) {
  UV_ASSIGN_OR_RETURN(fault::RecoveredState state,
                      fault::RecoverState(wal_path));
  return core::FingerprintDatabase(*state.db);
}

}  // namespace

Result<NetFuzzReport> NetFuzz(const NetFuzzOptions& options) {
  NetFuzzReport report;
  auto progress = [&](const std::string& msg) {
    if (options.progress) options.progress(msg);
  };
  ::unlink(WalPath(options.work_dir).c_str());
  ::unlink(FpPath(options.work_dir).c_str());
  for (int c = 0; c < options.clients; ++c) {
    ::unlink(StatsPath(options.work_dir, c).c_str());
  }

  const uint64_t deadline = NowMicros() +
                            uint64_t(options.timeout_seconds * 1e6);

  int port_pipe[2];
  if (::pipe(port_pipe) != 0) return Status::Unavailable("pipe failed");
  pid_t server_pid = ::fork();
  if (server_pid < 0) return Status::Unavailable("fork failed");
  if (server_pid == 0) {
    ::close(port_pipe[0]);
    RunServerChild(options, port_pipe[1]);
  }
  ::close(port_pipe[1]);

  // Read the ephemeral port line; EOF = the server child died on startup.
  std::string port_line;
  char ch;
  while (port_line.find('\n') == std::string::npos &&
         ::read(port_pipe[0], &ch, 1) == 1) {
    port_line.push_back(ch);
  }
  ::close(port_pipe[0]);
  if (port_line.empty()) {
    int status = 0;
    WaitWithDeadline(server_pid, deadline, &status);
    return Status::Unavailable("server child failed to start (exit " +
                               std::to_string(WEXITSTATUS(status)) + ")");
  }
  int port = std::atoi(port_line.c_str());
  progress("server up on port " + std::to_string(port));

  std::vector<pid_t> client_pids;
  for (int c = 0; c < options.clients; ++c) {
    pid_t pid = ::fork();
    if (pid < 0) break;
    if (pid == 0) RunClientChild(options, port, c);
    client_pids.push_back(pid);
  }

  if (options.drain_mid_run) {
    // Let the hammering build up, then pull the plug: SIGTERM → graceful
    // drain while clients are mid-request.
    ::usleep(250'000);
    progress("sending SIGTERM (mid-run drain)");
    ::kill(server_pid, SIGTERM);
  }

  bool clients_clean = true;
  for (size_t c = 0; c < client_pids.size(); ++c) {
    int status = 0;
    if (!WaitWithDeadline(client_pids[c], deadline, &status)) {
      report.failures.push_back("client " + std::to_string(c) +
                                " hung; killed");
      clients_clean = false;
    }
  }
  if (!options.drain_mid_run) {
    progress("clients done; sending SIGTERM");
    ::kill(server_pid, SIGTERM);
  }
  int server_status = 0;
  if (!WaitWithDeadline(server_pid, deadline, &server_status)) {
    report.failures.push_back("server hung in drain; killed");
  } else {
    report.drained_clean =
        WIFEXITED(server_status) && WEXITSTATUS(server_status) == 0;
    if (!report.drained_clean) {
      report.failures.push_back(
          "server exit abnormal: " +
          std::string(WIFSIGNALED(server_status) ? "signal " : "exit ") +
          std::to_string(WIFSIGNALED(server_status)
                             ? WTERMSIG(server_status)
                             : WEXITSTATUS(server_status)));
    }
  }

  // Aggregate per-client stats.
  for (int c = 0; c < options.clients; ++c) {
    std::ifstream in(StatsPath(options.work_dir, c));
    if (!in) {
      if (clients_clean) {
        report.failures.push_back("client " + std::to_string(c) +
                                  " left no stats file");
      }
      continue;
    }
    std::string line;
    while (std::getline(in, line)) {
      size_t eq = line.find('=');
      if (eq == std::string::npos) continue;
      std::string key = line.substr(0, eq), val = line.substr(eq + 1);
      uint64_t n = std::strtoull(val.c_str(), nullptr, 10);
      if (key == "ok") report.requests_ok += n;
      else if (key == "rejected") report.rejected += n;
      else if (key == "aborts") report.publish_aborts += n;
      else if (key == "retries") report.publish_retries += n;
      else if (key == "deadline") report.deadline_hits += n;
      else if (key == "reconnects") report.reconnects += n;
      else if (key == "pairs") report.analyze_pairs += n;
      else if (key == "divergences") report.divergences += n;
      else if (key == "failure") {
        report.failures.push_back("client " + std::to_string(c) + ": " + val);
      }
    }
  }

  // Recovery oracle: the fingerprint the server claimed at drain must be
  // exactly reproducible from the WAL alone by a single process.
  {
    std::ifstream fp_in(FpPath(options.work_dir));
    std::getline(fp_in, report.server_fingerprint);
  }
  Result<std::string> recovered = RecoverFingerprint(WalPath(options.work_dir));
  if (recovered.ok()) {
    report.recovered_fingerprint = *recovered;
  } else {
    report.failures.push_back("WAL recovery failed: " +
                              recovered.status().ToString());
  }
  if (report.drained_clean) {
    if (report.server_fingerprint.empty()) {
      report.failures.push_back("clean drain left no fingerprint file");
    } else if (recovered.ok() &&
               report.server_fingerprint != report.recovered_fingerprint) {
      ++report.divergences;
      report.failures.push_back(
          "recovered state diverges from the server's drain fingerprint");
    }
  }
  progress("done: " + std::to_string(report.requests_ok) + " ok, " +
           std::to_string(report.analyze_pairs) + " oracle pairs, " +
           std::to_string(report.divergences) + " divergences");
  return report;
}

Result<NetCrashReport> NetCrashSweep(const NetCrashOptions& options) {
  // Every wire-path edge the protocol can tear at, plus the two durability
  // edges behind it. Crash actions kill the server child mid-flight; error
  // actions degrade it. Either way the WAL recovery invariant must hold.
  const struct {
    const char* spec;
    bool expect_death;
  } kSites[] = {
      {"server.publish.response=crash:once", true},
      // skip4 lets the server's own schema seed (2 group syncs) plus WAL
      // open reach disk; the one failure then lands on a client-driven
      // group commit, exercising the all-waiters error broadcast.
      {"wal.sync.fsync=error:skip4:once", false},
      {"server.frame.torn=error:every7", false},
      {"server.write.partial=error:every5", false},
      {"server.accept.storm=error:every3", false},
      {"server.read.stall=delay(2000):every11", false},
  };
  NetCrashReport report;
  const uint64_t budget_end =
      NowMicros() + uint64_t(options.seconds * 1e6);
  size_t round = 0;
  do {
    for (const auto& site : kSites) {
      if (round > 0 && NowMicros() > budget_end) break;
      NetFuzzOptions run;
      run.seed = options.seed + round * 101 + report.sites_run;
      run.clients = options.clients;
      run.requests_per_client = options.requests_per_client;
      run.drain_mid_run = false;
      run.failpoints = site.spec;
      run.work_dir = options.work_dir;
      run.timeout_seconds = 60;
      run.progress = options.progress;
      if (options.progress) {
        options.progress(std::string("site ") + site.spec);
      }
      Result<NetFuzzReport> r = NetFuzz(run);
      ++report.sites_run;
      if (!r.ok()) {
        report.failures.push_back(std::string(site.spec) + ": " +
                                  r.status().ToString());
        continue;
      }
      if (!r->drained_clean) ++report.server_deaths;
      if (site.expect_death && r->drained_clean) {
        report.failures.push_back(std::string(site.spec) +
                                  ": crash action never fired");
      }
      report.divergences += r->divergences;
      for (const auto& f : r->failures) {
        // Abnormal exit is the EXPECTED outcome of a crash site; only
        // non-exit failures (oracle divergence, recovery error) count.
        if (f.rfind("server exit abnormal", 0) == 0 && site.expect_death) {
          continue;
        }
        report.failures.push_back(std::string(site.spec) + ": " + f);
      }
      // Idempotence: recover the same torn WAL twice; the fingerprints
      // must agree (recovery is a pure function of the durable prefix).
      Result<std::string> again =
          RecoverFingerprint(WalPath(options.work_dir));
      if (again.ok() && !r->recovered_fingerprint.empty()) {
        ++report.recoveries;
        if (*again != r->recovered_fingerprint) {
          ++report.divergences;
          report.failures.push_back(std::string(site.spec) +
                                    ": recovery not idempotent");
        }
      }
    }
    ++round;
  } while (NowMicros() < budget_end);
  return report;
}

}  // namespace ultraverse::server
