#ifndef ULTRAVERSE_SERVER_CLIENT_H_
#define ULTRAVERSE_SERVER_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "server/wire.h"
#include "util/retry.h"

namespace ultraverse::server {

/// What-if request parameters as a client sees them (the wire WhatIfReq
/// minus the request id, which the client assigns per send).
struct ClientWhatIf {
  uint8_t kind = 1;  // core::RetroOp::Kind: 0=add 1=remove 2=change
  uint64_t index = 0;
  std::string new_sql;
  uint8_t mode = 3;  // core::SystemMode: 0=B 1=T 2=D 3=TD
  uint64_t deadline_micros = 0;
  bool full_naive = false;
  bool want_report = false;
  /// Server-side retry budget for transient replay faults (kUnavailable).
  int server_attempts = 1;
};

/// Blocking single-connection client for UvServer. One request in flight
/// at a time (send, then read frames until the matching kOk/kError).
///
/// Publish() is the kAborted-aware entry point: a first-committer-wins
/// conflict comes back as a typed retryable error, and the supplied
/// RetryPolicy (retry_aborted set) re-issues the publish after a jittered
/// backoff so concurrent publishers desynchronize instead of re-colliding.
class UvClient {
 public:
  static Result<std::unique_ptr<UvClient>> Connect(const std::string& host,
                                                   int port);
  ~UvClient();

  UvClient(const UvClient&) = delete;
  UvClient& operator=(const UvClient&) = delete;

  Result<std::string> Hello();
  Result<std::string> ExecSql(const std::string& sql,
                              uint64_t deadline_micros = 0);
  /// Analyze-only what-if. When `report_json` is non-null, streamed
  /// kReportChunk frames are reassembled into it (the explain report).
  Result<std::string> Analyze(const ClientWhatIf& spec,
                              std::string* report_json = nullptr);
  /// Publishing what-if. Retries per `retry`: kUnavailable always,
  /// kAborted when retry.retry_aborted is set. Each attempt is a fresh
  /// request (the server re-snapshots against the extended history).
  Result<std::string> Publish(const ClientWhatIf& spec,
                              RetryPolicy retry = {},
                              std::string* report_json = nullptr);
  Result<std::string> Health();
  Result<std::string> Metrics();
  Result<std::string> Fingerprint();
  Result<std::string> Drain();
  /// Cancels an in-flight request on this session (from another client
  /// object this is a no-op: request ids are per-session).
  Result<std::string> Cancel(uint32_t target_id);

 private:
  explicit UvClient(int fd) : fd_(fd) {}

  /// Sends one framed request and reads frames until the matching kOk or
  /// kError arrives; kReportChunk frames for the id accumulate into
  /// `report_json` when non-null.
  Result<std::string> RoundTrip(MsgType type, uint32_t id,
                                const std::string& payload,
                                std::string* report_json);
  Status SendAll(const std::string& buf);
  Result<Frame> ReadFrame();

  int fd_;
  FrameReader reader_;
  uint32_t next_id_ = 0;
};

}  // namespace ultraverse::server

#endif  // ULTRAVERSE_SERVER_CLIENT_H_
