#include "server/session.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "util/stopwatch.h"

namespace ultraverse::server {

Session::Session(int fd, uint64_t session_id)
    : fd_(fd), session_id_(session_id), last_activity_us_(NowMicros()) {}

Session::~Session() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::vector<Frame>> Session::ReadFrames() {
  if (dead()) return Status::Unavailable("session closed");
  char chunk[16 * 1024];
  bool got_bytes = false;
  for (;;) {
    // Slow-loris simulation point: a delay here models a peer trickling
    // bytes while the dispatcher is stuck in this read (the idle sweep
    // must still reap genuinely stalled peers).
    UV_FAILPOINT("server.read.stall");
    ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      got_bytes = true;
      size_t use = size_t(n);
      // Torn-frame injection: feed only a prefix of this read, then fail
      // the connection — the peer died (or a middlebox cut the stream)
      // mid-frame. TCP cannot lose bytes on a live connection, so the tear
      // must also kill the session; the parser must never deliver the
      // partial frame, and the client must see the close and reconnect.
      Status torn = Status::OK();
      UV_FAILPOINT_STATUS("server.frame.torn", torn);
      if (!torn.ok()) {
        if (use > 1) reader_.Feed(chunk, use / 2);
        return Status::Unavailable("connection torn mid-frame (injected)");
      }
      reader_.Feed(chunk, use);
      continue;
    }
    if (n == 0) return Status::Unavailable("peer closed connection");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return Status::Unavailable(std::string("read failed: ") +
                               std::strerror(errno));
  }
  if (got_bytes) {
    last_activity_us_.store(NowMicros(), std::memory_order_relaxed);
  }
  std::vector<Frame> frames;
  for (;;) {
    Result<std::optional<Frame>> next = reader_.Next();
    if (!next.ok()) return next.status();  // kDataLoss: framing broken
    if (!next->has_value()) break;
    frames.push_back(std::move(**next));
  }
  static obs::Counter* const frames_in =
      obs::Registry::Global().counter("uv.server.frames.in");
  frames_in->Add(frames.size());
  return frames;
}

bool Session::SendFrame(MsgType type, const std::string& payload) {
  if (dead()) return false;
  static obs::Counter* const frames_out =
      obs::Registry::Global().counter("uv.server.frames.out");
  frames_out->Inc();
  std::lock_guard<std::mutex> g(write_mu_);
  AppendFrame(&write_buf_, type, payload);
  Result<bool> drained = FlushLocked();
  if (!drained.ok()) {
    // The dispatcher notices via dead() on its next pass and reaps us.
    dead_.store(true, std::memory_order_relaxed);
    return false;
  }
  return !*drained;
}

Result<bool> Session::FlushWrites() {
  std::lock_guard<std::mutex> g(write_mu_);
  return FlushLocked();
}

size_t Session::write_buffered() const {
  std::lock_guard<std::mutex> g(write_mu_);
  return write_buf_.size() - write_pos_;
}

std::shared_ptr<CancelToken> Session::StartRequest(uint32_t request_id,
                                                   uint64_t deadline_micros,
                                                   bool is_commit) {
  auto token = std::make_shared<CancelToken>();
  if (deadline_micros > 0) token->SetDeadlineAfterMicros(deadline_micros);
  std::lock_guard<std::mutex> g(req_mu_);
  inflight_[request_id] = InflightReq{token, is_commit};
  return token;
}

bool Session::CancelRequest(uint32_t request_id) {
  std::lock_guard<std::mutex> g(req_mu_);
  auto it = inflight_.find(request_id);
  if (it == inflight_.end()) return false;
  it->second.token->Cancel();
  return true;
}

void Session::CancelAll() {
  std::lock_guard<std::mutex> g(req_mu_);
  for (auto& [id, req] : inflight_) req.token->Cancel();
}

void Session::CancelAnalyzeRequests() {
  std::lock_guard<std::mutex> g(req_mu_);
  for (auto& [id, req] : inflight_) {
    if (!req.is_commit) req.token->Cancel();
  }
}

void Session::FinishRequest(uint32_t request_id) {
  std::lock_guard<std::mutex> g(req_mu_);
  inflight_.erase(request_id);
}

int Session::inflight_requests() const {
  std::lock_guard<std::mutex> g(req_mu_);
  return int(inflight_.size());
}

void Session::MarkDead() { dead_.store(true, std::memory_order_relaxed); }

Result<bool> Session::FlushLocked() {
  while (write_pos_ < write_buf_.size()) {
    size_t want = write_buf_.size() - write_pos_;
    // Partial-write injection: pretend the socket accepted only one byte
    // this pass — exercises response reassembly on the client and the
    // EPOLLOUT rearm path here.
    Status partial = Status::OK();
    UV_FAILPOINT_STATUS("server.write.partial", partial);
    if (!partial.ok() && want > 1) want = 1;
    // MSG_NOSIGNAL: a peer that vanished mid-response yields EPIPE here
    // instead of killing the process with SIGPIPE.
    ssize_t n =
        ::send(fd_, write_buf_.data() + write_pos_, want, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return false;
      return Status::Unavailable(std::string("write failed: ") +
                                 std::strerror(errno));
    }
    write_pos_ += size_t(n);
    if (!partial.ok()) return write_pos_ >= write_buf_.size();
  }
  write_buf_.clear();
  write_pos_ = 0;
  return true;
}

}  // namespace ultraverse::server
