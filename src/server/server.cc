#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "fault/failpoint.h"
#include "fault/recovery.h"
#include "obs/metrics.h"
#include "sqldb/wal/wal.h"
#include "util/stopwatch.h"

namespace ultraverse::server {

namespace {

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Unavailable(std::string("fcntl: ") + std::strerror(errno));
  }
  return Status::OK();
}

core::SystemMode ModeFromWire(uint8_t mode) {
  switch (mode) {
    case 0: return core::SystemMode::kB;
    case 1: return core::SystemMode::kT;
    case 2: return core::SystemMode::kD;
    default: return core::SystemMode::kTD;
  }
}

core::RetroOp::Kind KindFromWire(uint8_t kind) {
  switch (kind) {
    case 0: return core::RetroOp::Kind::kAdd;
    case 1: return core::RetroOp::Kind::kRemove;
    default: return core::RetroOp::Kind::kChange;
  }
}

/// Streams a (possibly large) explain report as bounded kReportChunk
/// frames so one huge response cannot blow the peer's frame cap.
constexpr size_t kReportChunkBytes = 64 * 1024;

}  // namespace

Result<std::unique_ptr<UvServer>> UvServer::Start(ServerOptions options) {
  std::unique_ptr<UvServer> server(new UvServer());
  Status st = server->Init(options);
  if (!st.ok()) return st;
  return server;
}

Status UvServer::Init(const ServerOptions& options) {
  options_ = options;
  std::error_code ec;
  const std::string& wal_path = options.engine.wal_path;
  if (options.recover_wal && !wal_path.empty() &&
      std::filesystem::exists(wal_path, ec) &&
      std::filesystem::file_size(wal_path, ec) > 0) {
    // Restart over a durable history: replay the WAL into the engine
    // before it opens for append. A facade constructed with wal_path set
    // would compute its append offset first and serve an empty database
    // over a file that already holds history — every later commit and
    // recovery would then describe a fork.
    core::Ultraverse::Options eopts = options.engine;
    eopts.wal_path.clear();
    engine_ = std::make_unique<core::Ultraverse>(eopts);
    UV_ASSIGN_OR_RETURN(
        fault::RecoveryReport report,
        fault::RecoverInto(wal_path, engine_->db(), engine_->log()));
    recovered_entries_ = report.entries_replayed;
    recovered_markers_ = report.markers_applied;
    UV_RETURN_NOT_OK(engine_->AttachWal(wal_path));
  } else {
    engine_ = std::make_unique<core::Ultraverse>(options.engine);
  }
  if (!engine_->wal_status().ok()) return engine_->wal_status();
  admission_ = std::make_unique<AdmissionController>(options.admission);
  pool_ = std::make_unique<ThreadPool>(size_t(
      options.workers > 0 ? options.workers : 1));

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Unavailable(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(uint16_t(options.port));
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen host " + options.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::Unavailable(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, 128) < 0) {
    return Status::Unavailable(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t alen = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
  port_ = int(ntohs(addr.sin_port));
  UV_RETURN_NOT_OK(SetNonBlocking(listen_fd_));

  epoll_fd_ = ::epoll_create1(0);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    return Status::Unavailable("epoll/eventfd setup failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = 0;  // 0 = listen fd
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.events = EPOLLIN;
  ev.data.u64 = 1;  // 1 = wake fd
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  dispatcher_ = std::thread([this] { DispatcherLoop(); });
  return Status::OK();
}

UvServer::~UvServer() {
  RequestDrain();
  (void)WaitShutdown();
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void UvServer::RequestDrain() {
  drain_requested_.store(true, std::memory_order_release);
  if (wake_fd_ >= 0) {
    uint64_t one = 1;
    // write(2) is async-signal-safe: a SIGTERM handler may call this.
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
}

Status UvServer::WaitShutdown() {
  if (dispatcher_.joinable()) dispatcher_.join();
  std::lock_guard<std::mutex> g(drain_mu_);
  return drain_status_;
}

void UvServer::DispatcherLoop() {
  static obs::Counter* const loops =
      obs::Registry::Global().counter("uv.server.dispatch.loops");
  epoll_event events[64];
  while (state_.load(std::memory_order_relaxed) != State::kStopped) {
    loops->Inc();
    int n = ::epoll_wait(epoll_fd_, events, 64, /*timeout_ms=*/100);
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < n; ++i) {
      uint64_t tag = events[i].data.u64;
      if (tag == 0) {
        AcceptNew();
        continue;
      }
      if (tag == 1) {
        uint64_t drainv;
        while (::read(wake_fd_, &drainv, sizeof(drainv)) > 0) {
        }
        std::vector<uint64_t> pending;
        {
          std::lock_guard<std::mutex> g(pending_mu_);
          pending.swap(pending_write_);
        }
        for (uint64_t sid : pending) {
          std::shared_ptr<Session> s;
          {
            std::lock_guard<std::mutex> g(sessions_mu_);
            auto it = sessions_.find(sid);
            if (it != sessions_.end()) s = it->second;
          }
          if (s) UpdateEpoll(s);
        }
        continue;
      }
      std::shared_ptr<Session> session;
      {
        std::lock_guard<std::mutex> g(sessions_mu_);
        auto it = sessions_.find(tag);
        if (it != sessions_.end()) session = it->second;
      }
      if (!session) continue;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        ReapSession(tag);
        continue;
      }
      if (events[i].events & EPOLLOUT) {
        Result<bool> drained = session->FlushWrites();
        if (!drained.ok()) {
          ReapSession(tag);
          continue;
        }
        UpdateEpoll(session);
      }
      if (events[i].events & EPOLLIN) {
        HandleReadable(session);
      }
    }
    uint64_t now = NowMicros();
    IdleSweep(now);
    // Reap sessions a worker marked dead (write failure).
    std::vector<uint64_t> dead;
    {
      std::lock_guard<std::mutex> g(sessions_mu_);
      for (const auto& [sid, s] : sessions_) {
        if (s->dead()) dead.push_back(sid);
      }
    }
    for (uint64_t sid : dead) ReapSession(sid);
    if (drain_requested_.load(std::memory_order_acquire)) {
      FinishDrain();
    }
  }
}

void UvServer::AcceptNew() {
  static obs::Counter* const accepts =
      obs::Registry::Global().counter("uv.server.conn.accepted");
  for (;;) {
    // Accept-storm injection: error = accept transiently failing under
    // fd pressure, delay = a stalled accept loop backing up the backlog.
    Status storm = Status::OK();
    UV_FAILPOINT_STATUS("server.accept.storm", storm);
    if (!storm.ok()) return;  // try again on the next epoll tick
    int cfd = ::accept(listen_fd_, nullptr, nullptr);
    if (cfd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: backlog drained
    }
    if (state_.load(std::memory_order_relaxed) != State::kServing ||
        !admission_->TryAddConnection()) {
      ::close(cfd);  // draining or over the connection cap: refuse
      continue;
    }
    if (!SetNonBlocking(cfd).ok()) {
      ::close(cfd);
      admission_->RemoveConnection();
      continue;
    }
    int one = 1;
    ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    accepts->Inc();
    uint64_t sid;
    std::shared_ptr<Session> session;
    {
      std::lock_guard<std::mutex> g(sessions_mu_);
      sid = ++next_session_id_;  // ids start at 2 (0/1 = listen/wake tags)
      session = std::make_shared<Session>(cfd, sid);
      sessions_[sid] = session;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = sid;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, cfd, &ev);
    read_gated_[sid] = false;
  }
}

void UvServer::HandleReadable(const std::shared_ptr<Session>& session) {
  Result<std::vector<Frame>> frames = session->ReadFrames();
  if (!frames.ok()) {
    // Peer closed, read error, or a torn/corrupt frame: the stream cannot
    // be trusted past this point — reap the session. Everything decoded
    // before the tear was already dispatched (the WAL prefix rule).
    static obs::Counter* const torn =
        obs::Registry::Global().counter("uv.server.frames.torn");
    if (frames.status().code() == StatusCode::kDataLoss) torn->Inc();
    ReapSession(session->id());
    return;
  }
  for (Frame& frame : *frames) {
    DispatchFrame(session, std::move(frame));
  }
}

void UvServer::DispatchFrame(const std::shared_ptr<Session>& session,
                             Frame frame) {
  static obs::Counter* const reqs =
      obs::Registry::Global().counter("uv.server.requests");
  reqs->Inc();
  const bool draining =
      state_.load(std::memory_order_relaxed) != State::kServing;
  switch (frame.type) {
    case MsgType::kHello: {
      Result<SimpleReq> r = DecodeSimple(frame.payload);
      if (!r.ok()) break;
      Respond(session, MsgType::kOk, EncodeOk({r->id, "uv-server/1"}));
      return;
    }
    case MsgType::kHealth: {
      Result<SimpleReq> r = DecodeSimple(frame.payload);
      if (!r.ok()) break;
      Respond(session, MsgType::kOk,
              EncodeOk({r->id, draining ? "draining" : "serving"}));
      return;
    }
    case MsgType::kMetrics: {
      Result<SimpleReq> r = DecodeSimple(frame.payload);
      if (!r.ok()) break;
      Respond(session, MsgType::kOk,
              EncodeOk({r->id, obs::Registry::Global().ExportJson()}));
      return;
    }
    case MsgType::kFingerprint: {
      Result<SimpleReq> r = DecodeSimple(frame.payload);
      if (!r.ok()) break;
      Respond(session, MsgType::kOk,
              EncodeOk({r->id, engine_->StateFingerprint()}));
      return;
    }
    case MsgType::kDrain: {
      Result<SimpleReq> r = DecodeSimple(frame.payload);
      if (!r.ok()) break;
      Respond(session, MsgType::kOk, EncodeOk({r->id, "draining"}));
      RequestDrain();
      return;
    }
    case MsgType::kCancel: {
      Result<CancelReq> r = DecodeCancel(frame.payload);
      if (!r.ok()) break;
      bool found = session->CancelRequest(r->target_id);
      Respond(session, MsgType::kOk,
              EncodeOk({r->id, found ? "cancelled" : "not-found"}));
      return;
    }
    case MsgType::kExecSql: {
      Result<ExecSqlReq> r = DecodeExecSql(frame.payload);
      if (!r.ok()) break;
      if (draining) {
        RespondError(session, r->id,
                     Status::Unavailable("server draining, not accepting"));
        return;
      }
      Status adm = admission_->TryEnter(/*is_commit=*/true);
      if (!adm.ok()) {
        RespondError(session, r->id, adm);
        return;
      }
      auto token = session->StartRequest(r->id, r->deadline_micros,
                                         /*is_commit=*/true);
      ExecSqlReq req = std::move(*r);
      pool_->Submit([this, session, req = std::move(req), token]() mutable {
        HandleExecSql(session, std::move(req), token);
      });
      return;
    }
    case MsgType::kWhatIfAnalyze:
    case MsgType::kWhatIfPublish: {
      const bool publish = frame.type == MsgType::kWhatIfPublish;
      Result<WhatIfReq> r = DecodeWhatIf(frame.payload);
      if (!r.ok()) {
        RespondError(session, PeekRequestId(frame.payload), r.status());
        return;
      }
      if (draining) {
        RespondError(session, r->id,
                     Status::Unavailable("server draining, not accepting"));
        return;
      }
      Status adm = admission_->TryEnter(/*is_commit=*/publish);
      if (!adm.ok()) {
        RespondError(session, r->id, adm);
        return;
      }
      auto token =
          session->StartRequest(r->id, r->deadline_micros, publish);
      WhatIfReq req = std::move(*r);
      pool_->Submit(
          [this, session, req = std::move(req), publish, token]() mutable {
            HandleWhatIf(session, std::move(req), publish, token);
          });
      return;
    }
    default:
      break;
  }
  // Fall-through: undecodable or unknown frame. Tell the peer (best
  // effort, id 0 when even the id was unreadable) and keep the session —
  // the framing itself was intact.
  RespondError(session, PeekRequestId(frame.payload),
               Status::InvalidArgument("unparseable request frame"));
}

void UvServer::HandleExecSql(std::shared_ptr<Session> session, ExecSqlReq req,
                             std::shared_ptr<CancelToken> token) {
  static obs::Histogram* const latency =
      obs::Registry::Global().histogram("uv.server.exec_us");
  obs::ScopedLatency lat(latency);
  Status pre = token->Check("server.exec.admitted");
  if (pre.ok()) {
    Result<sql::ExecResult> res = engine_->ExecuteSql(req.sql);
    if (res.ok()) {
      std::string body = "affected=" + std::to_string(res->affected) +
                         "\nrows=" + std::to_string(res->rows.size());
      Respond(session, MsgType::kOk, EncodeOk({req.id, body}));
    } else {
      RespondError(session, req.id, res.status());
    }
  } else {
    RespondError(session, req.id, pre);
  }
  session->FinishRequest(req.id);
  admission_->Exit();
}

void UvServer::HandleWhatIf(std::shared_ptr<Session> session, WhatIfReq req,
                            bool publish,
                            std::shared_ptr<CancelToken> token) {
  static obs::Histogram* const latency =
      obs::Registry::Global().histogram("uv.server.whatif_us");
  static obs::Gauge* const active =
      obs::Registry::Global().gauge("uv.whatif.active");
  obs::ScopedLatency lat(latency);

  core::RequestContext ctx;
  ctx.cancel = token.get();
  ctx.retry.max_attempts = req.max_attempts;
  // Session-scoped jitter seed: conflicting retriers desynchronize.
  ctx.retry.jitter_seed = session->id() * 0x9E3779B97F4A7C15ULL + req.id;

  Status pre = token->Check("server.whatif.admitted");
  Result<core::RetroOp> op = pre.ok()
                                 ? engine_->MakeOp(KindFromWire(req.kind),
                                                   req.index, req.new_sql)
                                 : Result<core::RetroOp>(pre);
  if (!op.ok()) {
    RespondError(session, req.id, op.status());
    session->FinishRequest(req.id);
    admission_->Exit();
    return;
  }

  active->Add(1);
  std::string body;
  obs::WhatIfReport report;
  Status st;
  if (publish) {
    Result<core::ReplayStats> stats =
        engine_->WhatIf(*op, ModeFromWire(req.mode), {}, ctx);
    if (stats.ok()) {
      // Crash-during-publish-response: the publish committed (marker is
      // durable, tables swapped) but the client never hears. Recovery must
      // still show the published universe; the client's retry then sees
      // its work already applied via the fingerprint.
      Status crash = Status::OK();
      UV_FAILPOINT_STATUS("server.publish.response", crash);
      if (!crash.ok()) {
        st = crash;
      } else {
        body = "fingerprint=" + engine_->StateFingerprint() +
               "\nreplayed=" + std::to_string(stats->replayed) +
               "\nepoch=" + std::to_string(engine_->history_epoch());
        report = stats->report;
      }
    } else {
      st = stats.status();
    }
  } else {
    Result<core::WhatIfAnalysis> analysis =
        [&]() -> Result<core::WhatIfAnalysis> {
      if (req.full_naive) {
        // Ground-truth reference path: pin a snapshot and run full-naive
        // against it (the network oracle diff-checks this server-side).
        UV_ASSIGN_OR_RETURN(auto snap, engine_->SnapshotHistory());
        return engine_->WhatIfAnalyzeAt(*snap, *op, ModeFromWire(req.mode),
                                        /*full_naive=*/true, ctx);
      }
      return engine_->WhatIfAnalyze(*op, ModeFromWire(req.mode), ctx);
    }();
    if (analysis.ok()) {
      body = "fingerprint=" + analysis->fingerprint +
             "\nepoch=" + std::to_string(analysis->epoch) +
             "\nhorizon=" + std::to_string(analysis->horizon) +
             "\nreplayed=" + std::to_string(analysis->stats.replayed) +
             "\nskipped=" + std::to_string(analysis->stats.skipped) +
             "\ncache_hit=" + (analysis->cache_hit ? "1" : "0");
      report = analysis->stats.report;
    } else {
      st = analysis.status();
    }
  }
  active->Add(-1);

  if (!st.ok()) {
    static obs::Counter* const aborted =
        obs::Registry::Global().counter("uv.server.publish.aborted");
    if (st.code() == StatusCode::kAborted) aborted->Inc();
    RespondError(session, req.id, st);
  } else {
    if (req.want_report) {
      std::string json = report.ToJson();
      for (size_t off = 0; off < json.size(); off += kReportChunkBytes) {
        Respond(session, MsgType::kReportChunk,
                EncodeChunk(
                    {req.id, json.substr(off, kReportChunkBytes)}));
      }
    }
    Respond(session, MsgType::kOk, EncodeOk({req.id, body}));
  }
  session->FinishRequest(req.id);
  admission_->Exit();
}

void UvServer::Respond(const std::shared_ptr<Session>& session, MsgType type,
                       const std::string& payload) {
  bool buffered = session->SendFrame(type, payload);
  if (buffered) {
    // Bytes remain: the dispatcher must arm EPOLLOUT. Workers never touch
    // epoll themselves — they queue the session id and kick the eventfd.
    {
      std::lock_guard<std::mutex> g(pending_mu_);
      pending_write_.push_back(session->id());
    }
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
}

void UvServer::RespondError(const std::shared_ptr<Session>& session,
                            uint32_t id, const Status& st) {
  static obs::Counter* const errors =
      obs::Registry::Global().counter("uv.server.responses.error");
  errors->Inc();
  Respond(session, MsgType::kError,
          EncodeError({id, StatusCodeToWire(st.code()), st.message()}));
}

void UvServer::UpdateEpoll(const std::shared_ptr<Session>& session) {
  // Dispatcher-only: recompute the session's epoll interest set from its
  // write-buffer depth. Above the high watermark reads gate off (the peer
  // must drain responses before sending more work); below the low
  // watermark they gate back on.
  const uint64_t sid = session->id();
  size_t buffered = session->write_buffered();
  bool gated = read_gated_[sid];
  if (!gated && buffered >= options_.write_high_watermark) {
    gated = true;
    static obs::Counter* const gate =
        obs::Registry::Global().counter("uv.server.backpressure.gated");
    gate->Inc();
  } else if (gated && buffered <= options_.write_low_watermark) {
    gated = false;
  }
  read_gated_[sid] = gated;
  epoll_event ev{};
  ev.data.u64 = sid;
  ev.events = (gated ? 0u : uint32_t(EPOLLIN)) |
              (buffered > 0 ? uint32_t(EPOLLOUT) : 0u);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, session->fd(), &ev);
}

void UvServer::ReapSession(uint64_t session_id) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> g(sessions_mu_);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) return;
    session = it->second;
    sessions_.erase(it);
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, session->fd(), nullptr);
  read_gated_.erase(session_id);
  session->MarkDead();
  // In-flight work for this connection has nobody to answer to: cancel it
  // so workers drain instead of computing into the void. The tokens stay
  // alive through the workers' shared_ptrs.
  session->CancelAll();
  admission_->RemoveConnection();
  static obs::Counter* const closed =
      obs::Registry::Global().counter("uv.server.conn.closed");
  closed->Inc();
}

void UvServer::IdleSweep(uint64_t now_us) {
  if (options_.idle_timeout_micros == 0) return;
  std::vector<uint64_t> idle;
  {
    std::lock_guard<std::mutex> g(sessions_mu_);
    for (const auto& [sid, s] : sessions_) {
      // A connection with in-flight work is not idle, however long the
      // socket has been quiet — its requests are simply slow.
      if (s->inflight_requests() > 0) continue;
      if (now_us - s->last_activity_us() > options_.idle_timeout_micros) {
        idle.push_back(sid);
      }
    }
  }
  static obs::Counter* const reaped =
      obs::Registry::Global().counter("uv.server.conn.idle_reaped");
  for (uint64_t sid : idle) {
    reaped->Inc();
    ReapSession(sid);
  }
}

void UvServer::FinishDrain() {
  static obs::Counter* const drains =
      obs::Registry::Global().counter("uv.server.drain.started");
  static obs::Histogram* const drain_us =
      obs::Registry::Global().histogram("uv.server.drain_us");
  State expected = State::kServing;
  if (state_.compare_exchange_strong(expected, State::kDraining)) {
    drains->Inc();
    // Stop accepting: close the listen socket so new connections get RST
    // instead of queueing behind a drain.
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    ::close(listen_fd_);
    listen_fd_ = -1;
    // Overload-style shedding, drain edition: analyze-only work is
    // cancelled (cheap for clients to re-ask elsewhere); commits and
    // publishes run to completion so no acked durable work is lost.
    std::lock_guard<std::mutex> g(sessions_mu_);
    for (auto& [sid, s] : sessions_) s->CancelAnalyzeRequests();
  }
  // Bounded wait for in-flight work, then cancel stragglers outright.
  const uint64_t start = NowMicros();
  while (admission_->inflight() > 0) {
    if (NowMicros() - start > options_.drain_timeout_micros) {
      std::lock_guard<std::mutex> g(sessions_mu_);
      for (auto& [sid, s] : sessions_) s->CancelAll();
      break;
    }
    epoll_event ev{};
    (void)::epoll_wait(epoll_fd_, &ev, 1, 10);  // let EPOLLOUT flushes run
    std::this_thread::yield();
  }
  pool_->WaitIdle();
  // Final response flush: short best-effort pass so acked work's
  // responses reach their sockets.
  {
    std::lock_guard<std::mutex> g(sessions_mu_);
    for (auto& [sid, s] : sessions_) (void)s->FlushWrites();
  }
  Status st;
  if (engine_->wal()) {
    // The WAL's tail must be durable before the process exits: an acked
    // commit that only lived in the group-commit buffer would otherwise
    // vanish — a silent divergence from what clients were told.
    st = engine_->wal()->Sync();
  }
  if (st.ok() && !options_.fingerprint_out.empty()) {
    std::ofstream out(options_.fingerprint_out, std::ios::trunc);
    out << engine_->StateFingerprint() << "\n";
    out.flush();
    if (!out) st = Status::Unavailable("fingerprint write failed");
  }
  {
    std::lock_guard<std::mutex> g(drain_mu_);
    drain_status_ = st;
  }
  // Drained: close every remaining connection so peers observe EOF and
  // fail over, instead of blocking on a socket nobody will ever read
  // again (the process may well outlive this server object).
  std::vector<uint64_t> remaining;
  {
    std::lock_guard<std::mutex> g(sessions_mu_);
    for (const auto& [sid, s] : sessions_) remaining.push_back(sid);
  }
  for (uint64_t sid : remaining) ReapSession(sid);
  drain_us->Record(NowMicros() - start);
  static obs::Counter* const completed =
      obs::Registry::Global().counter("uv.server.drain.completed");
  completed->Inc();
  state_.store(State::kStopped, std::memory_order_release);
}

}  // namespace ultraverse::server
