#ifndef ULTRAVERSE_SERVER_NET_ORACLE_H_
#define ULTRAVERSE_SERVER_NET_ORACLE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "server/admission.h"
#include "util/status.h"

namespace ultraverse::server {

/// Multi-client differential gate (`fuzz_whatif --server-fuzz`): N client
/// PROCESSES hammer one server process with a deterministic mix of commits,
/// analyze-only what-ifs and publishes, optionally under wire-path
/// failpoints and a mid-run SIGTERM drain. Two oracles run over the wreck:
///
///  1. MVCC invariant over the wire: whenever a client's selective analyze
///     and full-naive analyze land on the SAME history epoch, their
///     fingerprints must match — no matter how many commits from other
///     clients raced between the two requests.
///  2. Recovery invariant: after the server drains (WAL fsynced, final
///     StateFingerprint written to disk), a single-process WAL recovery in
///     the parent must reproduce that exact fingerprint — acked work
///     survives, cancelled/shed/aborted work left no trace.
///
/// Everything forks from the single-threaded parent (TSan-safe); the server
/// child spawns its threads only after the fork.
struct NetFuzzOptions {
  uint64_t seed = 1;
  int clients = 4;
  int requests_per_client = 50;
  /// Send SIGTERM to the server roughly mid-run; clients observe the drain
  /// (kUnavailable / closed connections) and wind down cleanly.
  bool drain_mid_run = true;
  /// Failpoint spec armed in the SERVER child only (torn frames, partial
  /// writes, accept storms, read stalls...). Clients must survive the
  /// resulting connection deaths by reconnecting.
  std::string failpoints;
  /// Scratch directory for the WAL, the drain fingerprint and per-client
  /// stats files.
  std::string work_dir = ".";
  int server_workers = 4;
  AdmissionOptions admission;
  /// Per-request deadline clients attach (0 = none); expiries must come
  /// back as typed kDeadlineExceeded, never as divergence.
  uint64_t deadline_micros = 0;
  /// Group-commit batch for the server's WAL.
  uint64_t wal_fsync_every_n = 4;
  /// Parent-side watchdog: the whole run (fork to reaped children) must
  /// finish within this budget or everything is SIGKILLed and reported.
  double timeout_seconds = 120;
  std::function<void(const std::string&)> progress;
};

struct NetFuzzReport {
  size_t requests_ok = 0;        // responses received across all clients
  size_t rejected = 0;           // kResourceExhausted (admission/overload)
  size_t publish_aborts = 0;     // kAborted that survived client retries
  size_t publish_retries = 0;    // kAborted attempts the retry loop absorbed
  size_t deadline_hits = 0;      // kDeadlineExceeded / kCancelled
  size_t reconnects = 0;         // connections re-established after a death
  size_t analyze_pairs = 0;      // same-epoch selective/full-naive pairs
  size_t divergences = 0;        // fingerprint mismatches (failures)
  bool drained_clean = false;    // server exited 0 from the drain sequence
  std::string server_fingerprint;     // what the server claimed at drain
  std::string recovered_fingerprint;  // what WAL recovery reproduced
  std::vector<std::string> failures;
};

Result<NetFuzzReport> NetFuzz(const NetFuzzOptions& options);

/// Wire-path crash sweep (`fuzz_whatif --server-crash`): one short NetFuzz
/// run per wire/publish/WAL failpoint site armed with a crash (or error)
/// action in the server child. The server is expected to die (or degrade);
/// the parent then demands WAL recovery succeed AND be idempotent — two
/// independent recoveries of the torn log must fingerprint identically,
/// and a durable what-if marker is either fully applied or fully absent.
struct NetCrashOptions {
  uint64_t seed = 1;
  /// Wall budget for the whole sweep; sites are cycled until it runs out
  /// (every site runs at least once regardless).
  double seconds = 30;
  int clients = 2;
  int requests_per_client = 25;
  std::string work_dir = ".";
  std::function<void(const std::string&)> progress;
};

struct NetCrashReport {
  size_t sites_run = 0;
  size_t server_deaths = 0;   // runs where the armed crash killed the server
  size_t recoveries = 0;      // WAL recoveries that succeeded
  size_t divergences = 0;
  std::vector<std::string> failures;
};

Result<NetCrashReport> NetCrashSweep(const NetCrashOptions& options);

}  // namespace ultraverse::server

#endif  // ULTRAVERSE_SERVER_NET_ORACLE_H_
