#ifndef ULTRAVERSE_SQLDB_VALUE_H_
#define ULTRAVERSE_SQLDB_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "util/status.h"

namespace ultraverse::sql {

/// SQL column types supported by the engine. The set covers everything the
/// paper's benchmarks need (Mahif's *lack* of string/bool/datetime support
/// is part of what Table 4 demonstrates, so our engine must have them).
enum class DataType {
  kNull,
  kInt,     // 64-bit signed.
  kDouble,  // IEEE double (DECIMAL is mapped here).
  kString,  // VARCHAR/TEXT.
  kBool,    // BOOLEAN.
};

const char* DataTypeName(DataType t);

/// A dynamically typed SQL value.
///
/// Values are small and copyable; rows are std::vector<Value>. Comparison
/// follows SQL semantics with numeric coercion between INT and DOUBLE;
/// NULL compares equal only to NULL under `Equals` (used for row identity
/// and grouping) while three-valued logic lives in the expression evaluator.
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(v); }
  static Value Double(double v) { return Value(v); }
  static Value String(std::string v) { return Value(std::move(v)); }
  static Value Bool(bool v) { return Value(v); }

  DataType type() const {
    switch (data_.index()) {
      case 0: return DataType::kNull;
      case 1: return DataType::kInt;
      case 2: return DataType::kDouble;
      case 3: return DataType::kString;
      case 4: return DataType::kBool;
    }
    return DataType::kNull;
  }

  bool is_null() const { return data_.index() == 0; }

  int64_t AsInt() const;        // Coerces double/bool/string-of-digits.
  double AsDouble() const;      // Coerces int/bool.
  bool AsBool() const;          // SQL truthiness: nonzero, non-empty handled.
  const std::string& AsStringRef() const;  // Requires kString.
  std::string ToDisplayString() const;     // Human/SQL-literal free form.
  std::string ToSqlLiteral() const;        // Quoted, parseable back.

  /// Total order used for ORDER BY / index keys: NULL < bool < numeric <
  /// string; numerics compare by value across INT/DOUBLE.
  int Compare(const Value& other) const;

  /// SQL equality used for row identity: NULL equals NULL here.
  bool Equals(const Value& other) const { return Compare(other) == 0; }

  /// Stable byte encoding used for table hashing and RI-key maps.
  void EncodeTo(std::string* out) const;
  std::string Encode() const {
    std::string s;
    EncodeTo(&s);
    return s;
  }

  /// Inverse of Encode() for a single value (with or without the trailing
  /// '|' terminator). Used by the predicate domain to order RI-key point
  /// sets against typed range bounds. Returns false on malformed input.
  static bool Decode(const std::string& enc, Value* out);

  /// Hash consistent with Equals (numeric 3 == 3.0 hash equal).
  size_t Hash() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.Equals(b);
  }

 private:
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(bool v) : data_(v) {}

  std::variant<std::monostate, int64_t, double, std::string, bool> data_;
};

using Row = std::vector<Value>;

struct ValueHasher {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

/// Encodes a whole row (stable across runs; used by Hash-jumper).
std::string EncodeRow(const Row& row);

}  // namespace ultraverse::sql

#endif  // ULTRAVERSE_SQLDB_VALUE_H_
