#include "sqldb/query_log.h"

namespace ultraverse::sql {

uint64_t QueryLog::Append(LogEntry entry) {
  entry.index = entries_.size() + 1;
  entries_.push_back(std::move(entry));
  // Epoch after the entry is in place: a reader that observes the new
  // epoch also observes the appended entry (release pairs with epoch()).
  BumpEpoch();
  return entries_.back().index;
}

size_t QueryLog::MySqlStyleBytes() const {
  size_t bytes = 0;
  for (const auto& e : entries_) bytes += e.sql.size() + 60;
  return bytes;
}

}  // namespace ultraverse::sql
