#include "sqldb/query_log.h"

namespace ultraverse::sql {

uint64_t QueryLog::Append(LogEntry entry) {
  entry.index = entries_.size() + 1;
  entries_.push_back(std::move(entry));
  return entries_.back().index;
}

size_t QueryLog::MySqlStyleBytes() const {
  size_t bytes = 0;
  for (const auto& e : entries_) bytes += e.sql.size() + 60;
  return bytes;
}

}  // namespace ultraverse::sql
