#include "sqldb/vm/compiler.h"

#include <algorithm>

#include "sqldb/access_path.h"
#include "sqldb/database.h"
#include "sqldb/evaluator.h"
#include "util/nondet_builtins.h"
#include "util/string_util.h"

namespace ultraverse::sql::vm {

namespace {

constexpr int kMaxRegs = 250;
constexpr size_t kMaxCode = 60000;

// --- Fingerprint -----------------------------------------------------------

struct Fnv {
  uint64_t h = 1469598103934665603ull;
  void Byte(uint8_t b) { h = (h ^ b) * 1099511628211ull; }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) Byte(uint8_t(v >> (i * 8)));
  }
  void Str(const std::string& s) {
    U64(s.size());
    for (char c : s) Byte(uint8_t(c));
  }
};

void HashSelect(Fnv* f, const SelectStatement& sel);

void HashExpr(Fnv* f, const Expr& e) {
  f->Byte(uint8_t(e.kind));
  switch (e.kind) {
    case ExprKind::kLiteral: f->Str(e.literal.Encode()); break;
    case ExprKind::kColumnRef: f->Str(e.table); f->Str(e.column); break;
    case ExprKind::kVarRef: f->Str(e.var_name); break;
    case ExprKind::kUnary: f->Byte(uint8_t(e.unary_op)); break;
    case ExprKind::kBinary: f->Byte(uint8_t(e.binary_op)); break;
    case ExprKind::kFuncCall:
      f->Str(e.func_name);
      f->Byte(e.star_arg ? 1 : 0);
      break;
    case ExprKind::kSubquery: HashSelect(f, *e.subquery); break;
    case ExprKind::kInList:
    case ExprKind::kStar:
      break;
  }
  f->U64(e.children.size());
  for (const auto& child : e.children) HashExpr(f, *child);
}

void HashSelect(Fnv* f, const SelectStatement& sel) {
  f->Byte(sel.distinct ? 1 : 0);
  f->U64(sel.items.size());
  for (const auto& item : sel.items) {
    HashExpr(f, *item.expr);
    f->Str(item.alias);
  }
  f->Str(sel.from_table);
  f->Str(sel.from_alias);
  f->U64(sel.joins.size());
  for (const auto& j : sel.joins) {
    f->Str(j.table);
    f->Str(j.alias);
    f->Byte(j.on ? 1 : 0);
    if (j.on) HashExpr(f, *j.on);
  }
  f->Byte(sel.where ? 1 : 0);
  if (sel.where) HashExpr(f, *sel.where);
  f->U64(sel.group_by.size());
  for (const auto& g : sel.group_by) HashExpr(f, *g);
  f->Byte(sel.having ? 1 : 0);
  if (sel.having) HashExpr(f, *sel.having);
  f->U64(sel.order_by.size());
  for (const auto& ob : sel.order_by) {
    HashExpr(f, *ob.expr);
    f->Byte(ob.descending ? 1 : 0);
  }
  f->U64(uint64_t(sel.limit));
  f->U64(sel.into_vars.size());
  for (const auto& v : sel.into_vars) f->Str(v);
}

// --- Expression compiler ---------------------------------------------------

bool ContainsAggregate(const Expr& e) {
  if (e.kind == ExprKind::kFuncCall && IsAggregateFunction(e.func_name)) {
    return true;
  }
  for (const auto& child : e.children) {
    if (ContainsAggregate(*child)) return true;
  }
  return false;
}

/// Lowers one expression into `program`, mirroring Evaluator::Eval
/// instruction for instruction: short-circuit jumps preserve which operands
/// ever run (so runtime errors stay reachable in exactly the same cases),
/// and column references resolve against the single row binding the tree
/// walker would have used (case-insensitive, first match in schema order,
/// context-variable fallback otherwise).
class ExprCompiler {
 public:
  ExprCompiler(Program* program, const std::string* alias,
               const std::vector<std::string>* columns)
      : p_(program), alias_(alias), columns_(columns) {}

  /// Compiles `e` into register `dst`; false means the expression is
  /// outside the subset (caller abandons the whole statement).
  bool Compile(const Expr& e, int dst) {
    if (!Reserve(dst)) return false;
    switch (e.kind) {
      case ExprKind::kLiteral: {
        Emit({OpCode::kLoadConst, Reg(dst), 0, AddConst(e.literal), 0});
        return true;
      }
      case ExprKind::kStar:
      case ExprKind::kSubquery:
        return false;
      case ExprKind::kColumnRef: {
        int col = -1;
        if (columns_ &&
            (e.table.empty() || EqualsIgnoreCase(*alias_, e.table))) {
          for (size_t i = 0; i < columns_->size(); ++i) {
            if (EqualsIgnoreCase((*columns_)[i], e.column)) {
              col = int(i);
              break;
            }
          }
        }
        if (col >= 0) {
          Emit({OpCode::kLoadCol, Reg(dst), 0, uint16_t(col), 0});
          return true;
        }
        const std::string key =
            e.table.empty() ? e.column : e.table + "." + e.column;
        Emit({OpCode::kLoadVar, Reg(dst), 0, AddVar(key, key, false), 0});
        return true;
      }
      case ExprKind::kVarRef: {
        Emit({OpCode::kLoadVar, Reg(dst), 0,
              AddVar(e.var_name, e.var_name, true), 0});
        return true;
      }
      case ExprKind::kUnary: {
        if (!Compile(*e.children[0], dst)) return false;
        Emit({e.unary_op == UnaryOp::kNeg ? OpCode::kNeg : OpCode::kNot,
              Reg(dst), 0, Reg(dst), 0});
        return true;
      }
      case ExprKind::kBinary:
        return CompileBinary(e, dst);
      case ExprKind::kFuncCall:
        return CompileFunc(e, dst);
      case ExprKind::kInList:
        return CompileInList(e, dst);
    }
    return false;
  }

  bool Finish(int result_reg) {
    Emit({OpCode::kRet, 0, 0, Reg(result_reg), 0});
    return ok_ && p_->code.size() <= kMaxCode;
  }

 private:
  void Emit(Instr in) { p_->code.push_back(in); }
  size_t Here() const { return p_->code.size(); }
  void PatchJump(size_t at, size_t target) {
    Instr& in = p_->code[at];
    if (in.op == OpCode::kJump) in.a = uint16_t(target);
    else in.b = uint16_t(target);
  }

  bool Reserve(int reg) {
    if (reg >= kMaxRegs) {
      ok_ = false;
      return false;
    }
    if (reg + 1 > p_->num_regs) p_->num_regs = uint8_t(reg + 1);
    return true;
  }
  static uint8_t Reg(int r) { return uint8_t(r); }

  uint16_t AddConst(const Value& v) {
    p_->consts.push_back(v);
    return uint16_t(p_->consts.size() - 1);
  }
  uint16_t AddVar(std::string key, std::string display, bool var_style) {
    p_->vars.push_back({std::move(key), std::move(display), var_style});
    return uint16_t(p_->vars.size() - 1);
  }
  uint16_t AddFunc(const std::string& name) {
    p_->funcs.push_back(name);
    return uint16_t(p_->funcs.size() - 1);
  }

  bool CompileBinary(const Expr& e, int dst) {
    BinaryOp op = e.binary_op;
    if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
      const bool is_and = op == BinaryOp::kAnd;
      if (!Compile(*e.children[0], dst)) return false;
      size_t jshort = Here();
      Emit({is_and ? OpCode::kJumpIfFalse : OpCode::kJumpIfTrue, 0, 0,
            Reg(dst), 0});
      if (!Reserve(dst + 1) || !Compile(*e.children[1], dst + 1)) return false;
      Emit({is_and ? OpCode::kAnd3 : OpCode::kOr3, Reg(dst), 0, Reg(dst),
            Reg(dst + 1)});
      size_t jend = Here();
      Emit({OpCode::kJump, 0, 0, 0, 0});
      PatchJump(jshort, Here());
      Emit({OpCode::kLoadBool, Reg(dst), 0, uint16_t(is_and ? 0 : 1), 0});
      PatchJump(jend, Here());
      return true;
    }
    if (!Compile(*e.children[0], dst)) return false;
    if (!Reserve(dst + 1) || !Compile(*e.children[1], dst + 1)) return false;
    bool is_cmp = op == BinaryOp::kEq || op == BinaryOp::kNe ||
                  op == BinaryOp::kLt || op == BinaryOp::kLe ||
                  op == BinaryOp::kGt || op == BinaryOp::kGe;
    Emit({is_cmp ? OpCode::kCmp : OpCode::kArith, Reg(dst), uint8_t(op),
          Reg(dst), Reg(dst + 1)});
    return true;
  }

  bool CompileFunc(const Expr& e, int dst) {
    const std::string& f = e.func_name;
    if (IsAggregateFunction(f)) return false;  // runs (and errors) on tree
    if (nondet::IsSqlNondetBuiltin(f)) {
      if (!e.children.empty()) {
        // Tree evaluates arguments before the nondet dispatch; keep the
        // (odd) statement on the tree walker rather than model that.
        return false;
      }
      Emit({OpCode::kNondet, Reg(dst),
            uint8_t(nondet::IsSqlRandomBuiltin(f) ? 1 : 0), AddFunc(f), 0});
      return true;
    }
    if (!Evaluator::IsPureBuiltin(f)) return false;  // unknown: tree reports it
    if (e.children.size() > 200) return false;
    // LIKE/ISNULL are the only pure builtins that error (not NULL) on bad
    // arity; refuse those shapes so a compiled kCallBuiltin is total and the
    // SELECT index guard can rely on error-free WHERE programs.
    if (f == "LIKE" && e.children.size() != 2) return false;
    if (f == "ISNULL" && e.children.size() != 1) return false;
    for (size_t i = 0; i < e.children.size(); ++i) {
      if (!Reserve(dst + 1 + int(i))) return false;
      if (!Compile(*e.children[i], dst + 1 + int(i))) return false;
    }
    Emit({OpCode::kCallBuiltin, Reg(dst), uint8_t(e.children.size()),
          AddFunc(f), uint16_t(dst + 1)});
    return true;
  }

  bool CompileInList(const Expr& e, int dst) {
    if (!Compile(*e.children[0], dst)) return false;
    size_t jnull = Here();
    Emit({OpCode::kJumpIfNull, 0, 0, Reg(dst), 0});
    if (!Reserve(dst + 3)) return false;
    Emit({OpCode::kLoadBool, Reg(dst + 1), 0, 0, 0});  // saw_null accumulator
    std::vector<size_t> jtrue;
    for (size_t i = 1; i < e.children.size(); ++i) {
      if (!Compile(*e.children[i], dst + 2)) return false;
      Emit({OpCode::kCmp, Reg(dst + 3), uint8_t(BinaryOp::kEq), Reg(dst),
            Reg(dst + 2)});
      jtrue.push_back(Here());
      Emit({OpCode::kJumpIfTrue, 0, 0, Reg(dst + 3), 0});
      Emit({OpCode::kAccumNull, Reg(dst + 1), 0, Reg(dst + 3), 0});
    }
    Emit({OpCode::kInFinish, Reg(dst), 0, Reg(dst + 1), 0});
    size_t jend1 = Here();
    Emit({OpCode::kJump, 0, 0, 0, 0});
    for (size_t at : jtrue) PatchJump(at, Here());
    Emit({OpCode::kLoadBool, Reg(dst), 0, 1, 0});
    size_t jend2 = Here();
    Emit({OpCode::kJump, 0, 0, 0, 0});
    PatchJump(jnull, Here());
    Emit({OpCode::kLoadNull, Reg(dst), 0, 0, 0});
    PatchJump(jend1, Here());
    PatchJump(jend2, Here());
    return true;
  }

  Program* p_;
  const std::string* alias_;
  const std::vector<std::string>* columns_;
  bool ok_ = true;
};

/// Compiles `e` into a standalone Program. `alias`/`columns` bind the row
/// scope (null = row-free: every name resolves through context variables,
/// matching Eval with a null scope).
bool CompileExpr(const Expr& e, const std::string* alias,
                 const std::vector<std::string>* columns, Program* out) {
  ExprCompiler c(out, alias, columns);
  if (!c.Compile(e, 0)) return false;
  return c.Finish(0);
}

std::vector<std::string> SchemaColumnNames(const TableSchema& schema) {
  std::vector<std::string> names;
  names.reserve(schema.columns.size());
  for (const auto& c : schema.columns) names.push_back(c.name);
  return names;
}

/// Compiles WHERE + the shared access-path candidates for a write target.
bool CompileWhereAndAccess(const Database& db, const Table& table,
                           const ExprPtr& where, const std::string& alias,
                           const std::vector<std::string>& columns,
                           CompiledStatement* plan) {
  (void)db;
  if (where) {
    plan->has_where = true;
    plan->where_has_nondet = ContainsNondetBuiltin(*where);
    if (!CompileExpr(*where, &alias, &columns, &plan->where)) return false;
    for (const Instr& in : plan->where.code) {
      if (in.op == OpCode::kLoadVar) plan->where_has_var = true;
    }
    // Collect every resolvable equality conjunct, indexed or not: the plan
    // is index-agnostic, and MatchIds filters candidates against the live
    // index set per execution. That keeps cached plans valid across index
    // creation (real or advisory) without a schema-epoch bump, and tells
    // the adaptive indexer which columns a scan could have probed.
    for (const EqConjunct& c : CollectEqConjuncts(
             table.schema(), table, where.get(), EqCollect::kAllColumns)) {
      CompiledStatement::AccessCandidate cand;
      cand.column = c.column;
      cand.key_expr = c.key;
      // Keys are row-free by contract: compile with no column binding so a
      // stray column name degrades to the same context-variable lookup
      // (and the same runtime skip) the tree walker performs.
      if (!CompileExpr(*c.key, nullptr, nullptr, &cand.key)) return false;
      plan->access.push_back(std::move(cand));
    }
  }
  return true;
}

bool CompileSelect(const Database& db, const SelectStatement& sel,
                   CompiledStatement* plan) {
  if (sel.from_table.empty() || !sel.joins.empty()) return false;
  if (!sel.group_by.empty() || sel.having) return false;
  const Table* table = db.FindTable(sel.from_table);
  if (!table) return false;  // view (or missing): tree walker handles it
  const TableSchema& schema = table->schema();
  plan->table = sel.from_table;
  plan->schema_width = schema.columns.size();
  const std::string alias =
      sel.from_alias.empty() ? sel.from_table : sel.from_alias;
  std::vector<std::string> columns = SchemaColumnNames(schema);

  // Expand * exactly like EvalSelect (qualifier matched case-insensitively
  // against the source alias).
  std::vector<SelectItem> items;
  for (const auto& item : sel.items) {
    if (item.expr->kind == ExprKind::kStar) {
      if (!item.expr->table.empty() &&
          !EqualsIgnoreCase(item.expr->table, alias)) {
        continue;
      }
      for (const auto& col : columns) {
        SelectItem expanded;
        expanded.expr = Expr::MakeColumn(alias, col);
        expanded.alias = col;
        items.push_back(std::move(expanded));
      }
    } else {
      items.push_back(item);
    }
  }
  for (const auto& item : items) {
    plan->column_names.push_back(item.alias.empty() ? ToSql(*item.expr)
                                                    : item.alias);
  }

  bool aggregate = false;
  for (const auto& item : items) {
    if (ContainsAggregate(*item.expr)) aggregate = true;
  }
  plan->aggregate = aggregate;
  if (aggregate) {
    // Streaming subset: every item a bare aggregate over a plain argument;
    // sorting/distinct over aggregates falls back.
    if (!sel.order_by.empty() || sel.distinct) return false;
    for (const auto& item : items) {
      const Expr& e = *item.expr;
      if (e.kind != ExprKind::kFuncCall || !IsAggregateFunction(e.func_name)) {
        return false;
      }
      CompiledStatement::AggItem agg;
      if (e.func_name == "COUNT" && (e.star_arg || e.children.empty())) {
        agg.agg = CompiledStatement::AggItem::kCountStar;
      } else {
        if (e.children.size() != 1 || ContainsAggregate(*e.children[0])) {
          return false;
        }
        if (e.func_name == "COUNT") agg.agg = CompiledStatement::AggItem::kCount;
        else if (e.func_name == "SUM") agg.agg = CompiledStatement::AggItem::kSum;
        else if (e.func_name == "AVG") agg.agg = CompiledStatement::AggItem::kAvg;
        else if (e.func_name == "MIN") agg.agg = CompiledStatement::AggItem::kMin;
        else if (e.func_name == "MAX") agg.agg = CompiledStatement::AggItem::kMax;
        else return false;
        if (!CompileExpr(*e.children[0], &alias, &columns, &agg.arg)) {
          return false;
        }
      }
      plan->agg_items.push_back(std::move(agg));
    }
  } else {
    for (const auto& item : items) {
      Program p;
      if (!CompileExpr(*item.expr, &alias, &columns, &p)) return false;
      plan->items.push_back(std::move(p));
    }
    for (const auto& ob : sel.order_by) {
      Program p;
      if (!CompileExpr(*ob.expr, &alias, &columns, &p)) return false;
      plan->order_keys.push_back(std::move(p));
      plan->order_desc.push_back(ob.descending);
    }
  }

  ExprPtr where = sel.where;
  if (!CompileWhereAndAccess(db, *table, where, alias, columns, plan)) {
    return false;
  }
  plan->distinct = sel.distinct;
  plan->limit = sel.limit;
  plan->into_vars = sel.into_vars;
  return true;
}

bool CompileUpdate(const Database& db, const UpdateStatement& stmt,
                   CompiledStatement* plan) {
  const Table* table = db.FindTable(stmt.table);
  if (!table) return false;  // view target / missing: tree walker handles it
  const TableSchema& schema = table->schema();
  plan->table = stmt.table;
  plan->schema_width = schema.columns.size();
  std::vector<std::string> columns = SchemaColumnNames(schema);
  for (const auto& [col, expr] : stmt.assignments) {
    int idx = schema.ColumnIndex(col);  // case-sensitive, like ExecUpdate
    if (idx < 0) return false;
    Program p;
    if (!CompileExpr(*expr, &schema.name, &columns, &p)) return false;
    plan->assignments.emplace_back(idx, std::move(p));
  }
  return CompileWhereAndAccess(db, *table, stmt.where, schema.name, columns,
                               plan);
}

bool CompileDelete(const Database& db, const DeleteStatement& stmt,
                   CompiledStatement* plan) {
  const Table* table = db.FindTable(stmt.table);
  if (!table) return false;
  const TableSchema& schema = table->schema();
  plan->table = stmt.table;
  plan->schema_width = schema.columns.size();
  std::vector<std::string> columns = SchemaColumnNames(schema);
  return CompileWhereAndAccess(db, *table, stmt.where, schema.name, columns,
                               plan);
}

bool CompileInsert(const Database& db, const InsertStatement& stmt,
                   CompiledStatement* plan) {
  if (stmt.select) return false;  // INSERT ... SELECT: tree walker
  const Table* table = db.FindTable(stmt.table);
  if (!table) return false;
  const TableSchema& schema = table->schema();
  plan->table = stmt.table;
  plan->schema_width = schema.columns.size();
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < schema.columns.size(); ++i) {
      plan->insert_cols.push_back(int(i));
    }
  } else {
    for (const auto& col : stmt.columns) {
      int idx = schema.ColumnIndex(col);
      if (idx < 0) return false;
      plan->insert_cols.push_back(idx);
    }
  }
  for (const auto& exprs : stmt.rows) {
    if (exprs.size() != plan->insert_cols.size()) return false;  // tree errors
    std::vector<Program> row;
    for (const auto& e : exprs) {
      Program p;
      if (!CompileExpr(*e, nullptr, nullptr, &p)) return false;
      row.push_back(std::move(p));
    }
    plan->insert_rows.push_back(std::move(row));
  }
  return true;
}

}  // namespace

uint64_t FingerprintStatement(const Statement& stmt) {
  Fnv f;
  f.Byte(uint8_t(stmt.kind));
  switch (stmt.kind) {
    case StatementKind::kSelect:
      HashSelect(&f, *stmt.select);
      break;
    case StatementKind::kInsert: {
      const InsertStatement& ins = stmt.insert;
      f.Str(ins.table);
      f.U64(ins.columns.size());
      for (const auto& c : ins.columns) f.Str(c);
      f.U64(ins.rows.size());
      for (const auto& row : ins.rows) {
        f.U64(row.size());
        for (const auto& e : row) HashExpr(&f, *e);
      }
      f.Byte(ins.select ? 1 : 0);
      if (ins.select) HashSelect(&f, *ins.select);
      break;
    }
    case StatementKind::kUpdate: {
      const UpdateStatement& up = stmt.update;
      f.Str(up.table);
      f.U64(up.assignments.size());
      for (const auto& [col, e] : up.assignments) {
        f.Str(col);
        HashExpr(&f, *e);
      }
      f.Byte(up.where ? 1 : 0);
      if (up.where) HashExpr(&f, *up.where);
      break;
    }
    case StatementKind::kDelete: {
      f.Str(stmt.del.table);
      f.Byte(stmt.del.where ? 1 : 0);
      if (stmt.del.where) HashExpr(&f, *stmt.del.where);
      break;
    }
    default:
      break;
  }
  return f.h;
}

std::shared_ptr<const CompiledStatement> Compile(const Database& db,
                                                 const Statement& stmt) {
  auto plan = std::make_shared<CompiledStatement>();
  plan->kind = stmt.kind;
  // Anchor a copy: the plan outlives the statement it was compiled from
  // (cache hits execute other, fingerprint-equal statement objects), and
  // access-candidate Expr pointers must stay valid.
  plan->anchor = std::make_shared<Statement>(stmt);
  bool ok = false;
  switch (stmt.kind) {
    case StatementKind::kSelect:
      ok = CompileSelect(db, *plan->anchor->select, plan.get());
      break;
    case StatementKind::kInsert:
      ok = CompileInsert(db, plan->anchor->insert, plan.get());
      break;
    case StatementKind::kUpdate:
      ok = CompileUpdate(db, plan->anchor->update, plan.get());
      break;
    case StatementKind::kDelete:
      ok = CompileDelete(db, plan->anchor->del, plan.get());
      break;
    default:
      break;
  }
  if (!ok) return nullptr;
  return plan;
}

}  // namespace ultraverse::sql::vm
