#include "sqldb/vm/vm.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <set>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sqldb/access_path.h"
#include "sqldb/database.h"
#include "sqldb/evaluator.h"
#include "sqldb/vm/compiler.h"
#include "sqldb/vm/plan_cache.h"

namespace ultraverse::sql::vm {

namespace {

struct VmMetrics {
  obs::Histogram* compile_us;
  obs::Counter* batch_rows;
  obs::Counter* batch_count;
  obs::Counter* index_path;
  obs::Counter* scan_path;
  obs::Counter* advisory_built;

  static const VmMetrics& Get() {
    static const VmMetrics m = [] {
      auto& reg = obs::Registry::Global();
      return VmMetrics{reg.histogram("uv.vm.compile_us"),
                       reg.counter("uv.vm.batch.rows"),
                       reg.counter("uv.vm.batch.count"),
                       reg.counter("uv.vm.access.index_path"),
                       reg.counter("uv.vm.access.scan_path"),
                       reg.counter("uv.vm.access.advisory_built")};
    }();
    return m;
  }
};

bool Truthy(const Value& v) { return !v.is_null() && v.AsBool(); }

/// Tables with fewer live rows than this never get an adaptive advisory
/// index: a scan of a small table is cheaper than maintaining the index.
/// Settable so tests and the exec-diff oracle can exercise the adaptive
/// path on small fixtures.
std::atomic<size_t> g_advisory_min_rows{1024};

}  // namespace

size_t AdvisoryIndexMinRows() {
  return g_advisory_min_rows.load(std::memory_order_relaxed);
}

void SetAdvisoryIndexMinRows(size_t n) {
  g_advisory_min_rows.store(n, std::memory_order_relaxed);
}

struct Executor::Impl {
  Database* db;
  ExecContext* ctx;
  uint64_t commit_index;
  std::vector<Value> regs;

  /// Interprets one program against an optional row. Every register is
  /// written before it is read on all control-flow paths (the compiler
  /// emits strictly dst-increasing expression trees), so the register file
  /// is reused across calls without clearing.
  Result<Value> Run(const Program& p, const Row* row) {
    if (regs.size() < p.num_regs) regs.resize(p.num_regs);
    for (size_t pc = 0;;) {
      const Instr& in = p.code[pc++];
      switch (in.op) {
        case OpCode::kLoadConst:
          regs[in.dst] = p.consts[in.a];
          break;
        case OpCode::kLoadCol:
          regs[in.dst] = (*row)[in.a];
          break;
        case OpCode::kLoadVar: {
          const Program::VarSlot& slot = p.vars[in.a];
          const Value* var = ctx->FindVar(slot.key);
          if (!var) {
            return Status::NotFound(
                (slot.var_style ? "unresolved variable '"
                                : "unresolved name '") +
                slot.display + "'");
          }
          regs[in.dst] = *var;
          break;
        }
        case OpCode::kLoadBool:
          regs[in.dst] = Value::Bool(in.a != 0);
          break;
        case OpCode::kLoadNull:
          regs[in.dst] = Value::Null();
          break;
        case OpCode::kMove:
          regs[in.dst] = regs[in.a];
          break;
        case OpCode::kNot: {
          const Value& v = regs[in.a];
          regs[in.dst] =
              v.is_null() ? Value::Null() : Value::Bool(!v.AsBool());
          break;
        }
        case OpCode::kNeg: {
          const Value& v = regs[in.a];
          if (v.is_null()) regs[in.dst] = Value::Null();
          else if (v.type() == DataType::kInt)
            regs[in.dst] = Value::Int(-v.AsInt());
          else regs[in.dst] = Value::Double(-v.AsDouble());
          break;
        }
        case OpCode::kCmp:
          regs[in.dst] =
              Evaluator::CompareSql(regs[in.a], regs[in.b], BinaryOp(in.c));
          break;
        case OpCode::kArith:
          regs[in.dst] =
              Evaluator::ArithSql(regs[in.a], regs[in.b], BinaryOp(in.c));
          break;
        case OpCode::kAnd3: {
          const Value& lhs = regs[in.a];
          const Value& rhs = regs[in.b];
          if (!rhs.is_null() && !rhs.AsBool())
            regs[in.dst] = Value::Bool(false);
          else if (lhs.is_null() || rhs.is_null())
            regs[in.dst] = Value::Null();
          else regs[in.dst] = Value::Bool(true);
          break;
        }
        case OpCode::kOr3: {
          const Value& lhs = regs[in.a];
          const Value& rhs = regs[in.b];
          if (!rhs.is_null() && rhs.AsBool())
            regs[in.dst] = Value::Bool(true);
          else if (lhs.is_null() || rhs.is_null())
            regs[in.dst] = Value::Null();
          else regs[in.dst] = Value::Bool(false);
          break;
        }
        case OpCode::kJump:
          pc = in.a;
          break;
        case OpCode::kJumpIfFalse: {
          const Value& v = regs[in.a];
          if (!v.is_null() && !v.AsBool()) pc = in.b;
          break;
        }
        case OpCode::kJumpIfTrue: {
          const Value& v = regs[in.a];
          if (!v.is_null() && v.AsBool()) pc = in.b;
          break;
        }
        case OpCode::kJumpIfNull:
          if (regs[in.a].is_null()) pc = in.b;
          break;
        case OpCode::kAccumNull:
          if (regs[in.a].is_null()) regs[in.dst] = Value::Bool(true);
          break;
        case OpCode::kInFinish:
          regs[in.dst] =
              Truthy(regs[in.a]) ? Value::Null() : Value::Bool(false);
          break;
        case OpCode::kCallBuiltin: {
          std::vector<Value> args(regs.begin() + in.b,
                                  regs.begin() + in.b + in.c);
          UV_ASSIGN_OR_RETURN(
              Value v, Evaluator::EvalPureBuiltin(p.funcs[in.a], args));
          regs[in.dst] = std::move(v);
          break;
        }
        case OpCode::kNondet:
          regs[in.dst] =
              in.c == 0
                  ? ctx->NextNondetValue(
                        [&] { return Value::Int(db->NextTimestamp()); })
                  : ctx->NextNondetValue(
                        [&] { return Value::Double(db->rng_.UniformDouble()); });
          break;
        case OpCode::kRet:
          return regs[in.a];
      }
    }
  }

  /// Evaluates one access-candidate key without a row in scope; nullopt
  /// skips the candidate (mirroring the tree walker, which swallows key
  /// evaluation errors and falls back to other candidates or the scan).
  std::optional<Value> EvalAccessKey(const CompiledStatement& plan,
                                     const Expr& key) {
    for (const auto& cand : plan.access) {
      if (cand.key_expr == &key) {
        Result<Value> rv = Run(cand.key, nullptr);
        if (!rv.ok()) return std::nullopt;
        return std::move(*rv);
      }
    }
    return std::nullopt;
  }

  /// The probe the VM may take where the tree walker would scan: any live
  /// index (advisory included), but only candidates whose probe provably
  /// returns the exact CompareSql match set. Callers must have established
  /// WHERE totality first.
  std::optional<AccessChoice> GuardedChoose(Table* table,
                                            const CompiledStatement& plan) {
    std::vector<EqConjunct> usable;
    for (const auto& cand : plan.access) {
      if (table->HasIndex(cand.column)) {
        usable.push_back({cand.column, cand.key_expr});
      }
    }
    if (usable.empty()) return std::nullopt;
    return ChooseAccess(
        *table, usable, [&](const Expr& key) -> std::optional<Value> {
          std::optional<Value> v = EvalAccessKey(plan, key);
          if (!v) return std::nullopt;
          for (const EqConjunct& c : usable) {
            if (c.key == &key &&
                !IndexProbeProvablyExact(*table, c.column, *v)) {
              return std::nullopt;
            }
          }
          return v;
        });
  }

  /// Row ids matching the plan's WHERE, in ascending id order — the same
  /// ids, in the same order, the tree walker's MatchRows produces.
  ///
  /// Three-step access choice:
  ///  1. Mirror (writes only): probe real indexes through the shared
  ///     chooser — the identical decision the tree walker's MatchRows
  ///     makes, so the coercing predicate sees the same candidate rows by
  ///     construction.
  ///  2. Guarded probe: where the tree walker would scan (every SELECT;
  ///     writes the mirror left on the scan path), the VM may still probe
  ///     — advisory indexes included — when skipping rows is provably
  ///     unobservable: WHERE is total (no nondet builtin, every variable
  ///     load resolves, compiled builtins are total) and the probe
  ///     provably returns the exact CompareSql match set.
  ///  3. Adaptive build: a guarded-probe-eligible statement about to scan
  ///     a large table with an unindexed equality column first builds an
  ///     advisory hash index — a pure access-path hint, invisible to the
  ///     state diff and to the tree walker — and probes it immediately.
  ///     Build cost is one scan, repaid on the next execution.
  Result<std::vector<RowId>> MatchIds(Table* table,
                                      const CompiledStatement& plan,
                                      bool is_select) {
    if (!plan.has_where) return table->LiveRowIds();
    const VmMetrics& m = VmMetrics::Get();

    std::optional<AccessChoice> choice;
    if (!is_select && !plan.access.empty()) {
      std::vector<EqConjunct> real;
      for (const auto& cand : plan.access) {
        if (table->HasIndex(cand.column) &&
            !table->IsAdvisoryIndex(cand.column)) {
          real.push_back({cand.column, cand.key_expr});
        }
      }
      choice = ChooseAccess(*table, real,
                            [&](const Expr& key) -> std::optional<Value> {
                              return EvalAccessKey(plan, key);
                            });
    }

    if (!choice && !plan.access.empty() && !plan.where_has_nondet) {
      // Variable loads are row-independent: if every WHERE variable
      // resolves in the current context, kLoadVar cannot error on any row
      // and the compiled WHERE stays total; an unresolved variable instead
      // forces the scan path, which errors on the first live row exactly
      // like the tree walker's per-row evaluation.
      bool where_vars_resolve = true;
      if (plan.where_has_var) {
        for (const Program::VarSlot& slot : plan.where.vars) {
          if (!ctx->FindVar(slot.key)) {
            where_vars_resolve = false;
            break;
          }
        }
      }
      if (where_vars_resolve) {
        choice = GuardedChoose(table, plan);
        if (!choice && table->LiveRowCount() >= AdvisoryIndexMinRows()) {
          bool built = false;
          for (const auto& cand : plan.access) {
            if (!table->HasIndex(cand.column) &&
                table->CreateAdvisoryIndex(cand.column).ok()) {
              m.advisory_built->Inc();
              built = true;
            }
          }
          if (built) choice = GuardedChoose(table, plan);
        }
      }
    }

    if (choice) {
      m.index_path->Inc();
      std::vector<RowId> candidates =
          table->IndexLookup(choice->column, choice->key);
      // Ascending ids: row visit order is observable (nondet consumption,
      // trigger firing); both engines normalize hash-bucket order away.
      std::sort(candidates.begin(), candidates.end());
      std::vector<RowId> out;
      for (RowId id : candidates) {
        if (!table->IsLive(id)) continue;
        UV_ASSIGN_OR_RETURN(Value match, Run(plan.where, &table->GetRow(id)));
        if (Truthy(match)) out.push_back(id);
      }
      return out;
    }

    m.scan_path->Inc();
    std::vector<RowId> out;
    Status st = Status::OK();
    table->ScanBatch([&](const RowId* ids, const Row* const* rows, size_t n) {
      m.batch_rows->Add(n);
      m.batch_count->Inc();
      for (size_t i = 0; i < n; ++i) {
        Result<Value> match = Run(plan.where, rows[i]);
        if (!match.ok()) {
          st = match.status();
          return false;
        }
        if (Truthy(*match)) out.push_back(ids[i]);
      }
      return true;
    });
    UV_RETURN_NOT_OK(st);
    return out;
  }

  Result<ExecResult> ExecSelect(const CompiledStatement& plan, Table* table) {
    UV_ASSIGN_OR_RETURN(std::vector<RowId> ids, MatchIds(table, plan, true));
    ExecResult result;
    result.column_names = plan.column_names;

    if (plan.aggregate) {
      // Bare-aggregate subset: items outer, rows inner — the exact
      // per-item evaluation order EvalInGroup performs (observable through
      // nondet consumption inside aggregate arguments).
      Row out;
      for (const auto& item : plan.agg_items) {
        if (item.agg == CompiledStatement::AggItem::kCountStar) {
          out.push_back(Value::Int(int64_t(ids.size())));
          continue;
        }
        int64_t count = 0;
        double sum = 0;
        bool all_int = true;
        Value min_v, max_v;
        for (RowId id : ids) {
          UV_ASSIGN_OR_RETURN(Value v, Run(item.arg, &table->GetRow(id)));
          if (v.is_null()) continue;
          ++count;
          sum += v.AsDouble();
          if (v.type() != DataType::kInt) all_int = false;
          if (min_v.is_null() || v.Compare(min_v) < 0) min_v = v;
          if (max_v.is_null() || v.Compare(max_v) > 0) max_v = v;
        }
        switch (item.agg) {
          case CompiledStatement::AggItem::kCount:
            out.push_back(Value::Int(count));
            break;
          case CompiledStatement::AggItem::kSum:
            out.push_back(count == 0 ? Value::Null()
                          : all_int ? Value::Int(int64_t(std::llround(sum)))
                                    : Value::Double(sum));
            break;
          case CompiledStatement::AggItem::kAvg:
            out.push_back(count == 0 ? Value::Null()
                                     : Value::Double(sum / double(count)));
            break;
          case CompiledStatement::AggItem::kMin:
            out.push_back(count == 0 ? Value::Null() : std::move(min_v));
            break;
          case CompiledStatement::AggItem::kMax:
            out.push_back(count == 0 ? Value::Null() : std::move(max_v));
            break;
          case CompiledStatement::AggItem::kCountStar:
            break;  // handled above
        }
      }
      result.rows.push_back(std::move(out));
    } else {
      struct OutRow {
        Row values;
        Row sort_keys;
      };
      std::vector<OutRow> out_rows;
      out_rows.reserve(ids.size());
      for (RowId id : ids) {
        const Row& row = table->GetRow(id);
        OutRow out;
        for (const Program& p : plan.items) {
          UV_ASSIGN_OR_RETURN(Value v, Run(p, &row));
          out.values.push_back(std::move(v));
        }
        for (const Program& p : plan.order_keys) {
          UV_ASSIGN_OR_RETURN(Value v, Run(p, &row));
          out.sort_keys.push_back(std::move(v));
        }
        out_rows.push_back(std::move(out));
      }
      if (!plan.order_keys.empty()) {
        std::stable_sort(out_rows.begin(), out_rows.end(),
                         [&](const OutRow& a, const OutRow& b) {
                           for (size_t i = 0; i < plan.order_keys.size(); ++i) {
                             int c = a.sort_keys[i].Compare(b.sort_keys[i]);
                             if (c != 0) {
                               return plan.order_desc[i] ? c > 0 : c < 0;
                             }
                           }
                           return false;
                         });
      }
      if (plan.distinct) {
        std::set<std::string> seen;
        std::vector<OutRow> unique;
        for (auto& row : out_rows) {
          if (seen.insert(EncodeRow(row.values)).second) {
            unique.push_back(std::move(row));
          }
        }
        out_rows = std::move(unique);
      }
      result.rows.reserve(out_rows.size());
      for (auto& r : out_rows) result.rows.push_back(std::move(r.values));
    }

    if (plan.limit >= 0 && int64_t(result.rows.size()) > plan.limit) {
      result.rows.resize(size_t(plan.limit));
    }
    if (!plan.into_vars.empty()) {
      for (size_t i = 0; i < plan.into_vars.size(); ++i) {
        Value v = (!result.rows.empty() && i < result.rows[0].size())
                      ? result.rows[0][i]
                      : Value::Null();
        ctx->SetVar(plan.into_vars[i], std::move(v));
      }
    }
    return result;
  }

  Result<ExecResult> ExecUpdate(const CompiledStatement& plan, Table* table) {
    UV_ASSIGN_OR_RETURN(std::vector<RowId> ids, MatchIds(table, plan, false));
    ExecResult result;
    for (RowId id : ids) {
      if (!table->IsLive(id)) continue;
      Row old_row = table->GetRow(id);
      Row new_row = old_row;
      for (const auto& [idx, prog] : plan.assignments) {
        // All assignment reads see the OLD row, like the tree walker's
        // scope bound to the pre-update copy.
        UV_ASSIGN_OR_RETURN(Value v, Run(prog, &old_row));
        new_row[idx] = std::move(v);
      }
      UV_RETURN_NOT_OK(table->Update(id, new_row, commit_index));
      ++result.affected;
      UV_RETURN_NOT_OK(db->FireTriggers(plan.table, TriggerEvent::kUpdate,
                                        &old_row, &new_row, commit_index,
                                        ctx));
    }
    return result;
  }

  Result<ExecResult> ExecDelete(const CompiledStatement& plan, Table* table) {
    UV_ASSIGN_OR_RETURN(std::vector<RowId> ids, MatchIds(table, plan, false));
    ExecResult result;
    for (RowId id : ids) {
      if (!table->IsLive(id)) continue;
      Row old_row = table->GetRow(id);
      UV_RETURN_NOT_OK(table->Delete(id, commit_index));
      ++result.affected;
      UV_RETURN_NOT_OK(db->FireTriggers(plan.table, TriggerEvent::kDelete,
                                        &old_row, nullptr, commit_index, ctx));
    }
    return result;
  }

  Result<ExecResult> ExecInsert(const CompiledStatement& plan, Table* table) {
    const TableSchema& schema = table->schema();
    // All VALUES rows evaluate before the first insert, like the tree
    // walker (an error in row 3 must not leave rows 1-2 inserted *here*;
    // mid-loop insert/trigger errors below do leave prior rows, also like
    // the tree walker — the caller's rollback handles both).
    std::vector<Row> value_rows;
    value_rows.reserve(plan.insert_rows.size());
    for (const auto& programs : plan.insert_rows) {
      Row r;
      r.reserve(programs.size());
      for (const Program& p : programs) {
        UV_ASSIGN_OR_RETURN(Value v, Run(p, nullptr));
        r.push_back(std::move(v));
      }
      value_rows.push_back(std::move(r));
    }

    ExecResult result;
    for (Row& src : value_rows) {
      Row row(schema.columns.size(), Value::Null());
      for (size_t i = 0; i < plan.insert_cols.size(); ++i) {
        row[plan.insert_cols[i]] = std::move(src[i]);
      }
      for (size_t i = 0; i < schema.columns.size(); ++i) {
        if (schema.columns[i].auto_increment && row[i].is_null()) {
          int64_t id = ctx->NextAutoIncId([&] {
            int64_t& next = db->auto_increment_[plan.table];
            return next++;
          });
          int64_t& next = db->auto_increment_[plan.table];
          if (id >= next) next = id + 1;
          row[i] = Value::Int(id);
        }
      }
      for (size_t i = 0; i < schema.columns.size(); ++i) {
        if (schema.columns[i].not_null && row[i].is_null()) {
          return Status::ConstraintViolation("NOT NULL column " +
                                             schema.columns[i].name);
        }
      }
      UV_ASSIGN_OR_RETURN(RowId id, table->Insert(std::move(row), commit_index));
      ++result.affected;
      const Row& stored = table->GetRow(id);
      UV_RETURN_NOT_OK(db->FireTriggers(plan.table, TriggerEvent::kInsert,
                                        nullptr, &stored, commit_index, ctx));
    }
    return result;
  }
};

std::optional<Result<ExecResult>> Executor::TryExecute(Database* db,
                                                       const Statement& stmt,
                                                       uint64_t commit_index,
                                                       ExecContext* ctx) {
  if (!ctx) return std::nullopt;

  // Resolve the target table through the drift-aware path BEFORE any cache
  // decision. On a lazily-staged clone the const lookups Compile() uses
  // read straight through the fallback without faulting in — a plan built
  // that way describes the base's current catalog, but the clone's version
  // only moves when the non-const fault-in detects drift. Fault in first,
  // so the version below is settled and every lookup/insert is keyed by
  // the catalog the plan actually describes.
  switch (stmt.kind) {
    case StatementKind::kSelect:
      if (!stmt.select->from_table.empty()) {
        (void)db->FindTable(stmt.select->from_table);
      }
      break;
    case StatementKind::kInsert:
      (void)db->FindTable(stmt.insert.table);
      break;
    case StatementKind::kUpdate:
      (void)db->FindTable(stmt.update.table);
      break;
    case StatementKind::kDelete:
      (void)db->FindTable(stmt.del.table);
      break;
    default:
      break;
  }

  PlanCache* cache = db->plan_cache();
  const uint64_t version = db->schema_version();
  const uint64_t fp = FingerprintStatement(stmt);

  std::shared_ptr<const CompiledStatement> plan;
  if (auto hit = cache->Lookup(fp, version)) {
    plan = *hit;
  } else {
    obs::TraceSpan span("vm.compile");
    obs::ScopedLatency latency(VmMetrics::Get().compile_us);
    plan = Compile(*db, stmt);
    // Compiling against a staged database can fault the table in from a
    // drifted base, which moves the version: the plan then describes a
    // catalog the key does not. Insert only when the version held.
    if (db->schema_version() == version) {
      cache->Insert(fp, version, plan);  // nullptr = negative verdict
    }
  }
  if (!plan) return std::nullopt;

  // FindTable on a staged database may fault the table in from a drifted
  // base and take a fresh epoch — in that case both the plan we hold and
  // the version we'd key an insert on describe a catalog that no longer
  // exists. Re-read the version and fall back to the tree walker when it
  // moved; never re-insert the old plan under the new version.
  Table* table = db->FindTable(plan->table);
  if (db->schema_version() != version) return std::nullopt;
  // The epoch makes stale plans unreachable; this width check is a cheap
  // second line of defense, not a correctness dependency.
  if (!table || table->schema().columns.size() != plan->schema_width) {
    return std::nullopt;
  }

  Impl impl{db, ctx, commit_index, {}};
  switch (plan->kind) {
    case StatementKind::kSelect:
      return impl.ExecSelect(*plan, table);
    case StatementKind::kInsert:
      return impl.ExecInsert(*plan, table);
    case StatementKind::kUpdate:
      return impl.ExecUpdate(*plan, table);
    case StatementKind::kDelete:
      return impl.ExecDelete(*plan, table);
    default:
      return std::nullopt;
  }
}

}  // namespace ultraverse::sql::vm
