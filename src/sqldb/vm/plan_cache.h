#ifndef ULTRAVERSE_SQLDB_VM_PLAN_CACHE_H_
#define ULTRAVERSE_SQLDB_VM_PLAN_CACHE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <unordered_map>

namespace ultraverse::sql::vm {

struct CompiledStatement;

/// Compiled-plan cache keyed on (statement fingerprint, schema version).
///
/// The schema version is a process-global epoch the owning Database bumps
/// on every DDL statement (including DDL nested in procedures and
/// transactions), on catalog adoption after a what-if commit, and on CoW
/// table fault-in — so a plan can never outlive the schema it was compiled
/// against. Versions from the global epoch also keep two CoW clones that
/// share one cache from colliding after divergent DDL.
///
/// A cache entry may be negative (plan == nullptr): the statement is
/// outside the compilable subset and should keep running on the tree
/// walker without re-attempting compilation each execution.
///
/// The cache is shared (by shared_ptr) across Database::Clone /
/// CloneTables so temporary replay databases start warm — replay
/// re-executes the same procedure statements thousands of times, which is
/// where cache hits compound.
class PlanCache {
 public:
  /// nullopt = miss; engaged-but-null = cached "uncompilable" verdict.
  std::optional<std::shared_ptr<const CompiledStatement>> Lookup(
      uint64_t fingerprint, uint64_t schema_version) const;

  void Insert(uint64_t fingerprint, uint64_t schema_version,
              std::shared_ptr<const CompiledStatement> plan);

  size_t size() const;

 private:
  struct Key {
    uint64_t fingerprint;
    uint64_t version;
    bool operator==(const Key& o) const {
      return fingerprint == o.fingerprint && version == o.version;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return size_t(k.fingerprint ^ (k.version * 0x9E3779B97F4A7C15ull));
    }
  };

  /// Entry cap; overflow clears the whole map (plans recompile in
  /// microseconds, so wholesale eviction beats LRU bookkeeping here).
  static constexpr size_t kMaxEntries = 4096;

  mutable std::shared_mutex mu_;
  std::unordered_map<Key, std::shared_ptr<const CompiledStatement>, KeyHash>
      entries_;
};

}  // namespace ultraverse::sql::vm

#endif  // ULTRAVERSE_SQLDB_VM_PLAN_CACHE_H_
