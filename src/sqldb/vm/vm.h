#ifndef ULTRAVERSE_SQLDB_VM_VM_H_
#define ULTRAVERSE_SQLDB_VM_VM_H_

#include <cstddef>
#include <cstdint>
#include <optional>

#include "sqldb/ast.h"
#include "util/status.h"

namespace ultraverse::sql {
class Database;
class ExecContext;
struct ExecResult;
}  // namespace ultraverse::sql

namespace ultraverse::sql::vm {

/// Live-row floor below which the adaptive indexer never builds an
/// advisory index (scanning a small table is cheaper than maintaining
/// one). Process-wide; the setter exists for tests and the exec-diff
/// oracle, which lower it to exercise the adaptive path on small
/// fixtures.
size_t AdvisoryIndexMinRows();
void SetAdvisoryIndexMinRows(size_t n);

/// The compiled-statement execution engine: fingerprints the statement,
/// consults the plan cache (keyed on schema version), compiles on miss, and
/// runs the register-bytecode plan over batched row chunks.
///
/// TryExecute returns nullopt when the statement is outside the compilable
/// subset (negative cache verdicts included) or no ExecContext is supplied;
/// the caller then falls through to the tree walker, which *is* the
/// original code path — fallback can never change semantics.
class Executor {
 public:
  static std::optional<Result<ExecResult>> TryExecute(Database* db,
                                                      const Statement& stmt,
                                                      uint64_t commit_index,
                                                      ExecContext* ctx);

 private:
  struct Impl;  // nested so it inherits the Database friendship
};

}  // namespace ultraverse::sql::vm

#endif  // ULTRAVERSE_SQLDB_VM_VM_H_
