#ifndef ULTRAVERSE_SQLDB_VM_COMPILER_H_
#define ULTRAVERSE_SQLDB_VM_COMPILER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sqldb/ast.h"
#include "sqldb/vm/bytecode.h"

namespace ultraverse::sql {
class Database;
}

namespace ultraverse::sql::vm {

/// A fully lowered DML/SELECT statement. Compilation is all-or-nothing:
/// any construct outside the supported subset (joins, subqueries, views,
/// GROUP BY, INSERT...SELECT, unknown functions, ...) makes Compile()
/// return nullptr and the statement runs on the tree walker instead —
/// fallback is always semantically safe because it *is* the original code
/// path.
struct CompiledStatement {
  StatementKind kind = StatementKind::kSelect;
  std::string table;    // resolved base table (never a view)
  size_t schema_width = 0;  // column count the plan was compiled against

  /// Keeps every `const Expr*` reachable from this plan alive: access-path
  /// candidate keys point into this anchored copy of the statement.
  StatementPtr anchor;

  Program where;        // empty => no WHERE (match everything)
  bool has_where = false;
  bool where_has_nondet = false;
  /// WHERE reads a context variable (kLoadVar): evaluation can error at
  /// runtime, so the SELECT index path must not skip rows the tree walker
  /// would have evaluated (and errored) on.
  bool where_has_var = false;

  /// Cost-based access-path candidates: `col = <row-free key>` conjuncts,
  /// collected for every resolvable column (indexed or not — MatchIds
  /// filters against the live index set at execution time, and unindexed
  /// candidates feed the adaptive advisory indexer).
  struct AccessCandidate {
    int column = -1;
    const Expr* key_expr = nullptr;  // into `anchor` (shared chooser input)
    Program key;                     // same expression, compiled
  };
  std::vector<AccessCandidate> access;

  // --- UPDATE ---
  std::vector<std::pair<int, Program>> assignments;  // (column, value)

  // --- INSERT (VALUES form) ---
  std::vector<int> insert_cols;  // target column per value position
  std::vector<std::vector<Program>> insert_rows;

  // --- SELECT ---
  bool aggregate = false;
  struct AggItem {
    enum Kind { kCountStar, kCount, kSum, kAvg, kMin, kMax };
    Kind agg = kCountStar;
    Program arg;  // empty for kCountStar
  };
  std::vector<Program> items;      // non-aggregate projection
  std::vector<AggItem> agg_items;  // aggregate projection
  std::vector<std::string> column_names;
  std::vector<Program> order_keys;
  std::vector<bool> order_desc;
  bool distinct = false;
  int64_t limit = -1;
  std::vector<std::string> into_vars;
};

/// Structural 64-bit fingerprint of a DML/SELECT statement, literals
/// included (plans are not parameterized: embedding literal values avoids
/// any bind-time coercion hazard and replay histories re-execute identical
/// statement objects anyway, so hits still compound).
uint64_t FingerprintStatement(const Statement& stmt);

/// Lowers `stmt` against the database's current catalog. Returns nullptr
/// when the statement is outside the compilable subset.
std::shared_ptr<const CompiledStatement> Compile(const Database& db,
                                                 const Statement& stmt);

}  // namespace ultraverse::sql::vm

#endif  // ULTRAVERSE_SQLDB_VM_COMPILER_H_
