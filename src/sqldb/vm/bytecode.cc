#include "sqldb/vm/bytecode.h"

#include <sstream>

namespace ultraverse::sql::vm {

namespace {

const char* OpName(OpCode op) {
  switch (op) {
    case OpCode::kLoadConst: return "load_const";
    case OpCode::kLoadCol: return "load_col";
    case OpCode::kLoadVar: return "load_var";
    case OpCode::kLoadBool: return "load_bool";
    case OpCode::kLoadNull: return "load_null";
    case OpCode::kMove: return "move";
    case OpCode::kNot: return "not";
    case OpCode::kNeg: return "neg";
    case OpCode::kCmp: return "cmp";
    case OpCode::kArith: return "arith";
    case OpCode::kAnd3: return "and3";
    case OpCode::kOr3: return "or3";
    case OpCode::kJump: return "jump";
    case OpCode::kJumpIfFalse: return "jump_if_false";
    case OpCode::kJumpIfTrue: return "jump_if_true";
    case OpCode::kJumpIfNull: return "jump_if_null";
    case OpCode::kAccumNull: return "accum_null";
    case OpCode::kInFinish: return "in_finish";
    case OpCode::kCallBuiltin: return "call";
    case OpCode::kNondet: return "nondet";
    case OpCode::kRet: return "ret";
  }
  return "?";
}

const char* BinOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    default: return "?";
  }
}

}  // namespace

std::string Disassemble(const Program& p) {
  std::ostringstream os;
  for (size_t pc = 0; pc < p.code.size(); ++pc) {
    const Instr& in = p.code[pc];
    os << pc << ": " << OpName(in.op);
    switch (in.op) {
      case OpCode::kLoadConst:
        os << " r" << int(in.dst) << ", " << p.consts[in.a].ToSqlLiteral();
        break;
      case OpCode::kLoadCol:
        os << " r" << int(in.dst) << ", col#" << in.a;
        break;
      case OpCode::kLoadVar:
        os << " r" << int(in.dst) << ", '" << p.vars[in.a].key << "'";
        break;
      case OpCode::kLoadBool:
        os << " r" << int(in.dst) << ", " << (in.a ? "true" : "false");
        break;
      case OpCode::kLoadNull:
        os << " r" << int(in.dst);
        break;
      case OpCode::kMove:
      case OpCode::kNot:
      case OpCode::kNeg:
      case OpCode::kInFinish:
        os << " r" << int(in.dst) << ", r" << in.a;
        break;
      case OpCode::kCmp:
      case OpCode::kArith:
        os << " r" << int(in.dst) << ", r" << in.a << " " << BinOpName(BinaryOp(in.c))
           << " r" << in.b;
        break;
      case OpCode::kAnd3:
      case OpCode::kOr3:
        os << " r" << int(in.dst) << ", r" << in.a << ", r" << in.b;
        break;
      case OpCode::kJump:
        os << " -> " << in.a;
        break;
      case OpCode::kJumpIfFalse:
      case OpCode::kJumpIfTrue:
      case OpCode::kJumpIfNull:
        os << " r" << in.a << " -> " << in.b;
        break;
      case OpCode::kAccumNull:
        os << " r" << int(in.dst) << " <- r" << in.a;
        break;
      case OpCode::kCallBuiltin:
        os << " r" << int(in.dst) << ", " << p.funcs[in.a] << "(r" << in.b << "..r"
           << (in.b + in.c - 1) << ")";
        break;
      case OpCode::kNondet:
        os << " r" << int(in.dst) << ", " << p.funcs[in.a];
        break;
      case OpCode::kRet:
        os << " r" << in.a;
        break;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace ultraverse::sql::vm
