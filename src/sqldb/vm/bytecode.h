#ifndef ULTRAVERSE_SQLDB_VM_BYTECODE_H_
#define ULTRAVERSE_SQLDB_VM_BYTECODE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sqldb/ast.h"
#include "sqldb/value.h"

namespace ultraverse::sql::vm {

/// Register-bytecode opcodes. One instruction is 8 bytes; programs address
/// up to 250 registers and 65535 instructions (the compiler refuses larger
/// expressions, which then run on the tree walker).
///
/// Three-valued logic is preserved exactly: AND/OR compile to a
/// short-circuit jump on the definite-false/definite-true side plus a
/// Kleene combine (kAnd3/kOr3) when both sides ran, so an error in an
/// unreached operand stays unreached — byte-for-byte the tree walker's
/// behaviour.
enum class OpCode : uint8_t {
  kLoadConst,   // r[dst] = consts[a]
  kLoadCol,     // r[dst] = row[a]
  kLoadVar,     // r[dst] = ctx var vars[a]; error when absent
  kLoadBool,    // r[dst] = Bool(a != 0)
  kLoadNull,    // r[dst] = Null
  kMove,        // r[dst] = r[a]
  kNot,         // r[dst] = NULL if r[a] NULL else !AsBool(r[a])
  kNeg,         // r[dst] = SQL unary minus of r[a]
  kCmp,         // r[dst] = CompareSql(r[a], r[b], BinaryOp(c))
  kArith,       // r[dst] = SQL arithmetic r[a] op(c) r[b]
  kAnd3,        // r[dst] = Kleene AND of r[a], r[b] (both already evaluated)
  kOr3,         // r[dst] = Kleene OR of r[a], r[b]
  kJump,        // pc = a
  kJumpIfFalse, // if r[a] is non-NULL and falsy: pc = b
  kJumpIfTrue,  // if r[a] is non-NULL and truthy: pc = b
  kJumpIfNull,  // if r[a] is NULL: pc = b
  kAccumNull,   // if r[a] is NULL: r[dst] = Bool(true)   (IN-list saw_null)
  kInFinish,    // r[dst] = r[a] truthy ? NULL : Bool(false)
  kCallBuiltin, // r[dst] = pure builtin funcs[a] over r[b]..r[b+c-1]
  kNondet,      // r[dst] = recorded/replayed NOW-family (c=0) or RAND (c=1)
  kRet,         // return r[a]
};

struct Instr {
  OpCode op;
  uint8_t dst = 0;
  uint8_t c = 0;
  uint16_t a = 0;
  uint16_t b = 0;
};
static_assert(sizeof(Instr) == 8, "instructions must stay compact");

/// A compiled expression: code plus its constant/variable/function pools.
struct Program {
  /// One context-variable slot. `key` feeds ExecContext::FindVar;
  /// `display`/`var_style` reproduce the tree walker's exact error message
  /// ("unresolved name 'x'" vs "unresolved variable 'x'") when absent.
  struct VarSlot {
    std::string key;
    std::string display;
    bool var_style = false;
  };

  std::vector<Instr> code;
  std::vector<Value> consts;
  std::vector<VarSlot> vars;
  std::vector<std::string> funcs;  // upper-cased builtin names
  uint8_t num_regs = 0;

  bool empty() const { return code.empty(); }
};

/// Human-readable listing (one instruction per line) for golden tests and
/// debugging; stable output is part of the vm test contract.
std::string Disassemble(const Program& program);

}  // namespace ultraverse::sql::vm

#endif  // ULTRAVERSE_SQLDB_VM_BYTECODE_H_
