#include "sqldb/vm/plan_cache.h"

#include "obs/metrics.h"
#include "sqldb/vm/compiler.h"

namespace ultraverse::sql::vm {

namespace {
struct CacheMetrics {
  obs::Counter* hit;
  obs::Counter* miss;
};
const CacheMetrics& Metrics() {
  static const CacheMetrics m = {
      obs::Registry::Global().counter("uv.vm.plan_cache.hit"),
      obs::Registry::Global().counter("uv.vm.plan_cache.miss"),
  };
  return m;
}
}  // namespace

std::optional<std::shared_ptr<const CompiledStatement>> PlanCache::Lookup(
    uint64_t fingerprint, uint64_t schema_version) const {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = entries_.find(Key{fingerprint, schema_version});
    if (it != entries_.end()) {
      Metrics().hit->Inc();
      return it->second;
    }
  }
  Metrics().miss->Inc();
  return std::nullopt;
}

void PlanCache::Insert(uint64_t fingerprint, uint64_t schema_version,
                       std::shared_ptr<const CompiledStatement> plan) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (entries_.size() >= kMaxEntries) entries_.clear();
  entries_[Key{fingerprint, schema_version}] = std::move(plan);
}

size_t PlanCache::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return entries_.size();
}

}  // namespace ultraverse::sql::vm
