#include "sqldb/access_path.h"

#include "util/nondet_builtins.h"

namespace ultraverse::sql {

bool ContainsNondetBuiltin(const Expr& e) {
  if (e.kind == ExprKind::kFuncCall && nondet::IsSqlNondetBuiltin(e.func_name)) {
    return true;
  }
  for (const auto& child : e.children) {
    if (ContainsNondetBuiltin(*child)) return true;
  }
  return false;
}

std::vector<EqConjunct> CollectEqConjuncts(const TableSchema& schema,
                                           const Table& table,
                                           const Expr* where,
                                           EqCollect collect) {
  std::vector<EqConjunct> out;
  if (!where) return out;
  std::vector<const Expr*> stack = {where};
  while (!stack.empty()) {
    const Expr* cur = stack.back();
    stack.pop_back();
    if (cur->kind == ExprKind::kBinary && cur->binary_op == BinaryOp::kAnd) {
      stack.push_back(cur->children[0].get());
      stack.push_back(cur->children[1].get());
      continue;
    }
    if (cur->kind != ExprKind::kBinary || cur->binary_op != BinaryOp::kEq) {
      continue;
    }
    const Expr* lhs = cur->children[0].get();
    const Expr* rhs = cur->children[1].get();
    if (lhs->kind != ExprKind::kColumnRef) std::swap(lhs, rhs);
    if (lhs->kind != ExprKind::kColumnRef) continue;
    int col = schema.ColumnIndex(lhs->column);
    if (col < 0) continue;
    if (collect == EqCollect::kIndexed &&
        (!table.HasIndex(col) || table.IsAdvisoryIndex(col))) {
      continue;
    }
    if (ContainsNondetBuiltin(*rhs)) continue;
    out.push_back({col, rhs});
  }
  return out;
}

std::optional<AccessChoice> ChooseAccess(
    const Table& table, const std::vector<EqConjunct>& candidates,
    const KeyEval& eval_key) {
  int best_col = -1;
  size_t best_count = 0;
  Value best_key;
  for (const EqConjunct& c : candidates) {
    std::optional<Value> key = eval_key(*c.key);
    if (!key) continue;
    size_t count = table.IndexCountForKey(c.column, *key);
    if (best_col < 0 || count < best_count) {
      best_col = c.column;
      best_count = count;
      best_key = std::move(*key);
    }
  }
  if (best_col < 0 || best_count >= table.LiveRowCount()) return std::nullopt;
  return AccessChoice{best_col, std::move(best_key)};
}

bool IndexProbeProvablyExact(const Table& table, int column,
                             const Value& key) {
  const uint8_t mask = table.ColumnTypeMask(column);
  constexpr uint8_t kNullBit = uint8_t(1u << unsigned(DataType::kNull));
  constexpr uint8_t kIntBit = uint8_t(1u << unsigned(DataType::kInt));
  constexpr uint8_t kStringBit = uint8_t(1u << unsigned(DataType::kString));
  if (key.type() == DataType::kInt) {
    const int64_t k = key.AsInt();
    const int64_t lim = int64_t(1) << 53;
    if (k >= lim || k <= -lim) return false;
    return (mask & uint8_t(~(kIntBit | kNullBit))) == 0;
  }
  if (key.type() == DataType::kString) {
    return (mask & uint8_t(~(kStringBit | kNullBit))) == 0;
  }
  return false;
}

}  // namespace ultraverse::sql
