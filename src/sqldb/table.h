#ifndef ULTRAVERSE_SQLDB_TABLE_H_
#define ULTRAVERSE_SQLDB_TABLE_H_

#include <cstdint>
#include <map>
#include <set>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sqldb/schema.h"
#include "sqldb/value.h"
#include "util/status.h"
#include "util/table_hash.h"

namespace ultraverse::sql {

using RowId = uint64_t;

/// A heap table: slotted row storage with tombstones, optional secondary
/// hash indexes, an undo journal providing point-in-time rollback (the
/// "system versioning" rollback option of §5), and an incremental
/// Hash-jumper table hash maintained on every write.
///
/// Storage is copy-on-write (§4.4 selective staging): rows live in
/// shared_ptr-backed pages and the journal in sealed shared chunks, so
/// Clone() shares everything and costs O(#pages) pointer copies. A clone
/// (or its source) materializes a private copy of a page/chunk/index set
/// only when it first mutates it, so staging a temporary replay database
/// never pays for tables — or pages — the replay does not touch.
class Table {
 public:
  explicit Table(TableSchema schema)
      : schema_(std::move(schema)),
        col_type_mask_(schema_.columns.size(), 0),
        indexes_(std::make_shared<IndexMap>()) {}

  const TableSchema& schema() const { return schema_; }
  TableSchema* mutable_schema() { return &schema_; }

  /// Number of live rows.
  size_t LiveRowCount() const { return live_count_; }

  /// Inserts a row (must match schema width). `commit_index` tags the undo
  /// journal entry. Returns the new row's id.
  Result<RowId> Insert(Row row, uint64_t commit_index);

  /// Deletes a live row by id.
  Status Delete(RowId id, uint64_t commit_index);

  /// Overwrites a live row by id.
  Status Update(RowId id, Row new_row, uint64_t commit_index);

  bool IsLive(RowId id) const {
    return id < row_count_ && PageOf(id)->alive[Slot(id)];
  }
  const Row& GetRow(RowId id) const { return PageOf(id)->rows[Slot(id)]; }

  /// Visits every live row; `fn` returning false stops the scan.
  template <typename Fn>
  void Scan(Fn&& fn) const {
    RowId id = 0;
    for (const auto& page : pages_) {
      for (size_t i = 0; i < page->rows.size(); ++i, ++id) {
        if (!page->alive[i]) continue;
        if (!fn(id, page->rows[i])) return;
      }
    }
  }

  /// All live row ids (stable snapshot for mutating scans).
  std::vector<RowId> LiveRowIds() const;

  /// Visits live rows one CoW page at a time: `fn(ids, rows, n)` receives up
  /// to kPageRows parallel arrays of row ids and row pointers, in ascending
  /// id order, and returns false to stop. The VM's batch filter runs its
  /// predicate over each chunk with one page dereference per page instead of
  /// one id->page resolution per row.
  template <typename Fn>
  void ScanBatch(Fn&& fn) const {
    RowId ids[kPageRows];
    const Row* rows[kPageRows];
    RowId base = 0;
    for (const auto& page : pages_) {
      size_t n = 0;
      for (size_t i = 0; i < page->rows.size(); ++i) {
        if (!page->alive[i]) continue;
        ids[n] = base + i;
        rows[n] = &page->rows[i];
        ++n;
      }
      if (n > 0 && !fn(ids, rows, n)) return;
      base += kPageRows;
    }
  }

  // --- Secondary hash indexes -------------------------------------------

  /// Builds (or rebuilds) a hash index over `column_index`. Creating a
  /// real index over a column that carries an advisory one promotes it:
  /// the advisory mark is cleared.
  Status CreateIndex(int column_index);

  /// Builds a hash index that is a pure access-path hint: the VM's
  /// adaptive indexer creates these when an equality predicate repeatedly
  /// scans a large table. Advisory indexes are not logical state — the
  /// state-diff oracle excludes them from its cross-database index
  /// comparison, the tree walker's chooser never considers them, and the
  /// VM probes them only under the totality + typed-exactness proof that
  /// makes the probe observably identical to a scan (DESIGN.md §12).
  Status CreateAdvisoryIndex(int column_index);
  bool IsAdvisoryIndex(int column_index) const {
    return advisory_cols_.count(column_index) > 0;
  }

  bool HasIndex(int column_index) const {
    return indexes_->count(column_index) > 0;
  }
  /// Row ids whose `column_index` equals `v` (only if indexed).
  std::vector<RowId> IndexLookup(int column_index, const Value& v) const;

  /// Number of live index entries for `v` without materializing the ids —
  /// the cost estimate behind the index-vs-scan access-path choice.
  size_t IndexCountForKey(int column_index, const Value& v) const;

  /// Monotone mask of every DataType ever stored in the column (bit =
  /// 1 << int(DataType)); a conservative superset of the types currently
  /// present. The VM consults this to prove that an encode-based index
  /// probe and the coercing SQL comparison agree before letting a SELECT
  /// take the index path (see DESIGN.md §12).
  uint8_t ColumnTypeMask(int column_index) const {
    return col_type_mask_[size_t(column_index)];
  }

  /// Column indexes that carry a secondary index (ascending).
  std::vector<int> IndexedColumns() const;

  /// Live-entry content of one secondary index: encoded key -> number of
  /// live rows the index holds for it. The state-diff oracle compares this
  /// multiset across databases (row ids differ across replay modes, key
  /// multisets must not).
  std::map<std::string, size_t> IndexKeyCounts(int column_index) const;

  // --- Undo journal / time travel ---------------------------------------

  /// Rolls the table content back to its state right after `commit_index`
  /// committed (entries tagged with larger indices are undone).
  void RollbackToIndex(uint64_t commit_index);

  /// Query-selective rollback (Appendix E's M^-1(D, I)): undoes, in reverse
  /// journal order, exactly the journal entries of the given commits.
  /// UPDATE entries restore only the columns that entry changed, so writes
  /// of cell-independent commits are preserved.
  void RollbackCommits(const std::set<uint64_t>& commits);

  /// Drops undo entries older than `commit_index` (checkpoint trim).
  void TrimJournalBefore(uint64_t commit_index);

  /// Drops the whole journal and marks commits before `commit_index` as
  /// untrimmable history (publish reset): a selective what-if publish
  /// replays its slots at post-horizon commit indexes, so the adopted
  /// journal neither matches the rewritten log's indexing nor stays clear
  /// of the indexes future commits will use. Retroactive targets at or
  /// below the mark then take the rebuild-from-log path, exactly like a
  /// checkpoint trim; post-publish traffic journals normally.
  void ResetJournal(uint64_t commit_index);

  size_t JournalSize() const { return sealed_entries_ + tail_.size(); }

  /// Commits before this index have had their undo entries trimmed by a
  /// checkpoint; they can no longer be rolled back from the journal.
  uint64_t trimmed_before() const { return trimmed_before_; }

  // --- Hash-jumper -------------------------------------------------------

  const TableHash& table_hash() const { return hash_; }

  /// Schema changes (ALTER) restructure all rows: callers use this after
  /// mutating rows in place to keep hash/indexes consistent.
  void RebuildDerivedState();

  /// Copy-on-write copy (used to stage temporary replay databases): shares
  /// row pages, sealed journal chunks, and the index set with this table.
  /// Either side materializes private copies on its first mutation.
  std::unique_ptr<Table> Clone() const;

  /// Rough full logical footprint in bytes (for the RAM-overhead
  /// benchmarks). Shared CoW state is counted in full — this is the size
  /// of the table's contents, not of what it uniquely owns.
  size_t ApproxMemoryBytes() const;

  /// Bytes this table uniquely owns: pages/chunks/indexes still shared
  /// with a CoW sibling count only as a pointer. A fresh clone reports
  /// near-zero; the figure grows as mutations materialize private copies.
  size_t ApproxOwnedBytes() const;

  /// True while any row page, journal chunk, or the index set is still
  /// shared with a CoW sibling (diagnostics/tests).
  bool SharesCowState() const;

 private:
  enum class UndoOp { kInsert, kDelete, kUpdate };
  struct UndoEntry {
    uint64_t commit_index;
    UndoOp op;
    RowId row_id;
    Row old_row;  // for kDelete / kUpdate
    /// kUpdate: which columns this entry changed (column-masked undo).
    std::vector<uint8_t> changed_mask;
  };

  /// Rows per CoW page; power of two so id -> (page, slot) is shift/mask.
  static constexpr size_t kPageRows = 256;
  static constexpr size_t kPageShift = 8;
  static constexpr size_t kPageMask = kPageRows - 1;
  /// Entries per sealed journal chunk.
  static constexpr size_t kJournalChunk = 256;

  struct RowPage {
    std::vector<Row> rows;
    std::vector<uint8_t> alive;
  };
  /// Immutable once sealed; min/max commit bounds let rollback and trim
  /// skip whole chunks without inspecting entries.
  struct JournalChunk {
    std::vector<UndoEntry> entries;
    uint64_t min_commit = 0;
    uint64_t max_commit = 0;
  };
  using IndexMap =
      std::unordered_map<int, std::unordered_multimap<std::string, RowId>>;

  static size_t PageIndex(RowId id) { return size_t(id) >> kPageShift; }
  static size_t Slot(RowId id) { return size_t(id) & kPageMask; }
  const RowPage* PageOf(RowId id) const { return pages_[PageIndex(id)].get(); }

  /// Returns the page holding `id`, materializing a private copy first if
  /// it is still shared with a CoW sibling.
  RowPage* OwnedPage(RowId id);
  /// Materializes a private index set if it is shared.
  IndexMap* OwnedIndexes();

  void IndexAdd(RowId id, const Row& row);
  void IndexRemove(RowId id, const Row& row);

  /// ORs the row's value types into col_type_mask_ (called on every path
  /// that introduces row content: insert, update, and undo restores).
  void NoteRowTypes(const Row& row) {
    for (size_t i = 0; i < row.size() && i < col_type_mask_.size(); ++i) {
      col_type_mask_[i] |= uint8_t(1u << unsigned(row[i].type()));
    }
  }

  // Journal plumbing over sealed chunks + owned tail.
  void AppendJournal(UndoEntry entry);
  void SealTail();
  /// Moves the newest sealed chunk's entries back into the tail (copying
  /// if the chunk is shared). Requires an empty tail.
  void UnsealLastChunk();
  const UndoEntry& LastJournalEntry() const;
  UndoEntry PopJournalEntry();

  /// Undoes one journal entry. `masked` selects the column-masked UPDATE
  /// semantics of RollbackCommits; RollbackToIndex restores full rows.
  void ApplyUndo(UndoEntry entry, bool masked);

  TableSchema schema_;
  std::vector<uint8_t> col_type_mask_;  // per column; see ColumnTypeMask()
  std::vector<std::shared_ptr<RowPage>> pages_;
  size_t row_count_ = 0;  // total slots, live + tombstoned
  size_t live_count_ = 0;
  std::vector<std::shared_ptr<const JournalChunk>> sealed_;
  size_t sealed_entries_ = 0;
  std::vector<UndoEntry> tail_;  // open (always privately owned) chunk
  uint64_t trimmed_before_ = 0;
  std::shared_ptr<IndexMap> indexes_;
  std::set<int> advisory_cols_;  // subset of indexes_ keys; see above
  TableHash hash_;
};

}  // namespace ultraverse::sql

#endif  // ULTRAVERSE_SQLDB_TABLE_H_
