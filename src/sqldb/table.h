#ifndef ULTRAVERSE_SQLDB_TABLE_H_
#define ULTRAVERSE_SQLDB_TABLE_H_

#include <cstdint>
#include <set>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sqldb/schema.h"
#include "sqldb/value.h"
#include "util/status.h"
#include "util/table_hash.h"

namespace ultraverse::sql {

using RowId = uint64_t;

/// A heap table: slotted row storage with tombstones, optional secondary
/// hash indexes, an undo journal providing point-in-time rollback (the
/// "system versioning" rollback option of §5), and an incremental
/// Hash-jumper table hash maintained on every write.
class Table {
 public:
  explicit Table(TableSchema schema) : schema_(std::move(schema)) {}

  const TableSchema& schema() const { return schema_; }
  TableSchema* mutable_schema() { return &schema_; }

  /// Number of live rows.
  size_t LiveRowCount() const { return live_count_; }

  /// Inserts a row (must match schema width). `commit_index` tags the undo
  /// journal entry. Returns the new row's id.
  Result<RowId> Insert(Row row, uint64_t commit_index);

  /// Deletes a live row by id.
  Status Delete(RowId id, uint64_t commit_index);

  /// Overwrites a live row by id.
  Status Update(RowId id, Row new_row, uint64_t commit_index);

  bool IsLive(RowId id) const { return id < rows_.size() && alive_[id]; }
  const Row& GetRow(RowId id) const { return rows_[id]; }

  /// Visits every live row; `fn` returning false stops the scan.
  template <typename Fn>
  void Scan(Fn&& fn) const {
    for (RowId id = 0; id < rows_.size(); ++id) {
      if (!alive_[id]) continue;
      if (!fn(id, rows_[id])) return;
    }
  }

  /// All live row ids (stable snapshot for mutating scans).
  std::vector<RowId> LiveRowIds() const;

  // --- Secondary hash indexes -------------------------------------------

  /// Builds (or rebuilds) a hash index over `column_index`.
  Status CreateIndex(int column_index);
  bool HasIndex(int column_index) const {
    return indexes_.count(column_index) > 0;
  }
  /// Row ids whose `column_index` equals `v` (only if indexed).
  std::vector<RowId> IndexLookup(int column_index, const Value& v) const;

  // --- Undo journal / time travel ---------------------------------------

  /// Rolls the table content back to its state right after `commit_index`
  /// committed (entries tagged with larger indices are undone).
  void RollbackToIndex(uint64_t commit_index);

  /// Query-selective rollback (Appendix E's M^-1(D, I)): undoes, in reverse
  /// journal order, exactly the journal entries of the given commits.
  /// UPDATE entries restore only the columns that entry changed, so writes
  /// of cell-independent commits are preserved.
  void RollbackCommits(const std::set<uint64_t>& commits);

  /// Drops undo entries older than `commit_index` (checkpoint trim).
  void TrimJournalBefore(uint64_t commit_index);

  size_t JournalSize() const { return journal_.size(); }

  /// Commits before this index have had their undo entries trimmed by a
  /// checkpoint; they can no longer be rolled back from the journal.
  uint64_t trimmed_before() const { return trimmed_before_; }

  // --- Hash-jumper -------------------------------------------------------

  const TableHash& table_hash() const { return hash_; }

  /// Schema changes (ALTER) restructure all rows: callers use this after
  /// mutating rows in place to keep hash/indexes consistent.
  void RebuildDerivedState();

  /// Deep copy (used to stage temporary replay databases).
  std::unique_ptr<Table> Clone() const;

  /// Rough memory footprint in bytes (for the RAM-overhead benchmarks).
  size_t ApproxMemoryBytes() const;

 private:
  enum class UndoOp { kInsert, kDelete, kUpdate };
  struct UndoEntry {
    uint64_t commit_index;
    UndoOp op;
    RowId row_id;
    Row old_row;  // for kDelete / kUpdate
    /// kUpdate: which columns this entry changed (column-masked undo).
    std::vector<uint8_t> changed_mask;
  };

  void IndexAdd(RowId id, const Row& row);
  void IndexRemove(RowId id, const Row& row);

  TableSchema schema_;
  std::vector<Row> rows_;
  std::vector<uint8_t> alive_;
  size_t live_count_ = 0;
  std::vector<UndoEntry> journal_;
  uint64_t trimmed_before_ = 0;
  // column index -> (encoded value -> row ids)
  std::unordered_map<int, std::unordered_multimap<std::string, RowId>> indexes_;
  TableHash hash_;
};

}  // namespace ultraverse::sql

#endif  // ULTRAVERSE_SQLDB_TABLE_H_
