#ifndef ULTRAVERSE_SQLDB_SCHEMA_H_
#define ULTRAVERSE_SQLDB_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "sqldb/value.h"

namespace ultraverse::sql {

/// Column definition inside a CREATE TABLE.
struct ColumnDef {
  std::string name;
  DataType type = DataType::kString;
  bool primary_key = false;
  bool auto_increment = false;
  bool not_null = false;
};

/// FOREIGN KEY (column) REFERENCES ref_table(ref_column).
/// Foreign keys drive the "red arrow" dependency edges of §4.2 and the
/// R/W-set policies of Appendix A; referential enforcement itself is not
/// what the paper evaluates.
struct ForeignKey {
  std::string column;
  std::string ref_table;
  std::string ref_column;
};

/// Logical table schema. `ri_column`/`ri_alias` carry the row-identifier
/// metadata of §4.3 (chosen automatically by RiSelector or set explicitly).
struct TableSchema {
  std::string name;
  std::vector<ColumnDef> columns;
  std::vector<ForeignKey> foreign_keys;

  /// Index of the column whose values identify rows for row-wise analysis;
  /// -1 when not yet selected (analysis then degrades to wildcards).
  int ri_column = -1;
  /// Optional alias RI columns: maps of alias column index -> RI values are
  /// learned at commit time by the analyzer (see core/rowset).
  std::vector<int> ri_alias_columns;

  int ColumnIndex(const std::string& col) const {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i].name == col) return int(i);
    }
    return -1;
  }

  int PrimaryKeyIndex() const {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i].primary_key) return int(i);
    }
    return -1;
  }
};

}  // namespace ultraverse::sql

#endif  // ULTRAVERSE_SQLDB_SCHEMA_H_
