#include "sqldb/table.h"

#include <algorithm>
#include <iterator>

namespace ultraverse::sql {

// --- CoW materialization ---------------------------------------------------

Table::RowPage* Table::OwnedPage(RowId id) {
  std::shared_ptr<RowPage>& page = pages_[PageIndex(id)];
  if (page.use_count() > 1) page = std::make_shared<RowPage>(*page);
  return page.get();
}

Table::IndexMap* Table::OwnedIndexes() {
  if (indexes_.use_count() > 1) {
    indexes_ = std::make_shared<IndexMap>(*indexes_);
  }
  return indexes_.get();
}

// --- Journal plumbing ------------------------------------------------------

void Table::SealTail() {
  if (tail_.empty()) return;
  JournalChunk chunk;
  chunk.min_commit = tail_.front().commit_index;
  chunk.max_commit = 0;
  for (const UndoEntry& e : tail_) {
    chunk.min_commit = std::min(chunk.min_commit, e.commit_index);
    chunk.max_commit = std::max(chunk.max_commit, e.commit_index);
  }
  chunk.entries = std::move(tail_);
  tail_.clear();
  sealed_entries_ += chunk.entries.size();
  sealed_.push_back(std::make_shared<const JournalChunk>(std::move(chunk)));
}

void Table::AppendJournal(UndoEntry entry) {
  tail_.push_back(std::move(entry));
  if (tail_.size() >= kJournalChunk) SealTail();
}

void Table::UnsealLastChunk() {
  const std::shared_ptr<const JournalChunk>& chunk = sealed_.back();
  sealed_entries_ -= chunk->entries.size();
  tail_ = chunk->entries;  // copy: the chunk may be shared with a sibling
  sealed_.pop_back();
}

const Table::UndoEntry& Table::LastJournalEntry() const {
  if (!tail_.empty()) return tail_.back();
  return sealed_.back()->entries.back();
}

Table::UndoEntry Table::PopJournalEntry() {
  if (tail_.empty()) UnsealLastChunk();
  UndoEntry entry = std::move(tail_.back());
  tail_.pop_back();
  return entry;
}

// --- Mutations -------------------------------------------------------------

Result<RowId> Table::Insert(Row row, uint64_t commit_index) {
  if (row.size() != schema_.columns.size()) {
    return Status::InvalidArgument("row width mismatch for table " +
                                   schema_.name);
  }
  RowId id = row_count_;
  RowPage* page;
  if (PageIndex(id) == pages_.size()) {
    pages_.push_back(std::make_shared<RowPage>());
    pages_.back()->rows.reserve(kPageRows);
    pages_.back()->alive.reserve(kPageRows);
    page = pages_.back().get();
  } else {
    page = OwnedPage(id);
  }
  page->rows.push_back(std::move(row));
  page->alive.push_back(1);
  ++row_count_;
  ++live_count_;
  const Row& stored = page->rows[Slot(id)];
  NoteRowTypes(stored);
  IndexAdd(id, stored);
  hash_.AddRow(EncodeRow(stored));
  AppendJournal({commit_index, UndoOp::kInsert, id, {}, {}});
  return id;
}

Status Table::Delete(RowId id, uint64_t commit_index) {
  if (!IsLive(id)) return Status::NotFound("row not live");
  RowPage* page = OwnedPage(id);
  Row& row = page->rows[Slot(id)];
  IndexRemove(id, row);
  hash_.RemoveRow(EncodeRow(row));
  page->alive[Slot(id)] = 0;
  --live_count_;
  AppendJournal({commit_index, UndoOp::kDelete, id, row, {}});
  return Status::OK();
}

Status Table::Update(RowId id, Row new_row, uint64_t commit_index) {
  if (!IsLive(id)) return Status::NotFound("row not live");
  if (new_row.size() != schema_.columns.size()) {
    return Status::InvalidArgument("row width mismatch for table " +
                                   schema_.name);
  }
  RowPage* page = OwnedPage(id);
  Row& row = page->rows[Slot(id)];
  IndexRemove(id, row);
  hash_.RemoveRow(EncodeRow(row));
  std::vector<uint8_t> mask(row.size(), 0);
  for (size_t i = 0; i < row.size(); ++i) {
    if (!row[i].Equals(new_row[i])) mask[i] = 1;
  }
  AppendJournal({commit_index, UndoOp::kUpdate, id, row, std::move(mask)});
  row = std::move(new_row);
  NoteRowTypes(row);
  IndexAdd(id, row);
  hash_.AddRow(EncodeRow(row));
  return Status::OK();
}

std::vector<RowId> Table::LiveRowIds() const {
  std::vector<RowId> ids;
  ids.reserve(live_count_);
  Scan([&](RowId id, const Row&) {
    ids.push_back(id);
    return true;
  });
  return ids;
}

Status Table::CreateIndex(int column_index) {
  if (column_index < 0 || column_index >= int(schema_.columns.size())) {
    return Status::InvalidArgument("index column out of range");
  }
  auto& idx = (*OwnedIndexes())[column_index];
  idx.clear();
  Scan([&](RowId id, const Row& row) {
    idx.emplace(row[column_index].Encode(), id);
    return true;
  });
  // A user-created index over an advisory column promotes it to logical
  // state: it re-enters the state diff and the tree walker's chooser.
  advisory_cols_.erase(column_index);
  return Status::OK();
}

Status Table::CreateAdvisoryIndex(int column_index) {
  UV_RETURN_NOT_OK(CreateIndex(column_index));
  advisory_cols_.insert(column_index);
  return Status::OK();
}

std::vector<RowId> Table::IndexLookup(int column_index, const Value& v) const {
  std::vector<RowId> out;
  auto it = indexes_->find(column_index);
  if (it == indexes_->end()) return out;
  auto range = it->second.equal_range(v.Encode());
  for (auto i = range.first; i != range.second; ++i) out.push_back(i->second);
  return out;
}

size_t Table::IndexCountForKey(int column_index, const Value& v) const {
  auto it = indexes_->find(column_index);
  if (it == indexes_->end()) return 0;
  auto range = it->second.equal_range(v.Encode());
  return size_t(std::distance(range.first, range.second));
}

std::vector<int> Table::IndexedColumns() const {
  std::vector<int> cols;
  cols.reserve(indexes_->size());
  for (const auto& [col, idx] : *indexes_) {
    (void)idx;
    cols.push_back(col);
  }
  std::sort(cols.begin(), cols.end());
  return cols;
}

std::map<std::string, size_t> Table::IndexKeyCounts(int column_index) const {
  std::map<std::string, size_t> counts;
  auto it = indexes_->find(column_index);
  if (it == indexes_->end()) return counts;
  for (const auto& [key, id] : it->second) {
    if (IsLive(id)) ++counts[key];
  }
  return counts;
}

void Table::IndexAdd(RowId id, const Row& row) {
  if (indexes_->empty()) return;
  for (auto& [col, idx] : *OwnedIndexes()) {
    idx.emplace(row[col].Encode(), id);
  }
}

void Table::IndexRemove(RowId id, const Row& row) {
  if (indexes_->empty()) return;
  for (auto& [col, idx] : *OwnedIndexes()) {
    auto range = idx.equal_range(row[col].Encode());
    for (auto i = range.first; i != range.second; ++i) {
      if (i->second == id) {
        idx.erase(i);
        break;
      }
    }
  }
}

// --- Rollback --------------------------------------------------------------

void Table::ApplyUndo(UndoEntry entry, bool masked) {
  RowPage* page = OwnedPage(entry.row_id);
  size_t slot = Slot(entry.row_id);
  switch (entry.op) {
    case UndoOp::kInsert:
      if (page->alive[slot]) {
        IndexRemove(entry.row_id, page->rows[slot]);
        hash_.RemoveRow(EncodeRow(page->rows[slot]));
        page->alive[slot] = 0;
        --live_count_;
      }
      break;
    case UndoOp::kDelete:
      if (!page->alive[slot]) {
        page->rows[slot] = std::move(entry.old_row);
        page->alive[slot] = 1;
        ++live_count_;
        NoteRowTypes(page->rows[slot]);
        IndexAdd(entry.row_id, page->rows[slot]);
        hash_.AddRow(EncodeRow(page->rows[slot]));
      }
      break;
    case UndoOp::kUpdate: {
      Row& row = page->rows[slot];
      IndexRemove(entry.row_id, row);
      hash_.RemoveRow(EncodeRow(row));
      if (masked) {
        // Column-masked: restore only the columns this entry changed, so
        // later cell-independent writes by unselected commits survive.
        for (size_t i = 0; i < row.size() && i < entry.old_row.size(); ++i) {
          if (entry.changed_mask.empty() || entry.changed_mask[i]) {
            row[i] = std::move(entry.old_row[i]);
          }
        }
      } else {
        row = std::move(entry.old_row);
      }
      NoteRowTypes(row);
      IndexAdd(entry.row_id, row);
      hash_.AddRow(EncodeRow(row));
      break;
    }
  }
}

void Table::RollbackToIndex(uint64_t commit_index) {
  while (JournalSize() > 0 &&
         LastJournalEntry().commit_index > commit_index) {
    ApplyUndo(PopJournalEntry(), /*masked=*/false);
  }
}

void Table::RollbackCommits(const std::set<uint64_t>& commits) {
  if (commits.empty() || JournalSize() == 0) return;
  // Entries older than the oldest selected commit can neither be undone
  // nor reordered: leave their (possibly shared) chunks untouched and
  // work only on the journal suffix. This keeps selective rollback
  // proportional to the undone history, not to the table's full journal.
  const uint64_t min_commit = *commits.begin();
  size_t boundary = sealed_.size();
  for (size_t i = 0; i < sealed_.size(); ++i) {
    if (sealed_[i]->max_commit >= min_commit) {
      boundary = i;
      break;
    }
  }
  std::vector<UndoEntry> work;
  for (size_t i = boundary; i < sealed_.size(); ++i) {
    work.insert(work.end(), sealed_[i]->entries.begin(),
                sealed_[i]->entries.end());
    sealed_entries_ -= sealed_[i]->entries.size();
  }
  sealed_.resize(boundary);
  work.insert(work.end(), std::make_move_iterator(tail_.begin()),
              std::make_move_iterator(tail_.end()));
  tail_.clear();

  // Undo matching entries newest-first, keeping the others.
  std::vector<UndoEntry> kept;
  kept.reserve(work.size());
  for (auto it = work.rbegin(); it != work.rend(); ++it) {
    if (!commits.count(it->commit_index)) {
      kept.push_back(std::move(*it));
      continue;
    }
    ApplyUndo(std::move(*it), /*masked=*/true);
  }
  for (auto it = kept.rbegin(); it != kept.rend(); ++it) {
    AppendJournal(std::move(*it));
  }
}

void Table::ResetJournal(uint64_t commit_index) {
  sealed_.clear();
  sealed_entries_ = 0;
  tail_.clear();
  trimmed_before_ = std::max(trimmed_before_, commit_index);
}

void Table::TrimJournalBefore(uint64_t commit_index) {
  trimmed_before_ = std::max(trimmed_before_, commit_index);
  // Whole chunks below the horizon drop without being copied; the boundary
  // chunk is filtered with the same stop-at-first-kept-entry semantics the
  // flat journal used.
  size_t drop = 0;
  while (drop < sealed_.size() &&
         sealed_[drop]->max_commit < commit_index) {
    sealed_entries_ -= sealed_[drop]->entries.size();
    ++drop;
  }
  if (drop > 0) sealed_.erase(sealed_.begin(), sealed_.begin() + drop);
  if (!sealed_.empty() && sealed_.front()->min_commit < commit_index) {
    const auto& entries = sealed_.front()->entries;
    size_t keep_from = 0;
    while (keep_from < entries.size() &&
           entries[keep_from].commit_index < commit_index) {
      ++keep_from;
    }
    JournalChunk filtered;
    filtered.entries.assign(entries.begin() + keep_from, entries.end());
    sealed_entries_ -= keep_from;
    if (filtered.entries.empty()) {
      sealed_.erase(sealed_.begin());
    } else {
      filtered.min_commit = filtered.entries.front().commit_index;
      filtered.max_commit = filtered.min_commit;
      for (const UndoEntry& e : filtered.entries) {
        filtered.min_commit = std::min(filtered.min_commit, e.commit_index);
        filtered.max_commit = std::max(filtered.max_commit, e.commit_index);
      }
      sealed_.front() =
          std::make_shared<const JournalChunk>(std::move(filtered));
    }
    return;
  }
  if (sealed_.empty() && !tail_.empty()) {
    size_t keep_from = 0;
    while (keep_from < tail_.size() &&
           tail_[keep_from].commit_index < commit_index) {
      ++keep_from;
    }
    if (keep_from > 0) {
      tail_.erase(tail_.begin(), tail_.begin() + keep_from);
    }
  }
}

void Table::RebuildDerivedState() {
  hash_.Reset();
  IndexMap* indexes = OwnedIndexes();
  for (auto& [col, idx] : *indexes) {
    (void)col;
    idx.clear();
  }
  Scan([&](RowId id, const Row& row) {
    for (auto& [col, idx] : *indexes) {
      idx.emplace(row[col].Encode(), id);
    }
    hash_.AddRow(EncodeRow(row));
    return true;
  });
}

// --- Clone / memory --------------------------------------------------------

std::unique_ptr<Table> Table::Clone() const {
  auto copy = std::make_unique<Table>(schema_);
  copy->col_type_mask_ = col_type_mask_;
  copy->pages_ = pages_;      // O(#pages) shared_ptr copies
  copy->row_count_ = row_count_;
  copy->live_count_ = live_count_;
  copy->sealed_ = sealed_;    // O(#chunks) shared_ptr copies
  copy->sealed_entries_ = sealed_entries_;
  copy->tail_ = tail_;        // bounded by kJournalChunk entries
  copy->trimmed_before_ = trimmed_before_;
  copy->indexes_ = indexes_;  // shared until either side writes
  copy->advisory_cols_ = advisory_cols_;
  copy->hash_ = hash_;
  return copy;
}

bool Table::SharesCowState() const {
  if (indexes_.use_count() > 1) return true;
  for (const auto& page : pages_) {
    if (page.use_count() > 1) return true;
  }
  for (const auto& chunk : sealed_) {
    if (chunk.use_count() > 1) return true;
  }
  return false;
}

namespace {

size_t RowBytes(const Row& row) {
  size_t b = sizeof(Row) + row.size() * sizeof(Value);
  for (const Value& v : row) {
    if (v.type() == DataType::kString) b += v.AsStringRef().capacity();
  }
  return b;
}

size_t UndoBytes(const std::vector<Value>& old_row) {
  return sizeof(uint64_t) + sizeof(RowId) + RowBytes(old_row);
}

}  // namespace

size_t Table::ApproxMemoryBytes() const {
  size_t bytes = sizeof(Table);
  for (const auto& page : pages_) {
    bytes += sizeof(RowPage) + page->alive.capacity();
    for (const Row& row : page->rows) bytes += RowBytes(row);
  }
  for (const auto& chunk : sealed_) {
    for (const auto& e : chunk->entries) bytes += UndoBytes(e.old_row);
  }
  for (const auto& e : tail_) bytes += UndoBytes(e.old_row);
  for (const auto& [col, idx] : *indexes_) {
    (void)col;
    bytes += idx.size() * (sizeof(RowId) + 24);
  }
  return bytes;
}

size_t Table::ApproxOwnedBytes() const {
  size_t bytes = sizeof(Table);
  for (const auto& page : pages_) {
    if (page.use_count() > 1) {
      bytes += sizeof(page);  // shared: only the reference is ours
      continue;
    }
    bytes += sizeof(RowPage) + page->alive.capacity();
    for (const Row& row : page->rows) bytes += RowBytes(row);
  }
  for (const auto& chunk : sealed_) {
    if (chunk.use_count() > 1) {
      bytes += sizeof(chunk);
      continue;
    }
    for (const auto& e : chunk->entries) bytes += UndoBytes(e.old_row);
  }
  for (const auto& e : tail_) bytes += UndoBytes(e.old_row);
  if (indexes_.use_count() > 1) {
    bytes += sizeof(indexes_);
  } else {
    for (const auto& [col, idx] : *indexes_) {
      (void)col;
      bytes += idx.size() * (sizeof(RowId) + 24);
    }
  }
  return bytes;
}

}  // namespace ultraverse::sql
