#include "sqldb/table.h"

#include <algorithm>

namespace ultraverse::sql {

Result<RowId> Table::Insert(Row row, uint64_t commit_index) {
  if (row.size() != schema_.columns.size()) {
    return Status::InvalidArgument("row width mismatch for table " +
                                   schema_.name);
  }
  RowId id = rows_.size();
  rows_.push_back(std::move(row));
  alive_.push_back(1);
  ++live_count_;
  IndexAdd(id, rows_[id]);
  hash_.AddRow(EncodeRow(rows_[id]));
  journal_.push_back({commit_index, UndoOp::kInsert, id, {}, {}});
  return id;
}

Status Table::Delete(RowId id, uint64_t commit_index) {
  if (!IsLive(id)) return Status::NotFound("row not live");
  IndexRemove(id, rows_[id]);
  hash_.RemoveRow(EncodeRow(rows_[id]));
  alive_[id] = 0;
  --live_count_;
  journal_.push_back({commit_index, UndoOp::kDelete, id, rows_[id], {}});
  return Status::OK();
}

Status Table::Update(RowId id, Row new_row, uint64_t commit_index) {
  if (!IsLive(id)) return Status::NotFound("row not live");
  if (new_row.size() != schema_.columns.size()) {
    return Status::InvalidArgument("row width mismatch for table " +
                                   schema_.name);
  }
  IndexRemove(id, rows_[id]);
  hash_.RemoveRow(EncodeRow(rows_[id]));
  std::vector<uint8_t> mask(rows_[id].size(), 0);
  for (size_t i = 0; i < rows_[id].size(); ++i) {
    if (!rows_[id][i].Equals(new_row[i])) mask[i] = 1;
  }
  journal_.push_back(
      {commit_index, UndoOp::kUpdate, id, rows_[id], std::move(mask)});
  rows_[id] = std::move(new_row);
  IndexAdd(id, rows_[id]);
  hash_.AddRow(EncodeRow(rows_[id]));
  return Status::OK();
}

std::vector<RowId> Table::LiveRowIds() const {
  std::vector<RowId> ids;
  ids.reserve(live_count_);
  for (RowId id = 0; id < rows_.size(); ++id) {
    if (alive_[id]) ids.push_back(id);
  }
  return ids;
}

Status Table::CreateIndex(int column_index) {
  if (column_index < 0 || column_index >= int(schema_.columns.size())) {
    return Status::InvalidArgument("index column out of range");
  }
  auto& idx = indexes_[column_index];
  idx.clear();
  for (RowId id = 0; id < rows_.size(); ++id) {
    if (!alive_[id]) continue;
    idx.emplace(rows_[id][column_index].Encode(), id);
  }
  return Status::OK();
}

std::vector<RowId> Table::IndexLookup(int column_index, const Value& v) const {
  std::vector<RowId> out;
  auto it = indexes_.find(column_index);
  if (it == indexes_.end()) return out;
  auto range = it->second.equal_range(v.Encode());
  for (auto i = range.first; i != range.second; ++i) out.push_back(i->second);
  return out;
}

void Table::IndexAdd(RowId id, const Row& row) {
  for (auto& [col, idx] : indexes_) {
    idx.emplace(row[col].Encode(), id);
  }
}

void Table::IndexRemove(RowId id, const Row& row) {
  for (auto& [col, idx] : indexes_) {
    auto range = idx.equal_range(row[col].Encode());
    for (auto i = range.first; i != range.second; ++i) {
      if (i->second == id) {
        idx.erase(i);
        break;
      }
    }
  }
}

void Table::RollbackToIndex(uint64_t commit_index) {
  while (!journal_.empty() && journal_.back().commit_index > commit_index) {
    UndoEntry entry = std::move(journal_.back());
    journal_.pop_back();
    switch (entry.op) {
      case UndoOp::kInsert:
        if (alive_[entry.row_id]) {
          IndexRemove(entry.row_id, rows_[entry.row_id]);
          hash_.RemoveRow(EncodeRow(rows_[entry.row_id]));
          alive_[entry.row_id] = 0;
          --live_count_;
        }
        break;
      case UndoOp::kDelete:
        if (!alive_[entry.row_id]) {
          rows_[entry.row_id] = std::move(entry.old_row);
          alive_[entry.row_id] = 1;
          ++live_count_;
          IndexAdd(entry.row_id, rows_[entry.row_id]);
          hash_.AddRow(EncodeRow(rows_[entry.row_id]));
        }
        break;
      case UndoOp::kUpdate:
        IndexRemove(entry.row_id, rows_[entry.row_id]);
        hash_.RemoveRow(EncodeRow(rows_[entry.row_id]));
        rows_[entry.row_id] = std::move(entry.old_row);
        IndexAdd(entry.row_id, rows_[entry.row_id]);
        hash_.AddRow(EncodeRow(rows_[entry.row_id]));
        break;
    }
  }
}


void Table::RollbackCommits(const std::set<uint64_t>& commits) {
  // Undo matching entries newest-first, keeping the others.
  std::vector<UndoEntry> kept;
  kept.reserve(journal_.size());
  for (auto it = journal_.rbegin(); it != journal_.rend(); ++it) {
    UndoEntry& entry = *it;
    if (!commits.count(entry.commit_index)) {
      kept.push_back(std::move(entry));
      continue;
    }
    switch (entry.op) {
      case UndoOp::kInsert:
        if (alive_[entry.row_id]) {
          IndexRemove(entry.row_id, rows_[entry.row_id]);
          hash_.RemoveRow(EncodeRow(rows_[entry.row_id]));
          alive_[entry.row_id] = 0;
          --live_count_;
        }
        break;
      case UndoOp::kDelete:
        if (!alive_[entry.row_id]) {
          rows_[entry.row_id] = std::move(entry.old_row);
          alive_[entry.row_id] = 1;
          ++live_count_;
          IndexAdd(entry.row_id, rows_[entry.row_id]);
          hash_.AddRow(EncodeRow(rows_[entry.row_id]));
        }
        break;
      case UndoOp::kUpdate: {
        // Column-masked: restore only the columns this entry changed, so
        // later cell-independent writes by unselected commits survive.
        Row& row = rows_[entry.row_id];
        IndexRemove(entry.row_id, row);
        hash_.RemoveRow(EncodeRow(row));
        for (size_t i = 0; i < row.size() && i < entry.old_row.size(); ++i) {
          if (entry.changed_mask.empty() || entry.changed_mask[i]) {
            row[i] = std::move(entry.old_row[i]);
          }
        }
        IndexAdd(entry.row_id, row);
        hash_.AddRow(EncodeRow(row));
        break;
      }
    }
  }
  journal_.assign(std::make_move_iterator(kept.rbegin()),
                  std::make_move_iterator(kept.rend()));
}

void Table::TrimJournalBefore(uint64_t commit_index) {
  trimmed_before_ = std::max(trimmed_before_, commit_index);
  size_t keep_from = 0;
  while (keep_from < journal_.size() &&
         journal_[keep_from].commit_index < commit_index) {
    ++keep_from;
  }
  if (keep_from > 0) {
    journal_.erase(journal_.begin(), journal_.begin() + keep_from);
  }
}

void Table::RebuildDerivedState() {
  hash_.Reset();
  for (auto& [col, idx] : indexes_) {
    (void)col;
    idx.clear();
  }
  for (RowId id = 0; id < rows_.size(); ++id) {
    if (!alive_[id]) continue;
    IndexAdd(id, rows_[id]);
    hash_.AddRow(EncodeRow(rows_[id]));
  }
}

std::unique_ptr<Table> Table::Clone() const {
  auto copy = std::make_unique<Table>(schema_);
  copy->rows_ = rows_;
  copy->alive_ = alive_;
  copy->live_count_ = live_count_;
  copy->journal_ = journal_;
  copy->indexes_ = indexes_;
  copy->hash_ = hash_;
  return copy;
}

size_t Table::ApproxMemoryBytes() const {
  size_t bytes = sizeof(Table);
  auto row_bytes = [](const Row& row) {
    size_t b = sizeof(Row) + row.size() * sizeof(Value);
    for (const Value& v : row) {
      if (v.type() == DataType::kString) b += v.AsStringRef().capacity();
    }
    return b;
  };
  for (const Row& row : rows_) bytes += row_bytes(row);
  bytes += alive_.capacity();
  for (const auto& e : journal_) bytes += sizeof(e) + row_bytes(e.old_row);
  for (const auto& [col, idx] : indexes_) {
    (void)col;
    bytes += idx.size() * (sizeof(RowId) + 24);
  }
  return bytes;
}

}  // namespace ultraverse::sql
