#include "sqldb/state_diff.h"

#include <sstream>

#include "sqldb/ast.h"
#include "sqldb/table.h"

namespace ultraverse::sql {
namespace {

const char* TypeName(DataType t) {
  switch (t) {
    case DataType::kInt: return "INT";
    case DataType::kDouble: return "DOUBLE";
    case DataType::kString: return "VARCHAR";
    case DataType::kBool: return "BOOL";
    default: return "NULL";
  }
}

std::string ColumnSignature(const ColumnDef& c) {
  std::string s = c.name;
  s += ' ';
  s += TypeName(c.type);
  if (c.primary_key) s += " PRIMARY KEY";
  if (c.auto_increment) s += " AUTO_INCREMENT";
  if (c.not_null) s += " NOT NULL";
  return s;
}

std::string DisplayRow(const Row& row) {
  std::string s = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i) s += ", ";
    s += row[i].ToDisplayString();
  }
  s += ')';
  return s;
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string s;
  for (const auto& n : names) {
    if (!s.empty()) s += ", ";
    s += n;
  }
  return s.empty() ? "<none>" : s;
}

}  // namespace

DatabaseState CaptureState(const Database& db) {
  DatabaseState state;
  for (const auto& name : db.TableNames()) {
    const Table* table = db.FindTable(name);
    if (!table) continue;
    TableState ts;
    for (const auto& col : table->schema().columns) {
      ts.columns.push_back(ColumnSignature(col));
    }
    ts.live_rows = table->LiveRowCount();
    table->Scan([&](RowId, const Row& row) {
      std::string key = EncodeRow(row);
      auto [it, fresh] = ts.rows.emplace(std::move(key), 0);
      ++it->second;
      if (fresh) ts.display.emplace(it->first, DisplayRow(row));
      return true;
    });
    for (int col : table->IndexedColumns()) {
      auto counts = table->IndexKeyCounts(col);
      // Cross-check the index against a scan of the column it covers: a
      // divergence here is corruption inside *one* database (e.g. an undo
      // path that forgot index maintenance), reported as an integrity
      // error rather than a cross-mode diff.
      std::map<std::string, size_t> scanned;
      table->Scan([&](RowId, const Row& row) {
        if (size_t(col) < row.size()) ++scanned[row[col].Encode()];
        return true;
      });
      if (scanned != counts) {
        std::ostringstream os;
        os << "table " << name << " index on column #" << col
           << " disagrees with table scan (" << counts.size()
           << " indexed keys vs " << scanned.size() << " scanned keys)";
        state.integrity_errors.push_back(os.str());
      }
      // Advisory indexes are engine-local access-path hints, not logical
      // state: the VM builds them adaptively and the tree walker never
      // does, so they are integrity-checked above but excluded from the
      // cross-database index comparison.
      if (table->IsAdvisoryIndex(col)) continue;
      const std::string& col_name =
          size_t(col) < table->schema().columns.size()
              ? table->schema().columns[col].name
              : std::to_string(col);
      ts.index_keys[col_name] = std::move(counts);
    }
    auto ai = db.auto_increment_state().find(name);
    if (ai != db.auto_increment_state().end()) {
      ts.auto_increment_next = ai->second;
    }
    state.tables.emplace(name, std::move(ts));
  }
  for (const auto& vname : db.ViewNames()) {
    const auto* view = db.FindView(vname);
    if (view && *view) state.views[vname] = ToSql(**view);
  }
  state.procedures = db.ProcedureNames();
  state.triggers = db.TriggerNames();
  return state;
}

StateDiff DiffStates(const DatabaseState& a, const DatabaseState& b,
                     const std::string& label_a, const std::string& label_b) {
  StateDiff diff;
  auto add = [&](std::string table, std::string kind, std::string detail) {
    diff.divergences.push_back(
        {std::move(table), std::move(kind), std::move(detail)});
  };

  for (const auto& err : a.integrity_errors) {
    add("", "integrity", label_a + ": " + err);
  }
  for (const auto& err : b.integrity_errors) {
    add("", "integrity", label_b + ": " + err);
  }

  // Table set.
  for (const auto& [name, ts] : a.tables) {
    if (!b.tables.count(name)) {
      add(name, "table-set",
          "table exists in " + label_a + " but not in " + label_b);
    }
  }
  for (const auto& [name, ts] : b.tables) {
    if (!a.tables.count(name)) {
      add(name, "table-set",
          "table exists in " + label_b + " but not in " + label_a);
    }
  }

  // Per-table deep diff, name order = deterministic "first divergence".
  for (const auto& [name, ta] : a.tables) {
    auto bit = b.tables.find(name);
    if (bit == b.tables.end()) continue;
    const TableState& tb = bit->second;

    if (ta.columns != tb.columns) {
      add(name, "schema",
          label_a + ": [" + JoinNames(ta.columns) + "] vs " + label_b + ": [" +
              JoinNames(tb.columns) + "]");
      continue;  // row encodings are incomparable across schemas
    }

    if (ta.rows != tb.rows) {
      // Rows present (or over-counted) on one side only.
      std::vector<std::string> only_a, only_b;
      for (const auto& [key, count] : ta.rows) {
        auto it = tb.rows.find(key);
        size_t other = it == tb.rows.end() ? 0 : it->second;
        if (count > other) {
          std::string d = ta.display.at(key);
          if (count > 1 || other > 0) {
            d += " x" + std::to_string(count) + " vs x" + std::to_string(other);
          }
          only_a.push_back(std::move(d));
        }
      }
      for (const auto& [key, count] : tb.rows) {
        auto it = ta.rows.find(key);
        size_t other = it == ta.rows.end() ? 0 : it->second;
        if (count > other) {
          std::string d = tb.display.at(key);
          if (count > 1 || other > 0) {
            d += " x" + std::to_string(count) + " vs x" + std::to_string(other);
          }
          only_b.push_back(std::move(d));
        }
      }
      std::ostringstream os;
      os << "row multisets differ (" << ta.live_rows << " vs " << tb.live_rows
         << " live rows): only in " << label_a << ": "
         << (only_a.empty() ? "<none>" : only_a.front());
      if (only_a.size() > 1) os << " (+" << only_a.size() - 1 << " more)";
      os << "; only in " << label_b << ": "
         << (only_b.empty() ? "<none>" : only_b.front());
      if (only_b.size() > 1) os << " (+" << only_b.size() - 1 << " more)";
      add(name, "row", os.str());
    }

    if (ta.index_keys != tb.index_keys) {
      for (const auto& [col, keys_a] : ta.index_keys) {
        auto kb = tb.index_keys.find(col);
        if (kb == tb.index_keys.end()) {
          add(name, "index", "index on " + col + " exists only in " + label_a);
          continue;
        }
        if (keys_a != kb->second) {
          add(name, "index",
              "index on " + col + " differs: " + std::to_string(keys_a.size()) +
                  " keys in " + label_a + " vs " +
                  std::to_string(kb->second.size()) + " keys in " + label_b);
        }
      }
      for (const auto& [col, keys_b] : tb.index_keys) {
        if (!ta.index_keys.count(col)) {
          add(name, "index", "index on " + col + " exists only in " + label_b);
        }
      }
    }

    if (ta.auto_increment_next != tb.auto_increment_next) {
      add(name, "auto-increment",
          "next id " + std::to_string(ta.auto_increment_next) + " in " +
              label_a + " vs " + std::to_string(tb.auto_increment_next) +
              " in " + label_b);
    }
  }

  // Catalog objects.
  if (a.views != b.views) {
    for (const auto& [name, def] : a.views) {
      auto it = b.views.find(name);
      if (it == b.views.end()) {
        add(name, "view", "view exists only in " + label_a + ": " + def);
      } else if (it->second != def) {
        add(name, "view",
            label_a + ": " + def + " vs " + label_b + ": " + it->second);
      }
    }
    for (const auto& [name, def] : b.views) {
      if (!a.views.count(name)) {
        add(name, "view", "view exists only in " + label_b + ": " + def);
      }
    }
  }
  if (a.procedures != b.procedures) {
    add("", "catalog",
        "procedures: [" + JoinNames(a.procedures) + "] in " + label_a +
            " vs [" + JoinNames(b.procedures) + "] in " + label_b);
  }
  if (a.triggers != b.triggers) {
    add("", "catalog",
        "triggers: [" + JoinNames(a.triggers) + "] in " + label_a + " vs [" +
            JoinNames(b.triggers) + "] in " + label_b);
  }
  return diff;
}

StateDiff DiffDatabases(const Database& a, const Database& b,
                        const std::string& label_a, const std::string& label_b) {
  return DiffStates(CaptureState(a), CaptureState(b), label_a, label_b);
}

std::string StateDiff::ToString() const {
  if (divergences.empty()) return "states identical";
  std::ostringstream os;
  os << divergences.size() << " divergence(s):\n";
  for (const auto& d : divergences) {
    os << "  [" << d.kind << "] "
       << (d.table.empty() ? std::string("<catalog>") : d.table) << ": "
       << d.detail << "\n";
  }
  return os.str();
}

}  // namespace ultraverse::sql
