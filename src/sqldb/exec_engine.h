#ifndef ULTRAVERSE_SQLDB_EXEC_ENGINE_H_
#define ULTRAVERSE_SQLDB_EXEC_ENGINE_H_

namespace ultraverse::sql {

/// Which statement executor a Database uses for DML/SELECT.
///
///  - kTree: the original AST-walking evaluator (Evaluator/Database::Exec*).
///  - kVm:   the compiled engine (src/sqldb/vm/): statements lower once into
///           register bytecode, cached per (fingerprint, schema version),
///           and run through a batch evaluator with cost-chosen access
///           paths. Statements outside the compilable subset transparently
///           fall back to the tree walker, so the two engines are
///           behaviourally identical (enforced by `fuzz_whatif --exec-diff`).
enum class ExecEngine { kTree, kVm };

/// Process-wide default engine for newly constructed Databases. Tools flip
/// this from a --exec=vm|tree flag; individual databases can still be
/// switched per instance with Database::set_exec_engine.
ExecEngine DefaultExecEngine();
void SetDefaultExecEngine(ExecEngine engine);

}  // namespace ultraverse::sql

#endif  // ULTRAVERSE_SQLDB_EXEC_ENGINE_H_
