#include "sqldb/value.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>

#include "util/string_util.h"

namespace ultraverse::sql {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kNull: return "NULL";
    case DataType::kInt: return "INT";
    case DataType::kDouble: return "DOUBLE";
    case DataType::kString: return "VARCHAR";
    case DataType::kBool: return "BOOLEAN";
  }
  return "?";
}

int64_t Value::AsInt() const {
  switch (type()) {
    case DataType::kInt: return std::get<int64_t>(data_);
    case DataType::kDouble: return int64_t(std::llround(std::get<double>(data_)));
    case DataType::kBool: return std::get<bool>(data_) ? 1 : 0;
    case DataType::kString: {
      const std::string& s = std::get<std::string>(data_);
      return std::strtoll(s.c_str(), nullptr, 10);
    }
    case DataType::kNull: return 0;
  }
  return 0;
}

double Value::AsDouble() const {
  switch (type()) {
    case DataType::kInt: return double(std::get<int64_t>(data_));
    case DataType::kDouble: return std::get<double>(data_);
    case DataType::kBool: return std::get<bool>(data_) ? 1.0 : 0.0;
    case DataType::kString: {
      const std::string& s = std::get<std::string>(data_);
      return std::strtod(s.c_str(), nullptr);
    }
    case DataType::kNull: return 0.0;
  }
  return 0.0;
}

bool Value::AsBool() const {
  switch (type()) {
    case DataType::kBool: return std::get<bool>(data_);
    case DataType::kInt: return std::get<int64_t>(data_) != 0;
    case DataType::kDouble: return std::get<double>(data_) != 0.0;
    case DataType::kString: return !std::get<std::string>(data_).empty();
    case DataType::kNull: return false;
  }
  return false;
}

const std::string& Value::AsStringRef() const {
  static const std::string kEmpty;
  if (type() != DataType::kString) return kEmpty;
  return std::get<std::string>(data_);
}

std::string Value::ToDisplayString() const {
  switch (type()) {
    case DataType::kNull: return "NULL";
    case DataType::kInt: return std::to_string(std::get<int64_t>(data_));
    case DataType::kDouble: {
      char buf[32];
      double d = std::get<double>(data_);
      if (d == std::floor(d) && std::abs(d) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%.1f", d);
      } else {
        std::snprintf(buf, sizeof(buf), "%.10g", d);
      }
      return buf;
    }
    case DataType::kString: return std::get<std::string>(data_);
    case DataType::kBool: return std::get<bool>(data_) ? "TRUE" : "FALSE";
  }
  return "?";
}

std::string Value::ToSqlLiteral() const {
  if (type() == DataType::kString) return SqlQuote(std::get<std::string>(data_));
  return ToDisplayString();
}

int Value::Compare(const Value& other) const {
  DataType a = type(), b = other.type();
  auto rank = [](DataType t) {
    switch (t) {
      case DataType::kNull: return 0;
      case DataType::kBool: return 1;
      case DataType::kInt:
      case DataType::kDouble: return 2;
      case DataType::kString: return 3;
    }
    return 4;
  };
  // Numeric family compares by value across int/double.
  if (rank(a) == 2 && rank(b) == 2) {
    if (a == DataType::kInt && b == DataType::kInt) {
      int64_t x = std::get<int64_t>(data_);
      int64_t y = std::get<int64_t>(other.data_);
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    double x = AsDouble(), y = other.AsDouble();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (rank(a) != rank(b)) return rank(a) < rank(b) ? -1 : 1;
  switch (a) {
    case DataType::kNull: return 0;
    case DataType::kBool: {
      bool x = std::get<bool>(data_), y = std::get<bool>(other.data_);
      return x == y ? 0 : (x ? 1 : -1);
    }
    case DataType::kString: {
      int c = std::get<std::string>(data_).compare(
          std::get<std::string>(other.data_));
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default: return 0;
  }
}

void Value::EncodeTo(std::string* out) const {
  switch (type()) {
    case DataType::kNull:
      out->push_back('N');
      break;
    case DataType::kBool:
      out->push_back('B');
      out->push_back(std::get<bool>(data_) ? '1' : '0');
      break;
    case DataType::kInt:
    case DataType::kDouble: {
      // Numerics encode canonically so 3 and 3.0 hash identically.
      out->push_back('D');
      double d = AsDouble();
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", d);
      out->append(buf);
      break;
    }
    case DataType::kString: {
      const std::string& s = std::get<std::string>(data_);
      out->push_back('S');
      uint32_t n = uint32_t(s.size());
      out->append(reinterpret_cast<const char*>(&n), sizeof(n));
      out->append(s);
      break;
    }
  }
  out->push_back('|');
}

size_t Value::Hash() const {
  return std::hash<std::string>{}(Encode());
}

std::string EncodeRow(const Row& row) {
  std::string out;
  for (const Value& v : row) v.EncodeTo(&out);
  return out;
}

}  // namespace ultraverse::sql
