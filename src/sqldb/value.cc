#include "sqldb/value.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>

#include "util/string_util.h"

namespace ultraverse::sql {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kNull: return "NULL";
    case DataType::kInt: return "INT";
    case DataType::kDouble: return "DOUBLE";
    case DataType::kString: return "VARCHAR";
    case DataType::kBool: return "BOOLEAN";
  }
  return "?";
}

int64_t Value::AsInt() const {
  switch (type()) {
    case DataType::kInt: return std::get<int64_t>(data_);
    case DataType::kDouble: return int64_t(std::llround(std::get<double>(data_)));
    case DataType::kBool: return std::get<bool>(data_) ? 1 : 0;
    case DataType::kString: {
      const std::string& s = std::get<std::string>(data_);
      return std::strtoll(s.c_str(), nullptr, 10);
    }
    case DataType::kNull: return 0;
  }
  return 0;
}

double Value::AsDouble() const {
  switch (type()) {
    case DataType::kInt: return double(std::get<int64_t>(data_));
    case DataType::kDouble: return std::get<double>(data_);
    case DataType::kBool: return std::get<bool>(data_) ? 1.0 : 0.0;
    case DataType::kString: {
      const std::string& s = std::get<std::string>(data_);
      return std::strtod(s.c_str(), nullptr);
    }
    case DataType::kNull: return 0.0;
  }
  return 0.0;
}

bool Value::AsBool() const {
  switch (type()) {
    case DataType::kBool: return std::get<bool>(data_);
    case DataType::kInt: return std::get<int64_t>(data_) != 0;
    case DataType::kDouble: return std::get<double>(data_) != 0.0;
    case DataType::kString: return !std::get<std::string>(data_).empty();
    case DataType::kNull: return false;
  }
  return false;
}

const std::string& Value::AsStringRef() const {
  static const std::string kEmpty;
  if (type() != DataType::kString) return kEmpty;
  return std::get<std::string>(data_);
}

std::string Value::ToDisplayString() const {
  switch (type()) {
    case DataType::kNull: return "NULL";
    case DataType::kInt: return std::to_string(std::get<int64_t>(data_));
    case DataType::kDouble: {
      char buf[32];
      double d = std::get<double>(data_);
      if (d == std::floor(d) && std::abs(d) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%.1f", d);
      } else {
        std::snprintf(buf, sizeof(buf), "%.10g", d);
      }
      return buf;
    }
    case DataType::kString: return std::get<std::string>(data_);
    case DataType::kBool: return std::get<bool>(data_) ? "TRUE" : "FALSE";
  }
  return "?";
}

std::string Value::ToSqlLiteral() const {
  if (type() == DataType::kString) return SqlQuote(std::get<std::string>(data_));
  return ToDisplayString();
}

namespace {

/// Largest magnitude at which every int64 is exactly representable as a
/// double (2^53); beyond it the double grid is sparser than the integers.
constexpr int64_t kExactDoubleInt = int64_t(1) << 53;

/// Exact int64-vs-double comparison. Converting the int to double (the old
/// path) collapses neighbours above 2^53 — e.g. hash-derived ids 2^53 and
/// 2^53+1 compared equal — so compare in integer space instead, with the
/// fractional part of the double breaking ties.
int CompareIntDouble(int64_t x, double y) {
  if (std::isnan(y)) return 1;  // NaN sorts before every number
  // 2^63 is exactly representable; every int64 is strictly below it, and
  // at or above -2^63.
  if (y >= 9223372036854775808.0) return -1;
  if (y < -9223372036854775808.0) return 1;
  double floor_y = std::floor(y);
  int64_t yi = int64_t(floor_y);  // exact: integral and within int64 range
  if (x != yi) return x < yi ? -1 : 1;
  return y > floor_y ? -1 : 0;
}

}  // namespace

int Value::Compare(const Value& other) const {
  DataType a = type(), b = other.type();
  auto rank = [](DataType t) {
    switch (t) {
      case DataType::kNull: return 0;
      case DataType::kBool: return 1;
      case DataType::kInt:
      case DataType::kDouble: return 2;
      case DataType::kString: return 3;
    }
    return 4;
  };
  // Numeric family compares by value across int/double.
  if (rank(a) == 2 && rank(b) == 2) {
    if (a == DataType::kInt && b == DataType::kInt) {
      int64_t x = std::get<int64_t>(data_);
      int64_t y = std::get<int64_t>(other.data_);
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    if (a == DataType::kInt) {
      return CompareIntDouble(std::get<int64_t>(data_),
                              std::get<double>(other.data_));
    }
    if (b == DataType::kInt) {
      return -CompareIntDouble(std::get<int64_t>(other.data_),
                               std::get<double>(data_));
    }
    double x = AsDouble(), y = other.AsDouble();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (rank(a) != rank(b)) return rank(a) < rank(b) ? -1 : 1;
  switch (a) {
    case DataType::kNull: return 0;
    case DataType::kBool: {
      bool x = std::get<bool>(data_), y = std::get<bool>(other.data_);
      return x == y ? 0 : (x ? 1 : -1);
    }
    case DataType::kString: {
      int c = std::get<std::string>(data_).compare(
          std::get<std::string>(other.data_));
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default: return 0;
  }
}

void Value::EncodeTo(std::string* out) const {
  switch (type()) {
    case DataType::kNull:
      out->push_back('N');
      break;
    case DataType::kBool:
      out->push_back('B');
      out->push_back(std::get<bool>(data_) ? '1' : '0');
      break;
    case DataType::kInt:
    case DataType::kDouble: {
      // Numerics encode canonically so 3 and 3.0 hash identically. Values
      // whose magnitude exceeds 2^53 take an exact integer encoding: the
      // %.17g double form collapses neighbouring wide ints (2^53 and
      // 2^53+1 would encode — and therefore hash — identically, breaking
      // the Hash-jumper digests and RI-key maps for hash-derived ids).
      // Integral doubles in that range take the same integer form so
      // Encode stays consistent with Equals (Int(2^60) == Double(2^60)).
      if (type() == DataType::kInt) {
        int64_t v = std::get<int64_t>(data_);
        if (v > kExactDoubleInt || v < -kExactDoubleInt) {
          out->push_back('I');
          out->append(std::to_string(v));
          break;
        }
      } else {
        double d = std::get<double>(data_);
        if ((d > double(kExactDoubleInt) || d < -double(kExactDoubleInt)) &&
            d == std::floor(d) && d >= -9223372036854775808.0 &&
            d < 9223372036854775808.0) {
          out->push_back('I');
          out->append(std::to_string(int64_t(d)));
          break;
        }
      }
      out->push_back('D');
      double d = AsDouble();
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", d);
      out->append(buf);
      break;
    }
    case DataType::kString: {
      const std::string& s = std::get<std::string>(data_);
      out->push_back('S');
      uint32_t n = uint32_t(s.size());
      out->append(reinterpret_cast<const char*>(&n), sizeof(n));
      out->append(s);
      break;
    }
  }
  out->push_back('|');
}

bool Value::Decode(const std::string& enc, Value* out) {
  if (enc.empty()) return false;
  std::string body = enc;
  if (body.back() == '|') body.pop_back();
  if (body.empty()) return false;
  const char tag = body[0];
  const std::string payload = body.substr(1);
  switch (tag) {
    case 'N':
      if (!payload.empty()) return false;
      *out = Value::Null();
      return true;
    case 'B':
      if (payload != "0" && payload != "1") return false;
      *out = Value::Bool(payload == "1");
      return true;
    case 'I': {
      if (payload.empty()) return false;
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(payload.c_str(), &end, 10);
      if (errno != 0 || end != payload.c_str() + payload.size()) return false;
      *out = Value::Int(int64_t(v));
      return true;
    }
    case 'D': {
      if (payload.empty()) return false;
      errno = 0;
      char* end = nullptr;
      double d = std::strtod(payload.c_str(), &end);
      if (errno != 0 || end != payload.c_str() + payload.size()) return false;
      *out = Value::Double(d);
      return true;
    }
    case 'S': {
      if (payload.size() < sizeof(uint32_t)) return false;
      uint32_t n;
      std::memcpy(&n, payload.data(), sizeof(n));
      if (payload.size() != sizeof(n) + n) return false;
      *out = Value::String(payload.substr(sizeof(n)));
      return true;
    }
    default:
      return false;
  }
}

size_t Value::Hash() const {
  return std::hash<std::string>{}(Encode());
}

std::string EncodeRow(const Row& row) {
  std::string out;
  for (const Value& v : row) v.EncodeTo(&out);
  return out;
}

}  // namespace ultraverse::sql
