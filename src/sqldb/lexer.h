#ifndef ULTRAVERSE_SQLDB_LEXER_H_
#define ULTRAVERSE_SQLDB_LEXER_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace ultraverse::sql {

enum class TokenType {
  kIdentifier,  // also keywords; parser matches case-insensitively
  kNumber,      // integer or decimal literal
  kString,      // single-quoted literal, unescaped
  kSymbol,      // punctuation / operator, text holds the exact symbol
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // identifier spelled as written; symbol text; etc.
  bool is_double = false;  // for kNumber: literal contained '.' or exponent
  size_t offset = 0;  // byte offset in the input, for error messages
};

/// Tokenizes SQL text. Recognized symbols: ( ) , . ; * + - / % = != <> < <=
/// > >= and quoted strings with '' escaping. Comments (-- and /* */) are
/// skipped.
class Lexer {
 public:
  static Result<std::vector<Token>> Tokenize(const std::string& input);
};

}  // namespace ultraverse::sql

#endif  // ULTRAVERSE_SQLDB_LEXER_H_
