#ifndef ULTRAVERSE_SQLDB_ACCESS_PATH_H_
#define ULTRAVERSE_SQLDB_ACCESS_PATH_H_

#include <functional>
#include <optional>
#include <vector>

#include "sqldb/ast.h"
#include "sqldb/table.h"

namespace ultraverse::sql {

/// One `col = <row-free expr>` conjunct usable as a hash-index probe.
struct EqConjunct {
  int column = -1;            // schema column index
  const Expr* key = nullptr;  // the non-column side of the equality
};

/// Which equality conjuncts CollectEqConjuncts keeps.
enum class EqCollect {
  /// Columns with a real (non-advisory) index — the tree walker's view.
  /// Advisory indexes are excluded so adaptive indexing never changes the
  /// tree walker's access-path decisions.
  kIndexed,
  /// Every resolvable column, indexed or not — the VM compiler's view.
  /// Plans stay index-agnostic; the VM filters candidates against the
  /// live index set at execution time, which is what lets an advisory
  /// index built mid-history benefit already-cached plans.
  kAllColumns,
};

/// The cost-based choice: probe `column`'s hash index with `key`, or scan.
struct AccessChoice {
  int column = -1;
  Value key;
};

/// Walks the AND-spine of `where` and returns every equality conjunct of
/// the form `<indexed column> = <expr>` (either operand order), in the
/// tree walker's historical rightmost-first walk order. Conjuncts whose
/// key expression contains a nondeterministic builtin are excluded so that
/// access-path probing never consumes from the nondet record/replay stream.
///
/// Both execution engines collect from this single routine, which is what
/// makes their index-vs-scan decisions identical by construction — the
/// encode-based index probe and the coercing CompareSql predicate can
/// legitimately disagree on matches, so the engines must always take the
/// same path.
std::vector<EqConjunct> CollectEqConjuncts(
    const TableSchema& schema, const Table& table, const Expr* where,
    EqCollect collect = EqCollect::kIndexed);

/// Evaluates a candidate key expression without a row in scope; nullopt
/// means "skip this candidate" (the tree walker swallows such errors).
using KeyEval = std::function<std::optional<Value>(const Expr&)>;

/// Costs each candidate by its live index-entry count and returns the
/// cheapest probe when it beats a full scan (strictly fewer entries than
/// live rows; ties between candidates keep the first in walk order).
/// Returns nullopt when scanning wins or no candidate key evaluates.
std::optional<AccessChoice> ChooseAccess(
    const Table& table, const std::vector<EqConjunct>& candidates,
    const KeyEval& eval_key);

/// True when the expression tree calls a nondeterministic SQL builtin.
bool ContainsNondetBuiltin(const Expr& e);

/// Typed proof that an encode-based index probe of `column` with `key`
/// returns exactly the rows the coercing CompareSql predicate would
/// accept, given every value the column has ever held (ColumnTypeMask is
/// a monotone superset of what is stored now):
///
///  - Int key with |key| < 2^53 against an {Int,Null}-only column: both
///    sides are integers exactly representable in double, so the numeric
///    comparison CompareSql performs agrees with encoded equality, and a
///    NULL cell matches neither way.
///  - String key against a {String,Null}-only column: CompareSql compares
///    strings byte-wise, which is exactly what the encoded index key does.
///
/// Anything else (Double/Bool/Null keys, mixed-type columns, huge ints
/// where double rounding could alias distinct values) must scan. The VM
/// requires this proof before probing where the tree walker would scan
/// (every SELECT, and any write probing an advisory index).
bool IndexProbeProvablyExact(const Table& table, int column,
                             const Value& key);

}  // namespace ultraverse::sql

#endif  // ULTRAVERSE_SQLDB_ACCESS_PATH_H_
