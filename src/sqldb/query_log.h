#ifndef ULTRAVERSE_SQLDB_QUERY_LOG_H_
#define ULTRAVERSE_SQLDB_QUERY_LOG_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "sqldb/ast.h"
#include "sqldb/database.h"
#include "util/sha256.h"
#include "util/status.h"

namespace ultraverse::sql {

/// One committed top-level query (stands in for a MySQL binary-log event).
struct LogEntry {
  uint64_t index = 0;     // commit order, 1-based
  std::string sql;        // statement text as committed
  StatementPtr stmt;      // parsed form (shared, immutable after commit)
  NondetRecord nondet;    // recorded nondeterminism for faithful replay
  int64_t timestamp = 0;  // logical commit time

  /// Application-level transaction tag (from the augmented application's
  /// Ultraverse_log call); empty for raw SQL traffic.
  std::string app_txn;
  std::vector<Value> app_args;

  /// Application-level blackbox/nondeterministic API results observed when
  /// the transaction originally ran, keyed by deterministic symbol name
  /// (e.g. "bb_rand_1", "bb_http_send_1.code"). Replays of the original
  /// application code re-inject these (§4.4).
  std::map<std::string, Value> app_blackbox;

  /// Values every procedure variable held while this entry originally
  /// executed (recorded when the transpiled procedure ran). Row-wise
  /// analysis concretizes SELECT-INTO-derived RI values from these (§4.3).
  std::map<std::string, std::vector<Value>> captured_vars;

  /// Hash-jumper: post-commit table hashes of the tables this query
  /// modified (§4.5). Logged asynchronously by the analyzer.
  std::map<std::string, Digest256> table_hashes;
};

/// Append-only committed-query log. Entries live in a deque so references
/// to committed entries stay valid while regular traffic appends new ones
/// (a what-if replay reads old entries concurrently, §4.4).
class QueryLog {
 public:
  /// Appends and assigns the next commit index (returned).
  uint64_t Append(LogEntry entry);

  const std::deque<LogEntry>& entries() const { return entries_; }
  std::deque<LogEntry>& mutable_entries() {
    BumpEpoch();
    return entries_;
  }
  size_t size() const { return entries_.size(); }
  const LogEntry& at(uint64_t index) const { return entries_[index - 1]; }
  LogEntry& at_mutable(uint64_t index) {
    BumpEpoch();
    return entries_[index - 1];
  }
  uint64_t last_index() const { return entries_.size(); }

  /// Monotone history epoch (DESIGN.md §14): advances on every commit
  /// (Append), on every mutable access to committed entries, and — via
  /// BumpEpoch from the facade — on every what-if publish that rewrites
  /// history in place. Two equal epochs imply bit-identical history, so
  /// every derived cache (hash timelines, what-if results, analysis
  /// snapshots) keys on it instead of on log *size*, which an equal-length
  /// in-place rewrite leaves unchanged. Safe to read concurrently with an
  /// appending writer.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  void BumpEpoch() { epoch_.fetch_add(1, std::memory_order_acq_rel); }

  /// Byte size a MySQL-style binary log would use: statement text plus a
  /// fixed per-event header (MySQL binlog v4 events carry a 19-byte common
  /// header plus query-event metadata; we charge 60 bytes, matching the
  /// order of magnitude of Table 7(b)'s MySQL column).
  size_t MySqlStyleBytes() const;

  /// Durable-WAL recovery: clears this log and rebuilds it from the intact
  /// prefix of the WAL at `path` (sqldb/wal). Statements round-trip through
  /// the regular parser; the torn tail is truncated on disk. Returns the
  /// number of entries recovered. Implemented in wal/wal.cc.
  Result<size_t> Recover(const std::string& path);

 private:
  std::deque<LogEntry> entries_;
  std::atomic<uint64_t> epoch_{0};
};

}  // namespace ultraverse::sql

#endif  // ULTRAVERSE_SQLDB_QUERY_LOG_H_
