#include "sqldb/database.h"

#include <algorithm>
#include <array>
#include <atomic>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sqldb/evaluator.h"
#include "sqldb/parser.h"
#include "sqldb/vm/plan_cache.h"
#include "sqldb/vm/vm.h"
#include "util/string_util.h"

namespace ultraverse::sql {

namespace {
constexpr int kMaxTriggerDepth = 8;

/// Compiled execution is the default; the tree walker stays reachable via
/// SetDefaultExecEngine / --exec=tree and remains the per-statement
/// fallback for anything outside the compilable subset. The differential
/// gate (`fuzz_whatif --exec-diff`, `ctest -L vm`) keeps the two aligned.
std::atomic<int> g_default_engine{int(ExecEngine::kVm)};

/// Process-global schema epoch. Every bump — in any Database — takes a
/// fresh value, so two CoW clones that share one plan cache can never
/// reconverge onto the same (fingerprint, version) key after divergent DDL.
std::atomic<uint64_t> g_schema_epoch{0};

uint64_t NextSchemaEpoch() {
  return g_schema_epoch.fetch_add(1, std::memory_order_relaxed) + 1;
}
}  // namespace

ExecEngine DefaultExecEngine() {
  return ExecEngine(g_default_engine.load(std::memory_order_relaxed));
}

void SetDefaultExecEngine(ExecEngine engine) {
  g_default_engine.store(int(engine), std::memory_order_relaxed);
}

Database::Database()
    : rng_(0xDBDB),
      exec_engine_(DefaultExecEngine()),
      schema_version_(NextSchemaEpoch()),
      plan_cache_(std::make_shared<vm::PlanCache>()) {}

Database::~Database() = default;

namespace {

/// Statement kinds bucketed for execution metrics: per-kind call counts are
/// always live; per-kind latency histograms record only while obs timing is
/// enabled (ScopedLatency's disabled path reads no clock).
enum ExecKindLabel {
  kExecSelect = 0,
  kExecInsert,
  kExecUpdate,
  kExecDelete,
  kExecCall,
  kExecTransaction,
  kExecDdl,
  kExecOther,
  kExecLabelCount,
};

ExecKindLabel ExecLabelFor(StatementKind kind) {
  switch (kind) {
    case StatementKind::kSelect: return kExecSelect;
    case StatementKind::kInsert: return kExecInsert;
    case StatementKind::kUpdate: return kExecUpdate;
    case StatementKind::kDelete: return kExecDelete;
    case StatementKind::kCall: return kExecCall;
    case StatementKind::kTransaction: return kExecTransaction;
    case StatementKind::kCreateTable:
    case StatementKind::kAlterTable:
    case StatementKind::kDropTable:
    case StatementKind::kTruncateTable:
    case StatementKind::kCreateView:
    case StatementKind::kDropView:
    case StatementKind::kCreateIndex:
    case StatementKind::kCreateProcedure:
    case StatementKind::kDropProcedure:
    case StatementKind::kCreateTrigger:
    case StatementKind::kDropTrigger:
      return kExecDdl;
    default:
      return kExecOther;
  }
}

struct ExecMetrics {
  obs::Counter* count;
  obs::Histogram* latency;
};

const ExecMetrics& ExecMetricsFor(StatementKind kind) {
  static const std::array<ExecMetrics, kExecLabelCount> metrics = [] {
    const char* labels[kExecLabelCount] = {
        "select", "insert", "update", "delete",
        "call",   "txn",    "ddl",    "other"};
    std::array<ExecMetrics, kExecLabelCount> m{};
    obs::Registry& reg = obs::Registry::Global();
    for (int i = 0; i < kExecLabelCount; ++i) {
      m[i].count =
          reg.counter(std::string("uv.sqldb.exec.count.") + labels[i]);
      m[i].latency =
          reg.histogram(std::string("uv.sqldb.exec.latency_us.") + labels[i]);
    }
    return m;
  }();
  return metrics[ExecLabelFor(kind)];
}

std::vector<std::string> SchemaColumnNames(const TableSchema& schema) {
  std::vector<std::string> names;
  names.reserve(schema.columns.size());
  for (const auto& c : schema.columns) names.push_back(c.name);
  return names;
}
}  // namespace

void ExecContext::SetVar(const std::string& name, Value v) {
  if (var_capture_ && var_capture_->size() < 256) {
    auto& vals = (*var_capture_)[name];
    if (vals.size() < 16) vals.push_back(v);
  }
  for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
    auto found = it->find(name);
    if (found != it->end()) {
      found->second = std::move(v);
      return;
    }
  }
  scopes_.back()[name] = std::move(v);
}

const Value* ExecContext::FindVar(const std::string& name) const {
  for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
    auto found = it->find(name);
    if (found != it->end()) return &found->second;
  }
  return nullptr;
}

Table* Database::FindTable(const std::string& name) {
  if (read_base_ == nullptr) {
    auto it = tables_.find(name);
    return it == tables_.end() ? nullptr : it->second.get();
  }
  // Selectively staged database: fast shared-lock lookup first, then fault
  // the table in from the live base as a CoW clone on first access.
  {
    std::shared_lock<std::shared_mutex> rl(catalog_mu_);
    auto it = tables_.find(name);
    if (it != tables_.end()) return it->second.get();
  }
  std::unique_lock<std::shared_mutex> wl(catalog_mu_);
  auto it = tables_.find(name);
  if (it != tables_.end()) return it->second.get();
  if (dropped_.count(name)) {
    // A retroactive DROP tombstone keeps the fallback from resurrecting
    // the table (§4.4); count the block so staging behaviour is visible.
    static obs::Counter* const tombstones =
        obs::Registry::Global().counter("uv.staging.tombstone_block");
    tombstones->Inc();
    return nullptr;
  }
  obs::TraceSpan span("staging.fault_in", {{"table", name.c_str()}});
  std::unique_ptr<Table> staged;
  bool base_drifted = false;
  {
    // Hold the live database's mutex *shared* during the clone so a writer
    // cannot be mid-materialization of the pages we are sharing; other
    // staged databases fault in concurrently under the same shared lock.
    std::shared_lock<std::shared_mutex> base_lock;
    if (read_base_mu_) {
      base_lock = std::shared_lock<std::shared_mutex>(*read_base_mu_);
    }
    base_drifted =
        read_base_->schema_version() != fallback_base_version_;
    const Table* src = read_base_->FindTable(name);
    if (!src) return nullptr;
    staged = src->Clone();
  }
  // Lazy CoW fault-in (§4.4): a replayed query strayed outside the staged
  // table set and pulled the table in from the live database.
  static obs::Counter* const fault_ins =
      obs::Registry::Global().counter("uv.staging.fault_in");
  fault_ins->Inc();
  Table* result = staged.get();
  tables_[name] = std::move(staged);
  if (base_drifted) {
    // The base ran DDL since SetReadFallback, so the table we just pulled
    // in may not match the schema our version describes — and compiled
    // plans keyed on the inherited version could read/write it at the
    // wrong layout. Take a fresh epoch. While the base is *undrifted* the
    // inherited version still describes everything faultable, so staying
    // on it keeps the base's warm plans valid here (no spurious misses).
    schema_version_.store(NextSchemaEpoch(), std::memory_order_relaxed);
  }
  return result;
}

const Table* Database::FindTable(const std::string& name) const {
  if (read_base_ == nullptr) {
    auto it = tables_.find(name);
    return it == tables_.end() ? nullptr : it->second.get();
  }
  {
    std::shared_lock<std::shared_mutex> rl(catalog_mu_);
    auto it = tables_.find(name);
    if (it != tables_.end()) return it->second.get();
    if (dropped_.count(name)) return nullptr;
  }
  // Const access cannot fault in: read through to the base directly.
  return read_base_->FindTable(name);
}

const std::shared_ptr<SelectStatement>* Database::FindView(
    const std::string& name) const {
  auto it = views_.find(name);
  return it == views_.end() ? nullptr : &it->second;
}

const CreateProcedureStatement* Database::FindProcedure(
    const std::string& name) const {
  auto it = procedures_.find(name);
  return it == procedures_.end() ? nullptr : &it->second;
}

const CreateTriggerStatement* Database::FindTrigger(
    const std::string& name) const {
  auto it = triggers_.find(name);
  return it == triggers_.end() ? nullptr : &it->second;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) {
    (void)table;
    names.push_back(name);
  }
  return names;
}

std::vector<std::string> Database::ProcedureNames() const {
  std::vector<std::string> names;
  names.reserve(procedures_.size());
  for (const auto& [name, proc] : procedures_) {
    (void)proc;
    names.push_back(name);
  }
  return names;
}

Result<ExecResult> Database::ExecuteSql(const std::string& sql,
                                        uint64_t commit_index) {
  UV_ASSIGN_OR_RETURN(StatementPtr stmt, Parser::ParseStatement(sql));
  ExecContext ctx;
  return Execute(*stmt, commit_index, &ctx);
}

Result<ExecResult> Database::Execute(const Statement& stmt,
                                     uint64_t commit_index, ExecContext* ctx) {
  const ExecMetrics& em = ExecMetricsFor(stmt.kind);
  em.count->Add();
  obs::ScopedLatency latency(em.latency);
  if (ExecLabelFor(stmt.kind) == kExecDdl) {
    // Any DDL (including DDL nested inside procedures, triggers, and
    // transactions, which re-enter Execute) invalidates compiled plans.
    // Bumping before execution keeps even a failed DDL conservative.
    schema_version_.store(NextSchemaEpoch(), std::memory_order_relaxed);
  }
  if (exec_engine_ == ExecEngine::kVm) {
    switch (stmt.kind) {
      case StatementKind::kInsert:
      case StatementKind::kUpdate:
      case StatementKind::kDelete:
      case StatementKind::kSelect: {
        // Compiled path; nullopt means the statement is outside the VM's
        // subset and falls through to the tree walker below.
        std::optional<Result<ExecResult>> vm_result =
            vm::Executor::TryExecute(this, stmt, commit_index, ctx);
        if (vm_result) return std::move(*vm_result);
        break;
      }
      default:
        break;
    }
  }
  switch (stmt.kind) {
    case StatementKind::kCreateTable:
      return ExecCreateTable(stmt.create_table);
    case StatementKind::kAlterTable:
      return ExecAlterTable(stmt.alter_table);
    case StatementKind::kDropTable:
      return ExecDropTable(stmt);
    case StatementKind::kTruncateTable:
      return ExecTruncate(stmt.truncate_table);
    case StatementKind::kCreateView:
      return ExecCreateView(stmt.create_view);
    case StatementKind::kDropView: {
      if (!views_.erase(stmt.drop_name) && !stmt.drop_if_exists) {
        return Status::NotFound("view " + stmt.drop_name);
      }
      return ExecResult{};
    }
    case StatementKind::kCreateIndex:
      return ExecCreateIndex(stmt.create_index);
    case StatementKind::kCreateProcedure: {
      procedures_[stmt.create_procedure.name] = stmt.create_procedure;
      return ExecResult{};
    }
    case StatementKind::kDropProcedure: {
      if (!procedures_.erase(stmt.drop_name) && !stmt.drop_if_exists) {
        return Status::NotFound("procedure " + stmt.drop_name);
      }
      return ExecResult{};
    }
    case StatementKind::kCreateTrigger: {
      if (!FindTable(stmt.create_trigger.table)) {
        return Status::NotFound("trigger table " + stmt.create_trigger.table);
      }
      triggers_[stmt.create_trigger.name] = stmt.create_trigger;
      return ExecResult{};
    }
    case StatementKind::kDropTrigger: {
      if (!triggers_.erase(stmt.drop_name) && !stmt.drop_if_exists) {
        return Status::NotFound("trigger " + stmt.drop_name);
      }
      return ExecResult{};
    }
    case StatementKind::kInsert:
      return ExecInsert(stmt.insert, commit_index, ctx);
    case StatementKind::kUpdate:
      return ExecUpdate(stmt.update, commit_index, ctx);
    case StatementKind::kDelete:
      return ExecDelete(stmt.del, commit_index, ctx);
    case StatementKind::kSelect: {
      Evaluator ev(this, ctx, commit_index);
      return ev.EvalSelect(*stmt.select, nullptr);
    }
    case StatementKind::kCall:
      return ExecCall(stmt.call, commit_index, ctx);
    case StatementKind::kTransaction: {
      // Atomic block: on any failure, undo this commit index entirely.
      for (const auto& inner : stmt.transaction.statements) {
        Result<ExecResult> r = Execute(*inner, commit_index, ctx);
        if (!r.ok()) {
          RollbackToIndex(commit_index - 1);
          return r.status();
        }
      }
      return ExecResult{};
    }
    case StatementKind::kDeclareVar: {
      Value init;
      if (stmt.declare_var.init) {
        Evaluator ev(this, ctx, commit_index);
        UV_ASSIGN_OR_RETURN(init, ev.Eval(*stmt.declare_var.init, nullptr));
      }
      ctx->DeclareVar(stmt.declare_var.name, std::move(init));
      return ExecResult{};
    }
    case StatementKind::kSetVar: {
      Evaluator ev(this, ctx, commit_index);
      UV_ASSIGN_OR_RETURN(Value v, ev.Eval(*stmt.set_var.value, nullptr));
      ctx->SetVar(stmt.set_var.name, std::move(v));
      return ExecResult{};
    }
    case StatementKind::kIf: {
      Evaluator ev(this, ctx, commit_index);
      for (const auto& branch : stmt.if_stmt.branches) {
        bool take = true;
        if (branch.condition) {
          UV_ASSIGN_OR_RETURN(Value c, ev.Eval(*branch.condition, nullptr));
          take = !c.is_null() && c.AsBool();
        }
        if (take) {
          UV_RETURN_NOT_OK(ExecBlock(branch.body, commit_index, ctx));
          break;
        }
      }
      return ExecResult{};
    }
    case StatementKind::kWhile: {
      Evaluator ev(this, ctx, commit_index);
      int64_t guard = 0;
      for (;;) {
        UV_ASSIGN_OR_RETURN(Value c, ev.Eval(*stmt.while_stmt.condition,
                                             nullptr));
        if (c.is_null() || !c.AsBool()) break;
        UV_RETURN_NOT_OK(ExecBlock(stmt.while_stmt.body, commit_index, ctx));
        if (ctx->leave_requested) break;
        if (++guard > 10'000'000) {
          return Status::Internal("WHILE loop exceeded iteration guard");
        }
      }
      return ExecResult{};
    }
    case StatementKind::kLeave:
      ctx->leave_requested = true;
      return ExecResult{};
    case StatementKind::kSignal:
      return Status::Signal(stmt.signal.sqlstate +
                            (stmt.signal.message.empty()
                                 ? ""
                                 : ": " + stmt.signal.message));
  }
  return Status::Internal("unhandled statement kind");
}

Result<ExecResult> Database::ExecCreateTable(const CreateTableStatement& stmt) {
  if (tables_.count(stmt.schema.name)) {
    if (stmt.if_not_exists) return ExecResult{};
    return Status::AlreadyExists("table " + stmt.schema.name);
  }
  auto table = std::make_unique<Table>(stmt.schema);
  // Primary keys are always hash-indexed for point lookups.
  int pk = stmt.schema.PrimaryKeyIndex();
  if (pk >= 0) UV_RETURN_NOT_OK(table->CreateIndex(pk));
  tables_[stmt.schema.name] = std::move(table);
  auto_increment_[stmt.schema.name] = 1;
  return ExecResult{};
}

Result<ExecResult> Database::ExecAlterTable(const AlterTableStatement& stmt) {
  Table* table = FindTable(stmt.table);
  if (!table) return Status::NotFound("table " + stmt.table);
  if (stmt.action == AlterAction::kAddColumn) {
    // Widen every row with NULL; rebuilding derived state keeps the hash
    // and indexes in sync with the restructured rows.
    TableSchema schema = table->schema();
    if (schema.ColumnIndex(stmt.add_column.name) >= 0) {
      return Status::AlreadyExists("column " + stmt.add_column.name);
    }
    schema.columns.push_back(stmt.add_column);
    auto new_table = std::make_unique<Table>(schema);
    int pk = schema.PrimaryKeyIndex();
    if (pk >= 0) UV_RETURN_NOT_OK(new_table->CreateIndex(pk));
    table->Scan([&](RowId, const Row& row) {
      Row wide = row;
      wide.push_back(Value::Null());
      (void)new_table->Insert(std::move(wide), 0);
      return true;
    });
    tables_[stmt.table] = std::move(new_table);
    return ExecResult{};
  }
  // Drop column.
  TableSchema schema = table->schema();
  int drop = schema.ColumnIndex(stmt.drop_column);
  if (drop < 0) return Status::NotFound("column " + stmt.drop_column);
  schema.columns.erase(schema.columns.begin() + drop);
  auto new_table = std::make_unique<Table>(schema);
  int pk = schema.PrimaryKeyIndex();
  if (pk >= 0) UV_RETURN_NOT_OK(new_table->CreateIndex(pk));
  table->Scan([&](RowId, const Row& row) {
    Row narrow = row;
    narrow.erase(narrow.begin() + drop);
    (void)new_table->Insert(std::move(narrow), 0);
    return true;
  });
  tables_[stmt.table] = std::move(new_table);
  return ExecResult{};
}

Result<ExecResult> Database::ExecDropTable(const Statement& stmt) {
  if (read_base_ != nullptr) {
    // Staged database: a local DROP must also mask the live base's copy so
    // the fallback cannot resurrect the table.
    std::unique_lock<std::shared_mutex> wl(catalog_mu_);
    bool existed = tables_.erase(stmt.drop_name) > 0 ||
                   (!dropped_.count(stmt.drop_name) &&
                    read_base_->FindTable(stmt.drop_name) != nullptr);
    dropped_.insert(stmt.drop_name);
    auto_increment_.erase(stmt.drop_name);
    if (!existed && !stmt.drop_if_exists) {
      return Status::NotFound("table " + stmt.drop_name);
    }
    return ExecResult{};
  }
  if (!tables_.erase(stmt.drop_name) && !stmt.drop_if_exists) {
    return Status::NotFound("table " + stmt.drop_name);
  }
  auto_increment_.erase(stmt.drop_name);
  return ExecResult{};
}

Result<ExecResult> Database::ExecTruncate(const std::string& name) {
  Table* table = FindTable(name);
  if (!table) return Status::NotFound("table " + name);
  auto fresh = std::make_unique<Table>(table->schema());
  int pk = fresh->schema().PrimaryKeyIndex();
  if (pk >= 0) UV_RETURN_NOT_OK(fresh->CreateIndex(pk));
  tables_[name] = std::move(fresh);
  return ExecResult{};
}

Result<ExecResult> Database::ExecCreateView(const CreateViewStatement& stmt) {
  if (views_.count(stmt.name) && !stmt.or_replace) {
    return Status::AlreadyExists("view " + stmt.name);
  }
  views_[stmt.name] = stmt.select;
  return ExecResult{};
}

Result<ExecResult> Database::ExecCreateIndex(const CreateIndexStatement& stmt) {
  Table* table = FindTable(stmt.table);
  if (!table) return Status::NotFound("table " + stmt.table);
  for (const auto& col : stmt.columns) {
    int idx = table->schema().ColumnIndex(col);
    if (idx < 0) return Status::NotFound("column " + col);
    UV_RETURN_NOT_OK(table->CreateIndex(idx));
  }
  return ExecResult{};
}

Result<std::string> Database::ResolveWritableTarget(const std::string& name,
                                                    ExprPtr* extra_where) const {
  if (FindTable(name) != nullptr) return name;
  auto it = views_.find(name);
  if (it == views_.end()) return Status::NotFound("table or view " + name);
  const SelectStatement& sel = *it->second;
  // Updatable view: single table, no joins/aggregates/group/limit, and all
  // items plain column refs or star (§4.2 "Updatable VIEWs").
  if (sel.from_table.empty() || !sel.joins.empty() || !sel.group_by.empty() ||
      sel.limit >= 0) {
    return Status::Unsupported("view " + name + " is not updatable");
  }
  for (const auto& item : sel.items) {
    if (item.expr->kind != ExprKind::kColumnRef &&
        item.expr->kind != ExprKind::kStar) {
      return Status::Unsupported("view " + name + " is not updatable");
    }
  }
  if (extra_where) *extra_where = sel.where;
  if (FindTable(sel.from_table) == nullptr) {
    return Status::Unsupported("view-on-view writes are not supported");
  }
  return sel.from_table;
}

Result<ExecResult> Database::ExecInsert(const InsertStatement& stmt,
                                        uint64_t commit_index,
                                        ExecContext* ctx) {
  ExprPtr view_where;
  UV_ASSIGN_OR_RETURN(std::string target,
                      ResolveWritableTarget(stmt.table, &view_where));
  Table* table = FindTable(target);
  const TableSchema& schema = table->schema();
  Evaluator ev(this, ctx, commit_index);

  // Column list: explicit or full schema order.
  std::vector<int> col_indexes;
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < schema.columns.size(); ++i) {
      col_indexes.push_back(int(i));
    }
  } else {
    for (const auto& col : stmt.columns) {
      int idx = schema.ColumnIndex(col);
      if (idx < 0) {
        return Status::NotFound("column " + col + " in " + target);
      }
      col_indexes.push_back(idx);
    }
  }

  std::vector<Row> value_rows;
  if (stmt.select) {
    UV_ASSIGN_OR_RETURN(ExecResult sub, ev.EvalSelect(*stmt.select, nullptr));
    value_rows = std::move(sub.rows);
  } else {
    for (const auto& exprs : stmt.rows) {
      Row r;
      for (const auto& e : exprs) {
        UV_ASSIGN_OR_RETURN(Value v, ev.Eval(*e, nullptr));
        r.push_back(std::move(v));
      }
      value_rows.push_back(std::move(r));
    }
  }

  ExecResult result;
  for (Row& src : value_rows) {
    if (src.size() != col_indexes.size()) {
      return Status::InvalidArgument("INSERT value count mismatch");
    }
    Row row(schema.columns.size(), Value::Null());
    for (size_t i = 0; i < col_indexes.size(); ++i) {
      row[col_indexes[i]] = std::move(src[i]);
    }
    // AUTO_INCREMENT: fill a missing/NULL key; record/replay the id (§4.4).
    for (size_t i = 0; i < schema.columns.size(); ++i) {
      if (schema.columns[i].auto_increment && row[i].is_null()) {
        int64_t id = ctx->NextAutoIncId([&] {
          int64_t& next = auto_increment_[target];
          return next++;
        });
        int64_t& next = auto_increment_[target];
        if (id >= next) next = id + 1;
        row[i] = Value::Int(id);
      }
    }
    for (size_t i = 0; i < schema.columns.size(); ++i) {
      if (schema.columns[i].not_null && row[i].is_null()) {
        return Status::ConstraintViolation("NOT NULL column " +
                                           schema.columns[i].name);
      }
    }
    UV_ASSIGN_OR_RETURN(RowId id, table->Insert(std::move(row), commit_index));
    ++result.affected;
    const Row& stored = table->GetRow(id);
    UV_RETURN_NOT_OK(FireTriggers(target, TriggerEvent::kInsert, nullptr,
                                  &stored, commit_index, ctx));
  }
  return result;
}

Result<ExecResult> Database::ExecUpdate(const UpdateStatement& stmt,
                                        uint64_t commit_index,
                                        ExecContext* ctx) {
  ExprPtr view_where;
  UV_ASSIGN_OR_RETURN(std::string target,
                      ResolveWritableTarget(stmt.table, &view_where));
  Table* table = FindTable(target);
  const TableSchema& schema = table->schema();
  Evaluator ev(this, ctx, commit_index);

  ExprPtr where = stmt.where;
  if (view_where) {
    where = where ? Expr::MakeBinary(BinaryOp::kAnd, view_where, where)
                  : view_where;
  }
  UV_ASSIGN_OR_RETURN(std::vector<RowId> ids,
                      ev.MatchRows(table, where, nullptr));

  std::vector<std::string> columns = SchemaColumnNames(schema);
  ExecResult result;
  for (RowId id : ids) {
    if (!table->IsLive(id)) continue;
    Row old_row = table->GetRow(id);
    RowScope scope;
    scope.bindings.push_back({schema.name, &columns, &old_row});
    Row new_row = old_row;
    for (const auto& [col, expr] : stmt.assignments) {
      int idx = schema.ColumnIndex(col);
      if (idx < 0) return Status::NotFound("column " + col);
      UV_ASSIGN_OR_RETURN(Value v, ev.Eval(*expr, &scope));
      new_row[idx] = std::move(v);
    }
    UV_RETURN_NOT_OK(table->Update(id, new_row, commit_index));
    ++result.affected;
    UV_RETURN_NOT_OK(FireTriggers(target, TriggerEvent::kUpdate, &old_row,
                                  &new_row, commit_index, ctx));
  }
  return result;
}

Result<ExecResult> Database::ExecDelete(const DeleteStatement& stmt,
                                        uint64_t commit_index,
                                        ExecContext* ctx) {
  ExprPtr view_where;
  UV_ASSIGN_OR_RETURN(std::string target,
                      ResolveWritableTarget(stmt.table, &view_where));
  Table* table = FindTable(target);
  Evaluator ev(this, ctx, commit_index);

  ExprPtr where = stmt.where;
  if (view_where) {
    where = where ? Expr::MakeBinary(BinaryOp::kAnd, view_where, where)
                  : view_where;
  }
  UV_ASSIGN_OR_RETURN(std::vector<RowId> ids,
                      ev.MatchRows(table, where, nullptr));

  ExecResult result;
  for (RowId id : ids) {
    if (!table->IsLive(id)) continue;
    Row old_row = table->GetRow(id);
    UV_RETURN_NOT_OK(table->Delete(id, commit_index));
    ++result.affected;
    UV_RETURN_NOT_OK(FireTriggers(target, TriggerEvent::kDelete, &old_row,
                                  nullptr, commit_index, ctx));
  }
  return result;
}

Result<ExecResult> Database::ExecCall(const CallStatement& stmt,
                                      uint64_t commit_index, ExecContext* ctx) {
  const CreateProcedureStatement* proc = FindProcedure(stmt.procedure);
  if (!proc) return Status::NotFound("procedure " + stmt.procedure);
  if (stmt.args.size() != proc->params.size()) {
    return Status::InvalidArgument("CALL " + stmt.procedure +
                                   ": argument count mismatch");
  }
  Evaluator ev(this, ctx, commit_index);
  std::vector<Value> args;
  for (const auto& arg : stmt.args) {
    UV_ASSIGN_OR_RETURN(Value v, ev.Eval(*arg, nullptr));
    args.push_back(std::move(v));
  }
  ctx->PushScope();
  for (size_t i = 0; i < args.size(); ++i) {
    ctx->DeclareVar(proc->params[i].name, std::move(args[i]));
  }
  Status st = ExecBlock(proc->body, commit_index, ctx);
  ctx->leave_requested = false;  // LEAVE unwinds only to the procedure edge.
  ctx->PopScope();
  if (!st.ok()) {
    // Procedures execute atomically: undo this commit's partial effects.
    RollbackToIndex(commit_index - 1);
    return st;
  }
  return ExecResult{};
}

Status Database::ExecBlock(const std::vector<StatementPtr>& body,
                           uint64_t commit_index, ExecContext* ctx) {
  for (const auto& stmt : body) {
    Result<ExecResult> r = Execute(*stmt, commit_index, ctx);
    if (!r.ok()) return r.status();
    if (ctx->leave_requested) return Status::OK();
  }
  return Status::OK();
}

Status Database::FireTriggers(const std::string& table, TriggerEvent event,
                              const Row* old_row, const Row* new_row,
                              uint64_t commit_index, ExecContext* ctx) {
  if (ctx->trigger_depth >= kMaxTriggerDepth) {
    return Status::Internal("trigger recursion limit");
  }
  for (const auto& [name, trig] : triggers_) {
    (void)name;
    if (trig.table != table || trig.event != event) continue;
    Table* t = FindTable(table);
    std::vector<std::string> columns = SchemaColumnNames(t->schema());

    // Bind NEW.col / OLD.col as variables for the trigger body.
    ctx->PushScope();
    if (new_row) {
      for (size_t i = 0; i < columns.size(); ++i) {
        ctx->DeclareVar("NEW." + columns[i], (*new_row)[i]);
      }
    }
    if (old_row) {
      for (size_t i = 0; i < columns.size(); ++i) {
        ctx->DeclareVar("OLD." + columns[i], (*old_row)[i]);
      }
    }
    ++ctx->trigger_depth;
    Status st = ExecBlock(trig.body, commit_index, ctx);
    --ctx->trigger_depth;
    ctx->PopScope();
    UV_RETURN_NOT_OK(st);
  }
  return Status::OK();
}

void Database::RollbackToIndex(uint64_t commit_index) {
  for (auto& [name, table] : tables_) {
    (void)name;
    table->RollbackToIndex(commit_index);
  }
}

void Database::RollbackTablesToIndex(const std::vector<std::string>& tables,
                                     uint64_t commit_index) {
  for (const auto& name : tables) {
    Table* t = FindTable(name);
    if (t) t->RollbackToIndex(commit_index);
  }
}

void Database::RollbackCommitsInTables(const std::set<uint64_t>& commits,
                                       const std::vector<std::string>& tables) {
  static obs::Counter* const undone =
      obs::Registry::Global().counter("uv.staging.rollback.commits");
  undone->Add(commits.size());
  obs::TraceSpan span("staging.rollback",
                      {{"commits", commits.size()}, {"tables", tables.size()}});
  for (const auto& name : tables) {
    Table* t = FindTable(name);
    if (t) t->RollbackCommits(commits);
  }
}

void Database::ResetJournals(const std::vector<std::string>& names,
                             uint64_t commit_index) {
  if (names.empty()) {
    for (auto& [name, table] : tables_) {
      (void)name;
      table->ResetJournal(commit_index);
    }
    return;
  }
  for (const auto& name : names) {
    Table* t = FindTable(name);
    if (t) t->ResetJournal(commit_index);
  }
}

void Database::TrimJournalsBefore(uint64_t commit_index) {
  for (auto& [name, table] : tables_) {
    (void)name;
    table->TrimJournalBefore(commit_index);
  }
}

std::unique_ptr<Database> Database::Clone() const {
  auto copy = std::make_unique<Database>();
  for (const auto& [name, table] : tables_) {
    copy->tables_[name] = table->Clone();
  }
  copy->views_ = views_;
  copy->procedures_ = procedures_;
  copy->triggers_ = triggers_;
  copy->auto_increment_ = auto_increment_;
  copy->logical_time_ = logical_time_;
  // Same engine, same schema epoch, same (shared) plan cache: replay over
  // the clone re-executes the history's statements with warm plans.
  copy->exec_engine_ = exec_engine_;
  copy->schema_version_.store(schema_version(), std::memory_order_relaxed);
  copy->plan_cache_ = plan_cache_;
  return copy;
}

std::unique_ptr<Database> Database::CloneTables(
    const std::vector<std::string>& names) const {
  static obs::Counter* const staged =
      obs::Registry::Global().counter("uv.staging.tables_staged");
  staged->Add(names.size());
  obs::TraceSpan span("staging.clone_tables", {{"tables", names.size()}});
  auto copy = std::make_unique<Database>();
  for (const auto& name : names) {
    if (copy->tables_.count(name)) continue;
    const Table* table = FindTable(name);
    if (table) copy->tables_[name] = table->Clone();
  }
  // The catalog rides along in full: it is tiny next to table data, and
  // replayed procedures/triggers/views must resolve without fault-ins.
  copy->views_ = views_;
  copy->procedures_ = procedures_;
  copy->triggers_ = triggers_;
  copy->auto_increment_ = auto_increment_;
  copy->logical_time_ = logical_time_;
  copy->exec_engine_ = exec_engine_;
  copy->schema_version_.store(schema_version(), std::memory_order_relaxed);
  copy->plan_cache_ = plan_cache_;
  return copy;
}

void Database::SetReadFallback(const Database* base, std::shared_mutex* mu) {
  read_base_ = base;
  read_base_mu_ = mu;
  fallback_base_version_ = base ? base->schema_version() : 0;
}

Status Database::AdoptTables(const Database& src,
                             const std::vector<std::string>& names) {
  for (const auto& name : names) {
    const Table* t = src.FindTable(name);
    if (!t) {
      // The table was retroactively dropped in the alternate universe.
      tables_.erase(name);
      auto_increment_.erase(name);
      continue;
    }
    tables_[name] = t->Clone();
    auto it = src.auto_increment_.find(name);
    if (it != src.auto_increment_.end()) auto_increment_[name] = it->second;
  }
  // Adopted tables may carry retroactively ALTERed schemas or index sets.
  schema_version_.store(NextSchemaEpoch(), std::memory_order_relaxed);
  return Status::OK();
}

void Database::AdoptCatalog(const Database& src) {
  views_ = src.views_;
  procedures_ = src.procedures_;
  triggers_ = src.triggers_;
  schema_version_.store(NextSchemaEpoch(), std::memory_order_relaxed);
}

std::vector<std::string> Database::ViewNames() const {
  std::vector<std::string> names;
  names.reserve(views_.size());
  for (const auto& [name, sel] : views_) {
    (void)sel;
    names.push_back(name);
  }
  return names;
}

std::vector<std::string> Database::TriggerNames() const {
  std::vector<std::string> names;
  names.reserve(triggers_.size());
  for (const auto& [name, trig] : triggers_) {
    (void)trig;
    names.push_back(name);
  }
  return names;
}

void Database::SeedAutoIncrementFloor(
    const std::map<std::string, int64_t>& floors) {
  for (const auto& [table, next] : floors) {
    int64_t& mine = auto_increment_[table];
    if (next > mine) mine = next;
  }
}

size_t Database::ApproxMemoryBytes() const {
  size_t bytes = sizeof(Database);
  for (const auto& [name, table] : tables_) {
    bytes += name.size() + table->ApproxMemoryBytes();
  }
  return bytes;
}

size_t Database::ApproxOwnedBytes() const {
  size_t bytes = sizeof(Database);
  for (const auto& [name, table] : tables_) {
    bytes += name.size() + table->ApproxOwnedBytes();
  }
  return bytes;
}

}  // namespace ultraverse::sql
