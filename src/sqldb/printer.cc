#include <string>

#include "sqldb/ast.h"
#include "util/string_util.h"

namespace ultraverse::sql {

namespace {

void PrintExpr(const Expr& e, std::string* out);
void PrintSelect(const SelectStatement& sel, std::string* out);
void PrintStatement(const Statement& stmt, std::string* out);

const char* BinaryOpText(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
  }
  return "?";
}

void PrintExpr(const Expr& e, std::string* out) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      out->append(e.literal.ToSqlLiteral());
      break;
    case ExprKind::kColumnRef:
      if (!e.table.empty()) {
        out->append(e.table);
        out->push_back('.');
      }
      out->append(e.column);
      break;
    case ExprKind::kVarRef:
      out->append(e.var_name);
      break;
    case ExprKind::kUnary:
      if (e.unary_op == UnaryOp::kNot) {
        out->append("NOT (");
        PrintExpr(*e.children[0], out);
        out->push_back(')');
      } else {
        out->append("-(");
        PrintExpr(*e.children[0], out);
        out->push_back(')');
      }
      break;
    case ExprKind::kBinary:
      out->push_back('(');
      PrintExpr(*e.children[0], out);
      out->push_back(' ');
      out->append(BinaryOpText(e.binary_op));
      out->push_back(' ');
      PrintExpr(*e.children[1], out);
      out->push_back(')');
      break;
    case ExprKind::kFuncCall:
      out->append(e.func_name);
      out->push_back('(');
      if (e.star_arg) {
        out->push_back('*');
      } else {
        for (size_t i = 0; i < e.children.size(); ++i) {
          if (i) out->append(", ");
          PrintExpr(*e.children[i], out);
        }
      }
      out->push_back(')');
      break;
    case ExprKind::kSubquery:
      out->push_back('(');
      PrintSelect(*e.subquery, out);
      out->push_back(')');
      break;
    case ExprKind::kInList:
      PrintExpr(*e.children[0], out);
      out->append(" IN (");
      for (size_t i = 1; i < e.children.size(); ++i) {
        if (i > 1) out->append(", ");
        PrintExpr(*e.children[i], out);
      }
      out->push_back(')');
      break;
    case ExprKind::kStar:
      if (!e.table.empty()) {
        out->append(e.table);
        out->push_back('.');
      }
      out->push_back('*');
      break;
  }
}

void PrintSelect(const SelectStatement& sel, std::string* out) {
  out->append("SELECT ");
  if (sel.distinct) out->append("DISTINCT ");
  for (size_t i = 0; i < sel.items.size(); ++i) {
    if (i) out->append(", ");
    PrintExpr(*sel.items[i].expr, out);
    if (!sel.items[i].alias.empty()) {
      out->append(" AS ");
      out->append(sel.items[i].alias);
    }
  }
  if (!sel.into_vars.empty()) {
    out->append(" INTO ");
    out->append(Join(sel.into_vars, ", "));
  }
  if (!sel.from_table.empty()) {
    out->append(" FROM ");
    out->append(sel.from_table);
    if (!sel.from_alias.empty()) {
      out->push_back(' ');
      out->append(sel.from_alias);
    }
    for (const auto& join : sel.joins) {
      out->append(" JOIN ");
      out->append(join.table);
      if (!join.alias.empty()) {
        out->push_back(' ');
        out->append(join.alias);
      }
      out->append(" ON ");
      PrintExpr(*join.on, out);
    }
  }
  if (sel.where) {
    out->append(" WHERE ");
    PrintExpr(*sel.where, out);
  }
  if (!sel.group_by.empty()) {
    out->append(" GROUP BY ");
    for (size_t i = 0; i < sel.group_by.size(); ++i) {
      if (i) out->append(", ");
      PrintExpr(*sel.group_by[i], out);
    }
  }
  if (sel.having) {
    out->append(" HAVING ");
    PrintExpr(*sel.having, out);
  }
  if (!sel.order_by.empty()) {
    out->append(" ORDER BY ");
    for (size_t i = 0; i < sel.order_by.size(); ++i) {
      if (i) out->append(", ");
      PrintExpr(*sel.order_by[i].expr, out);
      if (sel.order_by[i].descending) out->append(" DESC");
    }
  }
  if (sel.limit >= 0) {
    out->append(" LIMIT ");
    out->append(std::to_string(sel.limit));
  }
}

void PrintBody(const std::vector<StatementPtr>& body, std::string* out) {
  for (const auto& stmt : body) {
    out->push_back(' ');
    PrintStatement(*stmt, out);
    out->push_back(';');
  }
}

void PrintStatement(const Statement& stmt, std::string* out) {
  switch (stmt.kind) {
    case StatementKind::kCreateTable: {
      const TableSchema& s = stmt.create_table.schema;
      out->append("CREATE TABLE ");
      if (stmt.create_table.if_not_exists) out->append("IF NOT EXISTS ");
      out->append(s.name);
      out->append(" (");
      for (size_t i = 0; i < s.columns.size(); ++i) {
        if (i) out->append(", ");
        const ColumnDef& c = s.columns[i];
        out->append(c.name);
        out->push_back(' ');
        out->append(DataTypeName(c.type));
        if (c.primary_key) out->append(" PRIMARY KEY");
        if (c.auto_increment) out->append(" AUTO_INCREMENT");
        if (c.not_null) out->append(" NOT NULL");
      }
      for (const auto& fk : s.foreign_keys) {
        out->append(", FOREIGN KEY (");
        out->append(fk.column);
        out->append(") REFERENCES ");
        out->append(fk.ref_table);
        out->push_back('(');
        out->append(fk.ref_column);
        out->push_back(')');
      }
      out->push_back(')');
      break;
    }
    case StatementKind::kAlterTable:
      out->append("ALTER TABLE ");
      out->append(stmt.alter_table.table);
      if (stmt.alter_table.action == AlterAction::kAddColumn) {
        out->append(" ADD COLUMN ");
        out->append(stmt.alter_table.add_column.name);
        out->push_back(' ');
        out->append(DataTypeName(stmt.alter_table.add_column.type));
      } else {
        out->append(" DROP COLUMN ");
        out->append(stmt.alter_table.drop_column);
      }
      break;
    case StatementKind::kDropTable:
      out->append("DROP TABLE ");
      if (stmt.drop_if_exists) out->append("IF EXISTS ");
      out->append(stmt.drop_name);
      break;
    case StatementKind::kTruncateTable:
      out->append("TRUNCATE TABLE ");
      out->append(stmt.truncate_table);
      break;
    case StatementKind::kCreateView:
      out->append("CREATE ");
      if (stmt.create_view.or_replace) out->append("OR REPLACE ");
      out->append("VIEW ");
      out->append(stmt.create_view.name);
      out->append(" AS ");
      PrintSelect(*stmt.create_view.select, out);
      break;
    case StatementKind::kDropView:
      out->append("DROP VIEW ");
      out->append(stmt.drop_name);
      break;
    case StatementKind::kCreateIndex:
      out->append("CREATE INDEX ");
      out->append(stmt.create_index.name);
      out->append(" ON ");
      out->append(stmt.create_index.table);
      out->append(" (");
      out->append(Join(stmt.create_index.columns, ", "));
      out->push_back(')');
      break;
    case StatementKind::kCreateProcedure: {
      const auto& p = stmt.create_procedure;
      out->append("CREATE PROCEDURE ");
      out->append(p.name);
      out->append(" (");
      for (size_t i = 0; i < p.params.size(); ++i) {
        if (i) out->append(", ");
        out->append(p.params[i].is_out ? "OUT " : "IN ");
        out->append(p.params[i].name);
        out->push_back(' ');
        out->append(DataTypeName(p.params[i].type));
      }
      out->append(") BEGIN");
      PrintBody(p.body, out);
      out->append(" END");
      break;
    }
    case StatementKind::kDropProcedure:
      out->append("DROP PROCEDURE ");
      out->append(stmt.drop_name);
      break;
    case StatementKind::kCreateTrigger: {
      const auto& t = stmt.create_trigger;
      out->append("CREATE TRIGGER ");
      out->append(t.name);
      out->append(t.after ? " AFTER " : " BEFORE ");
      switch (t.event) {
        case TriggerEvent::kInsert: out->append("INSERT"); break;
        case TriggerEvent::kUpdate: out->append("UPDATE"); break;
        case TriggerEvent::kDelete: out->append("DELETE"); break;
      }
      out->append(" ON ");
      out->append(t.table);
      out->append(" FOR EACH ROW BEGIN");
      PrintBody(t.body, out);
      out->append(" END");
      break;
    }
    case StatementKind::kDropTrigger:
      out->append("DROP TRIGGER ");
      out->append(stmt.drop_name);
      break;
    case StatementKind::kInsert: {
      const auto& ins = stmt.insert;
      out->append("INSERT INTO ");
      out->append(ins.table);
      if (!ins.columns.empty()) {
        out->append(" (");
        out->append(Join(ins.columns, ", "));
        out->push_back(')');
      }
      if (ins.select) {
        out->push_back(' ');
        PrintSelect(*ins.select, out);
      } else {
        out->append(" VALUES ");
        for (size_t r = 0; r < ins.rows.size(); ++r) {
          if (r) out->append(", ");
          out->push_back('(');
          for (size_t i = 0; i < ins.rows[r].size(); ++i) {
            if (i) out->append(", ");
            PrintExpr(*ins.rows[r][i], out);
          }
          out->push_back(')');
        }
      }
      break;
    }
    case StatementKind::kUpdate: {
      out->append("UPDATE ");
      out->append(stmt.update.table);
      out->append(" SET ");
      for (size_t i = 0; i < stmt.update.assignments.size(); ++i) {
        if (i) out->append(", ");
        out->append(stmt.update.assignments[i].first);
        out->append(" = ");
        PrintExpr(*stmt.update.assignments[i].second, out);
      }
      if (stmt.update.where) {
        out->append(" WHERE ");
        PrintExpr(*stmt.update.where, out);
      }
      break;
    }
    case StatementKind::kDelete:
      out->append("DELETE FROM ");
      out->append(stmt.del.table);
      if (stmt.del.where) {
        out->append(" WHERE ");
        PrintExpr(*stmt.del.where, out);
      }
      break;
    case StatementKind::kSelect:
      PrintSelect(*stmt.select, out);
      break;
    case StatementKind::kCall:
      out->append("CALL ");
      out->append(stmt.call.procedure);
      out->push_back('(');
      for (size_t i = 0; i < stmt.call.args.size(); ++i) {
        if (i) out->append(", ");
        PrintExpr(*stmt.call.args[i], out);
      }
      out->push_back(')');
      break;
    case StatementKind::kTransaction:
      out->append("BEGIN;");
      for (const auto& inner : stmt.transaction.statements) {
        out->push_back(' ');
        PrintStatement(*inner, out);
        out->push_back(';');
      }
      out->append(" COMMIT");
      break;
    case StatementKind::kDeclareVar:
      out->append("DECLARE ");
      out->append(stmt.declare_var.name);
      out->push_back(' ');
      out->append(DataTypeName(stmt.declare_var.type));
      if (stmt.declare_var.init) {
        out->append(" DEFAULT ");
        PrintExpr(*stmt.declare_var.init, out);
      }
      break;
    case StatementKind::kSetVar:
      out->append("SET ");
      out->append(stmt.set_var.name);
      out->append(" = ");
      PrintExpr(*stmt.set_var.value, out);
      break;
    case StatementKind::kIf: {
      bool first = true;
      for (const auto& branch : stmt.if_stmt.branches) {
        if (branch.condition) {
          out->append(first ? "IF " : " ELSEIF ");
          PrintExpr(*branch.condition, out);
          out->append(" THEN");
        } else {
          out->append(" ELSE");
        }
        PrintBody(branch.body, out);
        first = false;
      }
      out->append(" END IF");
      break;
    }
    case StatementKind::kWhile:
      out->append("WHILE ");
      PrintExpr(*stmt.while_stmt.condition, out);
      out->append(" DO");
      PrintBody(stmt.while_stmt.body, out);
      out->append(" END WHILE");
      break;
    case StatementKind::kLeave:
      out->append("LEAVE");
      if (!stmt.leave_label.empty()) {
        out->push_back(' ');
        out->append(stmt.leave_label);
      }
      break;
    case StatementKind::kSignal:
      out->append("SIGNAL SQLSTATE '");
      out->append(stmt.signal.sqlstate);
      out->push_back('\'');
      if (!stmt.signal.message.empty()) {
        out->append(" SET MESSAGE_TEXT = ");
        out->append(SqlQuote(stmt.signal.message));
      }
      break;
  }
}

}  // namespace

std::string ToSql(const Statement& stmt) {
  std::string out;
  PrintStatement(stmt, &out);
  return out;
}

std::string ToSql(const SelectStatement& sel) {
  std::string out;
  PrintSelect(sel, &out);
  return out;
}

std::string ToSql(const Expr& expr) {
  std::string out;
  PrintExpr(expr, &out);
  return out;
}

}  // namespace ultraverse::sql
