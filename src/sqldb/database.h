#ifndef ULTRAVERSE_SQLDB_DATABASE_H_
#define ULTRAVERSE_SQLDB_DATABASE_H_

#include <atomic>
#include <map>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sqldb/ast.h"
#include "sqldb/exec_engine.h"
#include "sqldb/table.h"
#include "util/rng.h"
#include "util/status.h"

namespace ultraverse::sql {

namespace vm {
class Executor;
class PlanCache;
}  // namespace vm

/// Result of executing one statement.
struct ExecResult {
  std::vector<std::string> column_names;  // for SELECT
  std::vector<Row> rows;                  // for SELECT
  int64_t affected = 0;                   // for DML
};

/// Concrete values consumed by one top-level query execution that are not
/// functions of the database state: NOW()/RAND()/CURTIME() results and
/// AUTO_INCREMENT assignments. Recorded during regular operation and
/// re-injected during retroactive replay (§4.4 "Replaying Non-determinism").
struct NondetRecord {
  std::vector<Value> values;
  std::vector<int64_t> auto_inc_ids;
};

/// Per-execution context: procedure variable scopes, nondeterminism
/// record/replay channels, and control-flow flags.
class ExecContext {
 public:
  ExecContext() { PushScope(); }

  void PushScope() { scopes_.emplace_back(); }
  void PopScope() { scopes_.pop_back(); }

  void DeclareVar(const std::string& name, Value v) {
    scopes_.back()[name] = std::move(v);
  }
  /// Sets an existing variable (innermost scope wins); declares in the
  /// innermost scope when absent.
  void SetVar(const std::string& name, Value v);
  /// Looks a variable up through the scope chain; nullptr when absent.
  const Value* FindVar(const std::string& name) const;

  /// Record mode: nondeterministic values are appended to `record`.
  void StartRecording(NondetRecord* record) { record_ = record; }
  /// Replay mode: nondeterministic values are consumed from `replay`.
  void StartReplaying(const NondetRecord* replay) {
    replay_ = replay;
    replay_value_cursor_ = 0;
    replay_auto_cursor_ = 0;
  }

  /// Returns the next nondeterministic value: consumes the replay record
  /// when available, otherwise calls `generate` (and records it).
  template <typename Fn>
  Value NextNondetValue(Fn&& generate) {
    if (replay_ && replay_value_cursor_ < replay_->values.size()) {
      return replay_->values[replay_value_cursor_++];
    }
    Value v = generate();
    if (record_) record_->values.push_back(v);
    return v;
  }

  /// Same protocol for AUTO_INCREMENT ids.
  template <typename Fn>
  int64_t NextAutoIncId(Fn&& generate) {
    if (replay_ && replay_auto_cursor_ < replay_->auto_inc_ids.size()) {
      return replay_->auto_inc_ids[replay_auto_cursor_++];
    }
    int64_t id = generate();
    if (record_) record_->auto_inc_ids.push_back(id);
    return id;
  }

  bool leave_requested = false;  // LEAVE unwinds the current procedure
  int trigger_depth = 0;

  /// When set, every procedure-variable assignment is appended here
  /// (name -> all values it held). The retroactive analyzer uses these to
  /// concretize symbolic RI values "at the moment of retroactive
  /// operation" (§4.3) instead of widening them to wildcards.
  void set_var_capture(std::map<std::string, std::vector<Value>>* capture) {
    var_capture_ = capture;
  }

 private:
  std::vector<std::unordered_map<std::string, Value>> scopes_;
  std::map<std::string, std::vector<Value>>* var_capture_ = nullptr;
  NondetRecord* record_ = nullptr;
  const NondetRecord* replay_ = nullptr;
  size_t replay_value_cursor_ = 0;
  size_t replay_auto_cursor_ = 0;
};

/// In-memory SQL database: catalog (tables, views, procedures, triggers,
/// indexes) plus the statement executor. Stands in for the paper's
/// unmodified MySQL server (see DESIGN.md substitution table).
///
/// Thread safety: Execute() is not internally synchronized; the replay
/// scheduler serializes conflicting queries via the dependency DAG and
/// guards shared tables with its own per-table locks.
class Database {
 public:
  Database();
  ~Database();

  /// Executes one statement. `commit_index` tags undo-journal entries so
  /// the whole statement (procedures/transactions included) can be undone
  /// atomically; pass a fresh, strictly increasing index per top-level
  /// query. On failure, partial effects are rolled back.
  Result<ExecResult> Execute(const Statement& stmt, uint64_t commit_index,
                             ExecContext* ctx);

  /// Convenience: parse + execute one statement with a scratch context.
  Result<ExecResult> ExecuteSql(const std::string& sql, uint64_t commit_index);

  // --- Catalog access -----------------------------------------------------
  Table* FindTable(const std::string& name);
  const Table* FindTable(const std::string& name) const;
  bool HasView(const std::string& name) const { return views_.count(name); }
  const std::shared_ptr<SelectStatement>* FindView(
      const std::string& name) const;
  const CreateProcedureStatement* FindProcedure(const std::string& name) const;
  const CreateTriggerStatement* FindTrigger(const std::string& name) const;
  std::vector<std::string> TableNames() const;
  std::vector<std::string> ProcedureNames() const;

  /// Rolls every table back to its state right after `commit_index`.
  void RollbackToIndex(uint64_t commit_index);
  /// Rolls only `tables` back (the §4.4 mutated/consulted-only rollback).
  void RollbackTablesToIndex(const std::vector<std::string>& tables,
                             uint64_t commit_index);

  /// Query-selective rollback: undoes exactly the journal entries of the
  /// given commits inside `tables` (Appendix E's M^-1(D, I); see
  /// Table::RollbackCommits for the column-masked UPDATE semantics).
  void RollbackCommitsInTables(const std::set<uint64_t>& commits,
                               const std::vector<std::string>& tables);

  /// Checkpoint support (rollback option (iii) of §5 Implementation):
  /// drops undo-journal entries older than `commit_index`. Retroactive
  /// targets older than the trim horizon then take the rebuild-from-log
  /// path instead of journal rollback.
  void TrimJournalsBefore(uint64_t commit_index);

  /// Publish reset (see Table::ResetJournal): drops the journals of
  /// `names` — or of every table when `names` is empty — and marks
  /// commits before `commit_index` as beyond journal reach.
  void ResetJournals(const std::vector<std::string>& names,
                     uint64_t commit_index);

  /// Copy-on-write copy of catalog + data (temporary replay database):
  /// every table is CoW-cloned (see Table::Clone), so the copy is cheap
  /// and memory is shared until either side writes.
  std::unique_ptr<Database> Clone() const;

  /// Selective staging (§4.4): CoW-clones only `names` (plus the full —
  /// cheap — catalog of views/procedures/triggers/auto-increment state).
  /// Combine with SetReadFallback so queries that stray outside the staged
  /// set still resolve against the live database.
  std::unique_ptr<Database> CloneTables(
      const std::vector<std::string>& names) const;

  /// Makes this (temporary) database resolve tables missing from its own
  /// catalog against `base`: the first access CoW-clones the table in
  /// (a fault-in, taken with `mu` held *shared* when provided, so
  /// concurrent fault-ins from many staged databases never serialize on
  /// the base — only writers of `base` take it exclusive). Retroactively
  /// dropped tables stay dropped — a local DROP wins over the fallback.
  /// Pass mu == nullptr when `base` is an immutable epoch-pinned snapshot:
  /// fault-ins are then lock-free (DESIGN.md §14).
  void SetReadFallback(const Database* base, std::shared_mutex* mu);

  /// Copies table contents of `names` from `src` into this database
  /// (the §4.4 "Database Update" step: mutated tables flow back).
  Status AdoptTables(const Database& src, const std::vector<std::string>& names);

  /// Adopts the full object catalog (views, procedures, triggers) from
  /// `src`. Retroactive DDL replayed in a temporary database — a removed
  /// CREATE VIEW/TRIGGER, say — propagates to the live database through
  /// this; AdoptTables alone only moves row data.
  void AdoptCatalog(const Database& src);

  std::vector<std::string> ViewNames() const;
  std::vector<std::string> TriggerNames() const;

  /// AUTO_INCREMENT high-watermark state: table -> next id to allocate.
  const std::map<std::string, int64_t>& auto_increment_state() const {
    return auto_increment_;
  }

  /// Raises AUTO_INCREMENT counters to at least `floors`; never lowers
  /// them. Replay paths that rebuild a temporary database from scratch
  /// (full-naive reference, journal-less rebuild) seed it with the live
  /// watermarks so a retroactively added INSERT allocates ids *above*
  /// every id the original history handed out — the one consistent policy
  /// that keeps fresh ids from colliding with replayed recorded ids and
  /// makes all replay modes agree (see DESIGN.md §9).
  void SeedAutoIncrementFloor(const std::map<std::string, int64_t>& floors);

  /// Full logical footprint (shared CoW state counted in full).
  size_t ApproxMemoryBytes() const;

  /// Bytes uniquely owned by this database: table state still shared with
  /// a CoW sibling counts only as a pointer. A freshly staged temporary
  /// database therefore reports only what staging actually allocated.
  size_t ApproxOwnedBytes() const;

  /// Logical clock feeding NOW()/CURTIME(); advances per call.
  int64_t NextTimestamp() { return ++logical_time_; }
  void SetLogicalTime(int64_t t) { logical_time_ = t; }
  int64_t logical_time() const { return logical_time_; }

  // --- Execution engine (see exec_engine.h) -------------------------------

  ExecEngine exec_engine() const { return exec_engine_; }
  void set_exec_engine(ExecEngine engine) { exec_engine_ = engine; }

  /// Monotone epoch bumped on every DDL statement (wherever it executes —
  /// top level, transaction, procedure, trigger), on catalog adoption and
  /// on CoW table fault-in. Compiled plans are keyed on it; a stale plan is
  /// unreachable by construction.
  uint64_t schema_version() const {
    return schema_version_.load(std::memory_order_relaxed);
  }

  /// Compiled-plan cache, shared (same object) with CoW clones of this
  /// database so replay re-execution starts warm.
  vm::PlanCache* plan_cache() const { return plan_cache_.get(); }

 private:
  friend class Evaluator;
  friend class vm::Executor;

  // DDL.
  Result<ExecResult> ExecCreateTable(const CreateTableStatement& stmt);
  Result<ExecResult> ExecAlterTable(const AlterTableStatement& stmt);
  Result<ExecResult> ExecDropTable(const Statement& stmt);
  Result<ExecResult> ExecTruncate(const std::string& table);
  Result<ExecResult> ExecCreateView(const CreateViewStatement& stmt);
  Result<ExecResult> ExecCreateIndex(const CreateIndexStatement& stmt);

  // DML.
  Result<ExecResult> ExecInsert(const InsertStatement& stmt,
                                uint64_t commit_index, ExecContext* ctx);
  Result<ExecResult> ExecUpdate(const UpdateStatement& stmt,
                                uint64_t commit_index, ExecContext* ctx);
  Result<ExecResult> ExecDelete(const DeleteStatement& stmt,
                                uint64_t commit_index, ExecContext* ctx);
  Result<ExecResult> ExecCall(const CallStatement& stmt, uint64_t commit_index,
                              ExecContext* ctx);
  Status ExecBlock(const std::vector<StatementPtr>& body,
                   uint64_t commit_index, ExecContext* ctx);

  Status FireTriggers(const std::string& table, TriggerEvent event,
                      const Row* old_row, const Row* new_row,
                      uint64_t commit_index, ExecContext* ctx);

  /// Resolves an updatable view to its base table + extra WHERE; returns
  /// the table name unchanged when it is a real table.
  Result<std::string> ResolveWritableTarget(const std::string& name,
                                            ExprPtr* extra_where) const;

  std::map<std::string, std::unique_ptr<Table>> tables_;

  /// Read fallback for selectively staged databases (§4.4). When set,
  /// FindTable faults missing tables in from `read_base_` as CoW clones.
  /// `catalog_mu_` guards `tables_`/`dropped_` only while a fallback is
  /// configured (parallel replay workers may fault in concurrently);
  /// databases without a fallback take the uncontended path.
  const Database* read_base_ = nullptr;
  std::shared_mutex* read_base_mu_ = nullptr;
  /// Base schema version captured at SetReadFallback time. While the base
  /// still sits at this version its catalog has not drifted from what this
  /// staged database inherited, so a fault-in materializes state the
  /// inherited schema_version_ already describes — no bump needed, and
  /// plans compiled by the base stay warm. After base DDL the versions
  /// differ and fault-ins take a fresh epoch (see FindTable).
  uint64_t fallback_base_version_ = 0;
  mutable std::shared_mutex catalog_mu_;
  std::set<std::string> dropped_;  // locally dropped: never fault back in

  std::map<std::string, std::shared_ptr<SelectStatement>> views_;
  std::map<std::string, CreateProcedureStatement> procedures_;
  std::map<std::string, CreateTriggerStatement> triggers_;
  std::map<std::string, int64_t> auto_increment_;  // table -> next id

  int64_t logical_time_ = 0;
  Rng rng_;

  ExecEngine exec_engine_;                 // set from DefaultExecEngine()
  std::atomic<uint64_t> schema_version_;   // process-global epoch values
  std::shared_ptr<vm::PlanCache> plan_cache_;
};

}  // namespace ultraverse::sql

#endif  // ULTRAVERSE_SQLDB_DATABASE_H_
