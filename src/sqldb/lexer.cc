#include "sqldb/lexer.h"

#include <cctype>

namespace ultraverse::sql {

Result<std::vector<Token>> Lexer::Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();

  auto peek = [&](size_t k) -> char { return i + k < n ? input[i + k] : '\0'; };

  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '-' && peek(1) == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      i += 2;
      while (i + 1 < n && !(input[i] == '*' && input[i + 1] == '/')) ++i;
      i = (i + 1 < n) ? i + 2 : n;
      continue;
    }

    Token tok;
    tok.offset = i;

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '`') {
      bool quoted = (c == '`');
      if (quoted) ++i;
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      tok.type = TokenType::kIdentifier;
      tok.text = input.substr(start, i - start);
      if (quoted) {
        if (i >= n || input[i] != '`') {
          return Status::ParseError("unterminated `identifier`");
        }
        ++i;
      }
      tokens.push_back(std::move(tok));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      size_t start = i;
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      if (i < n && input[i] == '.') {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      }
      if (i < n && (input[i] == 'e' || input[i] == 'E')) {
        is_double = true;
        ++i;
        if (i < n && (input[i] == '+' || input[i] == '-')) ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      }
      tok.type = TokenType::kNumber;
      tok.text = input.substr(start, i - start);
      tok.is_double = is_double;
      tokens.push_back(std::move(tok));
      continue;
    }

    if (c == '\'' || c == '"') {
      char quote = c;
      ++i;
      std::string s;
      bool closed = false;
      while (i < n) {
        if (input[i] == quote) {
          if (peek(1) == quote) {  // '' escape
            s.push_back(quote);
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        if (input[i] == '\\' && i + 1 < n) {  // backslash escapes
          char e = input[i + 1];
          switch (e) {
            case 'n': s.push_back('\n'); break;
            case 't': s.push_back('\t'); break;
            default: s.push_back(e);
          }
          i += 2;
          continue;
        }
        s.push_back(input[i]);
        ++i;
      }
      if (!closed) return Status::ParseError("unterminated string literal");
      tok.type = TokenType::kString;
      tok.text = std::move(s);
      tokens.push_back(std::move(tok));
      continue;
    }

    // Multi-char operators first.
    auto two = [&](const char* op) {
      tok.type = TokenType::kSymbol;
      tok.text = op;
      i += 2;
      tokens.push_back(tok);
    };
    if (c == '!' && peek(1) == '=') { two("!="); continue; }
    if (c == '<' && peek(1) == '>') { two("!="); continue; }
    if (c == '<' && peek(1) == '=') { two("<="); continue; }
    if (c == '>' && peek(1) == '=') { two(">="); continue; }

    static const std::string kSingles = "(),.;*+-/%=<>:";
    if (kSingles.find(c) != std::string::npos) {
      tok.type = TokenType::kSymbol;
      tok.text = std::string(1, c);
      ++i;
      tokens.push_back(std::move(tok));
      continue;
    }

    return Status::ParseError(std::string("unexpected character '") + c +
                              "' at offset " + std::to_string(i));
  }

  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace ultraverse::sql
