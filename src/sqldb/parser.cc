#include "sqldb/parser.h"

#include <cstdlib>

#include "util/string_util.h"

namespace ultraverse::sql {

namespace {
Status UnexpectedToken(const Token& tok, const std::string& expected) {
  std::string got = tok.type == TokenType::kEnd ? "<end>" : tok.text;
  return Status::ParseError("expected " + expected + " but got '" + got +
                            "' at offset " + std::to_string(tok.offset));
}
}  // namespace

const Token& Parser::Peek(size_t k) const {
  size_t idx = pos_ + k;
  if (idx >= tokens_.size()) idx = tokens_.size() - 1;
  return tokens_[idx];
}

Token Parser::Advance() {
  Token t = Peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::MatchSymbol(const std::string& sym) {
  if (Peek().type == TokenType::kSymbol && Peek().text == sym) {
    Advance();
    return true;
  }
  return false;
}

bool Parser::PeekKeyword(const std::string& kw, size_t k) const {
  const Token& t = Peek(k);
  return t.type == TokenType::kIdentifier && EqualsIgnoreCase(t.text, kw);
}

bool Parser::MatchKeyword(const std::string& kw) {
  if (PeekKeyword(kw)) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::ExpectSymbol(const std::string& sym) {
  if (!MatchSymbol(sym)) return UnexpectedToken(Peek(), "'" + sym + "'");
  return Status::OK();
}

Status Parser::ExpectKeyword(const std::string& kw) {
  if (!MatchKeyword(kw)) return UnexpectedToken(Peek(), kw);
  return Status::OK();
}

Result<std::string> Parser::ExpectIdentifier() {
  if (Peek().type != TokenType::kIdentifier) {
    return UnexpectedToken(Peek(), "identifier");
  }
  return Advance().text;
}

Result<StatementPtr> Parser::ParseStatement(const std::string& sql) {
  UV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lexer::Tokenize(sql));
  Parser p(std::move(tokens));
  UV_ASSIGN_OR_RETURN(StatementPtr stmt, p.ParseOneStatement());
  p.MatchSymbol(";");
  if (!p.AtEnd()) {
    return UnexpectedToken(p.Peek(), "end of statement");
  }
  return stmt;
}

Result<std::vector<StatementPtr>> Parser::ParseScript(const std::string& sql) {
  UV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lexer::Tokenize(sql));
  Parser p(std::move(tokens));
  std::vector<StatementPtr> out;
  while (!p.AtEnd()) {
    if (p.MatchSymbol(";")) continue;
    UV_ASSIGN_OR_RETURN(StatementPtr stmt, p.ParseOneStatement());
    out.push_back(std::move(stmt));
  }
  return out;
}

Result<ExprPtr> Parser::ParseExpression(const std::string& text) {
  UV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lexer::Tokenize(text));
  Parser p(std::move(tokens));
  UV_ASSIGN_OR_RETURN(ExprPtr e, p.ParseExpr());
  if (!p.AtEnd()) return UnexpectedToken(p.Peek(), "end of expression");
  return e;
}

Result<StatementPtr> Parser::ParseOneStatement() {
  if (PeekKeyword("CREATE") || PeekKeyword("DECLARE")) {
    // "DECLARE PROCEDURE" appears in the paper's listings; accept it as a
    // synonym for CREATE PROCEDURE.
    return ParseCreate();
  }
  if (PeekKeyword("ALTER")) return ParseAlter();
  if (PeekKeyword("DROP")) return ParseDrop();
  if (PeekKeyword("TRUNCATE")) {
    Advance();
    MatchKeyword("TABLE");
    UV_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
    auto s = Statement::Make(StatementKind::kTruncateTable);
    s->truncate_table = std::move(name);
    return s;
  }
  if (PeekKeyword("INSERT")) return ParseInsert();
  if (PeekKeyword("UPDATE")) return ParseUpdate();
  if (PeekKeyword("DELETE")) return ParseDelete();
  if (PeekKeyword("SELECT")) return ParseSelectStmt();
  if (PeekKeyword("CALL")) return ParseCall();
  if (PeekKeyword("BEGIN") || PeekKeyword("START")) {
    return ParseTransactionBlock();
  }
  return UnexpectedToken(Peek(), "statement keyword");
}

Result<StatementPtr> Parser::ParseCreate() {
  Advance();  // CREATE or DECLARE
  bool or_replace = false;
  if (MatchKeyword("OR")) {
    UV_RETURN_NOT_OK(ExpectKeyword("REPLACE"));
    or_replace = true;
  }
  if (MatchKeyword("TABLE")) {
    bool ine = false;
    if (MatchKeyword("IF")) {
      UV_RETURN_NOT_OK(ExpectKeyword("NOT"));
      UV_RETURN_NOT_OK(ExpectKeyword("EXISTS"));
      ine = true;
    }
    return ParseCreateTable(ine);
  }
  if (MatchKeyword("VIEW")) return ParseCreateView(or_replace);
  if (MatchKeyword("INDEX") || (MatchKeyword("UNIQUE") && MatchKeyword("INDEX"))) {
    return ParseCreateIndex();
  }
  if (MatchKeyword("PROCEDURE")) return ParseCreateProcedure();
  if (MatchKeyword("TRIGGER")) return ParseCreateTrigger();
  return UnexpectedToken(Peek(), "TABLE/VIEW/INDEX/PROCEDURE/TRIGGER");
}

Result<DataType> Parser::ParseDataType() {
  UV_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
  std::string upper = ToUpper(name);
  DataType type;
  if (upper == "INT" || upper == "INTEGER" || upper == "BIGINT" ||
      upper == "SMALLINT" || upper == "TINYINT") {
    type = DataType::kInt;
  } else if (upper == "DOUBLE" || upper == "FLOAT" || upper == "DECIMAL" ||
             upper == "NUMERIC" || upper == "REAL") {
    type = DataType::kDouble;
  } else if (upper == "VARCHAR" || upper == "CHAR" || upper == "TEXT" ||
             upper == "DATETIME" || upper == "TIMESTAMP" || upper == "DATE") {
    type = DataType::kString;
  } else if (upper == "BOOLEAN" || upper == "BOOL") {
    type = DataType::kBool;
  } else {
    return Status::ParseError("unknown data type '" + name + "'");
  }
  // Optional (len[,scale]) suffix.
  if (MatchSymbol("(")) {
    while (Peek().type == TokenType::kNumber) Advance();
    MatchSymbol(",");
    while (Peek().type == TokenType::kNumber) Advance();
    UV_RETURN_NOT_OK(ExpectSymbol(")"));
  }
  return type;
}

Result<StatementPtr> Parser::ParseCreateTable(bool if_not_exists) {
  auto stmt = Statement::Make(StatementKind::kCreateTable);
  stmt->create_table.if_not_exists = if_not_exists;
  TableSchema& schema = stmt->create_table.schema;
  UV_ASSIGN_OR_RETURN(schema.name, ExpectIdentifier());
  UV_RETURN_NOT_OK(ExpectSymbol("("));
  for (;;) {
    if (PeekKeyword("PRIMARY")) {
      Advance();
      UV_RETURN_NOT_OK(ExpectKeyword("KEY"));
      UV_RETURN_NOT_OK(ExpectSymbol("("));
      for (;;) {
        UV_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
        int idx = schema.ColumnIndex(col);
        if (idx < 0) return Status::ParseError("PRIMARY KEY on unknown column");
        schema.columns[idx].primary_key = true;
        if (!MatchSymbol(",")) break;
      }
      UV_RETURN_NOT_OK(ExpectSymbol(")"));
    } else if (PeekKeyword("FOREIGN")) {
      Advance();
      UV_RETURN_NOT_OK(ExpectKeyword("KEY"));
      UV_RETURN_NOT_OK(ExpectSymbol("("));
      ForeignKey fk;
      UV_ASSIGN_OR_RETURN(fk.column, ExpectIdentifier());
      UV_RETURN_NOT_OK(ExpectSymbol(")"));
      UV_RETURN_NOT_OK(ExpectKeyword("REFERENCES"));
      UV_ASSIGN_OR_RETURN(fk.ref_table, ExpectIdentifier());
      UV_RETURN_NOT_OK(ExpectSymbol("("));
      UV_ASSIGN_OR_RETURN(fk.ref_column, ExpectIdentifier());
      UV_RETURN_NOT_OK(ExpectSymbol(")"));
      schema.foreign_keys.push_back(std::move(fk));
    } else {
      ColumnDef col;
      UV_ASSIGN_OR_RETURN(col.name, ExpectIdentifier());
      UV_ASSIGN_OR_RETURN(col.type, ParseDataType());
      for (;;) {
        if (MatchKeyword("PRIMARY")) {
          UV_RETURN_NOT_OK(ExpectKeyword("KEY"));
          col.primary_key = true;
        } else if (MatchKeyword("AUTO_INCREMENT")) {
          col.auto_increment = true;
        } else if (MatchKeyword("NOT")) {
          UV_RETURN_NOT_OK(ExpectKeyword("NULL"));
          col.not_null = true;
        } else if (MatchKeyword("DEFAULT")) {
          Advance();  // swallow the default literal (unused by the engine)
        } else {
          break;
        }
      }
      schema.columns.push_back(std::move(col));
    }
    if (!MatchSymbol(",")) break;
  }
  UV_RETURN_NOT_OK(ExpectSymbol(")"));
  return stmt;
}

Result<StatementPtr> Parser::ParseCreateView(bool or_replace) {
  auto stmt = Statement::Make(StatementKind::kCreateView);
  stmt->create_view.or_replace = or_replace;
  UV_ASSIGN_OR_RETURN(stmt->create_view.name, ExpectIdentifier());
  UV_RETURN_NOT_OK(ExpectKeyword("AS"));
  UV_RETURN_NOT_OK(ExpectKeyword("SELECT"));
  UV_ASSIGN_OR_RETURN(stmt->create_view.select, ParseSelectBody());
  return stmt;
}

Result<StatementPtr> Parser::ParseCreateIndex() {
  auto stmt = Statement::Make(StatementKind::kCreateIndex);
  UV_ASSIGN_OR_RETURN(stmt->create_index.name, ExpectIdentifier());
  UV_RETURN_NOT_OK(ExpectKeyword("ON"));
  UV_ASSIGN_OR_RETURN(stmt->create_index.table, ExpectIdentifier());
  UV_RETURN_NOT_OK(ExpectSymbol("("));
  for (;;) {
    UV_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
    stmt->create_index.columns.push_back(std::move(col));
    if (!MatchSymbol(",")) break;
  }
  UV_RETURN_NOT_OK(ExpectSymbol(")"));
  return stmt;
}

Result<StatementPtr> Parser::ParseCreateProcedure() {
  auto stmt = Statement::Make(StatementKind::kCreateProcedure);
  auto& proc = stmt->create_procedure;
  UV_ASSIGN_OR_RETURN(proc.name, ExpectIdentifier());
  UV_RETURN_NOT_OK(ExpectSymbol("("));
  if (!MatchSymbol(")")) {
    for (;;) {
      ProcedureParam param;
      if (MatchKeyword("IN")) {
        param.is_out = false;
      } else if (MatchKeyword("OUT")) {
        param.is_out = true;
      } else if (MatchKeyword("INOUT")) {
        param.is_out = true;
      }
      UV_ASSIGN_OR_RETURN(param.name, ExpectIdentifier());
      UV_ASSIGN_OR_RETURN(param.type, ParseDataType());
      proc.params.push_back(std::move(param));
      if (!MatchSymbol(",")) break;
    }
    UV_RETURN_NOT_OK(ExpectSymbol(")"));
  }
  // Optional label: `name_Label: BEGIN`.
  if (Peek().type == TokenType::kIdentifier &&
      Peek(1).type == TokenType::kSymbol && Peek(1).text == ":" ) {
    Advance();
    Advance();
  }
  UV_RETURN_NOT_OK(ExpectKeyword("BEGIN"));
  UV_ASSIGN_OR_RETURN(proc.body, ParseProcBodyUntil({"END"}));
  UV_RETURN_NOT_OK(ExpectKeyword("END"));
  return stmt;
}

Result<StatementPtr> Parser::ParseCreateTrigger() {
  auto stmt = Statement::Make(StatementKind::kCreateTrigger);
  auto& trig = stmt->create_trigger;
  UV_ASSIGN_OR_RETURN(trig.name, ExpectIdentifier());
  if (MatchKeyword("AFTER")) {
    trig.after = true;
  } else if (MatchKeyword("BEFORE")) {
    trig.after = false;
  } else {
    return UnexpectedToken(Peek(), "AFTER or BEFORE");
  }
  if (MatchKeyword("INSERT")) {
    trig.event = TriggerEvent::kInsert;
  } else if (MatchKeyword("UPDATE")) {
    trig.event = TriggerEvent::kUpdate;
  } else if (MatchKeyword("DELETE")) {
    trig.event = TriggerEvent::kDelete;
  } else {
    return UnexpectedToken(Peek(), "INSERT/UPDATE/DELETE");
  }
  UV_RETURN_NOT_OK(ExpectKeyword("ON"));
  UV_ASSIGN_OR_RETURN(trig.table, ExpectIdentifier());
  UV_RETURN_NOT_OK(ExpectKeyword("FOR"));
  UV_RETURN_NOT_OK(ExpectKeyword("EACH"));
  UV_RETURN_NOT_OK(ExpectKeyword("ROW"));
  if (MatchKeyword("BEGIN")) {
    UV_ASSIGN_OR_RETURN(trig.body, ParseProcBodyUntil({"END"}));
    UV_RETURN_NOT_OK(ExpectKeyword("END"));
  } else {
    UV_ASSIGN_OR_RETURN(StatementPtr body, ParseProcBodyStatement());
    trig.body.push_back(std::move(body));
  }
  return stmt;
}

Result<StatementPtr> Parser::ParseAlter() {
  Advance();  // ALTER
  UV_RETURN_NOT_OK(ExpectKeyword("TABLE"));
  auto stmt = Statement::Make(StatementKind::kAlterTable);
  UV_ASSIGN_OR_RETURN(stmt->alter_table.table, ExpectIdentifier());
  if (MatchKeyword("ADD")) {
    MatchKeyword("COLUMN");
    stmt->alter_table.action = AlterAction::kAddColumn;
    UV_ASSIGN_OR_RETURN(stmt->alter_table.add_column.name, ExpectIdentifier());
    UV_ASSIGN_OR_RETURN(stmt->alter_table.add_column.type, ParseDataType());
    return stmt;
  }
  if (MatchKeyword("DROP")) {
    MatchKeyword("COLUMN");
    stmt->alter_table.action = AlterAction::kDropColumn;
    UV_ASSIGN_OR_RETURN(stmt->alter_table.drop_column, ExpectIdentifier());
    return stmt;
  }
  return UnexpectedToken(Peek(), "ADD or DROP");
}

Result<StatementPtr> Parser::ParseDrop() {
  Advance();  // DROP
  StatementKind kind;
  if (MatchKeyword("TABLE")) {
    kind = StatementKind::kDropTable;
  } else if (MatchKeyword("VIEW")) {
    kind = StatementKind::kDropView;
  } else if (MatchKeyword("PROCEDURE")) {
    kind = StatementKind::kDropProcedure;
  } else if (MatchKeyword("TRIGGER")) {
    kind = StatementKind::kDropTrigger;
  } else {
    return UnexpectedToken(Peek(), "TABLE/VIEW/PROCEDURE/TRIGGER");
  }
  auto stmt = Statement::Make(kind);
  if (MatchKeyword("IF")) {
    UV_RETURN_NOT_OK(ExpectKeyword("EXISTS"));
    stmt->drop_if_exists = true;
  }
  UV_ASSIGN_OR_RETURN(stmt->drop_name, ExpectIdentifier());
  return stmt;
}

Result<StatementPtr> Parser::ParseInsert() {
  Advance();  // INSERT
  UV_RETURN_NOT_OK(ExpectKeyword("INTO"));
  auto stmt = Statement::Make(StatementKind::kInsert);
  UV_ASSIGN_OR_RETURN(stmt->insert.table, ExpectIdentifier());
  if (MatchSymbol("(")) {
    for (;;) {
      UV_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
      stmt->insert.columns.push_back(std::move(col));
      if (!MatchSymbol(",")) break;
    }
    UV_RETURN_NOT_OK(ExpectSymbol(")"));
  }
  if (MatchKeyword("VALUES") || MatchKeyword("VALUE")) {
    for (;;) {
      UV_RETURN_NOT_OK(ExpectSymbol("("));
      std::vector<ExprPtr> row;
      if (!MatchSymbol(")")) {
        for (;;) {
          UV_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          row.push_back(std::move(e));
          if (!MatchSymbol(",")) break;
        }
        UV_RETURN_NOT_OK(ExpectSymbol(")"));
      }
      stmt->insert.rows.push_back(std::move(row));
      if (!MatchSymbol(",")) break;
    }
    return stmt;
  }
  if (MatchKeyword("SELECT")) {
    UV_ASSIGN_OR_RETURN(stmt->insert.select, ParseSelectBody());
    return stmt;
  }
  return UnexpectedToken(Peek(), "VALUES or SELECT");
}

Result<StatementPtr> Parser::ParseUpdate() {
  Advance();  // UPDATE
  auto stmt = Statement::Make(StatementKind::kUpdate);
  UV_ASSIGN_OR_RETURN(stmt->update.table, ExpectIdentifier());
  UV_RETURN_NOT_OK(ExpectKeyword("SET"));
  for (;;) {
    UV_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
    UV_RETURN_NOT_OK(ExpectSymbol("="));
    UV_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    stmt->update.assignments.emplace_back(std::move(col), std::move(e));
    if (!MatchSymbol(",")) break;
  }
  if (MatchKeyword("WHERE")) {
    UV_ASSIGN_OR_RETURN(stmt->update.where, ParseExpr());
  }
  return stmt;
}

Result<StatementPtr> Parser::ParseDelete() {
  Advance();  // DELETE
  MatchKeyword("FROM");
  auto stmt = Statement::Make(StatementKind::kDelete);
  UV_ASSIGN_OR_RETURN(stmt->del.table, ExpectIdentifier());
  if (MatchKeyword("WHERE")) {
    UV_ASSIGN_OR_RETURN(stmt->del.where, ParseExpr());
  }
  return stmt;
}

Result<StatementPtr> Parser::ParseSelectStmt() {
  Advance();  // SELECT
  auto stmt = Statement::Make(StatementKind::kSelect);
  UV_ASSIGN_OR_RETURN(stmt->select, ParseSelectBody());
  return stmt;
}

Result<std::shared_ptr<SelectStatement>> Parser::ParseSelectBody() {
  auto sel = std::make_shared<SelectStatement>();
  sel->distinct = MatchKeyword("DISTINCT");
  // Select items.
  for (;;) {
    SelectItem item;
    if (MatchSymbol("*")) {
      item.expr = Expr::MakeStar();
    } else {
      UV_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("AS")) {
        UV_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
      } else if (Peek().type == TokenType::kIdentifier &&
                 !PeekKeyword("FROM") && !PeekKeyword("INTO") &&
                 !PeekKeyword("WHERE") && !PeekKeyword("GROUP") &&
                 !PeekKeyword("ORDER") && !PeekKeyword("LIMIT") &&
                 !PeekKeyword("JOIN")) {
        item.alias = Advance().text;  // bare alias
      }
    }
    sel->items.push_back(std::move(item));
    if (!MatchSymbol(",")) break;
  }
  // MySQL-style SELECT ... INTO var before FROM.
  if (MatchKeyword("INTO")) {
    for (;;) {
      UV_ASSIGN_OR_RETURN(std::string v, ExpectIdentifier());
      sel->into_vars.push_back(std::move(v));
      if (!MatchSymbol(",")) break;
    }
  }
  if (MatchKeyword("FROM")) {
    UV_ASSIGN_OR_RETURN(sel->from_table, ExpectIdentifier());
    if (MatchKeyword("AS")) {
      UV_ASSIGN_OR_RETURN(sel->from_alias, ExpectIdentifier());
    } else if (Peek().type == TokenType::kIdentifier && !PeekKeyword("JOIN") &&
               !PeekKeyword("INNER") && !PeekKeyword("WHERE") &&
               !PeekKeyword("GROUP") && !PeekKeyword("ORDER") &&
               !PeekKeyword("LIMIT") && !PeekKeyword("INTO")) {
      sel->from_alias = Advance().text;
    }
    while (PeekKeyword("JOIN") || PeekKeyword("INNER")) {
      MatchKeyword("INNER");
      UV_RETURN_NOT_OK(ExpectKeyword("JOIN"));
      JoinClause join;
      UV_ASSIGN_OR_RETURN(join.table, ExpectIdentifier());
      if (MatchKeyword("AS")) {
        UV_ASSIGN_OR_RETURN(join.alias, ExpectIdentifier());
      } else if (Peek().type == TokenType::kIdentifier && !PeekKeyword("ON")) {
        join.alias = Advance().text;
      }
      UV_RETURN_NOT_OK(ExpectKeyword("ON"));
      UV_ASSIGN_OR_RETURN(join.on, ParseExpr());
      sel->joins.push_back(std::move(join));
    }
  }
  if (MatchKeyword("WHERE")) {
    UV_ASSIGN_OR_RETURN(sel->where, ParseExpr());
  }
  if (MatchKeyword("GROUP")) {
    UV_RETURN_NOT_OK(ExpectKeyword("BY"));
    for (;;) {
      UV_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      sel->group_by.push_back(std::move(e));
      if (!MatchSymbol(",")) break;
    }
  }
  if (MatchKeyword("HAVING")) {
    UV_ASSIGN_OR_RETURN(sel->having, ParseExpr());
  }
  if (MatchKeyword("ORDER")) {
    UV_RETURN_NOT_OK(ExpectKeyword("BY"));
    for (;;) {
      OrderByItem item;
      UV_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("DESC")) {
        item.descending = true;
      } else {
        MatchKeyword("ASC");
      }
      sel->order_by.push_back(std::move(item));
      if (!MatchSymbol(",")) break;
    }
  }
  if (MatchKeyword("LIMIT")) {
    if (Peek().type != TokenType::kNumber) {
      return UnexpectedToken(Peek(), "LIMIT count");
    }
    sel->limit = std::strtoll(Advance().text.c_str(), nullptr, 10);
  }
  // Standard SQL SELECT ... INTO after everything (also accepted).
  if (MatchKeyword("INTO")) {
    for (;;) {
      UV_ASSIGN_OR_RETURN(std::string v, ExpectIdentifier());
      sel->into_vars.push_back(std::move(v));
      if (!MatchSymbol(",")) break;
    }
  }
  return sel;
}

Result<StatementPtr> Parser::ParseCall() {
  Advance();  // CALL
  auto stmt = Statement::Make(StatementKind::kCall);
  UV_ASSIGN_OR_RETURN(stmt->call.procedure, ExpectIdentifier());
  if (MatchSymbol("(")) {
    if (!MatchSymbol(")")) {
      for (;;) {
        UV_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        stmt->call.args.push_back(std::move(e));
        if (!MatchSymbol(",")) break;
      }
      UV_RETURN_NOT_OK(ExpectSymbol(")"));
    }
  }
  return stmt;
}

Result<StatementPtr> Parser::ParseTransactionBlock() {
  if (MatchKeyword("START")) {
    UV_RETURN_NOT_OK(ExpectKeyword("TRANSACTION"));
  } else {
    UV_RETURN_NOT_OK(ExpectKeyword("BEGIN"));
  }
  MatchSymbol(";");
  auto stmt = Statement::Make(StatementKind::kTransaction);
  while (!PeekKeyword("COMMIT")) {
    if (AtEnd()) return Status::ParseError("transaction missing COMMIT");
    UV_ASSIGN_OR_RETURN(StatementPtr inner, ParseOneStatement());
    stmt->transaction.statements.push_back(std::move(inner));
    MatchSymbol(";");
  }
  UV_RETURN_NOT_OK(ExpectKeyword("COMMIT"));
  return stmt;
}

Result<std::vector<StatementPtr>> Parser::ParseProcBodyUntil(
    const std::vector<std::string>& terminators) {
  std::vector<StatementPtr> body;
  for (;;) {
    if (AtEnd()) return Status::ParseError("unterminated procedure body");
    bool done = false;
    for (const auto& term : terminators) {
      if (PeekKeyword(term)) {
        done = true;
        break;
      }
    }
    if (done) break;
    if (MatchSymbol(";")) continue;
    UV_ASSIGN_OR_RETURN(StatementPtr stmt, ParseProcBodyStatement());
    body.push_back(std::move(stmt));
  }
  return body;
}

Result<StatementPtr> Parser::ParseProcBodyStatement() {
  if (PeekKeyword("DECLARE")) {
    // Distinguish DECLARE var TYPE from DECLARE PROCEDURE (top-level only).
    Advance();
    auto stmt = Statement::Make(StatementKind::kDeclareVar);
    UV_ASSIGN_OR_RETURN(stmt->declare_var.name, ExpectIdentifier());
    UV_ASSIGN_OR_RETURN(stmt->declare_var.type, ParseDataType());
    if (MatchKeyword("DEFAULT")) {
      UV_ASSIGN_OR_RETURN(stmt->declare_var.init, ParseExpr());
    }
    return stmt;
  }
  if (PeekKeyword("SET")) {
    Advance();
    auto stmt = Statement::Make(StatementKind::kSetVar);
    UV_ASSIGN_OR_RETURN(stmt->set_var.name, ExpectIdentifier());
    UV_RETURN_NOT_OK(ExpectSymbol("="));
    UV_ASSIGN_OR_RETURN(stmt->set_var.value, ParseExpr());
    return stmt;
  }
  if (PeekKeyword("IF")) {
    Advance();
    auto stmt = Statement::Make(StatementKind::kIf);
    for (;;) {
      IfBranch branch;
      UV_ASSIGN_OR_RETURN(branch.condition, ParseExpr());
      UV_RETURN_NOT_OK(ExpectKeyword("THEN"));
      UV_ASSIGN_OR_RETURN(branch.body,
                          ParseProcBodyUntil({"ELSEIF", "ELIF", "ELSE", "END"}));
      stmt->if_stmt.branches.push_back(std::move(branch));
      if (MatchKeyword("ELSEIF") || MatchKeyword("ELIF")) continue;
      break;
    }
    if (MatchKeyword("ELSE")) {
      IfBranch els;
      UV_ASSIGN_OR_RETURN(els.body, ParseProcBodyUntil({"END"}));
      stmt->if_stmt.branches.push_back(std::move(els));
    }
    UV_RETURN_NOT_OK(ExpectKeyword("END"));
    UV_RETURN_NOT_OK(ExpectKeyword("IF"));
    return stmt;
  }
  if (PeekKeyword("WHILE")) {
    Advance();
    auto stmt = Statement::Make(StatementKind::kWhile);
    UV_ASSIGN_OR_RETURN(stmt->while_stmt.condition, ParseExpr());
    UV_RETURN_NOT_OK(ExpectKeyword("DO"));
    UV_ASSIGN_OR_RETURN(stmt->while_stmt.body, ParseProcBodyUntil({"END"}));
    UV_RETURN_NOT_OK(ExpectKeyword("END"));
    UV_RETURN_NOT_OK(ExpectKeyword("WHILE"));
    return stmt;
  }
  if (PeekKeyword("LEAVE")) {
    Advance();
    auto stmt = Statement::Make(StatementKind::kLeave);
    if (Peek().type == TokenType::kIdentifier) {
      stmt->leave_label = Advance().text;
    }
    return stmt;
  }
  if (PeekKeyword("SIGNAL")) {
    Advance();
    UV_RETURN_NOT_OK(ExpectKeyword("SQLSTATE"));
    auto stmt = Statement::Make(StatementKind::kSignal);
    if (Peek().type != TokenType::kString) {
      return UnexpectedToken(Peek(), "SQLSTATE string");
    }
    stmt->signal.sqlstate = Advance().text;
    if (MatchKeyword("SET")) {
      UV_RETURN_NOT_OK(ExpectKeyword("MESSAGE_TEXT"));
      UV_RETURN_NOT_OK(ExpectSymbol("="));
      if (Peek().type != TokenType::kString) {
        return UnexpectedToken(Peek(), "message string");
      }
      stmt->signal.message = Advance().text;
    }
    return stmt;
  }
  return ParseOneStatement();
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

Result<ExprPtr> Parser::ParseExpr() {
  UV_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
  while (PeekKeyword("OR")) {
    Advance();
    UV_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
    lhs = Expr::MakeBinary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAnd() {
  UV_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
  while (PeekKeyword("AND")) {
    Advance();
    UV_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
    lhs = Expr::MakeBinary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseNot() {
  if (MatchKeyword("NOT")) {
    UV_ASSIGN_OR_RETURN(ExprPtr child, ParseNot());
    return Expr::MakeUnary(UnaryOp::kNot, std::move(child));
  }
  return ParseComparison();
}

Result<ExprPtr> Parser::ParseComparison() {
  UV_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
  if (Peek().type == TokenType::kSymbol) {
    const std::string& sym = Peek().text;
    BinaryOp op;
    bool matched = true;
    if (sym == "=") op = BinaryOp::kEq;
    else if (sym == "!=") op = BinaryOp::kNe;
    else if (sym == "<") op = BinaryOp::kLt;
    else if (sym == "<=") op = BinaryOp::kLe;
    else if (sym == ">") op = BinaryOp::kGt;
    else if (sym == ">=") op = BinaryOp::kGe;
    else matched = false;
    if (matched) {
      Advance();
      UV_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      return Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
    }
  }
  if (PeekKeyword("IS")) {
    Advance();
    bool negate = MatchKeyword("NOT");
    UV_RETURN_NOT_OK(ExpectKeyword("NULL"));
    ExprPtr isnull = Expr::MakeFunc("ISNULL", {std::move(lhs)});
    if (negate) return Expr::MakeUnary(UnaryOp::kNot, std::move(isnull));
    return isnull;
  }
  if (PeekKeyword("BETWEEN")) {
    Advance();
    UV_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
    UV_RETURN_NOT_OK(ExpectKeyword("AND"));
    UV_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
    // Desugars to lhs >= lo AND lhs <= hi.
    return Expr::MakeBinary(
        BinaryOp::kAnd, Expr::MakeBinary(BinaryOp::kGe, lhs, std::move(lo)),
        Expr::MakeBinary(BinaryOp::kLe, lhs, std::move(hi)));
  }
  if (PeekKeyword("LIKE") || (PeekKeyword("NOT") && PeekKeyword("LIKE", 1))) {
    bool negate = MatchKeyword("NOT");
    UV_RETURN_NOT_OK(ExpectKeyword("LIKE"));
    UV_ASSIGN_OR_RETURN(ExprPtr pattern, ParseAdditive());
    ExprPtr like =
        Expr::MakeFunc("LIKE", {std::move(lhs), std::move(pattern)});
    if (negate) return Expr::MakeUnary(UnaryOp::kNot, std::move(like));
    return like;
  }
  if (PeekKeyword("IN") || (PeekKeyword("NOT") && PeekKeyword("IN", 1))) {
    bool negate = MatchKeyword("NOT");
    UV_RETURN_NOT_OK(ExpectKeyword("IN"));
    UV_RETURN_NOT_OK(ExpectSymbol("("));
    std::vector<ExprPtr> list;
    for (;;) {
      UV_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      list.push_back(std::move(e));
      if (!MatchSymbol(",")) break;
    }
    UV_RETURN_NOT_OK(ExpectSymbol(")"));
    ExprPtr in = Expr::MakeInList(std::move(lhs), std::move(list));
    if (negate) return Expr::MakeUnary(UnaryOp::kNot, std::move(in));
    return in;
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAdditive() {
  UV_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
  for (;;) {
    if (MatchSymbol("+")) {
      UV_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = Expr::MakeBinary(BinaryOp::kAdd, std::move(lhs), std::move(rhs));
    } else if (MatchSymbol("-")) {
      UV_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = Expr::MakeBinary(BinaryOp::kSub, std::move(lhs), std::move(rhs));
    } else {
      return lhs;
    }
  }
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  UV_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
  for (;;) {
    if (MatchSymbol("*")) {
      UV_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = Expr::MakeBinary(BinaryOp::kMul, std::move(lhs), std::move(rhs));
    } else if (MatchSymbol("/")) {
      UV_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = Expr::MakeBinary(BinaryOp::kDiv, std::move(lhs), std::move(rhs));
    } else if (MatchSymbol("%")) {
      UV_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = Expr::MakeBinary(BinaryOp::kMod, std::move(lhs), std::move(rhs));
    } else {
      return lhs;
    }
  }
}

Result<ExprPtr> Parser::ParseUnary() {
  if (MatchSymbol("-")) {
    UV_ASSIGN_OR_RETURN(ExprPtr child, ParseUnary());
    return Expr::MakeUnary(UnaryOp::kNeg, std::move(child));
  }
  return ParsePrimary();
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& tok = Peek();
  if (tok.type == TokenType::kNumber) {
    Token t = Advance();
    if (t.is_double) {
      return Expr::MakeLiteral(Value::Double(std::strtod(t.text.c_str(), nullptr)));
    }
    return Expr::MakeLiteral(
        Value::Int(std::strtoll(t.text.c_str(), nullptr, 10)));
  }
  if (tok.type == TokenType::kString) {
    return Expr::MakeLiteral(Value::String(Advance().text));
  }
  if (tok.type == TokenType::kSymbol && tok.text == "(") {
    Advance();
    if (PeekKeyword("SELECT")) {
      Advance();
      UV_ASSIGN_OR_RETURN(auto sel, ParseSelectBody());
      UV_RETURN_NOT_OK(ExpectSymbol(")"));
      return Expr::MakeSubquery(std::move(sel));
    }
    UV_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    UV_RETURN_NOT_OK(ExpectSymbol(")"));
    return e;
  }
  if (tok.type == TokenType::kIdentifier) {
    if (MatchKeyword("NULL")) return Expr::MakeLiteral(Value::Null());
    if (MatchKeyword("TRUE")) return Expr::MakeLiteral(Value::Bool(true));
    if (MatchKeyword("FALSE")) return Expr::MakeLiteral(Value::Bool(false));

    std::string name = Advance().text;
    if (MatchSymbol("(")) {  // function call
      std::vector<ExprPtr> args;
      bool star = false;
      if (MatchSymbol("*")) {
        star = true;
        UV_RETURN_NOT_OK(ExpectSymbol(")"));
      } else if (!MatchSymbol(")")) {
        for (;;) {
          UV_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          args.push_back(std::move(e));
          if (!MatchSymbol(",")) break;
        }
        UV_RETURN_NOT_OK(ExpectSymbol(")"));
      }
      return Expr::MakeFunc(ToUpper(name), std::move(args), star);
    }
    if (MatchSymbol(".")) {  // table.column
      if (MatchSymbol("*")) {
        // table.* — treated like bare * scoped to the table.
        auto e = Expr::MakeStar();
        e->table = name;
        return e;
      }
      UV_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
      return Expr::MakeColumn(std::move(name), std::move(col));
    }
    return Expr::MakeColumn("", std::move(name));
  }
  return UnexpectedToken(tok, "expression");
}

bool IsAggregateFunction(const std::string& upper_name) {
  return upper_name == "COUNT" || upper_name == "SUM" || upper_name == "MIN" ||
         upper_name == "MAX" || upper_name == "AVG";
}

}  // namespace ultraverse::sql
