#include "sqldb/evaluator.h"

#include <algorithm>
#include <set>
#include <cmath>
#include <map>

#include "sqldb/access_path.h"
#include "util/nondet_builtins.h"
#include "util/string_util.h"

namespace ultraverse::sql {

const Value* RowScope::Resolve(const std::string& table,
                               const std::string& column) const {
  for (const Binding& b : bindings) {
    if (!table.empty() && !EqualsIgnoreCase(b.alias, table)) continue;
    for (size_t i = 0; i < b.columns->size(); ++i) {
      if (EqualsIgnoreCase((*b.columns)[i], column)) return &(*b.row)[i];
    }
  }
  if (parent) return parent->Resolve(table, column);
  return nullptr;
}

namespace {

std::vector<std::string> SchemaColumnNames(const TableSchema& schema) {
  std::vector<std::string> names;
  names.reserve(schema.columns.size());
  for (const auto& c : schema.columns) names.push_back(c.name);
  return names;
}

bool IsTruthy(const Value& v) { return !v.is_null() && v.AsBool(); }

/// SQL LIKE: '%' matches any run, '_' matches one character.
bool LikeMatch(const std::string& s, const std::string& pat, size_t si = 0,
               size_t pi = 0) {
  while (pi < pat.size()) {
    char pc = pat[pi];
    if (pc == '%') {
      // Collapse consecutive %'s, then try every split point.
      while (pi < pat.size() && pat[pi] == '%') ++pi;
      if (pi == pat.size()) return true;
      for (size_t k = si; k <= s.size(); ++k) {
        if (LikeMatch(s, pat, k, pi)) return true;
      }
      return false;
    }
    if (si >= s.size()) return false;
    if (pc != '_' && pc != s[si]) return false;
    ++si;
    ++pi;
  }
  return si == s.size();
}

}  // namespace

Value Evaluator::CompareSql(const Value& a, const Value& b, BinaryOp op) {
  if (a.is_null() || b.is_null()) return Value::Null();
  int cmp;
  bool a_num = a.type() == DataType::kInt || a.type() == DataType::kDouble ||
               a.type() == DataType::kBool;
  bool b_num = b.type() == DataType::kInt || b.type() == DataType::kDouble ||
               b.type() == DataType::kBool;
  if (a.type() == DataType::kString && b.type() == DataType::kString) {
    cmp = a.AsStringRef().compare(b.AsStringRef());
    cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
  } else if (a_num || b_num) {
    // MySQL-style numeric coercion when either side is numeric.
    double x = a.AsDouble(), y = b.AsDouble();
    cmp = x < y ? -1 : (x > y ? 1 : 0);
  } else {
    cmp = a.Compare(b);
  }
  switch (op) {
    case BinaryOp::kEq: return Value::Bool(cmp == 0);
    case BinaryOp::kNe: return Value::Bool(cmp != 0);
    case BinaryOp::kLt: return Value::Bool(cmp < 0);
    case BinaryOp::kLe: return Value::Bool(cmp <= 0);
    case BinaryOp::kGt: return Value::Bool(cmp > 0);
    case BinaryOp::kGe: return Value::Bool(cmp >= 0);
    default: return Value::Null();
  }
}

Value Evaluator::ArithSql(const Value& lhs, const Value& rhs, BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: case BinaryOp::kSub: case BinaryOp::kMul: {
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      bool both_int = lhs.type() == DataType::kInt &&
                      rhs.type() == DataType::kInt;
      double x = lhs.AsDouble(), y = rhs.AsDouble();
      double r = op == BinaryOp::kAdd ? x + y
                 : op == BinaryOp::kSub ? x - y
                                        : x * y;
      if (both_int) return Value::Int(int64_t(std::llround(r)));
      return Value::Double(r);
    }
    case BinaryOp::kDiv: {
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      double y = rhs.AsDouble();
      if (y == 0.0) return Value::Null();  // MySQL: x/0 is NULL
      return Value::Double(lhs.AsDouble() / y);
    }
    case BinaryOp::kMod: {
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      int64_t y = rhs.AsInt();
      if (y == 0) return Value::Null();
      return Value::Int(lhs.AsInt() % y);
    }
    default:
      return Value::Null();
  }
}

Result<Value> Evaluator::Eval(const Expr& e, const RowScope* scope) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal;
    case ExprKind::kStar:
      return Status::InvalidArgument("* is only valid inside COUNT(*)");
    case ExprKind::kColumnRef: {
      if (scope) {
        const Value* v = scope->Resolve(e.table, e.column);
        if (v) return *v;
      }
      if (ctx_) {
        // Procedure variables; trigger bodies reference NEW.col / OLD.col
        // which are bound as variables named "NEW.col" / "OLD.col".
        const std::string key =
            e.table.empty() ? e.column : e.table + "." + e.column;
        const Value* var = ctx_->FindVar(key);
        if (var) return *var;
      }
      return Status::NotFound("unresolved name '" +
                              (e.table.empty() ? e.column
                                               : e.table + "." + e.column) +
                              "'");
    }
    case ExprKind::kVarRef: {
      if (ctx_) {
        const Value* var = ctx_->FindVar(e.var_name);
        if (var) return *var;
      }
      return Status::NotFound("unresolved variable '" + e.var_name + "'");
    }
    case ExprKind::kUnary: {
      UV_ASSIGN_OR_RETURN(Value child, Eval(*e.children[0], scope));
      if (e.unary_op == UnaryOp::kNeg) {
        if (child.is_null()) return Value::Null();
        if (child.type() == DataType::kInt) return Value::Int(-child.AsInt());
        return Value::Double(-child.AsDouble());
      }
      if (child.is_null()) return Value::Null();
      return Value::Bool(!child.AsBool());
    }
    case ExprKind::kBinary: {
      BinaryOp op = e.binary_op;
      if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
        UV_ASSIGN_OR_RETURN(Value lhs, Eval(*e.children[0], scope));
        // Kleene three-valued logic with short-circuit.
        if (op == BinaryOp::kAnd && !lhs.is_null() && !lhs.AsBool()) {
          return Value::Bool(false);
        }
        if (op == BinaryOp::kOr && !lhs.is_null() && lhs.AsBool()) {
          return Value::Bool(true);
        }
        UV_ASSIGN_OR_RETURN(Value rhs, Eval(*e.children[1], scope));
        if (op == BinaryOp::kAnd) {
          if (!rhs.is_null() && !rhs.AsBool()) return Value::Bool(false);
          if (lhs.is_null() || rhs.is_null()) return Value::Null();
          return Value::Bool(true);
        }
        if (!rhs.is_null() && rhs.AsBool()) return Value::Bool(true);
        if (lhs.is_null() || rhs.is_null()) return Value::Null();
        return Value::Bool(false);
      }
      UV_ASSIGN_OR_RETURN(Value lhs, Eval(*e.children[0], scope));
      UV_ASSIGN_OR_RETURN(Value rhs, Eval(*e.children[1], scope));
      switch (op) {
        case BinaryOp::kEq: case BinaryOp::kNe: case BinaryOp::kLt:
        case BinaryOp::kLe: case BinaryOp::kGt: case BinaryOp::kGe:
          return CompareSql(lhs, rhs, op);
        case BinaryOp::kAdd: case BinaryOp::kSub: case BinaryOp::kMul:
        case BinaryOp::kDiv: case BinaryOp::kMod:
          return ArithSql(lhs, rhs, op);
        default:
          return Status::Internal("unhandled binary op");
      }
    }
    case ExprKind::kFuncCall:
      return EvalFunc(e, scope);
    case ExprKind::kSubquery: {
      RowScope sub_parent;
      UV_ASSIGN_OR_RETURN(ExecResult res, EvalSelect(*e.subquery, scope));
      if (res.rows.empty()) return Value::Null();
      if (res.rows[0].empty()) return Value::Null();
      return res.rows[0][0];
    }
    case ExprKind::kInList: {
      UV_ASSIGN_OR_RETURN(Value needle, Eval(*e.children[0], scope));
      if (needle.is_null()) return Value::Null();
      bool saw_null = false;
      for (size_t i = 1; i < e.children.size(); ++i) {
        UV_ASSIGN_OR_RETURN(Value item, Eval(*e.children[i], scope));
        Value eq = CompareSql(needle, item, BinaryOp::kEq);
        if (eq.is_null()) saw_null = true;
        else if (eq.AsBool()) return Value::Bool(true);
      }
      if (saw_null) return Value::Null();
      return Value::Bool(false);
    }
  }
  return Status::Internal("unhandled expression kind");
}

bool Evaluator::IsPureBuiltin(const std::string& f) {
  return f == "CONCAT" || f == "LIKE" || f == "COALESCE" || f == "IFNULL" ||
         f == "ISNULL" || f == "ABS" || f == "FLOOR" || f == "CEIL" ||
         f == "CEILING" || f == "MOD" || f == "UPPER" || f == "LOWER" ||
         f == "LENGTH" || f == "SUBSTR" || f == "SUBSTRING";
}

Result<Value> Evaluator::EvalPureBuiltin(const std::string& f,
                                         const std::vector<Value>& args) {
  if (f == "CONCAT") {
    std::string out;
    for (const Value& v : args) {
      if (v.is_null()) return Value::Null();
      out += v.ToDisplayString();
    }
    return Value::String(std::move(out));
  }
  if (f == "LIKE") {
    if (args.size() != 2) return Status::InvalidArgument("LIKE arity");
    if (args[0].is_null() || args[1].is_null()) return Value::Null();
    return Value::Bool(
        LikeMatch(args[0].ToDisplayString(), args[1].ToDisplayString()));
  }
  if (f == "COALESCE" || f == "IFNULL") {
    for (const Value& v : args) {
      if (!v.is_null()) return v;
    }
    return Value::Null();
  }
  if (f == "ISNULL") {
    if (args.size() != 1) return Status::InvalidArgument("ISNULL arity");
    return Value::Bool(args[0].is_null());
  }
  if (f == "ABS") {
    if (args.empty() || args[0].is_null()) return Value::Null();
    if (args[0].type() == DataType::kInt) {
      return Value::Int(std::llabs(args[0].AsInt()));
    }
    return Value::Double(std::fabs(args[0].AsDouble()));
  }
  if (f == "FLOOR") {
    if (args.empty() || args[0].is_null()) return Value::Null();
    return Value::Int(int64_t(std::floor(args[0].AsDouble())));
  }
  if (f == "CEIL" || f == "CEILING") {
    if (args.empty() || args[0].is_null()) return Value::Null();
    return Value::Int(int64_t(std::ceil(args[0].AsDouble())));
  }
  if (f == "MOD") {
    if (args.size() != 2 || args[0].is_null() || args[1].is_null()) {
      return Value::Null();
    }
    int64_t y = args[1].AsInt();
    if (y == 0) return Value::Null();
    return Value::Int(args[0].AsInt() % y);
  }
  if (f == "UPPER") {
    if (args.empty() || args[0].is_null()) return Value::Null();
    return Value::String(ToUpper(args[0].ToDisplayString()));
  }
  if (f == "LOWER") {
    if (args.empty() || args[0].is_null()) return Value::Null();
    return Value::String(ToLower(args[0].ToDisplayString()));
  }
  if (f == "LENGTH") {
    if (args.empty() || args[0].is_null()) return Value::Null();
    return Value::Int(int64_t(args[0].ToDisplayString().size()));
  }
  if (f == "SUBSTR" || f == "SUBSTRING") {
    if (args.size() < 2 || args[0].is_null()) return Value::Null();
    std::string s = args[0].ToDisplayString();
    int64_t start = args[1].AsInt();  // 1-based
    if (start < 1) start = 1;
    size_t from = size_t(start - 1);
    if (from >= s.size()) return Value::String("");
    size_t len = args.size() > 2 ? size_t(std::max<int64_t>(0, args[2].AsInt()))
                                 : std::string::npos;
    return Value::String(s.substr(from, len));
  }
  return Status::Internal("not a pure builtin: " + f);
}

Result<Value> Evaluator::EvalFunc(const Expr& e, const RowScope* scope) {
  const std::string& f = e.func_name;
  if (IsAggregateFunction(f)) {
    return Status::InvalidArgument("aggregate " + f +
                                   " outside SELECT aggregation");
  }
  std::vector<Value> args;
  args.reserve(e.children.size());
  for (const auto& child : e.children) {
    UV_ASSIGN_OR_RETURN(Value v, Eval(*child, scope));
    args.push_back(std::move(v));
  }

  if (IsPureBuiltin(f)) return EvalPureBuiltin(f, args);
  // Nondeterministic functions: recorded/replayed via ExecContext (§4.4).
  // The shared membership predicates keep this dispatch, the DSE layer and
  // the static lint pass agreeing on what counts as nondeterministic.
  if (nondet::IsSqlTimeBuiltin(f)) {
    return ctx_->NextNondetValue(
        [&] { return Value::Int(db_->NextTimestamp()); });
  }
  if (nondet::IsSqlRandomBuiltin(f)) {
    return ctx_->NextNondetValue(
        [&] { return Value::Double(db_->rng_.UniformDouble()); });
  }
  return Status::Unsupported("unknown function " + f);
}

bool Evaluator::ContainsAggregate(const Expr& e) {
  if (e.kind == ExprKind::kFuncCall && IsAggregateFunction(e.func_name)) {
    return true;
  }
  for (const auto& child : e.children) {
    if (ContainsAggregate(*child)) return true;
  }
  return false;
}

Result<Evaluator::Source> Evaluator::MaterializeSource(const std::string& name,
                                                       const std::string& alias,
                                                       const RowScope* outer) {
  Source src;
  src.alias = alias.empty() ? name : alias;
  if (const Table* table = db_->FindTable(name)) {
    src.columns = SchemaColumnNames(table->schema());
    src.rows.reserve(table->LiveRowCount());
    table->Scan([&](RowId, const Row& row) {
      src.rows.push_back(row);
      return true;
    });
    return src;
  }
  if (const auto* view = db_->FindView(name)) {
    UV_ASSIGN_OR_RETURN(ExecResult res, EvalSelect(**view, outer));
    src.columns = std::move(res.column_names);
    src.rows = std::move(res.rows);
    return src;
  }
  return Status::NotFound("unknown table or view '" + name + "'");
}

Result<std::vector<RowId>> Evaluator::MatchRows(Table* table,
                                                const ExprPtr& where,
                                                const RowScope* outer) {
  if (!where) return table->LiveRowIds();
  std::vector<std::string> columns = SchemaColumnNames(table->schema());

  // Cost-based index path: pick the cheapest `col = <row-free expr>`
  // conjunct through the chooser both engines share (the choice changes
  // which rows the coercing predicate even sees, so it must be identical
  // across engines — see access_path.h).
  std::vector<EqConjunct> conjuncts =
      CollectEqConjuncts(table->schema(), *table, where.get());
  std::optional<AccessChoice> choice = ChooseAccess(
      *table, conjuncts, [&](const Expr& key) -> std::optional<Value> {
        // Key must evaluate without the row scope (constants, vars, outer).
        Result<Value> rv = Eval(key, outer);
        if (!rv.ok()) return std::nullopt;
        return std::move(*rv);
      });

  if (!choice) {
    // Unindexed filter: evaluate inside Scan() so the row pages are walked
    // in order (one page dereference per page, not per row) instead of
    // materializing every live id and re-resolving each one.
    std::vector<RowId> out;
    Status scan_status = Status::OK();
    RowScope scope;
    scope.parent = outer;
    scope.bindings.push_back({table->schema().name, &columns, nullptr});
    table->Scan([&](RowId id, const Row& row) {
      scope.bindings[0].row = &row;
      Result<Value> match = Eval(*where, &scope);
      if (!match.ok()) {
        scan_status = match.status();
        return false;
      }
      if (IsTruthy(*match)) out.push_back(id);
      return true;
    });
    UV_RETURN_NOT_OK(scan_status);
    return out;
  }

  std::vector<RowId> candidates =
      table->IndexLookup(choice->column, choice->key);
  // Ascending ids: hash-index iteration order is arbitrary, and row visit
  // order is observable (nondet consumption, trigger firing), so both
  // engines normalize to scan order.
  std::sort(candidates.begin(), candidates.end());
  std::vector<RowId> out;
  RowScope scope;
  scope.parent = outer;
  scope.bindings.push_back({table->schema().name, &columns, nullptr});
  for (RowId id : candidates) {
    if (!table->IsLive(id)) continue;
    const Row& row = table->GetRow(id);
    scope.bindings[0].row = &row;
    UV_ASSIGN_OR_RETURN(Value match, Eval(*where, &scope));
    if (IsTruthy(match)) out.push_back(id);
  }
  return out;
}

Result<ExecResult> Evaluator::EvalSelect(const SelectStatement& sel,
                                         const RowScope* outer) {
  ExecResult result;

  // Materialize sources (FROM + JOINs).
  std::vector<Source> sources;
  if (!sel.from_table.empty()) {
    UV_ASSIGN_OR_RETURN(
        Source s, MaterializeSource(sel.from_table, sel.from_alias, outer));
    sources.push_back(std::move(s));
    for (const auto& join : sel.joins) {
      UV_ASSIGN_OR_RETURN(Source js,
                          MaterializeSource(join.table, join.alias, outer));
      sources.push_back(std::move(js));
    }
  }

  // Expand * into column refs; derive output column names.
  std::vector<SelectItem> items;
  for (const auto& item : sel.items) {
    if (item.expr->kind == ExprKind::kStar) {
      for (const auto& src : sources) {
        if (!item.expr->table.empty() &&
            !EqualsIgnoreCase(item.expr->table, src.alias)) {
          continue;
        }
        for (const auto& col : src.columns) {
          SelectItem expanded;
          expanded.expr = Expr::MakeColumn(src.alias, col);
          expanded.alias = col;
          items.push_back(std::move(expanded));
        }
      }
    } else {
      items.push_back(item);
    }
  }
  for (const auto& item : items) {
    if (!item.alias.empty()) {
      result.column_names.push_back(item.alias);
    } else {
      result.column_names.push_back(ToSql(*item.expr));
    }
  }

  // Enumerate joined tuples that satisfy ON + WHERE.
  struct Tuple {
    std::vector<const Row*> rows;
  };
  std::vector<Tuple> tuples;
  {
    Tuple current;
    current.rows.resize(sources.size(), nullptr);
    // Recursive nested-loop join.
    auto make_scope = [&](size_t depth, RowScope* scope) {
      scope->bindings.clear();
      scope->parent = outer;
      for (size_t i = 0; i < depth; ++i) {
        scope->bindings.push_back(
            {sources[i].alias, &sources[i].columns, current.rows[i]});
      }
    };
    Status join_status = Status::OK();
    auto recurse = [&](auto&& self, size_t depth) -> void {
      if (!join_status.ok()) return;
      if (depth == sources.size()) {
        if (sel.where) {
          RowScope scope;
          make_scope(depth, &scope);
          Result<Value> m = Eval(*sel.where, &scope);
          if (!m.ok()) {
            join_status = m.status();
            return;
          }
          if (!IsTruthy(*m)) return;
        }
        tuples.push_back(current);
        return;
      }
      for (const Row& row : sources[depth].rows) {
        current.rows[depth] = &row;
        if (depth > 0 && depth - 1 < sel.joins.size() &&
            sel.joins[depth - 1].on) {
          RowScope scope;
          make_scope(depth + 1, &scope);
          Result<Value> m = Eval(*sel.joins[depth - 1].on, &scope);
          if (!m.ok()) {
            join_status = m.status();
            return;
          }
          if (!IsTruthy(*m)) continue;
        }
        self(self, depth + 1);
      }
    };
    if (sources.empty()) {
      // Table-less SELECT evaluates items once (WHERE still applies).
      bool pass = true;
      if (sel.where) {
        UV_ASSIGN_OR_RETURN(Value m, Eval(*sel.where, outer));
        pass = IsTruthy(m);
      }
      if (pass) tuples.push_back(current);
    } else {
      recurse(recurse, 0);
      UV_RETURN_NOT_OK(join_status);
    }
  }

  bool has_aggregate = !sel.group_by.empty();
  for (const auto& item : items) {
    if (ContainsAggregate(*item.expr)) has_aggregate = true;
  }

  // Sort keys computed alongside projection so ORDER BY can reference
  // source columns that are not projected.
  struct OutRow {
    Row values;
    Row sort_keys;
  };
  std::vector<OutRow> out_rows;

  auto scope_for_tuple = [&](const Tuple& t, RowScope* scope) {
    scope->bindings.clear();
    scope->parent = outer;
    for (size_t i = 0; i < sources.size(); ++i) {
      scope->bindings.push_back(
          {sources[i].alias, &sources[i].columns, t.rows[i]});
    }
  };

  if (has_aggregate) {
    // Group tuples by GROUP BY key (single group when no GROUP BY).
    std::map<std::string, std::vector<const Tuple*>> groups;
    for (const Tuple& t : tuples) {
      RowScope scope;
      scope_for_tuple(t, &scope);
      std::string key;
      for (const auto& g : sel.group_by) {
        UV_ASSIGN_OR_RETURN(Value v, Eval(*g, &scope));
        v.EncodeTo(&key);
      }
      groups[key].push_back(&t);
    }
    if (groups.empty() && sel.group_by.empty()) {
      groups[""] = {};  // Aggregates over an empty input produce one row.
    }
    for (auto& [key, group_tuples] : groups) {
      (void)key;
      std::vector<RowScope> scopes(group_tuples.size());
      std::vector<const RowScope*> scope_ptrs;
      for (size_t i = 0; i < group_tuples.size(); ++i) {
        scope_for_tuple(*group_tuples[i], &scopes[i]);
        scope_ptrs.push_back(&scopes[i]);
      }
      const RowScope* rep = scope_ptrs.empty() ? outer : scope_ptrs[0];
      if (sel.having) {
        UV_ASSIGN_OR_RETURN(Value keep,
                            EvalInGroup(*sel.having, scope_ptrs, rep));
        if (!IsTruthy(keep)) continue;
      }
      OutRow out;
      for (const auto& item : items) {
        UV_ASSIGN_OR_RETURN(Value v, EvalInGroup(*item.expr, scope_ptrs, rep));
        out.values.push_back(std::move(v));
      }
      for (const auto& ob : sel.order_by) {
        UV_ASSIGN_OR_RETURN(Value v, EvalInGroup(*ob.expr, scope_ptrs, rep));
        out.sort_keys.push_back(std::move(v));
      }
      out_rows.push_back(std::move(out));
    }
  } else {
    for (const Tuple& t : tuples) {
      RowScope scope;
      scope_for_tuple(t, &scope);
      OutRow out;
      for (const auto& item : items) {
        UV_ASSIGN_OR_RETURN(Value v, Eval(*item.expr, &scope));
        out.values.push_back(std::move(v));
      }
      for (const auto& ob : sel.order_by) {
        UV_ASSIGN_OR_RETURN(Value v, Eval(*ob.expr, &scope));
        out.sort_keys.push_back(std::move(v));
      }
      out_rows.push_back(std::move(out));
    }
  }

  if (!sel.order_by.empty()) {
    std::stable_sort(out_rows.begin(), out_rows.end(),
                     [&](const OutRow& a, const OutRow& b) {
                       for (size_t i = 0; i < sel.order_by.size(); ++i) {
                         int c = a.sort_keys[i].Compare(b.sort_keys[i]);
                         if (c != 0) {
                           return sel.order_by[i].descending ? c > 0 : c < 0;
                         }
                       }
                       return false;
                     });
  }
  if (sel.distinct) {
    std::set<std::string> seen;
    std::vector<OutRow> unique;
    for (auto& row : out_rows) {
      if (seen.insert(EncodeRow(row.values)).second) {
        unique.push_back(std::move(row));
      }
    }
    out_rows = std::move(unique);
  }
  if (sel.limit >= 0 && int64_t(out_rows.size()) > sel.limit) {
    out_rows.resize(size_t(sel.limit));
  }

  result.rows.reserve(out_rows.size());
  for (auto& r : out_rows) result.rows.push_back(std::move(r.values));

  // SELECT ... INTO var(s): bind the first row (NULLs when empty).
  if (!sel.into_vars.empty() && ctx_) {
    for (size_t i = 0; i < sel.into_vars.size(); ++i) {
      Value v = (!result.rows.empty() && i < result.rows[0].size())
                    ? result.rows[0][i]
                    : Value::Null();
      ctx_->SetVar(sel.into_vars[i], std::move(v));
    }
  }
  return result;
}

Result<Value> Evaluator::EvalInGroup(const Expr& e,
                                     const std::vector<const RowScope*>& group,
                                     const RowScope* representative) {
  if (e.kind == ExprKind::kFuncCall && IsAggregateFunction(e.func_name)) {
    const std::string& f = e.func_name;
    if (f == "COUNT" && (e.star_arg || e.children.empty())) {
      return Value::Int(int64_t(group.size()));
    }
    if (e.children.empty()) {
      return Status::InvalidArgument(f + " requires an argument");
    }
    int64_t count = 0;
    double sum = 0;
    bool all_int = true;
    Value min_v, max_v;
    for (const RowScope* scope : group) {
      UV_ASSIGN_OR_RETURN(Value v, Eval(*e.children[0], scope));
      if (v.is_null()) continue;
      ++count;
      sum += v.AsDouble();
      if (v.type() != DataType::kInt) all_int = false;
      if (min_v.is_null() || v.Compare(min_v) < 0) min_v = v;
      if (max_v.is_null() || v.Compare(max_v) > 0) max_v = v;
    }
    if (f == "COUNT") return Value::Int(count);
    if (count == 0) return Value::Null();
    if (f == "SUM") {
      return all_int ? Value::Int(int64_t(std::llround(sum)))
                     : Value::Double(sum);
    }
    if (f == "AVG") return Value::Double(sum / double(count));
    if (f == "MIN") return min_v;
    if (f == "MAX") return max_v;
    return Status::Internal("unhandled aggregate");
  }
  if (!ContainsAggregate(e)) {
    // Plain expression inside an aggregate query: evaluate against the
    // representative row (MySQL-permissive semantics).
    return Eval(e, representative);
  }
  // Mixed node: recurse, combining aggregate children.
  Expr combined = e;
  combined.children.clear();
  std::vector<Value> child_values;
  for (const auto& child : e.children) {
    UV_ASSIGN_OR_RETURN(Value v, EvalInGroup(*child, group, representative));
    combined.children.push_back(Expr::MakeLiteral(std::move(v)));
  }
  return Eval(combined, representative);
}

}  // namespace ultraverse::sql
