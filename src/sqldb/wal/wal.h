#ifndef ULTRAVERSE_SQLDB_WAL_WAL_H_
#define ULTRAVERSE_SQLDB_WAL_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sqldb/query_log.h"
#include "util/status.h"

namespace ultraverse::sql {

/// Durable write-ahead query log (DESIGN.md §11). Each record is
///
///   [u8 type][u32 payload_len][u32 crc32(type || payload)][payload]
///
/// little-endian, appended strictly sequentially. Two record types exist:
/// committed LogEntry records and what-if commit markers (the atomic
/// what-if publish protocol). Recovery scans from the start, verifies
/// every CRC, and truncates at the first torn or corrupt record — the
/// classic ARIES-style "the tail may be torn, the prefix is truth" rule.
enum class WalRecordType : uint8_t {
  kEntry = 1,
  kWhatIfCommit = 2,
};

/// Durable image of a committed retroactive operation: everything recovery
/// needs to re-apply the what-if deterministically. `kind` mirrors
/// core::RetroOp::Kind (sqldb cannot depend on core): 0=add 1=remove
/// 2=change. `new_stmt_nondet` is the nondeterminism the retroactive
/// statement generated when the live replay first executed it — recovery
/// re-injects it so the re-derived universe is bit-identical.
struct WhatIfMarker {
  uint8_t kind = 1;
  uint64_t index = 0;
  std::string new_sql;
  NondetRecord new_stmt_nondet;
  /// Number of WAL entry records preceding this marker (set by recovery;
  /// markers apply to the log prefix that existed when they committed).
  uint64_t entries_before = 0;
};

struct WalOptions {
  /// Fsync after every Nth appended entry record (group commit). 1 =
  /// every append (safest, slowest), 0 = only on explicit Sync() and
  /// commit markers. Unsynced appends sit in a process-local buffer and
  /// are LOST on crash — exactly the durability contract of group commit.
  uint64_t fsync_every_n = 1;
  /// When false, Sync() writes the buffer to the file but skips fsync(2)
  /// (benchmarks isolating serialization cost from disk cost).
  bool use_fsync = true;
};

/// Append side of the WAL. Internally synchronized: concurrent committers
/// (server sessions) append under an internal mutex and wait for group
/// durability with WaitDurable, which broadcasts a failed group fsync to
/// EVERY waiter in the group — not just the caller that happened to
/// trigger the sync.
class Wal {
 public:
  /// Opens (creating or appending to) the log at `path`.
  static Result<std::unique_ptr<Wal>> Open(const std::string& path,
                                           WalOptions options = {});
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Serializes one committed entry into the append buffer; flushes +
  /// fsyncs (waiting for the result) when the group-commit threshold is
  /// reached. Sub-threshold appends return OK with durability deferred —
  /// the group-commit contract: a crash loses the unsynced window.
  Status AppendEntry(const LogEntry& entry);

  /// Appends one committed entry WITHOUT waiting for durability and
  /// returns its append sequence number (monotonic from 1). Callers that
  /// need the entry durable pass the seq to WaitDurable — typically after
  /// releasing whatever commit lock serialized the append, so concurrent
  /// committers pile into one fsync (real group commit). `sync_due`
  /// (nullable) is set when the group-commit threshold has been reached,
  /// i.e. the caller owes a WaitDurable under the configured durability
  /// contract (fsync_every_n).
  Result<uint64_t> AppendEntryAsync(const LogEntry& entry,
                                    bool* sync_due = nullptr);

  /// Blocks until every record up to `seq` is durably synced, running the
  /// sync itself when no other thread is already doing so (leader
  /// self-promotion). If the sync covering `seq` fails, ALL waiters whose
  /// records fell in that group receive the same error — the group's
  /// durability failed for every member, not just the leader.
  /// seq 0 (no WAL record) returns OK immediately.
  Status WaitDurable(uint64_t seq);

  /// Appends a what-if commit marker and ALWAYS flushes + fsyncs before
  /// returning: the marker's durability is the commit point of the atomic
  /// what-if publish protocol.
  Status AppendWhatIfCommit(const WhatIfMarker& marker);

  /// Flushes buffered records to the file and fsyncs (per options).
  Status Sync();

  /// Simulated process death: drops the unsynced append buffer and closes
  /// the descriptor WITHOUT flushing — exactly what a crash costs a
  /// group-commit window. The crash harness calls this instead of letting
  /// the destructor's best-effort Sync() run.
  void Abandon();

  /// Highest append seq assigned so far (0 = nothing appended).
  uint64_t appended_seq() const;

  const std::string& path() const { return path_; }

 private:
  Wal(std::string path, int fd, WalOptions options);
  Status AppendRecordLocked(WalRecordType type, const std::string& payload);
  /// Runs one sync pass covering everything appended so far. Caller holds
  /// `lk` and has set sync_in_flight_; the file IO runs unlocked so
  /// appenders keep filling the next group. Broadcasts the result.
  Status RunSyncLocked(std::unique_lock<std::mutex>& lk);
  Status WriteAndFsync(std::string* pending);

  std::string path_;
  int fd_ = -1;
  WalOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::string buffer_;        // serialized but not yet written+synced
  uint64_t unsynced_appends_ = 0;
  uint64_t appended_seq_ = 0;    // last seq handed out
  uint64_t synced_seq_ = 0;      // highest seq known durable
  uint64_t failed_upto_seq_ = 0; // failed group covered (..failed_upto_seq_]
  Status sync_error_;            // the failed group's error (sticky per group)
  bool sync_in_flight_ = false;  // a leader is writing+fsyncing unlocked
};

/// Result of scanning a WAL file.
struct WalRecovery {
  /// Entry records in order, statements re-parsed from their SQL text.
  std::vector<LogEntry> entries;
  /// Committed what-if markers in order, `entries_before` populated.
  std::vector<WhatIfMarker> markers;
  size_t valid_bytes = 0;      // byte length of the intact prefix
  size_t truncated_bytes = 0;  // bytes dropped past the intact prefix
  bool tail_torn = false;      // truncation happened (torn or corrupt tail)
};

/// Scans the WAL at `path`, verifying length framing and CRCs. Stops at
/// the first torn (runs past EOF) or corrupt (CRC mismatch) record and
/// reports everything before it. When `truncate_file` is set the file is
/// truncated to the intact prefix, making recovery idempotent on disk.
/// A missing file recovers to an empty log (fresh deployment).
Result<WalRecovery> RecoverWal(const std::string& path, bool truncate_file);

/// Rebuilds `log` (cleared first) from the WAL's entry records: the
/// durable QueryLog::Recover. Statements round-trip through the regular
/// parser; a recovered entry whose SQL no longer parses is a hard
/// kDataLoss error (the log only ever holds statements that parsed).
/// Returns the scan report (markers included, for the caller's
/// commit-marker resolution).
Result<WalRecovery> RecoverQueryLog(const std::string& path, QueryLog* log,
                                    bool truncate_file = true);

// --- Serialization (exposed for tests) -------------------------------------

/// Serializes `entry` to the WAL payload encoding.
std::string EncodeLogEntry(const LogEntry& entry);
/// Parses a payload back; statements are re-parsed from the SQL text.
Result<LogEntry> DecodeLogEntry(const std::string& payload);

std::string EncodeWhatIfMarker(const WhatIfMarker& marker);
Result<WhatIfMarker> DecodeWhatIfMarker(const std::string& payload);

}  // namespace ultraverse::sql

#endif  // ULTRAVERSE_SQLDB_WAL_WAL_H_
