#include "sqldb/wal/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "sqldb/parser.h"
#include "util/crc32.h"

namespace ultraverse::sql {

namespace {

// --- Little-endian primitive encoding ---------------------------------------

void PutU8(std::string* out, uint8_t v) { out->push_back(char(v)); }

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(char((v >> (8 * i)) & 0xFF));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(char((v >> (8 * i)) & 0xFF));
}

void PutI64(std::string* out, int64_t v) { PutU64(out, uint64_t(v)); }

void PutString(std::string* out, const std::string& s) {
  PutU32(out, uint32_t(s.size()));
  out->append(s);
}

void PutDouble(std::string* out, double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  PutU64(out, bits);
}

void PutValue(std::string* out, const Value& v) {
  switch (v.type()) {
    case DataType::kNull:
      PutU8(out, 0);
      break;
    case DataType::kInt:
      PutU8(out, 1);
      PutI64(out, v.AsInt());
      break;
    case DataType::kDouble:
      PutU8(out, 2);
      PutDouble(out, v.AsDouble());
      break;
    case DataType::kString:
      PutU8(out, 3);
      PutString(out, v.AsStringRef());
      break;
    case DataType::kBool:
      PutU8(out, 4);
      PutU8(out, v.AsBool() ? 1 : 0);
      break;
  }
}

void PutValueVec(std::string* out, const std::vector<Value>& values) {
  PutU32(out, uint32_t(values.size()));
  for (const Value& v : values) PutValue(out, v);
}

/// Bounds-checked sequential reader over a payload.
class Reader {
 public:
  explicit Reader(const std::string& data) : data_(data) {}

  Status U8(uint8_t* v) {
    UV_RETURN_NOT_OK(Need(1));
    *v = uint8_t(data_[pos_++]);
    return Status::OK();
  }
  Status U32(uint32_t* v) {
    UV_RETURN_NOT_OK(Need(4));
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= uint32_t(uint8_t(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 4;
    return Status::OK();
  }
  Status U64(uint64_t* v) {
    UV_RETURN_NOT_OK(Need(8));
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= uint64_t(uint8_t(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 8;
    return Status::OK();
  }
  Status I64(int64_t* v) {
    uint64_t u;
    UV_RETURN_NOT_OK(U64(&u));
    *v = int64_t(u);
    return Status::OK();
  }
  Status Str(std::string* s) {
    uint32_t len;
    UV_RETURN_NOT_OK(U32(&len));
    UV_RETURN_NOT_OK(Need(len));
    s->assign(data_, pos_, len);
    pos_ += len;
    return Status::OK();
  }
  Status Dbl(double* d) {
    uint64_t bits;
    UV_RETURN_NOT_OK(U64(&bits));
    std::memcpy(d, &bits, sizeof(*d));
    return Status::OK();
  }
  Status Val(Value* v) {
    uint8_t tag;
    UV_RETURN_NOT_OK(U8(&tag));
    switch (tag) {
      case 0:
        *v = Value::Null();
        return Status::OK();
      case 1: {
        int64_t i;
        UV_RETURN_NOT_OK(I64(&i));
        *v = Value::Int(i);
        return Status::OK();
      }
      case 2: {
        double d;
        UV_RETURN_NOT_OK(Dbl(&d));
        *v = Value::Double(d);
        return Status::OK();
      }
      case 3: {
        std::string s;
        UV_RETURN_NOT_OK(Str(&s));
        *v = Value::String(std::move(s));
        return Status::OK();
      }
      case 4: {
        uint8_t b;
        UV_RETURN_NOT_OK(U8(&b));
        *v = Value::Bool(b != 0);
        return Status::OK();
      }
      default:
        return Status::DataLoss("bad value tag in WAL payload");
    }
  }
  Status ValVec(std::vector<Value>* values) {
    uint32_t n;
    UV_RETURN_NOT_OK(U32(&n));
    values->clear();
    values->reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      Value v;
      UV_RETURN_NOT_OK(Val(&v));
      values->push_back(std::move(v));
    }
    return Status::OK();
  }

  bool exhausted() const { return pos_ == data_.size(); }

 private:
  Status Need(size_t n) {
    if (pos_ + n > data_.size()) {
      return Status::DataLoss("WAL payload truncated mid-field");
    }
    return Status::OK();
  }
  const std::string& data_;
  size_t pos_ = 0;
};

void PutNondet(std::string* out, const NondetRecord& nd) {
  PutValueVec(out, nd.values);
  PutU32(out, uint32_t(nd.auto_inc_ids.size()));
  for (int64_t id : nd.auto_inc_ids) PutI64(out, id);
}

Status ReadNondet(Reader* r, NondetRecord* nd) {
  UV_RETURN_NOT_OK(r->ValVec(&nd->values));
  uint32_t n;
  UV_RETURN_NOT_OK(r->U32(&n));
  nd->auto_inc_ids.clear();
  nd->auto_inc_ids.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    int64_t id;
    UV_RETURN_NOT_OK(r->I64(&id));
    nd->auto_inc_ids.push_back(id);
  }
  return Status::OK();
}

}  // namespace

std::string EncodeLogEntry(const LogEntry& entry) {
  std::string out;
  PutU64(&out, entry.index);
  PutString(&out, entry.sql);
  PutI64(&out, entry.timestamp);
  PutNondet(&out, entry.nondet);
  PutString(&out, entry.app_txn);
  PutValueVec(&out, entry.app_args);
  PutU32(&out, uint32_t(entry.app_blackbox.size()));
  for (const auto& [key, value] : entry.app_blackbox) {
    PutString(&out, key);
    PutValue(&out, value);
  }
  PutU32(&out, uint32_t(entry.captured_vars.size()));
  for (const auto& [name, values] : entry.captured_vars) {
    PutString(&out, name);
    PutValueVec(&out, values);
  }
  PutU32(&out, uint32_t(entry.table_hashes.size()));
  for (const auto& [table, digest] : entry.table_hashes) {
    PutString(&out, table);
    for (uint64_t limb : digest.limbs) PutU64(&out, limb);
  }
  return out;
}

Result<LogEntry> DecodeLogEntry(const std::string& payload) {
  LogEntry entry;
  Reader r(payload);
  UV_RETURN_NOT_OK(r.U64(&entry.index));
  UV_RETURN_NOT_OK(r.Str(&entry.sql));
  UV_RETURN_NOT_OK(r.I64(&entry.timestamp));
  UV_RETURN_NOT_OK(ReadNondet(&r, &entry.nondet));
  UV_RETURN_NOT_OK(r.Str(&entry.app_txn));
  UV_RETURN_NOT_OK(r.ValVec(&entry.app_args));
  uint32_t n;
  UV_RETURN_NOT_OK(r.U32(&n));
  for (uint32_t i = 0; i < n; ++i) {
    std::string key;
    Value value;
    UV_RETURN_NOT_OK(r.Str(&key));
    UV_RETURN_NOT_OK(r.Val(&value));
    entry.app_blackbox.emplace(std::move(key), std::move(value));
  }
  UV_RETURN_NOT_OK(r.U32(&n));
  for (uint32_t i = 0; i < n; ++i) {
    std::string name;
    std::vector<Value> values;
    UV_RETURN_NOT_OK(r.Str(&name));
    UV_RETURN_NOT_OK(r.ValVec(&values));
    entry.captured_vars.emplace(std::move(name), std::move(values));
  }
  UV_RETURN_NOT_OK(r.U32(&n));
  for (uint32_t i = 0; i < n; ++i) {
    std::string table;
    UV_RETURN_NOT_OK(r.Str(&table));
    Digest256 digest;
    for (uint64_t& limb : digest.limbs) UV_RETURN_NOT_OK(r.U64(&limb));
    entry.table_hashes.emplace(std::move(table), digest);
  }
  if (!r.exhausted()) {
    return Status::DataLoss("trailing bytes after WAL entry payload");
  }
  // Round-trip through the regular parser: the stmt pointer is process
  // state, only the SQL text is durable.
  UV_ASSIGN_OR_RETURN(entry.stmt, Parser::ParseStatement(entry.sql));
  return entry;
}

std::string EncodeWhatIfMarker(const WhatIfMarker& marker) {
  std::string out;
  PutU8(&out, marker.kind);
  PutU64(&out, marker.index);
  PutString(&out, marker.new_sql);
  PutNondet(&out, marker.new_stmt_nondet);
  return out;
}

Result<WhatIfMarker> DecodeWhatIfMarker(const std::string& payload) {
  WhatIfMarker marker;
  Reader r(payload);
  UV_RETURN_NOT_OK(r.U8(&marker.kind));
  UV_RETURN_NOT_OK(r.U64(&marker.index));
  UV_RETURN_NOT_OK(r.Str(&marker.new_sql));
  UV_RETURN_NOT_OK(ReadNondet(&r, &marker.new_stmt_nondet));
  if (!r.exhausted()) {
    return Status::DataLoss("trailing bytes after WAL marker payload");
  }
  if (marker.kind > 2) {
    return Status::DataLoss("bad what-if marker kind");
  }
  return marker;
}

// --- Append side ------------------------------------------------------------

Wal::Wal(std::string path, int fd, WalOptions options)
    : path_(std::move(path)), fd_(fd), options_(options) {}

Wal::~Wal() {
  if (fd_ >= 0) {
    // Best effort: flush what the caller appended but never synced. A
    // crash simulation abandons the object without running this (the
    // harness leaks or skips the destructor via its owning scope).
    (void)Sync();
    ::close(fd_);
  }
}

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path,
                                       WalOptions options) {
  int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd < 0) {
    return Status::Unavailable("cannot open WAL " + path + ": " +
                               std::strerror(errno));
  }
  return std::unique_ptr<Wal>(new Wal(path, fd, options));
}

Status Wal::AppendRecord(WalRecordType type, const std::string& payload) {
  UV_FAILPOINT("wal.append");
  std::string framed;
  framed.reserve(payload.size() + 9);
  PutU8(&framed, uint8_t(type));
  PutU32(&framed, uint32_t(payload.size()));
  std::string crc_domain;
  crc_domain.reserve(payload.size() + 1);
  crc_domain.push_back(char(type));
  crc_domain.append(payload);
  PutU32(&framed, Crc32(crc_domain));
  framed.append(payload);
  buffer_.append(framed);
  static obs::Counter* const appends =
      obs::Registry::Global().counter("uv.wal.appends");
  appends->Inc();
  return Status::OK();
}

Status Wal::AppendEntry(const LogEntry& entry) {
  UV_RETURN_NOT_OK(AppendRecord(WalRecordType::kEntry, EncodeLogEntry(entry)));
  ++unsynced_appends_;
  if (options_.fsync_every_n != 0 &&
      unsynced_appends_ >= options_.fsync_every_n) {
    return Sync();
  }
  return Status::OK();
}

Status Wal::AppendWhatIfCommit(const WhatIfMarker& marker) {
  UV_RETURN_NOT_OK(
      AppendRecord(WalRecordType::kWhatIfCommit, EncodeWhatIfMarker(marker)));
  // The marker IS the commit point: it must be durable before the live
  // tables swap, whatever the group-commit setting says.
  return Sync();
}

void Wal::Abandon() {
  buffer_.clear();
  unsynced_appends_ = 0;
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Wal::Sync() {
  // A crash here loses the whole in-memory buffer — the group-commit
  // window — which is exactly what process death before write(2) costs.
  UV_FAILPOINT("wal.sync.pre_write");
  if (!buffer_.empty()) {
    size_t off = 0;
    while (off < buffer_.size()) {
      ssize_t n = ::write(fd_, buffer_.data() + off, buffer_.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::Unavailable("WAL write failed: " +
                                   std::string(std::strerror(errno)));
      }
      off += size_t(n);
    }
    buffer_.clear();
  }
  unsynced_appends_ = 0;
  if (options_.use_fsync) {
    if (::fsync(fd_) != 0) {
      return Status::Unavailable("WAL fsync failed: " +
                                 std::string(std::strerror(errno)));
    }
    static obs::Counter* const fsyncs =
        obs::Registry::Global().counter("uv.wal.fsyncs");
    fsyncs->Inc();
  }
  return Status::OK();
}

// --- Recovery side ----------------------------------------------------------

Result<WalRecovery> RecoverWal(const std::string& path, bool truncate_file) {
  WalRecovery recovery;
  std::ifstream in(path, std::ios::binary);
  if (!in) return recovery;  // no file yet: empty log
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string data = buf.str();

  size_t pos = 0;
  while (pos < data.size()) {
    // Header: type(1) + len(4) + crc(4). Anything shorter is a torn tail.
    if (pos + 9 > data.size()) break;
    uint8_t type = uint8_t(data[pos]);
    uint32_t len = 0, crc = 0;
    for (int i = 0; i < 4; ++i) {
      len |= uint32_t(uint8_t(data[pos + 1 + i])) << (8 * i);
      crc |= uint32_t(uint8_t(data[pos + 5 + i])) << (8 * i);
    }
    if (pos + 9 + len > data.size()) break;  // torn payload
    std::string crc_domain;
    crc_domain.reserve(len + 1);
    crc_domain.push_back(char(type));
    crc_domain.append(data, pos + 9, len);
    if (Crc32(crc_domain) != crc) break;  // corrupt record: stop here
    std::string payload = data.substr(pos + 9, len);
    if (type == uint8_t(WalRecordType::kEntry)) {
      Result<LogEntry> entry = DecodeLogEntry(payload);
      if (!entry.ok()) break;  // CRC passed but content bad: treat as end
      recovery.entries.push_back(std::move(entry).value());
    } else if (type == uint8_t(WalRecordType::kWhatIfCommit)) {
      Result<WhatIfMarker> marker = DecodeWhatIfMarker(payload);
      if (!marker.ok()) break;
      marker->entries_before = recovery.entries.size();
      recovery.markers.push_back(std::move(marker).value());
    } else {
      break;  // unknown record type: cannot trust framing past it
    }
    pos += 9 + len;
  }

  recovery.valid_bytes = pos;
  recovery.truncated_bytes = data.size() - pos;
  recovery.tail_torn = recovery.truncated_bytes > 0;

  static obs::Counter* const recovered =
      obs::Registry::Global().counter("uv.wal.recovered_entries");
  static obs::Counter* const truncated =
      obs::Registry::Global().counter("uv.wal.truncated_bytes");
  recovered->Add(recovery.entries.size());
  truncated->Add(recovery.truncated_bytes);

  if (truncate_file && recovery.tail_torn) {
    if (::truncate(path.c_str(), off_t(pos)) != 0) {
      return Status::Unavailable("WAL truncate failed: " +
                                 std::string(std::strerror(errno)));
    }
  }
  return recovery;
}

Result<WalRecovery> RecoverQueryLog(const std::string& path, QueryLog* log,
                                    bool truncate_file) {
  UV_ASSIGN_OR_RETURN(WalRecovery recovery, RecoverWal(path, truncate_file));
  log->mutable_entries().clear();
  for (LogEntry& entry : recovery.entries) {
    log->Append(entry);  // reassigns index = position, matching append order
  }
  return recovery;
}

// Declared in query_log.h; lives here so query_log.cc stays WAL-free (the
// in-memory log has no durability dependency unless the WAL is linked in).
Result<size_t> QueryLog::Recover(const std::string& path) {
  UV_ASSIGN_OR_RETURN(WalRecovery recovery,
                      RecoverQueryLog(path, this, /*truncate_file=*/true));
  return recovery.entries.size();
}

}  // namespace ultraverse::sql
