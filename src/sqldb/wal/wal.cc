#include "sqldb/wal/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "sqldb/parser.h"
#include "util/binary_codec.h"
#include "util/crc32.h"

namespace ultraverse::sql {

namespace {

// Primitive little-endian encoding lives in util/binary_codec.h (shared
// with the server wire protocol); only the Value/Nondet shapes are local.

void PutValue(std::string* out, const Value& v) {
  switch (v.type()) {
    case DataType::kNull:
      PutU8(out, 0);
      break;
    case DataType::kInt:
      PutU8(out, 1);
      PutI64(out, v.AsInt());
      break;
    case DataType::kDouble:
      PutU8(out, 2);
      PutDouble(out, v.AsDouble());
      break;
    case DataType::kString:
      PutU8(out, 3);
      PutString(out, v.AsStringRef());
      break;
    case DataType::kBool:
      PutU8(out, 4);
      PutU8(out, v.AsBool() ? 1 : 0);
      break;
  }
}

void PutValueVec(std::string* out, const std::vector<Value>& values) {
  PutU32(out, uint32_t(values.size()));
  for (const Value& v : values) PutValue(out, v);
}

using Reader = BinaryReader;

Status ReadVal(Reader* r, Value* v) {
  uint8_t tag;
  UV_RETURN_NOT_OK(r->U8(&tag));
  switch (tag) {
    case 0:
      *v = Value::Null();
      return Status::OK();
    case 1: {
      int64_t i;
      UV_RETURN_NOT_OK(r->I64(&i));
      *v = Value::Int(i);
      return Status::OK();
    }
    case 2: {
      double d;
      UV_RETURN_NOT_OK(r->Dbl(&d));
      *v = Value::Double(d);
      return Status::OK();
    }
    case 3: {
      std::string s;
      UV_RETURN_NOT_OK(r->Str(&s));
      *v = Value::String(std::move(s));
      return Status::OK();
    }
    case 4: {
      uint8_t b;
      UV_RETURN_NOT_OK(r->U8(&b));
      *v = Value::Bool(b != 0);
      return Status::OK();
    }
    default:
      return Status::DataLoss("bad value tag in WAL payload");
  }
}

Status ReadValVec(Reader* r, std::vector<Value>* values) {
  uint32_t n;
  UV_RETURN_NOT_OK(r->U32(&n));
  values->clear();
  values->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Value v;
    UV_RETURN_NOT_OK(ReadVal(r, &v));
    values->push_back(std::move(v));
  }
  return Status::OK();
}

void PutNondet(std::string* out, const NondetRecord& nd) {
  PutValueVec(out, nd.values);
  PutU32(out, uint32_t(nd.auto_inc_ids.size()));
  for (int64_t id : nd.auto_inc_ids) PutI64(out, id);
}

Status ReadNondet(Reader* r, NondetRecord* nd) {
  UV_RETURN_NOT_OK(ReadValVec(r, &nd->values));
  uint32_t n;
  UV_RETURN_NOT_OK(r->U32(&n));
  nd->auto_inc_ids.clear();
  nd->auto_inc_ids.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    int64_t id;
    UV_RETURN_NOT_OK(r->I64(&id));
    nd->auto_inc_ids.push_back(id);
  }
  return Status::OK();
}

}  // namespace

std::string EncodeLogEntry(const LogEntry& entry) {
  std::string out;
  PutU64(&out, entry.index);
  PutString(&out, entry.sql);
  PutI64(&out, entry.timestamp);
  PutNondet(&out, entry.nondet);
  PutString(&out, entry.app_txn);
  PutValueVec(&out, entry.app_args);
  PutU32(&out, uint32_t(entry.app_blackbox.size()));
  for (const auto& [key, value] : entry.app_blackbox) {
    PutString(&out, key);
    PutValue(&out, value);
  }
  PutU32(&out, uint32_t(entry.captured_vars.size()));
  for (const auto& [name, values] : entry.captured_vars) {
    PutString(&out, name);
    PutValueVec(&out, values);
  }
  PutU32(&out, uint32_t(entry.table_hashes.size()));
  for (const auto& [table, digest] : entry.table_hashes) {
    PutString(&out, table);
    for (uint64_t limb : digest.limbs) PutU64(&out, limb);
  }
  return out;
}

Result<LogEntry> DecodeLogEntry(const std::string& payload) {
  LogEntry entry;
  Reader r(payload);
  UV_RETURN_NOT_OK(r.U64(&entry.index));
  UV_RETURN_NOT_OK(r.Str(&entry.sql));
  UV_RETURN_NOT_OK(r.I64(&entry.timestamp));
  UV_RETURN_NOT_OK(ReadNondet(&r, &entry.nondet));
  UV_RETURN_NOT_OK(r.Str(&entry.app_txn));
  UV_RETURN_NOT_OK(ReadValVec(&r, &entry.app_args));
  uint32_t n;
  UV_RETURN_NOT_OK(r.U32(&n));
  for (uint32_t i = 0; i < n; ++i) {
    std::string key;
    Value value;
    UV_RETURN_NOT_OK(r.Str(&key));
    UV_RETURN_NOT_OK(ReadVal(&r, &value));
    entry.app_blackbox.emplace(std::move(key), std::move(value));
  }
  UV_RETURN_NOT_OK(r.U32(&n));
  for (uint32_t i = 0; i < n; ++i) {
    std::string name;
    std::vector<Value> values;
    UV_RETURN_NOT_OK(r.Str(&name));
    UV_RETURN_NOT_OK(ReadValVec(&r, &values));
    entry.captured_vars.emplace(std::move(name), std::move(values));
  }
  UV_RETURN_NOT_OK(r.U32(&n));
  for (uint32_t i = 0; i < n; ++i) {
    std::string table;
    UV_RETURN_NOT_OK(r.Str(&table));
    Digest256 digest;
    for (uint64_t& limb : digest.limbs) UV_RETURN_NOT_OK(r.U64(&limb));
    entry.table_hashes.emplace(std::move(table), digest);
  }
  if (!r.exhausted()) {
    return Status::DataLoss("trailing bytes after WAL entry payload");
  }
  // Round-trip through the regular parser: the stmt pointer is process
  // state, only the SQL text is durable.
  UV_ASSIGN_OR_RETURN(entry.stmt, Parser::ParseStatement(entry.sql));
  return entry;
}

std::string EncodeWhatIfMarker(const WhatIfMarker& marker) {
  std::string out;
  PutU8(&out, marker.kind);
  PutU64(&out, marker.index);
  PutString(&out, marker.new_sql);
  PutNondet(&out, marker.new_stmt_nondet);
  return out;
}

Result<WhatIfMarker> DecodeWhatIfMarker(const std::string& payload) {
  WhatIfMarker marker;
  Reader r(payload);
  UV_RETURN_NOT_OK(r.U8(&marker.kind));
  UV_RETURN_NOT_OK(r.U64(&marker.index));
  UV_RETURN_NOT_OK(r.Str(&marker.new_sql));
  UV_RETURN_NOT_OK(ReadNondet(&r, &marker.new_stmt_nondet));
  if (!r.exhausted()) {
    return Status::DataLoss("trailing bytes after WAL marker payload");
  }
  if (marker.kind > 2) {
    return Status::DataLoss("bad what-if marker kind");
  }
  return marker;
}

// --- Append side ------------------------------------------------------------

Wal::Wal(std::string path, int fd, WalOptions options)
    : path_(std::move(path)), fd_(fd), options_(options) {}

Wal::~Wal() {
  if (fd_ >= 0) {
    // Best effort: flush what the caller appended but never synced. A
    // crash simulation abandons the object without running this (the
    // harness leaks or skips the destructor via its owning scope).
    (void)Sync();
    ::close(fd_);
  }
}

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path,
                                       WalOptions options) {
  int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd < 0) {
    return Status::Unavailable("cannot open WAL " + path + ": " +
                               std::strerror(errno));
  }
  return std::unique_ptr<Wal>(new Wal(path, fd, options));
}

Status Wal::AppendRecordLocked(WalRecordType type, const std::string& payload) {
  UV_FAILPOINT("wal.append");
  std::string framed;
  framed.reserve(payload.size() + 9);
  PutU8(&framed, uint8_t(type));
  PutU32(&framed, uint32_t(payload.size()));
  std::string crc_domain;
  crc_domain.reserve(payload.size() + 1);
  crc_domain.push_back(char(type));
  crc_domain.append(payload);
  PutU32(&framed, Crc32(crc_domain));
  framed.append(payload);
  buffer_.append(framed);
  ++appended_seq_;
  static obs::Counter* const appends =
      obs::Registry::Global().counter("uv.wal.appends");
  appends->Inc();
  return Status::OK();
}

Status Wal::AppendEntry(const LogEntry& entry) {
  uint64_t seq = 0;
  bool need_sync = false;
  std::string payload = EncodeLogEntry(entry);
  {
    std::lock_guard<std::mutex> g(mu_);
    UV_RETURN_NOT_OK(AppendRecordLocked(WalRecordType::kEntry, payload));
    seq = appended_seq_;
    ++unsynced_appends_;
    need_sync = options_.fsync_every_n != 0 &&
                unsynced_appends_ >= options_.fsync_every_n;
  }
  if (need_sync) return WaitDurable(seq);
  return Status::OK();
}

Result<uint64_t> Wal::AppendEntryAsync(const LogEntry& entry,
                                       bool* sync_due) {
  std::string payload = EncodeLogEntry(entry);
  std::lock_guard<std::mutex> g(mu_);
  UV_RETURN_NOT_OK(AppendRecordLocked(WalRecordType::kEntry, payload));
  ++unsynced_appends_;
  if (sync_due) {
    *sync_due = options_.fsync_every_n != 0 &&
                unsynced_appends_ >= options_.fsync_every_n;
  }
  return appended_seq_;
}

Status Wal::WaitDurable(uint64_t seq) {
  if (seq == 0) return Status::OK();
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    // A failed group reports its error to EVERY member: any seq the failed
    // sync covered gets the same sticky status, whether this thread led
    // the sync or was parked waiting on it.
    if (seq <= failed_upto_seq_) return sync_error_;
    if (seq <= synced_seq_) return Status::OK();
    if (fd_ < 0) {
      return Status::Unavailable("WAL abandoned with records in flight");
    }
    if (!sync_in_flight_) {
      // Leader self-promotion: nobody is syncing, so this waiter runs the
      // sync for everything appended so far — later appends during the IO
      // form the next group.
      sync_in_flight_ = true;
      (void)RunSyncLocked(lk);
      continue;  // re-check: our seq is now synced or in the failed range
    }
    cv_.wait(lk);
  }
}

Status Wal::AppendWhatIfCommit(const WhatIfMarker& marker) {
  std::string payload = EncodeWhatIfMarker(marker);
  uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> g(mu_);
    UV_RETURN_NOT_OK(
        AppendRecordLocked(WalRecordType::kWhatIfCommit, payload));
    seq = appended_seq_;
  }
  // The marker IS the commit point: it must be durable before the live
  // tables swap, whatever the group-commit setting says.
  return WaitDurable(seq);
}

void Wal::Abandon() {
  std::lock_guard<std::mutex> g(mu_);
  buffer_.clear();
  unsynced_appends_ = 0;
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  cv_.notify_all();
}

uint64_t Wal::appended_seq() const {
  std::lock_guard<std::mutex> g(mu_);
  return appended_seq_;
}

Status Wal::Sync() {
  std::unique_lock<std::mutex> lk(mu_);
  // Wait out any in-flight group sync, then run one pass of our own so
  // everything appended before this call is durable (or reported failed).
  while (sync_in_flight_) cv_.wait(lk);
  uint64_t seq = appended_seq_;
  if (seq > 0 && seq <= failed_upto_seq_) return sync_error_;
  sync_in_flight_ = true;
  return RunSyncLocked(lk);
}

Status Wal::RunSyncLocked(std::unique_lock<std::mutex>& lk) {
  uint64_t covers = appended_seq_;
  std::string pending;
  pending.swap(buffer_);
  unsynced_appends_ = 0;
  lk.unlock();
  Status st = WriteAndFsync(&pending);
  lk.lock();
  sync_in_flight_ = false;
  if (st.ok()) {
    if (covers > synced_seq_) synced_seq_ = covers;
  } else {
    // Durability failed for the WHOLE group: every record up to `covers`
    // that was not already durable shares this error. WaitDurable hands
    // the same status to each waiter in the group.
    sync_error_ = st;
    if (covers > failed_upto_seq_) failed_upto_seq_ = covers;
  }
  cv_.notify_all();
  return st;
}

Status Wal::WriteAndFsync(std::string* pending) {
  // A crash here loses the whole in-memory buffer — the group-commit
  // window — which is exactly what process death before write(2) costs.
  UV_FAILPOINT("wal.sync.pre_write");
  if (!pending->empty()) {
    size_t off = 0;
    while (off < pending->size()) {
      ssize_t n = ::write(fd_, pending->data() + off, pending->size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::Unavailable("WAL write failed: " +
                                   std::string(std::strerror(errno)));
      }
      off += size_t(n);
    }
  }
  if (options_.use_fsync) {
    // The group's records hit the page cache; the fsync is what makes the
    // group durable. A failure here is a durability failure for every
    // record in the group — the classic all-waiters-must-hear-it case.
    UV_FAILPOINT("wal.sync.fsync");
    if (::fsync(fd_) != 0) {
      return Status::Unavailable("WAL fsync failed: " +
                                 std::string(std::strerror(errno)));
    }
    static obs::Counter* const fsyncs =
        obs::Registry::Global().counter("uv.wal.fsyncs");
    fsyncs->Inc();
  }
  return Status::OK();
}

// --- Recovery side ----------------------------------------------------------

Result<WalRecovery> RecoverWal(const std::string& path, bool truncate_file) {
  WalRecovery recovery;
  std::ifstream in(path, std::ios::binary);
  if (!in) return recovery;  // no file yet: empty log
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string data = buf.str();

  size_t pos = 0;
  while (pos < data.size()) {
    // Header: type(1) + len(4) + crc(4). Anything shorter is a torn tail.
    if (pos + 9 > data.size()) break;
    uint8_t type = uint8_t(data[pos]);
    uint32_t len = 0, crc = 0;
    for (int i = 0; i < 4; ++i) {
      len |= uint32_t(uint8_t(data[pos + 1 + i])) << (8 * i);
      crc |= uint32_t(uint8_t(data[pos + 5 + i])) << (8 * i);
    }
    if (pos + 9 + len > data.size()) break;  // torn payload
    std::string crc_domain;
    crc_domain.reserve(len + 1);
    crc_domain.push_back(char(type));
    crc_domain.append(data, pos + 9, len);
    if (Crc32(crc_domain) != crc) break;  // corrupt record: stop here
    std::string payload = data.substr(pos + 9, len);
    if (type == uint8_t(WalRecordType::kEntry)) {
      Result<LogEntry> entry = DecodeLogEntry(payload);
      if (!entry.ok()) break;  // CRC passed but content bad: treat as end
      recovery.entries.push_back(std::move(entry).value());
    } else if (type == uint8_t(WalRecordType::kWhatIfCommit)) {
      Result<WhatIfMarker> marker = DecodeWhatIfMarker(payload);
      if (!marker.ok()) break;
      marker->entries_before = recovery.entries.size();
      recovery.markers.push_back(std::move(marker).value());
    } else {
      break;  // unknown record type: cannot trust framing past it
    }
    pos += 9 + len;
  }

  recovery.valid_bytes = pos;
  recovery.truncated_bytes = data.size() - pos;
  recovery.tail_torn = recovery.truncated_bytes > 0;

  static obs::Counter* const recovered =
      obs::Registry::Global().counter("uv.wal.recovered_entries");
  static obs::Counter* const truncated =
      obs::Registry::Global().counter("uv.wal.truncated_bytes");
  recovered->Add(recovery.entries.size());
  truncated->Add(recovery.truncated_bytes);

  if (truncate_file && recovery.tail_torn) {
    if (::truncate(path.c_str(), off_t(pos)) != 0) {
      return Status::Unavailable("WAL truncate failed: " +
                                 std::string(std::strerror(errno)));
    }
  }
  return recovery;
}

Result<WalRecovery> RecoverQueryLog(const std::string& path, QueryLog* log,
                                    bool truncate_file) {
  UV_ASSIGN_OR_RETURN(WalRecovery recovery, RecoverWal(path, truncate_file));
  log->mutable_entries().clear();
  for (LogEntry& entry : recovery.entries) {
    log->Append(entry);  // reassigns index = position, matching append order
  }
  return recovery;
}

// Declared in query_log.h; lives here so query_log.cc stays WAL-free (the
// in-memory log has no durability dependency unless the WAL is linked in).
Result<size_t> QueryLog::Recover(const std::string& path) {
  UV_ASSIGN_OR_RETURN(WalRecovery recovery,
                      RecoverQueryLog(path, this, /*truncate_file=*/true));
  return recovery.entries.size();
}

}  // namespace ultraverse::sql
