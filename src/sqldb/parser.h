#ifndef ULTRAVERSE_SQLDB_PARSER_H_
#define ULTRAVERSE_SQLDB_PARSER_H_

#include <string>
#include <vector>

#include "sqldb/ast.h"
#include "sqldb/lexer.h"
#include "util/status.h"

namespace ultraverse::sql {

/// Recursive-descent parser for the SQL dialect the engine supports (a
/// MySQL-flavored subset: DDL, DML, views, indexes, procedures with control
/// flow, triggers, transactions, SIGNAL). Statements are ';'-separated.
class Parser {
 public:
  /// Parses exactly one statement (a trailing ';' is allowed).
  static Result<StatementPtr> ParseStatement(const std::string& sql);

  /// Parses a ';'-separated script into a statement list.
  static Result<std::vector<StatementPtr>> ParseScript(const std::string& sql);

  /// Parses a standalone expression (used by tests and the transpiler).
  static Result<ExprPtr> ParseExpression(const std::string& text);

 private:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek(size_t k = 0) const;
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }
  Token Advance();
  bool MatchSymbol(const std::string& sym);
  bool MatchKeyword(const std::string& kw);
  bool PeekKeyword(const std::string& kw, size_t k = 0) const;
  Status ExpectSymbol(const std::string& sym);
  Status ExpectKeyword(const std::string& kw);
  Result<std::string> ExpectIdentifier();

  Result<StatementPtr> ParseOneStatement();
  Result<StatementPtr> ParseCreate();
  Result<StatementPtr> ParseCreateTable(bool if_not_exists);
  Result<StatementPtr> ParseCreateView(bool or_replace);
  Result<StatementPtr> ParseCreateIndex();
  Result<StatementPtr> ParseCreateProcedure();
  Result<StatementPtr> ParseCreateTrigger();
  Result<StatementPtr> ParseAlter();
  Result<StatementPtr> ParseDrop();
  Result<StatementPtr> ParseInsert();
  Result<StatementPtr> ParseUpdate();
  Result<StatementPtr> ParseDelete();
  Result<StatementPtr> ParseSelectStmt();
  Result<StatementPtr> ParseCall();
  Result<StatementPtr> ParseTransactionBlock();
  Result<StatementPtr> ParseProcBodyStatement();
  Result<std::vector<StatementPtr>> ParseProcBodyUntil(
      const std::vector<std::string>& terminators);

  Result<std::shared_ptr<SelectStatement>> ParseSelectBody();
  Result<DataType> ParseDataType();

  // Expression precedence climbing.
  Result<ExprPtr> ParseExpr();        // OR
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePrimary();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace ultraverse::sql

#endif  // ULTRAVERSE_SQLDB_PARSER_H_
